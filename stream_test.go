package banks

import (
	"context"
	"errors"
	"testing"

	"github.com/banksdb/banks/internal/datagen"
)

func TestQueryStreamDelivery(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	q := Query{Text: "sunita soumen", Options: &SearchOptions{ExcludedRootTables: []string{"writes"}}}
	var seen []*Answer
	res, err := sys.QueryStream(context.Background(), q, func(a *Answer) bool {
		seen = append(seen, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no streamed answers")
	}
	if seen[0].Root.Table != "paper" {
		t.Errorf("first streamed root = %s", seen[0].Root.Table)
	}
	if len(res.Answers) != len(seen) {
		t.Errorf("results carry %d answers, stream delivered %d", len(res.Answers), len(seen))
	}

	// Early cancel.
	count := 0
	_, err = sys.QueryStream(context.Background(), q, func(*Answer) bool {
		count++
		return false
	})
	if !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v", err)
	}
	if count != 1 {
		t.Errorf("count = %d", count)
	}

	if _, err := sys.QueryStream(context.Background(), Query{Text: " "},
		func(*Answer) bool { return true }); err == nil {
		t.Error("empty query should error")
	}
}

func TestQueryIterRangesOverAnswers(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	q := Query{Text: "sunita soumen", Options: &SearchOptions{ExcludedRootTables: []string{"writes"}}}
	var ranks []int
	for a, err := range sys.QueryIter(context.Background(), q) {
		if err != nil {
			t.Fatal(err)
		}
		ranks = append(ranks, a.Rank)
	}
	if len(ranks) == 0 {
		t.Fatal("iterator yielded nothing")
	}
	for i, r := range ranks {
		if r != i+1 {
			t.Errorf("yield %d has rank %d", i, r)
		}
	}
}

func TestQueryIterEarlyBreakCancelsSearch(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	// A heap of 1 forces incremental emission so the break really stops a
	// running search rather than draining a finished one.
	q := Query{Text: "sunita soumen", Options: &SearchOptions{HeapSize: 1}}
	count := 0
	for a, err := range sys.QueryIter(context.Background(), q) {
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatal("nil answer without error")
		}
		count++
		break
	}
	if count != 1 {
		t.Fatalf("loop body ran %d times after break", count)
	}
}

// TestStreamCancelDuringHeapOverflow pins the cancellation contract when
// the callback returns false mid-visit: the rest of the visit's cross
// product keeps generating candidates, and heap overflow must not call
// the callback again (for QueryIter a re-yield after break is a runtime
// panic). The small DBLP catalog with a small heap and large TopK keeps
// the output heap overflowing while answers are still being generated.
func TestStreamCancelDuringHeapOverflow(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(wrapDatabase(inner), nil)
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Text: "data mining", Options: &SearchOptions{HeapSize: 16, TopK: 100}}

	calls := 0
	res, err := sys.QueryStream(context.Background(), q, func(*Answer) bool {
		calls++
		return calls < 2
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if calls != 2 {
		t.Errorf("callback ran %d times after cancelling on the 2nd answer", calls)
	}
	if res == nil || len(res.Answers) != 2 {
		t.Errorf("partial results = %d answers, want exactly the 2 delivered", len(res.Answers))
	}

	// The same shape through QueryIter: break must not be re-yielded
	// (this panicked before the emitter learned to drop post-stop
	// candidates).
	count := 0
	for a, err := range sys.QueryIter(context.Background(), q) {
		if err != nil {
			t.Fatal(err)
		}
		if a == nil {
			t.Fatal("nil answer")
		}
		count++
		if count == 2 {
			break
		}
	}
	if count != 2 {
		t.Errorf("iterator body ran %d times", count)
	}
}

func TestQueryIterDeliversErrors(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	var got error
	for a, err := range sys.QueryIter(context.Background(), Query{Text: "  "}) {
		if a != nil {
			t.Fatal("answer from an empty query")
		}
		got = err
	}
	if got == nil {
		t.Fatal("empty query yielded no error")
	}
	// Unknown strategy surfaces the same way.
	got = nil
	for _, err := range sys.QueryIter(context.Background(), Query{Text: "sunita", Strategy: "nope"}) {
		got = err
	}
	if got == nil {
		t.Fatal("unknown strategy yielded no error")
	}
}
