package banks

import (
	"errors"
	"testing"
)

func TestPublicSearchStream(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	opts := &SearchOptions{ExcludedRootTables: []string{"writes"}}
	var seen []*Answer
	err := sys.SearchStream("sunita soumen", opts, func(a *Answer) bool {
		seen = append(seen, a)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no streamed answers")
	}
	if seen[0].Root.Table != "paper" {
		t.Errorf("first streamed root = %s", seen[0].Root.Table)
	}

	// Early cancel.
	count := 0
	err = sys.SearchStream("sunita soumen", opts, func(*Answer) bool {
		count++
		return false
	})
	if !errors.Is(err, ErrStopped) {
		t.Errorf("err = %v", err)
	}
	if count != 1 {
		t.Errorf("count = %d", count)
	}

	if err := sys.SearchStream(" ", opts, func(*Answer) bool { return true }); err == nil {
		t.Error("empty query should error")
	}
}
