package banks

import (
	"fmt"
	"strings"
	"unicode/utf8"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// SearchOptions tune one keyword query. The zero value (or nil) uses the
// configuration the paper's evaluation found best: 10 answers, output heap
// of 20, λ=0.2, edge log-scaling on, additive combination.
type SearchOptions struct {
	// TopK is the number of answers to return (default 10).
	TopK int
	// HeapSize is the output-heap capacity of §3 (default 20).
	HeapSize int
	// Lambda weighs prestige against proximity in [0,1] (default 0.2).
	// Note that 0 is a meaningful value; set UseZeroLambda to select it
	// explicitly.
	Lambda float64
	// UseZeroLambda forces Lambda=0 (pure proximity). Needed because the
	// zero value of Lambda means "default 0.2".
	UseZeroLambda bool
	// DisableEdgeLog turns off log damping of edge weights (default on).
	DisableEdgeLog bool
	// NodeLog turns on log damping of node weights (default off).
	NodeLog bool
	// Multiplicative selects E·N^λ combination instead of additive.
	Multiplicative bool
	// ExcludedRootTables lists relations that may not serve as
	// information nodes (e.g. pure link tables such as Writes).
	ExcludedRootTables []string
	// AllowPartialMatch drops query terms that match nothing instead of
	// returning no answers.
	AllowPartialMatch bool
	// Budget bounds how much work this query may do before it is cut off
	// with a partial answer (see Budget). The zero value applies only the
	// engine's default pop cap.
	Budget Budget
}

// Budget is the per-query cost budget: exhausting any non-zero axis stops
// the search cleanly, returns the answers emitted so far, and reports the
// truncation in Stats.BudgetExhausted/BudgetReason.
type Budget struct {
	// MaxPops bounds shortest-path iterator pops (0: the engine default of
	// 2,000,000). Deterministic per query and snapshot.
	MaxPops int
	// MaxArcsScanned bounds graph arcs relaxed during expansion
	// (0: unlimited). Deterministic per query and snapshot.
	MaxArcsScanned int
	// MaxBytesFaulted bounds bytes faulted from the disk store while the
	// query runs (0: unlimited; meaningful only for store-backed systems).
	// The fault meter is engine-global, so this axis is a safety valve
	// rather than exact per-query accounting.
	MaxBytesFaulted int64
}

func (o *SearchOptions) toCore() *core.Options {
	c := core.DefaultOptions()
	if o == nil {
		return c
	}
	if o.TopK > 0 {
		c.TopK = o.TopK
	}
	if o.HeapSize > 0 {
		c.HeapSize = o.HeapSize
	}
	if o.UseZeroLambda {
		c.Score.Lambda = 0
	} else if o.Lambda != 0 {
		c.Score.Lambda = o.Lambda
	}
	c.Score.EdgeLog = !o.DisableEdgeLog
	c.Score.NodeLog = o.NodeLog
	if o.Multiplicative {
		c.Score.Combine = core.Multiplicative
	}
	c.ExcludedRootTables = o.ExcludedRootTables
	c.RequireAllTerms = !o.AllowPartialMatch
	c.Budget = core.Budget{
		MaxPops:         o.Budget.MaxPops,
		MaxArcsScanned:  o.Budget.MaxArcsScanned,
		MaxBytesFaulted: o.Budget.MaxBytesFaulted,
	}
	return c
}

// Tuple is one database row inside an answer tree.
type Tuple struct {
	Table   string
	RID     int64
	Columns []string
	Values  Row
}

// Label renders the tuple compactly: Table(col=val, ...), text values
// truncated for display.
func (t Tuple) Label() string {
	var b strings.Builder
	b.WriteString(t.Table)
	b.WriteString("(")
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c)
		b.WriteString("=")
		b.WriteString(truncate(fmt.Sprint(valueOrNull(t.Values[i])), 40))
	}
	b.WriteString(")")
	return b.String()
}

func valueOrNull(v interface{}) interface{} {
	if v == nil {
		return "NULL"
	}
	return v
}

// truncate caps s at n bytes, appending an ellipsis. The cut always lands
// on a rune boundary so multi-byte UTF-8 values truncate to valid text.
func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	cut := n - 1
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "…"
}

// TreeNode is one node of the rendered answer tree.
type TreeNode struct {
	Tuple      Tuple
	EdgeWeight float64 // weight of the edge from the parent (0 at the root)
	Children   []*TreeNode
	Matched    bool // whether this tuple matched a query keyword
}

// Answer is one keyword-query result: a connection tree rooted at the
// information node (§2).
type Answer struct {
	// Rank is the 1-based position in the result list.
	Rank int
	// Score is the overall §2.3 relevance in [0,1]; EScore and NScore are
	// its proximity and prestige components; Weight is the raw tree
	// weight.
	Score, EScore, NScore, Weight float64
	// Root is the information node's tuple.
	Root Tuple
	// Tree is the full connection tree rooted at Root.
	Tree *TreeNode
}

// Format renders the answer in the indented style of the paper's Figure 2.
func (a *Answer) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%2d. (%.4f) ", a.Rank, a.Score)
	formatNode(&b, a.Tree, 0)
	return b.String()
}

func formatNode(b *strings.Builder, n *TreeNode, depth int) {
	if depth > 0 {
		b.WriteString(strings.Repeat("    ", depth))
		b.WriteString("-> ")
	}
	b.WriteString(n.Tuple.Label())
	if n.Matched {
		b.WriteString("  *")
	}
	b.WriteString("\n")
	for _, c := range n.Children {
		formatNode(b, c, depth+1)
	}
}

// convertAnswer materializes a core answer against the pinned engine
// snapshot eng, so conversion never mixes the graph a search ran on with
// a newer one swapped in by a concurrent Refresh. The database read lock
// is held for the duration of the tree walk: row storage appends under
// the write lock, and answers must not render half-written rows.
func (s *System) convertAnswer(eng *engine, a *core.Answer) *Answer {
	s.db.inner.RLock()
	defer s.db.inner.RUnlock()
	matched := make(map[graph.NodeID]bool, len(a.TermNodes))
	for _, n := range a.TermNodes {
		matched[n] = true
	}
	children := make(map[graph.NodeID][]core.TreeEdge)
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e)
	}
	var build func(n graph.NodeID, w float64) *TreeNode
	build = func(n graph.NodeID, w float64) *TreeNode {
		node := &TreeNode{Tuple: s.tupleOf(eng, n), EdgeWeight: w, Matched: matched[n]}
		for _, e := range children[n] {
			node.Children = append(node.Children, build(e.To, e.W))
		}
		return node
	}
	tree := build(a.Root, 0)
	return &Answer{
		Rank:   a.Rank,
		Score:  a.Score,
		EScore: a.EScore,
		NScore: a.NScore,
		Weight: a.Weight,
		Root:   tree.Tuple,
		Tree:   tree,
	}
}

// tupleOf materializes the row behind a graph node of eng's snapshot.
func (s *System) tupleOf(eng *engine, n graph.NodeID) Tuple {
	table := eng.g.TableNameOf(n)
	rid := eng.g.RIDOf(n)
	t := s.db.inner.Table(table)
	out := Tuple{Table: table, RID: int64(rid)}
	if t == nil {
		return out
	}
	row := t.Row(rid)
	if row == nil {
		return out
	}
	for i, c := range t.Schema().Columns {
		out.Columns = append(out.Columns, c.Name)
		out.Values = append(out.Values, fromValue(row[i]))
	}
	return out
}

// Lookup returns, for one keyword, how many tuples match it directly and
// which relations match it as metadata — useful for query debugging UIs.
func (s *System) Lookup(term string) (tuples int, metadataTables []string) {
	eng := s.engine()
	m := eng.ix.Lookup(term)
	for _, tid := range m.Tables {
		metadataTables = append(metadataTables, eng.g.TableName(tid))
	}
	return len(m.Nodes), metadataTables
}

// TupleByPK fetches a tuple by its primary key rendered as text; the web
// UI's hyperlinks use it.
func (s *System) TupleByPK(table, pk string) (Tuple, bool) {
	eng := s.engine()
	t := s.db.inner.Table(table)
	if t == nil {
		return Tuple{}, false
	}
	s.db.inner.RLock()
	defer s.db.inner.RUnlock()
	rid := t.LookupPK([]sqldb.Value{sqldb.Text(pk)})
	if rid < 0 {
		// Try an integer key.
		var iv sqldb.Value
		if _, err := fmt.Sscanf(pk, "%d", &iv.I); err == nil {
			iv.T = sqldb.TypeInt
			rid = t.LookupPK([]sqldb.Value{iv})
		}
	}
	if rid < 0 {
		return Tuple{}, false
	}
	n := eng.g.NodeOf(table, rid)
	if n == graph.NoNode {
		return Tuple{}, false
	}
	return s.tupleOf(eng, n), true
}
