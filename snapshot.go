package banks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Snapshot framing: an 8-byte magic, a 4-byte big-endian format version,
// then the length-prefixed graph and index sections. The magic lets
// LoadSystem reject arbitrary files with a clear error instead of
// misreading their first bytes as a section length; the version gates
// future format changes.
const (
	snapshotMagic   = "BANKSNAP"
	snapshotVersion = 1
	// maxSnapshotSection bounds a section's declared length (64 GiB —
	// far beyond any graph this process could hold) so a corrupted
	// length prefix fails fast instead of driving huge allocations.
	maxSnapshotSection = int64(1) << 36
)

// SaveSnapshot persists the built data graph and keyword index so a later
// process can serve queries without re-deriving them from the database —
// the disk-resident mode the paper describes for its keyword index,
// extended to the graph. The row data itself is not included; pair the
// snapshot with the same database contents (for example via
// Database.DumpSQL replayed through ExecScript).
//
// The stream starts with a magic number and format version; each section
// is then length-prefixed (8 bytes big-endian) so the two readers cannot
// run into each other's bytes.
func (s *System) SaveSnapshot(w io.Writer) error {
	eng := s.engine()
	var hdr [12]byte
	copy(hdr[:8], snapshotMagic)
	binary.BigEndian.PutUint32(hdr[8:], snapshotVersion)
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("banks: writing snapshot header: %w", err)
	}
	writeSection := func(fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return err
		}
		var pfx [8]byte
		binary.BigEndian.PutUint64(pfx[:], uint64(buf.Len()))
		if _, err := w.Write(pfx[:]); err != nil {
			return err
		}
		_, err := w.Write(buf.Bytes())
		return err
	}
	if err := writeSection(func(w io.Writer) error {
		_, err := eng.g.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("banks: writing graph snapshot: %w", err)
	}
	if err := writeSection(func(w io.Writer) error {
		_, err := eng.ix.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("banks: writing index snapshot: %w", err)
	}
	return nil
}

func readSection(r io.Reader) (io.Reader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := int64(binary.BigEndian.Uint64(hdr[:]))
	if n < 0 || n > maxSnapshotSection {
		return nil, fmt.Errorf("banks: snapshot section claims %d bytes; snapshot corrupt", n)
	}
	return io.LimitReader(r, n), nil
}

// LoadSystem reconstructs a System from a snapshot written by SaveSnapshot
// over the given database. The database must hold the same rows the
// snapshot was built from; tuple rendering reads rows by the RIDs recorded
// in the snapshot. A stream that does not begin with the snapshot magic is
// rejected outright.
func LoadSystem(db *Database, r io.Reader, opts *SystemOptions) (*System, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("banks: reading snapshot header: %w", err)
	}
	if string(hdr[:8]) != snapshotMagic {
		return nil, fmt.Errorf("banks: not a BANKS snapshot (bad magic %q)", hdr[:8])
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != snapshotVersion {
		return nil, fmt.Errorf("banks: unsupported snapshot version %d (want %d)", v, snapshotVersion)
	}
	gs, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("banks: reading graph section: %w", err)
	}
	g, err := graph.ReadGraph(gs)
	if err != nil {
		return nil, fmt.Errorf("banks: reading graph snapshot: %w", err)
	}
	is, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("banks: reading index section: %w", err)
	}
	ix, err := index.ReadFrom(is)
	if err != nil {
		return nil, fmt.Errorf("banks: reading index snapshot: %w", err)
	}
	if ix.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("banks: snapshot mismatch: index built for %d nodes, graph has %d",
			ix.NumNodes(), g.NumNodes())
	}
	s := &System{db: db}
	if opts != nil {
		s.opts = *opts
	}
	s.eng.Store(newEngine(g, ix, s.opts))
	return s, nil
}

// DumpSQL writes the database as a replayable SQL script, referenced
// tables first.
func (d *Database) DumpSQL(w io.Writer) error { return d.inner.DumpSQL(w) }
