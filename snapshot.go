package banks

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// SaveSnapshot persists the built data graph and keyword index so a later
// process can serve queries without re-deriving them from the database —
// the disk-resident mode the paper describes for its keyword index,
// extended to the graph. The row data itself is not included; pair the
// snapshot with the same database contents (for example via
// Database.DumpSQL replayed through ExecScript).
//
// Each section is length-prefixed (8 bytes big-endian) so the two readers
// cannot run into each other's bytes.
func (s *System) SaveSnapshot(w io.Writer) error {
	writeSection := func(fill func(io.Writer) error) error {
		var buf bytes.Buffer
		if err := fill(&buf); err != nil {
			return err
		}
		var hdr [8]byte
		binary.BigEndian.PutUint64(hdr[:], uint64(buf.Len()))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err := w.Write(buf.Bytes())
		return err
	}
	if err := writeSection(func(w io.Writer) error {
		_, err := s.g.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("banks: writing graph snapshot: %w", err)
	}
	if err := writeSection(func(w io.Writer) error {
		_, err := s.ix.WriteTo(w)
		return err
	}); err != nil {
		return fmt.Errorf("banks: writing index snapshot: %w", err)
	}
	return nil
}

func readSection(r io.Reader) (io.Reader, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return io.LimitReader(r, int64(binary.BigEndian.Uint64(hdr[:]))), nil
}

// LoadSystem reconstructs a System from a snapshot written by SaveSnapshot
// over the given database. The database must hold the same rows the
// snapshot was built from; tuple rendering reads rows by the RIDs recorded
// in the snapshot.
func LoadSystem(db *Database, r io.Reader, opts *SystemOptions) (*System, error) {
	gs, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("banks: reading snapshot header: %w", err)
	}
	g, err := graph.ReadGraph(gs)
	if err != nil {
		return nil, fmt.Errorf("banks: reading graph snapshot: %w", err)
	}
	is, err := readSection(r)
	if err != nil {
		return nil, fmt.Errorf("banks: reading snapshot header: %w", err)
	}
	ix, err := index.ReadFrom(is)
	if err != nil {
		return nil, fmt.Errorf("banks: reading index snapshot: %w", err)
	}
	if ix.NumNodes() != g.NumNodes() {
		return nil, fmt.Errorf("banks: snapshot mismatch: index built for %d nodes, graph has %d",
			ix.NumNodes(), g.NumNodes())
	}
	s := &System{db: db, g: g, ix: ix, searcher: core.NewSearcher(g, ix)}
	if opts != nil {
		s.opts = *opts
	}
	return s, nil
}

// DumpSQL writes the database as a replayable SQL script, referenced
// tables first.
func (d *Database) DumpSQL(w io.Writer) error { return d.inner.DumpSQL(w) }
