package banks

import (
	"fmt"
	"io"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/store"
)

// Engine persistence. Two formats exist:
//
//   - The segmented store format (internal/store, magic "BANKSST1"): a
//     versioned, checksummed file of independent segments behind a
//     directory. Save and SaveSnapshot always write it, Open/OpenSystem
//     open it lazily — cold start reads the directory and one small
//     metadata segment; arcs, node metadata and postings fault in on
//     first touch, optionally under a memory budget (the EMBANKS
//     disk-based serving mode).
//
//   - The legacy monolithic snapshot (magic "BANKSNAP"): the superseded
//     PR 2 format. Nothing writes or reads it anymore; LoadSystem
//     recognises the magic only to reject it with a pointed error
//     (rebuild with NewSystem and re-Save to migrate).
const legacySnapshotMagic = "BANKSNAP"

// warmKeyLimit caps how many hot match-cache keys Save records for warmup.
const warmKeyLimit = 512

// storeEngine snapshots the current engine as a store.Engine, recording
// the match cache's hot keys so the saved store can pre-warm a later
// process with this workload's favourite terms. Overlay engines (live
// mutations pending compaction) cannot be persisted directly — Compact
// folds the delta into concrete structures first.
func (e *engine) storeEngine() (store.Engine, error) {
	g, ix, ok := e.concrete()
	if !ok {
		return store.Engine{}, fmt.Errorf("engine holds uncompacted live mutations; call Compact (or Refresh) before saving")
	}
	return store.Engine{
		Graph:    g,
		Index:    ix,
		WarmKeys: e.cache.HotKeys(warmKeyLimit),
		WALSeq:   e.walSeq,
	}, nil
}

// Save persists the current engine snapshot to path in the segmented
// store format, atomically (temp file + rename): a crash mid-save never
// leaves a torn file, and a reader holding the old store is undisturbed.
// If path already holds a file that is neither a BANKS store nor a legacy
// snapshot, Save refuses rather than destroy it.
//
// The row data itself is not included; pair the store with the same
// database contents (for example via Database.DumpSQL replayed through
// ExecScript), then reopen with OpenSystem.
func (s *System) Save(path string) error {
	se, err := s.engine().storeEngine()
	if err != nil {
		return fmt.Errorf("banks: %w", err)
	}
	if err := store.WriteFile(path, se); err != nil {
		return fmt.Errorf("banks: %w", err)
	}
	return nil
}

// OpenSystem opens a store written by Save (or SaveSnapshot) over db with
// zero rebuild work: the open reads the store's directory and graph
// metadata, and every other segment — CSR arcs, node metadata, index
// postings — loads lazily on first touch, so cold start takes
// milliseconds where NewSystem pays the full SQL→graph→index build.
//
// db must hold the same rows the store was built from (tuple rendering
// reads rows by the RIDs recorded in the store). opts.StoreBudgetBytes
// bounds the resident posting blocks (the EMBANKS memory-bound mode); if
// the store records match-cache warmup terms, they are re-resolved in the
// background so the hot set is cached without delaying the open.
//
// Close the returned System to release the store file — after in-flight
// queries have finished.
func OpenSystem(path string, db *Database, opts *SystemOptions) (*System, error) {
	if db == nil {
		return nil, fmt.Errorf("banks: OpenSystem requires a database")
	}
	s := &System{db: db}
	if opts != nil {
		s.opts = *opts
	}
	if err := core.ValidateStrategy(s.opts.Strategy); err != nil {
		return nil, fmt.Errorf("banks: %w", err)
	}
	st, err := store.Open(path, store.Options{BudgetBytes: s.opts.StoreBudgetBytes})
	if err != nil {
		return nil, fmt.Errorf("banks: %w", err)
	}
	if err := s.installStoreEngine(st); err != nil {
		st.Close()
		return nil, err
	}
	if err := s.attachLiveMutations(st); err != nil {
		st.Close()
		return nil, err
	}
	return s, nil
}

// installStoreEngine wires an opened store into s and kicks off the
// asynchronous match-cache warmup. The engine is fully stamped —
// including the store's recorded WAL sequence — before it is published,
// so no field is ever written after another goroutine can load it.
func (s *System) installStoreEngine(st *store.Store) error {
	seq, err := st.WALSeq()
	if err != nil {
		return fmt.Errorf("banks: reading store WAL sequence: %w", err)
	}
	eng := newEngine(st.Graph(), st.Index(), s.opts)
	eng.st = st
	eng.walSeq = seq
	eng.searcher.WithFaultMeter(st.FaultedBytes)
	s.store = st
	s.eng.Store(eng)
	if keys, err := st.WarmKeys(); err == nil && len(keys) > 0 {
		go func() {
			// The warmer races Close: hold a store reference so the byte
			// source (an mmap) cannot be unmapped under its lazy reads.
			if !st.Acquire() {
				return
			}
			defer st.Release()
			eng.cache.Warm(eng.ix, eng.epoch, keys)
		}()
	}
	return nil
}

// SaveSnapshot writes the engine in the segmented store format to an
// arbitrary io.Writer — the streaming counterpart of Save for callers
// that persist somewhere other than a local path. (The name survives from
// the legacy monolithic snapshot this format supersedes.)
func (s *System) SaveSnapshot(w io.Writer) error {
	se, err := s.engine().storeEngine()
	if err != nil {
		return fmt.Errorf("banks: %w", err)
	}
	if err := store.Write(w, se); err != nil {
		return fmt.Errorf("banks: %w", err)
	}
	return nil
}

// LoadSystem reconstructs a System from a stream written by SaveSnapshot
// (or the bytes of a Save file). Only the segmented store format is
// accepted; the legacy monolithic "BANKSNAP" format is recognised and
// rejected with a migration hint (rebuild with NewSystem, then Save).
// The database must hold the same rows the snapshot was built from. A
// stream that begins with neither magic is rejected outright.
//
// Reading from an io.Reader forces the whole stream into memory; prefer
// OpenSystem for lazy, budgeted serving from a file.
func LoadSystem(db *Database, r io.Reader, opts *SystemOptions) (*System, error) {
	var head [8]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("banks: reading snapshot header: %w", err)
	}
	switch string(head[:]) {
	case store.Magic:
		data, err := io.ReadAll(r)
		if err != nil {
			return nil, fmt.Errorf("banks: reading snapshot: %w", err)
		}
		data = append(head[:], data...)
		s := &System{db: db}
		if opts != nil {
			s.opts = *opts
		}
		// store.Mem serves the buffered stream zero-copy: graph and index
		// structures alias the buffer instead of re-materializing copies.
		st, err := store.OpenReaderAt(store.Mem(data), int64(len(data)),
			store.Options{BudgetBytes: s.opts.StoreBudgetBytes})
		if err != nil {
			return nil, fmt.Errorf("banks: %w", err)
		}
		if err := s.installStoreEngine(st); err != nil {
			st.Close()
			return nil, err
		}
		if err := s.attachLiveMutations(st); err != nil {
			st.Close()
			return nil, err
		}
		return s, nil
	case legacySnapshotMagic:
		return nil, fmt.Errorf("banks: legacy monolithic snapshots are no longer supported; rebuild with NewSystem and re-Save in the segmented store format")
	}
	return nil, fmt.Errorf("banks: not a BANKS snapshot (bad magic %q)", head[:])
}

// DumpSQL writes the database as a replayable SQL script, referenced
// tables first.
func (d *Database) DumpSQL(w io.Writer) error { return d.inner.DumpSQL(w) }
