package banks

// The parallel engine build must be invisible: building the graph and
// keyword index with any shard count has to produce byte-identical
// serialized artifacts (WriteTo) and identical top-k answers. These golden
// tests pin that contract on both generators, so the parallel build can be
// the default without a correctness/perf trade-off.

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// buildEngineBytes builds graph+index at the given shard count and returns
// their serialized forms.
func buildEngineBytes(t *testing.T, db *sqldb.Database, shards int) (gBytes, ixBytes []byte) {
	t.Helper()
	bo := graph.DefaultBuildOptions()
	bo.Shards = shards
	g, err := graph.Build(db, bo)
	if err != nil {
		t.Fatalf("graph.Build(shards=%d): %v", shards, err)
	}
	ix, err := index.BuildWithOptions(db, g, &index.BuildOptions{Shards: shards})
	if err != nil {
		t.Fatalf("index.Build(shards=%d): %v", shards, err)
	}
	var gb, ib bytes.Buffer
	if _, err := g.WriteTo(&gb); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(&ib); err != nil {
		t.Fatal(err)
	}
	return gb.Bytes(), ib.Bytes()
}

func TestParallelBuildBitIdentical(t *testing.T) {
	datasets := []struct {
		name  string
		build func() (*sqldb.Database, error)
	}{
		{"dblp", func() (*sqldb.Database, error) { return datagen.BuildDBLP(datagen.SmallDBLP()) }},
		{"tpcd", func() (*sqldb.Database, error) { return datagen.BuildTPCD(datagen.SmallTPCD()) }},
		// A mid-size DBLP whose Writes/Cites tables span several
		// buildShardSize chunks, so the multi-shard merge (not just the
		// one-shard-per-table degenerate case) is what's being pinned.
		{"dblp-sharded", func() (*sqldb.Database, error) {
			return datagen.BuildDBLP(datagen.DBLPConfig{
				Papers: 2500, Authors: 1200, AvgAuthorsPerPaper: 2.5, Cites: 6000, Seed: 5,
			})
		}},
		{"tpcd-sharded", func() (*sqldb.Database, error) {
			return datagen.BuildTPCD(datagen.TPCDConfig{
				Parts: 400, Suppliers: 100, Customers: 300, Orders: 1500, LinesPer: 3, Seed: 11,
			})
		}},
	}
	for _, ds := range datasets {
		t.Run(ds.name, func(t *testing.T) {
			db, err := ds.build()
			if err != nil {
				t.Fatal(err)
			}
			serialG, serialIx := buildEngineBytes(t, db, 1)
			if len(serialG) == 0 || len(serialIx) == 0 {
				t.Fatal("serial build produced empty artifacts")
			}
			for _, shards := range []int{2, 4, 8} {
				gb, ib := buildEngineBytes(t, db, shards)
				if !bytes.Equal(serialG, gb) {
					t.Errorf("graph bytes differ: serial %d bytes vs %d shards %d bytes", len(serialG), shards, len(gb))
				}
				if !bytes.Equal(serialIx, ib) {
					t.Errorf("index bytes differ: serial %d bytes vs %d shards %d bytes", len(serialIx), shards, len(ib))
				}
			}
		})
	}
}

// TestParallelBuildPrestigeModesBitIdentical covers the non-default build
// options too: PageRank prestige iterates over the merged link list, whose
// order must survive sharding, and unscaled back edges skip the indegree
// aggregation.
func TestParallelBuildPrestigeModesBitIdentical(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []graph.BuildOptions{
		{ScaleBackEdges: false},
		{ScaleBackEdges: true, PrestigeDamping: 0.85, PrestigeIters: 15},
	} {
		serial := opts
		serial.Shards = 1
		gs, err := graph.Build(db, &serial)
		if err != nil {
			t.Fatal(err)
		}
		var want bytes.Buffer
		if _, err := gs.WriteTo(&want); err != nil {
			t.Fatal(err)
		}
		for _, shards := range []int{3, 8} {
			par := opts
			par.Shards = shards
			gp, err := graph.Build(db, &par)
			if err != nil {
				t.Fatal(err)
			}
			var got bytes.Buffer
			if _, err := gp.WriteTo(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("opts %+v: %d-shard graph differs from serial", opts, shards)
			}
		}
	}
}

// answerKey renders one answer in a comparison-stable form: signature
// (root + sorted edges) plus score.
func answerKey(a *core.Answer) string {
	return fmt.Sprintf("%s score=%.9f", a.Signature(), a.Score)
}

// TestParallelBuildSameTopK runs the §5.3 evaluation query suite against a
// serial and an 8-shard engine and requires identical ranked answers.
func TestParallelBuildSameTopK(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	build := func(shards int) (*core.Searcher, []eval.Query) {
		bo := graph.DefaultBuildOptions()
		bo.Shards = shards
		g, err := graph.Build(db, bo)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := index.BuildWithOptions(db, g, &index.BuildOptions{Shards: shards})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := eval.DBLPSuite(db, g)
		if err != nil {
			t.Fatal(err)
		}
		return core.NewSearcher(g, ix), queries
	}
	serial, queries := build(1)
	sharded, _ := build(8)
	opts := eval.DefaultDBLPOptions()
	for _, q := range queries {
		want, err := serial.Search(q.Terms, opts)
		if err != nil {
			t.Fatalf("query %s (serial): %v", q.Name, err)
		}
		got, err := sharded.Search(q.Terms, opts)
		if err != nil {
			t.Fatalf("query %s (sharded): %v", q.Name, err)
		}
		if len(want) != len(got) {
			t.Fatalf("query %s: %d answers serial vs %d sharded", q.Name, len(want), len(got))
		}
		for i := range want {
			if answerKey(want[i]) != answerKey(got[i]) {
				t.Errorf("query %s rank %d differs:\n  serial:  %s\n  sharded: %s",
					q.Name, i+1, answerKey(want[i]), answerKey(got[i]))
			}
		}
	}
}
