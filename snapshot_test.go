package banks

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	var snap bytes.Buffer
	if err := sys.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Reconstruct without rebuilding.
	sys2, err := LoadSystem(db, &snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1 := searchAnswers(t, sys, "sunita soumen", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	a2 := searchAnswers(t, sys2, "sunita soumen", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	if len(a1) != len(a2) {
		t.Fatalf("answer counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Score != a2[i].Score || a1[i].Root.Table != a2[i].Root.Table || a1[i].Root.RID != a2[i].Root.RID {
			t.Errorf("answer %d differs: %+v vs %+v", i, a1[i].Root, a2[i].Root)
		}
	}
	gs1, gs2 := sys.GraphStats(), sys2.GraphStats()
	if gs1.Nodes != gs2.Nodes || gs1.Arcs != gs2.Arcs {
		t.Errorf("graph stats differ: %+v vs %+v", gs1, gs2)
	}
}

func TestLoadSystemBadInput(t *testing.T) {
	db := NewDatabase()
	if _, err := LoadSystem(db, bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Error("junk snapshot should fail")
	}
}

func TestLoadSystemRejectsBadMagic(t *testing.T) {
	db := NewDatabase()
	// A non-snapshot file long enough to reach (and fail) the magic
	// check; without the header this would be misread as a section
	// length of ~2^63 bytes.
	junk := bytes.Repeat([]byte{0xFF}, 64)
	_, err := LoadSystem(db, bytes.NewReader(junk), nil)
	if err == nil {
		t.Fatal("bad magic accepted")
	}
	if !strings.Contains(err.Error(), "magic") {
		t.Errorf("err = %v, want a bad-magic error", err)
	}
}

func TestLoadSystemRejectsBadVersion(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	var snap bytes.Buffer
	if err := sys.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	raw := snap.Bytes()
	raw[8], raw[9], raw[10], raw[11] = 0xDE, 0xAD, 0xBE, 0xEF
	_, err := LoadSystem(db, bytes.NewReader(raw), nil)
	if err == nil {
		t.Fatal("bad version accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("err = %v, want a version error", err)
	}
}

func TestLoadSystemRejectsLegacyMagic(t *testing.T) {
	db := NewDatabase()
	// The superseded monolithic format is recognised but no longer loaded;
	// the error must point at the migration path.
	var b bytes.Buffer
	b.WriteString(legacySnapshotMagic)
	b.Write([]byte{0, 0, 0, 1})
	_, err := LoadSystem(db, &b, nil)
	if err == nil {
		t.Fatal("legacy snapshot accepted")
	}
	if !strings.Contains(err.Error(), "no longer supported") {
		t.Errorf("err = %v, want a legacy-rejection error", err)
	}
}

func TestDumpSQLPlusSnapshotFullRestore(t *testing.T) {
	// The documented deployment flow: dump SQL + snapshot, restore both.
	db, sys := newQuickstartSystem(t)
	var sqlDump, snap bytes.Buffer
	if err := db.DumpSQL(&sqlDump); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	db2 := NewDatabase()
	if err := db2.ExecScript(sqlDump.String()); err != nil {
		t.Fatal(err)
	}
	sys2, err := LoadSystem(db2, &snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	answers := searchAnswers(t, sys2, "byron", nil)
	if len(answers) == 0 {
		t.Fatal("restored system found nothing")
	}
	if answers[0].Root.Values[1] != "Byron Dom" {
		t.Errorf("restored tuple = %+v", answers[0].Root)
	}
}
