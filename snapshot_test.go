package banks

import (
	"bytes"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	var snap bytes.Buffer
	if err := sys.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}
	// Reconstruct without rebuilding.
	sys2, err := LoadSystem(db, &snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := sys.Search("sunita soumen", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := sys2.Search("sunita soumen", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) {
		t.Fatalf("answer counts differ: %d vs %d", len(a1), len(a2))
	}
	for i := range a1 {
		if a1[i].Score != a2[i].Score || a1[i].Root.Table != a2[i].Root.Table || a1[i].Root.RID != a2[i].Root.RID {
			t.Errorf("answer %d differs: %+v vs %+v", i, a1[i].Root, a2[i].Root)
		}
	}
	gs1, gs2 := sys.GraphStats(), sys2.GraphStats()
	if gs1.Nodes != gs2.Nodes || gs1.Arcs != gs2.Arcs {
		t.Errorf("graph stats differ: %+v vs %+v", gs1, gs2)
	}
}

func TestLoadSystemBadInput(t *testing.T) {
	db := NewDatabase()
	if _, err := LoadSystem(db, bytes.NewReader([]byte("junk")), nil); err == nil {
		t.Error("junk snapshot should fail")
	}
}

func TestDumpSQLPlusSnapshotFullRestore(t *testing.T) {
	// The documented deployment flow: dump SQL + snapshot, restore both.
	db, sys := newQuickstartSystem(t)
	var sqlDump, snap bytes.Buffer
	if err := db.DumpSQL(&sqlDump); err != nil {
		t.Fatal(err)
	}
	if err := sys.SaveSnapshot(&snap); err != nil {
		t.Fatal(err)
	}

	db2 := NewDatabase()
	if err := db2.ExecScript(sqlDump.String()); err != nil {
		t.Fatal(err)
	}
	sys2, err := LoadSystem(db2, &snap, nil)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := sys2.Search("byron", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("restored system found nothing")
	}
	if answers[0].Root.Values[1] != "Byron Dom" {
		t.Errorf("restored tuple = %+v", answers[0].Root)
	}
}
