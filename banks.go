// Package banks is a Go implementation of BANKS — Browsing ANd Keyword
// Searching in relational databases — after Bhalotia, Hulgeri, Nakhe,
// Chakrabarti and Sudarshan, "Keyword Searching and Browsing in Databases
// using BANKS" (ICDE 2002).
//
// BANKS lets users query a relational database with plain keywords, no
// schema knowledge or SQL required. Tuples become nodes of a directed
// graph whose edges follow foreign-key links (with indegree-scaled
// backward edges so hub tuples do not collapse proximity); an answer is a
// connection tree — a rooted directed tree containing a path from an
// information node to a tuple matching each keyword — ranked by a
// combination of proximity and prestige.
//
// Quick start:
//
//	db := banks.NewDatabase()
//	db.MustExec(`CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT)`)
//	db.MustExec(`CREATE TABLE paper (id TEXT PRIMARY KEY, title TEXT)`)
//	db.MustExec(`CREATE TABLE writes (aid TEXT REFERENCES author,
//	                                  pid TEXT REFERENCES paper)`)
//	// ... INSERT data ...
//	sys, err := banks.NewSystem(db, nil)
//	res, err := sys.Query(ctx, banks.Query{Text: "sunita soumen"})
//	for _, a := range res.Answers {
//	    fmt.Println(a.Format())
//	}
//
// Query is the single entry point for keyword search: one request type
// covers plain, qualified ("author:levy") and prefix matching, answer
// grouping by tree shape, execution-strategy selection, and per-search
// statistics, and every query honours its context — cancellation or a
// deadline stops the backward expanding search promptly. QueryStream
// delivers answers incrementally; QueryIter does the same as a
// range-over-func sequence.
//
// Query execution is a staged pipeline behind a strategy registry:
// StrategyBackward (the default) is the paper's backward expanding
// search, and StrategyBatched single-flights keyword resolution across
// concurrent queries and replays pooled, memoized per-term frontiers, so
// bursts of queries sharing terms share work — with answers identical to
// the backward strategy. Select per system (SystemOptions.Strategy) or
// per query (Query.Strategy).
//
// A System serves queries from an immutable engine snapshot (graph +
// index + searcher) held behind an atomic pointer. Refresh builds a new
// snapshot aside and swaps it in atomically, so queries and HTTP requests
// already in flight keep reading the snapshot they started on — Refresh
// is safe to call at any time, under any concurrency.
//
// The package also exposes the browsing subsystem of the paper's Section 4
// via System.Handler, an http.Handler serving hyperlinked table views,
// keyword search, and the four display templates.
package banks

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/banksdb/banks/internal/core"
	drv "github.com/banksdb/banks/internal/driver"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
	"github.com/banksdb/banks/internal/store"
	"github.com/banksdb/banks/internal/wal"
	"github.com/banksdb/banks/internal/xmlshred"
)

// Database is an embedded relational database with SQL access and enforced
// primary/foreign keys — the substrate BANKS builds its graph from. It is
// safe for concurrent use.
type Database struct {
	inner  *sqldb.Database
	engine *sqlexec.Engine
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	d := sqldb.NewDatabase()
	return &Database{inner: d, engine: sqlexec.New(d)}
}

// Row is one result row; values are nil, int64, float64, bool or string.
type Row []interface{}

// Result is the outcome of one SQL statement.
type Result struct {
	Columns      []string
	Rows         []Row
	RowsAffected int64
}

// Exec parses and runs one SQL statement. Placeholders (?) bind from args;
// supported argument types are nil, integers, floats, bools, strings and
// time.Time.
func (d *Database) Exec(sql string, args ...interface{}) (*Result, error) {
	params := make([]sqldb.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, err
		}
		params[i] = v
	}
	res, err := d.engine.Execute(sql, params...)
	if err != nil {
		return nil, err
	}
	return fromResult(res), nil
}

// MustExec is Exec, panicking on error; intended for examples and tests.
func (d *Database) MustExec(sql string, args ...interface{}) *Result {
	r, err := d.Exec(sql, args...)
	if err != nil {
		panic(err)
	}
	return r
}

// ExecScript runs a semicolon-separated SQL script, stopping at the first
// error.
func (d *Database) ExecScript(sql string) error {
	_, err := d.engine.ExecuteScript(sql)
	return err
}

// Tables returns the table names in creation order.
func (d *Database) Tables() []string { return d.inner.TableNames() }

// RegisterDriver exposes the database to database/sql under
// sql.Open("banks", name).
func (d *Database) RegisterDriver(name string) { drv.Register(name, d.inner) }

// Internal returns the underlying engine database; it is exported for the
// sibling packages inside this module (cmd/, examples/) and carries no
// compatibility promise.
func (d *Database) Internal() *sqldb.Database { return d.inner }

// WrapDatabase adopts an already-built engine database (for example one of
// the internal/datagen generators). Like Internal, it exists for the
// sibling packages inside this module and carries no compatibility
// promise.
func WrapDatabase(inner *sqldb.Database) *Database {
	return &Database{inner: inner, engine: sqlexec.New(inner)}
}

// LoadXML shreds one XML document into the xml_element / xml_attribute
// relations (created on first use), modelling containment as foreign-key
// edges — the paper's Section 7 XML extension. After Refresh, keyword
// queries return connection trees through the document structure. It
// returns the number of elements loaded.
func (d *Database) LoadXML(r io.Reader, docName string) (int, error) {
	return xmlshred.Load(d.inner, r, docName)
}

func toValue(a interface{}) (sqldb.Value, error) {
	switch v := a.(type) {
	case nil:
		return sqldb.Null(), nil
	case int:
		return sqldb.Int(int64(v)), nil
	case int32:
		return sqldb.Int(int64(v)), nil
	case int64:
		return sqldb.Int(v), nil
	case float32:
		return sqldb.Float(float64(v)), nil
	case float64:
		return sqldb.Float(v), nil
	case bool:
		return sqldb.Bool(v), nil
	case string:
		return sqldb.Text(v), nil
	case time.Time:
		return sqldb.Text(v.UTC().Format(time.RFC3339)), nil
	}
	return sqldb.Null(), fmt.Errorf("banks: unsupported argument type %T", a)
}

func fromValue(v sqldb.Value) interface{} {
	switch v.T {
	case sqldb.TypeNull:
		return nil
	case sqldb.TypeInt:
		return v.I
	case sqldb.TypeFloat:
		return v.F
	case sqldb.TypeBool:
		return v.I != 0
	default:
		return v.S
	}
}

func fromResult(r *sqlexec.Result) *Result {
	out := &Result{Columns: r.Columns, RowsAffected: r.RowsAffected}
	for _, row := range r.Rows {
		conv := make(Row, len(row))
		for i, v := range row {
			conv[i] = fromValue(v)
		}
		out.Rows = append(out.Rows, conv)
	}
	return out
}

// SystemOptions configure graph construction and query-time caching.
type SystemOptions struct {
	// DisableBackEdgeScaling turns off the §2.1 indegree scaling of
	// backward edges (for ablation; the paper's behaviour is on).
	DisableBackEdgeScaling bool
	// PrestigeDamping, when in (0,1), uses PageRank-style prestige
	// transfer instead of raw reference indegree (the extension §2.2
	// mentions). 0 keeps the paper's indegree prestige.
	PrestigeDamping float64
	// BuildShards caps how many concurrent workers Refresh uses to build
	// the graph and keyword index. 0 uses runtime.GOMAXPROCS(0); 1 forces
	// the serial build. Any shard count produces byte-identical engines,
	// so parallelism is purely a wall-clock knob.
	BuildShards int
	// MatchCacheBytes bounds the per-snapshot keyword match-set cache
	// consulted before the index on every term lookup. 0 uses
	// DefaultMatchCacheBytes; a negative value disables caching. The
	// cache belongs to the immutable engine snapshot, so Refresh
	// invalidates it for free by swapping in a fresh one.
	MatchCacheBytes int64
	// Strategy selects the default query execution strategy for the
	// system: StrategyBackward (also the "" default) runs the paper's
	// per-query backward expanding search; StrategyBatched single-flights
	// term resolution across concurrent queries and serves per-term
	// frontiers from a shared pool of memoized iterators, so bursts of
	// queries sharing terms share work. Individual queries can override
	// with Query.Strategy. NewSystem rejects unknown names.
	Strategy string
	// FrontierPoolIters caps the shared frontier pool of the batched
	// strategy: how many warm per-origin iterators (each holding dense
	// node-indexed state plus its memoized trail — up to ~40 bytes/node
	// when deeply expanded) a snapshot keeps between queries. 0 uses
	// core's default (32); negative disables pooling.
	FrontierPoolIters int
	// StoreBudgetBytes bounds the resident posting blocks of a
	// store-opened engine (OpenSystem/LoadSystem of a segmented store):
	// decoded blocks beyond the budget are evicted LRU — the EMBANKS
	// memory-bound serving mode. 0 keeps every touched block resident;
	// negative disables block caching. Ignored by NewSystem (a built
	// engine is fully resident by construction).
	StoreBudgetBytes int64
	// StorePath, when set, makes every Refresh (including the initial
	// build in NewSystem) persist the freshly built engine to this path
	// in the segmented store format before swapping it in —
	// build-aside-then-persist, so the store on disk always matches the
	// serving engine and the next process start can OpenSystem it
	// instantly. A persist failure fails the Refresh without swapping.
	StorePath string
	// LayoutOrder selects the node-id numbering of the built graph:
	// "" or "rid" keeps insertion (RID) order within each table;
	// "degree" renumbers each table's nodes by descending degree
	// (ties by RID), clustering the hubs backward search touches most
	// onto the fewest pages of the persisted store — fewer page faults
	// on a cold mmap-backed open. Answers are layout-independent: every
	// ranking tie-break keys on (table, RID), never on raw node ids.
	LayoutOrder string
	// WALPath, when set, enables live mutations: System.Apply journals
	// row-level changes to a write-ahead log at this path and folds them
	// into delta overlays over the immutable engine, so small changes
	// become visible to queries in milliseconds without the full
	// SQL→graph→index rebuild Refresh pays. Compact folds the accumulated
	// deltas back into concrete structures (and, with StorePath set,
	// truncates the WAL after persisting the compacted engine).
	//
	// On startup the WAL tail is replayed: NewSystem replays every
	// journaled batch into the database before the initial build (the
	// database is expected to hold the rows as of the WAL's start);
	// OpenSystem replays only batches newer than the store's recorded
	// WAL sequence, restoring the pre-crash view without a rebuild.
	//
	// Mutually exclusive with PrestigeDamping: PageRank-style prestige
	// is a global fixpoint and cannot be maintained incrementally.
	WALPath string
}

// Names of the built-in query execution strategies, threaded through
// SystemOptions.Strategy and Query.Strategy.
const (
	StrategyBackward = core.StrategyBackward
	StrategyBatched  = core.StrategyBatched
)

// Strategies returns the names of the registered execution strategies.
func Strategies() []string { return core.Strategies() }

// DefaultMatchCacheBytes is the match-set cache budget used when
// SystemOptions.MatchCacheBytes is zero.
const DefaultMatchCacheBytes = 4 << 20

// cacheBytes resolves the MatchCacheBytes knob to an effective budget.
func (o SystemOptions) cacheBytes() int64 {
	switch {
	case o.MatchCacheBytes < 0:
		return 0
	case o.MatchCacheBytes == 0:
		return DefaultMatchCacheBytes
	default:
		return o.MatchCacheBytes
	}
}

// engine is one immutable snapshot of the derived search structures: the
// data graph, the keyword index built over it, and the searcher that
// answers queries against the pair. An engine is never mutated after
// construction; Refresh swaps a whole new engine in atomically, and every
// query (including tuple materialization at answer-conversion time) pins
// the engine it started on, so in-flight work is never torn between two
// snapshots.
type engine struct {
	g        graph.View
	ix       index.View
	cache    *index.MatchCache  // nil when caching is disabled
	flight   *index.FlightGroup // single-flight admission (batched strategy)
	searcher *core.Searcher
	st       *store.Store // non-nil when the engine serves from a disk store
	walSeq   uint64       // last WAL sequence folded into this snapshot's views
	// epoch is the cache invalidation epoch this snapshot reads and
	// writes at. Fresh engines start at 0; a publish that carries the
	// previous snapshot's cache bumps it once per batch that changed any
	// term's match set, so readers pinned to older snapshots never see
	// newer entries and stale refills are rejected.
	epoch uint64
}

// concrete returns the engine's graph and index as their concrete types
// when the snapshot is not an overlay (built or store-opened engines);
// overlay snapshots (live mutations pending compaction) return false.
func (e *engine) concrete() (*graph.Graph, *index.Index, bool) {
	g, okG := e.g.(*graph.Graph)
	ix, okI := e.ix.(*index.Index)
	return g, ix, okG && okI
}

// storeErr reports the first lazy-load failure of a store-backed engine;
// always nil for built engines. Queries check it at their boundary so
// disk corruption or I/O loss fails loudly instead of shrinking results.
func (e *engine) storeErr() error {
	if e.st == nil {
		return nil
	}
	return e.st.Err()
}

// newEngine assembles one immutable snapshot: graph, index, a fresh
// match-set cache and single-flight group scoped to the pair, and the
// searcher (with its frontier pool) over all of them.
func newEngine(g graph.View, ix index.View, opts SystemOptions) *engine {
	cache := index.NewMatchCache(opts.cacheBytes())
	flight := index.NewFlightGroup()
	poolIters := opts.FrontierPoolIters
	if poolIters == 0 {
		poolIters = core.DefaultFrontierPoolIters
	}
	return &engine{
		g:      g,
		ix:     ix,
		cache:  cache,
		flight: flight,
		searcher: core.NewSearcher(g, ix).
			WithMatchCache(cache).
			WithFlightGroup(flight).
			WithFrontierPool(poolIters),
	}
}

// newEngineFrom assembles the next snapshot over prev's warm state: the
// match cache and single-flight group carry over with only the batch's
// touched terms invalidated (epoch-guarded — see MatchCache.Invalidate),
// and for a non-structural batch (pure text updates: no nodes or edges
// moved) the batched strategy's memoized frontier pool carries too.
// Structural batches keep the pool object but bump its generation,
// dropping the now-stale iterators. The graph and index views must share
// prev's node numbering (delta overlays append, never renumber); a
// rebuild or a renumbering compaction must use newEngine instead.
func newEngineFrom(prev *engine, g graph.View, ix index.View, opts SystemOptions, touched []string, structural bool) *engine {
	if prev == nil {
		return newEngine(g, ix, opts)
	}
	epoch := prev.epoch
	if len(touched) > 0 {
		epoch++
	}
	prev.cache.Invalidate(epoch, touched)
	poolIters := opts.FrontierPoolIters
	if poolIters == 0 {
		poolIters = core.DefaultFrontierPoolIters
	}
	return &engine{
		g:      g,
		ix:     ix,
		cache:  prev.cache,
		flight: prev.flight,
		epoch:  epoch,
		searcher: core.NewSearcher(g, ix).
			WithMatchCache(prev.cache).
			WithFlightGroup(prev.flight).
			WithFrontierPool(poolIters).
			WithSnapshotEpoch(epoch).
			AdoptFrontierPool(prev.searcher, structural),
	}
}

// System couples a database snapshot with its BANKS graph and keyword
// index and answers keyword queries. Apply folds small row-level changes
// in live (SystemOptions.WALPath); rebuild with Refresh after bulk data
// changes; searches against a stale System still work but will not see new
// tuples. A System is safe for concurrent use, including Apply, Refresh
// and Compact while queries and Handler requests are in flight.
type System struct {
	db    *Database
	eng   atomic.Pointer[engine]
	opts  SystemOptions
	store *store.Store // the store backing OpenSystem/LoadSystem, for Close

	// closed is checked lock-free at every query boundary; the fields
	// below it are guarded by mu, which serializes the writers: Apply,
	// Refresh, Compact and Close.
	closed     atomic.Bool
	mu         sync.Mutex
	closeErr   error        // sticky result of the first Close
	mutErr     error        // sticky mutation-path failure; cleared by rebuild
	wal        *wal.Log     // non-nil iff opts.WALPath is set
	gd         *graph.Delta // live graph delta over the last compacted base
	id         *index.Delta // live index delta, in step with gd
	appliedSeq uint64       // last WAL sequence folded into the serving engine
	rebuildGen uint64       // bumped on every base swap (Refresh/Compact); guards Compact's aside build
	tail       *tailLog     // first-touch log of batches applied while Compact builds aside; nil otherwise

	// compactMu serializes Compact's build-aside phase against other
	// Compacts, so at most one tail log is ever live. It is always taken
	// before mu and released after; mu itself is dropped during the fold.
	compactMu sync.Mutex
	// compactHook, when non-nil, runs after Compact's lock-free aside
	// build and before the fold+swap. Test-only: it lets tests apply
	// batches deterministically inside the tail window.
	compactHook func()

	// warmPublishes counts snapshot publishes that carried the previous
	// snapshot's cache and flight group; frontierCarries the subset that
	// also kept the memoized frontier pool (non-structural batches).
	warmPublishes   atomic.Int64
	frontierCarries atomic.Int64
}

// engine returns the current snapshot. Callers pin it once per operation
// so one logical query never mixes two snapshots.
func (s *System) engine() *engine { return s.eng.Load() }

// NewSystem builds the data graph (§2) and keyword index (§3) for db.
//
// With SystemOptions.WALPath set, any existing WAL at that path is first
// replayed into db (the database is expected to hold the rows as of the
// WAL's start), so the initial build already contains the journaled
// mutations and System.Apply can journal new ones.
func NewSystem(db *Database, opts *SystemOptions) (*System, error) {
	s := &System{db: db}
	if opts != nil {
		s.opts = *opts
	}
	if err := core.ValidateStrategy(s.opts.Strategy); err != nil {
		return nil, fmt.Errorf("banks: %w", err)
	}
	if _, err := s.openWAL(0, false); err != nil {
		return nil, err
	}
	if err := s.Refresh(); err != nil {
		s.Close()
		return nil, err
	}
	return s, nil
}

// Refresh rebuilds the graph and index from the current database contents
// and atomically swaps the new snapshot in. Queries already in flight
// finish against the snapshot they started on; queries that begin after
// Refresh returns see the new data.
//
// When SystemOptions.StorePath is set, Refresh additionally persists the
// freshly built engine there (segmented store format, atomic rename)
// before swapping — build aside, persist, then serve. If the persist
// fails, the previous snapshot keeps serving and Refresh returns the
// error.
func (s *System) Refresh() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

// rebuildLocked is the shared full-rebuild path behind Refresh and
// Compact: build aside, optionally persist, swap, and reset the live
// mutation state (fresh deltas over the new base; WAL truncated once the
// store has durably recorded the applied sequence). Callers hold s.mu.
func (s *System) rebuildLocked() error {
	if s.closed.Load() {
		return ErrClosed
	}
	bo := graph.DefaultBuildOptions()
	bo.ScaleBackEdges = !s.opts.DisableBackEdgeScaling
	bo.PrestigeDamping = s.opts.PrestigeDamping
	bo.Shards = s.opts.BuildShards
	bo.LayoutOrder = s.opts.LayoutOrder
	g, err := graph.Build(s.db.inner, bo)
	if err != nil {
		return err
	}
	ix, err := index.BuildWithOptions(s.db.inner, g, &index.BuildOptions{Shards: s.opts.BuildShards})
	if err != nil {
		return err
	}
	if s.opts.StorePath != "" {
		// Carry the current workload's hot terms into the persisted store
		// so the next open warms the same set. The cache is nil when
		// caching is disabled (MatchCacheBytes < 0) — no keys to carry.
		var warm []string
		if old := s.eng.Load(); old != nil && old.cache != nil {
			warm = old.cache.HotKeys(warmKeyLimit)
		}
		se := store.Engine{Graph: g, Index: ix, WarmKeys: warm, WALSeq: s.appliedSeq}
		if err := store.WriteFile(s.opts.StorePath, se); err != nil {
			return fmt.Errorf("banks: persisting rebuilt engine: %w", err)
		}
	}
	if s.wal != nil {
		// The rebuilt engine contains every applied mutation. With a
		// persisted store recording appliedSeq the journal tail is
		// redundant — drop it. Without one the WAL stays the only durable
		// record of the deltas, so it is retained for the next replay.
		if s.opts.StorePath != "" {
			if err := s.wal.Truncate(); err != nil {
				return fmt.Errorf("banks: truncating WAL after rebuild: %w", err)
			}
		}
		s.gd = graph.NewDelta(g, s.db.inner, !s.opts.DisableBackEdgeScaling)
		s.id = index.NewDelta(ix)
	}
	eng := newEngine(g, ix, s.opts)
	eng.walSeq = s.appliedSeq
	s.eng.Store(eng)
	s.mutErr = nil
	// The base the serving engine reads from changed: any Compact building
	// aside must discard its work, and its tail log is now meaningless.
	s.rebuildGen++
	s.tail = nil
	return nil
}

// Close releases the resources behind the System: the write-ahead log of
// a live-mutation system and the disk store backing OpenSystem (or
// LoadSystem of a segmented snapshot); it is a no-op for plain built
// systems. Close is idempotent — the first call decides the error and
// later calls return it — and safe to race with queries, Apply, Refresh
// and Compact: operations that begin after Close fail with ErrClosed,
// while queries already in flight finish against the snapshot they
// pinned. (In-flight queries of a store-backed engine may still surface
// read errors, since they read the store file lazily.)
func (s *System) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return s.closeErr
	}
	s.closed.Store(true)
	var errs []error
	if s.wal != nil {
		if err := s.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if s.store != nil {
		if err := s.store.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	s.closeErr = errors.Join(errs...)
	return s.closeErr
}

// Database returns the database the system was built over.
func (s *System) Database() *Database { return s.db }

// GraphStats summarize the in-memory data graph (§5.2).
type GraphStats struct {
	Tables int
	Nodes  int
	Arcs   int
	Bytes  int64 // estimated resident size of the graph structures
}

// GraphStats returns the current graph's size statistics.
func (s *System) GraphStats() GraphStats {
	g := s.engine().g
	return GraphStats{
		Tables: g.NumTables(),
		Nodes:  g.NumNodes(),
		Arcs:   g.NumArcs(),
		Bytes:  g.MemoryFootprint(),
	}
}

// IndexStats summarize the keyword index.
type IndexStats struct {
	Terms    int
	Postings int
}

// IndexStats returns the keyword index's size statistics.
func (s *System) IndexStats() IndexStats {
	ix := s.engine().ix
	return IndexStats{Terms: ix.NumTerms(), Postings: ix.NumPostings()}
}

// CacheStats summarize the current snapshot's keyword match-set cache.
// Counters reset whenever Refresh swaps in a new snapshot (each snapshot
// owns a fresh cache).
type CacheStats struct {
	Hits     int64 // term lookups served from the cache
	Misses   int64 // term lookups that fell through to the index
	Entries  int   // resident match sets
	Bytes    int64 // charged bytes (keys + postings + overhead)
	MaxBytes int64 // configured budget (0 when caching is disabled)
	// SingleFlight counts term lookups that piggybacked on another
	// query's in-flight resolution instead of resolving themselves — the
	// admission layer's contribution under concurrent shared-term bursts
	// (batched strategy).
	SingleFlight int64
	// FrontierReuses counts query origins served warm from the shared
	// frontier pool: expansions replayed from a memoized trail instead of
	// re-running Dijkstra (batched strategy).
	FrontierReuses int64
	// Epoch is the invalidation epoch of the serving snapshot's cache.
	// Live mutations bump it once per Apply batch that changed any term's
	// match set; a carried cache keeps its counters across the bump.
	Epoch uint64
	// Invalidated counts cache entries dropped by targeted invalidation
	// when a publish carried the cache forward (only the batch's touched
	// terms and their covering prefixes are swept).
	Invalidated int64
	// WarmPublishes counts snapshot publishes (Apply, and Compact when
	// the numbering is unchanged) that carried the previous snapshot's
	// cache and flight group forward instead of starting cold.
	WarmPublishes int64
	// FrontierCarries counts warm publishes that additionally retained
	// the batched strategy's memoized frontier pool — batches that moved
	// no nodes or edges (pure text updates).
	FrontierCarries int64
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (cs CacheStats) HitRate() float64 {
	total := cs.Hits + cs.Misses
	if total == 0 {
		return 0
	}
	return float64(cs.Hits) / float64(total)
}

// CacheStats returns the current snapshot's match-cache counters; all
// zeros when caching is disabled.
func (s *System) CacheStats() CacheStats {
	eng := s.engine()
	st := eng.cache.Stats()
	return CacheStats{
		Hits:            st.Hits,
		Misses:          st.Misses,
		Entries:         st.Entries,
		Bytes:           st.Bytes,
		MaxBytes:        st.MaxBytes,
		SingleFlight:    eng.flight.Coalesced(),
		FrontierReuses:  eng.searcher.FrontierReuses(),
		Epoch:           st.Epoch,
		Invalidated:     st.Invalidated,
		WarmPublishes:   s.warmPublishes.Load(),
		FrontierCarries: s.frontierCarries.Load(),
	}
}
