package banks

import (
	"io"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPublicHandler(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	ts := httptest.NewServer(sys.Handler(&SearchOptions{ExcludedRootTables: []string{"writes"}}))
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/search?q=sunita+soumen")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "Mining Surprising Patterns") {
		t.Error("search result missing the connecting paper")
	}

	resp2, err := ts.Client().Get(ts.URL + "/browse?table=author")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, _ := io.ReadAll(resp2.Body)
	if !strings.Contains(string(body2), "Sarawagi") {
		t.Error("browse missing author data")
	}
}
