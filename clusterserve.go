package banks

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/banksdb/banks/internal/cluster"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/serve"
)

// clusterServer is the cluster's production front door: a JSON /search
// endpoint over Cluster.Query wrapped in the same admission-control,
// deadline and observability machinery the single-engine ServeHandler
// uses, plus the cluster's routing and per-partition gauges.
type clusterServer struct {
	c              *Cluster
	opts           *ServeOptions
	gate           *serve.Gate
	heavyGate      *serve.Gate
	metrics        *serve.Metrics
	defaultTimeout time.Duration
	mux            *http.ServeMux
}

// ServeHandler returns the cluster's HTTP front door: GET /search
// answers keyword queries as JSON (answers in wire form — (table, rid)
// references plus rendered labels — and the merged statistics including
// the routing decision), with admission control, per-class heavy-query
// gating, load shedding with Retry-After, server-side deadlines, and
// the /debug + /debug/vars observability surface carrying per-partition
// gauges and the broker's routing counters.
//
// Status mapping matches the single-engine front door: shed and
// server-timeout requests get 503 + Retry-After, a client-chosen
// timeout gets 408.
func (c *Cluster) ServeHandler(opts *ServeOptions) http.Handler {
	if opts == nil {
		opts = &ServeOptions{}
	}
	s := &clusterServer{c: c, opts: opts, defaultTimeout: opts.DefaultTimeout}
	if opts.MaxInFlight > 0 {
		s.gate = serve.NewGate(serve.GateConfig{
			Workers:      opts.MaxInFlight,
			Queue:        opts.MaxQueue,
			QueueTimeout: opts.QueueTimeout,
			RetryAfter:   opts.RetryAfter,
		})
	}
	if opts.HeavyMaxInFlight > 0 {
		s.heavyGate = serve.NewGate(serve.GateConfig{
			Workers:      opts.HeavyMaxInFlight,
			Queue:        opts.HeavyMaxQueue,
			QueueTimeout: opts.HeavyQueueTimeout,
			RetryAfter:   opts.RetryAfter,
		})
	}
	m := serve.NewMetrics(opts.SlowQuery, opts.SlowLogSize)
	m.BindGate(s.gate)
	m.BindGateNamed("gate_heavy", s.heavyGate)
	c.bindClusterGauges(m)
	s.metrics = m

	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.Handle("/debug", serve.DebugHandler(m))
	mux.Handle("/debug/vars", serve.DebugHandler(m))
	s.mux = mux
	return s
}

// bindClusterGauges registers the routing counters and one gauge set per
// partition (size, sketch presence) on the metrics registry.
func (c *Cluster) bindClusterGauges(m *serve.Metrics) {
	reg := m.Registry()
	reg.Gauge("cluster_partitions", func() int64 { return int64(c.Partitions()) })
	reg.Gauge("cluster_queries_total", func() int64 { return c.Stats().Queries })
	reg.Gauge("cluster_partitions_routed_total", func() int64 { return c.Stats().PartitionsRouted })
	reg.Gauge("cluster_partitions_pruned_total", func() int64 { return c.Stats().PartitionsPruned })
	for i, meta := range c.coord.Partitions() {
		meta := meta
		prefix := fmt.Sprintf("partition_%d", i)
		reg.Gauge(prefix+"_nodes", func() int64 { return int64(meta.Nodes) })
		reg.Gauge(prefix+"_arcs", func() int64 { return int64(meta.Arcs) })
		reg.Gauge(prefix+"_sketch_bytes", func() int64 { return int64(len(meta.Sketch)) })
	}
}

func (s *clusterServer) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// clusterSearchResponse is the JSON reply of the cluster's /search.
type clusterSearchResponse struct {
	Query   string              `json:"query"`
	Answers []clusterWireAnswer `json:"answers,omitempty"`
	Stats   cluster.Stats       `json:"stats"`
	Error   string              `json:"error,omitempty"`
}

// clusterWireAnswer is one answer in the JSON reply: the wire answer
// plus a human-readable label rendered from the front door's database.
type clusterWireAnswer struct {
	cluster.Answer
	Label string `json:"label,omitempty"`
}

func (s *clusterServer) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (s *clusterServer) writeOverload(w http.ResponseWriter, gate *serve.Gate, err error) {
	if gate == nil {
		gate = s.gate
	}
	retry := time.Second
	if gate != nil {
		retry = gate.RetryAfter()
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	s.writeJSON(w, http.StatusServiceUnavailable, clusterSearchResponse{Error: err.Error()})
}

func (s *clusterServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	timeoutParam := r.URL.Query().Get("timeout")
	terms := index.Tokenize(q)
	if len(terms) == 0 {
		s.writeJSON(w, http.StatusBadRequest, clusterSearchResponse{Error: "empty query"})
		return
	}
	// Validate before admission, as in the single-engine front door: a
	// malformed request must not occupy a worker slot.
	clientTimeout := timeoutParam != ""
	var clientDeadline time.Duration
	if clientTimeout {
		d, err := time.ParseDuration(timeoutParam)
		if err != nil || d <= 0 {
			s.writeJSON(w, http.StatusBadRequest, clusterSearchResponse{
				Error: fmt.Sprintf("bad timeout %q (want a duration like 500ms)", timeoutParam)})
			return
		}
		clientDeadline = d
	}
	// Per-class admission: heavy classes contend for the heavy gate when
	// one is configured, so expensive scatter queries cannot starve
	// cheap single-term traffic.
	class := serve.ClassOf(len(terms), false, false)
	gate := s.gate
	if s.heavyGate != nil && serve.IsHeavyClass(class) {
		gate = s.heavyGate
	}
	release, aerr := gate.Acquire(r.Context())
	if aerr != nil {
		if serve.IsOverload(aerr) {
			s.writeOverload(w, gate, aerr)
		}
		return
	}
	ctx := r.Context()
	if clientTimeout {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, clientDeadline)
		defer cancel()
	} else if s.defaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.defaultTimeout)
		defer cancel()
	}

	req := cluster.RequestFromOptions(terms, false, false, s.opts.Search.toCore())
	start := time.Now()
	// As in the single-engine front door, the deadline is enforced at
	// the response layer: the scatter runs in its own goroutine and the
	// response leaves the moment ctx expires; the abandoned scatter
	// unwinds in the background and frees its slot when it exits.
	type queryResult struct {
		res *cluster.Result
		err error
	}
	done := make(chan queryResult, 1)
	go func() {
		res, qerr := s.c.coord.Query(ctx, req)
		var detail any
		if res != nil {
			detail = res.Stats
		}
		s.metrics.ObserveQuery(serve.QueryOutcome{
			Query:           q,
			Strategy:        StrategyDistributed,
			Class:           class,
			Elapsed:         time.Since(start),
			Err:             qerr,
			BudgetExhausted: res != nil && res.Stats.BudgetExhausted,
			TimedOut:        errors.Is(qerr, context.DeadlineExceeded),
			Detail:          detail,
		})
		done <- queryResult{res, qerr}
		release()
	}()
	var res *cluster.Result
	var err error
	select {
	case out := <-done:
		res, err = out.res, out.err
	case <-ctx.Done():
		err = ctx.Err()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		if clientTimeout {
			s.writeJSON(w, http.StatusRequestTimeout, clusterSearchResponse{
				Error: fmt.Sprintf("search timed out after %s", timeoutParam)})
		} else {
			s.writeOverload(w, gate, fmt.Errorf("search exceeded the server's %s limit", s.defaultTimeout))
		}
		return
	}
	if errors.Is(err, context.Canceled) {
		return // client disconnected; nobody is listening
	}
	if err != nil {
		s.writeJSON(w, http.StatusBadRequest, clusterSearchResponse{Error: err.Error()})
		return
	}
	resp := clusterSearchResponse{Query: q, Stats: res.Stats}
	for i := range res.Answers {
		a := clusterWireAnswer{Answer: res.Answers[i]}
		a.Label = s.labelOf(res.Answers[i].Root)
		resp.Answers = append(resp.Answers, a)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// labelOf renders a root reference compactly against the database.
func (s *clusterServer) labelOf(ref cluster.Ref) string {
	s.c.db.inner.RLock()
	defer s.c.db.inner.RUnlock()
	t := s.c.tupleOfLocked(ref)
	if len(t.Columns) == 0 {
		return fmt.Sprintf("%s#%d", ref.Table, ref.RID)
	}
	return strings.TrimSpace(t.Label())
}
