package banks

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/index"
)

// ErrStopped is returned by QueryStream (and QueryIter internally) when
// the callback cancels the search.
var ErrStopped = errors.New("banks: search stopped by caller")

// Query describes one keyword search. The zero value of every field but
// Text is a sensible default, so the minimal request is
// Query{Text: "sunita soumen"}. One request type covers everything the
// four pre-Query entry points did: plain search, qualified and prefix
// matching (§7), and grouping by tree shape (§7 summarization).
type Query struct {
	// Text is the keyword query. Without Qualified it is tokenized on
	// non-alphanumeric boundaries ("sunita, soumen" equals "sunita
	// soumen"); with Qualified it is split on whitespace so terms of the
	// form "relation:keyword" or "attribute:keyword" survive intact.
	Text string
	// Qualified enables the paper's planned "author:Levy" term form: a
	// term containing a colon restricts its keyword to a named relation
	// or attribute.
	Qualified bool
	// Prefix enables approximate matching: a term (an unqualified one,
	// when Qualified is set) that matches no indexed token exactly falls
	// back to prefix matching.
	Prefix bool
	// GroupByShape additionally populates Results.Groups, partitioning
	// the answers by their tree structure over the schema.
	GroupByShape bool
	// Strategy overrides the system's default execution strategy for
	// this query ("" keeps the system default; see StrategyBackward and
	// StrategyBatched). Unknown names make Query return an error.
	Strategy string
	// Options tunes ranking and limits; nil uses the paper's defaults.
	Options *SearchOptions
}

// AnswerGroup is a set of answers sharing one tree structure over the
// schema, e.g. "Paper(Writes(Author),Writes(Author))" — the §7 "summarize
// the output" extension, populated by Query when GroupByShape is set.
type AnswerGroup struct {
	Shape   string
	Answers []*Answer
}

// Stats reports what one search did — the per-query execution statistics
// the core computes (iterator pops, candidate trees generated, truncation
// flags), useful for diagnosing slow or truncated queries.
type Stats struct {
	// Terms are the active terms after normalization and dropping.
	Terms []string
	// MatchedNodes is |S_i| per active term.
	MatchedNodes []int
	// Pops counts shortest-path iterator pops.
	Pops int
	// Generated counts candidate trees generated (pre-dedup).
	Generated int
	// Duplicates counts trees dropped as duplicates modulo direction.
	Duplicates int
	// SingleChildRoots counts trees discarded by the one-child-root rule.
	SingleChildRoots int
	// ExcludedRoots counts trees discarded by root-table exclusion.
	ExcludedRoots int
	// MetadataTruncated reports a metadata match hitting MetadataNodeLimit.
	MetadataTruncated bool
	// CombosTruncated reports a cross product hitting MaxCombosPerVisit.
	CombosTruncated bool
	// TermsDropped counts unmatched terms dropped (AllowPartialMatch).
	TermsDropped int
	// ArcsScanned counts graph arcs relaxed during expansion.
	ArcsScanned int
	// BytesFaulted counts disk-store bytes faulted while the query ran
	// (0 for in-memory systems).
	BytesFaulted int64
	// BudgetExhausted reports that the query was truncated by its cost
	// budget; the answers are the partial set emitted before the cutoff.
	BudgetExhausted bool
	// BudgetReason names the exhausted axis: "pops", "arcs" or "bytes".
	BudgetReason string
	// PartitionsTotal is the partition count of the cluster that served
	// the query (0 for single-engine queries).
	PartitionsTotal int
	// PartitionsRouted counts partitions the query scattered to.
	PartitionsRouted int
	// PartitionsPruned counts partitions the term-statistics broker
	// proved could not match, skipped without a scatter leg.
	PartitionsPruned int
	// PartitionLocalBound reports the distributed completeness bound:
	// every returned answer is exact, and every answer whose connection
	// tree lies inside one partition was found, but trees crossing
	// partition boundaries were not searched. Always true for
	// distributed queries over more than one partition.
	PartitionLocalBound bool
}

func statsFromCore(st *core.Stats) Stats {
	if st == nil {
		return Stats{}
	}
	return Stats{
		Terms:             st.Terms,
		MatchedNodes:      st.MatchedNodes,
		Pops:              st.Pops,
		Generated:         st.Generated,
		Duplicates:        st.Duplicates,
		SingleChildRoots:  st.SingleChildRoots,
		ExcludedRoots:     st.ExcludedRoots,
		MetadataTruncated: st.MetadataTruncated,
		CombosTruncated:   st.CombosTruncated,
		TermsDropped:      st.TermsDropped,
		ArcsScanned:       st.ArcsScanned,
		BytesFaulted:      st.BytesFaulted,
		BudgetExhausted:   st.BudgetExhausted,
		BudgetReason:      st.BudgetReason,

		PartitionsTotal:     st.PartitionsTotal,
		PartitionsRouted:    st.PartitionsRouted,
		PartitionsPruned:    st.PartitionsPruned,
		PartitionLocalBound: st.PartitionLocalBound,
	}
}

// Results is the outcome of one Query: the ranked answers, the optional
// shape groups, and the search's execution statistics.
type Results struct {
	// Answers are the connection trees in emission (approximate
	// relevance) order, ranks assigned.
	Answers []*Answer
	// Groups partitions Answers by tree shape; populated only when the
	// query set GroupByShape.
	Groups []AnswerGroup
	// Stats are the per-search execution statistics.
	Stats Stats
}

// Query answers a keyword query against the current engine snapshot. The
// search honours ctx: cancellation or an expired deadline stops the
// backward expansion within a few hundred iterator pops and returns the
// context's error. A Refresh concurrent with Query is safe — the query
// finishes against the snapshot it started on.
func (s *System) Query(ctx context.Context, q Query) (*Results, error) {
	return s.run(ctx, q, nil)
}

// QueryStream is Query with incremental delivery: fn sees each answer the
// moment the output heap emits it, letting callers render results while
// the search is still expanding. Returning false from fn cancels the
// search; QueryStream then returns the partial Results along with
// ErrStopped. Context cancellation returns the context's error instead.
func (s *System) QueryStream(ctx context.Context, q Query, fn func(*Answer) bool) (*Results, error) {
	if fn == nil {
		return nil, fmt.Errorf("banks: QueryStream requires a callback")
	}
	return s.run(ctx, q, fn)
}

// run is the shared driver behind Query and QueryStream: it pins the
// engine snapshot once, resolves the request, runs the context-aware core
// search, and materializes answers against the pinned snapshot.
func (s *System) run(ctx context.Context, q Query, fn func(*Answer) bool) (*Results, error) {
	if s.closed.Load() {
		return nil, ErrClosed
	}
	eng := s.engine()
	// Pin the byte source of a store-backed snapshot for the whole query:
	// Close unmaps the file only after every holder drains, so a search
	// can never fault on memory yanked out from under it.
	if eng.st != nil {
		if !eng.st.Acquire() {
			return nil, ErrClosed
		}
		defer eng.st.Release()
	}

	var terms []string
	if q.Qualified {
		terms = strings.Fields(q.Text)
	} else {
		terms = index.Tokenize(q.Text)
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("banks: empty query")
	}

	req := core.Request{
		Terms:     terms,
		Qualified: q.Qualified,
		Prefix:    q.Prefix,
		DB:        s.db.inner,
	}
	copts := q.Options.toCore()
	copts.Strategy = q.Strategy
	if copts.Strategy == "" {
		copts.Strategy = s.opts.Strategy
	}

	// Convert each answer exactly once, at emission time, against the
	// pinned engine; byCore lets the final list and grouping reuse the
	// same conversions.
	byCore := make(map[*core.Answer]*Answer)
	stopped := false
	cb := func(a *core.Answer) bool {
		pa := s.convertAnswer(eng, a)
		byCore[a] = pa
		if fn != nil && !fn(pa) {
			stopped = true
			return false
		}
		return true
	}

	answers, st, err := eng.searcher.Query(ctx, req, copts, cb)
	if err != nil {
		return nil, err
	}
	// A store-backed engine degrades lazy-load failures to empty match
	// sets so the search machinery never panics mid-expansion; surface
	// them here so a disk fault fails the query instead of shrinking it.
	if serr := eng.storeErr(); serr != nil {
		return nil, fmt.Errorf("banks: disk-resident engine: %w", serr)
	}

	// The core trims heap-overflow overshoot (a visit can emit an answer
	// or two beyond TopK) after emission, so the returned list — not the
	// raw emission stream pub — is the ranked result set. Every returned
	// answer was emitted, so byCore covers it.
	var final []*Answer
	for _, a := range answers {
		final = append(final, byCore[a])
	}

	res := &Results{Answers: final, Stats: statsFromCore(st)}
	if q.GroupByShape {
		for _, g := range core.GroupAnswers(eng.g, answers) {
			grp := AnswerGroup{Shape: g.Shape}
			for _, a := range g.Answers {
				grp.Answers = append(grp.Answers, byCore[a])
			}
			res.Groups = append(res.Groups, grp)
		}
	}
	if stopped {
		return res, ErrStopped
	}
	return res, nil
}
