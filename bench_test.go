package banks

// The benchmark harness regenerates every experimental artifact of the
// paper's evaluation (Section 5). One benchmark per table/figure, per the
// experiment index in DESIGN.md:
//
//	E1 BenchmarkFigure2QuerySoumenSunita — the Figure 2 query
//	E2 BenchmarkAnecdoteQueries          — §5.1 anecdote queries
//	E3 BenchmarkGraphMemory              — §5.2 space (bytes metrics)
//	E4 BenchmarkGraphLoad                — §5.2 graph load time
//	E5 BenchmarkQueryClasses             — §5.2 latency over 7 query classes
//	E6 BenchmarkFigure5Sweep             — Figure 5 parameter sweep
//	E7 BenchmarkFullParameterSweep       — extended 8-combination sweep
//	A1 BenchmarkSteinerExactVsHeuristic  — exact Steiner vs backward search
//	A2 BenchmarkHeapSizeAblation         — output-heap size vs latency
//	A3 BenchmarkBackEdgeScalingAblation  — §2.1 indegree scaling on/off
//	A4 BenchmarkProximityBaseline        — Goldman-style baseline vs BANKS
//
// Paper-scale fixtures (≈100K nodes / 300K edges) are built once and
// shared; the sweeps use the small dataset so a full -bench=. run stays
// tractable.

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/steiner"
	"github.com/banksdb/banks/internal/store"
)

type benchFixture struct {
	db *sqldb.Database
	g  *graph.Graph
	ix *index.Index
	s  *core.Searcher
}

var (
	paperOnce sync.Once
	paperFix  *benchFixture
	smallOnce sync.Once
	smallFix  *benchFixture
)

func paperFixture(b *testing.B) *benchFixture {
	b.Helper()
	paperOnce.Do(func() { paperFix = buildFixture(b, datagen.PaperScaleDBLP()) })
	if paperFix == nil {
		b.Fatal("paper fixture failed")
	}
	return paperFix
}

func smallFixture(b *testing.B) *benchFixture {
	b.Helper()
	smallOnce.Do(func() { smallFix = buildFixture(b, datagen.SmallDBLP()) })
	if smallFix == nil {
		b.Fatal("small fixture failed")
	}
	return smallFix
}

func buildFixture(b *testing.B, cfg datagen.DBLPConfig) *benchFixture {
	b.Helper()
	db, err := datagen.BuildDBLP(cfg)
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		b.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{db: db, g: g, ix: ix, s: core.NewSearcher(g, ix)}
}

func dblpOpts() *core.Options {
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{"Writes", "Cites"}
	return o
}

// --- E1: Figure 2 ---

// BenchmarkFigure2QuerySoumenSunita times the query whose result the paper
// shows in Figure 2, on the paper-scale (≈100K node) graph.
func BenchmarkFigure2QuerySoumenSunita(b *testing.B) {
	f := paperFixture(b)
	opts := dblpOpts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		answers, err := f.s.Search([]string{"soumen", "sunita"}, opts)
		if err != nil {
			b.Fatal(err)
		}
		if len(answers) == 0 {
			b.Fatal("no answers")
		}
	}
}

// --- E2: §5.1 anecdotes ---

func BenchmarkAnecdoteQueries(b *testing.B) {
	queries := map[string][]string{
		"mohan":          {"mohan"},
		"transaction":    {"transaction"},
		"soumen-sunita":  {"soumen", "sunita"},
		"seltzer-sunita": {"seltzer", "sunita"},
	}
	for name, terms := range queries {
		b.Run(name, func(b *testing.B) {
			f := paperFixture(b)
			opts := dblpOpts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.s.Search(terms, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E3: §5.2 space ---

// BenchmarkGraphMemory reports the size metrics of the §5.2 space
// experiment: the paper measured ~120 MB for a 100K node / 300K edge graph
// in Java; the bytes/node metric makes the comparison hardware-neutral.
func BenchmarkGraphMemory(b *testing.B) {
	f := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.g.MemoryFootprint()
	}
	b.ReportMetric(float64(f.g.NumNodes()), "nodes")
	b.ReportMetric(float64(f.g.NumArcs()), "arcs")
	b.ReportMetric(float64(f.g.MemoryFootprint()), "graph-bytes")
	b.ReportMetric(float64(f.g.MemoryFootprint())/float64(f.g.NumNodes()), "bytes/node")
}

// --- E4: §5.2 load time ---

// BenchmarkGraphLoad times building the data graph from the database (the
// paper: ~2 minutes for the Java prototype at this scale).
func BenchmarkGraphLoad(b *testing.B) {
	f := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := graph.Build(f.db, nil)
		if err != nil {
			b.Fatal(err)
		}
		if g.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkIndexBuild times keyword index construction, the other half of
// the load pipeline.
func BenchmarkIndexBuild(b *testing.B) {
	f := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := index.Build(f.db, f.g)
		if err != nil {
			b.Fatal(err)
		}
		if ix.NumTerms() == 0 {
			b.Fatal("empty index")
		}
	}
}

// --- E5: §5.2 query latency by class ---

func BenchmarkQueryClasses(b *testing.B) {
	classes := []struct {
		name  string
		terms []string
	}{
		{"coauthor-pair", []string{"soumen", "sunita"}},
		{"common-coauthor", []string{"seltzer", "sunita"}},
		{"author-and-title", []string{"gray", "concepts"}},
		{"title-words", []string{"mining", "surprising", "patterns"}},
		{"single-author", []string{"mohan"}},
		{"single-title-word", []string{"transaction"}},
		{"three-coauthors", []string{"soumen", "sunita", "byron"}},
	}
	for _, c := range classes {
		b.Run(c.name, func(b *testing.B) {
			f := paperFixture(b)
			opts := dblpOpts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.s.Search(c.terms, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- E6: Figure 5 ---

// BenchmarkFigure5Sweep runs the whole λ × EdgeLog sweep (7 queries × 10
// parameter settings) on the small dataset and reports the best and worst
// scaled error alongside the timing.
func BenchmarkFigure5Sweep(b *testing.B) {
	f := smallFixture(b)
	queries, err := eval.DBLPSuite(f.db, f.g)
	if err != nil {
		b.Fatal(err)
	}
	var points []eval.SweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err = eval.SweepFigure5(f.s, queries, dblpOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	best, worst := points[0].Scaled, points[0].Scaled
	for _, p := range points {
		if p.Scaled < best {
			best = p.Scaled
		}
		if p.Scaled > worst {
			worst = p.Scaled
		}
	}
	b.ReportMetric(best, "best-error")
	b.ReportMetric(worst, "worst-error")
}

// --- E7: extended sweep ---

func BenchmarkFullParameterSweep(b *testing.B) {
	f := smallFixture(b)
	queries, err := eval.DBLPSuite(f.db, f.g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.SweepFull(f.s, queries, dblpOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- A1: exact Steiner vs heuristic ---

func BenchmarkSteinerExactVsHeuristic(b *testing.B) {
	f := smallFixture(b)
	soumen := f.ix.Lookup("soumen").Nodes
	sunita := f.ix.Lookup("sunita").Nodes
	if len(soumen) == 0 || len(sunita) == 0 {
		b.Fatal("missing terminals")
	}
	b.Run("exact-dp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, _, err := steiner.MinConnectionTree(f.g, [][]graph.NodeID{soumen, sunita})
			if err != nil {
				b.Fatal(err)
			}
			if w <= 0 {
				b.Fatal("degenerate weight")
			}
		}
	})
	b.Run("backward-expanding", func(b *testing.B) {
		opts := dblpOpts()
		opts.Score = core.ScoreOptions{Lambda: 0}
		for i := 0; i < b.N; i++ {
			if _, err := f.s.Search([]string{"soumen", "sunita"}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- A2: output heap size ---

func BenchmarkHeapSizeAblation(b *testing.B) {
	for _, size := range []int{1, 10, 20, 100} {
		b.Run(benchName("heap", size), func(b *testing.B) {
			f := paperFixture(b)
			opts := dblpOpts()
			opts.HeapSize = size
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.s.Search([]string{"soumen", "sunita"}, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A3: backward-edge indegree scaling ---

func BenchmarkBackEdgeScalingAblation(b *testing.B) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		b.Fatal(err)
	}
	for _, scaled := range []bool{true, false} {
		name := "scaled"
		if !scaled {
			name = "unscaled"
		}
		b.Run(name, func(b *testing.B) {
			g, err := graph.Build(db, &graph.BuildOptions{ScaleBackEdges: scaled})
			if err != nil {
				b.Fatal(err)
			}
			ix, err := index.Build(db, g)
			if err != nil {
				b.Fatal(err)
			}
			s := core.NewSearcher(g, ix)
			opts := dblpOpts()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.Search([]string{"seltzer", "sunita"}, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- A4: Goldman proximity baseline ---

func BenchmarkProximityBaseline(b *testing.B) {
	f := paperFixture(b)
	soumen := f.ix.Lookup("soumen").Nodes
	sunita := f.ix.Lookup("sunita").Nodes
	b.Run("goldman-proximity", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := steiner.ProximitySearch(f.g, "Paper", [][]graph.NodeID{soumen, sunita}, 10)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("banks", func(b *testing.B) {
		opts := dblpOpts()
		for i := 0; i < b.N; i++ {
			if _, err := f.s.Search([]string{"soumen", "sunita"}, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- core search allocation benchmarks ---

// BenchmarkSearch* measure the per-query cost of the backward expanding
// search on both generators; ReportAllocs makes allocs/op visible so the
// dense, pooled per-query state can be compared against the old
// map-per-iterator core (results recorded in BENCH_core.json).

func BenchmarkSearchDBLPTwoTerm(b *testing.B) {
	f := paperFixture(b)
	opts := dblpOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"soumen", "sunita"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchDBLPThreeTerm(b *testing.B) {
	f := paperFixture(b)
	opts := dblpOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"soumen", "sunita", "byron"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchDBLPSingleTerm(b *testing.B) {
	f := paperFixture(b)
	opts := dblpOpts()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"mohan"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchDBLPMetadata mixes a metadata term (matching a whole
// relation, capped by MetadataNodeLimit) with a data term — the paper's §7
// worst case for iterator count.
func BenchmarkSearchDBLPMetadata(b *testing.B) {
	f := paperFixture(b)
	opts := dblpOpts()
	opts.MetadataNodeLimit = 200
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"author", "sunita"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	tpcdOnce sync.Once
	tpcdFix  *benchFixture
	tpcdErr  error
)

func tpcdFixture(b *testing.B) *benchFixture {
	b.Helper()
	tpcdOnce.Do(func() {
		db, err := datagen.BuildTPCD(datagen.SmallTPCD())
		if err != nil {
			tpcdErr = err
			return
		}
		g, err := graph.Build(db, nil)
		if err != nil {
			tpcdErr = err
			return
		}
		ix, err := index.Build(db, g)
		if err != nil {
			tpcdErr = err
			return
		}
		tpcdFix = &benchFixture{db: db, g: g, ix: ix, s: core.NewSearcher(g, ix)}
	})
	if tpcdFix == nil {
		b.Fatalf("tpcd fixture failed: %v", tpcdErr)
	}
	return tpcdFix
}

func BenchmarkSearchTPCDTwoTerm(b *testing.B) {
	f := tpcdFixture(b)
	opts := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"steel", "widget"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchTPCDThreeTerm(b *testing.B) {
	f := tpcdFixture(b)
	opts := core.DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.s.Search([]string{"premium", "steel", "widget"}, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

func BenchmarkDatasetBuildSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := datagen.BuildDBLP(datagen.SmallDBLP()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKeywordLookup(b *testing.B) {
	f := paperFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m := f.ix.Lookup("transaction"); len(m.Nodes) == 0 {
			b.Fatal("no matches")
		}
	}
}

// --- parallel engine build + match cache (regression harness) ---

// The engine-build and cached-lookup benchmarks guard the parallel
// sharded build and the match-set cache: BENCH_build.json records their
// trajectory, and CI runs them once per push (-benchtime 1x) so a
// regression that breaks them outright fails the build.

// buildBenchTPCD sizes a TPC-D catalog big enough that build wall-time is
// dominated by real work (FK resolution, tokenizing, arc sorting), not
// fixed overhead: ≈100K nodes, ≈500K directed arcs.
func buildBenchTPCD() datagen.TPCDConfig {
	return datagen.TPCDConfig{
		Parts: 2000, Suppliers: 400, Customers: 1500,
		Orders: 20000, LinesPer: 4, Seed: 7,
	}
}

var (
	buildTPCDOnce sync.Once
	buildTPCDDB   *sqldb.Database
	buildTPCDErr  error
)

func buildBenchTPCDDB(b *testing.B) *sqldb.Database {
	b.Helper()
	buildTPCDOnce.Do(func() {
		buildTPCDDB, buildTPCDErr = datagen.BuildTPCD(buildBenchTPCD())
	})
	if buildTPCDErr != nil {
		b.Fatal(buildTPCDErr)
	}
	return buildTPCDDB
}

// BenchmarkEngineBuild measures the full engine derivation (graph +
// keyword index) at several shard counts on both generators. shards-0 is
// the production default (GOMAXPROCS).
func BenchmarkEngineBuild(b *testing.B) {
	datasets := []struct {
		name string
		db   func(b *testing.B) *sqldb.Database
	}{
		{"dblp", func(b *testing.B) *sqldb.Database { return paperFixture(b).db }},
		{"tpcd", buildBenchTPCDDB},
	}
	for _, ds := range datasets {
		for _, shards := range []int{1, 2, 4, 0} {
			b.Run(ds.name+"/"+benchName("shards", shards), func(b *testing.B) {
				db := ds.db(b)
				bo := graph.DefaultBuildOptions()
				bo.Shards = shards
				io := &index.BuildOptions{Shards: shards}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					g, err := graph.Build(db, bo)
					if err != nil {
						b.Fatal(err)
					}
					ix, err := index.BuildWithOptions(db, g, io)
					if err != nil {
						b.Fatal(err)
					}
					if g.NumNodes() == 0 || ix.NumTerms() == 0 {
						b.Fatal("degenerate engine")
					}
				}
			})
		}
	}
}

// BenchmarkCachedLookup measures term resolution on a skewed workload
// with and without the match cache. The prefix variants are the headline:
// an uncached prefix lookup walks the whole vocabulary, a cached repeat is
// one map probe. Hit rate is reported as a metric.
func BenchmarkCachedLookup(b *testing.B) {
	f := paperFixture(b)
	terms := datagen.ZipfTerms(1<<14, 42)

	b.Run("exact-uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = f.ix.Lookup(terms[i%len(terms)])
		}
	})
	b.Run("exact-cached", func(b *testing.B) {
		c := index.NewMatchCache(4 << 20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = c.Lookup(f.ix, 0, terms[i%len(terms)])
		}
		b.ReportMetric(c.Stats().HitRate(), "hit-rate")
	})
	b.Run("prefix-uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ns := f.ix.LookupPrefix(terms[i%len(terms)][:4]); len(ns) == 0 {
				b.Fatal("no prefix matches")
			}
		}
	})
	b.Run("prefix-cached", func(b *testing.B) {
		c := index.NewMatchCache(4 << 20)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if ns := c.LookupPrefix(f.ix, 0, terms[i%len(terms)][:4]); len(ns) == 0 {
				b.Fatal("no prefix matches")
			}
		}
		b.ReportMetric(c.Stats().HitRate(), "hit-rate")
	})
}

// BenchmarkCachedQuerySkewed runs whole single-term prefix queries over
// the skewed stream through a cached and an uncached searcher — the
// user-visible latency effect of the cache.
func BenchmarkCachedQuerySkewed(b *testing.B) {
	f := paperFixture(b)
	terms := datagen.ZipfTerms(1<<14, 99)
	opts := dblpOpts()
	run := func(b *testing.B, s *core.Searcher) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := core.Request{Terms: []string{terms[i%len(terms)][:4]}, Prefix: true}
			if _, _, err := s.Query(context.Background(), req, opts, nil); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("uncached", func(b *testing.B) {
		run(b, core.NewSearcher(f.g, f.ix))
	})
	b.Run("cached", func(b *testing.B) {
		c := index.NewMatchCache(4 << 20)
		s := core.NewSearcher(f.g, f.ix).WithMatchCache(c)
		run(b, s)
		b.ReportMetric(c.Stats().HitRate(), "hit-rate")
	})
}

func benchName(prefix string, n int) string {
	const digits = "0123456789"
	if n == 0 {
		return prefix + "-0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return prefix + "-" + string(buf[i:])
}

// --- concurrent shared-term bursts (strategy A/B) ---

// burstQueries is the shared-term workload of the concurrent-burst
// benchmarks: a handful of multi-term queries sharing origins (frontier
// reuse) plus prefix terms whose resolution walks the vocabulary
// (single-flight's worst case).
var burstQueries = [][]string{
	{"soumen", "sunita"},
	{"seltzer", "sunita"},
	{"soumen", "sunita", "byron"},
	{"gray", "concepts"},
}

var burstPrefixes = []string{"sur", "tra", "min", "cha"}

// newBurstSearcher assembles a fresh searcher with the full admission
// stack over the shared paper-scale fixture.
func newBurstSearcher(f *benchFixture) (*core.Searcher, *index.MatchCache, *index.FlightGroup) {
	cache := index.NewMatchCache(4 << 20)
	flight := index.NewFlightGroup()
	s := core.NewSearcher(f.g, f.ix).
		WithMatchCache(cache).
		WithFlightGroup(flight).
		WithFrontierPool(core.DefaultFrontierPoolIters)
	return s, cache, flight
}

// BenchmarkConcurrentBurst measures steady-state throughput of a mixed
// shared-term workload under 8-way parallelism for each strategy, plus
// how many term resolutions (index lookups) the run cost. The batched
// strategy shares resolution work across the burst — the resolutions/op
// and coalesced metrics are the contract.
func BenchmarkConcurrentBurst(b *testing.B) {
	f := paperFixture(b)
	for _, strat := range []string{core.StrategyBackward, core.StrategyBatched} {
		b.Run(strat, func(b *testing.B) {
			s, cache, flight := newBurstSearcher(f)
			opts := dblpOpts()
			opts.Strategy = strat
			var ctr atomic.Int64
			b.SetParallelism(8)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(ctr.Add(1))
					var req core.Request
					if i%4 == 0 {
						req = core.Request{Terms: []string{burstPrefixes[(i/4)%len(burstPrefixes)]}, Prefix: true}
					} else {
						req = core.Request{Terms: burstQueries[i%len(burstQueries)]}
					}
					if _, _, err := s.Query(context.Background(), req, opts, nil); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			st := cache.Stats()
			b.ReportMetric(float64(st.Misses)/float64(b.N), "resolutions/op")
			b.ReportMetric(float64(flight.Coalesced()), "coalesced")
			b.ReportMetric(float64(s.FrontierReuses()), "frontier-reuses")
		})
	}
}

// BenchmarkConcurrentBurstCold isolates the admission layer: every
// iteration is one cold burst — a fresh cache and flight group, then 16
// goroutines all resolving the same four prefix terms at once. Backward
// pays the thundering herd (every goroutine walks the vocabulary);
// batched coalesces to roughly one resolution per term. resolutions/burst
// is the headline metric.
func BenchmarkConcurrentBurstCold(b *testing.B) {
	f := paperFixture(b)
	const workers = 16
	for _, strat := range []string{core.StrategyBackward, core.StrategyBatched} {
		b.Run(strat, func(b *testing.B) {
			opts := dblpOpts()
			opts.Strategy = strat
			var resolutions, coalesced int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, cache, flight := newBurstSearcher(f)
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						req := core.Request{Terms: []string{burstPrefixes[w%len(burstPrefixes)]}, Prefix: true}
						if _, _, err := s.Query(context.Background(), req, opts, nil); err != nil {
							b.Error(err)
						}
					}(w)
				}
				wg.Wait()
				resolutions += cache.Stats().Misses
				coalesced += flight.Coalesced()
			}
			b.StopTimer()
			b.ReportMetric(float64(resolutions)/float64(b.N), "resolutions/burst")
			b.ReportMetric(float64(coalesced)/float64(b.N), "coalesced/burst")
		})
	}
}

// BenchmarkSteadyStateQuery is the allocation-discipline gate of the
// serving path: a warm Session over a memory-mapped store-opened engine
// (match cache attached, the production configuration) must answer
// repeated queries with zero heap allocations per operation — every
// per-query structure comes from the session's arena, and every byte of
// graph and index state is served as a view over the mapping. CI asserts
// allocs/op == 0.
func BenchmarkSteadyStateQuery(b *testing.B) {
	f := smallFixture(b)
	path := filepath.Join(b.TempDir(), "steady.bstore")
	if err := store.WriteFile(path, store.Engine{Graph: f.g, Index: f.ix}); err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(path, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	s := core.NewSearcher(st.Graph(), st.Index()).WithMatchCache(index.NewMatchCache(8 << 20))
	sess := s.NewSession()
	defer sess.Close()
	opts := dblpOpts()
	req := core.Request{Terms: []string{"soumen", "sunita"}}
	// Warm: fault the segments, populate the match cache, grow the arena
	// to its steady-state high-water mark.
	for i := 0; i < 3; i++ {
		answers, _, err := sess.Query(context.Background(), req, opts, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(answers) == 0 {
			b.Fatal("no answers")
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sess.Query(context.Background(), req, opts, nil); err != nil {
			b.Fatal(err)
		}
	}
}
