package banks

// Ablation tests for the design choices DESIGN.md calls out:
//
//	A2 — output-heap size vs rank quality (§3's approximate sorting)
//	A3 — backward-edge indegree scaling (§2.1's hub argument)
//	A4 — BANKS vs the Goldman et al. proximity baseline (§6)

import (
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/steiner"
)

func buildSmallDBLP(t *testing.T) (*sqldb.Database, *graph.Graph, *core.Searcher) {
	t.Helper()
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return db, g, core.NewSearcher(g, ix)
}

// TestOutputHeapAblation (A2): error scores should not degrade much as the
// output heap shrinks — the paper "found it works well even with a
// reasonably small heap size" — but a heap of 1 (no reordering buffer)
// must not beat a large heap.
func TestOutputHeapAblation(t *testing.T) {
	db, g, s := buildSmallDBLP(t)
	queries, err := eval.DBLPSuite(db, g)
	if err != nil {
		t.Fatal(err)
	}
	errAt := func(heap int) float64 {
		opts := eval.DefaultDBLPOptions()
		opts.HeapSize = heap
		scaled, err := eval.ScaledError(s, queries, opts)
		if err != nil {
			t.Fatal(err)
		}
		return scaled
	}
	e1, e20, e200 := errAt(1), errAt(20), errAt(200)
	t.Logf("scaled error: heap=1 %.1f, heap=20 %.1f, heap=200 %.1f", e1, e20, e200)
	if e20 > e1+5 {
		t.Errorf("default heap (%.1f) much worse than heap=1 (%.1f)", e20, e1)
	}
	if e200 > e20+10 {
		t.Errorf("large heap (%.1f) much worse than default (%.1f)", e200, e20)
	}
	// The paper's claim: a reasonably small heap suffices.
	if e20 > 15 {
		t.Errorf("heap=20 error = %.1f, want small", e20)
	}
}

// TestHubBackwardEdgeAblation (A3): in a university-style database, two
// students of a large department must be less proximate than two students
// of a small one — but only when backward edges scale with indegree.
func TestHubBackwardEdgeAblation(t *testing.T) {
	build := func(scale bool) (*graph.Graph, [4]graph.NodeID) {
		db := sqldb.NewDatabase()
		if _, err := db.CreateTable(&sqldb.TableSchema{
			Name:       "dept",
			Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}, {Name: "name", Type: sqldb.TypeText}},
			PrimaryKey: []string{"id"},
		}); err != nil {
			t.Fatal(err)
		}
		if _, err := db.CreateTable(&sqldb.TableSchema{
			Name: "student",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TypeInt, NotNull: true},
				{Name: "dept", Type: sqldb.TypeInt},
			},
			PrimaryKey:  []string{"id"},
			ForeignKeys: []sqldb.ForeignKey{{Column: "dept", RefTable: "dept"}},
		}); err != nil {
			t.Fatal(err)
		}
		db.Insert("dept", []sqldb.Value{sqldb.Int(1), sqldb.Text("big")})
		db.Insert("dept", []sqldb.Value{sqldb.Int(2), sqldb.Text("small")})
		id := int64(10)
		var nodes [4]graph.NodeID
		// 50 students in the big department, 2 in the small one.
		for i := 0; i < 50; i++ {
			if _, err := db.Insert("student", []sqldb.Value{sqldb.Int(id), sqldb.Int(1)}); err != nil {
				t.Fatal(err)
			}
			id++
		}
		var smallRIDs []sqldb.RID
		for i := 0; i < 2; i++ {
			rid, _ := db.Insert("student", []sqldb.Value{sqldb.Int(id), sqldb.Int(2)})
			smallRIDs = append(smallRIDs, rid)
			id++
		}
		g, err := graph.Build(db, &graph.BuildOptions{ScaleBackEdges: scale})
		if err != nil {
			t.Fatal(err)
		}
		nodes[0] = g.NodeOf("student", 0)
		nodes[1] = g.NodeOf("student", 1)
		nodes[2] = g.NodeOf("student", smallRIDs[0])
		nodes[3] = g.NodeOf("student", smallRIDs[1])
		return g, nodes
	}

	// With scaling: the big-department pair is farther apart.
	g, n := build(true)
	bigPair := steiner.PairMinWeight(g, n[0], n[1])
	smallPair := steiner.PairMinWeight(g, n[2], n[3])
	if !(smallPair < bigPair) {
		t.Errorf("scaled: small-dept pair weight %v should beat big-dept %v", smallPair, bigPair)
	}

	// Without scaling: both pairs look equally close — the hub problem.
	g2, n2 := build(false)
	bigPair2 := steiner.PairMinWeight(g2, n2[0], n2[1])
	smallPair2 := steiner.PairMinWeight(g2, n2[2], n2[3])
	if bigPair2 != smallPair2 {
		t.Errorf("unscaled: pairs should tie, got big=%v small=%v", bigPair2, smallPair2)
	}
}

// TestProximityBaselineComparison (A4): the Goldman-style baseline finds
// the same connecting paper for a coauthor query, but returns a flat tuple
// (no explanation tree) and ignores prestige — the two §6 differences the
// paper highlights.
func TestProximityBaselineComparison(t *testing.T) {
	db, g, s := buildSmallDBLP(t)
	ix := s.Index()
	soumen := ix.Lookup("soumen").Nodes
	sunita := ix.Lookup("sunita").Nodes
	if len(soumen) == 0 || len(sunita) == 0 {
		t.Fatal("missing keywords")
	}
	prox, err := steiner.ProximitySearch(g, "Paper", [][]graph.NodeID{soumen, sunita}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prox) == 0 {
		t.Fatal("no proximity results")
	}
	coauthored := map[graph.NodeID]bool{
		g.NodeOf("Paper", db.Table("Paper").LookupPK([]sqldb.Value{sqldb.Text(datagen.PaperChakrabartiSD98)})): true,
		g.NodeOf("Paper", db.Table("Paper").LookupPK([]sqldb.Value{sqldb.Text(datagen.PaperSoumenSunita2nd)})): true,
	}
	if !coauthored[prox[0].Node] {
		t.Errorf("proximity top = node %d, want a coauthored paper", prox[0].Node)
	}
	// BANKS agrees on the connection but explains it with a tree.
	answers, err := s.Search([]string{"soumen", "sunita"}, eval.DefaultDBLPOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no BANKS answers")
	}
	if !coauthored[answers[0].Root] {
		t.Errorf("BANKS top root should be a coauthored paper")
	}
	if len(answers[0].Edges) == 0 {
		t.Error("BANKS answer should carry the explanation tree")
	}
}
