package banks

import (
	"context"
	"testing"
)

func TestQueryQualifiedForms(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:      "author:sunita author:soumen",
		Qualified: true,
		Options:   &SearchOptions{ExcludedRootTables: []string{"writes"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if res.Answers[0].Root.Table != "paper" {
		t.Errorf("root = %s", res.Answers[0].Root.Table)
	}
	// A qualifier that matches nothing.
	res, err = sys.Query(context.Background(), Query{Text: "paper:sunita", Qualified: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 0 {
		t.Errorf("paper:sunita matched %d answers", len(res.Answers))
	}
	if _, err := sys.Query(context.Background(), Query{Text: "   ", Qualified: true}); err == nil {
		t.Error("empty query should error")
	}
}

func TestQueryPrefixFallback(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:      "sarawag",
		Qualified: true,
		Prefix:    true,
		Options:   &SearchOptions{ExcludedRootTables: []string{"writes"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) != 1 {
		t.Fatalf("prefix answers = %d", len(res.Answers))
	}
	if res.Answers[0].Root.Values[1] != "Sunita Sarawagi" {
		t.Errorf("root = %+v", res.Answers[0].Root)
	}
}

func TestQueryGroups(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:         "sunita soumen",
		GroupByShape: true,
		Options:      &SearchOptions{ExcludedRootTables: []string{"writes"}, HeapSize: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	total := 0
	for _, g := range res.Groups {
		if g.Shape == "" {
			t.Error("empty shape")
		}
		total += len(g.Answers)
	}
	if total == 0 {
		t.Error("no answers in groups")
	}
	if _, err := sys.Query(context.Background(), Query{Text: "", GroupByShape: true}); err == nil {
		t.Error("empty query should error")
	}
}
