package banks

import (
	"testing"
)

func TestPublicSearchQualified(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	answers, err := sys.SearchQualified("author:sunita author:soumen", false,
		&SearchOptions{ExcludedRootTables: []string{"writes"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	if answers[0].Root.Table != "paper" {
		t.Errorf("root = %s", answers[0].Root.Table)
	}
	// A qualifier that matches nothing.
	answers, err = sys.SearchQualified("paper:sunita", false, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 0 {
		t.Errorf("paper:sunita matched %d answers", len(answers))
	}
	if _, err := sys.SearchQualified("   ", false, nil); err == nil {
		t.Error("empty query should error")
	}
}

func TestPublicSearchPrefix(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	answers, err := sys.SearchQualified("sarawag", true,
		&SearchOptions{ExcludedRootTables: []string{"writes"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 1 {
		t.Fatalf("prefix answers = %d", len(answers))
	}
	if answers[0].Root.Values[1] != "Sunita Sarawagi" {
		t.Errorf("root = %+v", answers[0].Root)
	}
}

func TestPublicSearchGrouped(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	groups, err := sys.SearchGrouped("sunita soumen",
		&SearchOptions{ExcludedRootTables: []string{"writes"}, HeapSize: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) == 0 {
		t.Fatal("no groups")
	}
	total := 0
	for _, g := range groups {
		if g.Shape == "" {
			t.Error("empty shape")
		}
		total += len(g.Answers)
	}
	if total == 0 {
		t.Error("no answers in groups")
	}
	if _, err := sys.SearchGrouped("", nil); err == nil {
		t.Error("empty query should error")
	}
}
