// Bibliography: the paper's running example. Loads a DBLP-style database
// (Figure 1 schema) seeded with the entities behind the Section 5.1
// anecdotes, then replays those queries:
//
//   - "mohan"          — prestige ranks C. Mohan above the other Mohans
//   - "transaction"    — Gray's classics beat title-matching distractors
//   - "soumen sunita"  — coauthors connect through their shared papers
//   - "seltzer sunita" — a common coauthor (Stonebraker) bridges them
package main

import (
	"context"
	"fmt"
	"log"

	banks "github.com/banksdb/banks"
)

func main() {
	db := banks.NewDatabase()
	if err := db.ExecScript(schema); err != nil {
		log.Fatal(err)
	}
	if err := db.ExecScript(data); err != nil {
		log.Fatal(err)
	}

	sys, err := banks.NewSystem(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	opts := &banks.SearchOptions{
		TopK:               5,
		ExcludedRootTables: []string{"Writes", "Cites"},
	}
	for _, q := range []string{"mohan", "transaction", "soumen sunita", "seltzer sunita"} {
		res, err := sys.Query(ctx, banks.Query{Text: q, Options: opts})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results for %q:\n", q)
		for _, a := range res.Answers {
			fmt.Print(a.Format())
		}
		fmt.Println()
	}
}

const schema = `
CREATE TABLE Paper  (PaperId TEXT PRIMARY KEY, PaperName TEXT);
CREATE TABLE Author (AuthorId TEXT PRIMARY KEY, AuthorName TEXT);
CREATE TABLE Writes (AuthorId TEXT REFERENCES Author, PaperId TEXT REFERENCES Paper);
CREATE TABLE Cites  (Citing TEXT REFERENCES Paper WEIGHT 2, Cited TEXT REFERENCES Paper WEIGHT 2);
`

const data = `
INSERT INTO Author VALUES
	('SeltzerM', 'Margo Seltzer'),
	('StonebrakerM', 'Michael Stonebraker'),
	('DomB', 'Byron Dom'),
	('SarawagiS', 'Sunita Sarawagi'),
	('ChakrabartiS', 'Soumen Chakrabarti'),
	('ReuterA', 'Andreas Reuter'),
	('GrayJ', 'Jim Gray'),
	('KamatM', 'Mohan Kamat'),
	('AhujaM', 'Mohan Ahuja'),
	('MohanC', 'C. Mohan');

INSERT INTO Paper VALUES
	('ChakrabartiSD98', 'Mining Surprising Patterns Using Temporal Description Length'),
	('ChakrabartiS99', 'Scalable Mining of Sequential Surprise Measures'),
	('Gray81', 'The Transaction Concept: Virtues and Limitations'),
	('GrayR93', 'Transaction Processing: Concepts and Techniques'),
	('StonebrakerS90', 'Read Optimized File Layouts and Logging'),
	('StonebrakerS96', 'Federated Warehouse Maintenance Infrastructure'),
	('Mohan92a', 'ARIES: A Recovery Method Supporting Fine-Granularity Locking'),
	('Mohan92b', 'ARIES-IM: Concurrent Index Management'),
	('Mohan94', 'Repeating History Beyond ARIES'),
	('Ahuja90', 'Flooding Protocols For Broadcast Networks'),
	('Kamat95', 'Replicated Object Placement'),
	('Tx1', 'Transaction Routing In Replicated Systems'),
	('Tx2', 'Nested Transaction Scheduling');

INSERT INTO Writes VALUES
	('ChakrabartiS', 'ChakrabartiSD98'), ('SarawagiS', 'ChakrabartiSD98'), ('DomB', 'ChakrabartiSD98'),
	('ChakrabartiS', 'ChakrabartiS99'), ('SarawagiS', 'ChakrabartiS99'),
	('GrayJ', 'Gray81'),
	('GrayJ', 'GrayR93'), ('ReuterA', 'GrayR93'),
	('StonebrakerM', 'StonebrakerS90'), ('SeltzerM', 'StonebrakerS90'),
	('StonebrakerM', 'StonebrakerS96'), ('SarawagiS', 'StonebrakerS96'),
	('MohanC', 'Mohan92a'), ('MohanC', 'Mohan92b'), ('MohanC', 'Mohan94'),
	('AhujaM', 'Ahuja90'),
	('KamatM', 'Kamat95'),
	('StonebrakerM', 'Tx1'),
	('AhujaM', 'Tx2');

INSERT INTO Cites VALUES
	('GrayR93', 'Gray81'), ('Mohan92a', 'Gray81'), ('Mohan92b', 'Gray81'),
	('Mohan94', 'Gray81'), ('StonebrakerS90', 'Gray81'), ('Tx1', 'Gray81'),
	('Tx2', 'Gray81'), ('ChakrabartiSD98', 'Gray81'),
	('Mohan92a', 'GrayR93'), ('Mohan94', 'GrayR93'), ('Tx1', 'GrayR93'),
	('Tx2', 'GrayR93'), ('StonebrakerS96', 'GrayR93'),
	('Mohan92b', 'Mohan92a'), ('Mohan94', 'Mohan92a'), ('Tx1', 'Mohan92a'),
	('ChakrabartiS99', 'ChakrabartiSD98');
`
