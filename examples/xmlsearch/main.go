// XML search: the paper's Section 7 XML extension. An XML document is
// shredded into element/attribute relations — containment becomes
// foreign-key edges, exactly as the paper suggests ("we can model
// containment simply as edges of a new type") — and keyword queries then
// return connection trees through the document structure: two keywords
// from different children meet at their common ancestor element.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	banks "github.com/banksdb/banks"
)

const catalog = `<?xml version="1.0"?>
<catalog>
  <course code="CS631">
    <title>Advanced Database Systems</title>
    <instructor>Sudarshan</instructor>
    <topic>query processing</topic>
    <topic>recovery</topic>
  </course>
  <course code="CS728">
    <title>Web Search and Mining</title>
    <instructor>Soumen Chakrabarti</instructor>
    <topic>crawling</topic>
    <topic>ranking</topic>
  </course>
  <course code="CS725">
    <title>Foundations of Machine Learning</title>
    <instructor>Sunita Sarawagi</instructor>
    <topic>classification</topic>
  </course>
</catalog>`

func main() {
	db := banks.NewDatabase()
	n, err := db.LoadXML(strings.NewReader(catalog), "courses")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded %d XML elements into %v\n\n", n, db.Tables())

	sys, err := banks.NewSystem(db, nil)
	if err != nil {
		log.Fatal(err)
	}

	// "ranking soumen": the topic and the instructor connect at their
	// <course> element, the information node.
	for _, q := range []string{"ranking soumen", "recovery sudarshan", "cs725"} {
		res, err := sys.Query(context.Background(), banks.Query{
			Text:    q,
			Options: &banks.SearchOptions{TopK: 3},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results for %q:\n", q)
		for _, a := range res.Answers {
			fmt.Print(a.Format())
		}
		fmt.Println()
	}
}
