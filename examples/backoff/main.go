// Shed-aware client: query a BANKS front door (single-engine or the
// distributed /search endpoint) and honor its load-shedding protocol.
//
// The front door sheds excess load with 503 + a Retry-After header
// sized from the gate's live queue depth. A well-behaved client treats
// that as the server's own estimate of when capacity frees up: it
// sleeps the advertised interval (plus jitter, so a shed burst does not
// re-arrive as a synchronized retry storm), retries a bounded number of
// times, and backs off exponentially on top of the hint. 408 means the
// client's own deadline was too tight — retrying with the same deadline
// would fail the same way, so it is not retried here.
//
// Run a server first, e.g.:
//
//	banks-web -data dblp -addr :8080
//	go run ./examples/backoff -url 'http://localhost:8080/search?q=sunita+soumen'
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"time"
)

func main() {
	url := flag.String("url", "http://localhost:8080/search?q=sunita", "search URL to fetch")
	retries := flag.Int("retries", 5, "max attempts before giving up")
	flag.Parse()

	body, err := fetchWithBackoff(*url, *retries)
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(body)
}

// fetchWithBackoff GETs url, retrying 503 responses according to the
// server's Retry-After hint with jittered exponential backoff.
func fetchWithBackoff(url string, retries int) ([]byte, error) {
	client := &http.Client{Timeout: 30 * time.Second}
	backoff := time.Second // grows only when the server sends no hint
	for attempt := 1; ; attempt++ {
		resp, err := client.Get(url)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusServiceUnavailable {
			if resp.StatusCode != http.StatusOK {
				return nil, fmt.Errorf("%s: %s: %s", url, resp.Status, body)
			}
			return body, nil
		}
		if attempt >= retries {
			return nil, fmt.Errorf("%s: still overloaded after %d attempts", url, attempt)
		}
		wait := retryAfter(resp, backoff)
		// Full jitter: a uniformly random slice of the advertised wait,
		// so clients shed in the same instant spread their retries out
		// instead of stampeding back together.
		wait = wait/2 + time.Duration(rand.Int63n(int64(wait/2)+1))
		log.Printf("shed (%s), retry %d/%d in %v", resp.Status, attempt, retries, wait)
		time.Sleep(wait)
		backoff *= 2
	}
}

// retryAfter reads the server's Retry-After hint (delta-seconds form),
// falling back to the client's own exponential backoff when absent.
func retryAfter(resp *http.Response, fallback time.Duration) time.Duration {
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			return time.Duration(secs) * time.Second
		}
	}
	return fallback
}
