// TPCD: the Section 2.1 prestige example. In an order-processing catalog,
// "if a query matches two parts (or suppliers, or customers) the one with
// more orders would get a higher prestige". Two parts match "steel
// widget"; the premium one appears in many lineitems and must rank first.
package main

import (
	"context"
	"fmt"
	"log"

	banks "github.com/banksdb/banks"
)

func main() {
	db := banks.NewDatabase()
	if err := db.ExecScript(schema); err != nil {
		log.Fatal(err)
	}
	// The premium widget is ordered nine times, the economy one once.
	for i := 0; i < 10; i++ {
		db.MustExec("INSERT INTO orders VALUES (?, ?)", 100+i, 1+i%3)
		part := 1 // premium
		if i == 9 {
			part = 2 // economy gets a single order
		}
		db.MustExec("INSERT INTO lineitem VALUES (?, ?, ?)", 100+i, part, 1)
	}

	sys, err := banks.NewSystem(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Query(context.Background(), banks.Query{
		Text:    "steel widget",
		Options: &banks.SearchOptions{ExcludedRootTables: []string{"lineitem"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`results for "steel widget" (prestige = order count):`)
	for _, a := range res.Answers {
		fmt.Printf("%2d. score=%.4f prestige-component=%.4f  %s\n",
			a.Rank, a.Score, a.NScore, a.Root.Label())
	}

	// The same database is reachable through database/sql for comparison.
	db.RegisterDriver("tpcd-example")
	fmt.Println("\nper-part order counts (via database/sql):")
	rows := db.MustExec(`SELECT p.name, COUNT(*) AS n FROM lineitem l
		JOIN part p ON p.partkey = l.partkey GROUP BY p.name ORDER BY n DESC`)
	for _, r := range rows.Rows {
		fmt.Printf("  %-24v %v\n", r[0], r[1])
	}
}

const schema = `
CREATE TABLE part (partkey INT PRIMARY KEY, name TEXT);
CREATE TABLE supplier (suppkey INT PRIMARY KEY, name TEXT);
CREATE TABLE customer (custkey INT PRIMARY KEY, name TEXT);
CREATE TABLE orders (orderkey INT PRIMARY KEY, custkey INT REFERENCES customer);
CREATE TABLE lineitem (orderkey INT REFERENCES orders,
	partkey INT REFERENCES part, suppkey INT REFERENCES supplier);

INSERT INTO part VALUES (1, 'premium steel widget'), (2, 'economy steel widget'),
	(3, 'anodized copper flange');
INSERT INTO supplier VALUES (1, 'Acme Industrial');
INSERT INTO customer VALUES (1, 'Laura Jensen'), (2, 'Miguel Cortez'), (3, 'Tanya Petrov');
`
