// Thesis: the paper's second dataset, demonstrating browsing (Section 4)
// alongside search. The example builds a small university thesis database,
// serves the BANKS web UI on an ephemeral port, and walks the Figure 4
// browsing session over HTTP: start at the thesis relation, join the
// student and faculty (advisor) relations in, and follow hyperlinks —
// then replays the §5.1 thesis anecdotes as keyword queries.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"strings"

	banks "github.com/banksdb/banks"
)

func main() {
	db := banks.NewDatabase()
	if err := db.ExecScript(schema); err != nil {
		log.Fatal(err)
	}
	sys, err := banks.NewSystem(db, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Serve the browsing UI on an ephemeral port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	srv := &http.Server{Handler: sys.Handler(nil)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("BANKS web UI serving at %s\n\n", base)

	// The Figure 4 session: browse thesis, join in student and advisor.
	page := fetch(base + "/browse?table=thesis&join=rollno&join=advisor&fcol=rollno&fop=%3D&fval=S0001")
	fmt.Println("browse thesis ⋈ student ⋈ faculty (Aditya's row):")
	fmt.Printf("  joined columns present: student.name=%v faculty.name=%v\n",
		strings.Contains(page, "student.name"), strings.Contains(page, "faculty.name"))
	fmt.Printf("  advisor visible: %v\n\n", strings.Contains(page, "S. Sudarshan"))

	// Follow the FK hyperlink to the student tuple, then browse backwards.
	tuplePage := fetch(base + "/tuple?table=student&pk=S0001")
	fmt.Println("tuple page for student S0001:")
	fmt.Printf("  back-references shown: %v\n\n", strings.Contains(tuplePage, "Referenced by"))

	// Keyword search anecdotes (§5.1).
	for _, q := range []string{"computer engineering", "sudarshan aditya"} {
		res, err := sys.Query(context.Background(), banks.Query{Text: q})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("results for %q:\n", q)
		for i, a := range res.Answers {
			if i >= 3 {
				break
			}
			fmt.Print(a.Format())
		}
		fmt.Println()
	}
}

func fetch(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return string(body)
}

const schema = `
CREATE TABLE department (deptid INT PRIMARY KEY, name TEXT);
CREATE TABLE program (progid INT PRIMARY KEY, name TEXT, deptid INT REFERENCES department);
CREATE TABLE faculty (facid TEXT PRIMARY KEY, name TEXT, deptid INT REFERENCES department);
CREATE TABLE student (rollno TEXT PRIMARY KEY, name TEXT, progid INT REFERENCES program);
CREATE TABLE thesis (thesisid TEXT PRIMARY KEY, title TEXT,
	rollno TEXT REFERENCES student, advisor TEXT REFERENCES faculty);

INSERT INTO department VALUES (1, 'Computer Science and Engineering'), (2, 'Electrical Systems');
INSERT INTO program VALUES (1, 'MTech', 1), (2, 'PhD', 1), (3, 'MTech', 2);
INSERT INTO faculty VALUES
	('FS01', 'S. Sudarshan', 1),
	('F002', 'Helena Weber', 1),
	('F003', 'Kenji Tanaka', 2);
INSERT INTO student VALUES
	('S0001', 'Aditya Birla', 1),
	('S0002', 'Nina Rossi', 1),
	('S0003', 'Carlos Santos', 2),
	('S0004', 'Petra Vogel', 3);
INSERT INTO thesis VALUES
	('T0001', 'Keyword Searching in Graph Structured Data', 'S0001', 'FS01'),
	('T0002', 'Materialized View Maintenance', 'S0002', 'F002'),
	('T0003', 'Computer Aided Engineering of Circuits', 'S0004', 'F003');
`
