// Quickstart: build a three-table bibliography, ask a keyword query, print
// the connection trees. This is the minimal end-to-end use of the public
// API — no schema knowledge is needed at query time.
package main

import (
	"context"
	"fmt"
	"log"

	banks "github.com/banksdb/banks"
)

func main() {
	db := banks.NewDatabase()
	if err := db.ExecScript(`
		CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT);
		CREATE TABLE paper  (id TEXT PRIMARY KEY, title TEXT);
		CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);

		INSERT INTO author VALUES
			('a1', 'Soumen Chakrabarti'),
			('a2', 'Sunita Sarawagi'),
			('a3', 'Byron Dom'),
			('a4', 'Rakesh Agrawal');
		INSERT INTO paper VALUES
			('p1', 'Mining Surprising Patterns Using Temporal Description Length'),
			('p2', 'Fast Algorithms for Mining Association Rules');
		INSERT INTO writes VALUES
			('a1', 'p1'), ('a2', 'p1'), ('a3', 'p1'),
			('a4', 'p2');
	`); err != nil {
		log.Fatal(err)
	}

	sys, err := banks.NewSystem(db, nil)
	if err != nil {
		log.Fatal(err)
	}
	stats := sys.GraphStats()
	fmt.Printf("data graph: %d nodes, %d directed edges\n\n", stats.Nodes, stats.Arcs)

	// A keyword query naming two authors finds the paper connecting them,
	// even though the connection spans three relations. Query is the
	// single entry point: it takes a context (cancellation, deadlines)
	// and returns the answers together with per-search statistics.
	res, err := sys.Query(context.Background(), banks.Query{
		Text: "sunita soumen",
		Options: &banks.SearchOptions{
			ExcludedRootTables: []string{"writes"}, // link tuples are poor information nodes
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(`results for "sunita soumen":`)
	for _, a := range res.Answers {
		fmt.Print(a.Format())
	}
	fmt.Printf("\n(%d iterator pops, %d candidate trees)\n",
		res.Stats.Pops, res.Stats.Generated)
}
