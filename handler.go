package banks

import (
	"net/http"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/web"
)

// Handler returns the BANKS web interface over this system: keyword search
// with hyperlinked connection trees, the Section 4 browsing views (column
// controls, FK hyperlinks, backward reference browsing), schema display
// and the display templates. Mount it on any mux or serve it directly:
//
//	http.ListenAndServe(":8080", sys.Handler(nil))
//
// Each request pins the engine snapshot current at its start and each
// search honours the request's context, so the handler is safe to serve
// concurrently with Refresh. opts sets the default search parameters for
// the /search endpoint; the system's default execution strategy
// (SystemOptions.Strategy) applies unless a request's strategy form field
// overrides it, and the form's timeout field puts a per-query deadline on
// the search.
func (s *System) Handler(opts *SearchOptions) http.Handler {
	copts := opts.toCore()
	copts.Strategy = s.opts.Strategy
	return web.NewServer(s.db.inner, func() *core.Searcher { return s.engine().searcher }, copts)
}
