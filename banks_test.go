package banks

import (
	"context"
	"database/sql"
	"strings"
	"testing"
	"unicode/utf8"
)

// searchAnswers is the test shorthand for the one-line keyword query the
// dropped System.Search wrapper used to provide.
func searchAnswers(t *testing.T, sys *System, text string, opts *SearchOptions) []*Answer {
	t.Helper()
	res, err := sys.Query(context.Background(), Query{Text: text, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	return res.Answers
}

// newQuickstartSystem builds the small bibliographic database from the
// package doc through the public API only.
func newQuickstartSystem(t *testing.T) (*Database, *System) {
	t.Helper()
	db := NewDatabase()
	if err := db.ExecScript(`
		CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT);
		CREATE TABLE paper (id TEXT PRIMARY KEY, title TEXT);
		CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);
		INSERT INTO author VALUES ('a1', 'Soumen Chakrabarti'),
			('a2', 'Sunita Sarawagi'), ('a3', 'Byron Dom');
		INSERT INTO paper VALUES ('p1', 'Mining Surprising Patterns');
		INSERT INTO writes VALUES ('a1', 'p1'), ('a2', 'p1'), ('a3', 'p1');
	`); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	return db, sys
}

func TestExecAndQuery(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INT, b TEXT)")
	r := db.MustExec("INSERT INTO t VALUES (?, ?)", 1, "x")
	if r.RowsAffected != 1 {
		t.Errorf("RowsAffected = %d", r.RowsAffected)
	}
	q := db.MustExec("SELECT a, b FROM t")
	if len(q.Rows) != 1 || q.Rows[0][0] != int64(1) || q.Rows[0][1] != "x" {
		t.Errorf("rows = %v", q.Rows)
	}
	if len(db.Tables()) != 1 {
		t.Errorf("tables = %v", db.Tables())
	}
}

func TestExecBadArgType(t *testing.T) {
	db := NewDatabase()
	db.MustExec("CREATE TABLE t (a INT)")
	if _, err := db.Exec("INSERT INTO t VALUES (?)", struct{}{}); err == nil {
		t.Error("struct arg should fail")
	}
}

func TestSearchQuickstart(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	answers := searchAnswers(t, sys, "sunita soumen", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	top := answers[0]
	if top.Root.Table != "paper" {
		t.Errorf("top root = %s, want paper", top.Root.Table)
	}
	if top.Rank != 1 || top.Score <= 0 || top.Score > 1 {
		t.Errorf("rank/score = %d/%v", top.Rank, top.Score)
	}
	s := top.Format()
	if !strings.Contains(s, "paper(") || !strings.Contains(s, "Sarawagi") {
		t.Errorf("Format() = %q", s)
	}
	// Both matched authors flagged.
	var matchedCount int
	var walk func(*TreeNode)
	walk = func(n *TreeNode) {
		if n.Matched {
			matchedCount++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(top.Tree)
	if matchedCount != 2 {
		t.Errorf("matched nodes = %d, want 2", matchedCount)
	}
}

func TestSearchEmptyQuery(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	if _, err := sys.Query(context.Background(), Query{Text: "  ,,  "}); err == nil {
		t.Error("empty query should error")
	}
}

func TestSearchOptionMapping(t *testing.T) {
	o := &SearchOptions{
		TopK: 3, HeapSize: 7, Lambda: 0.5, NodeLog: true,
		Multiplicative: true, AllowPartialMatch: true,
	}
	c := o.toCore()
	if c.TopK != 3 || c.HeapSize != 7 || c.Score.Lambda != 0.5 {
		t.Errorf("core opts = %+v", c)
	}
	if !c.Score.EdgeLog || !c.Score.NodeLog {
		t.Errorf("log flags = %+v", c.Score)
	}
	if c.RequireAllTerms {
		t.Error("AllowPartialMatch not mapped")
	}
	z := (&SearchOptions{UseZeroLambda: true}).toCore()
	if z.Score.Lambda != 0 {
		t.Errorf("UseZeroLambda gave λ=%v", z.Score.Lambda)
	}
	d := (*SearchOptions)(nil).toCore()
	if d.Score.Lambda != 0.2 || !d.Score.EdgeLog {
		t.Errorf("default opts = %+v", d.Score)
	}
}

func TestRefreshSeesNewData(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	answers := searchAnswers(t, sys, "newperson", nil)
	if len(answers) != 0 {
		t.Fatal("unexpected match before insert")
	}
	db.MustExec("INSERT INTO author VALUES ('np', 'Newperson Moon')")
	// Stale system: still no match.
	answers = searchAnswers(t, sys, "newperson", nil)
	if len(answers) != 0 {
		t.Error("stale system should not see new data")
	}
	if err := sys.Refresh(); err != nil {
		t.Fatal(err)
	}
	answers = searchAnswers(t, sys, "newperson", nil)
	if len(answers) != 1 {
		t.Errorf("after refresh answers = %d", len(answers))
	}
}

func TestGraphAndIndexStats(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	gs := sys.GraphStats()
	if gs.Nodes != 7 || gs.Tables != 3 {
		t.Errorf("graph stats = %+v", gs)
	}
	if gs.Arcs != 12 { // 6 FK links, forward + backward
		t.Errorf("arcs = %d", gs.Arcs)
	}
	if gs.Bytes <= 0 {
		t.Error("bytes should be positive")
	}
	is := sys.IndexStats()
	if is.Terms == 0 || is.Postings == 0 {
		t.Errorf("index stats = %+v", is)
	}
}

func TestLookup(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	n, meta := sys.Lookup("sunita")
	if n != 1 || len(meta) != 0 {
		t.Errorf("lookup sunita = %d, %v", n, meta)
	}
	n, meta = sys.Lookup("author")
	if n != 0 || len(meta) != 1 || meta[0] != "author" {
		t.Errorf("lookup author = %d, %v", n, meta)
	}
}

func TestTupleByPK(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	tu, ok := sys.TupleByPK("author", "a2")
	if !ok {
		t.Fatal("lookup failed")
	}
	if tu.Table != "author" || tu.Values[1] != "Sunita Sarawagi" {
		t.Errorf("tuple = %+v", tu)
	}
	if _, ok := sys.TupleByPK("author", "nope"); ok {
		t.Error("missing pk should fail")
	}
	if _, ok := sys.TupleByPK("nosuch", "x"); ok {
		t.Error("missing table should fail")
	}
}

func TestRegisterDriverIntegration(t *testing.T) {
	db, _ := newQuickstartSystem(t)
	db.RegisterDriver("facade-test")
	sqlDB, err := sql.Open("banks", "facade-test")
	if err != nil {
		t.Fatal(err)
	}
	defer sqlDB.Close()
	var title string
	if err := sqlDB.QueryRow("SELECT title FROM paper WHERE id = ?", "p1").Scan(&title); err != nil {
		t.Fatal(err)
	}
	if title != "Mining Surprising Patterns" {
		t.Errorf("title = %q", title)
	}
}

func TestTupleLabelTruncation(t *testing.T) {
	tu := Tuple{
		Table:   "t",
		Columns: []string{"a"},
		Values:  Row{strings.Repeat("x", 100)},
	}
	l := tu.Label()
	if len(l) > 70 {
		t.Errorf("label too long: %d chars", len(l))
	}
	nullT := Tuple{Table: "t", Columns: []string{"a"}, Values: Row{nil}}
	if !strings.Contains(nullT.Label(), "NULL") {
		t.Errorf("label = %q", nullT.Label())
	}
}

func TestTupleLabelTruncationUTF8(t *testing.T) {
	// 60 three-byte runes (180 bytes) force truncation at the 40-byte
	// budget; the cut must land on a rune boundary, never mid-sequence.
	long := strings.Repeat("日本語データ", 12)
	tu := Tuple{Table: "t", Columns: []string{"a"}, Values: Row{long}}
	l := tu.Label()
	if !utf8.ValidString(l) {
		t.Errorf("label is not valid UTF-8: %q", l)
	}
	if !strings.Contains(l, "…") {
		t.Errorf("label not truncated: %q", l)
	}
	// Direct boundary cases: cuts landing inside a multi-byte rune.
	for n := 2; n < 12; n++ {
		got := truncate("aé日本", n)
		if !utf8.ValidString(got) {
			t.Errorf("truncate(%q, %d) = %q: invalid UTF-8", "aé日本", n, got)
		}
	}
	// ASCII behaviour unchanged.
	if got := truncate("abcdef", 4); got != "abc…" {
		t.Errorf("truncate ascii = %q", got)
	}
	if got := truncate("ab", 4); got != "ab" {
		t.Errorf("short string altered: %q", got)
	}
}

func TestSingleTermPublicSearch(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	// "mining" matches the paper's title and the writes tuples' textual
	// FK values (every textual attribute is indexed, per the paper);
	// excluding the link table leaves just the paper.
	answers := searchAnswers(t, sys, "mining", &SearchOptions{ExcludedRootTables: []string{"writes"}})
	if len(answers) != 1 || answers[0].Root.Table != "paper" {
		t.Errorf("answers = %v", answers)
	}
	if answers[0].Tree.Children != nil {
		t.Error("single-term answer should be a lone node")
	}
}
