package banks

// Live mutations must be invisible at the query level: a system serving
// base + WAL-backed delta overlays has to answer exactly like a system
// rebuilt from scratch over the same rows. These tests pin that parity on
// randomized mutation batches over both generators and both execution
// strategies, plus the crash-recovery, validation and lifecycle contracts
// around it.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqldb"
)

// treeSig renders a connection tree canonically (children sorted), so two
// answers compare by structure regardless of emission order.
func treeSig(n *TreeNode) string {
	kids := make([]string, len(n.Children))
	for i, c := range n.Children {
		kids[i] = fmt.Sprintf("%.9f>%s", c.EdgeWeight, treeSig(c))
	}
	sort.Strings(kids)
	return fmt.Sprintf("%s/%d[%s]", n.Tuple.Table, n.Tuple.RID, strings.Join(kids, ","))
}

// canonicalAnswers reduces a result list to comparable keys: scores
// rounded to 9 decimals, answers within one score tie sorted canonically,
// and — when the list is full (possibly truncated mid-tie at TopK) — the
// final tie group dropped, since which members of a tied group survive
// truncation is legitimately snapshot-dependent.
func canonicalAnswers(res *Results, topK int) []string {
	type ka struct {
		score string
		sig   string
	}
	keys := make([]ka, len(res.Answers))
	for i, a := range res.Answers {
		keys[i] = ka{fmt.Sprintf("%.9f", a.Score), treeSig(a.Tree)}
	}
	var out []string
	for i := 0; i < len(keys); {
		j := i
		for j < len(keys) && keys[j].score == keys[i].score {
			j++
		}
		if j == len(keys) && len(keys) == topK {
			break // truncated final tie group
		}
		group := make([]string, 0, j-i)
		for _, k := range keys[i:j] {
			group = append(group, k.score+"|"+k.sig)
		}
		sort.Strings(group)
		out = append(out, group...)
		i = j
	}
	return out
}

// liveRIDs returns the live rids of a table.
func liveRIDs(db *Database, table string) []int64 {
	var rids []int64
	db.Internal().Table(table).Scan(func(rid sqldb.RID, _ []sqldb.Value) bool {
		rids = append(rids, int64(rid))
		return true
	})
	return rids
}

// pkValues returns the primary-key values of a table's live rows.
func pkValues(db *Database, table string) []string {
	tbl := db.Internal().Table(table)
	pkIdx := tbl.Schema().ColumnIndex(tbl.Schema().PrimaryKey[0])
	var vals []string
	tbl.Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
		vals = append(vals, row[pkIdx].S)
		return true
	})
	return vals
}

var mutWords = []string{
	"zeppelin", "quasar", "obelisk", "meridian", "tundra", "sonnet",
	"glacier", "cipher", "lantern", "mosaic",
}

// randomDBLPBatch builds one valid mutation batch against the current
// database state: inserts of authors/papers/links (sometimes referencing
// a row inserted earlier in the same batch), text-only title updates,
// FK rewires, and link deletions. allowDelete=false keeps the rid layout
// reproducible by a DumpSQL/ExecScript round trip (tombstone gaps do not
// survive a dump), which the store/WAL recovery tests rely on.
func randomDBLPBatch(rng *rand.Rand, db *Database, serial *int, allowDelete bool) []Mutation {
	var batch []Mutation
	n := 1 + rng.Intn(4)
	cases := 6
	if !allowDelete {
		cases = 5
	}
	for len(batch) < n {
		switch rng.Intn(cases) {
		case 0: // new author, sometimes with a paper link in the same batch
			*serial++
			id := fmt.Sprintf("MutA%d", *serial)
			name := mutWords[rng.Intn(len(mutWords))] + " " + mutWords[rng.Intn(len(mutWords))]
			batch = append(batch, Insert("Author", map[string]interface{}{"AuthorId": id, "AuthorName": name}))
			if papers := pkValues(db, "Paper"); len(papers) > 0 && rng.Intn(2) == 0 {
				batch = append(batch, Insert("Writes", map[string]interface{}{
					"AuthorId": id, "PaperId": papers[rng.Intn(len(papers))],
				}))
			}
		case 1: // new paper
			*serial++
			id := fmt.Sprintf("MutP%d", *serial)
			title := mutWords[rng.Intn(len(mutWords))] + " " + mutWords[rng.Intn(len(mutWords))]
			batch = append(batch, Insert("Paper", map[string]interface{}{
				"PaperId": id, "PaperName": title, "Year": 2000 + rng.Intn(3),
			}))
		case 2: // new citation between existing papers
			papers := pkValues(db, "Paper")
			if len(papers) < 2 {
				continue
			}
			batch = append(batch, Insert("Cites", map[string]interface{}{
				"Citing": papers[rng.Intn(len(papers))], "Cited": papers[rng.Intn(len(papers))],
			}))
		case 3: // text-only title update
			rids := liveRIDs(db, "Paper")
			if len(rids) == 0 {
				continue
			}
			title := mutWords[rng.Intn(len(mutWords))] + " " + mutWords[rng.Intn(len(mutWords))]
			batch = append(batch, Update("Paper", rids[rng.Intn(len(rids))], map[string]interface{}{"PaperName": title}))
		case 4: // FK rewire: point a Writes row at another paper
			rids := liveRIDs(db, "Writes")
			papers := pkValues(db, "Paper")
			if len(rids) == 0 || len(papers) == 0 {
				continue
			}
			batch = append(batch, Update("Writes", rids[rng.Intn(len(rids))], map[string]interface{}{
				"PaperId": papers[rng.Intn(len(papers))],
			}))
		case 5: // drop a link row
			table := "Cites"
			if rng.Intn(2) == 0 {
				table = "Writes"
			}
			rids := liveRIDs(db, table)
			if len(rids) == 0 {
				continue
			}
			batch = append(batch, Delete(table, rids[rng.Intn(len(rids))]))
		}
	}
	return batch
}

// randomTPCDBatch is the order-catalog counterpart.
func randomTPCDBatch(rng *rand.Rand, db *Database, serial *int) []Mutation {
	var batch []Mutation
	n := 1 + rng.Intn(4)
	intPK := func(table string) []int64 {
		tbl := db.Internal().Table(table)
		pkIdx := tbl.Schema().ColumnIndex(tbl.Schema().PrimaryKey[0])
		var vals []int64
		tbl.Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
			vals = append(vals, row[pkIdx].I)
			return true
		})
		return vals
	}
	for len(batch) < n {
		switch rng.Intn(5) {
		case 0: // new order, sometimes with a line item in the same batch
			custs := intPK("customer")
			if len(custs) == 0 {
				continue
			}
			*serial++
			key := int64(9_000_000 + *serial)
			batch = append(batch, Insert("orders", map[string]interface{}{
				"orderkey": key, "custkey": custs[rng.Intn(len(custs))],
			}))
			parts, supps := intPK("part"), intPK("supplier")
			if len(parts) > 0 && len(supps) > 0 && rng.Intn(2) == 0 {
				batch = append(batch, Insert("lineitem", map[string]interface{}{
					"orderkey": key, "partkey": parts[rng.Intn(len(parts))], "suppkey": supps[rng.Intn(len(supps))],
				}))
			}
		case 1: // rename a part (text-only)
			rids := liveRIDs(db, "part")
			if len(rids) == 0 {
				continue
			}
			name := mutWords[rng.Intn(len(mutWords))] + " " + mutWords[rng.Intn(len(mutWords))]
			batch = append(batch, Update("part", rids[rng.Intn(len(rids))], map[string]interface{}{"name": name}))
		case 2: // rewire a line item to another supplier
			rids := liveRIDs(db, "lineitem")
			supps := intPK("supplier")
			if len(rids) == 0 || len(supps) == 0 {
				continue
			}
			batch = append(batch, Update("lineitem", rids[rng.Intn(len(rids))], map[string]interface{}{
				"suppkey": supps[rng.Intn(len(supps))],
			}))
		case 3: // drop a line item
			rids := liveRIDs(db, "lineitem")
			if len(rids) == 0 {
				continue
			}
			batch = append(batch, Delete("lineitem", rids[rng.Intn(len(rids))]))
		case 4: // order an order to another customer
			rids := liveRIDs(db, "orders")
			custs := intPK("customer")
			if len(rids) == 0 || len(custs) == 0 {
				continue
			}
			batch = append(batch, Update("orders", rids[rng.Intn(len(rids))], map[string]interface{}{
				"custkey": custs[rng.Intn(len(custs))],
			}))
		}
	}
	return batch
}

// checkQueryParity runs the query set on the live system and on a fresh
// from-scratch rebuild over the same rows, under both execution
// strategies, twice each (cold, then cache-warm), and requires identical
// canonical answers.
func checkQueryParity(t *testing.T, live *System, queries []string, label string) {
	t.Helper()
	ref, err := NewSystem(live.Database(), &SystemOptions{
		DisableBackEdgeScaling: live.opts.DisableBackEdgeScaling,
	})
	if err != nil {
		t.Fatalf("%s: reference rebuild: %v", label, err)
	}
	const topK = 10
	ctx := context.Background()
	for _, strategy := range []string{StrategyBackward, StrategyBatched} {
		for _, text := range queries {
			q := Query{Text: text, Strategy: strategy}
			for _, pass := range []string{"cold", "warm"} {
				got, err := live.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s: live query %q (%s, %s): %v", label, text, strategy, pass, err)
				}
				want, err := ref.Query(ctx, q)
				if err != nil {
					t.Fatalf("%s: reference query %q: %v", label, text, err)
				}
				gotK, wantK := canonicalAnswers(got, topK), canonicalAnswers(want, topK)
				if fmt.Sprint(gotK) != fmt.Sprint(wantK) {
					t.Fatalf("%s: query %q (%s, %s) diverged from rebuild:\nlive:    %v\nrebuild: %v",
						label, text, strategy, pass, gotK, wantK)
				}
			}
		}
	}
}

var dblpQueries = []string{
	"sunita soumen",
	"mohan transaction",
	"zeppelin",
	"quasar glacier",
}

func TestApplyParityDBLP(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	bdb := &Database{inner: db}
	sys, err := NewSystem(bdb, &SystemOptions{WALPath: filepath.Join(t.TempDir(), "m.wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	rng := rand.New(rand.NewSource(1))
	serial := 0
	for batchNo := 0; batchNo < 8; batchNo++ {
		batch := randomDBLPBatch(rng, bdb, &serial, true)
		if _, err := sys.Apply(context.Background(), batch); err != nil {
			t.Fatalf("batch %d (%v): %v", batchNo, batch, err)
		}
		checkQueryParity(t, sys, dblpQueries, fmt.Sprintf("batch %d", batchNo))
	}
	if sys.PendingMutations() == 0 {
		t.Fatal("no pending mutations after 8 applied batches")
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := sys.PendingMutations(); n != 0 {
		t.Fatalf("%d pending mutations after Compact", n)
	}
	checkQueryParity(t, sys, dblpQueries, "post-compaction")
}

func TestApplyParityTPCD(t *testing.T) {
	db, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	bdb := &Database{inner: db}
	sys, err := NewSystem(bdb, &SystemOptions{WALPath: filepath.Join(t.TempDir(), "m.wal")})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	queries := []string{"anodized bearing", "zeppelin", "customer order"}
	rng := rand.New(rand.NewSource(2))
	serial := 0
	for batchNo := 0; batchNo < 5; batchNo++ {
		batch := randomTPCDBatch(rng, bdb, &serial)
		if _, err := sys.Apply(context.Background(), batch); err != nil {
			t.Fatalf("batch %d (%v): %v", batchNo, batch, err)
		}
		checkQueryParity(t, sys, queries, fmt.Sprintf("batch %d", batchNo))
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	checkQueryParity(t, sys, queries, "post-compaction")
}

// TestCrashRecovery pins the §durability contract: mutations journaled
// after the last compaction survive a crash. The store holds the
// compacted engine (with its WAL sequence); the database is restored to
// its compaction-time rows; OpenSystem replays only the journal tail and
// serves the same answers the pre-crash system did — without a rebuild.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "engine.store")
	walPath := filepath.Join(dir, "m.wal")

	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	bdb := &Database{inner: db}
	sys, err := NewSystem(bdb, &SystemOptions{StorePath: storePath, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	serial := 0
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := sys.Apply(ctx, randomDBLPBatch(rng, bdb, &serial, false)); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}

	// The database as of compaction time — what an operator's dump holds.
	var dump bytes.Buffer
	if err := bdb.DumpSQL(&dump); err != nil {
		t.Fatal(err)
	}

	// More mutations after compaction: journaled, not compacted.
	var lastSeq uint64
	for i := 0; i < 3; i++ {
		res, err := sys.Apply(ctx, randomDBLPBatch(rng, bdb, &serial, true))
		if err != nil {
			t.Fatal(err)
		}
		lastSeq = res.Seq
	}
	expected := map[string][]string{}
	for _, q := range dblpQueries {
		res, err := sys.Query(ctx, Query{Text: q})
		if err != nil {
			t.Fatal(err)
		}
		expected[q] = canonicalAnswers(res, 10)
	}
	// Crash: the process dies here; sys is abandoned, not compacted.
	sys.Close()

	// Recovery: restore the database from the compaction-time dump, open
	// the store, and let the WAL tail replay.
	db2 := NewDatabase()
	if err := db2.ExecScript(dump.String()); err != nil {
		t.Fatal(err)
	}
	sys2, err := OpenSystem(storePath, db2, &SystemOptions{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	if n := sys2.PendingMutations(); n == 0 {
		t.Fatal("recovery replayed no mutations; the WAL tail was lost")
	}
	for _, q := range dblpQueries {
		res, err := sys2.Query(ctx, Query{Text: q})
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalAnswers(res, 10); fmt.Sprint(got) != fmt.Sprint(expected[q]) {
			t.Fatalf("query %q after recovery diverged:\ngot:  %v\nwant: %v", q, got, expected[q])
		}
	}
	// The journal keeps its sequence across recovery.
	res, err := sys2.Apply(ctx, randomDBLPBatch(rng, db2, &serial, true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seq <= lastSeq {
		t.Fatalf("post-recovery Apply got seq %d, want > %d", res.Seq, lastSeq)
	}
	checkQueryParity(t, sys2, dblpQueries, "post-recovery")
}

// TestNewSystemReplaysWAL covers the store-less bootstrap: a database
// restored to the journal's base state plus the WAL reproduces the
// mutated system.
func TestNewSystemReplaysWAL(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "m.wal")
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	bdb := &Database{inner: db}
	var dump bytes.Buffer
	if err := bdb.DumpSQL(&dump); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(bdb, &SystemOptions{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Author", map[string]interface{}{"AuthorId": "Zep1", "AuthorName": "Zeppelin Quasar"}),
	}); err != nil {
		t.Fatal(err)
	}
	want, err := sys.Query(ctx, Query{Text: "zeppelin"})
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()

	db2 := NewDatabase()
	if err := db2.ExecScript(dump.String()); err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystem(db2, &SystemOptions{WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	got, err := sys2.Query(ctx, Query{Text: "zeppelin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) == 0 || fmt.Sprint(canonicalAnswers(got, 10)) != fmt.Sprint(canonicalAnswers(want, 10)) {
		t.Fatalf("bootstrap replay lost the journaled insert: %v vs %v", canonicalAnswers(got, 10), canonicalAnswers(want, 10))
	}
}

func newMutableDBLP(t *testing.T) *System {
	t.Helper()
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(&Database{inner: db}, &SystemOptions{WALPath: filepath.Join(t.TempDir(), "m.wal")})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// referencedAuthorRID finds an author some Writes row references, so the
// delete-restrict rejection is deterministic.
func referencedAuthorRID(t *testing.T, db *Database) int64 {
	t.Helper()
	writes := db.Internal().Table("Writes")
	aidIdx := writes.Schema().ColumnIndex("AuthorId")
	var aid sqldb.Value
	writes.Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
		aid = row[aidIdx]
		return false
	})
	rid := db.Internal().Table("Author").LookupPK([]sqldb.Value{aid})
	if rid < 0 {
		t.Fatal("no referenced author found")
	}
	return int64(rid)
}

func TestApplyValidation(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	writesRID := liveRIDs(sys.Database(), "Writes")[0]

	bad := []struct {
		name string
		muts []Mutation
	}{
		{"empty batch", nil},
		{"unknown table", []Mutation{Insert("Venue", map[string]interface{}{"x": 1})}},
		{"unknown column", []Mutation{Insert("Author", map[string]interface{}{"AuthorId": "X", "Nick": "x"})}},
		{"missing not-null", []Mutation{Insert("Author", map[string]interface{}{"AuthorName": "x"})}},
		{"duplicate key", []Mutation{Insert("Author", map[string]interface{}{"AuthorId": datagen.AuthorSoumen, "AuthorName": "dup"})}},
		{"dangling fk", []Mutation{Insert("Writes", map[string]interface{}{"AuthorId": "NoSuchAuthor", "PaperId": datagen.PaperChakrabartiSD98})}},
		{"delete referenced", []Mutation{Delete("Author", referencedAuthorRID(t, sys.Database()))}},
		{"unknown row", []Mutation{Update("Paper", 1<<30, map[string]interface{}{"PaperName": "x"})}},
		{"insert with rid", []Mutation{{Op: MutationInsert, Table: "Author", RID: 3, Set: map[string]interface{}{"AuthorId": "X"}}}},
		{"delete with values", []Mutation{{Op: MutationDelete, Table: "Writes", RID: writesRID, Set: map[string]interface{}{"x": 1}}}},
		{"delete target of same-batch insert", []Mutation{
			Insert("Cites", map[string]interface{}{"Citing": datagen.PaperChakrabartiSD98, "Cited": datagen.PaperGrayTransaction}),
		}},
	}
	// The last case needs a concrete referenced row delete after the insert.
	paperRID := int64(-1)
	sys.Database().Internal().Table("Paper").Scan(func(rid sqldb.RID, row []sqldb.Value) bool {
		if row[0].S == datagen.PaperGrayTransaction {
			paperRID = int64(rid)
			return false
		}
		return true
	})
	bad[len(bad)-1].muts = append(bad[len(bad)-1].muts, Delete("Paper", paperRID))

	for _, tc := range bad {
		if _, err := sys.Apply(ctx, tc.muts); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Validation failures must not poison the system.
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Author", map[string]interface{}{"AuthorId": "OK1", "AuthorName": "fine"}),
	}); err != nil {
		t.Fatalf("valid batch after rejected ones: %v", err)
	}

	// Intra-batch dependencies that must pass: reference a row inserted
	// in the same batch; delete a row whose referrers die first.
	res, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "IntraP", "PaperName": "intra batch"}),
		Insert("Cites", map[string]interface{}{"Citing": "IntraP", "Cited": "IntraP"}),
	})
	if err != nil {
		t.Fatalf("intra-batch insert dependency rejected: %v", err)
	}
	citesRID := res.RIDs[1]
	paperRID = res.RIDs[0]
	if _, err := sys.Apply(ctx, []Mutation{
		Delete("Cites", citesRID),
		Delete("Paper", paperRID),
	}); err != nil {
		t.Fatalf("delete-referrers-first batch rejected: %v", err)
	}
}

func TestApplyRequiresWAL(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(&Database{inner: db}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	if _, err := sys.Apply(context.Background(), []Mutation{Delete("Writes", liveRIDs(sys.Database(), "Writes")[0])}); err == nil {
		t.Fatal("Apply without WALPath accepted")
	}
}

func TestWALRejectsPrestigeDamping(t *testing.T) {
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	_, err = NewSystem(&Database{inner: db}, &SystemOptions{
		WALPath:         filepath.Join(t.TempDir(), "m.wal"),
		PrestigeDamping: 0.85,
	})
	if err == nil {
		t.Fatal("WALPath + PrestigeDamping accepted; incremental PageRank is impossible")
	}
}

// TestRejectedBatchLeavesStateClean pins that validation failures are
// all-or-nothing: a batch whose later mutation is invalid changes nothing,
// and the system still answers in exact parity with a rebuild.
func TestRejectedBatchLeavesStateClean(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Author", map[string]interface{}{"AuthorId": "Ephemeral", "AuthorName": "zeppelin obelisk"}),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "EphP", "PaperName": "lantern mosaic"}),
		Delete("Paper", 1<<30), // no such row: the whole batch must be rejected
	}); err == nil {
		t.Fatal("expected the bad delete to reject the batch")
	}
	q, err := sys.Query(ctx, Query{Text: "lantern"})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Answers) != 0 {
		t.Fatal("rejected batch's insert is visible to queries")
	}
	q, err = sys.Query(ctx, Query{Text: "zeppelin"})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Answers) == 0 {
		t.Fatal("author from the earlier committed batch vanished")
	}
	checkQueryParity(t, sys, dblpQueries, "after rejected batch")
}

// TestCloseLifecycle pins the Close contract: idempotent, sticky result,
// and operations beginning after Close fail with ErrClosed.
func TestCloseLifecycle(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Author", map[string]interface{}{"AuthorId": "C1", "AuthorName": "cipher"}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := sys.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := sys.Query(ctx, Query{Text: "cipher"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
	if _, err := sys.Apply(ctx, []Mutation{Delete("Writes", 0)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("apply after close: %v, want ErrClosed", err)
	}
	if err := sys.Refresh(); !errors.Is(err, ErrClosed) {
		t.Fatalf("refresh after close: %v, want ErrClosed", err)
	}
	if err := sys.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("compact after close: %v, want ErrClosed", err)
	}
}

// TestMutationChurnRace interleaves Apply, queries under both strategies,
// Refresh, Compact and a final Close under the race detector: writers
// serialize, queries pin their snapshot, and whatever begins after Close
// fails with ErrClosed instead of tearing.
func TestMutationChurnRace(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		rng := rand.New(rand.NewSource(4))
		serial := 100000
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			serial++
			id := fmt.Sprintf("Race%d", serial)
			_, err := sys.Apply(ctx, []Mutation{
				Insert("Author", map[string]interface{}{"AuthorId": id, "AuthorName": mutWords[rng.Intn(len(mutWords))]}),
			})
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for _, strategy := range []string{StrategyBackward, StrategyBatched} {
		wg.Add(1)
		go func(strategy string) { // querier
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := sys.Query(ctx, Query{Text: "sunita soumen", Strategy: strategy})
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("query (%s): %v", strategy, err)
					return
				}
			}
		}(strategy)
	}
	wg.Add(1)
	go func() { // maintenance: alternate Refresh and Compact
		defer wg.Done()
		for i := 0; i < 6; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var err error
			if i%2 == 0 {
				err = sys.Refresh()
			} else {
				err = sys.Compact()
			}
			if err != nil && !errors.Is(err, ErrClosed) {
				t.Errorf("maintenance: %v", err)
				return
			}
		}
	}()

	// Let the loops overlap for a bounded amount of work, then close
	// while they are still running.
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	for i := 0; i < 40; i++ {
		if _, err := sys.Query(ctx, Query{Text: "transaction recovery"}); err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("main query: %v", err)
			break
		}
	}
	if err := sys.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	close(stop)
	<-done
	checkQueryParityClosed(t, sys)
}

// checkQueryParityClosed asserts the post-close failure mode once more
// from the main goroutine.
func checkQueryParityClosed(t *testing.T, sys *System) {
	t.Helper()
	if _, err := sys.Query(context.Background(), Query{Text: "x"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("query after close: %v, want ErrClosed", err)
	}
}
