module github.com/banksdb/banks

go 1.23
