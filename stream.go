package banks

import (
	"errors"
	"fmt"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/index"
)

// ErrStopped is returned by SearchStream when the callback cancels the
// search.
var ErrStopped = errors.New("banks: search stopped by caller")

// SearchStream delivers answers incrementally, in emission order, as the
// backward expanding search produces them — the paper's motivation for
// incremental evaluation: first answers render while the search is still
// running. Returning false from fn cancels the search and SearchStream
// returns ErrStopped.
func (s *System) SearchStream(query string, opts *SearchOptions, fn func(*Answer) bool) error {
	terms := index.Tokenize(query)
	if len(terms) == 0 {
		return fmt.Errorf("banks: empty query")
	}
	err := s.searcher.SearchStream(terms, opts.toCore(), func(a *core.Answer) bool {
		return fn(s.convertAnswer(a))
	})
	if errors.Is(err, core.ErrStopped) {
		return ErrStopped
	}
	return err
}
