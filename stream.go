package banks

import (
	"context"
	"errors"
)

// ErrStopped is returned by QueryStream (and the deprecated SearchStream)
// when the callback cancels the search.
var ErrStopped = errors.New("banks: search stopped by caller")

// SearchStream delivers answers incrementally, in emission order, as the
// backward expanding search produces them — the paper's motivation for
// incremental evaluation: first answers render while the search is still
// running. Returning false from fn cancels the search and SearchStream
// returns ErrStopped.
//
// Deprecated: use QueryStream, which takes a context and returns the
// partial results: sys.QueryStream(ctx, Query{Text: query, Options: opts}, fn).
func (s *System) SearchStream(query string, opts *SearchOptions, fn func(*Answer) bool) error {
	_, err := s.QueryStream(context.Background(), Query{Text: query, Options: opts}, fn)
	return err
}
