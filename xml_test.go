package banks

import (
	"strings"
	"testing"
)

func TestPublicLoadXMLAndSearch(t *testing.T) {
	db := NewDatabase()
	doc := `<library>
		<book isbn="42"><title>Graph Search Systems</title><writer>Ada Byron</writer></book>
		<book isbn="43"><title>Relational Algebra</title><writer>Edgar Codd</writer></book>
	</library>`
	n, err := db.LoadXML(strings.NewReader(doc), "library")
	if err != nil {
		t.Fatal(err)
	}
	if n != 7 {
		t.Errorf("elements = %d, want 7", n)
	}
	sys, err := NewSystem(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Two keywords from different children of the same <book> connect at
	// the book element.
	answers := searchAnswers(t, sys, "graph byron", nil)
	if len(answers) == 0 {
		t.Fatal("no XML answers")
	}
	if answers[0].Root.Table != "xml_element" {
		t.Fatalf("root table = %s", answers[0].Root.Table)
	}
	// Root should be the containing <book>, not the whole <library>.
	var tag string
	for i, c := range answers[0].Root.Columns {
		if c == "tag" {
			tag, _ = answers[0].Root.Values[i].(string)
		}
	}
	if tag != "book" {
		t.Errorf("root tag = %q, want book\n%s", tag, answers[0].Format())
	}
}
