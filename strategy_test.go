package banks

// Strategy parity and admission-layer tests at the System level: the
// batched executor must be answer-identical to the backward one on the
// evaluation suites of both generators, and the single-flight/frontier
// machinery must hold up under a -race concurrent burst.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
)

// renderAnswers flattens a result list into a comparison-stable string.
func renderAnswers(answers []*Answer) string {
	var b strings.Builder
	for _, a := range answers {
		b.WriteString(a.Format())
		b.WriteString("\n")
	}
	return b.String()
}

func queryStrategy(t *testing.T, sys *System, terms []string, strategy string, opts *SearchOptions) []*Answer {
	t.Helper()
	res, err := sys.Query(context.Background(), Query{
		Text:     strings.Join(terms, " "),
		Strategy: strategy,
		Options:  opts,
	})
	if err != nil {
		t.Fatalf("%v under %q: %v", terms, strategy, err)
	}
	return res.Answers
}

// TestStrategyParityDBLPSuite runs the §5.3 DBLP evaluation suite under
// both strategies (twice, so the second batched pass replays warm
// frontiers) and requires identical ranked answers and scores.
func TestStrategyParityDBLPSuite(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(wrapDatabase(inner), nil)
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := eval.DBLPSuite(inner, g)
	if err != nil {
		t.Fatal(err)
	}
	opts := &SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}}
	for pass := 0; pass < 2; pass++ {
		for _, q := range queries {
			want := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBackward, opts))
			got := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBatched, opts))
			if want != got {
				t.Errorf("pass %d query %s: strategies disagree\nbackward:\n%s\nbatched:\n%s", pass, q.Name, want, got)
			}
		}
	}
	if st := sys.CacheStats(); st.FrontierReuses == 0 {
		t.Error("warm batched pass never reused a pooled frontier")
	}
}

// TestStrategyParityTPCDSuite is the same contract on the TPC-D catalog.
func TestStrategyParityTPCDSuite(t *testing.T) {
	inner, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(wrapDatabase(inner), nil)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for _, q := range eval.TPCDSuite() {
			want := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBackward, nil))
			got := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBatched, nil))
			if want != got {
				t.Errorf("pass %d query %s: strategies disagree\nbackward:\n%s\nbatched:\n%s", pass, q.Name, want, got)
			}
		}
	}
}

// TestSystemDefaultStrategy wires SystemOptions.Strategy: a system built
// batched answers exactly like a backward one, and NewSystem rejects
// unknown names outright.
func TestSystemDefaultStrategy(t *testing.T) {
	_, backSys := newQuickstartSystem(t)
	db2 := NewDatabase()
	if err := db2.ExecScript(`
		CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT);
		CREATE TABLE paper (id TEXT PRIMARY KEY, title TEXT);
		CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);
		INSERT INTO author VALUES ('a1', 'Soumen Chakrabarti'),
			('a2', 'Sunita Sarawagi'), ('a3', 'Byron Dom');
		INSERT INTO paper VALUES ('p1', 'Mining Surprising Patterns');
		INSERT INTO writes VALUES ('a1', 'p1'), ('a2', 'p1'), ('a3', 'p1');
	`); err != nil {
		t.Fatal(err)
	}
	batSys, err := NewSystem(db2, &SystemOptions{Strategy: StrategyBatched})
	if err != nil {
		t.Fatal(err)
	}
	opts := &SearchOptions{ExcludedRootTables: []string{"writes"}}
	want := renderAnswers(searchAnswers(t, backSys, "sunita soumen", opts))
	got := renderAnswers(searchAnswers(t, batSys, "sunita soumen", opts))
	if want != got {
		t.Errorf("batched-default system disagrees:\n%s\nvs\n%s", want, got)
	}

	if _, err := NewSystem(db2, &SystemOptions{Strategy: "warp-drive"}); err == nil {
		t.Error("NewSystem accepted an unknown strategy")
	}
	if _, err := backSys.Query(context.Background(), Query{Text: "sunita", Strategy: "warp-drive"}); err == nil {
		t.Error("Query accepted an unknown strategy")
	}
}

// TestBatchedConcurrentBurstSystem is the -race admission-layer contract:
// many goroutines fire the same queries (exact and prefix) through the
// batched strategy while results are checked against the sequential
// backward baseline, then the system's cache statistics must account for
// the shared work (single-flight coalescing and frontier reuse counters
// are wired and monotone).
func TestBatchedConcurrentBurstSystem(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(wrapDatabase(inner), &SystemOptions{Strategy: StrategyBatched})
	if err != nil {
		t.Fatal(err)
	}
	opts := &SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}}
	baselines := map[string]string{}
	burst := []Query{
		{Text: "soumen sunita", Options: opts},
		{Text: "seltzer sunita", Options: opts},
		{Text: "surpris", Prefix: true, Options: opts},
	}
	for _, q := range burst {
		bq := q
		bq.Strategy = StrategyBackward
		res, err := sys.Query(context.Background(), bq)
		if err != nil {
			t.Fatal(err)
		}
		baselines[q.Text] = renderAnswers(res.Answers)
	}

	const workers, reps = 8, 25
	var wg sync.WaitGroup
	fail := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				q := burst[(w+r)%len(burst)]
				res, err := sys.Query(context.Background(), q)
				if err != nil {
					fail <- err.Error()
					return
				}
				if renderAnswers(res.Answers) != baselines[q.Text] {
					fail <- "burst answers for " + q.Text + " diverged from baseline"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for msg := range fail {
		t.Error(msg)
	}

	st := sys.CacheStats()
	if st.FrontierReuses == 0 {
		t.Error("burst of repeated queries never reused a pooled frontier")
	}
	if st.Hits == 0 {
		t.Error("burst of repeated queries never hit the match cache")
	}
	if st.SingleFlight < 0 {
		t.Errorf("SingleFlight = %d", st.SingleFlight)
	}
}
