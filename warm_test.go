package banks

// Warm-state carryover across snapshot publishes. Apply must not reset
// the serving caches: a publish carries the previous snapshot's match
// cache and single-flight group, invalidating only the batch's touched
// terms, and keeps the batched strategy's memoized frontier pool across
// non-structural batches. Compact must not stall Apply for the duration
// of the rebuild: the base is materialized aside and only the tail fold
// and swap run under the writer lock. These tests pin both behaviours,
// their correctness boundary (a term mutated is never served stale), and
// the regressions around them.

import (
	"context"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/banksdb/banks/internal/datagen"
)

// newMutableDBLPOpts is newMutableDBLP with caller-controlled options
// (WALPath is filled in when unset).
func newMutableDBLPOpts(t *testing.T, opts SystemOptions) *System {
	t.Helper()
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	if opts.WALPath == "" {
		opts.WALPath = filepath.Join(t.TempDir(), "m.wal")
	}
	sys, err := NewSystem(&Database{inner: db}, &opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	return sys
}

// paperRIDs collects the RIDs of every "Paper" tuple appearing anywhere
// in the result's answer trees.
func paperRIDs(res *Results) map[int64]bool {
	out := map[int64]bool{}
	var walk func(n *TreeNode)
	walk = func(n *TreeNode) {
		if n.Tuple.Table == "Paper" {
			out[n.Tuple.RID] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, a := range res.Answers {
		walk(a.Tree)
	}
	return out
}

// TestWarmCarryoverKeepsUntouchedTerms: an Apply touching unrelated rows
// must leave previously cached terms hot — the publish carries the cache
// and only invalidates the batch's tokens.
func TestWarmCarryoverKeepsUntouchedTerms(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	q := Query{Text: "mohan transaction", Strategy: StrategyBatched}

	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	base := sys.CacheStats()
	if base.Hits == 0 {
		t.Fatalf("no cache hits after a repeated query: %+v", base)
	}

	// A batch whose tokens share nothing with the cached terms.
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "WarmP1", "PaperName": "zeppelin obelisk", "Year": 2001}),
	}); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats()
	if st.WarmPublishes != base.WarmPublishes+1 {
		t.Fatalf("Apply did not publish warm: WarmPublishes %d -> %d", base.WarmPublishes, st.WarmPublishes)
	}
	if st.Epoch <= base.Epoch {
		t.Fatalf("token-touching batch did not advance the cache epoch: %d -> %d", base.Epoch, st.Epoch)
	}
	if st.Hits != base.Hits || st.Misses != base.Misses {
		t.Fatalf("publish reset the cache counters: %+v -> %+v", base, st)
	}

	// The untouched terms must still be served from the carried cache.
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	after := sys.CacheStats()
	if after.Hits <= st.Hits {
		t.Fatalf("untouched terms went cold across the publish: hits %d -> %d (misses %d -> %d)",
			st.Hits, after.Hits, st.Misses, after.Misses)
	}
	if after.Misses != st.Misses {
		t.Fatalf("untouched terms missed after the publish: misses %d -> %d", st.Misses, after.Misses)
	}
}

// TestInvalidationNeverServesStale: a query that begins after Apply
// returns must see the batch — the touched terms (and their covering
// prefixes) are invalidated, under both strategies.
func TestInvalidationNeverServesStale(t *testing.T) {
	for _, strategy := range []string{StrategyBackward, StrategyBatched} {
		t.Run(strategy, func(t *testing.T) {
			sys := newMutableDBLP(t)
			ctx := context.Background()
			q := Query{Text: "xylograph", Strategy: strategy}

			res, err := sys.Apply(ctx, []Mutation{
				Insert("Paper", map[string]interface{}{"PaperId": "StaleA", "PaperName": "xylograph alpha", "Year": 2001}),
				Insert("Paper", map[string]interface{}{"PaperId": "StaleB", "PaperName": "plain beta", "Year": 2001}),
			})
			if err != nil {
				t.Fatal(err)
			}
			ridA, ridB := res.RIDs[0], res.RIDs[1]

			got, err := sys.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if rids := paperRIDs(got); !rids[ridA] || rids[ridB] {
				t.Fatalf("before rotation: matches %v, want {%d}", rids, ridA)
			}
			// Cache the prefix path too, then rotate the token to the other
			// row in one batch.
			if _, err := sys.Query(ctx, Query{Text: "xylo", Prefix: true, Strategy: strategy}); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Apply(ctx, []Mutation{
				Update("Paper", ridA, map[string]interface{}{"PaperName": "plain alpha"}),
				Update("Paper", ridB, map[string]interface{}{"PaperName": "xylograph beta"}),
			}); err != nil {
				t.Fatal(err)
			}
			for _, q := range []Query{
				{Text: "xylograph", Strategy: strategy},
				{Text: "xylo", Prefix: true, Strategy: strategy},
			} {
				got, err = sys.Query(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if rids := paperRIDs(got); !rids[ridB] || rids[ridA] {
					t.Fatalf("after rotation, query %q: matches %v, want {%d}", q.Text, rids, ridB)
				}
			}
			if st := sys.CacheStats(); st.Invalidated == 0 {
				t.Fatalf("rotation invalidated no cache entries: %+v", st)
			}
		})
	}
}

// TestCompactFoldsConcurrentTail drives Apply batches deterministically
// into Compact's build-aside window (via the test hook) covering the net
// per-row matrix — insert, text update of a tail insert, FK rewire,
// delete of a pre-existing row, and insert+delete within the window —
// and requires the folded engine to answer exactly like a rebuild.
func TestCompactFoldsConcurrentTail(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()

	// Pre-tail overlay state, so the aside build has real deltas to fold.
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "TF0", "PaperName": "meridian sonnet", "Year": 2001}),
	}); err != nil {
		t.Fatal(err)
	}

	citesRID := liveRIDs(sys.Database(), "Cites")[0]
	var hookErr error
	sys.compactHook = func() {
		apply := func(muts ...Mutation) *ApplyResult {
			res, err := sys.Apply(ctx, muts)
			if err != nil && hookErr == nil {
				hookErr = err
			}
			return res
		}
		res := apply(
			Insert("Paper", map[string]interface{}{"PaperId": "TF1", "PaperName": "tundra cipher", "Year": 2002}),
			Insert("Author", map[string]interface{}{"AuthorId": "TFA1", "AuthorName": "lantern mosaic"}),
		)
		if hookErr != nil {
			return
		}
		tf1 := res.RIDs[0]
		// Text update of a row inserted in the same window, plus a link to it.
		apply(
			Update("Paper", tf1, map[string]interface{}{"PaperName": "tundra lantern"}),
			Insert("Writes", map[string]interface{}{"AuthorId": "TFA1", "PaperId": "TF1"}),
		)
		// Insert + delete within the window: no net change.
		res = apply(Insert("Paper", map[string]interface{}{"PaperId": "TF2", "PaperName": "ephemeral cipher", "Year": 2002}))
		if hookErr != nil {
			return
		}
		apply(Delete("Paper", res.RIDs[0]))
		// Delete a pre-existing link row.
		apply(Delete("Cites", citesRID))
	}
	err := sys.Compact()
	sys.compactHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if hookErr != nil {
		t.Fatalf("apply during compaction: %v", hookErr)
	}
	if n := sys.PendingMutations(); n == 0 {
		t.Fatal("tail fold left no pending mutations — the window was not exercised")
	}
	queries := append([]string{"tundra lantern", "lantern mosaic", "meridian sonnet"}, dblpQueries...)
	checkQueryParity(t, sys, queries, "after tail fold")

	// A quiet second compaction folds the tail residue away.
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if n := sys.PendingMutations(); n != 0 {
		t.Fatalf("%d pending mutations after quiet compaction", n)
	}
	checkQueryParity(t, sys, queries, "after quiet compaction")
}

// TestCompactCarriesWarmStateWhenUnchanged: when the overlay holds no
// structural changes and nothing lands during the build, the compacted
// base keeps the serving numbering, so the cache carries across Compact.
func TestCompactCarriesWarmStateWhenUnchanged(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	q := Query{Text: "mohan transaction", Strategy: StrategyBatched}

	// Text-only update: an index delta but no graph delta.
	paper := liveRIDs(sys.Database(), "Paper")[0]
	if _, err := sys.Apply(ctx, []Mutation{
		Update("Paper", paper, map[string]interface{}{"PaperName": "quasar cipher"}),
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := sys.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	before := sys.CacheStats()
	if before.Hits == 0 {
		t.Fatalf("no warm state to carry: %+v", before)
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	st := sys.CacheStats()
	if st.Hits != before.Hits || st.Epoch != before.Epoch {
		t.Fatalf("identity compaction reset the carried cache: %+v -> %+v", before, st)
	}
	if st.WarmPublishes != before.WarmPublishes+1 {
		t.Fatalf("identity compaction did not count as a warm publish: %d -> %d",
			before.WarmPublishes, st.WarmPublishes)
	}
	if _, err := sys.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if after := sys.CacheStats(); after.Hits <= st.Hits {
		t.Fatalf("terms went cold across identity compaction: hits %d -> %d", st.Hits, after.Hits)
	}
	checkQueryParity(t, sys, dblpQueries, "after identity compaction")
}

// TestCompactWithCachingDisabledAndStore: rebuild paths must tolerate a
// nil match cache (MatchCacheBytes < 0) while StorePath asks them to
// harvest warm keys for the persisted store.
func TestCompactWithCachingDisabledAndStore(t *testing.T) {
	dir := t.TempDir()
	sys := newMutableDBLPOpts(t, SystemOptions{
		MatchCacheBytes: -1,
		StorePath:       filepath.Join(dir, "engine.store"),
		WALPath:         filepath.Join(dir, "m.wal"),
	})
	ctx := context.Background()
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "NC1", "PaperName": "cipher mosaic", "Year": 2001}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Refresh(); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Query(ctx, Query{Text: "cipher mosaic"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers with caching disabled")
	}
	if st := sys.CacheStats(); st.Hits != 0 || st.Entries != 0 {
		t.Fatalf("disabled cache reports state: %+v", st)
	}
}

// TestWarmChurnRace interleaves Apply, Query and Compact under the race
// detector across 1000 publishes: a token rotated between two rows is
// never served stale to a query that starts after the Apply returned,
// every publish carries warm state, and the run leaks no goroutines.
func TestWarmChurnRace(t *testing.T) {
	sys := newMutableDBLPOpts(t, SystemOptions{Strategy: StrategyBatched})
	ctx := context.Background()

	res, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "ChurnA", "PaperName": "xylograph alpha", "Year": 2001}),
		Insert("Paper", map[string]interface{}{"PaperId": "ChurnB", "PaperName": "plain beta", "Year": 2001}),
	})
	if err != nil {
		t.Fatal(err)
	}
	holder, other := res.RIDs[0], res.RIDs[1]

	baseline := runtime.NumGoroutine()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			texts := append([]string{"xylograph"}, dblpQueries...)
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := sys.Query(ctx, Query{Text: texts[n%len(texts)]}); err != nil {
					t.Errorf("background query: %v", err)
					return
				}
			}
		}(i)
	}

	const publishes = 1000
	startStats := sys.CacheStats()
	for i := 0; i < publishes; i++ {
		if _, err := sys.Apply(ctx, []Mutation{
			Update("Paper", holder, map[string]interface{}{"PaperName": "plain title"}),
			Update("Paper", other, map[string]interface{}{"PaperName": "xylograph title"}),
		}); err != nil {
			t.Fatal(err)
		}
		holder, other = other, holder
		if i%50 == 0 {
			// Read-your-writes: this query begins after Apply returned, so
			// a stale cached match for the rotated term is a bug.
			got, err := sys.Query(ctx, Query{Text: "xylograph"})
			if err != nil {
				t.Fatal(err)
			}
			if rids := paperRIDs(got); !rids[holder] || rids[other] {
				t.Fatalf("publish %d served stale matches: %v, want {%d}", i, rids, holder)
			}
		}
		if i%250 == 249 {
			if err := sys.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()

	st := sys.CacheStats()
	if st.WarmPublishes-startStats.WarmPublishes < publishes {
		t.Fatalf("not every publish carried warm state: %d of %d",
			st.WarmPublishes-startStats.WarmPublishes, publishes)
	}
	if st.FrontierCarries-startStats.FrontierCarries < publishes {
		t.Fatalf("non-structural batches dropped the frontier pool: %d of %d",
			st.FrontierCarries-startStats.FrontierCarries, publishes)
	}
	// The first Compact renumbers (the setup inserts are delta nodes) and
	// legitimately restarts the cache; every Apply after it bumps the
	// carried epoch, so the final epoch counts the batches since then.
	if st.Epoch < uint64(publishes)/2 {
		t.Fatalf("epoch %d after %d token-touching batches", st.Epoch, publishes)
	}
	if st.Invalidated == 0 {
		t.Fatal("rotation invalidated nothing")
	}

	// No goroutine leak: background warmers and queriers are done.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		t.Fatalf("goroutine leak across %d publishes: %d -> %d", publishes, baseline, n)
	}
	checkQueryParity(t, sys, append([]string{"xylograph"}, dblpQueries...), "after churn")
}

// TestCompactDoesNotBlockApply measures the contract that gives Compact
// its value: an Apply issued while Compact rebuilds must not wait for
// the build, only for the final fold+swap.
func TestCompactDoesNotBlockApply(t *testing.T) {
	sys := newMutableDBLP(t)
	ctx := context.Background()
	if _, err := sys.Apply(ctx, []Mutation{
		Insert("Paper", map[string]interface{}{"PaperId": "NB0", "PaperName": "glacier sonnet", "Year": 2001}),
	}); err != nil {
		t.Fatal(err)
	}

	entered := make(chan struct{})
	release := make(chan struct{})
	var applyStall time.Duration
	var applyErr error
	sys.compactHook = func() {
		close(entered)
		<-release
	}
	done := make(chan error, 1)
	go func() { done <- sys.Compact() }()
	<-entered

	// The build phase is (artificially) still running; Apply must get
	// through regardless.
	applied := make(chan struct{})
	go func() {
		start := time.Now()
		_, applyErr = sys.Apply(ctx, []Mutation{
			Insert("Paper", map[string]interface{}{"PaperId": "NB1", "PaperName": "tundra mosaic", "Year": 2002}),
		})
		applyStall = time.Since(start)
		close(applied)
	}()
	select {
	case <-applied:
	case <-time.After(5 * time.Second):
		close(release)
		t.Fatal("Apply blocked behind Compact's build phase")
	}
	if applyErr != nil {
		t.Fatal(applyErr)
	}
	_ = applyStall
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	sys.compactHook = nil
	checkQueryParity(t, sys, append([]string{"tundra mosaic"}, dblpQueries...), "after non-blocking compaction")
}
