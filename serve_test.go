package banks

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/banksdb/banks/internal/datagen"
)

// serveVars decodes the /debug/vars snapshot of a ServeHandler.
func serveVars(t *testing.T, handler http.Handler) (counters, gauges map[string]int64) {
	t.Helper()
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/vars status = %d", rec.Code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
		Gauges   map[string]int64 `json:"gauges"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/debug/vars: %v", err)
	}
	return snap.Counters, snap.Gauges
}

// waitGateDrained polls /debug/vars until the gate reports no in-flight
// and no queued work. Responses can leave before the query goroutine
// frees its slot (a timed-out search is abandoned at the response layer
// and unwinds in the background), so tests must wait for the drain
// before auditing the counters.
func waitGateDrained(t *testing.T, handler http.Handler) (counters, gauges map[string]int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		counters, gauges = serveVars(t, handler)
		if gauges["gate_inflight"] == 0 && gauges["gate_queued"] == 0 {
			return counters, gauges
		}
		if time.Now().After(deadline) {
			t.Fatalf("gate not drained: inflight=%d queued=%d",
				gauges["gate_inflight"], gauges["gate_queued"])
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The heavy TPC-D system — whose three-metadata-term query expands for
// seconds uncancelled, the workload that saturates a small admission
// gate — is built once and shared read-only across the serve tests
// (under -race the build dominates the test time).
var (
	heavyTPCDOnce sync.Once
	heavyTPCDSys  *System
	heavyTPCDErr  error
)

func newHeavyTPCDSystem(t *testing.T) *System {
	t.Helper()
	heavyTPCDOnce.Do(func() {
		inner, err := datagen.BuildTPCD(datagen.TPCDConfig{
			Parts: 2000, Suppliers: 500, Customers: 1000, Orders: 8000, LinesPer: 3, Seed: 7,
		})
		if err != nil {
			heavyTPCDErr = err
			return
		}
		heavyTPCDSys, heavyTPCDErr = NewSystem(wrapDatabase(inner), nil)
	})
	if heavyTPCDErr != nil {
		t.Fatal(heavyTPCDErr)
	}
	return heavyTPCDSys
}

// TestServeHandlerSaturation saturates the front door: with 2 worker
// slots and a queue of 2, a burst of 16 slow searches must shed the
// overflow immediately with 503 + Retry-After, never run more than the
// slot count concurrently, drain completely, and leak no goroutines.
// The /debug/vars surface must agree with the client-observed outcomes.
func TestServeHandlerSaturation(t *testing.T) {
	sys := newHeavyTPCDSystem(t) // shared; not closed here
	handler := sys.ServeHandler(&ServeOptions{
		Search:       &SearchOptions{TopK: 1 << 20, HeapSize: 1 << 10},
		MaxInFlight:  2,
		MaxQueue:     2,
		QueueTimeout: 5 * time.Second, // queued requests wait; only overflow sheds
	})
	before := runtime.NumGoroutine()

	const burst = 16
	// Each request carries its own 300ms timeout so admitted searches end
	// quickly (as 408s) and free their slots for the queued ones.
	path := "/search?q=" + url.QueryEscape("part orders lineitem") + "&timeout=300ms"
	var ok, clientTimeout, shed, other atomic.Int64
	var retryAfterSeen atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
			switch rec.Code {
			case http.StatusOK:
				ok.Add(1)
			case http.StatusRequestTimeout:
				clientTimeout.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
				if rec.Header().Get("Retry-After") != "" {
					retryAfterSeen.Add(1)
				}
			default:
				other.Add(1)
			}
		}()
	}
	wg.Wait()

	if got := ok.Load() + clientTimeout.Load() + shed.Load() + other.Load(); got != burst {
		t.Fatalf("outcomes = %d, want %d", got, burst)
	}
	if other.Load() != 0 {
		t.Errorf("%d requests got unexpected statuses", other.Load())
	}
	// 2 run + 2 queue = at most 4 admitted; the other 12 must shed.
	if shed.Load() < burst-4 {
		t.Errorf("shed = %d, want >= %d", shed.Load(), burst-4)
	}
	if retryAfterSeen.Load() != shed.Load() {
		t.Errorf("Retry-After on %d of %d sheds", retryAfterSeen.Load(), shed.Load())
	}

	counters, gauges := waitGateDrained(t, handler)
	if gauges["gate_shed_total"] != shed.Load() {
		t.Errorf("gate_shed_total = %d, client saw %d", gauges["gate_shed_total"], shed.Load())
	}
	admitted := gauges["gate_admitted_total"]
	if got := admitted + gauges["gate_shed_total"] + gauges["gate_queue_timeout_total"] + gauges["gate_canceled_total"]; got != burst {
		t.Errorf("gate outcome counters sum to %d, want %d", got, burst)
	}
	// Every admitted request ran one observed query.
	if counters["queries_total"] != admitted {
		t.Errorf("queries_total = %d, admitted = %d", counters["queries_total"], admitted)
	}
	if counters["queries_timeout"] != clientTimeout.Load() {
		t.Errorf("queries_timeout = %d, clients saw %d x 408", counters["queries_timeout"], clientTimeout.Load())
	}

	// No goroutine leak once the burst drains.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before+2 {
		t.Errorf("goroutines = %d, was %d before the burst", g, before)
	}
}

// TestServeBudgetExhaustionTPCD pins the budget-kill contract on a heavy
// TPC-D query through the public API: a pops budget below the query's
// full cost truncates it with BudgetExhausted/"pops", the truncation
// point and the partial answers are deterministic across repeated runs,
// and both execution strategies honour the budget.
func TestServeBudgetExhaustionTPCD(t *testing.T) {
	sys := newHeavyTPCDSystem(t) // shared; not closed here
	ctx := context.Background()

	heavy := func(strategy string, budget int) Query {
		return Query{
			Text:     "part orders lineitem",
			Strategy: strategy,
			Options: &SearchOptions{
				TopK: 1 << 20, HeapSize: 1 << 10,
				Budget: Budget{MaxPops: budget},
			},
		}
	}

	for _, strategy := range []string{StrategyBackward, StrategyBatched} {
		const budget = 5000
		sig := func(r *Results) []string {
			var s []string
			for _, a := range r.Answers {
				s = append(s, fmt.Sprintf("%s/%d:%.6f", a.Root.Table, a.Root.RID, a.Score))
			}
			return s
		}
		first, err := sys.Query(ctx, heavy(strategy, budget))
		if err != nil {
			t.Fatal(err)
		}
		if !first.Stats.BudgetExhausted || first.Stats.BudgetReason != "pops" {
			t.Fatalf("%s: exhausted=%v reason=%q, want pops",
				strategy, first.Stats.BudgetExhausted, first.Stats.BudgetReason)
		}
		if first.Stats.Pops > budget {
			t.Errorf("%s: pops = %d, exceeds budget %d", strategy, first.Stats.Pops, budget)
		}
		// Partial answers come out ranked.
		for i, a := range first.Answers {
			if a.Rank != i+1 {
				t.Errorf("%s: rank %d at position %d", strategy, a.Rank, i)
			}
		}
		// The truncation point is deterministic: an identical re-run (warm
		// caches and all) stops at the same pops/arcs with the same answers.
		second, err := sys.Query(ctx, heavy(strategy, budget))
		if err != nil {
			t.Fatal(err)
		}
		if first.Stats.Pops != second.Stats.Pops || first.Stats.ArcsScanned != second.Stats.ArcsScanned {
			t.Errorf("%s: truncation moved: pops %d->%d arcs %d->%d", strategy,
				first.Stats.Pops, second.Stats.Pops, first.Stats.ArcsScanned, second.Stats.ArcsScanned)
		}
		s1, s2 := sig(first), sig(second)
		if len(s1) != len(s2) {
			t.Fatalf("%s: answer count changed: %d vs %d", strategy, len(s1), len(s2))
		}
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Errorf("%s: answer %d diverged: %s vs %s", strategy, i, s1[i], s2[i])
			}
		}
	}
}

// TestServeMetricsConsistencyUnderChurn runs the full front door while
// the engine churns underneath it — concurrent searches through the
// handler, live Apply batches, and Refresh swaps — then checks the books
// balance: gate counters account for every request, the admitted count
// equals the observed query count, and the gate is fully drained.
func TestServeMetricsConsistencyUnderChurn(t *testing.T) {
	db := NewDatabase()
	if err := db.ExecScript(`
		CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT);
		CREATE TABLE paper (id TEXT PRIMARY KEY, title TEXT);
		CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);
		INSERT INTO author VALUES ('a1', 'Soumen Chakrabarti'),
			('a2', 'Sunita Sarawagi'), ('a3', 'Byron Dom');
		INSERT INTO paper VALUES ('p1', 'Mining Surprising Patterns');
		INSERT INTO writes VALUES ('a1', 'p1'), ('a2', 'p1'), ('a3', 'p1');
	`); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(db, &SystemOptions{WALPath: t.TempDir() + "/churn.wal"})
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	handler := sys.ServeHandler(&ServeOptions{
		Search:      &SearchOptions{ExcludedRootTables: []string{"writes"}},
		MaxInFlight: 4,
		MaxQueue:    8,
	})

	var done atomic.Bool
	var requests atomic.Int64
	var failed atomic.Int64
	var wg sync.WaitGroup

	// Query workers hammering /search through the gate.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			path := "/search?q=" + url.QueryEscape("sunita soumen")
			for !done.Load() {
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
				requests.Add(1)
				if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable {
					failed.Add(1)
				}
			}
		}()
	}
	// Live mutations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !done.Load(); i++ {
			aid := fmt.Sprintf("c%d", i)
			_, err := sys.Apply(context.Background(), []Mutation{
				Insert("author", map[string]interface{}{"id": aid, "name": fmt.Sprintf("Churn Author %d", i)}),
				Insert("writes", map[string]interface{}{"aid": aid, "pid": "p1"}),
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	// Full refreshes swapping the engine under the handler.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			if err := sys.Refresh(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	time.Sleep(500 * time.Millisecond)
	done.Store(true)
	wg.Wait()

	if failed.Load() != 0 {
		t.Errorf("%d requests failed with unexpected statuses", failed.Load())
	}
	counters, gauges := waitGateDrained(t, handler)
	admitted := gauges["gate_admitted_total"]
	total := admitted + gauges["gate_shed_total"] + gauges["gate_queue_timeout_total"] + gauges["gate_canceled_total"]
	if total != requests.Load() {
		t.Errorf("gate accounted for %d requests, clients sent %d", total, requests.Load())
	}
	if counters["queries_total"] != admitted {
		t.Errorf("queries_total = %d, admitted = %d", counters["queries_total"], admitted)
	}
	if counters["queries_total"] != counters["queries_ok"]+counters["queries_error"]+counters["queries_timeout"] {
		t.Errorf("query outcome counters don't sum: %v", counters)
	}
	// The engine gauges must be live against the churned engine.
	if gauges["graph_nodes"] == 0 || gauges["graph_arcs"] == 0 {
		t.Errorf("engine gauges dead: nodes=%d arcs=%d", gauges["graph_nodes"], gauges["graph_arcs"])
	}
}
