package banks

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"github.com/banksdb/banks/internal/cluster"
	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// StrategyDistributed is the scatter-gather execution strategy: the
// query fans out to the partitions of a Cluster, each runs the backward
// expanding search over its partition-local engine, and the front door
// merges the partial results into the global top-k. It is served by
// Cluster.Query (and the cluster's ServeHandler); a single-engine
// System rejects it with a pointer here.
const StrategyDistributed = core.StrategyDistributed

// Cluster is the distributed serving front door: a set of partition
// engines (in-process stores opened from banks-shard output, or remote
// processes), a term-statistics routing broker that prunes partitions
// which cannot match a query, and the deterministic top-k merge.
//
// Completeness bound: a distributed query returns every answer whose
// connection tree lies entirely inside one partition, scored exactly as
// the single-engine search scores it; trees crossing partition
// boundaries are not found, so a root whose globally best tree crosses
// the cut surfaces with its best partition-local tree (a lower bound on
// its single-engine score) or not at all.
// Results.Stats.PartitionLocalBound reports the bound whenever it
// applies (more than one partition).
//
// The Cluster renders answers against db, which must hold the same rows
// every partition store was built from. A Cluster is safe for
// concurrent use.
type Cluster struct {
	db     *Database
	coord  *cluster.Coordinator
	closed atomic.Bool
}

// OpenCluster opens the partition stores at paths (the output of
// banks-shard, conventionally base.p0 … base.pN-1; see
// ClusterPartitionPaths) as in-process partitions over db and performs
// the cluster handshake. opts contributes StoreBudgetBytes (the
// per-partition resident-block budget); other system options do not
// apply to partitioned serving.
func OpenCluster(db *Database, paths []string, opts *SystemOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("banks: OpenCluster requires a database")
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("banks: OpenCluster requires at least one partition store")
	}
	var budget int64
	if opts != nil {
		budget = opts.StoreBudgetBytes
	}
	parts := make([]cluster.Partition, 0, len(paths))
	fail := func(err error) (*Cluster, error) {
		for _, p := range parts {
			p.Close()
		}
		return nil, err
	}
	for i, path := range paths {
		p, err := cluster.OpenLocal(fmt.Sprintf("p%d", i), path, budget)
		if err != nil {
			return fail(fmt.Errorf("banks: opening partition %d: %w", i, err))
		}
		parts = append(parts, p)
	}
	return newCluster(db, parts)
}

// OpenClusterRemotes connects to partition processes serving
// cluster.Handler (banks-shard -serve) at urls and performs the cluster
// handshake. The remote processes own the partition stores; Close only
// drops the connections.
func OpenClusterRemotes(db *Database, urls []string) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("banks: OpenClusterRemotes requires a database")
	}
	if len(urls) == 0 {
		return nil, fmt.Errorf("banks: OpenClusterRemotes requires at least one partition URL")
	}
	parts := make([]cluster.Partition, 0, len(urls))
	for i, u := range urls {
		parts = append(parts, cluster.NewRemote(fmt.Sprintf("p%d", i), u, nil))
	}
	return newCluster(db, parts)
}

func newCluster(db *Database, parts []cluster.Partition) (*Cluster, error) {
	coord, err := cluster.NewCoordinator(context.Background(), parts)
	if err != nil {
		for _, p := range parts {
			p.Close()
		}
		return nil, fmt.Errorf("banks: %w", err)
	}
	return &Cluster{db: db, coord: coord}, nil
}

// ClusterPartitionPaths derives the conventional partition store paths
// banks-shard writes for a base store path: base.p0, base.p1, …
func ClusterPartitionPaths(base string, parts int) []string {
	return cluster.PartitionPaths(base, parts)
}

// Partitions returns the number of partitions behind the cluster.
func (c *Cluster) Partitions() int { return len(c.coord.Partitions()) }

// ClusterStats is the cluster front door's cumulative routing telemetry.
type ClusterStats struct {
	// Partitions is the partition count.
	Partitions int
	// Queries counts distributed queries executed.
	Queries int64
	// PartitionsRouted counts scatter legs sent to partitions.
	PartitionsRouted int64
	// PartitionsPruned counts scatter legs the term-statistics broker
	// proved unnecessary — the routing win.
	PartitionsPruned int64
}

// Stats returns the cluster's cumulative routing counters.
func (c *Cluster) Stats() ClusterStats {
	r := c.coord.Routing()
	return ClusterStats{
		Partitions:       len(c.coord.Partitions()),
		Queries:          r.Queries,
		PartitionsRouted: r.PartitionsRouted,
		PartitionsPruned: r.PartitionsPruned,
	}
}

// Query answers a keyword query by scatter-gather over the partitions:
// the broker routes to the partitions whose term statistics can match,
// each routed partition runs the paper's backward expanding search
// locally, and the results merge into the global top-k under the
// engine's canonical (table, rid) tie-break. Accepted strategies are ""
// and StrategyDistributed (partitions always run the backward search
// locally); GroupByShape is not supported on a cluster.
func (c *Cluster) Query(ctx context.Context, q Query) (*Results, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	switch q.Strategy {
	case "", StrategyDistributed:
	default:
		return nil, fmt.Errorf("banks: a cluster serves only the %q strategy (got %q)",
			StrategyDistributed, q.Strategy)
	}
	if q.GroupByShape {
		return nil, fmt.Errorf("banks: GroupByShape is not supported on a cluster")
	}

	var terms []string
	if q.Qualified {
		terms = strings.Fields(q.Text)
	} else {
		terms = index.Tokenize(q.Text)
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("banks: empty query")
	}

	req := cluster.RequestFromOptions(terms, q.Qualified, q.Prefix, q.Options.toCore())
	res, err := c.coord.Query(ctx, req)
	if err != nil {
		return nil, err
	}
	out := &Results{Stats: statsFromWire(res.Stats)}
	for i := range res.Answers {
		out.Answers = append(out.Answers, c.convertWireAnswer(&res.Answers[i]))
	}
	return out, nil
}

// statsFromWire converts merged cluster statistics to the public form.
func statsFromWire(st cluster.Stats) Stats {
	cs := st.ToCore()
	return statsFromCore(&cs)
}

// convertWireAnswer materializes one wire answer (tuple references)
// against the cluster's database. The read lock is held for the tree
// walk, as in the single-engine path: row storage appends under the
// write lock, and answers must not render half-written rows.
func (c *Cluster) convertWireAnswer(a *cluster.Answer) *Answer {
	c.db.inner.RLock()
	defer c.db.inner.RUnlock()
	matched := make(map[cluster.Ref]bool, len(a.TermNodes))
	for _, r := range a.TermNodes {
		matched[r] = true
	}
	children := make(map[cluster.Ref][]cluster.Edge)
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e)
	}
	var build func(r cluster.Ref, w float64) *TreeNode
	build = func(r cluster.Ref, w float64) *TreeNode {
		node := &TreeNode{Tuple: c.tupleOfLocked(r), EdgeWeight: w, Matched: matched[r]}
		for _, e := range children[r] {
			node.Children = append(node.Children, build(e.To, e.W))
		}
		return node
	}
	tree := build(a.Root, 0)
	return &Answer{
		Rank:   a.Rank,
		Score:  a.Score,
		EScore: a.EScore,
		NScore: a.NScore,
		Weight: a.Weight,
		Root:   tree.Tuple,
		Tree:   tree,
	}
}

// tupleOfLocked materializes the row behind a (table, rid) reference;
// the caller holds the database read lock.
func (c *Cluster) tupleOfLocked(r cluster.Ref) Tuple {
	out := Tuple{Table: r.Table, RID: r.RID}
	t := c.db.inner.Table(r.Table)
	if t == nil {
		return out
	}
	row := t.Row(sqldb.RID(r.RID))
	if row == nil {
		return out
	}
	for i, col := range t.Schema().Columns {
		out.Columns = append(out.Columns, col.Name)
		out.Values = append(out.Values, fromValue(row[i]))
	}
	return out
}

// PartitionHandler exposes one partition store over HTTP for a remote
// cluster: open it in a partition process and mount the returned
// handler, then point OpenClusterRemotes (or banks-shard's coordinator
// mode) at it.
func PartitionHandler(path string, budgetBytes int64) (http.Handler, func() error, error) {
	p, err := cluster.OpenLocal("partition", path, budgetBytes)
	if err != nil {
		return nil, nil, err
	}
	return cluster.Handler(p), p.Close, nil
}

// Close closes every partition. In-flight queries on in-process
// partitions finish against the store they pinned.
func (c *Cluster) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	return c.coord.Close()
}
