// Command banks-web serves the BANKS web interface — keyword search plus
// the Section 4 browsing system — over one of the built-in datasets,
// behind the production front door: admission control with load
// shedding, per-query observability on /debug, and graceful shutdown.
//
// Usage:
//
//	banks-web [-data dblp|thesis|tpcd] [-scale small|paper] [-addr :8080]
//	          [-store PATH] [-storebudget BYTES] [-partitions N]
//	          [-maxinflight N] [-maxqueue N] [-queuetimeout D]
//	          [-timeout D] [-slowquery D]
//
// With -store, the graph and keyword index are served from a segmented
// disk store instead of being rebuilt at startup: an existing store opens
// lazily in milliseconds (segments fault in on first query); a missing
// one is built once, persisted, and used — so the next start is instant.
//
// With -partitions N (requires -store), the store is split into N
// partition stores along the (table, row-range) cut (written next to the
// base store as PATH.p0 … PATH.pN-1, reused when present) and served
// through the distributed scatter-gather front door instead: a JSON
// /search endpoint with term-statistics routing, admission control and
// /debug observability, in place of the HTML browsing UI.
//
// SIGINT/SIGTERM drain in-flight requests (bounded by -draintimeout)
// before the engine closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	banks "github.com/banksdb/banks"
	"github.com/banksdb/banks/internal/browse"
	"github.com/banksdb/banks/internal/cluster"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

func main() {
	data := flag.String("data", "thesis", "dataset: dblp, thesis or tpcd")
	scale := flag.String("scale", "small", "dataset scale: small or paper")
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "serve the engine from this disk store (built+saved on first run)")
	storeBudget := flag.Int64("storebudget", 0, "resident posting-block budget with -store (bytes; 0 = unbounded)")
	partitions := flag.Int("partitions", 0, "with -store: split into N partitions and serve the distributed JSON front door")
	maxInFlight := flag.Int("maxinflight", 32, "max concurrently executing searches (0 = no admission control)")
	maxQueue := flag.Int("maxqueue", 64, "max searches waiting for a worker slot before shedding")
	queueTimeout := flag.Duration("queuetimeout", 2*time.Second, "shed a queued search after waiting this long (0 = wait forever)")
	timeout := flag.Duration("timeout", 10*time.Second, "server-side deadline for searches without their own timeout (0 = none)")
	slowQuery := flag.Duration("slowquery", 500*time.Millisecond, "latency at which a query enters the /debug slow log")
	drainTimeout := flag.Duration("draintimeout", 10*time.Second, "how long shutdown waits for in-flight requests")
	flag.Parse()

	db, excluded, err := loadDataset(*data, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	serveOpts := &banks.ServeOptions{
		Search:         &banks.SearchOptions{ExcludedRootTables: excluded},
		MaxInFlight:    *maxInFlight,
		MaxQueue:       *maxQueue,
		QueueTimeout:   *queueTimeout,
		DefaultTimeout: *timeout,
		SlowQuery:      *slowQuery,
	}
	var handler http.Handler
	var closeEngine func() error
	if *partitions > 0 {
		if *storePath == "" {
			fmt.Fprintln(os.Stderr, "banks-web: -partitions requires -store PATH")
			os.Exit(2)
		}
		cl, err := openCluster(db, *data, *scale, *storePath, *storeBudget, *partitions)
		if err != nil {
			log.Fatal(err)
		}
		handler = cl.ServeHandler(serveOpts)
		closeEngine = cl.Close
	} else {
		sys, err := openSystem(db, *data, *scale, *storePath, *storeBudget, excluded)
		if err != nil {
			log.Fatal(err)
		}
		// Seed a few demo templates so /template has content.
		if err := seedTemplates(db, *data); err != nil {
			log.Printf("seeding templates: %v", err)
		}
		handler = sys.ServeHandler(serveOpts)
		closeEngine = sys.Close
	}

	// A production-shaped server: header reads, whole requests, responses
	// and idle keep-alives all bounded, so one slow client cannot pin a
	// connection (and its worker slot) forever.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// Serve until SIGINT/SIGTERM, then drain: stop accepting, let
	// in-flight requests finish (bounded), and only then close the engine
	// so no search runs against a released store.
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("BANKS web UI on %s (observability on /debug)", *addr)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		log.Printf("%s: draining (up to %s)...", sig, *drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		err = srv.Shutdown(ctx)
		cancel()
		if err != nil {
			log.Printf("shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	}
	if err := closeEngine(); err != nil {
		log.Printf("closing engine: %v", err)
	}
	log.Print("bye")
}

// openCluster produces the distributed serving Cluster: it ensures the
// base store exists (building and saving it if absent), splits it into
// n partition stores along the (table, row-range) cut when the
// partition files are missing, and opens every partition behind one
// scatter-gather coordinator.
func openCluster(db *sqldb.Database, data, scale, storePath string, budget int64, n int) (*banks.Cluster, error) {
	wdb := banks.WrapDatabase(db)
	opts := &banks.SystemOptions{StoreBudgetBytes: budget}
	if _, err := os.Stat(storePath); os.IsNotExist(err) {
		start := time.Now()
		sys, err := banks.NewSystem(wdb, opts)
		if err != nil {
			return nil, err
		}
		saveErr := sys.Save(storePath)
		sys.Close()
		if saveErr != nil {
			return nil, saveErr
		}
		log.Printf("no store at %s: built and saved %s/%s in %v", storePath, data, scale, time.Since(start))
	}
	paths := banks.ClusterPartitionPaths(storePath, n)
	if _, err := os.Stat(paths[0]); os.IsNotExist(err) {
		start := time.Now()
		if err := cluster.SplitStore(storePath, paths); err != nil {
			return nil, err
		}
		log.Printf("split %s into %d partitions in %v", storePath, n, time.Since(start))
	}
	start := time.Now()
	cl, err := banks.OpenCluster(wdb, paths, opts)
	if err != nil {
		return nil, err
	}
	log.Printf("opened %d-partition cluster from %s in %v (distributed JSON front door on /search)",
		n, storePath, time.Since(start))
	return cl, nil
}

// openSystem produces the serving System: a fresh in-memory build by
// default; with a store path, a lazy zero-rebuild open of the saved store
// (building and persisting it first if absent).
func openSystem(db *sqldb.Database, data, scale, storePath string, budget int64, excluded []string) (*banks.System, error) {
	wdb := banks.WrapDatabase(db)
	opts := &banks.SystemOptions{StoreBudgetBytes: budget}
	if storePath == "" {
		start := time.Now()
		sys, err := banks.NewSystem(wdb, opts)
		if err != nil {
			return nil, err
		}
		log.Printf("built %s/%s in %v", data, scale, time.Since(start))
		return sys, nil
	}
	if _, err := os.Stat(storePath); os.IsNotExist(err) {
		start := time.Now()
		sys, err := banks.NewSystem(wdb, opts)
		if err != nil {
			return nil, err
		}
		if err := sys.Save(storePath); err != nil {
			sys.Close()
			return nil, err
		}
		log.Printf("no store at %s: built and saved in %v (next start opens instantly)", storePath, time.Since(start))
		return sys, nil
	}
	start := time.Now()
	sys, err := banks.OpenSystem(storePath, wdb, opts)
	if err != nil {
		return nil, err
	}
	log.Printf("opened store %s in %v (%s/%s, zero rebuild; segments load on first query)",
		storePath, time.Since(start), data, scale)
	return sys, nil
}

func loadDataset(name, scale string) (*sqldb.Database, []string, error) {
	paper := scale == "paper"
	switch name {
	case "dblp":
		cfg := datagen.SmallDBLP()
		if paper {
			cfg = datagen.PaperScaleDBLP()
		}
		db, err := datagen.BuildDBLP(cfg)
		return db, []string{"Writes", "Cites"}, err
	case "thesis":
		cfg := datagen.SmallThesis()
		if paper {
			cfg = datagen.PaperScaleThesis()
		}
		db, err := datagen.BuildThesis(cfg)
		return db, nil, err
	case "tpcd":
		db, err := datagen.BuildTPCD(datagen.SmallTPCD())
		return db, []string{"lineitem"}, err
	}
	return nil, nil, fmt.Errorf("banks-web: unknown dataset %q (want dblp, thesis or tpcd)", name)
}

func seedTemplates(db *sqldb.Database, data string) error {
	engine := sqlexec.New(db)
	var tpls []browse.Template
	switch data {
	case "thesis":
		tpls = []browse.Template{
			{Name: "students-by-program", Kind: browse.KindGroupBy, Table: "student",
				Spec: map[string]string{"attrs": "progid,name"}},
			{Name: "student-folders", Kind: browse.KindFolder, Table: "student",
				Spec: map[string]string{"attrs": "progid,name"}},
			{Name: "students-chart", Kind: browse.KindChart, Table: "student",
				Spec: map[string]string{"label": "progid", "chart": "bar", "link": "students-by-program"}},
			{Name: "programs-crosstab", Kind: browse.KindCrossTab, Table: "program",
				Spec: map[string]string{"row": "deptid", "col": "name"}},
		}
	case "dblp":
		tpls = []browse.Template{
			{Name: "papers-by-year", Kind: browse.KindChart, Table: "Paper",
				Spec: map[string]string{"label": "Year", "chart": "line"}},
			{Name: "papers-drill", Kind: browse.KindGroupBy, Table: "Paper",
				Spec: map[string]string{"attrs": "Year"}},
		}
	case "tpcd":
		tpls = []browse.Template{
			{Name: "orders-by-customer", Kind: browse.KindChart, Table: "orders",
				Spec: map[string]string{"label": "custkey", "chart": "bar"}},
		}
	}
	for _, t := range tpls {
		if err := browse.SaveTemplate(engine, t); err != nil {
			return err
		}
	}
	return nil
}
