// Command banks-web serves the BANKS web interface — keyword search plus
// the Section 4 browsing system — over one of the built-in datasets.
//
// Usage:
//
//	banks-web [-data dblp|thesis|tpcd] [-scale small|paper] [-addr :8080]
//	          [-store PATH]
//
// With -store, the graph and keyword index are served from a segmented
// disk store instead of being rebuilt at startup: an existing store opens
// lazily in milliseconds (segments fault in on first query); a missing
// one is built once, persisted, and used — so the next start is instant.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/banksdb/banks/internal/browse"
	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
	"github.com/banksdb/banks/internal/store"
	"github.com/banksdb/banks/internal/web"
)

func main() {
	data := flag.String("data", "thesis", "dataset: dblp, thesis or tpcd")
	scale := flag.String("scale", "small", "dataset scale: small or paper")
	addr := flag.String("addr", ":8080", "listen address")
	storePath := flag.String("store", "", "serve the engine from this disk store (built+saved on first run)")
	storeBudget := flag.Int64("storebudget", 0, "resident posting-block budget with -store (bytes; 0 = unbounded)")
	flag.Parse()

	db, excluded, err := loadDataset(*data, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	g, ix, cache, engineErr, err := openEngine(db, *data, *scale, *storePath, *storeBudget)
	if err != nil {
		log.Fatal(err)
	}

	// Seed a few demo templates so /template has content.
	if err := seedTemplates(db, *data); err != nil {
		log.Printf("seeding templates: %v", err)
	}

	opts := core.DefaultOptions()
	opts.ExcludedRootTables = excluded
	// The dataset is static here, so the provider always hands back the
	// same searcher; a live deployment would swap in rebuilt snapshots
	// (each with its own fresh match cache, as System.Refresh does).
	searcher := core.NewSearcher(g, ix).WithMatchCache(cache)
	srv := web.NewServer(db, func() *core.Searcher { return searcher }, opts)
	if engineErr != nil {
		// Disk faults in the lazy store must 500 a search, not silently
		// shrink its results.
		srv.SetEngineErr(engineErr)
	}
	log.Printf("BANKS web UI on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// openEngine produces the serving graph + index: a fresh build by
// default; with a store path, a lazy zero-rebuild open of the saved store
// (building and persisting it first if absent), with recorded warmup
// terms resolved into the match cache in the background.
func openEngine(db *sqldb.Database, data, scale, storePath string, budget int64) (*graph.Graph, *index.Index, *index.MatchCache, func() error, error) {
	cache := index.NewMatchCache(4 << 20)
	if storePath == "" {
		start := time.Now()
		g, ix, err := buildEngine(db)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		log.Printf("built %s/%s: %s, %d index terms in %v", data, scale, g, ix.NumTerms(), time.Since(start))
		return g, ix, cache, nil, nil
	}
	if _, err := os.Stat(storePath); os.IsNotExist(err) {
		start := time.Now()
		g, ix, err := buildEngine(db)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		if err := store.WriteFile(storePath, store.Engine{Graph: g, Index: ix}); err != nil {
			return nil, nil, nil, nil, err
		}
		log.Printf("no store at %s: built and saved in %v (next start opens instantly)", storePath, time.Since(start))
		return g, ix, cache, nil, nil
	}
	start := time.Now()
	st, err := store.Open(storePath, store.Options{BudgetBytes: budget})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	log.Printf("opened store %s in %v (%s/%s, zero rebuild; segments load on first query)",
		storePath, time.Since(start), data, scale)
	if keys, err := st.WarmKeys(); err == nil && len(keys) > 0 {
		go cache.Warm(st.Index(), keys)
	}
	return st.Graph(), st.Index(), cache, st.Err, nil
}

func buildEngine(db *sqldb.Database) (*graph.Graph, *index.Index, error) {
	g, err := graph.Build(db, nil)
	if err != nil {
		return nil, nil, err
	}
	ix, err := index.Build(db, g)
	if err != nil {
		return nil, nil, err
	}
	return g, ix, nil
}

func loadDataset(name, scale string) (*sqldb.Database, []string, error) {
	paper := scale == "paper"
	switch name {
	case "dblp":
		cfg := datagen.SmallDBLP()
		if paper {
			cfg = datagen.PaperScaleDBLP()
		}
		db, err := datagen.BuildDBLP(cfg)
		return db, []string{"Writes", "Cites"}, err
	case "thesis":
		cfg := datagen.SmallThesis()
		if paper {
			cfg = datagen.PaperScaleThesis()
		}
		db, err := datagen.BuildThesis(cfg)
		return db, nil, err
	case "tpcd":
		db, err := datagen.BuildTPCD(datagen.SmallTPCD())
		return db, []string{"lineitem"}, err
	}
	return nil, nil, fmt.Errorf("banks-web: unknown dataset %q (want dblp, thesis or tpcd)", name)
}

func seedTemplates(db *sqldb.Database, data string) error {
	engine := sqlexec.New(db)
	var tpls []browse.Template
	switch data {
	case "thesis":
		tpls = []browse.Template{
			{Name: "students-by-program", Kind: browse.KindGroupBy, Table: "student",
				Spec: map[string]string{"attrs": "progid,name"}},
			{Name: "student-folders", Kind: browse.KindFolder, Table: "student",
				Spec: map[string]string{"attrs": "progid,name"}},
			{Name: "students-chart", Kind: browse.KindChart, Table: "student",
				Spec: map[string]string{"label": "progid", "chart": "bar", "link": "students-by-program"}},
			{Name: "programs-crosstab", Kind: browse.KindCrossTab, Table: "program",
				Spec: map[string]string{"row": "deptid", "col": "name"}},
		}
	case "dblp":
		tpls = []browse.Template{
			{Name: "papers-by-year", Kind: browse.KindChart, Table: "Paper",
				Spec: map[string]string{"label": "Year", "chart": "line"}},
			{Name: "papers-drill", Kind: browse.KindGroupBy, Table: "Paper",
				Spec: map[string]string{"attrs": "Year"}},
		}
	case "tpcd":
		tpls = []browse.Template{
			{Name: "orders-by-customer", Kind: browse.KindChart, Table: "orders",
				Spec: map[string]string{"label": "custkey", "chart": "bar"}},
		}
	}
	for _, t := range tpls {
		if err := browse.SaveTemplate(engine, t); err != nil {
			return err
		}
	}
	return nil
}
