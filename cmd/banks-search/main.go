// Command banks-search answers keyword queries from the command line
// against one of the built-in datasets, printing connection trees in the
// indented style of the paper's Figure 2.
//
// Usage:
//
//	banks-search [-data dblp|thesis|tpcd] [-scale small|paper] \
//	             [-k 10] [-lambda 0.2] [-edgelog=true] [-stats] query terms...
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

func main() {
	data := flag.String("data", "dblp", "dataset: dblp, thesis or tpcd")
	scale := flag.String("scale", "small", "dataset scale: small or paper")
	topK := flag.Int("k", 10, "answers to return")
	lambda := flag.Float64("lambda", 0.2, "node-weight factor λ (0..1)")
	edgeLog := flag.Bool("edgelog", true, "log-scale edge weights")
	nodeLog := flag.Bool("nodelog", false, "log-scale node weights")
	mult := flag.Bool("mult", false, "multiplicative score combination")
	stats := flag.Bool("stats", false, "print search statistics")
	flag.Parse()
	terms := flag.Args()
	if len(terms) == 0 {
		fmt.Fprintln(os.Stderr, "usage: banks-search [flags] term...")
		flag.PrintDefaults()
		os.Exit(2)
	}

	db, excluded, err := loadDataset(*data, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now()
	g, err := graph.Build(db, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	loadTime := time.Since(start)

	opts := core.DefaultOptions()
	opts.TopK = *topK
	opts.Score = core.ScoreOptions{Lambda: *lambda, EdgeLog: *edgeLog, NodeLog: *nodeLog}
	if *mult {
		opts.Score.Combine = core.Multiplicative
	}
	opts.ExcludedRootTables = excluded

	// Interrupt (Ctrl-C) cancels the context, which stops the backward
	// expanding search within a few hundred iterator pops.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	s := core.NewSearcher(g, ix)
	qstart := time.Now()
	answers, st, err := s.Query(ctx, core.Request{Terms: terms}, opts, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	qtime := time.Since(qstart)

	for _, a := range answers {
		fmt.Printf("%2d. score=%.4f (E=%.4f N=%.4f, weight %.3g)\n",
			a.Rank, a.Score, a.EScore, a.NScore, a.Weight)
		fmt.Print(indent(describe(a, g, db)))
	}
	if len(answers) == 0 {
		fmt.Println("no results")
	}
	if *stats {
		fmt.Printf("\ngraph: %s (loaded in %v)\nquery: %v, %d pops, %d trees generated, %d duplicates\n",
			g, loadTime, qtime, st.Pops, st.Generated, st.Duplicates)
		fmt.Printf("matched nodes per term: %v\n", st.MatchedNodes)
	}
}

// describe renders an answer with actual attribute values.
func describe(a *core.Answer, g *graph.Graph, db *sqldb.Database) string {
	children := make(map[graph.NodeID][]core.TreeEdge)
	for _, e := range a.Edges {
		children[e.From] = append(children[e.From], e)
	}
	var out string
	var walk func(n graph.NodeID, depth int)
	walk = func(n graph.NodeID, depth int) {
		t := db.Table(g.TableNameOf(n))
		row := t.Row(g.RIDOf(n))
		line := g.TableNameOf(n) + "("
		for i, c := range t.Schema().Columns {
			if i > 0 {
				line += ", "
			}
			line += c.Name + "=" + row[i].String()
		}
		line += ")"
		for i := 0; i < depth; i++ {
			out += "    "
		}
		if depth > 0 {
			out += "-> "
		}
		out += line + "\n"
		for _, e := range children[n] {
			walk(e.To, depth+1)
		}
	}
	walk(a.Root, 0)
	return out
}

func indent(s string) string { return "    " + s }

func loadDataset(name, scale string) (*sqldb.Database, []string, error) {
	paper := scale == "paper"
	switch name {
	case "dblp":
		cfg := datagen.SmallDBLP()
		if paper {
			cfg = datagen.PaperScaleDBLP()
		}
		db, err := datagen.BuildDBLP(cfg)
		return db, []string{"Writes", "Cites"}, err
	case "thesis":
		cfg := datagen.SmallThesis()
		if paper {
			cfg = datagen.PaperScaleThesis()
		}
		db, err := datagen.BuildThesis(cfg)
		return db, nil, err
	case "tpcd":
		db, err := datagen.BuildTPCD(datagen.SmallTPCD())
		return db, []string{"lineitem"}, err
	}
	return nil, nil, fmt.Errorf("banks-search: unknown dataset %q", name)
}
