// Command banks-sqlsh is an interactive SQL shell over the embedded
// engine, optionally preloaded with one of the built-in datasets. It
// demonstrates that the storage substrate is a usable database on its own.
//
// Usage:
//
//	banks-sqlsh [-data dblp|thesis|tpcd|empty] [-scale small|paper]
//	> SELECT name FROM author WHERE name LIKE '%gray%';
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

func main() {
	data := flag.String("data", "empty", "dataset to preload: dblp, thesis, tpcd or empty")
	scale := flag.String("scale", "small", "dataset scale: small or paper")
	flag.Parse()

	var db *sqldb.Database
	var err error
	switch *data {
	case "empty":
		db = sqldb.NewDatabase()
	case "dblp":
		cfg := datagen.SmallDBLP()
		if *scale == "paper" {
			cfg = datagen.PaperScaleDBLP()
		}
		db, err = datagen.BuildDBLP(cfg)
	case "thesis":
		cfg := datagen.SmallThesis()
		if *scale == "paper" {
			cfg = datagen.PaperScaleThesis()
		}
		db, err = datagen.BuildThesis(cfg)
	case "tpcd":
		db, err = datagen.BuildTPCD(datagen.SmallTPCD())
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *data)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	engine := sqlexec.New(db)

	fmt.Println("banks-sqlsh — embedded BANKS SQL shell. Statements end with ';', \\q quits, \\d lists tables.")
	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := "> "
	for {
		fmt.Print(prompt)
		if !scanner.Scan() {
			break
		}
		line := scanner.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 {
			switch trimmed {
			case "\\q", "exit", "quit":
				return
			case "\\d":
				for _, name := range db.TableNames() {
					t := db.Table(name)
					fmt.Printf("%-24s %6d rows\n", name, t.Len())
				}
				continue
			case "":
				continue
			}
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.HasSuffix(trimmed, ";") {
			prompt = "... "
			continue
		}
		prompt = "> "
		sql := buf.String()
		buf.Reset()
		res, err := engine.Execute(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if err != nil {
			fmt.Println("error:", err)
			continue
		}
		fmt.Print(sqlexec.FormatTable(res))
	}
}
