package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	banks "github.com/banksdb/banks"
	"github.com/banksdb/banks/internal/datagen"
)

// mutateQueryOpts matches eval.DefaultDBLPOptions (link relations cannot
// serve as answer roots), so the latencies here compare against the other
// eval legs.
func mutateQueryOpts() *banks.SearchOptions {
	return &banks.SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}}
}

// runMutate produces the BENCH_wal.json data: per-Apply latency for live
// mutation batches journaled through the WAL, the full Refresh each Apply
// replaces, query latency while mutations churn, overlay-vs-rebuild
// result parity after the churn, and the post-Compact steady state.
func runMutate(ctx context.Context, scale, strategy string, n int) {
	fmt.Printf("== live mutations: Apply vs Refresh (%s scale, %d batches, %s strategy) ==\n",
		scale, n, strategy)

	dir, err := os.MkdirTemp("", "banks-mutate")
	check(err)
	defer os.RemoveAll(dir)

	bdb := banks.WrapDatabase(buildDataset(scale))
	sys, err := banks.NewSystem(bdb, &banks.SystemOptions{
		WALPath:  filepath.Join(dir, "live.wal"),
		Strategy: strategy,
	})
	check(err)
	defer sys.Close()

	// The baseline Apply must beat: a full Refresh (SQL → graph → index
	// rebuild), which was the only way to surface a row change before the
	// WAL-backed overlay existed.
	refresh := time.Duration(0)
	for i := 0; i < 3; i++ {
		check(ctx.Err())
		start := time.Now()
		check(sys.Refresh())
		if el := time.Since(start); refresh == 0 || el < refresh {
			refresh = el
		}
	}
	fmt.Printf("full Refresh       %v (best of 3; the pre-WAL cost of any mutation)\n", refresh)

	// Churn: n small batches in the shape of a live bibliography feed —
	// new authors with their Writes link, new papers, new citations, and
	// title fix-ups of rows this run inserted.
	words := []string{"surprising", "mining", "transaction", "recovery", "concepts", "patterns"}
	var applied []time.Duration
	var underChurn []time.Duration
	var paperRID int64 = -1
	queryEvery := n / 8
	if queryEvery == 0 {
		queryEvery = 1
	}
	for i := 0; i < n; i++ {
		check(ctx.Err())
		var batch []banks.Mutation
		switch i % 4 {
		case 0:
			aid := fmt.Sprintf("EvalA%d", i)
			batch = []banks.Mutation{
				banks.Insert("Author", map[string]interface{}{
					"AuthorId": aid, "AuthorName": "Churn " + words[i%len(words)],
				}),
				banks.Insert("Writes", map[string]interface{}{
					"AuthorId": aid, "PaperId": datagen.PaperChakrabartiSD98,
				}),
			}
		case 1:
			batch = []banks.Mutation{banks.Insert("Paper", map[string]interface{}{
				"PaperId":   fmt.Sprintf("EvalP%d", i),
				"PaperName": fmt.Sprintf("%s %s study %d", words[i%len(words)], words[(i+1)%len(words)], i),
				"Year":      2002,
			})}
		case 2:
			batch = []banks.Mutation{banks.Insert("Cites", map[string]interface{}{
				"Citing": datagen.PaperChakrabartiSD98, "Cited": datagen.PaperGrayTransaction,
			})}
		case 3:
			if paperRID >= 0 {
				batch = []banks.Mutation{banks.Update("Paper", paperRID, map[string]interface{}{
					"PaperName": fmt.Sprintf("revised %s survey %d", words[i%len(words)], i),
				})}
			} else {
				batch = []banks.Mutation{banks.Insert("Paper", map[string]interface{}{
					"PaperId": fmt.Sprintf("EvalP%d", i), "PaperName": "placeholder", "Year": 2001,
				})}
			}
		}
		start := time.Now()
		res, err := sys.Apply(ctx, batch)
		check(err)
		applied = append(applied, time.Since(start))
		if i%4 != 2 && i%4 != 0 && len(res.RIDs) > 0 {
			paperRID = res.RIDs[0]
		}
		if i%queryEvery == 0 {
			c := latencyClasses[(i/queryEvery)%len(latencyClasses)]
			qs := time.Now()
			_, err := sys.Query(ctx, banks.Query{Text: strings.Join(c.terms, " "), Options: mutateQueryOpts()})
			check(err)
			underChurn = append(underChurn, time.Since(qs))
		}
	}
	sort.Slice(applied, func(i, j int) bool { return applied[i] < applied[j] })
	p50 := applied[len(applied)/2]
	p95 := applied[len(applied)*95/100]
	fmt.Printf("Apply latency      p50 %v, p95 %v over %d batches (%d rows pending)\n",
		p50, p95, n, sys.PendingMutations())
	fmt.Printf("Apply vs Refresh   %.0fx cheaper at p50\n", float64(refresh)/float64(p50))
	var churnSum time.Duration
	for _, d := range underChurn {
		churnSum += d
	}
	fmt.Printf("query under churn  %v avg (%d queries interleaved with the batches)\n",
		churnSum/time.Duration(len(underChurn)), len(underChurn))

	// Parity: the overlay engine must answer exactly like a from-scratch
	// rebuild over the mutated database.
	ref, err := banks.NewSystem(bdb, &banks.SystemOptions{Strategy: strategy})
	check(err)
	defer ref.Close()
	comparePublic(ctx, sys, ref, "overlay vs rebuild")

	// Compact runs its rebuild off-lock and folds concurrent mutations in
	// at the end, so Apply must keep its sub-millisecond latency while the
	// compaction is in flight. Hammer Apply from a second goroutine and
	// record the worst stall — before the off-lock rebuild this was the
	// full compaction time (~1.7s at paper scale). The stall batches are
	// isolated author rows (no Writes link, no query-term overlap) so the
	// parity check against the pre-Compact reference still holds.
	stallCtx, stopStall := context.WithCancel(ctx)
	var stallWG sync.WaitGroup
	var worstStall atomic.Int64
	var duringCompact atomic.Int64
	stallWG.Add(1)
	go func() {
		defer stallWG.Done()
		for i := 0; stallCtx.Err() == nil; i++ {
			batch := []banks.Mutation{banks.Insert("Author", map[string]interface{}{
				"AuthorId": fmt.Sprintf("StallA%d", i), "AuthorName": fmt.Sprintf("offstage %d", i),
			})}
			s := time.Now()
			if _, err := sys.Apply(stallCtx, batch); err != nil {
				if stallCtx.Err() != nil {
					return
				}
				check(err)
			}
			if d := int64(time.Since(s)); d > worstStall.Load() {
				worstStall.Store(d)
			}
			duringCompact.Add(1)
		}
	}()
	start := time.Now()
	check(sys.Compact())
	compactDur := time.Since(start)
	stopStall()
	stallWG.Wait()
	fmt.Printf("Compact            %v (%d pending after: mutations folded in mid-compaction)\n",
		compactDur, sys.PendingMutations())
	fmt.Printf("Apply during Compact  %d batches, worst stall %v\n",
		duringCompact.Load(), time.Duration(worstStall.Load()))
	comparePublic(ctx, sys, ref, "compacted vs rebuild")

	// A quiet second Compact folds the stall batches and truncates the WAL.
	start = time.Now()
	check(sys.Compact())
	fmt.Printf("quiet Compact      %v (WAL truncated, %d pending after)\n",
		time.Since(start), sys.PendingMutations())
	comparePublic(ctx, sys, ref, "quiet-compacted vs rebuild")

	fmt.Println("\n-- steady state after Compact --")
	for _, c := range latencyClasses {
		const reps = 5
		start := time.Now()
		var count int
		for i := 0; i < reps; i++ {
			res, err := sys.Query(ctx, banks.Query{Text: strings.Join(c.terms, " "), Options: mutateQueryOpts()})
			check(err)
			count = len(res.Answers)
		}
		fmt.Printf("%-22s %8v/query  (%d answers)\n", c.name, time.Since(start)/reps, count)
	}
	printPeakRSS()
}

// comparePublic checks that both systems rank the latency-class queries
// identically: same answer count and same score sequence. The final tie
// group of a full top-k list is skipped — which of the equally-scored
// trees makes the cut at the truncation point is snapshot-dependent.
func comparePublic(ctx context.Context, a, b *banks.System, label string) {
	for _, c := range latencyClasses {
		q := banks.Query{Text: strings.Join(c.terms, " "), Options: mutateQueryOpts()}
		ra, err := a.Query(ctx, q)
		check(err)
		rb, err := b.Query(ctx, q)
		check(err)
		sa, sb := scoreSig(ra), scoreSig(rb)
		if len(sa) != len(sb) {
			check(fmt.Errorf("%s: %q answer count %d vs %d", label, c.name, len(sa), len(sb)))
		}
		for i := range sa {
			if sa[i] != sb[i] {
				check(fmt.Errorf("%s: %q rank %d score %s vs %s", label, c.name, i+1, sa[i], sb[i]))
			}
		}
	}
	fmt.Printf("parity             ok: %s (%d query classes, scores identical)\n",
		label, len(latencyClasses))
}

// scoreSig renders the rounded score sequence, dropping the trailing tie
// group when the list is full (default TopK 10).
func scoreSig(r *banks.Results) []string {
	var sig []string
	for _, a := range r.Answers {
		sig = append(sig, fmt.Sprintf("%.9f", a.Score))
	}
	const topK = 10
	if len(sig) == topK {
		last := sig[len(sig)-1]
		for len(sig) > 0 && sig[len(sig)-1] == last {
			sig = sig[:len(sig)-1]
		}
	}
	return sig
}
