// Command banks-eval regenerates the paper's evaluation artifacts:
//
//	-figure5     the Figure 5 error-score surface (λ × edge log-scaling)
//	-full        the extended sweep over all eight §2.3 combinations
//	-anecdotes   the §5.1 anecdote queries with their top answers
//	-space       the §5.2 graph size / memory experiment
//	-latency     the §5.2 query latency experiment (7 query classes)
//	-buildbench  the parallel-build shard sweep and the match-cache
//	             skewed-workload experiment (the BENCH_build.json data)
//	-ab          the strategy A/B bench: the latency classes and a
//	             concurrent shared-term burst under both execution
//	             strategies (the BENCH_query.json data)
//	-mutate N    apply N live-mutation batches through the WAL-backed
//	             overlay: Apply latency vs full Refresh, query latency
//	             under churn, overlay-vs-rebuild parity, post-Compact
//	             steady state (the BENCH_wal.json data)
//	-save PATH   build the DBLP engine and persist it as a segmented
//	             disk store (internal/store format)
//	-load PATH   open a saved store and report cold-open vs rebuild
//	             time plus query parity (the BENCH_store.json data);
//	             -storebudget bounds resident posting blocks
//	-clusterbench  the distributed-serving bench: §5.2 classes through
//	             the scatter-gather cluster at N=1,2,4 partitions vs
//	             the single engine, plus the broker's routing prune
//	             rate (the BENCH_cluster.json data)
//
// -loadtest with -partitions N splits the store into N partitions and
// drives the distributed JSON front door (Cluster.ServeHandler) instead
// of the single-engine web UI, under the same -maxp99/-maxshed gates.
//
// By default it runs everything at -scale small; -scale paper uses the
// 100K-node / 300K-edge configuration of the paper. -shards caps the
// build parallelism of the main experiments (0 = GOMAXPROCS), and
// -strategy selects the execution strategy the experiments query with
// (backward or batched). -buildbench and -ab report the process peak RSS
// so memory-bounded serving shows up in recorded benchmarks.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/serve"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/store"
)

func main() {
	figure5 := flag.Bool("figure5", false, "run the Figure 5 parameter sweep")
	full := flag.Bool("full", false, "run the extended 8-combination sweep")
	anecdotes := flag.Bool("anecdotes", false, "run the §5.1 anecdote queries")
	space := flag.Bool("space", false, "run the §5.2 space experiment")
	latency := flag.Bool("latency", false, "run the §5.2 latency experiment")
	buildbench := flag.Bool("buildbench", false, "run the parallel-build and match-cache experiments")
	ab := flag.Bool("ab", false, "run the strategy A/B bench (latency classes + concurrent burst)")
	scale := flag.String("scale", "small", "dataset scale: small or paper")
	shards := flag.Int("shards", 0, "build shard cap (0 = GOMAXPROCS, 1 = serial)")
	strategy := flag.String("strategy", core.StrategyBackward,
		"query execution strategy: "+strings.Join(core.Strategies(), " or "))
	mutate := flag.Int("mutate", 0, "run N live-mutation batches: Apply latency vs Refresh, query-under-churn parity (the BENCH_wal.json data)")
	savePath := flag.String("save", "", "persist the built DBLP engine to this store path and exit")
	loadPath := flag.String("load", "", "open a saved store: report cold-open vs rebuild time and parity")
	storeBudget := flag.Int64("storebudget", 0, "resident posting-block budget for -load/-loadtest (bytes; 0 = unbounded)")
	prefault := flag.Bool("prefault", false, "with -load: touch every mapped store page up front (trade open latency for no first-query faults)")
	mlock := flag.Bool("mlock", false, "with -load: pin the mapped store in RAM (needs RLIMIT_MEMLOCK headroom)")
	layout := flag.String("layout", "", "graph node-id layout for -save/-load builds: \"\"/rid (insertion order) or degree (hubs first)")
	loadtest := flag.Bool("loadtest", false, "drive the production front door under load (the BENCH_serve.json data)")
	ltDuration := flag.Duration("ltduration", 10*time.Second, "loadtest length")
	ltWorkers := flag.Int("ltworkers", 16, "loadtest closed-loop concurrency")
	ltRate := flag.Int("ltrate", 0, "loadtest open-loop arrival rate (req/s; 0 = closed loop)")
	ltInFlight := flag.Int("ltinflight", 8, "loadtest admission gate worker slots")
	ltQueue := flag.Int("ltqueue", 16, "loadtest admission gate queue depth")
	ltTimeout := flag.Duration("lttimeout", 5*time.Second, "loadtest server-side search deadline bounding the tail (0 = unbounded)")
	ltChurn := flag.Bool("ltchurn", true, "run background Apply/Refresh churn during the loadtest")
	ltApplyEvery := flag.Duration("ltapplyevery", 20*time.Millisecond, "loadtest churn Apply cadence (each Apply republishes the snapshot)")
	ltMaxP99 := flag.Duration("maxp99", 0, "fail the loadtest if client p99 exceeds this (0 = no check)")
	ltMaxShed := flag.Float64("maxshed", -1, "fail the loadtest if the shed rate exceeds this fraction (negative = no check)")
	ltMinHit := flag.Float64("minhitrate", 0, "fail the loadtest if the steady-state match-cache hit rate falls below this fraction (0 = no check)")
	ltJSON := flag.String("ltjson", "", "write the loadtest summary JSON to this path")
	partitions := flag.Int("partitions", 0, "with -loadtest: split the store into N partitions and drive the distributed front door")
	clusterBench := flag.Bool("clusterbench", false, "run the distributed-serving bench: distributed vs single-engine latency at N=1,2,4 and routing prune rate (the BENCH_cluster.json data)")
	cbJSON := flag.String("cbjson", "", "write the -clusterbench summary JSON to this path")
	flag.Parse()
	all := !*figure5 && !*full && !*anecdotes && !*space && !*latency && !*buildbench && !*ab

	if err := core.ValidateStrategy(*strategy); err != nil {
		check(err)
	}

	// Interrupt cancels the context; every query below stops promptly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *savePath != "" {
		runSave(*scale, *shards, *layout, *savePath)
		return
	}
	if *loadPath != "" {
		runLoad(ctx, *scale, *shards, *layout, *loadPath, *storeBudget, *prefault, *mlock)
		return
	}
	if *mutate > 0 {
		runMutate(ctx, *scale, *strategy, *mutate)
		return
	}
	if *clusterBench {
		runClusterBench(ctx, *scale, *cbJSON)
		return
	}
	if *loadtest && *partitions > 0 {
		runClusterLoadTest(ctx, loadTestConfig{
			Scale:        *scale,
			Duration:     *ltDuration,
			Workers:      *ltWorkers,
			MaxInFlight:  *ltInFlight,
			MaxQueue:     *ltQueue,
			QueueTimeout: 2 * time.Second,
			Timeout:      *ltTimeout,
			StoreBudget:  *storeBudget,
			MaxP99:       *ltMaxP99,
			MaxShedRate:  *ltMaxShed,
		}, *partitions)
		return
	}
	if *loadtest {
		runLoadTest(ctx, loadTestConfig{
			Scale:        *scale,
			Strategy:     *strategy,
			Duration:     *ltDuration,
			Workers:      *ltWorkers,
			Rate:         *ltRate,
			MaxInFlight:  *ltInFlight,
			MaxQueue:     *ltQueue,
			QueueTimeout: 2 * time.Second,
			Timeout:      *ltTimeout,
			StoreBudget:  *storeBudget,
			Churn:        *ltChurn,
			ApplyEvery:   *ltApplyEvery,
			MaxP99:       *ltMaxP99,
			MaxShedRate:  *ltMaxShed,
			MinHitRate:   *ltMinHit,
			JSONPath:     *ltJSON,
		})
		return
	}

	if *buildbench {
		runBuildBench(ctx, *scale)
		return
	}

	cfg := datagen.SmallDBLP()
	if *scale == "paper" {
		cfg = datagen.PaperScaleDBLP()
	}
	fmt.Printf("== building DBLP dataset (%s scale, %d shards, %s strategy) ==\n", *scale, *shards, *strategy)
	db, err := datagen.BuildDBLP(cfg)
	check(err)
	bo := graph.DefaultBuildOptions()
	bo.Shards = *shards
	start := time.Now()
	g, err := graph.Build(db, bo)
	check(err)
	buildTime := time.Since(start)
	ix, err := index.BuildWithOptions(db, g, &index.BuildOptions{Shards: *shards})
	check(err)
	// The full admission stack is attached so -strategy batched exercises
	// the single-flight group and the frontier pool; the backward
	// strategy simply queries through the cache.
	s := newStackedSearcher(g, ix)
	fmt.Printf("%s, %d index terms; graph built in %v\n\n", g, ix.NumTerms(), buildTime)

	if *ab {
		runAB(ctx, g, ix, s)
		return
	}

	if all || *space {
		runSpace(g, buildTime)
	}
	if all || *anecdotes {
		runAnecdotes(ctx, db, s, *strategy)
	}
	if all || *latency {
		runLatency(ctx, s, *strategy)
	}
	if all || *figure5 {
		runFigure5(db, g, s, *strategy)
	}
	if *full {
		runFull(db, g, s, *strategy)
	}
}

// buildDataset regenerates the DBLP database at the given scale.
func buildDataset(scale string) *sqldb.Database {
	cfg := datagen.SmallDBLP()
	if scale == "paper" {
		cfg = datagen.PaperScaleDBLP()
	}
	db, err := datagen.BuildDBLP(cfg)
	check(err)
	return db
}

// buildEngine derives graph + index from db, timed.
func buildEngine(db *sqldb.Database, shards int, layout string) (*graph.Graph, *index.Index, time.Duration) {
	bo := graph.DefaultBuildOptions()
	bo.Shards = shards
	bo.LayoutOrder = layout
	start := time.Now()
	g, err := graph.Build(db, bo)
	check(err)
	ix, err := index.BuildWithOptions(db, g, &index.BuildOptions{Shards: shards})
	check(err)
	return g, ix, time.Since(start)
}

// runSave builds the DBLP engine and persists it as a segmented store.
func runSave(scale string, shards int, layout, path string) {
	fmt.Printf("== build + save DBLP engine (%s scale, layout %q) ==\n", scale, layout)
	db := buildDataset(scale)
	g, ix, buildTime := buildEngine(db, shards, layout)
	start := time.Now()
	check(store.WriteFile(path, store.Engine{Graph: g, Index: ix}))
	saveTime := time.Since(start)
	fi, err := os.Stat(path)
	check(err)
	fmt.Printf("engine            %s, %d index terms\n", g, ix.NumTerms())
	fmt.Printf("graph+index build %v\n", buildTime)
	fmt.Printf("store save        %v (%.1f MB at %s)\n", saveTime, float64(fi.Size())/1e6, path)
}

// runLoad opens a saved store and reports the numbers behind
// BENCH_store.json: cold-open time vs a fresh rebuild from SQL, query
// parity between both engines, and the resident footprint of the lazy
// segments (with -storebudget, the EMBANKS memory-bounded mode).
func runLoad(ctx context.Context, scale string, shards int, layout, path string, budget int64, prefault, mlock bool) {
	fmt.Printf("== cold open vs rebuild (%s scale, budget %d bytes, layout %q) ==\n", scale, budget, layout)
	db := buildDataset(scale)

	openStart := time.Now()
	st, err := store.Open(path, store.Options{BudgetBytes: budget})
	check(err)
	defer st.Close()
	if prefault {
		check(st.Prefault())
	}
	if mlock {
		check(st.Mlock())
	}
	openTime := time.Since(openStart)
	fmt.Printf("byte source       mapped=%v prefault=%v mlock=%v\n", st.Mapped(), prefault, mlock)

	g, ix, rebuildTime := buildEngine(db, shards, layout)
	fmt.Printf("cold open         %v\n", openTime)
	fmt.Printf("rebuild from SQL  %v  (%.1fx slower than open)\n",
		rebuildTime, float64(rebuildTime)/float64(openTime))

	// First-query cost (faults the arcs, node metadata and dictionary in)
	// versus warm queries, and parity against the rebuilt engine.
	stored := newStackedSearcher(st.Graph(), st.Index())
	fresh := newStackedSearcher(g, ix)
	opts := eval.DefaultDBLPOptions()
	minfltBefore, majfltBefore := pageFaults()
	firstStart := time.Now()
	_, _, err = stored.Query(ctx, core.Request{Terms: latencyClasses[0].terms}, opts, nil)
	check(err)
	check(st.Err()) // a lazy-load fault degrades to empty results; fail on it here
	firstQuery := time.Since(firstStart)
	minfltAfter, majfltAfter := pageFaults()
	fmt.Printf("first query       %v (lazy segment faults included)\n", firstQuery)
	if minfltBefore >= 0 {
		fmt.Printf("page faults       %d minor + %d major during the first query\n",
			minfltAfter-minfltBefore, majfltAfter-majfltBefore)
	}
	for _, c := range latencyClasses {
		a1, _, err := stored.Query(ctx, core.Request{Terms: c.terms}, opts, nil)
		check(err)
		check(st.Err())
		a2, _, err := fresh.Query(ctx, core.Request{Terms: c.terms}, opts, nil)
		check(err)
		if len(a1) != len(a2) {
			check(fmt.Errorf("parity failure on %q: %d vs %d answers", c.name, len(a1), len(a2)))
		}
		for i := range a1 {
			if a1[i].Score != a2[i].Score || a1[i].Root != a2[i].Root {
				check(fmt.Errorf("parity failure on %q at rank %d", c.name, i+1))
			}
		}
	}
	fmt.Printf("query parity      ok (%d classes, scores and roots identical)\n", len(latencyClasses))
	stats := st.Stats()
	fmt.Printf("resident          %.2f MB heap structural + %.2f MB mapped + %.2f MB posting blocks (%d entries, budget %d)\n",
		float64(stats.StructuralBytes)/1e6, float64(stats.MappedBytes)/1e6,
		float64(stats.BlockBytes)/1e6, stats.BlockEntries, stats.BudgetBytes)
	printPeakRSS()
}

// pageFaults reads the process's cumulative minor and major page-fault
// counts from /proc/self/stat (fields 10 and 12), or (-1, -1) where /proc
// is unavailable. Major faults are the ones that hit the disk — the cost
// -prefault exists to move out of the first query.
func pageFaults() (minflt, majflt int64) {
	data, err := os.ReadFile("/proc/self/stat")
	if err != nil {
		return -1, -1
	}
	// The comm field (2) is an arbitrary string in parens; fields count
	// from the closing paren to survive spaces in it.
	s := string(data)
	i := strings.LastIndexByte(s, ')')
	if i < 0 {
		return -1, -1
	}
	fields := strings.Fields(s[i+1:])
	// fields[0] is stat field 3 (state); minflt is field 10, majflt 12.
	if len(fields) < 10 {
		return -1, -1
	}
	minflt, err = strconv.ParseInt(fields[7], 10, 64)
	if err != nil {
		return -1, -1
	}
	majflt, err = strconv.ParseInt(fields[9], 10, 64)
	if err != nil {
		return -1, -1
	}
	return minflt, majflt
}

// printPeakRSS reports the process high-water resident set size.
func printPeakRSS() {
	if rss := serve.PeakRSSBytes(); rss > 0 {
		fmt.Printf("peak RSS          %.1f MB\n", float64(rss)/1e6)
	} else {
		fmt.Println("peak RSS          n/a on this platform")
	}
}

// newStackedSearcher wires a searcher with match cache, single-flight
// admission and frontier pool over one engine snapshot.
func newStackedSearcher(g *graph.Graph, ix *index.Index) *core.Searcher {
	return core.NewSearcher(g, ix).
		WithMatchCache(index.NewMatchCache(4 << 20)).
		WithFlightGroup(index.NewFlightGroup()).
		WithFrontierPool(core.DefaultFrontierPoolIters)
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// runSpace reproduces §5.2: the paper reports ~120 MB and ~2 min load for
// a 100K node / 300K edge graph in Java.
func runSpace(g *graph.Graph, buildTime time.Duration) {
	var ms runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms)
	fmt.Println("== E3/E4: space and load time (paper §5.2) ==")
	fmt.Printf("nodes               %d\n", g.NumNodes())
	fmt.Printf("directed edges      %d\n", g.NumArcs())
	fmt.Printf("graph structures    %.1f MB (estimated)\n", float64(g.MemoryFootprint())/1e6)
	fmt.Printf("process heap        %.1f MB (incl. database + index)\n", float64(ms.HeapAlloc)/1e6)
	fmt.Printf("graph build time    %v\n", buildTime)
	fmt.Printf("paper (Java)        ~120 MB, ~2 min load for 100K nodes/300K edges\n\n")
}

func runAnecdotes(ctx context.Context, db *sqldb.Database, s *core.Searcher, strategy string) {
	fmt.Println("== E2: §5.1 anecdotes (DBLP) ==")
	opts := eval.DefaultDBLPOptions()
	opts.Strategy = strategy
	for _, q := range [][]string{
		{"mohan"},
		{"transaction"},
		{"soumen", "sunita"},
		{"seltzer", "sunita"},
	} {
		fmt.Printf("query %q:\n", q)
		answers, _, err := s.Query(ctx, core.Request{Terms: q}, opts, nil)
		check(err)
		for i, a := range answers {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d. (%.4f) %s", a.Rank, a.Score, headline(db, s, a))
		}
		fmt.Println()
	}

	fmt.Println("thesis dataset anecdotes:")
	tdb, err := datagen.BuildThesis(datagen.SmallThesis())
	check(err)
	tg, err := graph.Build(tdb, nil)
	check(err)
	tix, err := index.Build(tdb, tg)
	check(err)
	ts := core.NewSearcher(tg, tix)
	for _, q := range [][]string{{"computer", "engineering"}, {"sudarshan", "aditya"}} {
		fmt.Printf("query %q:\n", q)
		answers, _, err := ts.Query(ctx, core.Request{Terms: q}, core.DefaultOptions(), nil)
		check(err)
		for i, a := range answers {
			if i >= 3 {
				break
			}
			fmt.Printf("  %d. (%.4f) %s", a.Rank, a.Score, headline(tdb, ts, a))
		}
		fmt.Println()
	}
}

// headline prints the root tuple of an answer on one line.
func headline(db *sqldb.Database, s *core.Searcher, a *core.Answer) string {
	g := s.Graph()
	t := db.Table(g.TableNameOf(a.Root))
	row := t.Row(g.RIDOf(a.Root))
	line := g.TableNameOf(a.Root) + "("
	for i, c := range t.Schema().Columns {
		if i > 0 {
			line += ", "
		}
		line += c.Name + "=" + row[i].String()
	}
	return line + fmt.Sprintf(") [%d nodes]\n", len(a.Nodes()))
}

// runLatency reproduces the §5.2 observation that queries take "about a
// second to a few seconds" on the paper's hardware; ours should be far
// faster, but the per-class breakdown is the comparable artifact.
var latencyClasses = []struct {
	name  string
	terms []string
}{
	{"coauthor pair", []string{"soumen", "sunita"}},
	{"common coauthor", []string{"seltzer", "sunita"}},
	{"author + title word", []string{"gray", "concepts"}},
	{"title words", []string{"mining", "surprising", "patterns"}},
	{"single author", []string{"mohan"}},
	{"single title word", []string{"transaction"}},
	{"three coauthors", []string{"soumen", "sunita", "byron"}},
}

func runLatency(ctx context.Context, s *core.Searcher, strategy string) {
	fmt.Println("== E5: §5.2 query latency by class ==")
	opts := eval.DefaultDBLPOptions()
	opts.Strategy = strategy
	for _, c := range latencyClasses {
		start := time.Now()
		const reps = 5
		var answers []*core.Answer
		var err error
		for i := 0; i < reps; i++ {
			answers, _, err = s.Query(ctx, core.Request{Terms: c.terms}, opts, nil)
			check(err)
		}
		fmt.Printf("%-22s %8v/query  (%d answers)\n", c.name, time.Since(start)/reps, len(answers))
	}
	fmt.Println()
}

// runAB is the strategy A/B bench behind BENCH_query.json: the §5.2
// latency classes under each execution strategy (sequential repeats, so
// the batched strategy's pooled frontiers warm up the way a skewed
// workload would), then a concurrent cold burst of shared prefix terms
// measuring term resolutions — the single-flight admission layer's
// contract is that a shared-term burst resolves each term roughly once,
// where the plain path pays the thundering herd.
func runAB(ctx context.Context, g *graph.Graph, ix *index.Index, warm *core.Searcher) {
	fmt.Printf("== strategy A/B (host: %d CPUs, GOMAXPROCS %d) ==\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))

	fmt.Println("\n-- latency classes, sequential (5 reps) --")
	for _, c := range latencyClasses {
		line := fmt.Sprintf("%-22s", c.name)
		for _, strat := range core.Strategies() {
			opts := eval.DefaultDBLPOptions()
			opts.Strategy = strat
			const reps = 5
			start := time.Now()
			for i := 0; i < reps; i++ {
				_, _, err := warm.Query(ctx, core.Request{Terms: c.terms}, opts, nil)
				check(err)
			}
			line += fmt.Sprintf("  %s %10v/query", strat, time.Since(start)/reps)
		}
		fmt.Println(line)
	}
	fmt.Printf("frontier reuses after warm runs: %d\n", warm.FrontierReuses())

	fmt.Println("\n-- concurrent cold burst: 16 goroutines × 4 shared prefix terms --")
	prefixes := []string{"sur", "tra", "min", "cha"}
	const workers = 16
	for _, strat := range core.Strategies() {
		check(ctx.Err())
		// Fresh cache + flight per leg: the burst is the cold window the
		// admission layer exists for.
		cache := index.NewMatchCache(4 << 20)
		flight := index.NewFlightGroup()
		s := core.NewSearcher(g, ix).
			WithMatchCache(cache).
			WithFlightGroup(flight).
			WithFrontierPool(core.DefaultFrontierPoolIters)
		opts := eval.DefaultDBLPOptions()
		opts.Strategy = strat
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				req := core.Request{Terms: []string{prefixes[w%len(prefixes)]}, Prefix: true}
				_, _, err := s.Query(ctx, req, opts, nil)
				check(err)
			}(w)
		}
		wg.Wait()
		fmt.Printf("%-9s burst %10v  resolutions=%d coalesced=%d\n",
			strat, time.Since(start), cache.Stats().Misses, flight.Coalesced())
	}
	fmt.Println("\n(single-flight coalescing needs true concurrency; on a 1-CPU host")
	fmt.Println(" the herd window closes serially — compare GOMAXPROCS >= 4.)")
	printPeakRSS()
}

func runFigure5(db *sqldb.Database, g *graph.Graph, s *core.Searcher, strategy string) {
	fmt.Println("== E6: Figure 5 — scaled error vs parameter choices ==")
	queries, err := eval.DBLPSuite(db, g)
	check(err)
	base := eval.DefaultDBLPOptions()
	base.Strategy = strategy
	points, err := eval.SweepFigure5(s, queries, base)
	check(err)
	fmt.Print(eval.FormatFigure5(points))
	best := eval.Best(points)
	fmt.Printf("best setting: lambda=%.1f EdgeLog=%v (error %.1f)\n", best.Lambda, best.EdgeLog, best.Scaled)
	fmt.Println("paper: lambda=0.2 with edge log-scaling best (error ~0); lambda=1 worst (~15)")
	fmt.Println()
}

// runBuildBench produces the BENCH_build.json data: graph+index build
// wall-time at several shard counts on both generators, and the match
// cache's hit rate and lookup latency on a Zipf-skewed term workload.
// Ctrl-C (which cancels ctx) stops the sweep between build repetitions.
func runBuildBench(ctx context.Context, scale string) {
	fmt.Printf("== parallel engine build (host: %d CPUs, GOMAXPROCS %d) ==\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0))

	dblpCfg := datagen.SmallDBLP()
	if scale == "paper" {
		dblpCfg = datagen.PaperScaleDBLP()
	}
	tpcdCfg := datagen.TPCDConfig{Parts: 2000, Suppliers: 400, Customers: 1500, Orders: 20000, LinesPer: 4, Seed: 7}

	datasets := []struct {
		name  string
		build func() (*sqldb.Database, error)
	}{
		{"dblp", func() (*sqldb.Database, error) { return datagen.BuildDBLP(dblpCfg) }},
		{"tpcd", func() (*sqldb.Database, error) { return datagen.BuildTPCD(tpcdCfg) }},
	}
	shardCounts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		shardCounts = append(shardCounts, n)
	}
	for _, ds := range datasets {
		db, err := ds.build()
		check(err)
		for _, sh := range shardCounts {
			bo := graph.DefaultBuildOptions()
			bo.Shards = sh
			best := time.Duration(0)
			var nodes, arcs, terms int
			const reps = 3
			for r := 0; r < reps; r++ {
				check(ctx.Err())
				start := time.Now()
				g, err := graph.Build(db, bo)
				check(err)
				ix, err := index.BuildWithOptions(db, g, &index.BuildOptions{Shards: sh})
				check(err)
				el := time.Since(start)
				if best == 0 || el < best {
					best = el
				}
				nodes, arcs, terms = g.NumNodes(), g.NumArcs(), ix.NumTerms()
			}
			fmt.Printf("%-5s shards=%-2d  build %10v  (%d nodes, %d arcs, %d terms; best of %d)\n",
				ds.name, sh, best, nodes, arcs, terms, reps)
		}
	}

	fmt.Println("\n== match cache on a Zipf(1.3) term workload ==")
	check(ctx.Err())
	db, err := datagen.BuildDBLP(dblpCfg)
	check(err)
	g, err := graph.Build(db, nil)
	check(err)
	ix, err := index.Build(db, g)
	check(err)
	// The same stream the BenchmarkCachedLookup regression suite uses.
	const draws = 200000
	stream := datagen.ZipfTerms(draws, 42)
	uncachedStart := time.Now()
	for _, w := range stream {
		_ = ix.Lookup(w)
	}
	uncached := time.Since(uncachedStart)
	cache := index.NewMatchCache(4 << 20)
	cachedStart := time.Now()
	for _, w := range stream {
		_ = cache.Lookup(ix, 0, w)
	}
	cached := time.Since(cachedStart)
	st := cache.Stats()
	fmt.Printf("exact lookups   %d draws: uncached %v, cached %v, hit rate %.3f\n",
		draws, uncached, cached, st.HitRate())

	pfxCache := index.NewMatchCache(4 << 20)
	const pfxDraws = 2000
	pfxUncachedStart := time.Now()
	for i := 0; i < pfxDraws; i++ {
		_ = ix.LookupPrefix(stream[i][:4])
	}
	pfxUncached := time.Since(pfxUncachedStart)
	pfxCachedStart := time.Now()
	for i := 0; i < pfxDraws; i++ {
		_ = pfxCache.LookupPrefix(ix, 0, stream[i][:4])
	}
	pfxCached := time.Since(pfxCachedStart)
	fmt.Printf("prefix lookups  %d draws: uncached %v (%v/op), cached %v (%v/op), hit rate %.3f\n",
		pfxDraws, pfxUncached, pfxUncached/pfxDraws, pfxCached, pfxCached/pfxDraws,
		pfxCache.Stats().HitRate())
	printPeakRSS()
}

func runFull(db *sqldb.Database, g *graph.Graph, s *core.Searcher, strategy string) {
	fmt.Println("== E7: extended sweep over all eight §2.3 combinations ==")
	queries, err := eval.DBLPSuite(db, g)
	check(err)
	base := eval.DefaultDBLPOptions()
	base.Strategy = strategy
	points, err := eval.SweepFull(s, queries, base)
	check(err)
	fmt.Println("lambda  edgeLog  nodeLog  combine         error  note")
	for _, p := range points {
		comb := "additive"
		if p.Mult {
			comb = "multiplicative"
		}
		note := ""
		if p.Discarded() {
			note = "(discarded in paper)"
		}
		fmt.Printf("%-7.1f %-8v %-8v %-15s %5.1f  %s\n", p.Lambda, p.EdgeLog, p.NodeLog, comb, p.Scaled, note)
	}
	fmt.Println()
}
