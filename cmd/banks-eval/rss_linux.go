//go:build linux

package main

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// peakRSSBytes reads the process's high-water resident set size (VmHWM)
// from /proc/self/status, in bytes; 0 when unavailable.
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}
