//go:build !linux

package main

// peakRSSBytes is unavailable off Linux; benchmarks print "n/a" for 0.
func peakRSSBytes() int64 { return 0 }
