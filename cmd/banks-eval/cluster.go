package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	banks "github.com/banksdb/banks"
	"github.com/banksdb/banks/internal/cluster"
	"github.com/banksdb/banks/internal/serve"
)

// dblpSearchOptions mirrors eval.DefaultDBLPOptions at the public API
// level, so cluster queries and single-engine queries run under the
// same parameters.
func dblpSearchOptions() *banks.SearchOptions {
	return &banks.SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}}
}

// clusterClassResult is one (partition count, query class) measurement.
type clusterClassResult struct {
	Class            string  `json:"class"`
	Terms            string  `json:"terms"`
	SingleUs         float64 `json:"single_us"`
	DistributedUs    float64 `json:"distributed_us"`
	Answers          int     `json:"answers"`
	PartitionsRouted int     `json:"partitions_routed"`
	PartitionsPruned int     `json:"partitions_pruned"`
}

// clusterBenchPoint is the recorded artifact for one partition count.
type clusterBenchPoint struct {
	Partitions    int                  `json:"partitions"`
	SplitMs       float64              `json:"split_ms"`
	GoldenAtN1    bool                 `json:"golden_at_n1,omitempty"`
	PruneRate     float64              `json:"prune_rate"`
	ThroughputRPS float64              `json:"throughput_rps"`
	Classes       []clusterClassResult `json:"classes"`
}

// clusterBenchSummary is the BENCH_cluster.json payload.
type clusterBenchSummary struct {
	Scale  string              `json:"scale"`
	Points []clusterBenchPoint `json:"points"`
}

// runClusterBench produces the BENCH_cluster.json data: the §5.2 latency
// classes through the distributed strategy at N = 1, 2, 4 partitions
// against the single-engine baseline, the broker's routing prune rate,
// and a short closed-loop throughput burst per partition count. It also
// asserts the correctness contracts on the way: N=1 answers are
// byte-identical to the single engine, and every N>1 answer matches a
// single-engine answer exactly (the partition-local completeness bound).
func runClusterBench(ctx context.Context, scale, jsonPath string) {
	fmt.Printf("== distributed serving bench (%s scale) ==\n", scale)
	dir, err := os.MkdirTemp("", "banks-clusterbench")
	check(err)
	defer os.RemoveAll(dir)

	bdb := banks.WrapDatabase(buildDataset(scale))
	single, err := banks.NewSystem(bdb, nil)
	check(err)
	defer single.Close()
	base := filepath.Join(dir, "dblp.store")
	check(single.Save(base))

	opts := dblpSearchOptions()
	// Single-engine baseline per class (same options as the distributed
	// runs, for a fair latency comparison), plus an untruncated reference
	// answer set per class for the N>1 containment check: a partition-
	// local answer may rank below the single engine's top-k cutoff, so
	// containment is only meaningful against the full answer list.
	baseline := make(map[string][]*banks.Answer)
	reference := make(map[string][]*banks.Answer)
	singleLat := make(map[string]time.Duration)
	refOpts := dblpSearchOptions()
	refOpts.TopK = 4096
	refOpts.HeapSize = 1 << 13
	for _, c := range latencyClasses {
		q := banks.Query{Text: strings.Join(c.terms, " "), Options: opts}
		const reps = 5
		start := time.Now()
		var res *banks.Results
		for i := 0; i < reps; i++ {
			res, err = single.Query(ctx, q)
			check(err)
		}
		singleLat[c.name] = time.Since(start) / reps
		baseline[c.name] = res.Answers
		full, err := single.Query(ctx, banks.Query{Text: strings.Join(c.terms, " "), Options: refOpts})
		check(err)
		reference[c.name] = full.Answers
	}

	sum := clusterBenchSummary{Scale: scale}
	for _, n := range []int{1, 2, 4} {
		splitStart := time.Now()
		paths := banks.ClusterPartitionPaths(filepath.Join(dir, fmt.Sprintf("n%d", n)), n)
		check(cluster.SplitStore(base, paths))
		splitMs := float64(time.Since(splitStart)) / 1e6
		cl, err := banks.OpenCluster(bdb, paths, nil)
		check(err)

		point := clusterBenchPoint{Partitions: n, SplitMs: splitMs, GoldenAtN1: n == 1}
		var routedTotal, prunableTotal int
		for _, c := range latencyClasses {
			q := banks.Query{Text: strings.Join(c.terms, " "), Strategy: banks.StrategyDistributed, Options: opts}
			const reps = 5
			start := time.Now()
			var res *banks.Results
			for i := 0; i < reps; i++ {
				res, err = cl.Query(ctx, q)
				check(err)
			}
			dist := time.Since(start) / reps
			checkClusterAnswers(c.name, n, baseline[c.name], reference[c.name], res)
			routedTotal += res.Stats.PartitionsRouted
			prunableTotal += res.Stats.PartitionsTotal
			point.Classes = append(point.Classes, clusterClassResult{
				Class:            c.name,
				Terms:            strings.Join(c.terms, " "),
				SingleUs:         float64(singleLat[c.name]) / 1e3,
				DistributedUs:    float64(dist) / 1e3,
				Answers:          len(res.Answers),
				PartitionsRouted: res.Stats.PartitionsRouted,
				PartitionsPruned: res.Stats.PartitionsPruned,
			})
		}
		if prunableTotal > 0 {
			point.PruneRate = 1 - float64(routedTotal)/float64(prunableTotal)
		}

		// A short closed-loop burst for the throughput number.
		const burstDur = 2 * time.Second
		const workers = 8
		var reqs atomic.Int64
		deadline := time.Now().Add(burstDur)
		burstStart := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(deadline) && ctx.Err() == nil; i += workers {
					c := latencyClasses[i%len(latencyClasses)]
					_, err := cl.Query(ctx, banks.Query{
						Text: strings.Join(c.terms, " "), Strategy: banks.StrategyDistributed, Options: opts})
					check(err)
					reqs.Add(1)
				}
			}(w)
		}
		wg.Wait()
		check(ctx.Err())
		point.ThroughputRPS = float64(reqs.Load()) / time.Since(burstStart).Seconds()

		fmt.Printf("\n-- N=%d partitions (split %0.1fms, prune rate %.2f, burst %.0f req/s) --\n",
			n, point.SplitMs, point.PruneRate, point.ThroughputRPS)
		for _, cr := range point.Classes {
			fmt.Printf("%-22s single %8.0fµs  distributed %8.0fµs  routed %d/%d\n",
				cr.Class, cr.SingleUs, cr.DistributedUs, cr.PartitionsRouted, n)
		}
		check(cl.Close())
		sum.Points = append(sum.Points, point)
	}

	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		check(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		check(enc.Encode(sum))
		check(f.Close())
		fmt.Printf("\nsummary written to %s\n", jsonPath)
	}
}

// checkClusterAnswers enforces the distributed correctness contracts
// against the single engine: at N=1 the answer list must be
// byte-identical (scores, order, roots) to the same-options baseline. At
// N>1, for every root both sides report, the distributed score must
// never exceed the single engine's best for that root — equal when the
// best tree lies inside one partition, lower when only a weaker
// cut-local tree survives (the merge never invents or rescores trees; a
// distributed-only root is legal when its globally best tree collapses
// under the single-child-root reduction). The reference list is the
// untruncated single-engine answer set: a partition-local answer may
// rank below the single engine's top-k cutoff, so scores are checked
// against the full set.
func checkClusterAnswers(class string, n int, baseline, reference []*banks.Answer, res *banks.Results) {
	if n == 1 {
		if len(res.Answers) != len(baseline) {
			check(fmt.Errorf("cluster N=1 %q: %d answers vs single %d", class, len(res.Answers), len(baseline)))
		}
		for i, a := range res.Answers {
			b := baseline[i]
			if a.Score != b.Score || a.Root.Table != b.Root.Table || a.Root.RID != b.Root.RID {
				check(fmt.Errorf("cluster N=1 %q: rank %d differs from single engine", class, i+1))
			}
		}
		if res.Stats.PartitionLocalBound {
			check(fmt.Errorf("cluster N=1 %q: completeness bound reported on a single partition", class))
		}
		return
	}
	type key struct {
		table string
		rid   int64
	}
	best := make(map[key]float64, len(reference))
	for _, b := range reference {
		k := key{b.Root.Table, b.Root.RID}
		if s, ok := best[k]; !ok || b.Score > s {
			best[k] = b.Score
		}
	}
	for _, a := range res.Answers {
		if s, ok := best[key{a.Root.Table, a.Root.RID}]; ok && a.Score > s {
			check(fmt.Errorf("cluster N=%d %q: answer (%s,%d) scores %.6f above the single-engine best %.6f",
				n, class, a.Root.Table, a.Root.RID, a.Score, s))
		}
	}
	if !res.Stats.PartitionLocalBound {
		check(fmt.Errorf("cluster N=%d %q: completeness bound not reported", n, class))
	}
}

// runClusterLoadTest drives the cluster front door (Cluster.ServeHandler)
// under load: the store is split into cfg.Partitions partitions, opened
// as an in-process cluster, and the §5.2 query mix runs closed-loop
// against the JSON /search endpoint — admission control, per-class heavy
// gating and load shedding included. Enforces the same -maxp99/-maxshed
// thresholds as the single-engine loadtest.
func runClusterLoadTest(ctx context.Context, cfg loadTestConfig, partitions int) {
	fmt.Printf("== distributed front-door loadtest (%s scale, %d partitions, %v) ==\n",
		cfg.Scale, partitions, cfg.Duration)
	dir, err := os.MkdirTemp("", "banks-clusterload")
	check(err)
	defer os.RemoveAll(dir)

	bdb := banks.WrapDatabase(buildDataset(cfg.Scale))
	builder, err := banks.NewSystem(bdb, nil)
	check(err)
	base := filepath.Join(dir, "dblp.store")
	check(builder.Save(base))
	check(builder.Close())
	paths := banks.ClusterPartitionPaths(base, partitions)
	check(cluster.SplitStore(base, paths))
	cl, err := banks.OpenCluster(bdb, paths, &banks.SystemOptions{StoreBudgetBytes: cfg.StoreBudget})
	check(err)
	defer cl.Close()

	// Split the admission capacity: heavy classes (multi-term — most of
	// the §5.2 mix) get their own gate so cheap single-term queries keep
	// flowing when the heavy pool saturates.
	heavy := cfg.MaxInFlight / 2
	if heavy == 0 {
		heavy = cfg.MaxInFlight
	}
	handler := cl.ServeHandler(&banks.ServeOptions{
		Search:            dblpSearchOptions(),
		MaxInFlight:       cfg.MaxInFlight,
		MaxQueue:          cfg.MaxQueue,
		QueueTimeout:      cfg.QueueTimeout,
		HeavyMaxInFlight:  heavy,
		HeavyMaxQueue:     cfg.MaxQueue,
		HeavyQueueTimeout: cfg.QueueTimeout,
		DefaultTimeout:    cfg.Timeout,
	})

	hist := serve.NewHistogram()
	var requests, ok, shed, errs atomic.Int64
	oneRequest := func(i int) {
		c := latencyClasses[i%len(latencyClasses)]
		req := httptest.NewRequest("GET", "/search?q="+url.QueryEscape(strings.Join(c.terms, " ")), nil)
		req = req.WithContext(ctx)
		rec := httptest.NewRecorder()
		start := time.Now()
		handler.ServeHTTP(rec, req)
		hist.Observe(time.Since(start))
		requests.Add(1)
		switch rec.Code {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusServiceUnavailable:
			shed.Add(1)
		default:
			errs.Add(1)
		}
	}
	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; time.Now().Before(deadline) && ctx.Err() == nil; i += cfg.Workers {
				oneRequest(i)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	check(ctx.Err())

	cs := cl.Stats()
	shedRate := 0.0
	if requests.Load() > 0 {
		shedRate = float64(shed.Load()) / float64(requests.Load())
	}
	fmt.Printf("requests          %d in %v (%.0f req/s)\n",
		requests.Load(), elapsed.Round(time.Millisecond), float64(requests.Load())/elapsed.Seconds())
	fmt.Printf("outcomes          %d ok, %d shed (%.1f%%), %d errors\n", ok.Load(), shed.Load(), 100*shedRate, errs.Load())
	fmt.Printf("latency           p50 %.2fms  p99 %.2fms  max %.2fms\n",
		float64(hist.Quantile(0.50))/1e6, float64(hist.Quantile(0.99))/1e6, float64(hist.Max())/1e6)
	fmt.Printf("routing           %d queries, %d legs routed, %d pruned\n",
		cs.Queries, cs.PartitionsRouted, cs.PartitionsPruned)
	printPeakRSS()

	if errs.Load() > 0 {
		check(fmt.Errorf("cluster loadtest: %d requests errored", errs.Load()))
	}
	if cfg.MaxP99 > 0 && hist.Quantile(0.99) > cfg.MaxP99 {
		check(fmt.Errorf("cluster loadtest: p99 %.2fms exceeds limit %v", float64(hist.Quantile(0.99))/1e6, cfg.MaxP99))
	}
	if cfg.MaxShedRate >= 0 && shedRate > cfg.MaxShedRate {
		check(fmt.Errorf("cluster loadtest: shed rate %.3f exceeds limit %.3f", shedRate, cfg.MaxShedRate))
	}
}
