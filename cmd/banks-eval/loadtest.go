package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	banks "github.com/banksdb/banks"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/serve"
)

// loadTestConfig carries the -loadtest knobs from main.
type loadTestConfig struct {
	Scale    string
	Strategy string
	Duration time.Duration
	// Workers is the closed-loop concurrency; with Rate > 0 the harness
	// runs open-loop instead, issuing requests on a fixed schedule
	// regardless of completions (the arrival process that actually
	// exposes queue collapse).
	Workers int
	Rate    int // requests/second, 0 = closed loop
	// Front-door shape under test.
	MaxInFlight  int
	MaxQueue     int
	QueueTimeout time.Duration
	// Timeout is the server-side deadline on every admitted search
	// (ServeOptions.DefaultTimeout); it is what keeps the client-observed
	// tail bounded once the system is pushed past saturation.
	Timeout time.Duration
	// StoreBudget, when > 0, serves from a segmented disk store with that
	// resident posting-block budget instead of a fully resident engine.
	StoreBudget int64
	// Churn enables background Apply batches and periodic Refresh while
	// the load runs; ApplyEvery is the Apply cadence (0: 20ms). Each
	// Apply republishes the engine snapshot with the warm read-side state
	// carried over (epoch-guarded match cache and flight group, touched
	// terms invalidated), so even an aggressive cadence must not reset
	// serving state — that is what MinHitRate checks.
	Churn      bool
	ApplyEvery time.Duration
	// CI thresholds: a non-zero MaxP99, non-negative MaxShedRate, or
	// positive MinHitRate that the run violates exits non-zero.
	// MinHitRate is checked against the steady-state match-cache hit
	// rate (measured after the first quarter of the run, so cold-start
	// misses don't count) — the regression signal for warm-state
	// carryover: without it, churn Applies reset the cache every 20ms
	// and the rate collapses.
	MaxP99      time.Duration
	MaxShedRate float64
	MinHitRate  float64
	// JSONPath, when set, writes the summary there (BENCH_serve.json).
	JSONPath string
}

// loadTestSummary is the recorded artifact of one run.
type loadTestSummary struct {
	Scale        string  `json:"scale"`
	Strategy     string  `json:"strategy"`
	Mode         string  `json:"mode"` // "closed" or "open"
	Workers      int     `json:"workers"`
	RatePerSec   int     `json:"rate_per_sec,omitempty"`
	DurationS    float64 `json:"duration_s"`
	MaxInFlight  int     `json:"max_in_flight"`
	MaxQueue     int     `json:"max_queue"`
	TimeoutMs    float64 `json:"server_timeout_ms,omitempty"`
	StoreBudget  int64   `json:"store_budget_bytes,omitempty"`
	Churn        bool    `json:"churn"`
	Requests     int64   `json:"requests"`
	OK           int64   `json:"ok"`
	Shed         int64   `json:"shed"`
	Errors       int64   `json:"errors"`
	Throughput   float64 `json:"throughput_rps"`
	ShedRate     float64 `json:"shed_rate"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	MaxMs        float64 `json:"max_ms"`
	ApplyBatches int64   `json:"apply_batches,omitempty"`
	Refreshes    int64   `json:"refreshes,omitempty"`
	// Steady-state match-cache behaviour, measured from the end of the
	// warmup quarter to the end of the run.
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	HitRate         float64 `json:"cache_hit_rate"`
	WarmPublishes   int64   `json:"warm_publishes,omitempty"`
	FrontierCarries int64   `json:"frontier_carries,omitempty"`
	PeakRSSBytes    int64   `json:"peak_rss_bytes,omitempty"`
}

// runLoadTest drives the production front door (System.ServeHandler) in
// process: a configurable query mix at either closed-loop concurrency or
// an open-loop arrival rate, optionally over a memory-budgeted disk store
// and under background Apply/Refresh churn. It reports throughput,
// latency quantiles, shed rate and peak RSS — the BENCH_serve.json data —
// and enforces the CI thresholds.
func runLoadTest(ctx context.Context, cfg loadTestConfig) {
	mode := "closed"
	if cfg.Rate > 0 {
		mode = "open"
	}
	fmt.Printf("== front-door loadtest (%s scale, %s strategy, %s loop, %v) ==\n",
		cfg.Scale, cfg.Strategy, mode, cfg.Duration)

	dir, err := os.MkdirTemp("", "banks-loadtest")
	check(err)
	defer os.RemoveAll(dir)

	sys := openLoadTestSystem(dir, cfg)
	defer sys.Close()

	handler := sys.ServeHandler(&banks.ServeOptions{
		Search:         mutateQueryOpts(),
		MaxInFlight:    cfg.MaxInFlight,
		MaxQueue:       cfg.MaxQueue,
		QueueTimeout:   cfg.QueueTimeout,
		DefaultTimeout: cfg.Timeout,
	})

	// Background churn: small Apply batches continuously, a full Refresh
	// midway — the conditions a live deployment serves under.
	churnCtx, stopChurn := context.WithCancel(ctx)
	var churnWG sync.WaitGroup
	var applies, refreshes atomic.Int64
	applyEvery := cfg.ApplyEvery
	if applyEvery <= 0 {
		applyEvery = 20 * time.Millisecond
	}
	if cfg.Churn {
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			for i := 0; churnCtx.Err() == nil; i++ {
				batch := []banks.Mutation{
					banks.Insert("Author", map[string]interface{}{
						"AuthorId": fmt.Sprintf("LoadA%d", i), "AuthorName": fmt.Sprintf("load churn %d", i),
					}),
					banks.Insert("Writes", map[string]interface{}{
						"AuthorId": fmt.Sprintf("LoadA%d", i), "PaperId": datagen.PaperChakrabartiSD98,
					}),
				}
				if _, err := sys.Apply(churnCtx, batch); err != nil {
					if churnCtx.Err() != nil {
						return
					}
					check(err)
				}
				applies.Add(1)
				select {
				case <-churnCtx.Done():
					return
				case <-time.After(applyEvery):
				}
			}
		}()
		churnWG.Add(1)
		go func() {
			defer churnWG.Done()
			select {
			case <-churnCtx.Done():
				return
			case <-time.After(cfg.Duration / 2):
			}
			if err := sys.Refresh(); err != nil && churnCtx.Err() == nil {
				check(err)
			}
			refreshes.Add(1)
		}()
	}

	// The client side: each request is one GET /search against the
	// handler, latency recorded in a client-side histogram, the status
	// code classified. 503 is a shed (or server-timeout) — the contract
	// under overload — and anything else but 200 is an error.
	hist := serve.NewHistogram()
	var requests, ok, shed, errs atomic.Int64
	oneRequest := func(i int) {
		c := latencyClasses[i%len(latencyClasses)]
		req := httptest.NewRequest("GET", "/search?q="+url.QueryEscape(strings.Join(c.terms, " ")), nil)
		req = req.WithContext(ctx)
		rec := httptest.NewRecorder()
		start := time.Now()
		handler.ServeHTTP(rec, req)
		hist.Observe(time.Since(start))
		requests.Add(1)
		switch rec.Code {
		case http.StatusOK:
			ok.Add(1)
		case http.StatusServiceUnavailable:
			shed.Add(1)
		default:
			errs.Add(1)
		}
	}

	// Snapshot the cache counters after the warmup quarter so the
	// steady-state hit rate excludes the inevitable cold-start misses.
	var warmBase banks.CacheStats
	warmBaseDone := make(chan struct{})
	go func() {
		defer close(warmBaseDone)
		select {
		case <-ctx.Done():
		case <-time.After(cfg.Duration / 4):
		}
		warmBase = sys.CacheStats()
	}()

	deadline := time.Now().Add(cfg.Duration)
	start := time.Now()
	var wg sync.WaitGroup
	if cfg.Rate > 0 {
		// Open loop: requests depart on schedule whether or not earlier
		// ones finished; completions don't gate arrivals.
		interval := time.Second / time.Duration(cfg.Rate)
		ticker := time.NewTicker(interval)
		for i := 0; time.Now().Before(deadline) && ctx.Err() == nil; i++ {
			<-ticker.C
			wg.Add(1)
			go func(i int) { defer wg.Done(); oneRequest(i) }(i)
		}
		ticker.Stop()
	} else {
		// Closed loop: each worker issues its next request when the
		// previous one completes.
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; time.Now().Before(deadline) && ctx.Err() == nil; i += cfg.Workers {
					oneRequest(i)
				}
			}(w)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	stopChurn()
	churnWG.Wait()
	check(ctx.Err())
	<-warmBaseDone
	cs := sys.CacheStats()
	// Warm publishes carry the cache (and its counters) forward, but a
	// mid-run Refresh rebuilds the engine around a fresh cache — node IDs
	// renumber — which resets the counters below the warmup baseline. In
	// that case fall back to the post-reset window: it still starts from a
	// HotKeys-warmed cache, so it remains a steady-state measurement.
	steadyHits, steadyMisses := cs.Hits-warmBase.Hits, cs.Misses-warmBase.Misses
	if steadyHits < 0 || steadyMisses < 0 {
		steadyHits, steadyMisses = cs.Hits, cs.Misses
	}

	sum := loadTestSummary{
		Scale:           cfg.Scale,
		Strategy:        cfg.Strategy,
		Mode:            mode,
		Workers:         cfg.Workers,
		RatePerSec:      cfg.Rate,
		DurationS:       elapsed.Seconds(),
		MaxInFlight:     cfg.MaxInFlight,
		MaxQueue:        cfg.MaxQueue,
		TimeoutMs:       float64(cfg.Timeout) / 1e6,
		StoreBudget:     cfg.StoreBudget,
		Churn:           cfg.Churn,
		Requests:        requests.Load(),
		OK:              ok.Load(),
		Shed:            shed.Load(),
		Errors:          errs.Load(),
		Throughput:      float64(requests.Load()) / elapsed.Seconds(),
		P50Ms:           float64(hist.Quantile(0.50)) / 1e6,
		P99Ms:           float64(hist.Quantile(0.99)) / 1e6,
		MaxMs:           float64(hist.Max()) / 1e6,
		ApplyBatches:    applies.Load(),
		Refreshes:       refreshes.Load(),
		CacheHits:       steadyHits,
		CacheMisses:     steadyMisses,
		WarmPublishes:   cs.WarmPublishes,
		FrontierCarries: cs.FrontierCarries,
		PeakRSSBytes:    serve.PeakRSSBytes(),
	}
	if sum.Requests > 0 {
		sum.ShedRate = float64(sum.Shed) / float64(sum.Requests)
	}
	if lookups := sum.CacheHits + sum.CacheMisses; lookups > 0 {
		sum.HitRate = float64(sum.CacheHits) / float64(lookups)
	}

	fmt.Printf("requests          %d in %v (%.0f req/s)\n", sum.Requests, elapsed.Round(time.Millisecond), sum.Throughput)
	fmt.Printf("outcomes          %d ok, %d shed (%.1f%%), %d errors\n", sum.OK, sum.Shed, 100*sum.ShedRate, sum.Errors)
	fmt.Printf("latency           p50 %.2fms  p99 %.2fms  max %.2fms\n", sum.P50Ms, sum.P99Ms, sum.MaxMs)
	if cfg.Churn {
		fmt.Printf("churn             %d Apply batches, %d Refresh, %d warm publishes\n",
			sum.ApplyBatches, sum.Refreshes, sum.WarmPublishes)
	}
	fmt.Printf("match cache       steady-state hit rate %.3f (%d hits, %d misses)\n",
		sum.HitRate, sum.CacheHits, sum.CacheMisses)
	printPeakRSS()

	if cfg.JSONPath != "" {
		f, err := os.Create(cfg.JSONPath)
		check(err)
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		check(enc.Encode(sum))
		check(f.Close())
		fmt.Printf("summary           written to %s\n", cfg.JSONPath)
	}

	// CI thresholds.
	if sum.Errors > 0 {
		check(fmt.Errorf("loadtest: %d requests errored", sum.Errors))
	}
	if cfg.MaxP99 > 0 && hist.Quantile(0.99) > cfg.MaxP99 {
		check(fmt.Errorf("loadtest: p99 %.2fms exceeds limit %v", sum.P99Ms, cfg.MaxP99))
	}
	if cfg.MaxShedRate >= 0 && sum.ShedRate > cfg.MaxShedRate {
		check(fmt.Errorf("loadtest: shed rate %.3f exceeds limit %.3f", sum.ShedRate, cfg.MaxShedRate))
	}
	if cfg.MinHitRate > 0 {
		if sum.CacheHits+sum.CacheMisses == 0 {
			check(fmt.Errorf("loadtest: -minhitrate %.3f set but no cache lookups observed", cfg.MinHitRate))
		}
		if sum.HitRate < cfg.MinHitRate {
			check(fmt.Errorf("loadtest: steady-state cache hit rate %.3f below limit %.3f",
				sum.HitRate, cfg.MinHitRate))
		}
	}
}

// openLoadTestSystem builds the system under test: a fully resident
// engine by default; with a store budget, the engine is built, persisted,
// and reopened from the segmented store so posting blocks page in and out
// under the byte budget while the load runs. The WAL is always attached
// so churn can Apply.
func openLoadTestSystem(dir string, cfg loadTestConfig) *banks.System {
	bdb := banks.WrapDatabase(buildDataset(cfg.Scale))
	wal := filepath.Join(dir, "load.wal")
	if cfg.StoreBudget <= 0 {
		sys, err := banks.NewSystem(bdb, &banks.SystemOptions{Strategy: cfg.Strategy, WALPath: wal})
		check(err)
		return sys
	}
	path := filepath.Join(dir, "load.store")
	builder, err := banks.NewSystem(bdb, &banks.SystemOptions{Strategy: cfg.Strategy})
	check(err)
	check(builder.Save(path))
	check(builder.Close())
	sys, err := banks.OpenSystem(path, bdb, &banks.SystemOptions{
		Strategy:         cfg.Strategy,
		StoreBudgetBytes: cfg.StoreBudget,
		WALPath:          wal,
	})
	check(err)
	fmt.Printf("store-backed      %s (budget %d bytes)\n", path, cfg.StoreBudget)
	return sys
}
