// Command banks-shard splits a segmented BANKS store into N partition
// stores along the (table, row-range) cut, ready for distributed serving
// (banks.OpenCluster, or one banks-shard -serve process per partition).
//
// Usage:
//
//	banks-shard -in store.banks -n 4 [-out BASE]
//	banks-shard -serve :9001 -store store.banks.p1 [-storebudget BYTES]
//
// The split writes BASE.p0 … BASE.pN-1 (BASE defaults to -in). Every
// partition holds every table (each table's rows shard into contiguous
// chunks), keeps the source's global score normalizers — so partition-
// local answers score bit-identically to the single-engine search — and
// carries a term-statistics sketch the routing broker uses to prune
// partitions that cannot match a query.
//
// -serve exposes one partition store over HTTP (GET /cluster/meta,
// POST /cluster/query) for remote scatter-gather.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"github.com/banksdb/banks/internal/cluster"
)

func main() {
	in := flag.String("in", "", "source store to split")
	out := flag.String("out", "", "output base path (default: the -in path); partitions land at BASE.p0..BASE.pN-1")
	n := flag.Int("n", 2, "number of partitions")
	serveAddr := flag.String("serve", "", "serve one partition store over HTTP at this address instead of splitting")
	servePath := flag.String("store", "", "partition store to serve with -serve")
	storeBudget := flag.Int64("storebudget", 0, "resident posting-block budget with -serve (bytes; 0 = unbounded)")
	flag.Parse()

	switch {
	case *serveAddr != "":
		if *servePath == "" {
			fmt.Fprintln(os.Stderr, "banks-shard: -serve requires -store PATH")
			os.Exit(2)
		}
		servePartition(*serveAddr, *servePath, *storeBudget)
	case *in != "":
		base := *out
		if base == "" {
			base = *in
		}
		if *n <= 0 {
			fmt.Fprintln(os.Stderr, "banks-shard: -n must be positive")
			os.Exit(2)
		}
		paths := cluster.PartitionPaths(base, *n)
		start := time.Now()
		if err := cluster.SplitStore(*in, paths); err != nil {
			log.Fatal(err)
		}
		log.Printf("split %s into %d partitions in %v:", *in, *n, time.Since(start))
		for _, p := range paths {
			fi, err := os.Stat(p)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("  %s (%d bytes)", p, fi.Size())
		}
	default:
		fmt.Fprintln(os.Stderr, "banks-shard: need -in PATH (split) or -serve ADDR -store PATH (serve)")
		flag.Usage()
		os.Exit(2)
	}
}

func servePartition(addr, path string, budget int64) {
	p, err := cluster.OpenLocal(path, path, budget)
	if err != nil {
		log.Fatal(err)
	}
	defer p.Close()
	srv := &http.Server{
		Addr:              addr,
		Handler:           cluster.Handler(p),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	log.Printf("serving partition %s on %s (/cluster/meta, /cluster/query)", path, addr)
	log.Fatal(srv.ListenAndServe())
}
