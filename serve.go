package banks

import (
	"net/http"
	"time"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/serve"
	"github.com/banksdb/banks/internal/store"
	"github.com/banksdb/banks/internal/web"
)

// ServeOptions configure the production front door ServeHandler puts in
// front of the web UI: admission control, default deadlines, and
// observability. The zero value serves with admission control and
// server-side deadlines disabled but observability on.
type ServeOptions struct {
	// Search sets the default search parameters (nil: the paper's
	// defaults), including any per-query cost Budget.
	Search *SearchOptions
	// MaxInFlight caps concurrently executing searches (0: no admission
	// control). Requests beyond it wait in the bounded queue.
	MaxInFlight int
	// MaxQueue caps searches waiting for a worker slot (meaningful only
	// with MaxInFlight > 0). A request arriving to a full queue is shed
	// immediately with 503 + Retry-After.
	MaxQueue int
	// QueueTimeout sheds a queued request that waited this long
	// (0: wait as long as the client's context allows).
	QueueTimeout time.Duration
	// HeavyMaxInFlight, when positive, installs a second admission gate
	// for the heavy query classes (multi-term, prefix and qualified —
	// serve.IsHeavyClass): heavy requests contend only for these slots,
	// so a burst of expensive queries cannot starve cheap single-term
	// traffic out of the main gate. 0 keeps one shared gate.
	HeavyMaxInFlight int
	// HeavyMaxQueue caps heavy searches waiting for a heavy slot
	// (meaningful only with HeavyMaxInFlight > 0).
	HeavyMaxQueue int
	// HeavyQueueTimeout sheds a queued heavy request that waited this
	// long (0: wait as long as the client's context allows).
	HeavyQueueTimeout time.Duration
	// DefaultTimeout bounds searches whose request did not choose its own
	// timeout parameter (0: unbounded). Expiry maps to 503 + Retry-After.
	DefaultTimeout time.Duration
	// RetryAfter is the backoff hint attached to shed responses
	// (0: one second).
	RetryAfter time.Duration
	// SlowQuery routes queries at or above this latency into the
	// slow-query log on /debug (0: 500ms).
	SlowQuery time.Duration
	// SlowLogSize is how many slow queries /debug retains (0: 64).
	SlowLogSize int
}

// ServeHandler returns the BANKS web interface wrapped in the production
// front door: admission control with load shedding on /search, per-query
// latency histograms and outcome counters, a slow-query log, and the
// /debug + /debug/vars observability surface wired to the live engine
// (match cache, flight group, frontier pool, store residency, pending
// mutations). Handler remains the bare, zero-overhead mount.
//
// Status mapping under pressure: a shed or queue-timed-out request gets
// 503 with a Retry-After hint; a search that exceeds the server's
// DefaultTimeout also gets 503 + Retry-After; a search that exceeds a
// client-chosen timeout parameter gets 408.
func (s *System) ServeHandler(opts *ServeOptions) http.Handler {
	if opts == nil {
		opts = &ServeOptions{}
	}
	copts := opts.Search.toCore()
	copts.Strategy = s.opts.Strategy
	srv := web.NewServer(s.db.inner, func() *core.Searcher { return s.engine().searcher }, copts)
	srv.SetEngineErr(func() error { return s.engine().storeErr() })
	srv.SetDefaultTimeout(opts.DefaultTimeout)

	var gate, heavy *serve.Gate
	if opts.MaxInFlight > 0 {
		gate = serve.NewGate(serve.GateConfig{
			Workers:      opts.MaxInFlight,
			Queue:        opts.MaxQueue,
			QueueTimeout: opts.QueueTimeout,
			RetryAfter:   opts.RetryAfter,
		})
		srv.SetGate(gate)
	}
	if opts.HeavyMaxInFlight > 0 {
		heavy = serve.NewGate(serve.GateConfig{
			Workers:      opts.HeavyMaxInFlight,
			Queue:        opts.HeavyMaxQueue,
			QueueTimeout: opts.HeavyQueueTimeout,
			RetryAfter:   opts.RetryAfter,
		})
		srv.SetHeavyGate(heavy)
	}

	m := serve.NewMetrics(opts.SlowQuery, opts.SlowLogSize)
	m.BindGate(gate)
	m.BindGateNamed("gate_heavy", heavy)
	s.bindEngineGauges(m)
	srv.SetMetrics(m)
	return srv
}

// bindEngineGauges registers the engine's live state — the gauges the
// serving tier watches for capacity decisions — on the metrics registry.
// Every gauge samples the current engine snapshot at read time, so the
// numbers stay truthful across Refresh/Apply swaps.
func (s *System) bindEngineGauges(m *serve.Metrics) {
	reg := m.Registry()
	reg.Gauge("cache_hits", func() int64 { return s.CacheStats().Hits })
	reg.Gauge("cache_misses", func() int64 { return s.CacheStats().Misses })
	reg.Gauge("cache_entries", func() int64 { return int64(s.CacheStats().Entries) })
	reg.Gauge("cache_bytes", func() int64 { return s.CacheStats().Bytes })
	reg.Gauge("cache_single_flight", func() int64 { return s.CacheStats().SingleFlight })
	reg.Gauge("frontier_reuses", func() int64 { return s.CacheStats().FrontierReuses })
	reg.Gauge("cache_epoch", func() int64 { return int64(s.CacheStats().Epoch) })
	reg.Gauge("cache_invalidated", func() int64 { return s.CacheStats().Invalidated })
	reg.Gauge("warm_publishes", func() int64 { return s.CacheStats().WarmPublishes })
	reg.Gauge("frontier_carries", func() int64 { return s.CacheStats().FrontierCarries })
	reg.Gauge("graph_nodes", func() int64 { return int64(s.GraphStats().Nodes) })
	reg.Gauge("graph_arcs", func() int64 { return int64(s.GraphStats().Arcs) })
	reg.Gauge("pending_mutations", func() int64 { return int64(s.PendingMutations()) })
	if _, ok := s.StoreStats(); ok {
		reg.Gauge("store_structural_bytes", func() int64 { st, _ := s.StoreStats(); return st.StructuralBytes })
		reg.Gauge("store_block_bytes", func() int64 { st, _ := s.StoreStats(); return st.BlockBytes })
		reg.Gauge("store_block_entries", func() int64 { st, _ := s.StoreStats(); return int64(st.BlockEntries) })
		reg.Gauge("store_budget_bytes", func() int64 { st, _ := s.StoreStats(); return st.BudgetBytes })
		reg.Gauge("store_faulted_bytes", func() int64 { st, _ := s.StoreStats(); return st.FaultedBytes })
	}
}

// StoreStats returns the disk store's residency counters; ok is false for
// purely in-memory systems.
func (s *System) StoreStats() (st store.Stats, ok bool) {
	if s.store == nil {
		return store.Stats{}, false
	}
	return s.store.Stats(), true
}
