package banks

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// saveQuickstart persists a quickstart system to a store file.
func saveQuickstart(t *testing.T) (*Database, *System, string) {
	t.Helper()
	db, sys := newQuickstartSystem(t)
	path := filepath.Join(t.TempDir(), "engine.bstore")
	if err := sys.Save(path); err != nil {
		t.Fatal(err)
	}
	return db, sys, path
}

// systemTrace fingerprints a set of queries: scores, roots, tree labels
// and iterator pop counts.
func systemTrace(t *testing.T, sys *System) string {
	t.Helper()
	var b strings.Builder
	for _, q := range []Query{
		{Text: "sunita soumen", Options: &SearchOptions{ExcludedRootTables: []string{"writes"}}},
		{Text: "byron"},
		{Text: "su", Prefix: true},
		{Text: "author:sunita", Qualified: true},
	} {
		res, err := sys.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("query %q: %v", q.Text, err)
		}
		fmt.Fprintf(&b, "%s pops=%d:", q.Text, res.Stats.Pops)
		for _, a := range res.Answers {
			fmt.Fprintf(&b, " |%.6f %s", a.Score, a.Format())
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func TestSaveOpenSystemParity(t *testing.T) {
	db, sys, path := saveQuickstart(t)
	opened, err := OpenSystem(path, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()

	want := systemTrace(t, sys)
	// Cold (first queries fault segments in), then warm.
	if got := systemTrace(t, opened); got != want {
		t.Fatalf("cold store queries diverge:\ngot  %q\nwant %q", got, want)
	}
	if got := systemTrace(t, opened); got != want {
		t.Fatalf("warm store queries diverge:\ngot  %q\nwant %q", got, want)
	}
	gs1, gs2 := sys.GraphStats(), opened.GraphStats()
	if gs1.Nodes != gs2.Nodes || gs1.Arcs != gs2.Arcs || gs1.Tables != gs2.Tables {
		t.Errorf("graph stats differ: %+v vs %+v", gs1, gs2)
	}
	is1, is2 := sys.IndexStats(), opened.IndexStats()
	if is1 != is2 {
		t.Errorf("index stats differ: %+v vs %+v", is1, is2)
	}
}

func TestOpenSystemRequiresDatabase(t *testing.T) {
	_, _, path := saveQuickstart(t)
	if _, err := OpenSystem(path, nil, nil); err == nil {
		t.Fatal("OpenSystem accepted a nil database")
	}
}

func TestOpenSystemBudgetedMode(t *testing.T) {
	db, sys, path := saveQuickstart(t)
	want := systemTrace(t, sys)
	opened, err := OpenSystem(path, db, &SystemOptions{
		StoreBudgetBytes: 4 << 10,
		MatchCacheBytes:  -1, // force every lookup through the store
	})
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	for i := 0; i < 3; i++ {
		if got := systemTrace(t, opened); got != want {
			t.Fatalf("budgeted queries diverge on pass %d", i)
		}
	}
}

func TestSaveRefusesForeignFiles(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("# my notes"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := sys.Save(path)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("Save over a foreign file: err = %v, want refusal", err)
	}
	if data, _ := os.ReadFile(path); string(data) != "# my notes" {
		t.Fatal("foreign file was modified")
	}
	// Saving over our own store is fine.
	_, sys2, storePath := saveQuickstart(t)
	if err := sys2.Save(storePath); err != nil {
		t.Fatal(err)
	}
}

func TestRefreshPersistsToStorePath(t *testing.T) {
	db := NewDatabase()
	if err := db.ExecScript(`
		CREATE TABLE author (id TEXT PRIMARY KEY, name TEXT);
		CREATE TABLE paper (id TEXT PRIMARY KEY, title TEXT);
		CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);
		INSERT INTO author VALUES ('a1', 'Soumen Chakrabarti'),
			('a2', 'Sunita Sarawagi'), ('a3', 'Byron Dom');
		INSERT INTO paper VALUES ('p1', 'Mining Surprising Patterns');
		INSERT INTO writes VALUES ('a1', 'p1'), ('a2', 'p1'), ('a3', 'p1');
	`); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "live.bstore")
	sys, err := NewSystem(db, &SystemOptions{StorePath: path})
	if err != nil {
		t.Fatal(err)
	}
	// The initial build persisted a store usable for instant reopen.
	opened, err := OpenSystem(path, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := systemTrace(t, opened), systemTrace(t, sys); got != want {
		t.Fatalf("persisted store diverges from serving engine")
	}
	opened.Close()

	// New data + Refresh: the store on disk follows the engine.
	db.MustExec(`INSERT INTO author VALUES ('a9', 'Zanzibar Quux')`)
	db.MustExec(`INSERT INTO writes VALUES ('a9', 'p1')`)
	if err := sys.Refresh(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenSystem(path, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	res, err := reopened.Query(context.Background(), Query{Text: "zanzibar"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("refreshed store does not see the new tuple")
	}
}

func TestStoreWarmupPrimesMatchCache(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	// Run queries so the cache has hot keys, then save them with the store.
	if _, err := sys.Query(context.Background(), Query{Text: "sunita soumen"}); err != nil {
		t.Fatal(err)
	}
	if cs := sys.CacheStats(); cs.Entries == 0 {
		t.Fatal("no hot cache entries to record")
	}
	path := filepath.Join(t.TempDir(), "warm.bstore")
	if err := sys.Save(path); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSystem(path, db, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer opened.Close()
	// The warmup runs on a background goroutine; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for opened.CacheStats().Entries == 0 {
		if time.Now().After(deadline) {
			t.Fatal("opened store never warmed its match cache")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLegacySnapshotRejected(t *testing.T) {
	db, _ := newQuickstartSystem(t)
	// A hand-written legacy header must be rejected with the migration
	// hint, whatever follows the magic+version — the decode path is gone.
	var legacy bytes.Buffer
	legacy.WriteString(legacySnapshotMagic)
	var ver [4]byte
	binary.BigEndian.PutUint32(ver[:], 1)
	legacy.Write(ver[:])
	legacy.Write(make([]byte, 64))

	if _, err := LoadSystem(db, bytes.NewReader(legacy.Bytes()), nil); err == nil {
		t.Fatal("legacy snapshot accepted")
	} else if !strings.Contains(err.Error(), "no longer supported") {
		t.Fatalf("err = %v, want the legacy-rejection error", err)
	}
}

func TestCorruptStoreFailsQueriesLoudly(t *testing.T) {
	db, _, path := saveQuickstart(t)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the arcs segment region (past header + meta).
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	opened, err := OpenSystem(path, db, nil)
	if err != nil {
		return // caught at open; equally loud
	}
	defer opened.Close()
	_, qerr := opened.Query(context.Background(), Query{Text: "sunita soumen"})
	_, qerr2 := opened.Query(context.Background(), Query{Text: "byron"})
	if qerr == nil && qerr2 == nil {
		t.Fatal("queries over a corrupt store reported no error")
	}
}
