package banks

// Distributed-serving tests at the System level: the 1-partition
// distributed query must be byte-identical to the single-engine backward
// search on both evaluation suites; multi-partition clusters must serve
// only exactly-scored single-engine answers (the partition-local
// completeness bound) and report their routing decision; and the
// scatter-gather front door must survive a -race concurrent burst.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/cluster"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// newClusterFixture builds a system over inner, saves it as a store,
// splits the store into parts partitions, and opens both the
// single-engine baseline and the cluster. Both close at test end.
func newClusterFixture(t *testing.T, inner *sqldb.Database, parts int) (*System, *Cluster) {
	t.Helper()
	db := wrapDatabase(inner)
	sys, err := NewSystem(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sys.Close() })
	base := filepath.Join(t.TempDir(), "store.banks")
	if err := sys.Save(base); err != nil {
		t.Fatal(err)
	}
	paths := ClusterPartitionPaths(base, parts)
	if err := cluster.SplitStore(base, paths); err != nil {
		t.Fatal(err)
	}
	cl, err := OpenCluster(db, paths, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return sys, cl
}

func clusterQuery(t *testing.T, cl *Cluster, terms []string, opts *SearchOptions) *Results {
	t.Helper()
	res, err := cl.Query(context.Background(), Query{
		Text:     strings.Join(terms, " "),
		Strategy: StrategyDistributed,
		Options:  opts,
	})
	if err != nil {
		t.Fatalf("distributed %v: %v", terms, err)
	}
	return res
}

// TestDistributedGoldenParityDBLP: with one partition, the distributed
// strategy must return byte-identical answers (scores, order, trees) to
// the single-engine backward search across the §5.3 DBLP suite, and the
// partition-local bound must NOT be reported.
func TestDistributedGoldenParityDBLP(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	sys, cl := newClusterFixture(t, inner, 1)
	g, err := graph.Build(inner, nil)
	if err != nil {
		t.Fatal(err)
	}
	queries, err := eval.DBLPSuite(inner, g)
	if err != nil {
		t.Fatal(err)
	}
	opts := &SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}}
	for _, q := range queries {
		want := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBackward, opts))
		res := clusterQuery(t, cl, q.Terms, opts)
		if got := renderAnswers(res.Answers); got != want {
			t.Errorf("query %s: distributed N=1 differs from backward\nbackward:\n%s\ndistributed:\n%s",
				q.Name, want, got)
		}
		if res.Stats.PartitionLocalBound {
			t.Errorf("query %s: 1-partition cluster reported the partition-local bound", q.Name)
		}
		if res.Stats.PartitionsTotal != 1 || res.Stats.PartitionsRouted != 1 {
			t.Errorf("query %s: routing %d/%d, want 1/1", q.Name,
				res.Stats.PartitionsRouted, res.Stats.PartitionsTotal)
		}
	}
}

// TestDistributedGoldenParityTPCD is the same golden contract on the
// TPC-D catalog, metadata terms included.
func TestDistributedGoldenParityTPCD(t *testing.T) {
	inner, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	sys, cl := newClusterFixture(t, inner, 1)
	for _, q := range eval.TPCDSuite() {
		want := renderAnswers(queryStrategy(t, sys, q.Terms, StrategyBackward, nil))
		got := renderAnswers(clusterQuery(t, cl, q.Terms, nil).Answers)
		if got != want {
			t.Errorf("query %s: distributed N=1 differs from backward\nbackward:\n%s\ndistributed:\n%s",
				q.Name, want, got)
		}
	}
}

// TestDistributedMultiPartitionBound verifies the documented
// partition-local completeness bound on N>1 partitions, in both
// directions:
//
//   - Soundness: for any root both sides report, the distributed score
//     never exceeds the single engine's — equal when the best tree lies
//     inside one partition, lower when only a weaker cut-local tree
//     survives. (A distributed-only root is legal: its globally best
//     tree collapses under the engine's single-child-root reduction
//     while the cut-local tree branches at the root.)
//   - Completeness: every single-engine answer whose tree lies entirely
//     inside one partition (per the (table, row-range) cut) has a
//     distributed counterpart at the same root scoring at least as well.
//
// The stats must report the bound and a routing decision that accounts
// for every partition.
func TestDistributedMultiPartitionBound(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 4} {
		t.Run(fmt.Sprintf("N=%d", parts), func(t *testing.T) {
			sys, cl := newClusterFixture(t, inner, parts)
			// partitionOf mirrors cluster.Assign: node i of a table with
			// count rows goes to partition i*parts/count, and in a freshly
			// built database the node index within a table is its rid.
			partitionOf := func(tp Tuple) int {
				count := inner.Table(tp.Table).Len()
				return int(tp.RID) * parts / count
			}
			// treePartition walks an answer tree: the partition all nodes
			// share, or -1 if the tree crosses the cut.
			var treePartition func(n *TreeNode) int
			treePartition = func(n *TreeNode) int {
				p := partitionOf(n.Tuple)
				for _, c := range n.Children {
					if cp := treePartition(c); cp != p {
						return -1
					}
				}
				return p
			}
			// TopK high enough that neither side truncates: the bound is
			// only meaningful over the full answer sets.
			opts := &SearchOptions{
				ExcludedRootTables: []string{"Writes", "Cites"},
				TopK:               2000,
				HeapSize:           1 << 13,
			}
			for _, terms := range [][]string{
				{"soumen", "sunita"},
				{"mohan"},
				{"transaction"},
				{"gray", "concepts"},
				{"soumen", "sunita", "byron"},
			} {
				single := queryStrategy(t, sys, terms, StrategyBackward, opts)
				best := make(map[string]float64)
				for _, a := range single {
					key := fmt.Sprintf("%s/%d", a.Root.Table, a.Root.RID)
					if s, ok := best[key]; !ok || a.Score > s {
						best[key] = a.Score
					}
				}
				res := clusterQuery(t, cl, terms, opts)
				distBest := make(map[string]float64)
				for _, a := range res.Answers {
					key := fmt.Sprintf("%s/%d", a.Root.Table, a.Root.RID)
					if s, ok := distBest[key]; !ok || a.Score > s {
						distBest[key] = a.Score
					}
					if s, ok := best[key]; ok && a.Score > s {
						t.Errorf("%v: distributed answer %s scores %g above the single-engine best %g",
							terms, key, a.Score, s)
					}
				}
				for _, a := range single {
					if treePartition(a.Tree) < 0 {
						continue // crosses the cut: the documented loss
					}
					key := fmt.Sprintf("%s/%d", a.Root.Table, a.Root.RID)
					s, ok := distBest[key]
					if !ok {
						t.Errorf("%v: single-engine answer %s (score %g) lies inside one partition but is missing from the distributed results",
							terms, key, a.Score)
					} else if s < a.Score {
						t.Errorf("%v: partition-local answer %s scores %g distributed, below the single-engine %g",
							terms, key, s, a.Score)
					}
				}
				st := res.Stats
				if !st.PartitionLocalBound {
					t.Errorf("%v: multi-partition query did not report the partition-local bound", terms)
				}
				if st.PartitionsTotal != parts || st.PartitionsRouted+st.PartitionsPruned != parts {
					t.Errorf("%v: routing %d routed + %d pruned over %d total, want them to cover %d",
						terms, st.PartitionsRouted, st.PartitionsPruned, st.PartitionsTotal, parts)
				}
			}
		})
	}
}

// TestDistributedScatterBurst hammers the cluster front door from many
// goroutines (run under -race in CI): concurrent scatter-gather must
// stay correct — every 200 carries answers, every reply is well-formed —
// and the routing counters must account for every query.
func TestDistributedScatterBurst(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newClusterFixture(t, inner, 4)
	handler := cl.ServeHandler(&ServeOptions{
		Search:           &SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}},
		MaxInFlight:      8,
		MaxQueue:         64,
		HeavyMaxInFlight: 4,
		HeavyMaxQueue:    64,
	})
	queries := []string{"sunita", "soumen sunita", "mining surprising patterns", "transaction", "mohan"}
	const workers, perWorker = 8, 10
	var wg sync.WaitGroup
	errs := make(chan string, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				q := queries[(w+i)%len(queries)]
				rec := httptest.NewRecorder()
				handler.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q="+url.QueryEscape(q), nil))
				switch rec.Code {
				case http.StatusOK, http.StatusServiceUnavailable:
				default:
					errs <- fmt.Sprintf("%q: unexpected status %d: %s", q, rec.Code, rec.Body.String())
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	st := cl.Stats()
	if st.Queries == 0 {
		t.Fatal("no distributed queries recorded")
	}
	if st.PartitionsRouted+st.PartitionsPruned != st.Queries*int64(st.Partitions) {
		t.Errorf("routing legs %d+%d do not cover %d queries x %d partitions",
			st.PartitionsRouted, st.PartitionsPruned, st.Queries, st.Partitions)
	}
}

// TestDistributedOnSingleEngineRejected: the distributed strategy is a
// registry citizen, but a single engine cannot serve it — the error must
// point at the cluster front door.
func TestDistributedOnSingleEngineRejected(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	_, err := sys.Query(context.Background(), Query{Text: "sunita", Strategy: StrategyDistributed})
	if err == nil {
		t.Fatal("single-engine distributed query did not fail")
	}
	if !strings.Contains(err.Error(), "OpenCluster") {
		t.Errorf("error %q does not point at the cluster front door", err)
	}
}

// TestClusterHeavyGateClasses: with a heavy gate installed, multi-term
// searches are admitted by gate_heavy while single-term searches use the
// default gate — visible in the /debug/vars admission counters.
func TestClusterHeavyGateClasses(t *testing.T) {
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	_, cl := newClusterFixture(t, inner, 2)
	handler := cl.ServeHandler(&ServeOptions{
		Search:           &SearchOptions{ExcludedRootTables: []string{"Writes", "Cites"}},
		MaxInFlight:      4,
		HeavyMaxInFlight: 2,
	})
	get := func(q string) {
		t.Helper()
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, httptest.NewRequest("GET", "/search?q="+url.QueryEscape(q), nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%q: status %d: %s", q, rec.Code, rec.Body.String())
		}
	}
	get("sunita")        // 1term -> default gate
	get("sunita soumen") // heavy -> heavy gate
	_, gauges := waitGateDrained(t, handler)
	if got := gauges["gate_admitted_total"]; got != 1 {
		t.Errorf("default gate admitted %d, want 1", got)
	}
	if got := gauges["gate_heavy_admitted_total"]; got != 1 {
		t.Errorf("heavy gate admitted %d, want 1", got)
	}
}
