package banks

import (
	"context"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

// wrapDatabase adopts a datagen-built database into the public facade.
func wrapDatabase(db *sqldb.Database) *Database {
	return &Database{inner: db, engine: sqlexec.New(db)}
}

func TestQueryStatsAndAnswers(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:    "sunita soumen",
		Options: &SearchOptions{ExcludedRootTables: []string{"writes"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("no answers")
	}
	if res.Answers[0].Root.Table != "paper" {
		t.Errorf("top root = %s, want paper", res.Answers[0].Root.Table)
	}
	st := res.Stats
	if len(st.Terms) != 2 || st.Pops == 0 || st.Generated == 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.MatchedNodes) != 2 {
		t.Errorf("matched nodes = %v", st.MatchedNodes)
	}
	if res.Groups != nil {
		t.Error("groups populated without GroupByShape")
	}
}

func TestQueryGroupByShape(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:         "sunita soumen",
		GroupByShape: true,
		Options:      &SearchOptions{ExcludedRootTables: []string{"writes"}, HeapSize: 100},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) == 0 {
		t.Fatal("no groups")
	}
	total := 0
	for _, g := range res.Groups {
		if g.Shape == "" {
			t.Error("empty shape")
		}
		for _, a := range g.Answers {
			if a == nil {
				t.Fatal("group references unconverted answer")
			}
		}
		total += len(g.Answers)
	}
	if total != len(res.Answers) {
		t.Errorf("grouped %d of %d answers", total, len(res.Answers))
	}
}

func TestQueryQualifiedAndPrefix(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	res, err := sys.Query(context.Background(), Query{
		Text:      "author:sunita sarawag",
		Qualified: true,
		Prefix:    true,
		Options:   &SearchOptions{ExcludedRootTables: []string{"writes"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("qualified+prefix query found nothing")
	}
}

// TestQueryRespectsTopK pins the trimming contract: with a tiny output
// heap the emitter can overshoot TopK by an answer or two during a single
// node visit, but Results.Answers must be the trimmed, sequentially
// ranked list.
func TestQueryRespectsTopK(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	for _, topK := range []int{1, 2, 3} {
		res, err := sys.Query(context.Background(), Query{
			Text:    "sunita soumen",
			Options: &SearchOptions{TopK: topK, HeapSize: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) > topK {
			t.Errorf("TopK=%d returned %d answers", topK, len(res.Answers))
		}
		for i, a := range res.Answers {
			if a.Rank != i+1 {
				t.Errorf("TopK=%d answer %d has rank %d", topK, i, a.Rank)
			}
		}
	}
}

func TestQueryEmptyText(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	if _, err := sys.Query(context.Background(), Query{Text: " ,, "}); err == nil {
		t.Error("empty query should error")
	}
}

func TestQueryStreamPartialResults(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	q := Query{Text: "sunita soumen", Options: &SearchOptions{ExcludedRootTables: []string{"writes"}}}
	res, err := sys.QueryStream(context.Background(), q, func(*Answer) bool { return false })
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if res == nil || len(res.Answers) != 1 {
		t.Fatalf("partial results = %+v, want the one delivered answer", res)
	}
	if _, err := sys.QueryStream(context.Background(), q, nil); err == nil {
		t.Error("nil callback should error")
	}
}

func TestQueryContextCanceled(t *testing.T) {
	_, sys := newQuickstartSystem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.Query(ctx, Query{Text: "sunita soumen"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestQueryDeadlineAbortsLongQuery asserts that a deadline stops a heavy
// multi-term TPC-D query long before it would complete. The three
// metadata terms each expand to MetadataNodeLimit origins, so the
// uncancelled search runs to MaxPops (default 2,000,000 iterator pops —
// on the order of seconds); the 25ms deadline must cut it off within the
// cancellation-check interval of a few hundred pops.
func TestQueryDeadlineAbortsLongQuery(t *testing.T) {
	inner, err := datagen.BuildTPCD(datagen.TPCDConfig{
		Parts: 2000, Suppliers: 500, Customers: 1000, Orders: 8000, LinesPer: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(wrapDatabase(inner), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = sys.Query(ctx, Query{
		Text:    "part orders lineitem",
		Options: &SearchOptions{TopK: 1 << 20, HeapSize: 1 << 10},
	})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v (after %v), want context.DeadlineExceeded", err, elapsed)
	}
	if elapsed > 2*time.Second {
		t.Errorf("cancellation took %v; want well under the uncancelled runtime", elapsed)
	}
}

// TestRefreshDuringQueriesAndHandler is the concurrency contract of the
// atomically swapped engine: queries (direct and via the HTTP handler)
// run non-stop while the database grows and Refresh repeatedly swaps new
// snapshots in. Under -race this fails loudly if any in-flight search
// could observe a torn graph/index/searcher triple.
func TestRefreshDuringQueriesAndHandler(t *testing.T) {
	db, sys := newQuickstartSystem(t)
	ts := httptest.NewServer(sys.Handler(&SearchOptions{ExcludedRootTables: []string{"writes"}}))
	defer ts.Close()

	var done atomic.Bool
	var wg sync.WaitGroup
	fail := make(chan error, 16)

	// Direct Query + QueryStream workers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := &SearchOptions{ExcludedRootTables: []string{"writes"}}
			for !done.Load() {
				res, err := sys.Query(context.Background(), Query{Text: "sunita soumen", Options: opts})
				if err != nil {
					fail <- err
					return
				}
				if len(res.Answers) == 0 {
					fail <- errors.New("query lost its answers mid-refresh")
					return
				}
				if _, err := sys.QueryStream(context.Background(),
					Query{Text: "mining", Options: opts},
					func(*Answer) bool { return true }); err != nil {
					fail <- err
					return
				}
			}
		}()
	}
	// Handler worker: every request pins one snapshot.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !done.Load() {
			resp, err := ts.Client().Get(ts.URL + "/search?q=sunita+soumen")
			if err != nil {
				fail <- err
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != 200 || !strings.Contains(string(body), "Mining Surprising Patterns") {
				fail <- errors.New("handler response torn during refresh")
				return
			}
		}
	}()

	// Main thread: grow the database and swap snapshots as fast as it can.
	for i := 0; i < 60; i++ {
		db.MustExec("INSERT INTO author VALUES (?, ?)", "x"+string(rune('a'+i%26))+string(rune('0'+i/26)), "Extra Person")
		if err := sys.Refresh(); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(fail)
	for err := range fail {
		t.Error(err)
	}

	// The final snapshot sees everything inserted above.
	res, err := sys.Query(context.Background(), Query{Text: "extra"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Error("refreshed engine does not see inserted rows")
	}
}
