package banks

// Race coverage for the match-set cache: every engine snapshot owns one
// cache, queries consult it on the term-resolution hot path, and Refresh
// retires whole snapshots (cache included) while queries are in flight.
// Run under -race (the CI default) this pins the claim that a query never
// observes a cache from a different snapshot and the cache's internal
// locking holds up under mixed exact/prefix traffic.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/banksdb/banks/internal/datagen"
)

// newDBLPSystem loads the small synthetic DBLP bibliography through the
// public API (datagen → SQL dump → ExecScript) and builds a System over it.
func newDBLPSystem(t *testing.T, opts *SystemOptions) *System {
	t.Helper()
	inner, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	var dump bytes.Buffer
	if err := inner.DumpSQL(&dump); err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	if err := db.ExecScript(dump.String()); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestCacheUnderConcurrentQueryAndRefresh mixes Query, QueryStream and
// prefix queries (the cache's expensive path) from several goroutines
// with a Refresh loop swapping snapshots underneath them.
func TestCacheUnderConcurrentQueryAndRefresh(t *testing.T) {
	sys := newDBLPSystem(t, nil)
	queries := []Query{
		{Text: "soumen sunita"},
		{Text: "mohan"},
		{Text: "transac sunit", Prefix: true}, // exercises LookupPrefix caching
		{Text: "seltzer sunita"},
		{Text: "mini patte", Prefix: true},
	}

	const (
		workers       = 4
		iterPerWorker = 120
		refreshes     = 25
	)
	var wg sync.WaitGroup
	var queriesRun atomic.Int64
	errc := make(chan error, workers+1)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterPerWorker; i++ {
				q := queries[rng.Intn(len(queries))]
				if i%3 == 0 {
					seen := 0
					if _, err := sys.QueryStream(context.Background(), q, func(*Answer) bool {
						seen++
						return seen < 3
					}); err != nil && err != ErrStopped {
						errc <- fmt.Errorf("QueryStream(%q): %w", q.Text, err)
						return
					}
				} else {
					res, err := sys.Query(context.Background(), q)
					if err != nil {
						errc <- fmt.Errorf("Query(%q): %w", q.Text, err)
						return
					}
					if len(res.Answers) == 0 {
						errc <- fmt.Errorf("Query(%q): no answers", q.Text)
						return
					}
				}
				queriesRun.Add(1)
			}
		}(int64(w + 1))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < refreshes; i++ {
			if err := sys.Refresh(); err != nil {
				errc <- fmt.Errorf("Refresh: %w", err)
				return
			}
			// Stats on whatever snapshot is current must be coherent at
			// any moment, including right after a swap.
			if st := sys.CacheStats(); st.Bytes > st.MaxBytes {
				errc <- fmt.Errorf("cache bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if queriesRun.Load() == 0 {
		t.Fatal("no queries completed")
	}
}

// TestCacheStatsAccumulate: repeated queries against one snapshot hit the
// cache, and the public stats show it.
func TestCacheStatsAccumulate(t *testing.T) {
	sys := newDBLPSystem(t, nil)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := sys.Query(ctx, Query{Text: "soumen sunita"}); err != nil {
			t.Fatal(err)
		}
	}
	st := sys.CacheStats()
	if st.MaxBytes == 0 {
		t.Fatal("cache should be on by default")
	}
	if st.Hits == 0 {
		t.Errorf("no cache hits after 10 identical queries: %+v", st)
	}
	if st.HitRate() <= 0.5 {
		t.Errorf("hit rate %.2f after repeats, want > 0.5", st.HitRate())
	}
	// Refresh swaps in a fresh cache: counters reset.
	if err := sys.Refresh(); err != nil {
		t.Fatal(err)
	}
	if st := sys.CacheStats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 {
		t.Errorf("stats after Refresh = %+v, want zeroed", st)
	}
}

// TestCacheDisabled: MatchCacheBytes < 0 turns caching off; queries still
// work and stats stay zero.
func TestCacheDisabled(t *testing.T) {
	sys := newDBLPSystem(t, &SystemOptions{MatchCacheBytes: -1})
	for i := 0; i < 3; i++ {
		res, err := sys.Query(context.Background(), Query{Text: "soumen sunita"})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) == 0 {
			t.Fatal("no answers with caching disabled")
		}
	}
	if st := sys.CacheStats(); st != (CacheStats{}) {
		t.Errorf("disabled cache stats = %+v, want zero", st)
	}
}

// TestCachedAndUncachedAgree: the same query against a cached and an
// uncached system returns identical answers in identical order — the
// cache is purely a latency optimization.
func TestCachedAndUncachedAgree(t *testing.T) {
	cached := newDBLPSystem(t, nil)
	uncached := newDBLPSystem(t, &SystemOptions{MatchCacheBytes: -1})
	ctx := context.Background()
	for _, q := range []Query{
		{Text: "soumen sunita"},
		{Text: "transac", Prefix: true},
		{Text: "mohan"},
	} {
		// Twice, so the second cached run is served from the cache.
		for run := 0; run < 2; run++ {
			a, err := cached.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			b, err := uncached.Query(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Answers) != len(b.Answers) {
				t.Fatalf("query %q run %d: %d cached answers vs %d uncached", q.Text, run, len(a.Answers), len(b.Answers))
			}
			for i := range a.Answers {
				if a.Answers[i].Format() != b.Answers[i].Format() {
					t.Errorf("query %q run %d rank %d differs", q.Text, run, i+1)
				}
			}
		}
	}
}
