package banks

import (
	"context"
	"errors"
	"iter"
)

// QueryIter is QueryStream as a Go 1.23 range-over-func sequence: it
// yields each answer the moment the output heap emits it, paired with a
// nil error, so callers can range over a running search and break early
// to cancel it:
//
//	for a, err := range sys.QueryIter(ctx, banks.Query{Text: "sunita soumen"}) {
//	    if err != nil { ... }
//	    fmt.Println(a.Format())
//	    if enough { break } // cancels the search cleanly
//	}
//
// A search failure (bad query, canceled context, unknown strategy) is
// delivered as a final (nil, err) pair; breaking out of the loop is not
// an error and yields nothing further. The search runs synchronously
// inside the loop — no goroutine to leak, nothing to close.
func (s *System) QueryIter(ctx context.Context, q Query) iter.Seq2[*Answer, error] {
	return func(yield func(*Answer, error) bool) {
		_, err := s.QueryStream(ctx, q, func(a *Answer) bool {
			return yield(a, nil)
		})
		if err != nil && !errors.Is(err, ErrStopped) {
			yield(nil, err)
		}
	}
}
