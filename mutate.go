package banks

// Live mutations: System.Apply journals row-level changes to a
// write-ahead log and folds them into delta overlays over the immutable
// engine — graph.Delta patches the affected nodes' edges and prestige,
// index.Delta diffs the affected rows' token sets — then publishes a new
// engine snapshot (base + delta views) through the same atomic pointer
// Refresh uses. Queries in flight keep the snapshot they pinned; queries
// that begin after Apply returns see the mutated rows. The whole path
// costs milliseconds where Refresh pays the full SQL→graph→index rebuild.
//
// Durability pairs the WAL with the segmented store: the store records
// the last folded WAL sequence, Compact persists the folded engine and
// truncates the journal, and OpenSystem replays only the tail beyond the
// store's sequence — so a crash between Apply and Compact loses nothing.
//
// Apply is not transactional: each row change is applied to the database
// in order, and a failure mid-batch (after the upfront validation pass,
// which catches the ordinary constraint violations) leaves the database
// ahead of the engine. Such a failure is sticky — further Applies are
// refused until Refresh or Compact resynchronizes from the database.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/store"
	"github.com/banksdb/banks/internal/wal"
)

// ErrClosed is returned by queries and mutations that begin after Close.
var ErrClosed = errors.New("banks: system is closed")

// MutationOp is the kind of one row-level change.
type MutationOp int

const (
	MutationInsert MutationOp = iota + 1
	MutationUpdate
	MutationDelete
)

// String returns "insert", "update" or "delete".
func (op MutationOp) String() string {
	switch op {
	case MutationInsert:
		return "insert"
	case MutationUpdate:
		return "update"
	case MutationDelete:
		return "delete"
	}
	return fmt.Sprintf("MutationOp(%d)", int(op))
}

// Mutation is one row-level change for System.Apply. Rows are addressed
// by their rid (the stable row identity exposed across the API, e.g. by
// Answer nodes); Set carries column values using the same Go types Exec
// accepts for placeholders (nil, integers, floats, bools, strings,
// time.Time).
type Mutation struct {
	Op    MutationOp
	Table string
	// RID addresses the row for update and delete; it must be zero for
	// insert (the database assigns the rid — Apply returns it).
	RID int64
	// Set gives the column values: all provided columns for insert
	// (omitted columns are NULL), the columns to change for update. It
	// must be empty for delete.
	Set map[string]interface{}
}

// Insert returns an insert Mutation for table with the given columns.
func Insert(table string, set map[string]interface{}) Mutation {
	return Mutation{Op: MutationInsert, Table: table, Set: set}
}

// Update returns an update Mutation for the row at rid.
func Update(table string, rid int64, set map[string]interface{}) Mutation {
	return Mutation{Op: MutationUpdate, Table: table, RID: rid, Set: set}
}

// Delete returns a delete Mutation for the row at rid.
func Delete(table string, rid int64) Mutation {
	return Mutation{Op: MutationDelete, Table: table, RID: rid}
}

// ApplyResult reports one applied batch.
type ApplyResult struct {
	// Seq is the WAL sequence number the batch was journaled under.
	Seq uint64
	// RIDs has one entry per mutation: the database-assigned rid for
	// inserts, the addressed rid echoed back otherwise.
	RIDs []int64
}

// Apply journals the batch to the write-ahead log, applies it to the
// database, folds it into the live graph and index deltas, and atomically
// publishes a new engine snapshot containing the changes — all without a
// rebuild. It requires SystemOptions.WALPath. The batch is applied in
// order; an upfront validation pass rejects constraint violations
// (unknown rows, duplicate keys, dangling or restricted foreign keys)
// before anything is written.
//
// Mutations cover row changes within the known schema. Schema changes —
// new tables, new foreign keys — and bulk loads go through Refresh.
func (s *System) Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(muts) == 0 {
		return nil, errors.New("banks: empty mutation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.wal == nil {
		return nil, errors.New("banks: live mutations require SystemOptions.WALPath")
	}
	if s.mutErr != nil {
		return nil, s.mutErr
	}
	wmuts, err := s.resolveMutations(muts)
	if err != nil {
		return nil, err
	}
	if err := s.validateResolved(wmuts); err != nil {
		return nil, err
	}
	seq, rids, err := s.applyResolved(wmuts, 0)
	if err != nil {
		return nil, err
	}
	s.appliedSeq = seq
	s.publishLocked(seq)
	return &ApplyResult{Seq: seq, RIDs: rids}, nil
}

// Compact folds the accumulated live mutations back into concrete graph
// and index structures: it rebuilds from the current database contents
// (which already include every applied mutation), persists the compacted
// engine when StorePath is set — recording the applied WAL sequence and
// truncating the journal — and swaps the concrete snapshot in. Queries
// before, during and after compaction see identical results; what changes
// is that the per-query overlay indirection and the journal tail are
// gone. Compact also clears a sticky Apply failure, resynchronizing the
// engine with the database.
func (s *System) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebuildLocked()
}

// PendingMutations reports how many row mutations have been folded into
// the live deltas since the last compaction; 0 for systems without
// WALPath (or right after Compact/Refresh).
func (s *System) PendingMutations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gd == nil {
		return 0
	}
	return s.gd.Pending()
}

// openWAL opens (creating if absent) the configured WAL and replays its
// tail beyond afterSeq: into the database only (bootstrap before the
// initial build) or additionally into the live deltas (withDeltas, the
// store-backed recovery path). No-op without WALPath.
func (s *System) openWAL(afterSeq uint64, withDeltas bool) error {
	if s.opts.WALPath == "" {
		return nil
	}
	if s.opts.PrestigeDamping != 0 {
		return errors.New("banks: live mutations (WALPath) cannot maintain PageRank-style prestige (PrestigeDamping) incrementally; choose one")
	}
	l, err := wal.Open(s.opts.WALPath, afterSeq, func(b wal.Batch) error {
		if withDeltas {
			if _, _, err := s.applyResolved(b.Muts, b.Seq); err != nil {
				return err
			}
		} else if err := s.replayToDB(b); err != nil {
			return err
		}
		s.appliedSeq = b.Seq
		return nil
	})
	if err != nil {
		return fmt.Errorf("banks: opening WAL: %w", err)
	}
	s.wal = l
	return nil
}

// attachLiveMutations wires the WAL onto a store-opened system: the live
// deltas overlay the store's lazy views, and the journal tail beyond the
// store's recorded sequence is replayed through them, restoring the
// pre-crash engine without a rebuild. Callers own st until the System is
// returned, so no locking is needed.
func (s *System) attachLiveMutations(st *store.Store) error {
	if s.opts.WALPath == "" {
		return nil
	}
	after, err := st.WALSeq()
	if err != nil {
		return fmt.Errorf("banks: reading store WAL sequence: %w", err)
	}
	s.gd = graph.NewDelta(st.Graph(), s.db.inner, !s.opts.DisableBackEdgeScaling)
	s.id = index.NewDelta(st.Index())
	s.appliedSeq = after
	if err := s.openWAL(after, true); err != nil {
		return err
	}
	if s.appliedSeq > after {
		s.publishLocked(s.appliedSeq)
	} else {
		// Nothing replayed: the store engine installed by the caller is
		// current; it just needs the sequence stamp. The System has not
		// been returned yet, so the engine is not shared.
		s.eng.Load().walSeq = after
	}
	return nil
}

// replayToDB applies one journaled batch to the database alone — the
// NewSystem bootstrap, where the engine is built afterwards. Insert
// replay asserts that the database assigns the journaled rid: a mismatch
// means the database does not hold the rows the WAL was journaled
// against.
func (s *System) replayToDB(b wal.Batch) error {
	db := s.db.inner
	for i := range b.Muts {
		m := &b.Muts[i]
		switch m.Op {
		case wal.OpInsert:
			rid, err := db.InsertMap(m.Table, colMap(m))
			if err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
			if int64(rid) != m.RID {
				return fmt.Errorf("banks: WAL replay diverged at seq %d: insert into %s assigned rid %d, journal recorded %d — the database does not match the journal's base state",
					b.Seq, m.Table, rid, m.RID)
			}
		case wal.OpUpdate:
			if err := db.Update(m.Table, sqldb.RID(m.RID), colMap(m)); err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
		case wal.OpDelete:
			if err := db.Delete(m.Table, sqldb.RID(m.RID)); err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
		default:
			return fmt.Errorf("banks: WAL replay (seq %d): unknown op %d", b.Seq, m.Op)
		}
	}
	return nil
}

// publishLocked snapshots the live deltas and swaps in a fresh engine
// over them. Each snapshot gets its own match cache, flight group and
// searcher — the same isolation Refresh provides, so warm state never
// leaks stale matches across mutations.
func (s *System) publishLocked(seq uint64) {
	gSnap := s.gd.Snapshot()
	ixSnap := s.id.Snapshot(gSnap.NumNodes())
	eng := newEngine(gSnap, ixSnap, s.opts)
	eng.st = s.store
	if s.store != nil {
		eng.searcher.WithFaultMeter(s.store.FaultedBytes)
	}
	eng.walSeq = seq
	s.eng.Store(eng)
}

// resolveMutations converts the public batch into journal form: ops
// checked, tables resolved against the current graph, column values
// converted, columns sorted for deterministic encoding.
func (s *System) resolveMutations(muts []Mutation) ([]wal.Mutation, error) {
	g := s.engine().g
	out := make([]wal.Mutation, len(muts))
	for i, m := range muts {
		if m.Table == "" {
			return nil, fmt.Errorf("banks: mutation %d has no table", i)
		}
		if g.TableID(m.Table) < 0 {
			return nil, fmt.Errorf("banks: mutation %d: table %q is not part of the current graph; new tables need a full Refresh", i, m.Table)
		}
		wm := wal.Mutation{Table: m.Table, RID: m.RID}
		switch m.Op {
		case MutationInsert:
			wm.Op = wal.OpInsert
			if m.RID != 0 {
				return nil, fmt.Errorf("banks: mutation %d: insert must not address a rid (the database assigns it)", i)
			}
			if len(m.Set) == 0 {
				return nil, fmt.Errorf("banks: mutation %d: insert with no column values", i)
			}
		case MutationUpdate:
			wm.Op = wal.OpUpdate
			if m.RID < 0 {
				return nil, fmt.Errorf("banks: mutation %d: negative rid", i)
			}
			if len(m.Set) == 0 {
				return nil, fmt.Errorf("banks: mutation %d: update with no column values", i)
			}
		case MutationDelete:
			wm.Op = wal.OpDelete
			if m.RID < 0 {
				return nil, fmt.Errorf("banks: mutation %d: negative rid", i)
			}
			if len(m.Set) != 0 {
				return nil, fmt.Errorf("banks: mutation %d: delete must not carry column values", i)
			}
		default:
			return nil, fmt.Errorf("banks: mutation %d: unknown op %v", i, m.Op)
		}
		cols := make([]string, 0, len(m.Set))
		for c := range m.Set {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			v, err := toValue(m.Set[c])
			if err != nil {
				return nil, fmt.Errorf("banks: mutation %d, column %s: %w", i, c, err)
			}
			wm.Cols = append(wm.Cols, c)
			wm.Vals = append(wm.Vals, v)
		}
		out[i] = wm
	}
	return out, nil
}

// simKey identifies one row during batch validation and folding.
type simKey struct {
	table string // lowercased
	rid   sqldb.RID
}

// validateResolved rejects a batch that would violate database
// constraints, before anything is written — mirroring the checks Insert,
// Update and Delete enforce (NOT NULL, key uniqueness, foreign-key
// existence and delete/key-change restriction) while simulating the
// batch's own inserts and deletes, so intra-batch dependencies (insert a
// paper, then a citation to it; delete the citations, then the paper)
// validate correctly. The mirror is conservative: anything it cannot
// prove safe is left to the database, whose mid-batch failure is sticky.
func (s *System) validateResolved(wmuts []wal.Mutation) error {
	db := s.db.inner
	simDeleted := map[simKey]bool{}
	simFreedPK := map[string]map[sqldb.Value]bool{} // table -> pk values freed by in-batch deletes
	simAddedPK := map[string]map[sqldb.Value]bool{} // table -> pk values added by in-batch inserts
	type simIns struct {
		tbl  *sqldb.Table
		vals map[string]sqldb.Value // lowercased column -> coerced value
	}
	var simInserted []simIns

	// targetLive reports whether a single-column key value resolves to a
	// live referenced row once the batch's own effects are considered.
	targetLive := func(refTable string, v sqldb.Value) (bool, error) {
		ref := db.Table(refTable)
		if ref == nil {
			return false, fmt.Errorf("no such table %s", refTable)
		}
		pk := ref.Schema().PrimaryKey
		if len(pk) != 1 {
			return false, fmt.Errorf("table %s has no single-column primary key", refTable)
		}
		cv, err := v.Convert(ref.Schema().Column(pk[0]).Type)
		if err != nil {
			return false, err
		}
		lower := strings.ToLower(refTable)
		if simAddedPK[lower][cv] {
			return true, nil
		}
		rid := ref.LookupPK([]sqldb.Value{cv})
		return rid >= 0 && !simDeleted[simKey{lower, rid}], nil
	}

	for i := range wmuts {
		m := &wmuts[i]
		tbl := db.Table(m.Table)
		if tbl == nil {
			return fmt.Errorf("banks: mutation %d: no such table %s", i, m.Table)
		}
		sch := tbl.Schema()
		lower := strings.ToLower(m.Table)

		// Coerce the provided values to their column types up front, so
		// conversion failures surface here rather than mid-batch.
		vals := make(map[string]sqldb.Value, len(m.Cols))
		for j, c := range m.Cols {
			col := sch.Column(c)
			if col == nil {
				return fmt.Errorf("banks: mutation %d: no column %s.%s", i, m.Table, c)
			}
			cv, err := m.Vals[j].Convert(col.Type)
			if err != nil {
				return fmt.Errorf("banks: mutation %d: column %s.%s: %w", i, m.Table, c, err)
			}
			vals[strings.ToLower(c)] = cv
		}

		switch m.Op {
		case wal.OpInsert:
			for _, col := range sch.Columns {
				if v, ok := vals[strings.ToLower(col.Name)]; col.NotNull && (!ok || v.IsNull()) {
					return fmt.Errorf("banks: mutation %d: %s.%s is NOT NULL", i, m.Table, col.Name)
				}
			}
			if len(sch.PrimaryKey) > 0 {
				pkVals := make([]sqldb.Value, len(sch.PrimaryKey))
				for j, name := range sch.PrimaryKey {
					v, ok := vals[strings.ToLower(name)]
					if !ok || v.IsNull() {
						return fmt.Errorf("banks: mutation %d: primary key %s.%s missing", i, m.Table, name)
					}
					pkVals[j] = v
				}
				dup := false
				if len(pkVals) == 1 {
					if simAddedPK[lower][pkVals[0]] {
						dup = true
					} else if rid := tbl.LookupPK(pkVals); rid >= 0 && !simFreedPK[lower][pkVals[0]] {
						dup = true
					}
					if !dup {
						if simAddedPK[lower] == nil {
							simAddedPK[lower] = map[sqldb.Value]bool{}
						}
						simAddedPK[lower][pkVals[0]] = true
						delete(simFreedPK[lower], pkVals[0])
					}
				} else if tbl.LookupPK(pkVals) >= 0 {
					dup = true
				}
				if dup {
					return fmt.Errorf("banks: mutation %d: duplicate key in %s", i, m.Table)
				}
			}
			if err := checkFKs(sch, vals, targetLive, i, m.Table); err != nil {
				return err
			}
			simInserted = append(simInserted, simIns{tbl: tbl, vals: vals})

		case wal.OpUpdate:
			rid := sqldb.RID(m.RID)
			if !tbl.Live(rid) || simDeleted[simKey{lower, rid}] {
				return fmt.Errorf("banks: mutation %d: no such row: %s rid %d", i, m.Table, m.RID)
			}
			keyChanged := false
			for _, name := range sch.PrimaryKey {
				if _, ok := vals[strings.ToLower(name)]; ok {
					keyChanged = true
				}
			}
			if keyChanged && len(db.Referencing(m.Table, rid)) > 0 {
				return fmt.Errorf("banks: mutation %d: cannot change the key of %s rid %d while other rows reference it", i, m.Table, m.RID)
			}
			if err := checkFKs(sch, vals, targetLive, i, m.Table); err != nil {
				return err
			}

		case wal.OpDelete:
			rid := sqldb.RID(m.RID)
			key := simKey{lower, rid}
			if !tbl.Live(rid) || simDeleted[key] {
				return fmt.Errorf("banks: mutation %d: no such row: %s rid %d", i, m.Table, m.RID)
			}
			for _, ref := range db.Referencing(m.Table, rid) {
				refLower := strings.ToLower(ref.Table)
				for _, r2 := range ref.RIDs {
					if !simDeleted[simKey{refLower, r2}] {
						return fmt.Errorf("banks: mutation %d: %s rid %d is referenced by %s.%s; delete the referencing rows first (in the same batch is fine)",
							i, m.Table, m.RID, ref.Table, ref.Column)
					}
				}
			}
			// In-batch inserts referencing this row block the delete too.
			if pk := sch.PrimaryKey; len(pk) == 1 {
				pkIdx := sch.ColumnIndex(pk[0])
				pkVal := tbl.Row(rid)[pkIdx]
				for _, ins := range simInserted {
					for _, fk := range ins.tbl.Schema().ForeignKeys {
						if !strings.EqualFold(fk.RefTable, m.Table) {
							continue
						}
						v, ok := ins.vals[strings.ToLower(fk.Column)]
						if !ok || v.IsNull() {
							continue
						}
						if cv, err := v.Convert(pkVal.T); err == nil && cv == pkVal {
							return fmt.Errorf("banks: mutation %d: %s rid %d is referenced by an insert earlier in this batch", i, m.Table, m.RID)
						}
					}
				}
				if simFreedPK[lower] == nil {
					simFreedPK[lower] = map[sqldb.Value]bool{}
				}
				simFreedPK[lower][pkVal] = true
				delete(simAddedPK[lower], pkVal)
			}
			simDeleted[key] = true
		}
	}
	return nil
}

// checkFKs validates the provided foreign-key columns of one row against
// the batch-aware target lookup.
func checkFKs(sch *sqldb.TableSchema, vals map[string]sqldb.Value,
	targetLive func(string, sqldb.Value) (bool, error), i int, table string) error {
	for _, fk := range sch.ForeignKeys {
		v, ok := vals[strings.ToLower(fk.Column)]
		if !ok || v.IsNull() {
			continue
		}
		live, err := targetLive(fk.RefTable, v)
		if err != nil {
			return fmt.Errorf("banks: mutation %d: %s.%s: %v", i, table, fk.Column, err)
		}
		if !live {
			return fmt.Errorf("banks: mutation %d: %s.%s = %s has no match in %s", i, table, fk.Column, v, fk.RefTable)
		}
	}
	return nil
}

// applyResolved runs one validated batch through the database, the
// journal and the live deltas. replaySeq is 0 on the Apply path (the
// batch is appended to the WAL) and the journaled sequence during replay
// (insert rids are asserted against the journal instead). Callers hold
// s.mu (or own the System exclusively, during open).
func (s *System) applyResolved(wmuts []wal.Mutation, replaySeq uint64) (uint64, []int64, error) {
	db := s.db.inner
	preView := s.gd.Snapshot()

	// First-touch capture per row: the token set and node before the
	// batch, so one diff per row covers chains like update-then-delete.
	type rowTouch struct {
		table   string
		rid     sqldb.RID
		oldToks map[string]bool
		oldNode graph.NodeID
	}
	touchIdx := map[simKey]int{}
	var touched []rowTouch
	touch := func(table string, rid sqldb.RID, exists bool) {
		k := simKey{strings.ToLower(table), rid}
		if _, ok := touchIdx[k]; ok {
			return
		}
		rt := rowTouch{table: table, rid: rid, oldNode: graph.NoNode}
		if exists {
			rt.oldToks = s.rowTokens(table, rid)
			rt.oldNode = preView.NodeOf(table, rid)
		}
		touchIdx[k] = len(touched)
		touched = append(touched, rt)
	}

	// fail distinguishes a clean first-mutation failure (nothing written,
	// the caller can retry) from a mid-batch one, which leaves the
	// database ahead of the engine and is therefore sticky until a
	// rebuild resynchronizes them.
	fail := func(i int, err error) error {
		if replaySeq > 0 {
			return fmt.Errorf("banks: WAL replay (seq %d), mutation %d: %w", replaySeq, i, err)
		}
		if i == 0 {
			return fmt.Errorf("banks: applying mutation 0: %w", err)
		}
		s.mutErr = fmt.Errorf("banks: mutation batch failed after %d of %d changes reached the database (%v); the engine no longer matches it — Refresh or Compact to resynchronize", i, len(wmuts), err)
		return s.mutErr
	}

	var changes []graph.RowChange
	rids := make([]int64, len(wmuts))
	for i := range wmuts {
		m := &wmuts[i]
		switch m.Op {
		case wal.OpInsert:
			rid, err := db.InsertMap(m.Table, colMap(m))
			if err != nil {
				return 0, nil, fail(i, err)
			}
			if replaySeq > 0 {
				if int64(rid) != m.RID {
					return 0, nil, fmt.Errorf("banks: WAL replay diverged at seq %d: insert into %s assigned rid %d, journal recorded %d — the database does not match the journal's base state",
						replaySeq, m.Table, rid, m.RID)
				}
			} else {
				m.RID = int64(rid)
			}
			touch(m.Table, rid, false)
			changes = append(changes, graph.RowChange{Op: graph.RowInsert, Table: m.Table, RID: rid})
			rids[i] = int64(rid)

		case wal.OpUpdate:
			rid := sqldb.RID(m.RID)
			touch(m.Table, rid, true)
			relevant := graphRelevantCols(db.Table(m.Table).Schema(), m.Cols)
			var oldT []graph.RowRef
			if relevant {
				var err error
				if oldT, err = s.gd.Targets(m.Table, rid); err != nil {
					return 0, nil, fail(i, err)
				}
			}
			if err := db.Update(m.Table, rid, colMap(m)); err != nil {
				return 0, nil, fail(i, err)
			}
			// A change to non-key, non-FK columns cannot move edges or
			// prestige; only the index diff below applies.
			if relevant {
				changes = append(changes, graph.RowChange{Op: graph.RowUpdate, Table: m.Table, RID: rid, OldTargets: oldT})
			}
			rids[i] = m.RID

		case wal.OpDelete:
			rid := sqldb.RID(m.RID)
			touch(m.Table, rid, true)
			oldT, err := s.gd.Targets(m.Table, rid)
			if err != nil {
				return 0, nil, fail(i, err)
			}
			if err := db.Delete(m.Table, rid); err != nil {
				return 0, nil, fail(i, err)
			}
			changes = append(changes, graph.RowChange{Op: graph.RowDelete, Table: m.Table, RID: rid, OldTargets: oldT})
			rids[i] = m.RID

		default:
			return 0, nil, fail(i, fmt.Errorf("unknown op %d", m.Op))
		}
	}

	seq := replaySeq
	if replaySeq == 0 {
		var err error
		if seq, err = s.wal.Append(wmuts); err != nil {
			s.mutErr = fmt.Errorf("banks: batch reached the database but journaling failed (%v); Refresh or Compact to resynchronize", err)
			return 0, nil, s.mutErr
		}
	}

	if len(changes) > 0 {
		if err := s.gd.Apply(changes); err != nil {
			if replaySeq > 0 {
				return 0, nil, fmt.Errorf("banks: WAL replay (seq %d): folding into graph delta: %w", replaySeq, err)
			}
			s.mutErr = fmt.Errorf("banks: batch reached the database but the graph delta rejected it (%v); Refresh or Compact to resynchronize", err)
			return 0, nil, s.mutErr
		}
	}
	gSnap := s.gd.Snapshot()
	for _, rt := range touched {
		newToks := s.rowTokens(rt.table, rt.rid)
		node := rt.oldNode
		if node == graph.NoNode {
			node = gSnap.NodeOf(rt.table, rt.rid)
		}
		if node == graph.NoNode {
			continue // inserted and deleted within the batch: no tokens either side
		}
		for tok := range rt.oldToks {
			if !newToks[tok] {
				s.id.Remove(tok, node)
			}
		}
		for tok := range newToks {
			if !rt.oldToks[tok] {
				s.id.Add(tok, node)
			}
		}
	}
	return seq, rids, nil
}

// rowTokens returns the token set of the row's text columns — the same
// per-row view the index build tokenizes.
func (s *System) rowTokens(table string, rid sqldb.RID) map[string]bool {
	tbl := s.db.inner.Table(table)
	if tbl == nil {
		return nil
	}
	row := tbl.Row(rid)
	if row == nil {
		return nil
	}
	set := make(map[string]bool)
	for i, c := range tbl.Schema().Columns {
		if c.Type != sqldb.TypeText || row[i].IsNull() {
			continue
		}
		for _, tok := range index.Tokenize(row[i].S) {
			set[tok] = true
		}
	}
	return set
}

// graphRelevantCols reports whether touching cols can move graph
// structure: foreign-key columns rewire edges, key columns re-target the
// references of other rows.
func graphRelevantCols(sch *sqldb.TableSchema, cols []string) bool {
	for _, c := range cols {
		for _, fk := range sch.ForeignKeys {
			if strings.EqualFold(fk.Column, c) {
				return true
			}
		}
		for _, pk := range sch.PrimaryKey {
			if strings.EqualFold(pk, c) {
				return true
			}
		}
	}
	return false
}

// colMap renders a journal mutation's columns as the map form the
// database takes.
func colMap(m *wal.Mutation) map[string]sqldb.Value {
	set := make(map[string]sqldb.Value, len(m.Cols))
	for i, c := range m.Cols {
		set[c] = m.Vals[i]
	}
	return set
}
