package banks

// Live mutations: System.Apply journals row-level changes to a
// write-ahead log and folds them into delta overlays over the immutable
// engine — graph.Delta patches the affected nodes' edges and prestige,
// index.Delta diffs the affected rows' token sets — then publishes a new
// engine snapshot (base + delta views) through the same atomic pointer
// Refresh uses. Queries in flight keep the snapshot they pinned; queries
// that begin after Apply returns see the mutated rows. The whole path
// costs milliseconds where Refresh pays the full SQL→graph→index rebuild.
//
// Durability pairs the WAL with the segmented store: the store records
// the last folded WAL sequence, Compact persists the folded engine and
// truncates the journal, and OpenSystem replays only the tail beyond the
// store's sequence — so a crash between Apply and Compact loses nothing.
//
// Apply is not transactional: each row change is applied to the database
// in order, and a failure mid-batch (after the upfront validation pass,
// which catches the ordinary constraint violations) leaves the database
// ahead of the engine. Such a failure is sticky — further Applies are
// refused until Refresh or Compact resynchronizes from the database.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/store"
	"github.com/banksdb/banks/internal/wal"
)

// ErrClosed is returned by queries and mutations that begin after Close.
var ErrClosed = errors.New("banks: system is closed")

// MutationOp is the kind of one row-level change.
type MutationOp int

const (
	MutationInsert MutationOp = iota + 1
	MutationUpdate
	MutationDelete
)

// String returns "insert", "update" or "delete".
func (op MutationOp) String() string {
	switch op {
	case MutationInsert:
		return "insert"
	case MutationUpdate:
		return "update"
	case MutationDelete:
		return "delete"
	}
	return fmt.Sprintf("MutationOp(%d)", int(op))
}

// Mutation is one row-level change for System.Apply. Rows are addressed
// by their rid (the stable row identity exposed across the API, e.g. by
// Answer nodes); Set carries column values using the same Go types Exec
// accepts for placeholders (nil, integers, floats, bools, strings,
// time.Time).
type Mutation struct {
	Op    MutationOp
	Table string
	// RID addresses the row for update and delete; it must be zero for
	// insert (the database assigns the rid — Apply returns it).
	RID int64
	// Set gives the column values: all provided columns for insert
	// (omitted columns are NULL), the columns to change for update. It
	// must be empty for delete.
	Set map[string]interface{}
}

// Insert returns an insert Mutation for table with the given columns.
func Insert(table string, set map[string]interface{}) Mutation {
	return Mutation{Op: MutationInsert, Table: table, Set: set}
}

// Update returns an update Mutation for the row at rid.
func Update(table string, rid int64, set map[string]interface{}) Mutation {
	return Mutation{Op: MutationUpdate, Table: table, RID: rid, Set: set}
}

// Delete returns a delete Mutation for the row at rid.
func Delete(table string, rid int64) Mutation {
	return Mutation{Op: MutationDelete, Table: table, RID: rid}
}

// ApplyResult reports one applied batch.
type ApplyResult struct {
	// Seq is the WAL sequence number the batch was journaled under.
	Seq uint64
	// RIDs has one entry per mutation: the database-assigned rid for
	// inserts, the addressed rid echoed back otherwise.
	RIDs []int64
}

// Apply journals the batch to the write-ahead log, applies it to the
// database, folds it into the live graph and index deltas, and atomically
// publishes a new engine snapshot containing the changes — all without a
// rebuild. It requires SystemOptions.WALPath. The batch is applied in
// order; an upfront validation pass rejects constraint violations
// (unknown rows, duplicate keys, dangling or restricted foreign keys)
// before anything is written.
//
// Mutations cover row changes within the known schema. Schema changes —
// new tables, new foreign keys — and bulk loads go through Refresh.
func (s *System) Apply(ctx context.Context, muts []Mutation) (*ApplyResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(muts) == 0 {
		return nil, errors.New("banks: empty mutation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if s.wal == nil {
		return nil, errors.New("banks: live mutations require SystemOptions.WALPath")
	}
	if s.mutErr != nil {
		return nil, s.mutErr
	}
	wmuts, err := s.resolveMutations(muts)
	if err != nil {
		return nil, err
	}
	if err := s.validateResolved(wmuts); err != nil {
		return nil, err
	}
	seq, rids, eff, err := s.applyResolved(wmuts, 0)
	if err != nil {
		return nil, err
	}
	s.appliedSeq = seq
	s.publishLocked(seq, eff.touched, eff.structural)
	return &ApplyResult{Seq: seq, RIDs: rids}, nil
}

// Compact folds the accumulated live mutations back into concrete graph
// and index structures, persists the compacted engine when StorePath is
// set — recording the folded WAL sequence and truncating the journal —
// and swaps the concrete snapshot in. Queries before, during and after
// compaction see identical results; what changes is that the per-query
// overlay indirection and the journal tail are gone. Compact also clears
// a sticky Apply failure, resynchronizing the engine with the database.
//
// Compact does not block Apply for the duration of the fold: it
// snapshots the overlay, materializes and persists the compacted base
// off to the side, and takes the writer lock only to fold the batches
// that arrived during the build onto the fresh base and swap — so a
// concurrent Apply stalls for the final fold+swap, not the rebuild.
// Concurrent Compacts serialize; a Refresh that lands mid-build wins
// (its engine already contains everything) and the aside work is
// discarded.
func (s *System) Compact() error {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()

	// Phase 1 (brief lock): snapshot the overlay at a fixed sequence and
	// start logging the first-touch state of every row Apply touches from
	// here on, so the tail can be folded as net per-row changes later.
	s.mu.Lock()
	if s.closed.Load() {
		s.mu.Unlock()
		return ErrClosed
	}
	if s.wal == nil || s.gd == nil || s.mutErr != nil {
		// No live overlay to fold aside (plain systems), or a mid-batch
		// failure left the database ahead of the deltas — the blocking
		// rebuild from the database is the only correct path.
		defer s.mu.Unlock()
		return s.rebuildLocked()
	}
	gView := s.gd.Snapshot()
	ixView := s.id.Snapshot(gView.NumNodes())
	s0 := s.appliedSeq
	gen := s.rebuildGen
	var warm []string
	if old := s.eng.Load(); old != nil && old.cache != nil {
		warm = old.cache.HotKeys(warmKeyLimit)
	}
	s.tail = newTailLog()
	s.mu.Unlock()

	dropTail := func() {
		s.mu.Lock()
		if s.tail != nil {
			s.tail = nil
		}
		s.mu.Unlock()
	}

	// Phase 2 (no lock): fold the immutable overlay snapshot into
	// concrete structures and persist them beside the live store. Apply
	// keeps publishing against the old base meanwhile.
	g1, remap := graph.Materialize(gView)
	ix1, err := index.Materialize(ixView, remap, g1.NumNodes())
	if err != nil {
		dropTail()
		return err
	}
	tmpStore := ""
	if s.opts.StorePath != "" {
		tmpStore = s.opts.StorePath + ".compact"
		se := store.Engine{Graph: g1, Index: ix1, WarmKeys: warm, WALSeq: s0}
		if err := store.WriteFile(tmpStore, se); err != nil {
			dropTail()
			return fmt.Errorf("banks: persisting compacted engine: %w", err)
		}
	}

	if s.compactHook != nil {
		s.compactHook()
	}

	// Phase 3 (lock): replay the tail onto the fresh base and swap.
	s.mu.Lock()
	defer s.mu.Unlock()
	tail := s.tail
	s.tail = nil
	discard := func() {
		if tmpStore != "" {
			os.Remove(tmpStore)
		}
	}
	if s.closed.Load() {
		discard()
		return ErrClosed
	}
	if s.rebuildGen != gen {
		// A Refresh (or recovery rebuild) replaced the base mid-build; its
		// engine and store already contain everything we folded.
		discard()
		return nil
	}
	if s.mutErr != nil {
		// A batch failed mid-flight during the build: the database is
		// ahead of both the old deltas and our tail log.
		discard()
		return s.rebuildLocked()
	}
	gd1 := graph.NewDelta(g1, s.db.inner, !s.opts.DisableBackEdgeScaling)
	id1 := index.NewDelta(ix1)
	if err := s.foldTail(tail, g1, gd1, id1); err != nil {
		discard()
		return s.rebuildLocked()
	}
	if tmpStore != "" {
		if err := os.Rename(tmpStore, s.opts.StorePath); err != nil {
			discard()
			return fmt.Errorf("banks: installing compacted store: %w", err)
		}
	}
	s.gd, s.id = gd1, id1

	prev := s.eng.Load()
	var eng *engine
	tailEmpty := tail == nil || len(tail.rows) == 0
	carry := tailEmpty && prev != nil &&
		gView.DeltaNodes() == 0 && gView.Tombstones() == 0
	switch {
	case carry:
		// The compacted base keeps the exact node numbering the serving
		// snapshot reads (identity remap, no tail), so the warm state
		// carries over whole. The frontier pool is still reset
		// (structural=true): its memoized iterators reference the
		// pre-compaction view.
		eng = newEngineFrom(prev, g1, ix1, s.opts, nil, true)
		s.warmPublishes.Add(1)
	case tailEmpty:
		eng = newEngine(g1, ix1, s.opts)
	default:
		gSnap := gd1.Snapshot()
		eng = newEngine(gSnap, id1.Snapshot(gSnap.NumNodes()), s.opts)
	}
	if !carry && eng.cache != nil && len(warm) > 0 {
		// Fresh cache (numbering changed): rewarm the old snapshot's hot
		// terms asynchronously against the new index view.
		go eng.cache.Warm(eng.ix, eng.epoch, warm)
	}
	eng.walSeq = s.appliedSeq
	s.eng.Store(eng)

	if s.opts.StorePath != "" && tailEmpty {
		// The persisted store records the folded sequence, so the journal
		// is redundant. With a non-empty tail the records beyond s0 are
		// still the only durable copy of those batches — the WAL keeps
		// them (Truncate drops the whole journal, not a prefix), and
		// recovery replays only past the store's sequence.
		if err := s.wal.Truncate(); err != nil {
			return fmt.Errorf("banks: truncating WAL after compaction: %w", err)
		}
	}
	s.rebuildGen++
	s.mutErr = nil
	return nil
}

// PendingMutations reports how many row mutations have been folded into
// the live deltas since the last compaction; 0 for systems without
// WALPath (or right after Compact/Refresh).
func (s *System) PendingMutations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gd == nil {
		return 0
	}
	return s.gd.Pending()
}

// openWAL opens (creating if absent) the configured WAL and replays its
// tail beyond afterSeq: into the database only (bootstrap before the
// initial build) or additionally into the live deltas (withDeltas, the
// store-backed recovery path). It returns the accumulated effects of the
// replayed batches, for the caller's single publish. No-op without
// WALPath.
func (s *System) openWAL(afterSeq uint64, withDeltas bool) (batchEffects, error) {
	var eff batchEffects
	if s.opts.WALPath == "" {
		return eff, nil
	}
	if s.opts.PrestigeDamping != 0 {
		return eff, errors.New("banks: live mutations (WALPath) cannot maintain PageRank-style prestige (PrestigeDamping) incrementally; choose one")
	}
	l, err := wal.Open(s.opts.WALPath, afterSeq, func(b wal.Batch) error {
		if withDeltas {
			_, _, be, err := s.applyResolved(b.Muts, b.Seq)
			if err != nil {
				return err
			}
			eff.touched = append(eff.touched, be.touched...)
			eff.structural = eff.structural || be.structural
		} else if err := s.replayToDB(b); err != nil {
			return err
		}
		s.appliedSeq = b.Seq
		return nil
	})
	if err != nil {
		return eff, fmt.Errorf("banks: opening WAL: %w", err)
	}
	s.wal = l
	return eff, nil
}

// attachLiveMutations wires the WAL onto a store-opened system: the live
// deltas overlay the store's lazy views, and the journal tail beyond the
// store's recorded sequence is replayed through them, restoring the
// pre-crash engine without a rebuild. Callers own st until the System is
// returned, so no locking is needed.
func (s *System) attachLiveMutations(st *store.Store) error {
	if s.opts.WALPath == "" {
		return nil
	}
	after, err := st.WALSeq()
	if err != nil {
		return fmt.Errorf("banks: reading store WAL sequence: %w", err)
	}
	s.gd = graph.NewDelta(st.Graph(), s.db.inner, !s.opts.DisableBackEdgeScaling)
	s.id = index.NewDelta(st.Index())
	s.appliedSeq = after
	eff, err := s.openWAL(after, true)
	if err != nil {
		return err
	}
	if s.appliedSeq > after {
		s.publishLocked(s.appliedSeq, eff.touched, eff.structural)
	}
	// Nothing replayed: the store engine installed by the caller already
	// carries the store's sequence stamp (installStoreEngine sets walSeq
	// before publishing the engine — it is never mutated afterwards).
	return nil
}

// replayToDB applies one journaled batch to the database alone — the
// NewSystem bootstrap, where the engine is built afterwards. Insert
// replay asserts that the database assigns the journaled rid: a mismatch
// means the database does not hold the rows the WAL was journaled
// against.
func (s *System) replayToDB(b wal.Batch) error {
	db := s.db.inner
	for i := range b.Muts {
		m := &b.Muts[i]
		switch m.Op {
		case wal.OpInsert:
			rid, err := db.InsertMap(m.Table, colMap(m))
			if err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
			if int64(rid) != m.RID {
				return fmt.Errorf("banks: WAL replay diverged at seq %d: insert into %s assigned rid %d, journal recorded %d — the database does not match the journal's base state",
					b.Seq, m.Table, rid, m.RID)
			}
		case wal.OpUpdate:
			if err := db.Update(m.Table, sqldb.RID(m.RID), colMap(m)); err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
		case wal.OpDelete:
			if err := db.Delete(m.Table, sqldb.RID(m.RID)); err != nil {
				return fmt.Errorf("banks: WAL replay (seq %d): %w", b.Seq, err)
			}
		default:
			return fmt.Errorf("banks: WAL replay (seq %d): unknown op %d", b.Seq, m.Op)
		}
	}
	return nil
}

// publishLocked snapshots the live deltas and swaps in the next engine
// over them, carrying the previous snapshot's warm state forward:
// touched lists the terms whose match sets the batch changed (they and
// their covering prefix entries are invalidated under a new epoch;
// everything else stays hot), and structural reports whether the batch
// moved any node or edge (a structural publish bumps the frontier pool
// generation; a pure text update keeps the memoized frontiers too).
// Overlay publishes only ever append node ids, so the carried entries
// always name valid nodes of the new snapshot.
func (s *System) publishLocked(seq uint64, touched []string, structural bool) {
	gSnap := s.gd.Snapshot()
	ixSnap := s.id.Snapshot(gSnap.NumNodes())
	prev := s.eng.Load()
	eng := newEngineFrom(prev, gSnap, ixSnap, s.opts, touched, structural)
	eng.st = s.store
	if s.store != nil {
		eng.searcher.WithFaultMeter(s.store.FaultedBytes)
	}
	eng.walSeq = seq
	s.eng.Store(eng)
	if prev != nil {
		s.warmPublishes.Add(1)
		if !structural {
			s.frontierCarries.Add(1)
		}
	}
}

// resolveMutations converts the public batch into journal form: ops
// checked, tables resolved against the current graph, column values
// converted, columns sorted for deterministic encoding.
func (s *System) resolveMutations(muts []Mutation) ([]wal.Mutation, error) {
	g := s.engine().g
	out := make([]wal.Mutation, len(muts))
	for i, m := range muts {
		if m.Table == "" {
			return nil, fmt.Errorf("banks: mutation %d has no table", i)
		}
		if g.TableID(m.Table) < 0 {
			return nil, fmt.Errorf("banks: mutation %d: table %q is not part of the current graph; new tables need a full Refresh", i, m.Table)
		}
		wm := wal.Mutation{Table: m.Table, RID: m.RID}
		switch m.Op {
		case MutationInsert:
			wm.Op = wal.OpInsert
			if m.RID != 0 {
				return nil, fmt.Errorf("banks: mutation %d: insert must not address a rid (the database assigns it)", i)
			}
			if len(m.Set) == 0 {
				return nil, fmt.Errorf("banks: mutation %d: insert with no column values", i)
			}
		case MutationUpdate:
			wm.Op = wal.OpUpdate
			if m.RID < 0 {
				return nil, fmt.Errorf("banks: mutation %d: negative rid", i)
			}
			if len(m.Set) == 0 {
				return nil, fmt.Errorf("banks: mutation %d: update with no column values", i)
			}
		case MutationDelete:
			wm.Op = wal.OpDelete
			if m.RID < 0 {
				return nil, fmt.Errorf("banks: mutation %d: negative rid", i)
			}
			if len(m.Set) != 0 {
				return nil, fmt.Errorf("banks: mutation %d: delete must not carry column values", i)
			}
		default:
			return nil, fmt.Errorf("banks: mutation %d: unknown op %v", i, m.Op)
		}
		cols := make([]string, 0, len(m.Set))
		for c := range m.Set {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, c := range cols {
			v, err := toValue(m.Set[c])
			if err != nil {
				return nil, fmt.Errorf("banks: mutation %d, column %s: %w", i, c, err)
			}
			wm.Cols = append(wm.Cols, c)
			wm.Vals = append(wm.Vals, v)
		}
		out[i] = wm
	}
	return out, nil
}

// simKey identifies one row during batch validation and folding.
type simKey struct {
	table string // lowercased
	rid   sqldb.RID
}

// validateResolved rejects a batch that would violate database
// constraints, before anything is written — mirroring the checks Insert,
// Update and Delete enforce (NOT NULL, key uniqueness, foreign-key
// existence and delete/key-change restriction) while simulating the
// batch's own inserts and deletes, so intra-batch dependencies (insert a
// paper, then a citation to it; delete the citations, then the paper)
// validate correctly. The mirror is conservative: anything it cannot
// prove safe is left to the database, whose mid-batch failure is sticky.
func (s *System) validateResolved(wmuts []wal.Mutation) error {
	db := s.db.inner
	simDeleted := map[simKey]bool{}
	simFreedPK := map[string]map[sqldb.Value]bool{} // table -> pk values freed by in-batch deletes
	simAddedPK := map[string]map[sqldb.Value]bool{} // table -> pk values added by in-batch inserts
	type simIns struct {
		tbl  *sqldb.Table
		vals map[string]sqldb.Value // lowercased column -> coerced value
	}
	var simInserted []simIns

	// targetLive reports whether a single-column key value resolves to a
	// live referenced row once the batch's own effects are considered.
	targetLive := func(refTable string, v sqldb.Value) (bool, error) {
		ref := db.Table(refTable)
		if ref == nil {
			return false, fmt.Errorf("no such table %s", refTable)
		}
		pk := ref.Schema().PrimaryKey
		if len(pk) != 1 {
			return false, fmt.Errorf("table %s has no single-column primary key", refTable)
		}
		cv, err := v.Convert(ref.Schema().Column(pk[0]).Type)
		if err != nil {
			return false, err
		}
		lower := strings.ToLower(refTable)
		if simAddedPK[lower][cv] {
			return true, nil
		}
		rid := ref.LookupPK([]sqldb.Value{cv})
		return rid >= 0 && !simDeleted[simKey{lower, rid}], nil
	}

	for i := range wmuts {
		m := &wmuts[i]
		tbl := db.Table(m.Table)
		if tbl == nil {
			return fmt.Errorf("banks: mutation %d: no such table %s", i, m.Table)
		}
		sch := tbl.Schema()
		lower := strings.ToLower(m.Table)

		// Coerce the provided values to their column types up front, so
		// conversion failures surface here rather than mid-batch.
		vals := make(map[string]sqldb.Value, len(m.Cols))
		for j, c := range m.Cols {
			col := sch.Column(c)
			if col == nil {
				return fmt.Errorf("banks: mutation %d: no column %s.%s", i, m.Table, c)
			}
			cv, err := m.Vals[j].Convert(col.Type)
			if err != nil {
				return fmt.Errorf("banks: mutation %d: column %s.%s: %w", i, m.Table, c, err)
			}
			vals[strings.ToLower(c)] = cv
		}

		switch m.Op {
		case wal.OpInsert:
			for _, col := range sch.Columns {
				if v, ok := vals[strings.ToLower(col.Name)]; col.NotNull && (!ok || v.IsNull()) {
					return fmt.Errorf("banks: mutation %d: %s.%s is NOT NULL", i, m.Table, col.Name)
				}
			}
			if len(sch.PrimaryKey) > 0 {
				pkVals := make([]sqldb.Value, len(sch.PrimaryKey))
				for j, name := range sch.PrimaryKey {
					v, ok := vals[strings.ToLower(name)]
					if !ok || v.IsNull() {
						return fmt.Errorf("banks: mutation %d: primary key %s.%s missing", i, m.Table, name)
					}
					pkVals[j] = v
				}
				dup := false
				if len(pkVals) == 1 {
					if simAddedPK[lower][pkVals[0]] {
						dup = true
					} else if rid := tbl.LookupPK(pkVals); rid >= 0 && !simFreedPK[lower][pkVals[0]] {
						dup = true
					}
					if !dup {
						if simAddedPK[lower] == nil {
							simAddedPK[lower] = map[sqldb.Value]bool{}
						}
						simAddedPK[lower][pkVals[0]] = true
						delete(simFreedPK[lower], pkVals[0])
					}
				} else if tbl.LookupPK(pkVals) >= 0 {
					dup = true
				}
				if dup {
					return fmt.Errorf("banks: mutation %d: duplicate key in %s", i, m.Table)
				}
			}
			if err := checkFKs(sch, vals, targetLive, i, m.Table); err != nil {
				return err
			}
			simInserted = append(simInserted, simIns{tbl: tbl, vals: vals})

		case wal.OpUpdate:
			rid := sqldb.RID(m.RID)
			if !tbl.Live(rid) || simDeleted[simKey{lower, rid}] {
				return fmt.Errorf("banks: mutation %d: no such row: %s rid %d", i, m.Table, m.RID)
			}
			keyChanged := false
			for _, name := range sch.PrimaryKey {
				if _, ok := vals[strings.ToLower(name)]; ok {
					keyChanged = true
				}
			}
			if keyChanged && len(db.Referencing(m.Table, rid)) > 0 {
				return fmt.Errorf("banks: mutation %d: cannot change the key of %s rid %d while other rows reference it", i, m.Table, m.RID)
			}
			if err := checkFKs(sch, vals, targetLive, i, m.Table); err != nil {
				return err
			}

		case wal.OpDelete:
			rid := sqldb.RID(m.RID)
			key := simKey{lower, rid}
			if !tbl.Live(rid) || simDeleted[key] {
				return fmt.Errorf("banks: mutation %d: no such row: %s rid %d", i, m.Table, m.RID)
			}
			for _, ref := range db.Referencing(m.Table, rid) {
				refLower := strings.ToLower(ref.Table)
				for _, r2 := range ref.RIDs {
					if !simDeleted[simKey{refLower, r2}] {
						return fmt.Errorf("banks: mutation %d: %s rid %d is referenced by %s.%s; delete the referencing rows first (in the same batch is fine)",
							i, m.Table, m.RID, ref.Table, ref.Column)
					}
				}
			}
			// In-batch inserts referencing this row block the delete too.
			if pk := sch.PrimaryKey; len(pk) == 1 {
				pkIdx := sch.ColumnIndex(pk[0])
				pkVal := tbl.Row(rid)[pkIdx]
				for _, ins := range simInserted {
					for _, fk := range ins.tbl.Schema().ForeignKeys {
						if !strings.EqualFold(fk.RefTable, m.Table) {
							continue
						}
						v, ok := ins.vals[strings.ToLower(fk.Column)]
						if !ok || v.IsNull() {
							continue
						}
						if cv, err := v.Convert(pkVal.T); err == nil && cv == pkVal {
							return fmt.Errorf("banks: mutation %d: %s rid %d is referenced by an insert earlier in this batch", i, m.Table, m.RID)
						}
					}
				}
				if simFreedPK[lower] == nil {
					simFreedPK[lower] = map[sqldb.Value]bool{}
				}
				simFreedPK[lower][pkVal] = true
				delete(simAddedPK[lower], pkVal)
			}
			simDeleted[key] = true
		}
	}
	return nil
}

// checkFKs validates the provided foreign-key columns of one row against
// the batch-aware target lookup.
func checkFKs(sch *sqldb.TableSchema, vals map[string]sqldb.Value,
	targetLive func(string, sqldb.Value) (bool, error), i int, table string) error {
	for _, fk := range sch.ForeignKeys {
		v, ok := vals[strings.ToLower(fk.Column)]
		if !ok || v.IsNull() {
			continue
		}
		live, err := targetLive(fk.RefTable, v)
		if err != nil {
			return fmt.Errorf("banks: mutation %d: %s.%s: %v", i, table, fk.Column, err)
		}
		if !live {
			return fmt.Errorf("banks: mutation %d: %s.%s = %s has no match in %s", i, table, fk.Column, v, fk.RefTable)
		}
	}
	return nil
}

// batchEffects reports what one applied batch changed, for the warm
// publish: the terms whose match sets moved, and whether any node or
// edge did.
type batchEffects struct {
	touched    []string // tokens added to or removed from any node
	structural bool     // the batch inserted/deleted rows or rewired edges
}

// applyResolved runs one validated batch through the database, the
// journal and the live deltas. replaySeq is 0 on the Apply path (the
// batch is appended to the WAL) and the journaled sequence during replay
// (insert rids are asserted against the journal instead). Callers hold
// s.mu (or own the System exclusively, during open). While a Compact is
// building aside (s.tail non-nil), the pre-batch state of every
// first-touched row is additionally recorded for the tail fold.
func (s *System) applyResolved(wmuts []wal.Mutation, replaySeq uint64) (uint64, []int64, batchEffects, error) {
	db := s.db.inner
	preView := s.gd.Snapshot()
	var eff batchEffects

	// First-touch capture per row: the token set and node before the
	// batch, so one diff per row covers chains like update-then-delete.
	type rowTouch struct {
		table   string
		rid     sqldb.RID
		oldToks map[string]bool
		oldNode graph.NodeID
	}
	touchIdx := map[simKey]int{}
	var touched []rowTouch
	touch := func(table string, rid sqldb.RID, exists bool) {
		k := simKey{strings.ToLower(table), rid}
		if _, ok := touchIdx[k]; ok {
			return
		}
		rt := rowTouch{table: table, rid: rid, oldNode: graph.NoNode}
		if exists {
			rt.oldToks = s.rowTokens(table, rid)
			rt.oldNode = preView.NodeOf(table, rid)
		}
		touchIdx[k] = len(touched)
		touched = append(touched, rt)
		if s.tail != nil {
			s.tail.note(k, table, rid, exists, rt.oldToks)
		}
	}

	// fail distinguishes a clean first-mutation failure (nothing written,
	// the caller can retry) from a mid-batch one, which leaves the
	// database ahead of the engine and is therefore sticky until a
	// rebuild resynchronizes them.
	fail := func(i int, err error) error {
		if replaySeq > 0 {
			return fmt.Errorf("banks: WAL replay (seq %d), mutation %d: %w", replaySeq, i, err)
		}
		if i == 0 {
			return fmt.Errorf("banks: applying mutation 0: %w", err)
		}
		s.mutErr = fmt.Errorf("banks: mutation batch failed after %d of %d changes reached the database (%v); the engine no longer matches it — Refresh or Compact to resynchronize", i, len(wmuts), err)
		return s.mutErr
	}

	var changes []graph.RowChange
	rids := make([]int64, len(wmuts))
	for i := range wmuts {
		m := &wmuts[i]
		switch m.Op {
		case wal.OpInsert:
			rid, err := db.InsertMap(m.Table, colMap(m))
			if err != nil {
				return 0, nil, eff, fail(i, err)
			}
			if replaySeq > 0 {
				if int64(rid) != m.RID {
					return 0, nil, eff, fmt.Errorf("banks: WAL replay diverged at seq %d: insert into %s assigned rid %d, journal recorded %d — the database does not match the journal's base state",
						replaySeq, m.Table, rid, m.RID)
				}
			} else {
				m.RID = int64(rid)
			}
			touch(m.Table, rid, false)
			changes = append(changes, graph.RowChange{Op: graph.RowInsert, Table: m.Table, RID: rid})
			rids[i] = int64(rid)

		case wal.OpUpdate:
			rid := sqldb.RID(m.RID)
			touch(m.Table, rid, true)
			relevant := graphRelevantCols(db.Table(m.Table).Schema(), m.Cols)
			var oldT []graph.RowRef
			if relevant {
				var err error
				if oldT, err = s.gd.Targets(m.Table, rid); err != nil {
					return 0, nil, eff, fail(i, err)
				}
				if s.tail != nil {
					s.tail.noteTargets(simKey{strings.ToLower(m.Table), rid}, oldT)
				}
			}
			if err := db.Update(m.Table, rid, colMap(m)); err != nil {
				return 0, nil, eff, fail(i, err)
			}
			// A change to non-key, non-FK columns cannot move edges or
			// prestige; only the index diff below applies.
			if relevant {
				changes = append(changes, graph.RowChange{Op: graph.RowUpdate, Table: m.Table, RID: rid, OldTargets: oldT})
			}
			rids[i] = m.RID

		case wal.OpDelete:
			rid := sqldb.RID(m.RID)
			touch(m.Table, rid, true)
			oldT, err := s.gd.Targets(m.Table, rid)
			if err != nil {
				return 0, nil, eff, fail(i, err)
			}
			if s.tail != nil {
				s.tail.noteTargets(simKey{strings.ToLower(m.Table), rid}, oldT)
			}
			if err := db.Delete(m.Table, rid); err != nil {
				return 0, nil, eff, fail(i, err)
			}
			changes = append(changes, graph.RowChange{Op: graph.RowDelete, Table: m.Table, RID: rid, OldTargets: oldT})
			rids[i] = m.RID

		default:
			return 0, nil, eff, fail(i, fmt.Errorf("unknown op %d", m.Op))
		}
	}

	seq := replaySeq
	if replaySeq == 0 {
		var err error
		if seq, err = s.wal.Append(wmuts); err != nil {
			s.mutErr = fmt.Errorf("banks: batch reached the database but journaling failed (%v); Refresh or Compact to resynchronize", err)
			return 0, nil, eff, s.mutErr
		}
	}

	if len(changes) > 0 {
		if err := s.gd.Apply(changes); err != nil {
			if replaySeq > 0 {
				return 0, nil, eff, fmt.Errorf("banks: WAL replay (seq %d): folding into graph delta: %w", replaySeq, err)
			}
			s.mutErr = fmt.Errorf("banks: batch reached the database but the graph delta rejected it (%v); Refresh or Compact to resynchronize", err)
			return 0, nil, eff, s.mutErr
		}
		eff.structural = true
	}
	gSnap := s.gd.Snapshot()
	tokSet := map[string]bool{}
	for _, rt := range touched {
		newToks := s.rowTokens(rt.table, rt.rid)
		node := rt.oldNode
		if node == graph.NoNode {
			node = gSnap.NodeOf(rt.table, rt.rid)
		}
		if node == graph.NoNode {
			continue // inserted and deleted within the batch: no tokens either side
		}
		for tok := range rt.oldToks {
			if !newToks[tok] {
				s.id.Remove(tok, node)
				tokSet[tok] = true
			}
		}
		for tok := range newToks {
			if !rt.oldToks[tok] {
				s.id.Add(tok, node)
				tokSet[tok] = true
			}
		}
	}
	if len(tokSet) > 0 {
		eff.touched = make([]string, 0, len(tokSet))
		for tok := range tokSet {
			eff.touched = append(eff.touched, tok)
		}
	}
	return seq, rids, eff, nil
}

// tailLog records the batches Apply folds while a Compact builds its
// base aside: for every row, the state it had when the tail window
// opened (which is the state the aside base was materialized from, since
// rows untouched since the snapshot are unchanged). The fold then
// replays the window as one net per-row change set — a row touched five
// times folds once.
type tailLog struct {
	idx  map[simKey]int
	rows []tailRow
}

// tailRow is one row's first-touch capture within the tail window.
type tailRow struct {
	table   string
	rid     sqldb.RID
	existed bool            // live when the window opened
	oldToks map[string]bool // token set at window open (nil unless existed)
	// targets holds the row's FK target set at window open; captured
	// lazily at the first structural touch (text updates cannot move
	// targets, so the first capture still sees the window-open state).
	targets      []graph.RowRef
	targetsKnown bool
}

func newTailLog() *tailLog { return &tailLog{idx: map[simKey]int{}} }

// note records the row's pre-mutation state the first time the window
// sees it; later touches are ignored (their "old" state is mid-window).
func (t *tailLog) note(k simKey, table string, rid sqldb.RID, existed bool, oldToks map[string]bool) {
	if _, ok := t.idx[k]; ok {
		return
	}
	t.idx[k] = len(t.rows)
	t.rows = append(t.rows, tailRow{table: table, rid: rid, existed: existed, oldToks: oldToks})
}

// noteTargets records the row's pre-mutation FK targets on the first
// structural touch.
func (t *tailLog) noteTargets(k simKey, targets []graph.RowRef) {
	i, ok := t.idx[k]
	if !ok || t.rows[i].targetsKnown {
		return
	}
	t.rows[i].targets = append([]graph.RowRef(nil), targets...)
	t.rows[i].targetsKnown = true
}

// foldTail replays a tail window onto the freshly compacted base as net
// per-row changes: each row's window-open state (captured first-touch)
// against its current database state decides one insert, update, delete
// or nothing. Callers hold s.mu; the database already contains every
// tail mutation.
func (s *System) foldTail(tail *tailLog, g1 *graph.Graph, gd1 *graph.Delta, id1 *index.Delta) error {
	if tail == nil || len(tail.rows) == 0 {
		return nil
	}
	db := s.db.inner
	live := func(rt *tailRow) bool {
		tbl := db.Table(rt.table)
		return tbl != nil && tbl.Live(rt.rid)
	}
	var changes []graph.RowChange
	for i := range tail.rows {
		rt := &tail.rows[i]
		switch {
		case rt.existed && live(rt):
			// Still present: a graph change only if some touch was
			// structural (targetsKnown); pure text churn is index-only.
			if rt.targetsKnown {
				changes = append(changes, graph.RowChange{Op: graph.RowUpdate, Table: rt.table, RID: rt.rid, OldTargets: rt.targets})
			}
		case rt.existed:
			changes = append(changes, graph.RowChange{Op: graph.RowDelete, Table: rt.table, RID: rt.rid, OldTargets: rt.targets})
		case live(rt):
			changes = append(changes, graph.RowChange{Op: graph.RowInsert, Table: rt.table, RID: rt.rid})
		default:
			// Inserted and deleted within the window: no net change.
		}
	}
	if len(changes) > 0 {
		if err := gd1.Apply(changes); err != nil {
			return fmt.Errorf("banks: folding compaction tail: %w", err)
		}
	}
	snap := gd1.Snapshot()
	for i := range tail.rows {
		rt := &tail.rows[i]
		var node graph.NodeID
		switch {
		case rt.existed:
			node = g1.NodeOf(rt.table, rt.rid) // in the base even if since deleted
		case live(rt):
			node = snap.NodeOf(rt.table, rt.rid) // delta node from the insert above
		default:
			continue
		}
		if node == graph.NoNode {
			continue
		}
		var newToks map[string]bool
		if live(rt) {
			newToks = s.rowTokens(rt.table, rt.rid)
		}
		for tok := range rt.oldToks {
			if !newToks[tok] {
				id1.Remove(tok, node)
			}
		}
		for tok := range newToks {
			if !rt.oldToks[tok] {
				id1.Add(tok, node)
			}
		}
	}
	return nil
}

// rowTokens returns the token set of the row's text columns — the same
// per-row view the index build tokenizes.
func (s *System) rowTokens(table string, rid sqldb.RID) map[string]bool {
	tbl := s.db.inner.Table(table)
	if tbl == nil {
		return nil
	}
	row := tbl.Row(rid)
	if row == nil {
		return nil
	}
	set := make(map[string]bool)
	for i, c := range tbl.Schema().Columns {
		if c.Type != sqldb.TypeText || row[i].IsNull() {
			continue
		}
		for _, tok := range index.Tokenize(row[i].S) {
			set[tok] = true
		}
	}
	return set
}

// graphRelevantCols reports whether touching cols can move graph
// structure: foreign-key columns rewire edges, key columns re-target the
// references of other rows.
func graphRelevantCols(sch *sqldb.TableSchema, cols []string) bool {
	for _, c := range cols {
		for _, fk := range sch.ForeignKeys {
			if strings.EqualFold(fk.Column, c) {
				return true
			}
		}
		for _, pk := range sch.PrimaryKey {
			if strings.EqualFold(pk, c) {
				return true
			}
		}
	}
	return false
}

// colMap renders a journal mutation's columns as the map form the
// database takes.
func colMap(m *wal.Mutation) map[string]sqldb.Value {
	set := make(map[string]sqldb.Value, len(m.Cols))
	for i, c := range m.Cols {
		set[c] = m.Vals[i]
	}
	return set
}
