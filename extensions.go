package banks

import (
	"context"
)

// This file surfaces the Section 7 extensions: attribute-qualified terms,
// approximate (prefix) matching, and answer summarization by tree shape.
// All three are fields of Query; the methods here are the deprecated
// pre-Query spellings.

// SearchQualified answers a query whose whitespace-separated terms may be
// qualified as "relation:keyword" or "attribute:keyword" (the paper's
// planned "author:Levy" form). With prefix true, unqualified terms that
// match no token exactly fall back to prefix matching ("approximate
// matching" in §7).
//
// Deprecated: use Query with the Qualified (and optionally Prefix) fields
// set: sys.Query(ctx, Query{Text: query, Qualified: true, Prefix: prefix}).
func (s *System) SearchQualified(query string, prefix bool, opts *SearchOptions) ([]*Answer, error) {
	res, err := s.Query(context.Background(),
		Query{Text: query, Qualified: true, Prefix: prefix, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.Answers, nil
}

// AnswerGroup is a set of answers sharing one tree structure over the
// schema, e.g. "Paper(Writes(Author),Writes(Author))".
type AnswerGroup struct {
	Shape   string
	Answers []*Answer
}

// SearchGrouped runs Search and summarizes the results by tree structure
// (§7: "group the output tuples into sets that have the same tree
// structure"). Groups are ordered by their best-ranked member.
//
// Deprecated: use Query with GroupByShape set and read Results.Groups:
// sys.Query(ctx, Query{Text: query, GroupByShape: true}).
func (s *System) SearchGrouped(query string, opts *SearchOptions) ([]AnswerGroup, error) {
	res, err := s.Query(context.Background(),
		Query{Text: query, GroupByShape: true, Options: opts})
	if err != nil {
		return nil, err
	}
	return res.Groups, nil
}
