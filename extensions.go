package banks

import (
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/core"
)

// This file surfaces the Section 7 extensions: attribute-qualified terms,
// approximate (prefix) matching, and answer summarization by tree shape.

// SearchQualified answers a query whose whitespace-separated terms may be
// qualified as "relation:keyword" or "attribute:keyword" (the paper's
// planned "author:Levy" form). With prefix true, unqualified terms that
// match no token exactly fall back to prefix matching ("approximate
// matching" in §7).
func (s *System) SearchQualified(query string, prefix bool, opts *SearchOptions) ([]*Answer, error) {
	terms := strings.Fields(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("banks: empty query")
	}
	answers, err := s.searcher.SearchQualified(s.db.inner, terms, prefix, opts.toCore())
	if err != nil {
		return nil, err
	}
	out := make([]*Answer, len(answers))
	for i, a := range answers {
		out[i] = s.convertAnswer(a)
	}
	return out, nil
}

// AnswerGroup is a set of answers sharing one tree structure over the
// schema, e.g. "Paper(Writes(Author),Writes(Author))".
type AnswerGroup struct {
	Shape   string
	Answers []*Answer
}

// SearchGrouped runs Search and summarizes the results by tree structure
// (§7: "group the output tuples into sets that have the same tree
// structure"). Groups are ordered by their best-ranked member.
func (s *System) SearchGrouped(query string, opts *SearchOptions) ([]AnswerGroup, error) {
	terms := strings.Fields(query)
	if len(terms) == 0 {
		return nil, fmt.Errorf("banks: empty query")
	}
	answers, err := s.searcher.Search(terms, opts.toCore())
	if err != nil {
		return nil, err
	}
	groups := core.GroupAnswers(s.searcher.Graph(), answers)
	out := make([]AnswerGroup, len(groups))
	for i, g := range groups {
		pub := AnswerGroup{Shape: g.Shape}
		for _, a := range g.Answers {
			pub.Answers = append(pub.Answers, s.convertAnswer(a))
		}
		out[i] = pub
	}
	return out, nil
}
