package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

func testMuts(i int) []Mutation {
	return []Mutation{
		{
			Op:    OpInsert,
			Table: "author",
			RID:   int64(i),
			Cols:  []string{"id", "name", "rank", "score", "active"},
			Vals: []sqldb.Value{
				sqldb.Text("a1"), sqldb.Text("Sunita Sarawagi"),
				sqldb.Int(int64(7 + i)), sqldb.Float(2.5), sqldb.Bool(true),
			},
		},
		{Op: OpUpdate, Table: "paper", RID: 3, Cols: []string{"title"}, Vals: []sqldb.Value{sqldb.Null()}},
		{Op: OpDelete, Table: "writes", RID: int64(100 + i)},
	}
}

func openCollect(t *testing.T, path string, afterSeq uint64) (*Log, []Batch) {
	t.Helper()
	var got []Batch
	l, err := Open(path, afterSeq, func(b Batch) error {
		got = append(got, b)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return l, got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, got := openCollect(t, path, 0)
	if len(got) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(got))
	}
	for i := 0; i < 3; i++ {
		seq, err := l.Append(testMuts(i))
		if err != nil {
			t.Fatal(err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got := openCollect(t, path, 0)
	defer l2.Close()
	if len(got) != 3 {
		t.Fatalf("replayed %d batches, want 3", len(got))
	}
	for i, b := range got {
		if b.Seq != uint64(i+1) {
			t.Fatalf("batch %d has seq %d", i, b.Seq)
		}
		if !reflect.DeepEqual(b.Muts, testMuts(i)) {
			t.Fatalf("batch %d round-trip mismatch:\ngot  %+v\nwant %+v", i, b.Muts, testMuts(i))
		}
	}
	if l2.NextSeq() != 4 {
		t.Fatalf("NextSeq = %d, want 4", l2.NextSeq())
	}
}

func TestOpenSkipsThroughAfterSeq(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _ := openCollect(t, path, 0)
	for i := 0; i < 4; i++ {
		if _, err := l.Append(testMuts(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2, got := openCollect(t, path, 2)
	defer l2.Close()
	if len(got) != 2 || got[0].Seq != 3 || got[1].Seq != 4 {
		t.Fatalf("afterSeq=2 replayed %+v", got)
	}
}

func TestTornTailRepair(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _ := openCollect(t, path, 0)
	for i := 0; i < 2; i++ {
		if _, err := l.Append(testMuts(i)); err != nil {
			t.Fatal(err)
		}
	}
	goodSize := l.Size()
	l.Close()

	// Simulate a crash mid-append: half a record of garbage at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x00, 0x00, 0x01, 0x00, 0xde, 0xad, 0xbe})
	f.Close()

	l2, got := openCollect(t, path, 0)
	if len(got) != 2 {
		t.Fatalf("repair replayed %d batches, want 2", len(got))
	}
	if l2.Size() != goodSize {
		t.Fatalf("repaired size %d, want %d", l2.Size(), goodSize)
	}
	if st, _ := os.Stat(path); st.Size() != goodSize {
		t.Fatalf("file not truncated: %d bytes, want %d", st.Size(), goodSize)
	}
	// The log keeps working after a repair.
	if seq, err := l2.Append(testMuts(9)); err != nil || seq != 3 {
		t.Fatalf("append after repair: seq %d, err %v", seq, err)
	}
	l2.Close()
	_, got = openCollect(t, path, 0)
	if len(got) != 3 {
		t.Fatalf("after repair+append replayed %d batches, want 3", len(got))
	}
}

func TestCorruptRecordStopsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _ := openCollect(t, path, 0)
	l.Append(testMuts(0))
	mid := l.Size()
	l.Append(testMuts(1))
	l.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[mid+10] ^= 0xFF // flip a byte inside the second record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got := openCollect(t, path, 0)
	defer l2.Close()
	if len(got) != 1 {
		t.Fatalf("corrupt second record: replayed %d batches, want 1", len(got))
	}
	if l2.Size() != mid {
		t.Fatalf("valid prefix %d, want %d", l2.Size(), mid)
	}
}

func TestTruncateKeepsSequence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _ := openCollect(t, path, 0)
	for i := 0; i < 3; i++ {
		l.Append(testMuts(i))
	}
	if err := l.Truncate(); err != nil {
		t.Fatal(err)
	}
	if seq, err := l.Append(testMuts(5)); err != nil || seq != 4 {
		t.Fatalf("append after truncate: seq %d, err %v", seq, err)
	}
	l.Close()

	// The snapshot pinned seq 3; replay past it sees only batch 4.
	l2, got := openCollect(t, path, 3)
	defer l2.Close()
	if len(got) != 1 || got[0].Seq != 4 {
		t.Fatalf("after truncate replayed %+v", got)
	}
	if l2.NextSeq() != 5 {
		t.Fatalf("NextSeq = %d, want 5", l2.NextSeq())
	}
}

func TestOpenRejectsForeignFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "notes.txt")
	if err := os.WriteFile(path, []byte("# not a wal at all, definitely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 0, func(Batch) error { return nil }); err == nil {
		t.Fatal("foreign file accepted as a WAL")
	}
}

func TestEncodeRejectsMalformed(t *testing.T) {
	l, _ := openCollect(t, filepath.Join(t.TempDir(), "m.wal"), 0)
	defer l.Close()
	bad := []([]Mutation){
		nil,
		{{Op: Op(9), Table: "x", RID: 1}},
		{{Op: OpInsert, Table: "x", RID: -1}},
		{{Op: OpInsert, Table: "x", RID: 1, Cols: []string{"a"}, Vals: nil}},
	}
	for i, muts := range bad {
		if _, err := l.Append(muts); err == nil {
			t.Errorf("malformed batch %d accepted", i)
		}
	}
	if l.NextSeq() != 1 {
		t.Fatalf("failed appends advanced the sequence to %d", l.NextSeq())
	}
}

// TestScanReencodeFixpoint pins the encoding: scanning a log and
// re-encoding every batch reproduces the payload bytes exactly.
func TestScanReencodeFixpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _ := openCollect(t, path, 0)
	for i := 0; i < 3; i++ {
		l.Append(testMuts(i))
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := append([]byte(nil), data[:headerSize]...)
	_, _, err = Scan(bytes.NewReader(data), func(b Batch) error {
		payload, err := encodeBatch(b)
		if err != nil {
			return err
		}
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
		rebuilt = append(rebuilt, hdr[:]...)
		rebuilt = append(rebuilt, payload...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt, data) {
		t.Fatal("re-encoded log differs from the original bytes")
	}
}
