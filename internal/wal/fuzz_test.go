package wal

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// validLog renders a well-formed log with n batches for seeding.
func validLog(n int) []byte {
	var buf bytes.Buffer
	var hdr [headerSize]byte
	copy(hdr[:], magic)
	binary.BigEndian.PutUint32(hdr[len(magic):], version)
	buf.Write(hdr[:])
	for i := 0; i < n; i++ {
		payload, err := encodeBatch(Batch{Seq: uint64(i + 1), Muts: testMuts(i)})
		if err != nil {
			panic(err)
		}
		var rec [8]byte
		binary.BigEndian.PutUint32(rec[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(rec[4:], crc32.Checksum(payload, castagnoli))
		buf.Write(rec[:])
		buf.Write(payload)
	}
	return buf.Bytes()
}

// FuzzWALReplay locks down the replay contract: arbitrary bytes never
// panic or allocate unboundedly, the reported valid prefix re-scans to the
// same batches, and every recovered batch survives an encode/decode round
// trip.
func FuzzWALReplay(f *testing.F) {
	f.Add(validLog(0))
	f.Add(validLog(1))
	f.Add(validLog(3))
	f.Add(validLog(2)[:headerSize+9]) // torn first record
	flipped := validLog(2)
	flipped[len(flipped)-3] ^= 0x40 // corrupt final payload byte
	f.Add(flipped)
	f.Add([]byte(magic))                          // header cut short
	f.Add([]byte("BANKSWAL\x00\x00\x00\x02junk")) // future version
	huge := validLog(1)
	binary.BigEndian.PutUint32(huge[headerSize:], 1<<30) // absurd record length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		var batches []Batch
		valid, lastSeq, err := Scan(bytes.NewReader(data), func(b Batch) error {
			batches = append(batches, b)
			return nil
		})
		if err != nil {
			if len(batches) != 0 {
				t.Fatalf("scan failed (%v) after delivering %d batches", err, len(batches))
			}
			return
		}
		if valid < int64(headerSize) || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [header, %d]", valid, len(data))
		}
		if len(batches) > 0 && batches[len(batches)-1].Seq != lastSeq {
			t.Fatalf("lastSeq %d does not match final batch seq %d", lastSeq, batches[len(batches)-1].Seq)
		}
		for i, b := range batches {
			if i > 0 && b.Seq <= batches[i-1].Seq {
				t.Fatalf("non-increasing seq at batch %d", i)
			}
			payload, err := encodeBatch(b)
			if err != nil {
				t.Fatalf("recovered batch %d does not re-encode: %v", i, err)
			}
			rt, err := decodeBatch(payload)
			if err != nil {
				t.Fatalf("re-encoded batch %d does not decode: %v", i, err)
			}
			if rt.Seq != b.Seq || len(rt.Muts) != len(b.Muts) {
				t.Fatalf("batch %d round trip changed shape", i)
			}
			for _, m := range b.Muts {
				for _, v := range m.Vals {
					switch v.T {
					case sqldb.TypeNull, sqldb.TypeInt, sqldb.TypeFloat, sqldb.TypeText, sqldb.TypeBool:
					default:
						t.Fatalf("decoded value with invalid type %d", v.T)
					}
				}
			}
		}

		// The valid prefix must re-scan cleanly to the same batch count.
		n := 0
		revalid, _, err := Scan(bytes.NewReader(data[:valid]), func(Batch) error {
			n++
			return nil
		})
		if err != nil || revalid != valid || n != len(batches) {
			t.Fatalf("valid prefix does not re-scan: valid %d->%d, batches %d->%d, err %v",
				valid, revalid, len(batches), n, err)
		}
	})
}
