//go:build ignore

// gen_corpus regenerates the committed FuzzWALReplay seed corpus under
// testdata/fuzz/FuzzWALReplay. Run from this directory:
//
//	go run gen_corpus.go
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func record(seq uint64, muts []wal.Mutation) []byte {
	payload, err := wal.EncodePayload(wal.Batch{Seq: seq, Muts: muts})
	if err != nil {
		panic(err)
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	return append(hdr[:], payload...)
}

func muts(i int) []wal.Mutation {
	return []wal.Mutation{
		{
			Op:    wal.OpInsert,
			Table: "author",
			RID:   int64(i),
			Cols:  []string{"id", "name", "score", "active"},
			Vals: []sqldb.Value{
				sqldb.Int(int64(i)), sqldb.Text("Soumen Chakrabarti"),
				sqldb.Float(0.5), sqldb.Bool(i%2 == 0),
			},
		},
		{Op: wal.OpUpdate, Table: "paper", RID: 3, Cols: []string{"title"}, Vals: []sqldb.Value{sqldb.Null()}},
		{Op: wal.OpDelete, Table: "writes", RID: int64(10 + i)},
	}
}

func log(n int) []byte {
	var buf bytes.Buffer
	buf.WriteString("BANKSWAL")
	var v [4]byte
	binary.BigEndian.PutUint32(v[:], 1)
	buf.Write(v[:])
	for i := 0; i < n; i++ {
		buf.Write(record(uint64(i+1), muts(i)))
	}
	return buf.Bytes()
}

func main() {
	dir := filepath.Join("testdata", "fuzz", "FuzzWALReplay")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		panic(err)
	}
	torn := log(2)
	torn = torn[:len(torn)-5]
	flipped := log(2)
	flipped[len(flipped)-3] ^= 0x40
	seeds := map[string][]byte{
		"empty_log":   log(0),
		"three_batch": log(3),
		"torn_tail":   torn,
		"bad_crc":     flipped,
		"short_hdr":   []byte("BANKSW"),
	}
	for name, data := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			panic(err)
		}
	}
	fmt.Printf("wrote %d seeds to %s\n", len(seeds), dir)
}
