// Package wal implements the write-ahead log behind live mutations: every
// System.Apply batch is journaled as one checksummed, fsync'd record before
// it is folded into the serving engine, so mutations survive a crash and
// replay deterministically on reopen.
//
// File layout:
//
//	header   magic "BANKSWAL" · version u32
//	records  length u32 · crc32c u32 · payload
//	payload  seq uvarint · count uvarint · count mutations
//	mutation op u8 · table string · rid uvarint · ncols uvarint
//	         · ncols × (name string · value)
//	value    type u8 · type-dependent payload
//
// All fixed-width integers are big-endian; strings are uvarint-length
// prefixed. The checksum (CRC-32C) covers the payload only. A torn or
// corrupt tail — a partial record, a failed checksum, a malformed payload,
// or a sequence number out of order — ends the readable prefix: Open
// repairs the log by truncating it there, which is exactly the
// crash-during-append case an fsync'd log must tolerate.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"github.com/banksdb/banks/internal/sqldb"
)

const (
	magic      = "BANKSWAL"
	version    = 1
	headerSize = len(magic) + 4

	// maxRecordLen bounds the payload length trusted from a record header;
	// anything larger is treated as corruption.
	maxRecordLen = 1 << 28
	// maxBatch and maxCols bound the counts trusted from a payload.
	maxBatch = 1 << 20
	maxCols  = 1 << 12
	// maxString bounds table/column/text lengths.
	maxString = 1 << 20
	// prealloc caps slice capacity trusted from a length prefix.
	prealloc = 1 << 10
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Op is the kind of one journaled row mutation.
type Op uint8

const (
	OpInsert Op = iota + 1
	OpUpdate
	OpDelete
)

// Mutation is one journaled row change. Inserts record the RID the row
// received so replay can verify the database deterministically re-assigns
// it; updates and deletes address the row by RID.
type Mutation struct {
	Op    Op
	Table string
	RID   int64
	Cols  []string
	Vals  []sqldb.Value
}

// Batch is one atomic Apply: a sequence number and its mutations.
type Batch struct {
	Seq  uint64
	Muts []Mutation
}

// Log is an append-only mutation journal. A Log has a single writer; Append
// and Truncate must be externally serialized.
type Log struct {
	f       *os.File
	path    string
	size    int64  // committed length (header + valid records)
	nextSeq uint64 // sequence number the next Append receives
}

// Open opens (or creates) the log at path and replays every batch with
// seq > afterSeq through fn, in order. A torn or corrupt tail is repaired
// by truncation; an error from fn aborts the open. The returned log appends
// after the last valid record with the next sequence number.
func Open(path string, afterSeq uint64, fn func(Batch) error) (*Log, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: opening %s: %w", path, err)
	}
	l := &Log{f: f, path: path, nextSeq: 1}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: stat %s: %w", path, err)
	}
	if st.Size() == 0 {
		var hdr [headerSize]byte
		copy(hdr[:], magic)
		binary.BigEndian.PutUint32(hdr[len(magic):], version)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: writing header: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing header: %w", err)
		}
		l.size = int64(headerSize)
		return l, nil
	}

	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	valid, lastSeq, err := Scan(bufio.NewReaderSize(f, 1<<20), func(b Batch) error {
		if b.Seq > afterSeq {
			return fn(b)
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	if valid < st.Size() {
		// Torn tail: drop it, as a crash mid-append demands.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: repairing torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: syncing repaired %s: %w", path, err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.size = valid
	if lastSeq >= afterSeq {
		l.nextSeq = lastSeq + 1
	} else {
		// Every record predates the store snapshot (or the log is empty):
		// continue the sequence the snapshot pins.
		l.nextSeq = afterSeq + 1
	}
	return l, nil
}

// Scan decodes records from r in order, calling fn per batch. It returns
// the byte length of the valid prefix (header + whole records) and the last
// valid sequence number. Corruption — a short read, bad checksum, malformed
// payload, or non-increasing sequence — ends the scan without error; only
// a bad header or an fn error fail the scan.
func Scan(r io.Reader, fn func(Batch) error) (valid int64, lastSeq uint64, err error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, fmt.Errorf("wal: reading header: %w", err)
	}
	if string(hdr[:len(magic)]) != magic {
		return 0, 0, errors.New("wal: bad magic")
	}
	if v := binary.BigEndian.Uint32(hdr[len(magic):]); v != version {
		return 0, 0, fmt.Errorf("wal: unsupported version %d", v)
	}
	valid = int64(headerSize)
	var rec [8]byte
	for {
		if _, err := io.ReadFull(r, rec[:]); err != nil {
			return valid, lastSeq, nil // clean EOF or torn length/crc
		}
		ln := binary.BigEndian.Uint32(rec[:4])
		crc := binary.BigEndian.Uint32(rec[4:])
		if ln == 0 || ln > maxRecordLen {
			return valid, lastSeq, nil
		}
		payload := make([]byte, ln)
		if _, err := io.ReadFull(r, payload); err != nil {
			return valid, lastSeq, nil // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != crc {
			return valid, lastSeq, nil
		}
		b, err := decodeBatch(payload)
		if err != nil {
			return valid, lastSeq, nil
		}
		if b.Seq <= lastSeq {
			return valid, lastSeq, nil // sequence must strictly increase
		}
		if err := fn(b); err != nil {
			return valid, lastSeq, err
		}
		lastSeq = b.Seq
		valid += int64(8 + ln)
	}
}

// Append journals one batch: encode, write, fsync. It returns the sequence
// number the batch received.
func (l *Log) Append(muts []Mutation) (uint64, error) {
	if len(muts) == 0 {
		return 0, errors.New("wal: empty batch")
	}
	if len(muts) > maxBatch {
		return 0, fmt.Errorf("wal: batch of %d mutations exceeds the %d limit", len(muts), maxBatch)
	}
	seq := l.nextSeq
	payload, err := encodeBatch(Batch{Seq: seq, Muts: muts})
	if err != nil {
		return 0, err
	}
	rec := make([]byte, 8, 8+len(payload))
	binary.BigEndian.PutUint32(rec[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	rec = append(rec, payload...)
	if _, err := l.f.WriteAt(rec, l.size); err != nil {
		return 0, fmt.Errorf("wal: appending record %d: %w", seq, err)
	}
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: syncing record %d: %w", seq, err)
	}
	l.size += int64(len(rec))
	l.nextSeq = seq + 1
	return seq, nil
}

// Truncate drops every journaled record; the caller must first have folded
// them into a durable snapshot that pins the last applied sequence number
// (replay-after-crash then skips them anyway). Sequence numbers keep
// increasing across truncations.
func (l *Log) Truncate() error {
	if err := l.f.Truncate(int64(headerSize)); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", l.path, err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing truncated %s: %w", l.path, err)
	}
	l.size = int64(headerSize)
	return nil
}

// NextSeq returns the sequence number the next Append will use.
func (l *Log) NextSeq() uint64 { return l.nextSeq }

// Size returns the committed log length in bytes.
func (l *Log) Size() int64 { return l.size }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close syncs and closes the log file.
func (l *Log) Close() error {
	if err := l.f.Sync(); err != nil {
		l.f.Close()
		return fmt.Errorf("wal: syncing %s on close: %w", l.path, err)
	}
	return l.f.Close()
}

// EncodePayload renders a batch to its WAL payload bytes (seq + mutations,
// without the length/checksum framing). Append is the production write path;
// this hook exists for tooling such as the fuzz corpus generator.
func EncodePayload(b Batch) ([]byte, error) { return encodeBatch(b) }

// encodeBatch renders one batch payload.
func encodeBatch(b Batch) ([]byte, error) {
	buf := binary.AppendUvarint(nil, b.Seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.Muts)))
	for i := range b.Muts {
		m := &b.Muts[i]
		switch m.Op {
		case OpInsert, OpUpdate, OpDelete:
		default:
			return nil, fmt.Errorf("wal: unknown op %d", m.Op)
		}
		if len(m.Table) > maxString {
			return nil, fmt.Errorf("wal: table name of %d bytes", len(m.Table))
		}
		if len(m.Cols) != len(m.Vals) {
			return nil, fmt.Errorf("wal: %d columns but %d values", len(m.Cols), len(m.Vals))
		}
		if len(m.Cols) > maxCols {
			return nil, fmt.Errorf("wal: %d columns exceeds the %d limit", len(m.Cols), maxCols)
		}
		if m.RID < 0 {
			return nil, fmt.Errorf("wal: negative rid %d", m.RID)
		}
		buf = append(buf, byte(m.Op))
		buf = appendString(buf, m.Table)
		buf = binary.AppendUvarint(buf, uint64(m.RID))
		buf = binary.AppendUvarint(buf, uint64(len(m.Cols)))
		for j, col := range m.Cols {
			if len(col) > maxString {
				return nil, fmt.Errorf("wal: column name of %d bytes", len(col))
			}
			buf = appendString(buf, col)
			var err error
			buf, err = appendValue(buf, m.Vals[j])
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func decodeBatch(p []byte) (Batch, error) {
	d := decoder{p: p}
	var b Batch
	b.Seq = d.uvarint()
	n := d.uvarint()
	if n == 0 || n > maxBatch {
		return b, fmt.Errorf("wal: batch claims %d mutations", n)
	}
	b.Muts = make([]Mutation, 0, min64(n, prealloc))
	for i := uint64(0); i < n; i++ {
		var m Mutation
		m.Op = Op(d.byte())
		switch m.Op {
		case OpInsert, OpUpdate, OpDelete:
		default:
			return b, fmt.Errorf("wal: unknown op %d", m.Op)
		}
		m.Table = d.str()
		rid := d.uvarint()
		if rid > math.MaxInt64 {
			return b, fmt.Errorf("wal: rid %d out of range", rid)
		}
		m.RID = int64(rid)
		nc := d.uvarint()
		if nc > maxCols {
			return b, fmt.Errorf("wal: mutation claims %d columns", nc)
		}
		if nc > 0 {
			m.Cols = make([]string, 0, min64(nc, prealloc))
			m.Vals = make([]sqldb.Value, 0, min64(nc, prealloc))
		}
		for j := uint64(0); j < nc; j++ {
			m.Cols = append(m.Cols, d.str())
			m.Vals = append(m.Vals, d.value())
		}
		if d.err != nil {
			return b, d.err
		}
		b.Muts = append(b.Muts, m)
	}
	if d.err != nil {
		return b, d.err
	}
	if len(d.p) != 0 {
		return b, fmt.Errorf("wal: %d trailing bytes in payload", len(d.p))
	}
	return b, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendValue encodes one typed value: a type tag then the payload.
func appendValue(buf []byte, v sqldb.Value) ([]byte, error) {
	buf = append(buf, byte(v.T))
	switch v.T {
	case sqldb.TypeNull:
		return buf, nil
	case sqldb.TypeInt, sqldb.TypeBool:
		return binary.AppendVarint(buf, v.I), nil
	case sqldb.TypeFloat:
		return binary.BigEndian.AppendUint64(buf, math.Float64bits(v.F)), nil
	case sqldb.TypeText:
		if len(v.S) > maxString {
			return nil, fmt.Errorf("wal: text value of %d bytes", len(v.S))
		}
		return appendString(buf, v.S), nil
	}
	return nil, fmt.Errorf("wal: unknown value type %d", v.T)
}

// decoder pulls typed fields off a payload, latching the first error.
type decoder struct {
	p   []byte
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = errors.New("wal: truncated payload")
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.p) < 1 {
		d.fail()
		return 0
	}
	b := d.p[0]
	d.p = d.p[1:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.fail()
		return 0
	}
	d.p = d.p[n:]
	return v
}

func (d *decoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > maxString || uint64(len(d.p)) < n {
		d.fail()
		return ""
	}
	s := string(d.p[:n])
	d.p = d.p[n:]
	return s
}

func (d *decoder) value() sqldb.Value {
	t := sqldb.Type(d.byte())
	switch t {
	case sqldb.TypeNull:
		return sqldb.Value{}
	case sqldb.TypeInt, sqldb.TypeBool:
		return sqldb.Value{T: t, I: d.varint()}
	case sqldb.TypeFloat:
		if d.err != nil || len(d.p) < 8 {
			d.fail()
			return sqldb.Value{}
		}
		f := math.Float64frombits(binary.BigEndian.Uint64(d.p))
		d.p = d.p[8:]
		return sqldb.Value{T: t, F: f}
	case sqldb.TypeText:
		return sqldb.Value{T: t, S: d.str()}
	}
	d.fail()
	return sqldb.Value{}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
