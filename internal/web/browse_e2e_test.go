package web

// End-to-end browsing coverage over the DBLP generator: a keyword search
// result links into a tuple render, whose foreign-key hyperlink leads to
// the referenced tuple, which in turn reports its incoming references —
// the full §4 browse loop (search → display → follow link → backward
// browse) exercised through the HTTP handlers rather than the template
// layer alone.

import (
	"errors"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

func newDBLPServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := datagen.BuildDBLP(datagen.SmallDBLP())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	searcher := core.NewSearcher(g, ix)
	opts := core.DefaultOptions()
	opts.ExcludedRootTables = []string{"Writes", "Cites"}
	ts := httptest.NewServer(NewServer(db, func() *core.Searcher { return searcher }, opts))
	t.Cleanup(ts.Close)
	return ts
}

// hrefRe pulls every href out of a rendered page.
var hrefRe = regexp.MustCompile(`href="([^"]+)"`)

func hrefs(body, prefix string) []string {
	var out []string
	for _, m := range hrefRe.FindAllStringSubmatch(body, -1) {
		href := strings.ReplaceAll(m[1], "&amp;", "&")
		if strings.HasPrefix(href, prefix) {
			out = append(out, href)
		}
	}
	return out
}

func TestBrowseFromQueryResultToRowAndAcrossFK(t *testing.T) {
	ts := newDBLPServer(t)

	// 1. A keyword search whose connection trees contain Writes nodes
	// (author–paper links) and hyperlink every tuple with a single-column
	// primary key.
	code, body := get(t, ts, "/search?q=sunita+soumen")
	if code != 200 {
		t.Fatalf("/search status = %d", code)
	}
	if !strings.Contains(body, "score") {
		t.Fatal("search page shows no scored answers")
	}
	tupleLinks := hrefs(body, "/tuple?")
	if len(tupleLinks) == 0 {
		t.Fatal("search results contain no tuple hyperlinks")
	}

	// 2. Follow the first result row into its tuple render. DBLP search
	// answers root at Paper or Author; either renders a column table.
	code, tupleBody := get(t, ts, tupleLinks[0])
	if code != 200 {
		t.Fatalf("tuple render %s: status = %d", tupleLinks[0], code)
	}
	if !strings.Contains(tupleBody, "<th>") || !strings.Contains(tupleBody, "<td>") {
		t.Fatalf("tuple render %s shows no column table", tupleLinks[0])
	}
	// Backward browsing: a cited paper / written paper reports who
	// references it.
	if !strings.Contains(tupleBody, "Referenced by") {
		t.Fatalf("tuple render %s lists no incoming references", tupleLinks[0])
	}

	// 3. Browse the Writes link table: every row renders its FK values as
	// hyperlinks into the referenced Author/Paper tuples.
	code, browseBody := get(t, ts, "/browse?table=Writes")
	if code != 200 {
		t.Fatalf("/browse status = %d", code)
	}
	fkLinks := hrefs(browseBody, "/tuple?")
	if len(fkLinks) == 0 {
		t.Fatal("browse view of Writes has no FK hyperlinks")
	}
	var authorLink string
	for _, l := range fkLinks {
		if strings.Contains(l, "table=Author") {
			authorLink = l
			break
		}
	}
	if authorLink == "" {
		t.Fatalf("no Author FK link among %d tuple links", len(fkLinks))
	}

	// 4. Follow the FK link: the referenced author row renders with its
	// name column and its incoming references (the papers they wrote).
	code, authorBody := get(t, ts, authorLink)
	if code != 200 {
		t.Fatalf("FK link %s: status = %d", authorLink, code)
	}
	if !strings.Contains(authorBody, "AuthorName") {
		t.Fatalf("author tuple %s missing its columns", authorLink)
	}
	if !strings.Contains(authorBody, "Referenced by") || !strings.Contains(authorBody, "Writes") {
		t.Fatalf("author tuple %s missing backward references", authorLink)
	}
}

// TestSearchFailsLoudlyOnEngineError: with a disk-resident engine a lazy
// segment fault degrades to empty results inside the search core; the
// server's engine health hook must turn that into a 500, never a quiet
// empty page.
func TestSearchFailsLoudlyOnEngineError(t *testing.T) {
	db, err := datagen.BuildThesis(datagen.SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	searcher := core.NewSearcher(g, ix)
	srv := NewServer(db, func() *core.Searcher { return searcher }, nil)
	srv.SetEngineErr(func() error { return errors.New("arcs segment checksum mismatch") })
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	code, body := get(t, ts, "/search?q=computer")
	if code != 500 {
		t.Fatalf("search over a faulted engine: status = %d, want 500", code)
	}
	if !strings.Contains(body, "checksum mismatch") {
		t.Fatal("500 page does not name the engine fault")
	}
}
