package web

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"github.com/banksdb/banks/internal/browse"
	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/serve"
	"github.com/banksdb/banks/internal/sqlexec"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	db, err := datagen.BuildThesis(datagen.SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	searcher := core.NewSearcher(g, ix)
	srv := NewServer(db, func() *core.Searcher { return searcher }, nil)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func get(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHomePage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, frag := range []string{"BANKS", "student", "thesis", "department", "/search"} {
		if !strings.Contains(body, frag) {
			t.Errorf("home missing %q", frag)
		}
	}
}

func TestSearchPage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/search?q="+url.QueryEscape("sudarshan aditya"))
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "Sudarshan") || !strings.Contains(body, "Aditya") {
		t.Error("search results missing matched entities")
	}
	if !strings.Contains(body, "score") {
		t.Error("scores not shown")
	}
	if !strings.Contains(body, "/tuple?table=") {
		t.Error("results not hyperlinked")
	}
	// Keyword nodes highlighted.
	if !strings.Contains(body, `class="keyword"`) {
		t.Error("keyword nodes not highlighted")
	}
}

func TestSearchEmptyShowsForm(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/search")
	if code != 200 || !strings.Contains(body, "<form") {
		t.Errorf("status=%d body form missing", code)
	}
}

func TestBrowsePage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/browse?table=student")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	for _, frag := range []string{"<table>", "sort", "drop", "group", "Join in", "next page"} {
		if !strings.Contains(body, frag) {
			t.Errorf("browse missing %q", frag)
		}
	}
	// FK cells are hyperlinks to the referenced tuple.
	if !strings.Contains(body, "/tuple?table=program") {
		t.Error("FK hyperlink missing")
	}
}

func TestBrowseJoinAndFilter(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/browse?table=thesis&join=rollno&join=advisor&fcol=rollno&fop=%3D&fval="+datagen.StudentAditya)
	if code != 200 {
		t.Fatalf("status = %d, body=%s", code, body[:min(len(body), 300)])
	}
	if !strings.Contains(body, "Sudarshan") {
		t.Error("joined advisor name missing")
	}
}

func TestBrowseGroupBy(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/browse?table=student&groupby=progid")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "count") {
		t.Error("group-by counts missing")
	}
}

func TestBrowseErrors(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := get(t, ts, "/browse"); code != http.StatusBadRequest {
		t.Errorf("missing table: status = %d", code)
	}
	if code, _ := get(t, ts, "/browse?table=nosuch"); code != http.StatusBadRequest {
		t.Errorf("bad table: status = %d", code)
	}
}

func TestTuplePage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/tuple?table=thesis&pk="+datagen.ThesisAditya)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "Keyword Searching in Graph Structured Data") {
		t.Error("thesis title missing")
	}
	// Outgoing FK links.
	if !strings.Contains(body, "/tuple?table=student") || !strings.Contains(body, "/tuple?table=faculty") {
		t.Error("FK links missing")
	}
	// Backward browsing from a referenced tuple.
	code, body = get(t, ts, "/tuple?table=student&pk="+datagen.StudentAditya)
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "Referenced by") || !strings.Contains(body, "thesis") {
		t.Error("back references missing")
	}
}

func TestTupleIntegerPK(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/tuple?table=department&pk=1")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "Computer Science and Engineering") {
		t.Error("integer-keyed tuple not found")
	}
}

func TestTupleNotFound(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := get(t, ts, "/tuple?table=student&pk=zzz"); code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
	if code, _ := get(t, ts, "/tuple?table=nosuch&pk=1"); code != http.StatusNotFound {
		t.Errorf("status = %d", code)
	}
}

func TestSchemaPage(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts, "/schema")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "CREATE TABLE") || !strings.Contains(body, "FOREIGN KEY") {
		t.Error("schema DDL missing")
	}
}

func TestTemplatePages(t *testing.T) {
	srv, ts := newTestServer(t)
	engine := sqlexec.New(srv.db)
	for _, tpl := range []browse.Template{
		{Name: "ct", Kind: browse.KindCrossTab, Table: "program",
			Spec: map[string]string{"row": "deptid", "col": "name"}},
		{Name: "gb", Kind: browse.KindGroupBy, Table: "student",
			Spec: map[string]string{"attrs": "progid"}},
		{Name: "fv", Kind: browse.KindFolder, Table: "student",
			Spec: map[string]string{"attrs": "progid,name"}},
		{Name: "pie", Kind: browse.KindChart, Table: "student",
			Spec: map[string]string{"label": "progid", "chart": "pie", "link": "gb"}},
		{Name: "bars", Kind: browse.KindChart, Table: "student",
			Spec: map[string]string{"label": "progid", "chart": "bar"}},
		{Name: "lines", Kind: browse.KindChart, Table: "student",
			Spec: map[string]string{"label": "progid", "chart": "line"}},
	} {
		if err := browse.SaveTemplate(engine, tpl); err != nil {
			t.Fatal(err)
		}
	}

	code, body := get(t, ts, "/template?name=ct")
	if code != 200 || !strings.Contains(body, "<table>") {
		t.Errorf("crosstab: %d", code)
	}
	code, body = get(t, ts, "/template?name=gb")
	if code != 200 || !strings.Contains(body, "path=") {
		t.Errorf("groupby: %d", code)
	}
	// Drill down one level.
	code, body = get(t, ts, "/template?name=gb&path=1")
	if code != 200 || !strings.Contains(body, "<table>") {
		t.Errorf("groupby leaves: %d", code)
	}
	code, body = get(t, ts, "/template?name=pie")
	if code != 200 || !strings.Contains(body, "<svg") || !strings.Contains(body, "Drill down") {
		t.Errorf("pie chart: %d", code)
	}
	code, body = get(t, ts, "/template?name=bars")
	if code != 200 || !strings.Contains(body, "<rect") {
		t.Errorf("bar chart: %d", code)
	}
	code, body = get(t, ts, "/template?name=lines")
	if code != 200 || !strings.Contains(body, "<polyline") {
		t.Errorf("line chart: %d", code)
	}
	if code, _ := get(t, ts, "/template?name=missing"); code != http.StatusNotFound {
		t.Errorf("missing template: %d", code)
	}
	// The home page now lists templates.
	_, home := get(t, ts, "/")
	if !strings.Contains(home, "Templates") || !strings.Contains(home, "pie") {
		t.Error("home template list missing")
	}
}

func TestHTMLEscaping(t *testing.T) {
	_, ts := newTestServer(t)
	_, body := get(t, ts, "/search?q="+url.QueryEscape("<script>alert(1)</script>"))
	if strings.Contains(body, "<script>alert") {
		t.Error("unescaped user input")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSearchStrategyParam(t *testing.T) {
	_, ts := newTestServer(t)
	// Both built-in strategies must serve identical result pages.
	var bodies []string
	for _, strat := range []string{core.StrategyBackward, core.StrategyBatched} {
		code, body := get(t, ts, "/search?q="+url.QueryEscape("sudarshan aditya")+"&strategy="+strat)
		if code != 200 {
			t.Fatalf("strategy %s: status = %d", strat, code)
		}
		if !strings.Contains(body, "Sudarshan") {
			t.Errorf("strategy %s: results missing matched entities", strat)
		}
		// Everything after the form (which echoes the selected strategy)
		// must coincide.
		if i := strings.Index(body, "</form>"); i >= 0 {
			bodies = append(bodies, body[i:])
		}
	}
	if len(bodies) == 2 && bodies[0] != bodies[1] {
		t.Error("backward and batched strategies rendered different results")
	}
	// Unknown strategies are a client error, not a crash.
	code, body := get(t, ts, "/search?q=aditya&strategy=bogus")
	if code != http.StatusBadRequest {
		t.Errorf("bogus strategy: status = %d, body = %s", code, body)
	}
}

func TestSearchTimeoutParam(t *testing.T) {
	_, ts := newTestServer(t)
	// A roomy timeout succeeds.
	code, body := get(t, ts, "/search?q=aditya&timeout=30s")
	if code != 200 || !strings.Contains(body, "Aditya") {
		t.Errorf("timeout=30s: status %d", code)
	}
	// The form defaults to no timeout and echoes the field.
	if !strings.Contains(body, `name="timeout"`) {
		t.Error("search form has no timeout field")
	}
	// A malformed timeout is a client error.
	code, _ = get(t, ts, "/search?q=aditya&timeout=banana")
	if code != http.StatusBadRequest {
		t.Errorf("bad timeout: status = %d", code)
	}
	code, _ = get(t, ts, "/search?q=aditya&timeout=-5s")
	if code != http.StatusBadRequest {
		t.Errorf("negative timeout: status = %d", code)
	}
	// A 1ns deadline expires before the search can finish. The client
	// chose it, so the failure is the client's: 408, not 503.
	code, body = get(t, ts, "/search?q="+url.QueryEscape("sudarshan aditya")+"&timeout=1ns")
	if code != http.StatusRequestTimeout {
		t.Errorf("1ns timeout: status = %d, body = %s", code, body)
	}
	if !strings.Contains(body, "timed out") {
		t.Error("timeout page does not say the search timed out")
	}
}

func getResp(t *testing.T, ts *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestSearchServerTimeoutIsOverload: a search that exceeds the *server's*
// default deadline (the client chose none) is overload protection, so it
// maps to 503 + Retry-After — not 408, which would blame the client.
func TestSearchServerTimeoutIsOverload(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.SetDefaultTimeout(time.Nanosecond)
	resp, body := getResp(t, ts, "/search?q="+url.QueryEscape("sudarshan aditya"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without a Retry-After hint")
	}
}

// TestSearchShedWithRetryAfter: with the gate's only worker slot occupied
// and a zero-length queue, a search is shed immediately with 503 and a
// Retry-After header matching the gate's configured hint.
func TestSearchShedWithRetryAfter(t *testing.T) {
	srv, ts := newTestServer(t)
	gate := serve.NewGate(serve.GateConfig{Workers: 1, Queue: 0, RetryAfter: 3 * time.Second})
	srv.SetGate(gate)

	// Occupy the single worker slot so the next request must shed.
	release, err := gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	resp, body := getResp(t, ts, "/search?q=aditya")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, body = %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want 3", got)
	}
	if !strings.Contains(body, "shed") {
		t.Errorf("shed page does not say so: %s", body)
	}
	if gate.Stats().Shed != 1 {
		t.Errorf("gate shed count = %d, want 1", gate.Stats().Shed)
	}

	// With the slot free again the same search succeeds.
	release()
	code, body2 := get(t, ts, "/search?q=aditya")
	if code != 200 || !strings.Contains(body2, "Aditya") {
		t.Errorf("post-release search: status = %d", code)
	}
}

// TestDebugEndpoints: SetMetrics mounts /debug (human page) and
// /debug/vars (JSON), and a served search shows up in both.
func TestDebugEndpoints(t *testing.T) {
	srv, ts := newTestServer(t)
	m := serve.NewMetrics(0, 0)
	m.BindGate(serve.NewGate(serve.GateConfig{Workers: 2}))
	srv.SetMetrics(m)

	if code, _ := get(t, ts, "/search?q=aditya"); code != 200 {
		t.Fatalf("search status = %d", code)
	}

	code, body := get(t, ts, "/debug")
	if code != 200 {
		t.Fatalf("/debug status = %d", code)
	}
	for _, frag := range []string{"gate_workers", "queries_total", "query_latency"} {
		if !strings.Contains(body, frag) {
			t.Errorf("/debug missing %q", frag)
		}
	}

	code, body = get(t, ts, "/debug/vars")
	if code != 200 {
		t.Fatalf("/debug/vars status = %d", code)
	}
	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v\n%s", err, body)
	}
	if snap.Counters["queries_total"] != 1 {
		t.Errorf("queries_total = %d, want 1", snap.Counters["queries_total"])
	}
	if snap.Counters["queries_ok"] != 1 {
		t.Errorf("queries_ok = %d, want 1", snap.Counters["queries_ok"])
	}
}
