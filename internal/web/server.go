// Package web serves the BANKS user interface over HTTP: keyword search
// with hyperlinked connection trees, the Section 4 browsing views (project
// / select / join / group-by / sort / paginate, with every foreign key a
// hyperlink and backward reference browsing), schema display, and the four
// display templates including SVG charts. It is the stdlib counterpart of
// the original system's Java servlets.
package web

import (
	"context"
	"errors"
	"fmt"
	"html/template"
	"math"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/banksdb/banks/internal/browse"
	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/serve"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

// Server is the BANKS web UI.
type Server struct {
	db        *sqldb.Database
	engine    *sqlexec.Engine
	searcher  func() *core.Searcher
	opts      *core.Options
	mux       *http.ServeMux
	engineErr func() error // optional post-query health check (disk stores)

	// The production front door, all optional (nil disables): admission
	// control in front of /search, per-query observability, and a default
	// server-side search deadline. Configure before serving — these fields
	// are read concurrently once requests flow.
	gate           *serve.Gate
	heavyGate      *serve.Gate // per-class admission: heavy classes gate here
	metrics        *serve.Metrics
	defaultTimeout time.Duration
}

// SetEngineErr installs a health check consulted after every search. A
// disk-resident engine (internal/store) degrades lazy-load failures to
// empty match sets so the expansion loop never panics; without this hook
// a corrupt segment would silently shrink results to nothing. When fn
// reports an error the request fails with 500 instead.
func (s *Server) SetEngineErr(fn func() error) { s.engineErr = fn }

// SetGate installs admission control on /search: at most the gate's
// worker count of searches run concurrently, a bounded queue waits, and
// the overflow is shed with 503 + Retry-After. Call before serving.
func (s *Server) SetGate(g *serve.Gate) { s.gate = g }

// SetHeavyGate installs a second admission gate for the heavy query
// classes (serve.IsHeavyClass: multi-term, prefix and qualified
// queries). With it set, heavy requests contend only for the heavy
// gate's slots while cheap single-term queries keep the main gate —
// a burst of expensive queries can no longer starve the cheap ones.
// Call before serving.
func (s *Server) SetHeavyGate(g *serve.Gate) { s.heavyGate = g }

// SetMetrics installs query observability (latency histograms, outcome
// counters, the slow-query log) and mounts the /debug and /debug/vars
// endpoints. Call before serving.
func (s *Server) SetMetrics(m *serve.Metrics) {
	s.metrics = m
	if m != nil {
		s.mux.Handle("/debug", serve.DebugHandler(m))
		s.mux.Handle("/debug/vars", serve.DebugHandler(m))
	}
}

// SetDefaultTimeout installs a server-side deadline applied to searches
// whose request did not specify its own timeout parameter. Expiry maps to
// 503 + Retry-After (server overload semantics), unlike a client-chosen
// timeout which maps to 408. Call before serving.
func (s *Server) SetDefaultTimeout(d time.Duration) { s.defaultTimeout = d }

// NewServer builds a server over the database and a searcher provider.
// searcher is called once per request needing search structures, so a
// caller that atomically swaps in a rebuilt searcher (System.Refresh)
// gets each HTTP request pinned to one consistent snapshot: a request
// never mixes the graph it searched with a newer one. opts sets the
// default search parameters (nil uses core defaults).
func NewServer(db *sqldb.Database, searcher func() *core.Searcher, opts *core.Options) *Server {
	s := &Server{
		db:       db,
		engine:   sqlexec.New(db),
		searcher: searcher,
		opts:     opts,
	}
	if s.opts == nil {
		s.opts = core.DefaultOptions()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleHome)
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/browse", s.handleBrowse)
	mux.HandleFunc("/tuple", s.handleTuple)
	mux.HandleFunc("/schema", s.handleSchema)
	mux.HandleFunc("/template", s.handleTemplate)
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>{{.Title}} — BANKS</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; }
td, th { border: 1px solid #aaa; padding: 3px 8px; }
.keyword { background: #ffd; font-weight: bold; }
.tree ul { list-style: none; }
.score { color: #666; font-size: smaller; }
nav a { margin-right: 1em; }
</style></head>
<body>
<nav><a href="/">Search</a> <a href="/schema">Schema</a></nav>
<h1>{{.Title}}</h1>
{{.Body}}
</body></html>`))

func (s *Server) render(w http.ResponseWriter, title string, body template.HTML) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = pageTmpl.Execute(w, struct {
		Title string
		Body  template.HTML
	}{Title: title, Body: body})
}

func (s *Server) renderError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(status)
	_ = pageTmpl.Execute(w, struct {
		Title string
		Body  template.HTML
	}{Title: "Error", Body: template.HTML("<p>" + template.HTMLEscapeString(err.Error()) + "</p>")})
}

// searchFormHTML renders the search form: keywords, an optional per-query
// timeout (empty = none), and the execution strategy (empty = the
// server's default).
func (s *Server) searchFormHTML(q, timeout, strategy string) string {
	var b strings.Builder
	fmt.Fprintf(&b, `<form action="/search"><input name="q" size="40" placeholder="keywords..." value="%s"> `,
		template.HTMLEscapeString(q))
	fmt.Fprintf(&b, `timeout <input name="timeout" size="6" placeholder="none" value="%s"> `,
		template.HTMLEscapeString(timeout))
	b.WriteString(`strategy <select name="strategy"><option value="">default</option>`)
	for _, name := range core.Strategies() {
		sel := ""
		if name == strategy {
			sel = " selected"
		}
		fmt.Fprintf(&b, `<option value="%s"%s>%s</option>`,
			template.HTMLEscapeString(name), sel, template.HTMLEscapeString(name))
	}
	b.WriteString(`</select> <input type="submit" value="Search"></form>`)
	return b.String()
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	b.WriteString(s.searchFormHTML("", "", ""))
	b.WriteString("<h2>Relations</h2><ul>")
	s.db.RLock()
	for _, name := range s.db.TableNames() {
		if name == "banks_templates" {
			continue
		}
		t := s.db.Table(name)
		fmt.Fprintf(&b, `<li><a href="/browse?table=%s">%s</a> (%d rows)</li>`,
			template.URLQueryEscaper(name), template.HTMLEscapeString(name), t.Len())
	}
	s.db.RUnlock()
	b.WriteString("</ul>")
	if names, err := browse.ListTemplates(s.engine); err == nil && len(names) > 0 {
		b.WriteString("<h2>Templates</h2><ul>")
		for _, n := range names {
			fmt.Fprintf(&b, `<li><a href="/template?name=%s">%s</a></li>`,
				template.URLQueryEscaper(n), template.HTMLEscapeString(n))
		}
		b.WriteString("</ul>")
	}
	s.render(w, "BANKS: Browsing ANd Keyword Searching", template.HTML(b.String()))
}

// pkOf renders the textual primary key of a node's row, or "" when the
// table has no single-column PK. g is the graph snapshot the request
// pinned.
func (s *Server) pkOf(g graph.View, n graph.NodeID) (table, pk string) {
	table = g.TableNameOf(n)
	t := s.db.Table(table)
	if t == nil {
		return table, ""
	}
	schema := t.Schema()
	if len(schema.PrimaryKey) != 1 {
		return table, ""
	}
	row := t.Row(g.RIDOf(n))
	if row == nil {
		return table, ""
	}
	return table, row[schema.ColumnIndex(schema.PrimaryKey[0])].String()
}

func (s *Server) tupleHTML(g graph.View, n graph.NodeID, matched bool) string {
	table := g.TableNameOf(n)
	t := s.db.Table(table)
	row := t.Row(g.RIDOf(n))
	var cells []string
	for i, c := range t.Schema().Columns {
		cells = append(cells, template.HTMLEscapeString(c.Name+"="+row[i].String()))
	}
	label := template.HTMLEscapeString(table) + "(" + strings.Join(cells, ", ") + ")"
	_, pk := s.pkOf(g, n)
	if pk != "" {
		label = fmt.Sprintf(`<a href="/tuple?table=%s&pk=%s">%s</a>`,
			template.URLQueryEscaper(table), template.URLQueryEscaper(pk), label)
	}
	if matched {
		label = `<span class="keyword">` + label + `</span>`
	}
	return label
}

// renderOverload maps an admission rejection (or a server-side deadline)
// to 503 with a Retry-After hint — the "come back later" contract that
// tells well-behaved clients to back off instead of hammering. gate is
// the gate the request was admitted through (its backoff hint applies);
// nil falls back to the main gate, then one second.
func (s *Server) renderOverload(w http.ResponseWriter, gate *serve.Gate, err error) {
	if gate == nil {
		gate = s.gate
	}
	retry := time.Second
	if gate != nil {
		retry = gate.RetryAfter()
	}
	w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(retry.Seconds()))))
	s.renderError(w, http.StatusServiceUnavailable, err)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	timeoutParam := r.URL.Query().Get("timeout")
	strategyParam := r.URL.Query().Get("strategy")
	terms := strings.Fields(q)
	if len(terms) == 0 {
		s.render(w, "Search", template.HTML(s.searchFormHTML("", timeoutParam, strategyParam)))
		return
	}
	// Validate the timeout field before taking a worker slot: a malformed
	// request must not occupy admission capacity (and every admitted
	// request then observes exactly one query, which /debug audits).
	clientTimeout := timeoutParam != ""
	var clientDeadline time.Duration
	if clientTimeout {
		d, err := time.ParseDuration(timeoutParam)
		if err != nil || d <= 0 {
			s.renderError(w, http.StatusBadRequest, fmt.Errorf("bad timeout %q (want a duration like 500ms)", timeoutParam))
			return
		}
		clientDeadline = d
	}
	// Admission control: the search runs only once its class's gate
	// grants a worker slot. The class is computed before admission so a
	// heavy query (multi-term, prefix, qualified) contends for the heavy
	// gate when one is installed, leaving the main gate to cheap
	// single-term traffic. A full queue (or a queue wait past the gate's
	// patience) sheds the request immediately with 503 + Retry-After,
	// before any engine work happens; a client that disconnects while
	// queued just goes away.
	class := serve.ClassOf(len(terms), false, false)
	gate := s.gate
	if s.heavyGate != nil && serve.IsHeavyClass(class) {
		gate = s.heavyGate
	}
	release, aerr := gate.Acquire(r.Context())
	if aerr != nil {
		if serve.IsOverload(aerr) {
			s.renderOverload(w, gate, aerr)
		}
		return
	}
	// The request context rides into the expansion loop, so a client that
	// disconnects stops paying for its search; the optional timeout field
	// (a Go duration, e.g. "500ms" or "2s"; empty = none) adds a
	// per-query deadline on top, and the server's default timeout (when
	// configured) bounds requests that chose none.
	ctx := r.Context()
	if clientTimeout {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, clientDeadline)
		defer cancel()
	} else if s.defaultTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.defaultTimeout)
		defer cancel()
	}
	// The strategy field overrides the server's default execution
	// strategy for this request.
	opts := s.opts
	if strategyParam != "" {
		o := *s.opts
		o.Strategy = strategyParam
		opts = &o
	}
	// Pin one searcher (and therefore one graph snapshot) for the whole
	// request; a concurrent Refresh cannot tear the result rendering.
	searcher := s.searcher()
	g := searcher.Graph()
	start := time.Now()
	// The deadline is enforced here, at the response layer, not only
	// inside the expansion loop: the query runs in its own goroutine and
	// the response leaves the moment ctx expires, even if the expansion is
	// slow to reach its next cancellation poll (heavy GC or a concurrent
	// rebuild can stretch that to seconds). The abandoned search unwinds
	// in the background and frees its admission slot only when it
	// actually exits, so admitted concurrency stays bounded.
	type queryResult struct {
		answers []*core.Answer
		stats   *core.Stats
		err     error
	}
	done := make(chan queryResult, 1)
	go func() {
		answers, stats, qerr := searcher.Query(ctx, core.Request{Terms: terms}, opts, nil)
		s.metrics.ObserveQuery(serve.QueryOutcome{
			Query:           q,
			Strategy:        opts.Strategy,
			Class:           class,
			Elapsed:         time.Since(start),
			Err:             qerr,
			BudgetExhausted: stats != nil && stats.BudgetExhausted,
			TimedOut:        errors.Is(qerr, context.DeadlineExceeded),
			Detail:          stats,
		})
		done <- queryResult{answers, stats, qerr}
		release()
	}()
	var answers []*core.Answer
	var stats *core.Stats
	var err error
	select {
	case res := <-done:
		answers, stats, err = res.answers, res.stats, res.err
	case <-ctx.Done():
		err = ctx.Err()
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// A deadline the client chose is its own doing: 408. A deadline
		// the server imposed is overload protection: 503 + Retry-After.
		if clientTimeout {
			s.renderError(w, http.StatusRequestTimeout,
				fmt.Errorf("search timed out after %s", timeoutParam))
		} else {
			s.renderOverload(w, gate, fmt.Errorf("search exceeded the server's %s limit", s.defaultTimeout))
		}
		return
	}
	if errors.Is(err, context.Canceled) {
		return // client disconnected; nobody is listening
	}
	if err != nil {
		s.renderError(w, http.StatusBadRequest, err)
		return
	}
	if s.engineErr != nil {
		if eerr := s.engineErr(); eerr != nil {
			s.renderError(w, http.StatusInternalServerError,
				fmt.Errorf("disk-resident engine: %w", eerr))
			return
		}
	}
	var b strings.Builder
	b.WriteString(s.searchFormHTML(q, timeoutParam, strategyParam))
	if stats != nil && stats.BudgetExhausted {
		fmt.Fprintf(&b, `<p class="score">Partial results: the query exhausted its %s budget.</p>`,
			template.HTMLEscapeString(stats.BudgetReason))
	}
	if len(answers) == 0 {
		b.WriteString("<p>No results.</p>")
	}
	// Row reads during tree rendering hold the database read lock so a
	// concurrent writer cannot expose half-written rows.
	s.db.RLock()
	for _, a := range answers {
		matched := make(map[graph.NodeID]bool)
		for _, n := range a.TermNodes {
			matched[n] = true
		}
		children := make(map[graph.NodeID][]core.TreeEdge)
		for _, e := range a.Edges {
			children[e.From] = append(children[e.From], e)
		}
		fmt.Fprintf(&b, `<div class="tree"><p>%d. <span class="score">score %.4f</span></p><ul><li>`,
			a.Rank, a.Score)
		var walk func(n graph.NodeID)
		walk = func(n graph.NodeID) {
			b.WriteString(s.tupleHTML(g, n, matched[n]))
			if len(children[n]) > 0 {
				b.WriteString("<ul>")
				for _, e := range children[n] {
					b.WriteString("<li>")
					walk(e.To)
					b.WriteString("</li>")
				}
				b.WriteString("</ul>")
			}
		}
		walk(a.Root)
		b.WriteString("</li></ul></div>")
	}
	s.db.RUnlock()
	s.render(w, "Results for "+q, template.HTML(b.String()))
}

// parseView decodes the browsing controls from query parameters.
func parseView(r *http.Request) *browse.View {
	q := r.URL.Query()
	v := &browse.View{Table: q.Get("table")}
	for _, d := range q["drop"] {
		if d != "" {
			v.Dropped = append(v.Dropped, d)
		}
	}
	if c, op, val := q.Get("fcol"), q.Get("fop"), q.Get("fval"); c != "" && op != "" {
		v.Filters = append(v.Filters, browse.Filter{Column: c, Op: op, Value: val})
	}
	for _, j := range q["join"] {
		if j != "" {
			v.Joins = append(v.Joins, browse.Join{FKColumn: j})
		}
	}
	v.GroupBy = q.Get("groupby")
	v.OrderBy = q.Get("orderby")
	v.Desc = q.Get("desc") == "1"
	if p, err := strconv.Atoi(q.Get("page")); err == nil && p >= 0 {
		v.Page = p
	}
	return v
}

func (s *Server) handleBrowse(w http.ResponseWriter, r *http.Request) {
	v := parseView(r)
	if v.Table == "" {
		s.renderError(w, http.StatusBadRequest, fmt.Errorf("missing table parameter"))
		return
	}
	res, err := v.Run(s.engine)
	if err != nil {
		s.renderError(w, http.StatusBadRequest, err)
		return
	}
	t := s.db.Table(v.Table)
	var b strings.Builder
	// Column controls: drop / sort / group-by, as in Figure 4's header
	// menus, rendered as links.
	b.WriteString("<table><tr>")
	for _, c := range res.Columns {
		esc := template.HTMLEscapeString(c)
		uq := template.URLQueryEscaper(c)
		tq := template.URLQueryEscaper(v.Table)
		fmt.Fprintf(&b, `<th>%s<br><a href="/browse?table=%s&orderby=%s">sort</a> `+
			`<a href="/browse?table=%s&orderby=%s&desc=1">desc</a> `+
			`<a href="/browse?table=%s&drop=%s">drop</a> `+
			`<a href="/browse?table=%s&groupby=%s">group</a></th>`,
			esc, tq, uq, tq, uq, tq, uq, tq, uq)
	}
	b.WriteString("</tr>")
	// FK columns become hyperlinks.
	fkFor := map[string]sqldb.ForeignKey{}
	if t != nil {
		for _, fk := range t.Schema().ForeignKeys {
			fkFor[strings.ToLower(fk.Column)] = fk
		}
	}
	for _, row := range res.Rows {
		b.WriteString("<tr>")
		for i, val := range row {
			cell := template.HTMLEscapeString(val.String())
			if i < len(res.Columns) {
				if fk, ok := fkFor[strings.ToLower(res.Columns[i])]; ok && !val.IsNull() {
					cell = fmt.Sprintf(`<a href="/tuple?table=%s&pk=%s">%s</a>`,
						template.URLQueryEscaper(fk.RefTable), template.URLQueryEscaper(val.String()), cell)
				}
			}
			b.WriteString("<td>" + cell + "</td>")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	// Join-in controls for each FK, and pagination.
	if t != nil && len(t.Schema().ForeignKeys) > 0 && v.GroupBy == "" {
		b.WriteString("<p>Join in: ")
		for _, fk := range t.Schema().ForeignKeys {
			fmt.Fprintf(&b, `<a href="/browse?table=%s&join=%s">%s→%s</a> `,
				template.URLQueryEscaper(v.Table), template.URLQueryEscaper(fk.Column),
				template.HTMLEscapeString(fk.Column), template.HTMLEscapeString(fk.RefTable))
		}
		b.WriteString("</p>")
	}
	fmt.Fprintf(&b, `<p><a href="/browse?table=%s&page=%d">next page</a></p>`,
		template.URLQueryEscaper(v.Table), v.Page+1)
	s.render(w, "Browse "+v.Table, template.HTML(b.String()))
}

func (s *Server) handleTuple(w http.ResponseWriter, r *http.Request) {
	table := r.URL.Query().Get("table")
	pk := r.URL.Query().Get("pk")
	t := s.db.Table(table)
	if t == nil {
		s.renderError(w, http.StatusNotFound, fmt.Errorf("no table %q", table))
		return
	}
	// Key lookup and row read take the database read lock; the returned
	// row slice is immutable once inserted, so it is safe to render after
	// release (LinksFor manages its own locking).
	s.db.RLock()
	rid := t.LookupPK([]sqldb.Value{sqldb.Text(pk)})
	if rid < 0 {
		if i, err := strconv.ParseInt(pk, 10, 64); err == nil {
			rid = t.LookupPK([]sqldb.Value{sqldb.Int(i)})
		}
	}
	if rid < 0 {
		s.db.RUnlock()
		s.renderError(w, http.StatusNotFound, fmt.Errorf("no %s row with key %q", table, pk))
		return
	}
	row := t.Row(rid)
	s.db.RUnlock()
	links, err := browse.LinksFor(s.db, table, rid)
	if err != nil {
		s.renderError(w, http.StatusInternalServerError, err)
		return
	}
	var b strings.Builder
	b.WriteString("<table>")
	outFor := map[string]browse.OutLink{}
	for _, l := range links.Out {
		outFor[strings.ToLower(l.Column)] = l
	}
	for i, c := range t.Schema().Columns {
		val := template.HTMLEscapeString(row[i].String())
		if l, ok := outFor[strings.ToLower(c.Name)]; ok {
			val = fmt.Sprintf(`<a href="/tuple?table=%s&pk=%s">%s</a>`,
				template.URLQueryEscaper(l.RefTable), template.URLQueryEscaper(l.RefValue), val)
		}
		fmt.Fprintf(&b, "<tr><th>%s</th><td>%s</td></tr>", template.HTMLEscapeString(c.Name), val)
	}
	b.WriteString("</table>")
	if len(links.In) > 0 {
		b.WriteString("<h2>Referenced by</h2><ul>")
		for _, in := range links.In {
			fmt.Fprintf(&b, "<li>%s.%s (%d rows)</li>",
				template.HTMLEscapeString(in.Table), template.HTMLEscapeString(in.Column), len(in.RIDs))
		}
		b.WriteString("</ul>")
	}
	s.render(w, fmt.Sprintf("%s %s", table, pk), template.HTML(b.String()))
}

func (s *Server) handleSchema(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	for _, name := range s.db.TableNames() {
		t := s.db.Table(name)
		fmt.Fprintf(&b, "<h2>%s</h2><pre>%s</pre>",
			template.HTMLEscapeString(name), template.HTMLEscapeString(t.Schema().String()))
	}
	s.render(w, "Schema", template.HTML(b.String()))
}

func (s *Server) handleTemplate(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	tpl, err := browse.LoadTemplate(s.engine, name)
	if err != nil {
		s.renderError(w, http.StatusNotFound, err)
		return
	}
	var body template.HTML
	switch tpl.Kind {
	case browse.KindCrossTab:
		ct, err := browse.RenderCrossTab(s.engine, tpl)
		if err != nil {
			s.renderError(w, http.StatusBadRequest, err)
			return
		}
		body = crossTabHTML(ct)
	case browse.KindGroupBy, browse.KindFolder:
		lvl, err := browse.RenderHierarchy(s.engine, tpl, r.URL.Query()["path"])
		if err != nil {
			s.renderError(w, http.StatusBadRequest, err)
			return
		}
		body = hierarchyHTML(name, tpl.Kind, lvl)
	case browse.KindChart:
		ch, err := browse.RenderChart(s.engine, tpl)
		if err != nil {
			s.renderError(w, http.StatusBadRequest, err)
			return
		}
		body = chartHTML(ch, tpl.Spec["link"])
	default:
		s.renderError(w, http.StatusInternalServerError, fmt.Errorf("unknown template kind %q", tpl.Kind))
		return
	}
	s.render(w, "Template "+name, body)
}

func crossTabHTML(ct *browse.CrossTab) template.HTML {
	var b strings.Builder
	b.WriteString("<table><tr><th>" + template.HTMLEscapeString(ct.RowAttr+" \\ "+ct.ColAttr) + "</th>")
	for _, c := range ct.ColVals {
		b.WriteString("<th>" + template.HTMLEscapeString(c) + "</th>")
	}
	b.WriteString("</tr>")
	for _, rv := range ct.RowVals {
		b.WriteString("<tr><th>" + template.HTMLEscapeString(rv) + "</th>")
		for _, cv := range ct.ColVals {
			b.WriteString("<td>" + template.HTMLEscapeString(ct.Cells[[2]string{rv, cv}]) + "</td>")
		}
		b.WriteString("</tr>")
	}
	b.WriteString("</table>")
	return template.HTML(b.String())
}

func hierarchyHTML(name string, kind browse.TemplateKind, lvl *browse.HierLevel) template.HTML {
	var b strings.Builder
	if lvl.Leaves != nil {
		b.WriteString("<table><tr>")
		for _, c := range lvl.Leaves.Columns {
			b.WriteString("<th>" + template.HTMLEscapeString(c) + "</th>")
		}
		b.WriteString("</tr>")
		for _, row := range lvl.Leaves.Rows {
			b.WriteString("<tr>")
			for _, v := range row {
				b.WriteString("<td>" + template.HTMLEscapeString(v.String()) + "</td>")
			}
			b.WriteString("</tr>")
		}
		b.WriteString("</table>")
		return template.HTML(b.String())
	}
	marker := "📂 "
	if kind == browse.KindGroupBy {
		marker = ""
	}
	b.WriteString("<ul>")
	for _, v := range lvl.Values {
		href := "/template?name=" + template.URLQueryEscaper(name)
		for _, p := range lvl.Path {
			href += "&path=" + template.URLQueryEscaper(p)
		}
		href += "&path=" + template.URLQueryEscaper(v.Value)
		fmt.Fprintf(&b, `<li>%s<a href="%s">%s</a> (%d)</li>`,
			marker, href, template.HTMLEscapeString(v.Value), v.Count)
	}
	b.WriteString("</ul>")
	return template.HTML(b.String())
}

// chartHTML renders bar, line and pie charts as inline SVG; link, when
// set, names the template each datum links to (template composition).
func chartHTML(ch *browse.Chart, link string) template.HTML {
	var b strings.Builder
	const w, h = 480, 240
	maxV := 0.0
	total := 0.0
	for _, v := range ch.Values {
		if v > maxV {
			maxV = v
		}
		total += v
	}
	if maxV == 0 {
		maxV = 1
	}
	fmt.Fprintf(&b, `<svg width="%d" height="%d" xmlns="http://www.w3.org/2000/svg">`, w, h+40)
	n := len(ch.Values)
	switch ch.Style {
	case "bar":
		bw := w / max(n, 1)
		for i, v := range ch.Values {
			bh := int(v / maxV * float64(h))
			fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="#48a"><title>%s: %g</title></rect>`,
				i*bw+2, h-bh, bw-4, bh, template.HTMLEscapeString(ch.Labels[i]), v)
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10">%s</text>`,
				i*bw+2, h+14, template.HTMLEscapeString(ch.Labels[i]))
		}
	case "line":
		step := float64(w) / float64(max(n-1, 1))
		var pts []string
		for i, v := range ch.Values {
			pts = append(pts, fmt.Sprintf("%d,%d", int(float64(i)*step), h-int(v/maxV*float64(h))))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="#48a" stroke-width="2"/>`, strings.Join(pts, " "))
	case "pie":
		cx, cy, rad := w/2, h/2, h/2-10
		angle := 0.0
		for i, v := range ch.Values {
			frac := v / maxOr1(total)
			a2 := angle + frac*2*3.14159265358979
			large := 0
			if frac > 0.5 {
				large = 1
			}
			x1, y1 := arcPoint(cx, cy, rad, angle)
			x2, y2 := arcPoint(cx, cy, rad, a2)
			fmt.Fprintf(&b, `<path d="M%d,%d L%d,%d A%d,%d 0 %d 1 %d,%d Z" fill="hsl(%d,60%%,60%%)"><title>%s: %g</title></path>`,
				cx, cy, x1, y1, rad, rad, large, x2, y2, (i*67)%360, template.HTMLEscapeString(ch.Labels[i]), v)
			angle = a2
		}
	}
	b.WriteString("</svg>")
	if link != "" {
		fmt.Fprintf(&b, `<p>Drill down: <a href="/template?name=%s">%s</a></p>`,
			template.URLQueryEscaper(link), template.HTMLEscapeString(link))
	}
	return template.HTML(b.String())
}

func arcPoint(cx, cy, r int, angle float64) (int, int) {
	return cx + int(float64(r)*math.Cos(angle)), cy + int(float64(r)*math.Sin(angle))
}

func maxOr1(v float64) float64 {
	if v <= 0 {
		return 1
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
