package index

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// newTextDB builds a two-table db with plenty of shared tokens.
func newTextDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	for _, s := range []*sqldb.TableSchema{
		{
			Name: "author",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TypeText},
				{Name: "name", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"id"},
		},
		{
			Name: "paper",
			Columns: []sqldb.Column{
				{Name: "id", Type: sqldb.TypeText},
				{Name: "title", Type: sqldb.TypeText},
			},
			PrimaryKey: []string{"id"},
		},
	} {
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	rows := [][2]string{
		{"a0", "Soumen Chakrabarti"},
		{"a1", "Sunita Sarawagi"},
		{"a2", "Byron Dom"},
	}
	for _, r := range rows {
		if _, err := db.Insert("author", []sqldb.Value{sqldb.Text(r[0]), sqldb.Text(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	papers := [][2]string{
		{"p0", "Mining Surprising Patterns"},
		{"p1", "Keyword Searching in Databases"},
	}
	for _, r := range papers {
		if _, err := db.Insert("paper", []sqldb.Value{sqldb.Text(r[0]), sqldb.Text(r[1])}); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// ixMutator drives paired db + graph-delta + index-delta mutations the way
// the serving layer does, tracking per-row token sets for the diffs.
type ixMutator struct {
	t  *testing.T
	db *sqldb.Database
	gd *graph.Delta
	id *Delta
}

func newIxMutator(t *testing.T, db *sqldb.Database) *ixMutator {
	t.Helper()
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return &ixMutator{t: t, db: db, gd: graph.NewDelta(g, db, true), id: NewDelta(ix)}
}

// tokensOf returns the token set of the row's text columns.
func (m *ixMutator) tokensOf(table string, rid sqldb.RID) map[string]bool {
	tbl := m.db.Table(table)
	row := tbl.Row(rid)
	if row == nil {
		return nil
	}
	set := make(map[string]bool)
	for i, c := range tbl.Schema().Columns {
		if c.Type != sqldb.TypeText || row[i].IsNull() {
			continue
		}
		for _, tok := range Tokenize(row[i].S) {
			set[tok] = true
		}
	}
	return set
}

// fold applies one already-captured change to both deltas.
func (m *ixMutator) fold(ch graph.RowChange, oldToks map[string]bool, oldNode graph.NodeID) {
	m.t.Helper()
	newToks := m.tokensOf(ch.Table, ch.RID)
	if err := m.gd.Apply([]graph.RowChange{ch}); err != nil {
		m.t.Fatalf("graph apply: %v", err)
	}
	node := oldNode
	if ch.Op == graph.RowInsert {
		node = m.gd.Snapshot().NodeOf(ch.Table, ch.RID)
		if node == graph.NoNode {
			m.t.Fatalf("inserted row %s/%d has no node", ch.Table, ch.RID)
		}
	}
	for tok := range oldToks {
		if !newToks[tok] {
			m.id.Remove(tok, node)
		}
	}
	for tok := range newToks {
		if !oldToks[tok] {
			m.id.Add(tok, node)
		}
	}
}

func (m *ixMutator) insert(table string, vals ...sqldb.Value) sqldb.RID {
	m.t.Helper()
	rid, err := m.db.Insert(table, vals)
	if err != nil {
		m.t.Fatalf("insert %s: %v", table, err)
	}
	m.fold(graph.RowChange{Op: graph.RowInsert, Table: table, RID: rid}, nil, graph.NoNode)
	return rid
}

func (m *ixMutator) update(table string, rid sqldb.RID, set map[string]sqldb.Value) {
	m.t.Helper()
	oldToks := m.tokensOf(table, rid)
	node := m.gd.Snapshot().NodeOf(table, rid)
	old, err := m.gd.Targets(table, rid)
	if err != nil {
		m.t.Fatal(err)
	}
	if err := m.db.Update(table, rid, set); err != nil {
		m.t.Fatalf("update: %v", err)
	}
	m.fold(graph.RowChange{Op: graph.RowUpdate, Table: table, RID: rid, OldTargets: old}, oldToks, node)
}

func (m *ixMutator) del(table string, rid sqldb.RID) {
	m.t.Helper()
	oldToks := m.tokensOf(table, rid)
	node := m.gd.Snapshot().NodeOf(table, rid)
	old, err := m.gd.Targets(table, rid)
	if err != nil {
		m.t.Fatal(err)
	}
	if err := m.db.Delete(table, rid); err != nil {
		m.t.Fatalf("delete: %v", err)
	}
	m.fold(graph.RowChange{Op: graph.RowDelete, Table: table, RID: rid, OldTargets: old}, oldToks, node)
}

// ixFingerprint renders an index against its graph view in node-id-free
// form: every term's postings as table/rid pairs, plus the counts.
func ixFingerprint(t *testing.T, ix View, g graph.View) string {
	t.Helper()
	var b strings.Builder
	err := ix.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		rows := make([]string, len(ns))
		for i, n := range ns {
			rows[i] = fmt.Sprintf("%s/%d", g.TableNameOf(n), g.RIDOf(n))
		}
		sort.Strings(rows)
		fmt.Fprintf(&b, "%s: %s\n", tok, strings.Join(rows, ","))
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "terms=%d posts=%d\n", ix.NumTerms(), ix.NumPostings())
	return b.String()
}

func (m *ixMutator) checkParity(label string) {
	m.t.Helper()
	g2, err := graph.Build(m.db, nil)
	if err != nil {
		m.t.Fatal(err)
	}
	ix2, err := Build(m.db, g2)
	if err != nil {
		m.t.Fatal(err)
	}
	gSnap := m.gd.Snapshot()
	ixSnap := m.id.Snapshot(gSnap.NumNodes())
	got := ixFingerprint(m.t, ixSnap, gSnap)
	want := ixFingerprint(m.t, ix2, g2)
	if got != want {
		m.t.Fatalf("%s: index overlay diverges from rebuild\n--- overlay ---\n%s--- rebuild ---\n%s", label, got, want)
	}
	if ixSnap.NumNodes() != gSnap.NumNodes() {
		m.t.Fatalf("%s: index covers %d nodes, graph has %d", label, ixSnap.NumNodes(), gSnap.NumNodes())
	}
}

func TestIndexOverlayParityScenarios(t *testing.T) {
	db := newTextDB(t)
	m := newIxMutator(t, db)
	m.checkParity("pristine")

	m.insert("author", sqldb.Text("a9"), sqldb.Text("Gerhard Weikum"))
	m.checkParity("insert")

	// Retitle: drops tokens, keeps one, adds new ones.
	m.update("paper", 0, map[string]sqldb.Value{"title": sqldb.Text("Mining Banked Data")})
	m.checkParity("update")

	// Token moved entirely off a row it shared with another ("sunita" only
	// on a1): full removal of a term from the merged index.
	m.update("author", 1, map[string]sqldb.Value{"name": sqldb.Text("S. Sarawagi")})
	m.checkParity("rename")

	m.del("author", 2)
	m.checkParity("delete")

	// Re-add a removed token on a different row.
	m.update("author", 0, map[string]sqldb.Value{"name": sqldb.Text("Soumen Sunita")})
	m.checkParity("re-add")

	// NULL out a text column.
	m.update("paper", 1, map[string]sqldb.Value{"title": sqldb.Null()})
	m.checkParity("null text")
}

func TestIndexOverlayLookups(t *testing.T) {
	db := newTextDB(t)
	m := newIxMutator(t, db)
	m.insert("author", sqldb.Text("a9"), sqldb.Text("Surajit Chaudhuri"))
	m.del("author", 2) // byron dom gone
	m.update("author", 1, map[string]sqldb.Value{"name": sqldb.Text("Sunita S")})

	gSnap := m.gd.Snapshot()
	o := m.id.Snapshot(gSnap.NumNodes())

	if got := o.Lookup("byron"); len(got.Nodes) != 0 {
		t.Fatalf("deleted row still matches: %v", got.Nodes)
	}
	if got := o.Lookup("surajit"); len(got.Nodes) != 1 ||
		gSnap.RIDOf(got.Nodes[0]) != 3 || gSnap.TableNameOf(got.Nodes[0]) != "author" {
		t.Fatalf("fresh token lookup = %+v", got)
	}
	// Metadata matches always come from the base.
	if got := o.Lookup("author"); len(got.Tables) != 1 {
		t.Fatalf("metadata lookup = %+v", got)
	}
	// Prefix across base + delta: "s" hits soumen, sunita (update kept it),
	// surprising, searching (base papers), surajit (added).
	pn := o.LookupPrefix("su")
	var rows []string
	for _, n := range pn {
		rows = append(rows, fmt.Sprintf("%s/%d", gSnap.TableNameOf(n), gSnap.RIDOf(n)))
	}
	sort.Strings(rows)
	want := []string{"author/1", "author/3", "paper/0"}
	if !reflect.DeepEqual(rows, want) {
		t.Fatalf("LookupPrefix(su) rows = %v, want %v", rows, want)
	}
	toks := o.PrefixTokens("s")
	for _, tok := range toks {
		if tok == "sarawagi" {
			t.Fatalf("fully-removed token still listed: %v", toks)
		}
	}
	has := func(want string) bool {
		for _, tok := range toks {
			if tok == want {
				return true
			}
		}
		return false
	}
	for _, tok := range []string{"sunita", "surajit", "surprising", "searching"} {
		if !has(tok) {
			t.Fatalf("PrefixTokens(s) = %v, missing %q", toks, tok)
		}
	}
}

func TestIndexOverlaySnapshotImmutable(t *testing.T) {
	db := newTextDB(t)
	m := newIxMutator(t, db)
	m.insert("paper", sqldb.Text("p9"), sqldb.Text("Banks Browsing"))
	gSnap := m.gd.Snapshot()
	snap := m.id.Snapshot(gSnap.NumNodes())
	before := ixFingerprint(t, snap, gSnap)

	m.update("paper", 0, map[string]sqldb.Value{"title": sqldb.Text("Completely New Words")})
	m.del("paper", 1)
	m.insert("author", sqldb.Text("a7"), sqldb.Text("Banks Mining"))

	if got := ixFingerprint(t, snap, gSnap); got != before {
		t.Fatalf("published snapshot mutated:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	m.checkParity("after immutability churn")
}

func TestIndexOverlayRandomizedParity(t *testing.T) {
	db := newTextDB(t)
	m := newIxMutator(t, db)
	rng := rand.New(rand.NewSource(7))
	words := []string{"banks", "keyword", "search", "graph", "mining", "sunita", "data", "proximity"}
	title := func() string {
		k := 1 + rng.Intn(3)
		parts := make([]string, k)
		for i := range parts {
			parts[i] = words[rng.Intn(len(words))]
		}
		return strings.Join(parts, " ")
	}
	var papers []sqldb.RID
	db.Table("paper").Scan(func(rid sqldb.RID, _ []sqldb.Value) bool {
		papers = append(papers, rid)
		return true
	})
	next := 0
	for step := 0; step < 40; step++ {
		switch op := rng.Intn(10); {
		case op < 4:
			id := fmt.Sprintf("q%d", next)
			next++
			papers = append(papers, m.insert("paper", sqldb.Text(id), sqldb.Text(title())))
		case op < 8:
			if len(papers) == 0 {
				continue
			}
			m.update("paper", papers[rng.Intn(len(papers))], map[string]sqldb.Value{"title": sqldb.Text(title())})
		default:
			if len(papers) < 2 {
				continue
			}
			k := rng.Intn(len(papers))
			m.del("paper", papers[k])
			papers = append(papers[:k], papers[k+1:]...)
		}
		if step%5 == 4 {
			m.checkParity(fmt.Sprintf("step %d", step))
		}
	}
	m.checkParity("final")
}
