package index

// Lazy (disk-resident) indexes. The paper keeps its keyword index on disk;
// EMBANKS pushes the whole engine that way. A lazy Index keeps only the
// term dictionary resident (sorted tokens, posting counts and the small
// metadata map) and fetches each term's posting list from a LazySource on
// first lookup — the source (internal/store) decides caching and eviction,
// so the EMBANKS memory-bounded mode is a source policy, not an index
// concern. Lookup results are identical to the eager index built from the
// same data: postings arrive sorted and deduplicated, exactly as Build
// leaves them.

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/banksdb/banks/internal/graph"
)

// LazyDict is the parsed term dictionary of a store-opened index: the
// sorted token list, per-term posting counts, the total posting count and
// the metadata (relation/column name) map. It is immutable once returned.
type LazyDict struct {
	Toks   []string // sorted ascending; index i keys Postings(i, ...)
	Counts []int    // postings per term, parallel to Toks
	Posts  int      // total postings
	Meta   map[string][]int32
}

// LazySource backs a lazy Index. Dict is called once (memoized by the
// Index); Postings may be called concurrently and must return the decoded,
// sorted posting list of dictionary entry i. Returned slices are treated
// as immutable.
type LazySource interface {
	Dict() (*LazyDict, error)
	Postings(i int, tok string) ([]graph.NodeID, error)
}

// sequentialSource is the optional cache-bypassing read path a LazySource
// may provide for full-index sweeps (ForEachTermSorted / WriteTo): same
// contract as Postings, but the source should not retain the decoded
// block afterwards.
type sequentialSource interface {
	PostingsSequential(i int, tok string) ([]graph.NodeID, error)
}

// appendSource is the optional buffer-reuse read path: decode dictionary
// entry i's postings appending onto dst and return the extended slice.
// Prefix lookups use it to fill one output buffer across a term range
// instead of allocating a slice per term.
type appendSource interface {
	PostingsAppend(i int, tok string, dst []graph.NodeID) ([]graph.NodeID, error)
}

// sequentialAppendSource combines both: cache-bypassing decode into a
// reused buffer, so a full sweep (WriteTo, re-save) touches one buffer
// instead of allocating per term.
type sequentialAppendSource interface {
	PostingsSequentialAppend(i int, tok string, dst []graph.NodeID) ([]graph.NodeID, error)
}

// lazyIndex is the deferred state of a store-opened Index.
type lazyIndex struct {
	src      LazySource
	dictOnce sync.Once
	dict     *LazyDict
	mu       sync.Mutex
	err      error
}

func (l *lazyIndex) setErr(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// OpenLazy returns an Index over a graph of numNodes nodes whose term
// dictionary and postings load from src on first use. The returned Index
// supports the full read interface (Lookup, LookupPrefix, WriteTo, the
// counters); on a source failure lookups degrade to empty matches and the
// first error is reported by LazyErr.
func OpenLazy(numNodes int, src LazySource) *Index {
	return &Index{nodes: numNodes, lazy: &lazyIndex{src: src}}
}

// LazyErr reports the first dictionary- or postings-load failure of a
// store-opened index, or nil. Eager indexes always return nil.
func (ix *Index) LazyErr() error {
	if ix.lazy == nil {
		return nil
	}
	ix.lazy.mu.Lock()
	defer ix.lazy.mu.Unlock()
	return ix.lazy.err
}

// ensureDict loads the term dictionary once; on failure it installs an
// empty dictionary and records the sticky error.
func (ix *Index) ensureDict() *LazyDict {
	l := ix.lazy
	l.dictOnce.Do(func() {
		d, err := l.src.Dict()
		if err == nil {
			if len(d.Counts) != len(d.Toks) {
				err = fmt.Errorf("index: dictionary has %d counts for %d terms", len(d.Counts), len(d.Toks))
			} else if !sort.StringsAreSorted(d.Toks) {
				err = fmt.Errorf("index: dictionary tokens not sorted")
			}
		}
		if err != nil {
			l.setErr(fmt.Errorf("index: loading term dictionary: %w", err))
			d = &LazyDict{Meta: map[string][]int32{}}
		}
		l.dict = d
	})
	return l.dict
}

// lazyPostings fetches dictionary entry i, degrading to nil on failure.
func (ix *Index) lazyPostings(i int, tok string) []graph.NodeID {
	ns, err := ix.lazy.src.Postings(i, tok)
	if err != nil {
		ix.lazy.setErr(fmt.Errorf("index: loading postings for %q: %w", tok, err))
		return nil
	}
	return ns
}

// lazyLookup is Lookup for a store-opened index: a binary search of the
// resident dictionary, then one postings fetch.
func (ix *Index) lazyLookup(tok string) Match {
	d := ix.ensureDict()
	m := Match{Tables: d.Meta[tok]}
	if i := sort.SearchStrings(d.Toks, tok); i < len(d.Toks) && d.Toks[i] == tok {
		m.Nodes = ix.lazyPostings(i, tok)
	}
	return m
}

// lazyLookupPrefix is LookupPrefix for a store-opened index: the sorted
// dictionary makes the prefix range contiguous, so only matching terms'
// postings are fetched (the eager index must walk its whole vocabulary).
// With an append-capable source the whole range decodes into one output
// buffer.
func (ix *Index) lazyLookupPrefix(prefix string) []graph.NodeID {
	d := ix.ensureDict()
	var out []graph.NodeID
	app, canAppend := ix.lazy.src.(appendSource)
	for i := sort.SearchStrings(d.Toks, prefix); i < len(d.Toks) && strings.HasPrefix(d.Toks[i], prefix); i++ {
		if canAppend {
			ns, err := app.PostingsAppend(i, d.Toks[i], out)
			if err != nil {
				ix.lazy.setErr(fmt.Errorf("index: loading postings for %q: %w", d.Toks[i], err))
				continue
			}
			out = ns
			continue
		}
		out = append(out, ix.lazyPostings(i, d.Toks[i])...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}
