package index

import (
	"reflect"
	"testing"

	"github.com/banksdb/banks/internal/graph"
)

// TestInvalidateSweepsTouchedAndCoveringPrefixes pins the invalidation
// rule warm carryover depends on: a touched token drops its exact entry
// and every prefix entry that covers it, while unrelated entries stay
// resident across the epoch bump.
func TestInvalidateSweepsTouchedAndCoveringPrefixes(t *testing.T) {
	ix := NewFromPostings(100, map[string][]graph.NodeID{
		"glacier":  {1, 2},
		"glade":    {3},
		"quasar":   {4},
		"zeppelin": {5, 6},
	}, nil)
	c := NewMatchCache(1 << 20)

	c.Lookup(ix, 0, "glacier")
	c.Lookup(ix, 0, "quasar")
	c.Lookup(ix, 0, "zeppelin")
	c.LookupPrefix(ix, 0, "gla") // covers glacier and glade
	c.LookupPrefix(ix, 0, "zep") // covers zeppelin only
	if got := c.Stats().Entries; got != 5 {
		t.Fatalf("seeded %d entries, want 5", got)
	}

	c.Invalidate(1, []string{"Glacier"}) // normalization applies to touched too
	if c.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", c.Epoch())
	}
	if c.Invalidated() != 2 {
		t.Fatalf("invalidated %d entries, want 2 (exact glacier + prefix gla)", c.Invalidated())
	}
	// Survivors hit at the new epoch without touching the index.
	if _, ok := c.peekExact("quasar", 1); !ok {
		t.Fatal("untouched exact entry swept")
	}
	if _, ok := c.peekPrefix("zep", 1); !ok {
		t.Fatal("uncovered prefix entry swept")
	}
	// Swept keys miss.
	if _, ok := c.peekExact("glacier", 1); ok {
		t.Fatal("touched exact entry survived")
	}
	if _, ok := c.peekPrefix("gla", 1); ok {
		t.Fatal("covering prefix entry survived")
	}
}

// TestInvalidateEmptyTouchedKeepsEverything: an FK-only batch publishes
// with no touched tokens; the epoch must not move and nothing sweeps, so
// every cached match keeps serving.
func TestInvalidateEmptyTouchedKeepsEverything(t *testing.T) {
	ix := NewFromPostings(10, map[string][]graph.NodeID{"quasar": {4}}, nil)
	c := NewMatchCache(1 << 20)
	c.Lookup(ix, 0, "quasar")

	c.Invalidate(0, nil)
	if c.Epoch() != 0 || c.Invalidated() != 0 {
		t.Fatalf("epoch %d invalidated %d after empty-touched publish, want 0/0",
			c.Epoch(), c.Invalidated())
	}
	if _, ok := c.peekExact("quasar", 0); !ok {
		t.Fatal("entry lost across an FK-only publish")
	}
}

// TestStalePutRejectedAndOldReaderMisses pins the two epoch guards that
// make invalidation race-free: a resolver that finished against an
// already-superseded snapshot cannot repopulate the cache, and a reader
// still pinned to an old snapshot never sees an entry written for a newer
// one (whose node IDs it could not resolve) — without evicting it.
func TestStalePutRejectedAndOldReaderMisses(t *testing.T) {
	c := NewMatchCache(1 << 20)

	c.Invalidate(3, []string{"glacier"})
	// Stale writer: resolved at epoch 2, current is 3 — put must be a no-op.
	c.put(exactKeyPrefix+"glacier", Match{Nodes: []graph.NodeID{99}}, 2)
	if _, ok := c.get(exactKeyPrefix+"glacier", 3); ok {
		t.Fatal("stale put landed after invalidation")
	}

	// Current writer at epoch 3; a reader pinned to epoch 2 must miss.
	c.put(exactKeyPrefix+"glacier", Match{Nodes: []graph.NodeID{1}}, 3)
	if _, ok := c.get(exactKeyPrefix+"glacier", 2); ok {
		t.Fatal("old reader served an entry from a newer snapshot")
	}
	// ... and the miss must not evict: the epoch-3 reader still hits.
	if m, ok := c.get(exactKeyPrefix+"glacier", 3); !ok || len(m.Nodes) != 1 {
		t.Fatal("old reader's miss evicted a current entry")
	}
}

// TestLatePutAdmittedWhenKeyUntouched pins the admission rule that keeps
// the cache fillable under a sustained Apply cadence: a writer that
// resolved an epoch or two ago may still insert, as long as no
// intervening publish touched its key. Matched sets of untouched terms
// are identical across appending publishes, so the late value is exact.
func TestLatePutAdmittedWhenKeyUntouched(t *testing.T) {
	c := NewMatchCache(1 << 20)

	// Three touching publishes move the epoch 0 -> 3 while our writer is
	// still resolving at epoch 0.
	c.Invalidate(1, []string{"alpha"})
	c.Invalidate(2, []string{"beta"})
	c.Invalidate(3, []string{"gamma"})

	// Untouched key resolved at epoch 0: admitted, visible to readers at
	// every epoch from 0 on.
	c.put(exactKeyPrefix+"quasar", Match{Nodes: []graph.NodeID{7}}, 0)
	if _, ok := c.get(exactKeyPrefix+"quasar", 3); !ok {
		t.Fatal("late put of an untouched key rejected")
	}
	if _, ok := c.get(exactKeyPrefix+"quasar", 0); !ok {
		t.Fatal("old reader missed an entry resolved under its own epoch")
	}

	// Touched key resolved at epoch 1 (beta swept at epoch 2): rejected.
	c.put(exactKeyPrefix+"beta", Match{Nodes: []graph.NodeID{8}}, 1)
	if _, ok := c.get(exactKeyPrefix+"beta", 3); ok {
		t.Fatal("late put of a touched key admitted")
	}
	// Prefix key covering a touched token: rejected too.
	c.put(prefixKeyPrefix+"gam", Match{Nodes: []graph.NodeID{9}}, 2)
	if _, ok := c.get(prefixKeyPrefix+"gam", 3); ok {
		t.Fatal("late put of a covering prefix key admitted")
	}
	// Prefix key covering nothing touched: admitted.
	c.put(prefixKeyPrefix+"qua", Match{Nodes: []graph.NodeID{7}}, 1)
	if _, ok := c.get(prefixKeyPrefix+"qua", 3); !ok {
		t.Fatal("late put of an uncovered prefix key rejected")
	}
}

// TestIndexMaterializeRemapsAndDrops exercises the index fold directly: a
// non-monotonic remap with a tombstone must renumber and re-sort every
// posting list, drop tombstoned postings (and now-empty terms entirely),
// and deep-copy metadata.
func TestIndexMaterializeRemapsAndDrops(t *testing.T) {
	src := NewFromPostings(5, map[string][]graph.NodeID{
		"glacier": {0, 2, 4}, // 4 is tombstoned
		"quasar":  {1, 3},
		"doomed":  {4}, // every posting tombstoned: term disappears
	}, map[string][]int32{"paper": {1}})
	// Non-monotonic: 0->3, 1->0, 2->1, 3->2, 4->NoNode.
	remap := []graph.NodeID{3, 0, 1, 2, graph.NoNode}

	out, err := Materialize(src, remap, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes() != 4 {
		t.Fatalf("numNodes %d, want 4", out.NumNodes())
	}
	if got := out.Lookup("glacier").Nodes; !reflect.DeepEqual(got, []graph.NodeID{1, 3}) {
		t.Fatalf("glacier postings %v, want [1 3]", got)
	}
	if got := out.Lookup("quasar").Nodes; !reflect.DeepEqual(got, []graph.NodeID{0, 2}) {
		t.Fatalf("quasar postings %v, want [0 2]", got)
	}
	if got := out.Lookup("doomed").Nodes; len(got) != 0 {
		t.Fatalf("fully-tombstoned term still has postings %v", got)
	}
	if out.NumTerms() != 2 {
		t.Fatalf("numTerms %d, want 2", out.NumTerms())
	}
	meta := out.MetaTables()
	if !reflect.DeepEqual(meta["paper"], []int32{1}) {
		t.Fatalf("meta %v, want paper->[1]", meta)
	}
	// Deep copy: mutating the output's meta must not reach the source.
	meta["paper"][0] = 9
	if src.MetaTables()["paper"][0] != 1 {
		t.Fatal("materialized meta aliases the source")
	}
}
