package index

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

// TestSerializationRoundTripRandom builds indexes over randomized corpora
// and checks that serialization preserves every posting list exactly.
func TestSerializationRoundTripRandom(t *testing.T) {
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta",
		"eta", "theta", "iota", "kappa", "lambda", "mu"}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		db := sqldb.NewDatabase()
		if _, err := db.CreateTable(&sqldb.TableSchema{
			Name:    "doc",
			Columns: []sqldb.Column{{Name: "body", Type: sqldb.TypeText}},
		}); err != nil {
			t.Fatal(err)
		}
		rows := 20 + rng.Intn(50)
		for i := 0; i < rows; i++ {
			var body string
			for w := 0; w < 1+rng.Intn(6); w++ {
				body += words[rng.Intn(len(words))] + " "
			}
			if _, err := db.Insert("doc", []sqldb.Value{sqldb.Text(body)}); err != nil {
				t.Fatal(err)
			}
		}
		g, err := graph.Build(db, nil)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := Build(db, g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range words {
			a, b := ix.Lookup(w), back.Lookup(w)
			if !reflect.DeepEqual(a.Nodes, b.Nodes) {
				t.Fatalf("trial %d: term %q mismatch: %v vs %v", trial, w, a.Nodes, b.Nodes)
			}
		}
	}
}

// TestLookupMatchesBruteForce cross-checks the inverted index against a
// direct scan of the data.
func TestLookupMatchesBruteForce(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "doc",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "a", Type: sqldb.TypeText},
			{Name: "b", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	rng := rand.New(rand.NewSource(11))
	vocab := []string{"red", "green", "blue", "cyan", "magenta"}
	for i := 0; i < 80; i++ {
		a := vocab[rng.Intn(len(vocab))] + " " + vocab[rng.Intn(len(vocab))]
		b := vocab[rng.Intn(len(vocab))]
		db.Insert("doc", []sqldb.Value{sqldb.Int(int64(i)), sqldb.Text(a), sqldb.Text(b)})
	}
	g, _ := graph.Build(db, nil)
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range vocab {
		want := map[graph.NodeID]bool{}
		db.Table("doc").Scan(func(rid sqldb.RID, row []sqldb.Value) bool {
			for _, col := range []int{1, 2} {
				for _, tok := range Tokenize(row[col].S) {
					if tok == term {
						want[g.NodeOf("doc", rid)] = true
					}
				}
			}
			return true
		})
		got := ix.Lookup(term)
		if len(got.Nodes) != len(want) {
			t.Fatalf("term %q: index %d nodes, brute force %d", term, len(got.Nodes), len(want))
		}
		for _, n := range got.Nodes {
			if !want[n] {
				t.Errorf("term %q: spurious node %d", term, n)
			}
		}
	}
}

// TestIndexStatsConsistency sanity-checks the aggregate counters.
func TestIndexStatsConsistency(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:    "doc",
		Columns: []sqldb.Column{{Name: "a", Type: sqldb.TypeText}},
	})
	for i := 0; i < 10; i++ {
		db.Insert("doc", []sqldb.Value{sqldb.Text(fmt.Sprintf("tok%d shared", i))})
	}
	g, _ := graph.Build(db, nil)
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	// 10 unique tokens + "shared" = 11 terms; postings = 10 + 10.
	if ix.NumTerms() != 11 {
		t.Errorf("terms = %d", ix.NumTerms())
	}
	if ix.NumPostings() != 20 {
		t.Errorf("postings = %d", ix.NumPostings())
	}
	if ix.NumNodes() != 10 {
		t.Errorf("nodes = %d", ix.NumNodes())
	}
}
