package index

import (
	"container/list"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/banksdb/banks/internal/graph"
)

// MatchCache is a bounded, sharded LRU cache of keyword match sets — the
// server-side caching Mragyati argues for, applied to the hot path of §3:
// resolving a search term to its node set. Exact lookups are a single map
// probe, but prefix expansion walks every indexed token, and skewed query
// workloads repeat the same few terms constantly; the cache turns both
// into one mutex-protected map hit.
//
// A MatchCache is owned by one immutable engine snapshot (graph + index
// pair). Because the snapshot never changes, cached entries never need
// invalidation — swapping in a new snapshot swaps in a fresh cache, so
// invalidation is free and a stale entry can never be observed.
//
// The cache is safe for concurrent use. A nil *MatchCache is valid and
// disables caching: every method falls through to the underlying index.
type MatchCache struct {
	shards []matchCacheShard
	hits   atomic.Int64
	misses atomic.Int64
}

// Sharding spreads lock contention across independent LRUs; the key's
// FNV-1a hash picks the shard. The shard count scales with the budget
// (one shard per MiB, capped) so the per-shard budget — which is also the
// admission ceiling for a single match set — never drops below
// minShardBudget for multi-shard caches: a big cache must still be able
// to admit the huge match sets of short prefixes, which are exactly the
// lookups worth caching.
const (
	maxMatchCacheShards = 16
	minShardBudget      = 1 << 20
)

// matchEntryOverhead approximates the fixed per-entry cost (map bucket
// share, list element, entry header) charged against the byte budget on
// top of the key and postings payload.
const matchEntryOverhead = 96

type matchCacheShard struct {
	mu    sync.Mutex
	max   int64 // byte budget for this shard
	bytes int64 // current charged bytes
	items map[string]*list.Element
	lru   list.List // front = most recently used
}

type matchCacheEntry struct {
	key  string
	m    Match
	size int64
}

// NewMatchCache returns a cache bounded to roughly maxBytes of postings
// (split evenly across shards). maxBytes <= 0 returns nil — the valid
// "caching disabled" cache. A single match set larger than the per-shard
// budget (the whole budget for caches under 2 MiB, at least 1 MiB
// otherwise) is served but never cached.
func NewMatchCache(maxBytes int64) *MatchCache {
	if maxBytes <= 0 {
		return nil
	}
	n := int(maxBytes / minShardBudget)
	if n < 1 {
		n = 1
	}
	if n > maxMatchCacheShards {
		n = maxMatchCacheShards
	}
	c := &MatchCache{shards: make([]matchCacheShard, n)}
	per := maxBytes / int64(n)
	if per < matchEntryOverhead {
		per = matchEntryOverhead
	}
	for i := range c.shards {
		c.shards[i].max = per
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *MatchCache) shard(key string) *matchCacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

func (c *MatchCache) get(key string) (Match, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Match{}, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*matchCacheEntry).m, true
}

func (c *MatchCache) put(key string, m Match) {
	size := int64(len(key)) + 4*int64(len(m.Nodes)) + 4*int64(len(m.Tables)) + matchEntryOverhead
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.max {
		return // would evict the whole shard and still not fit
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*matchCacheEntry)
		s.bytes += size - e.size
		e.m, e.size = m, size
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&matchCacheEntry{key: key, m: m, size: size})
		s.bytes += size
	}
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := s.lru.Remove(back).(*matchCacheEntry)
		delete(s.items, e.key)
		s.bytes -= e.size
	}
}

// Cached lookups use a one-byte kind prefix so an exact term and a prefix
// term with the same spelling occupy distinct entries.
const (
	exactKeyPrefix  = "="
	prefixKeyPrefix = "~"
)

// normalizeTerm is the normalization every cached lookup applies before
// keying; the FlightGroup's admission path shares it so coalescing keys
// always match cache keys.
func normalizeTerm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// peekExact probes the cache for an already-normalized token, counting a
// hit. It is the single place the exact-lookup key scheme lives; Lookup
// and the FlightGroup both go through it. Safe on nil (always a miss,
// uncounted).
func (c *MatchCache) peekExact(tok string) (Match, bool) {
	if c == nil {
		return Match{}, false
	}
	m, ok := c.get(exactKeyPrefix + tok)
	if ok {
		c.hits.Add(1)
	}
	return m, ok
}

// peekPrefix is peekExact for the prefix-lookup keys.
func (c *MatchCache) peekPrefix(tok string) (Match, bool) {
	if c == nil {
		return Match{}, false
	}
	m, ok := c.get(prefixKeyPrefix + tok)
	if ok {
		c.hits.Add(1)
	}
	return m, ok
}

// Lookup is Index.Lookup through the cache: the match set for one search
// term, cached under its normalized token. Empty matches are cached too —
// skewed workloads repeat misses as much as hits. Callers must not mutate
// the returned slices (they are shared with the index and other callers).
func (c *MatchCache) Lookup(ix View, term string) Match {
	if c == nil {
		return ix.Lookup(term)
	}
	tok := normalizeTerm(term)
	if m, ok := c.peekExact(tok); ok {
		return m
	}
	c.misses.Add(1)
	m := ix.Lookup(tok)
	c.put(exactKeyPrefix+tok, m)
	return m
}

// LookupPrefix is Index.LookupPrefix through the cache. This is the
// expensive lookup — the index walks every token for a prefix match — so
// caching it converts O(vocabulary) scans into O(1) repeats. Callers must
// not mutate the returned slice.
func (c *MatchCache) LookupPrefix(ix View, prefix string) []graph.NodeID {
	if c == nil {
		return ix.LookupPrefix(prefix)
	}
	tok := normalizeTerm(prefix)
	if m, ok := c.peekPrefix(tok); ok {
		return m.Nodes
	}
	c.misses.Add(1)
	ns := ix.LookupPrefix(tok)
	c.put(prefixKeyPrefix+tok, Match{Nodes: ns})
	return ns
}

// HotKeys returns up to max resident cache keys in roughly most-recently-
// used order (each shard's LRU walked front to back, shards interleaved).
// Keys keep their kind prefix, so they round-trip through Warm; the store
// records them at save time as the match-cache warmup segment. Safe on a
// nil cache (nil result).
func (c *MatchCache) HotKeys(max int) []string {
	if c == nil || max <= 0 {
		return nil
	}
	perShard := make([][]string, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil && len(perShard[i]) < max; el = el.Next() {
			perShard[i] = append(perShard[i], el.Value.(*matchCacheEntry).key)
		}
		s.mu.Unlock()
	}
	var out []string
	for round := 0; len(out) < max; round++ {
		progressed := false
		for _, keys := range perShard {
			if round < len(keys) {
				out = append(out, keys[round])
				progressed = true
				if len(out) == max {
					return out
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// Warm replays recorded cache keys (from HotKeys) against ix, populating
// the cache with the match sets a previous process ran hot on. Unknown key
// kinds are skipped, so warm segments from newer formats degrade
// gracefully. Safe on a nil cache (no-op).
func (c *MatchCache) Warm(ix View, keys []string) {
	if c == nil {
		return
	}
	for _, k := range keys {
		if len(k) < 2 {
			continue
		}
		switch k[:1] {
		case exactKeyPrefix:
			c.Lookup(ix, k[1:])
		case prefixKeyPrefix:
			c.LookupPrefix(ix, k[1:])
		}
	}
}

// CacheStats is a point-in-time summary of a MatchCache.
type CacheStats struct {
	Hits     int64 // lookups served from the cache
	Misses   int64 // lookups that fell through to the index
	Entries  int   // resident match sets
	Bytes    int64 // charged bytes (keys + postings + overhead)
	MaxBytes int64 // configured byte budget
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current counters. Safe on a nil cache (all zeros).
func (c *MatchCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{Hits: c.hits.Load(), Misses: c.misses.Load()}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		st.MaxBytes += s.max
		s.mu.Unlock()
	}
	return st
}
