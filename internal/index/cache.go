package index

import (
	"container/list"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/banksdb/banks/internal/graph"
)

// MatchCache is a bounded, sharded LRU cache of keyword match sets — the
// server-side caching Mragyati argues for, applied to the hot path of §3:
// resolving a search term to its node set. Exact lookups are a single map
// probe, but prefix expansion walks every indexed token, and skewed query
// workloads repeat the same few terms constantly; the cache turns both
// into one mutex-protected map hit.
//
// A MatchCache serves a sequence of immutable engine snapshots, each
// stamped with an epoch. Within one epoch the snapshot never changes, so
// entries need no invalidation; when a mutation batch publishes a new
// snapshot, the publisher calls Invalidate with the next epoch and the
// set of touched tokens, and only the entries those tokens could have
// changed are dropped — everything else carries over warm. Every lookup
// carries the reader's snapshot epoch: a reader pinned to an old
// snapshot never consumes an entry written for a newer one (whose node
// IDs may exceed the old snapshot's arena), and a writer resolving
// against an old snapshot can never install a stale entry after the
// epoch has moved on.
//
// The cache is safe for concurrent use. A nil *MatchCache is valid and
// disables caching: every method falls through to the underlying index.
type MatchCache struct {
	shards      []matchCacheShard
	hits        atomic.Int64
	misses      atomic.Int64
	epoch       atomic.Uint64 // current snapshot epoch; put checks writers against it
	invalidated atomic.Int64  // entries dropped by Invalidate, cumulative

	// hist remembers the touched-token sets of recent invalidations so
	// put can admit a writer that resolved under an older epoch when its
	// key was not touched by any intervening publish. Without it, a
	// sustained Apply cadence shorter than one term resolution would
	// reject every insert and the cache could never repopulate. Entries
	// are consecutive by epoch; the ring is bounded by epochHistory.
	histMu sync.Mutex
	hist   []epochTouch
}

// epochTouch is one invalidation: the epoch it installed and the swept
// tokens (normalized; toks sorted for the covering-prefix test).
type epochTouch struct {
	epoch uint64
	exact map[string]bool
	toks  []string
}

// epochHistory bounds the invalidation ring. A writer older than the
// ring's reach is rejected outright, so the window only needs to cover
// the epochs a slow term resolution can realistically straddle.
const epochHistory = 256

// Sharding spreads lock contention across independent LRUs; the key's
// FNV-1a hash picks the shard. The shard count scales with the budget
// (one shard per MiB, capped) so the per-shard budget — which is also the
// admission ceiling for a single match set — never drops below
// minShardBudget for multi-shard caches: a big cache must still be able
// to admit the huge match sets of short prefixes, which are exactly the
// lookups worth caching.
const (
	maxMatchCacheShards = 16
	minShardBudget      = 1 << 20
)

// matchEntryOverhead approximates the fixed per-entry cost (map bucket
// share, list element, entry header) charged against the byte budget on
// top of the key and postings payload.
const matchEntryOverhead = 96

type matchCacheShard struct {
	mu    sync.Mutex
	max   int64 // byte budget for this shard
	bytes int64 // current charged bytes
	items map[string]*list.Element
	lru   list.List // front = most recently used
}

type matchCacheEntry struct {
	key   string
	m     Match
	size  int64
	epoch uint64 // epoch the entry was resolved under
}

// NewMatchCache returns a cache bounded to roughly maxBytes of postings
// (split evenly across shards). maxBytes <= 0 returns nil — the valid
// "caching disabled" cache. A single match set larger than the per-shard
// budget (the whole budget for caches under 2 MiB, at least 1 MiB
// otherwise) is served but never cached.
func NewMatchCache(maxBytes int64) *MatchCache {
	if maxBytes <= 0 {
		return nil
	}
	n := int(maxBytes / minShardBudget)
	if n < 1 {
		n = 1
	}
	if n > maxMatchCacheShards {
		n = maxMatchCacheShards
	}
	c := &MatchCache{shards: make([]matchCacheShard, n)}
	per := maxBytes / int64(n)
	if per < matchEntryOverhead {
		per = matchEntryOverhead
	}
	for i := range c.shards {
		c.shards[i].max = per
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *MatchCache) shard(key string) *matchCacheShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &c.shards[h%uint32(len(c.shards))]
}

func (c *MatchCache) get(key string, epoch uint64) (Match, bool) {
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return Match{}, false
	}
	e := el.Value.(*matchCacheEntry)
	if e.epoch > epoch {
		// Written for a newer snapshot: its node IDs may not exist in
		// this reader's snapshot. Treat as a miss; do not evict — newer
		// readers still want it.
		return Match{}, false
	}
	s.lru.MoveToFront(el)
	return e.m, true
}

func (c *MatchCache) put(key string, m Match, epoch uint64) {
	size := int64(len(key)) + 4*int64(len(m.Nodes)) + 4*int64(len(m.Tables)) + matchEntryOverhead
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur := c.epoch.Load(); epoch != cur {
		// The writer resolved against a snapshot that is no longer
		// current; its value is stale if any intervening publish touched
		// this key. The invalidation history proves innocence for
		// untouched keys — essential under a sustained Apply cadence,
		// where most resolutions finish an epoch or two late. Checked
		// under the shard lock so a put racing the current sweep can only
		// land before it (which then removes the entry).
		if epoch > cur || !c.untouchedSince(key, epoch) {
			return
		}
	}
	if size > s.max {
		return // would evict the whole shard and still not fit
	}
	if el, ok := s.items[key]; ok {
		e := el.Value.(*matchCacheEntry)
		s.bytes += size - e.size
		e.m, e.size, e.epoch = m, size, epoch
		s.lru.MoveToFront(el)
	} else {
		s.items[key] = s.lru.PushFront(&matchCacheEntry{key: key, m: m, size: size, epoch: epoch})
		s.bytes += size
	}
	for s.bytes > s.max {
		back := s.lru.Back()
		if back == nil {
			break
		}
		e := s.lru.Remove(back).(*matchCacheEntry)
		delete(s.items, e.key)
		s.bytes -= e.size
	}
}

// Cached lookups use a one-byte kind prefix so an exact term and a prefix
// term with the same spelling occupy distinct entries.
const (
	exactKeyPrefix  = "="
	prefixKeyPrefix = "~"
)

// normalizeTerm is the normalization every cached lookup applies before
// keying; the FlightGroup's admission path shares it so coalescing keys
// always match cache keys.
func normalizeTerm(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// peekExact probes the cache for an already-normalized token, counting a
// hit. It is the single place the exact-lookup key scheme lives; Lookup
// and the FlightGroup both go through it. epoch is the reader's snapshot
// epoch. Safe on nil (always a miss, uncounted).
func (c *MatchCache) peekExact(tok string, epoch uint64) (Match, bool) {
	if c == nil {
		return Match{}, false
	}
	m, ok := c.get(exactKeyPrefix+tok, epoch)
	if ok {
		c.hits.Add(1)
	}
	return m, ok
}

// peekPrefix is peekExact for the prefix-lookup keys.
func (c *MatchCache) peekPrefix(tok string, epoch uint64) (Match, bool) {
	if c == nil {
		return Match{}, false
	}
	m, ok := c.get(prefixKeyPrefix+tok, epoch)
	if ok {
		c.hits.Add(1)
	}
	return m, ok
}

// Lookup is Index.Lookup through the cache: the match set for one search
// term, cached under its normalized token. epoch is the snapshot epoch of
// the ix the caller resolves against. Empty matches are cached too —
// skewed workloads repeat misses as much as hits. Callers must not mutate
// the returned slices (they are shared with the index and other callers).
func (c *MatchCache) Lookup(ix View, epoch uint64, term string) Match {
	if c == nil {
		return ix.Lookup(term)
	}
	tok := normalizeTerm(term)
	if m, ok := c.peekExact(tok, epoch); ok {
		return m
	}
	c.misses.Add(1)
	m := ix.Lookup(tok)
	c.put(exactKeyPrefix+tok, m, epoch)
	return m
}

// LookupPrefix is Index.LookupPrefix through the cache. This is the
// expensive lookup — the index walks every token for a prefix match — so
// caching it converts O(vocabulary) scans into O(1) repeats. Callers must
// not mutate the returned slice.
func (c *MatchCache) LookupPrefix(ix View, epoch uint64, prefix string) []graph.NodeID {
	if c == nil {
		return ix.LookupPrefix(prefix)
	}
	tok := normalizeTerm(prefix)
	if m, ok := c.peekPrefix(tok, epoch); ok {
		return m.Nodes
	}
	c.misses.Add(1)
	ns := ix.LookupPrefix(tok)
	c.put(prefixKeyPrefix+tok, Match{Nodes: ns}, epoch)
	return ns
}

// Epoch returns the snapshot epoch the cache currently serves. Safe on a
// nil cache (0).
func (c *MatchCache) Epoch() uint64 {
	if c == nil {
		return 0
	}
	return c.epoch.Load()
}

// Invalidate advances the cache to epoch and drops every entry the
// touched tokens could have changed: the exact entry of each touched
// token, and any prefix entry whose prefix covers a touched token (its
// match set gains or loses that token's postings). Entries for untouched
// terms survive — a mutation batch appends node IDs and never renumbers,
// so an untouched term's match set is byte-identical in the new
// snapshot. The epoch is stored before the sweep: combined with put's
// under-lock epoch check, an in-flight resolver racing the publish
// either lands before the sweep (and is removed) or is rejected.
// Safe on a nil cache (no-op).
func (c *MatchCache) Invalidate(epoch uint64, touched []string) {
	if c == nil {
		return
	}
	if len(touched) == 0 {
		c.epoch.Store(epoch)
		return
	}
	toks := make([]string, 0, len(touched))
	for _, t := range touched {
		toks = append(toks, normalizeTerm(t))
	}
	sort.Strings(toks)
	exact := make(map[string]bool, len(toks))
	for _, t := range toks {
		exact[t] = true
	}
	// Record the touched set before the epoch flips: a put that observes
	// the new epoch must also observe this history entry when it checks
	// whether its key survived the intervening publishes.
	c.histMu.Lock()
	c.hist = append(c.hist, epochTouch{epoch: epoch, exact: exact, toks: toks})
	if len(c.hist) > epochHistory {
		c.hist = append(c.hist[:0], c.hist[len(c.hist)-epochHistory:]...)
	}
	c.histMu.Unlock()
	c.epoch.Store(epoch)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		var dead []*list.Element
		for key, el := range s.items {
			kind, tok := key[:1], key[1:]
			stale := false
			switch kind {
			case exactKeyPrefix:
				stale = exact[tok]
			case prefixKeyPrefix:
				// Stale iff some touched token starts with this prefix:
				// the first sorted token >= the prefix is the candidate.
				j := sort.SearchStrings(toks, tok)
				stale = j < len(toks) && strings.HasPrefix(toks[j], tok)
			}
			if stale {
				dead = append(dead, el)
			}
		}
		for _, el := range dead {
			e := s.lru.Remove(el).(*matchCacheEntry)
			delete(s.items, e.key)
			s.bytes -= e.size
		}
		c.invalidated.Add(int64(len(dead)))
		s.mu.Unlock()
	}
}

// untouchedSince reports whether the invalidation history proves that no
// publish after epoch since touched key — the admission rule for writers
// that resolved under an older snapshot. Epochs advance by one per
// touching publish, so the ring holds consecutive epochs and covers
// (since, now] iff its oldest entry is at most since+1; a writer older
// than the ring's reach is rejected. Entries newer than the epoch the
// caller loaded are checked too — that is conservative (an unrelated
// concurrent invalidation can only cause a spurious reject, never a
// wrong admit).
func (c *MatchCache) untouchedSince(key string, since uint64) bool {
	kind, tok := key[:1], key[1:]
	c.histMu.Lock()
	defer c.histMu.Unlock()
	if len(c.hist) == 0 || c.hist[0].epoch > since+1 {
		return false
	}
	for i := len(c.hist) - 1; i >= 0; i-- {
		h := &c.hist[i]
		if h.epoch <= since {
			break
		}
		switch kind {
		case exactKeyPrefix:
			if h.exact[tok] {
				return false
			}
		case prefixKeyPrefix:
			j := sort.SearchStrings(h.toks, tok)
			if j < len(h.toks) && strings.HasPrefix(h.toks[j], tok) {
				return false
			}
		}
	}
	return true
}

// Invalidated returns the cumulative number of entries dropped by
// Invalidate. Safe on a nil cache (0).
func (c *MatchCache) Invalidated() int64 {
	if c == nil {
		return 0
	}
	return c.invalidated.Load()
}

// HotKeys returns up to max resident cache keys in roughly most-recently-
// used order (each shard's LRU walked front to back, shards interleaved).
// Keys keep their kind prefix, so they round-trip through Warm; the store
// records them at save time as the match-cache warmup segment. Safe on a
// nil cache (nil result).
func (c *MatchCache) HotKeys(max int) []string {
	if c == nil || max <= 0 {
		return nil
	}
	perShard := make([][]string, len(c.shards))
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil && len(perShard[i]) < max; el = el.Next() {
			perShard[i] = append(perShard[i], el.Value.(*matchCacheEntry).key)
		}
		s.mu.Unlock()
	}
	var out []string
	for round := 0; len(out) < max; round++ {
		progressed := false
		for _, keys := range perShard {
			if round < len(keys) {
				out = append(out, keys[round])
				progressed = true
				if len(out) == max {
					return out
				}
			}
		}
		if !progressed {
			break
		}
	}
	return out
}

// Warm replays recorded cache keys (from HotKeys) against ix, populating
// the cache with the match sets a previous process ran hot on. epoch is
// the snapshot epoch ix belongs to; if the cache has moved past it the
// replayed entries are silently rejected. Unknown key kinds are skipped,
// so warm segments from newer formats degrade gracefully. Safe on a nil
// cache (no-op).
func (c *MatchCache) Warm(ix View, epoch uint64, keys []string) {
	if c == nil {
		return
	}
	for _, k := range keys {
		if len(k) < 2 {
			continue
		}
		switch k[:1] {
		case exactKeyPrefix:
			c.Lookup(ix, epoch, k[1:])
		case prefixKeyPrefix:
			c.LookupPrefix(ix, epoch, k[1:])
		}
	}
}

// CacheStats is a point-in-time summary of a MatchCache.
type CacheStats struct {
	Hits        int64  // lookups served from the cache
	Misses      int64  // lookups that fell through to the index
	Entries     int    // resident match sets
	Bytes       int64  // charged bytes (keys + postings + overhead)
	MaxBytes    int64  // configured byte budget
	Epoch       uint64 // current snapshot epoch
	Invalidated int64  // entries dropped by Invalidate, cumulative
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats returns current counters. Safe on a nil cache (all zeros).
func (c *MatchCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	st := CacheStats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Epoch:       c.epoch.Load(),
		Invalidated: c.invalidated.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Entries += len(s.items)
		st.Bytes += s.bytes
		st.MaxBytes += s.max
		s.mu.Unlock()
	}
	return st
}
