package index

// Fuzz coverage for the two attack surfaces of this package: Tokenize
// (rune boundaries, mixed scripts, invalid UTF-8) and the WriteTo/ReadFrom
// binary format (corrupt postings must be rejected with an error, never a
// panic or an unbounded allocation). Seed corpora live under
// testdata/fuzz/ so `go test` replays them on every run; `go test -fuzz`
// explores further.

import (
	"bytes"
	"strings"
	"testing"
	"unicode"

	"github.com/banksdb/banks/internal/graph"
)

// FuzzTokenize checks Tokenize against an independently-built oracle:
// strings.FieldsFunc splitting on the same rune classes, lowered the same
// way. Both decode invalid UTF-8 identically (RuneError is not a letter),
// so the outputs must match exactly.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"",
		"hello world",
		"vldb 1998",
		"a1b2c3 4d5e",
		"Ünïcode—dash and café",
		"日本語123テスト",
		"x_y-z.w:q;r",
		"MiXeD CaSe WORDS",
		"\x80\xfftrailing invalid\xc3(",
		"İstanbul DİACRİTİC",
		"123 456 789",
		"a",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := Tokenize(s)
		want := strings.FieldsFunc(s, func(r rune) bool {
			return !unicode.IsLetter(r) && !unicode.IsDigit(r)
		})
		if len(got) != len(want) {
			t.Fatalf("Tokenize(%q) = %d tokens, oracle %d: %q vs %q", s, len(got), len(want), got, want)
		}
		for i := range got {
			if got[i] != strings.ToLower(want[i]) {
				t.Fatalf("Tokenize(%q)[%d] = %q, oracle %q", s, i, got[i], strings.ToLower(want[i]))
			}
			if got[i] == "" {
				t.Fatalf("Tokenize(%q) produced an empty token", s)
			}
		}
	})
}

// fuzzSeedIndexBytes serializes a small real index for the round-trip
// corpus.
func fuzzSeedIndexBytes(f *testing.F) []byte {
	f.Helper()
	ix := NewFromPostings(16,
		map[string][]graph.NodeID{
			"alpha": {0, 1, 3, 7},
			"beta":  {2},
			"gamma": {0, 15},
		},
		map[string][]int32{"part": {0}, "name": {0, 1}},
	)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzIndexRoundTrip feeds arbitrary bytes to ReadFrom. Whatever parses
// must re-serialize to a stable fixed point (write→read→write is
// byte-identical); everything else must fail with an error — no panics,
// no postings outside the declared node range, no huge allocations from
// corrupt counts.
func FuzzIndexRoundTrip(f *testing.F) {
	valid := fuzzSeedIndexBytes(f)
	f.Add(valid)
	f.Add([]byte(magic))
	f.Add([]byte("NOTANINDEX"))
	f.Add(append(append([]byte{}, valid...), 0xff, 0x07))  // trailing garbage
	f.Add(valid[:len(valid)-3])                            // truncated postings
	f.Add([]byte(magic + "\x05\xff\xff\xff\xff\xff\x0f"))  // absurd term count
	f.Add([]byte(magic + "\x02\x01\x01a\xff\xff\xff\x0f")) // absurd posting count
	f.Fuzz(func(t *testing.T, data []byte) {
		ix, err := ReadFrom(bytes.NewReader(data))
		if err != nil {
			return // rejected: that's the contract for corrupt input
		}
		for _, m := range ix.terms {
			for _, n := range m {
				if int(n) < 0 || int(n) >= ix.nodes {
					t.Fatalf("accepted posting %d outside node range %d", n, ix.nodes)
				}
			}
		}
		var first bytes.Buffer
		if _, err := ix.WriteTo(&first); err != nil {
			t.Fatalf("re-serializing accepted index: %v", err)
		}
		back, err := ReadFrom(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-reading own output: %v", err)
		}
		var second bytes.Buffer
		if _, err := back.WriteTo(&second); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("write→read→write not a fixed point: %d vs %d bytes", first.Len(), second.Len())
		}
	})
}
