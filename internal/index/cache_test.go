package index

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/graph"
)

// zipfTermIndex builds a term vocabulary and a Zipfian rank stream over it
// — the skewed workload the cache is designed for.
func zipfTermIndex(nTerms, postingsPer int) (*Index, []string) {
	terms := make(map[string][]graph.NodeID, nTerms)
	names := make([]string, nTerms)
	for i := 0; i < nTerms; i++ {
		name := fmt.Sprintf("term%04d", i)
		names[i] = name
		ns := make([]graph.NodeID, postingsPer)
		for j := range ns {
			ns[j] = graph.NodeID(i*postingsPer + j)
		}
		terms[name] = ns
	}
	return NewFromPostings(nTerms*postingsPer, terms, nil), names
}

// TestMatchCacheBoundUnderZipf streams a heavily skewed term workload far
// larger than the cache budget and asserts the charged bytes never exceed
// the configured cap — the memory-bound contract.
func TestMatchCacheBoundUnderZipf(t *testing.T) {
	ix, names := zipfTermIndex(4096, 32)
	c := NewMatchCache(128 << 10) // ~14% of the full posting working set
	if c == nil {
		t.Fatal("cache unexpectedly disabled")
	}
	zipf := rand.NewZipf(rand.New(rand.NewSource(7)), 1.2, 1, uint64(len(names)-1))
	for i := 0; i < 20000; i++ {
		term := names[zipf.Uint64()]
		m := c.Lookup(ix, 0, term)
		if len(m.Nodes) != 32 {
			t.Fatalf("term %s: %d nodes", term, len(m.Nodes))
		}
		if i%500 == 0 {
			st := c.Stats()
			if st.Bytes > st.MaxBytes {
				t.Fatalf("iteration %d: cache holds %d bytes, budget %d", i, st.Bytes, st.MaxBytes)
			}
		}
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("cache holds %d bytes, budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Entries == 0 {
		t.Fatal("cache cached nothing")
	}
	if hr := st.HitRate(); hr < 0.8 {
		t.Errorf("hit rate %.3f on Zipf(1.2) stream, want > 0.8", hr)
	}
}

// TestMatchCacheEviction fills a tiny cache past its budget and checks
// that old entries leave while the newest stays resident.
func TestMatchCacheEviction(t *testing.T) {
	ix, names := zipfTermIndex(64, 64)
	// One entry is ~ 96 + 9 + 256 bytes; budget a handful per shard.
	c := NewMatchCache(16 << 10)
	for _, name := range names {
		c.Lookup(ix, 0, name)
	}
	st := c.Stats()
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d exceed budget %d", st.Bytes, st.MaxBytes)
	}
	if st.Entries >= len(names) {
		t.Fatalf("nothing evicted: %d entries resident", st.Entries)
	}
	// The most recently inserted term must still hit.
	before := c.Stats().Hits
	c.Lookup(ix, 0, names[len(names)-1])
	if c.Stats().Hits != before+1 {
		t.Error("most recent entry was evicted")
	}
}

// TestMatchCacheOversizeEntryRejected: an entry larger than a shard's
// whole budget must be served but not cached (caching it would evict
// everything for a one-shot win).
func TestMatchCacheOversizeEntryRejected(t *testing.T) {
	huge := make([]graph.NodeID, 1<<12)
	for i := range huge {
		huge[i] = graph.NodeID(i)
	}
	ix := NewFromPostings(len(huge), map[string][]graph.NodeID{"big": huge}, nil)
	c := NewMatchCache(1 << 10) // shard budget ~64 bytes < 16 KiB entry
	m := c.Lookup(ix, 0, "big")
	if len(m.Nodes) != len(huge) {
		t.Fatalf("lookup through cache returned %d nodes", len(m.Nodes))
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Errorf("oversize entry was cached (%d entries, %d bytes)", st.Entries, st.Bytes)
	}
}

// TestMatchCacheNil: a nil cache is the documented "disabled" value; every
// method must fall through to the index.
func TestMatchCacheNil(t *testing.T) {
	var c *MatchCache
	ix, names := zipfTermIndex(8, 4)
	if m := c.Lookup(ix, 0, names[0]); len(m.Nodes) != 4 {
		t.Errorf("nil cache Lookup = %v", m.Nodes)
	}
	if ns := c.LookupPrefix(ix, 0, "term"); len(ns) != 8*4 {
		t.Errorf("nil cache LookupPrefix = %d nodes", len(ns))
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Errorf("nil cache stats = %+v", st)
	}
	if NewMatchCache(0) != nil || NewMatchCache(-1) != nil {
		t.Error("non-positive budget should return the nil (disabled) cache")
	}
}

// TestMatchCachePrefixDistinctFromExact: "term" as an exact lookup and as
// a prefix lookup are different match sets and must not share an entry.
func TestMatchCachePrefixDistinctFromExact(t *testing.T) {
	ix, _ := zipfTermIndex(16, 2)
	c := NewMatchCache(1 << 20)
	exact := c.Lookup(ix, 0, "term0001")
	pfx := c.LookupPrefix(ix, 0, "term")
	if len(exact.Nodes) != 2 {
		t.Errorf("exact = %d nodes", len(exact.Nodes))
	}
	if len(pfx) != 16*2 {
		t.Errorf("prefix = %d nodes", len(pfx))
	}
	// Repeat both: both must now hit.
	h := c.Stats().Hits
	c.Lookup(ix, 0, "term0001")
	c.LookupPrefix(ix, 0, "term")
	if got := c.Stats().Hits - h; got != 2 {
		t.Errorf("repeat lookups produced %d hits, want 2", got)
	}
}

// TestMatchCacheNormalization: lookups differing only in case or
// surrounding space share one entry, matching Index.Lookup semantics.
func TestMatchCacheNormalization(t *testing.T) {
	ix, _ := zipfTermIndex(4, 2)
	c := NewMatchCache(1 << 20)
	c.Lookup(ix, 0, "term0002")
	h := c.Stats().Hits
	if m := c.Lookup(ix, 0, "  TERM0002 "); len(m.Nodes) != 2 {
		t.Errorf("normalized lookup = %v", m.Nodes)
	}
	if c.Stats().Hits != h+1 {
		t.Error("case/space variant missed the cache")
	}
}

// TestMatchCacheConcurrent hammers one cache from many goroutines; run
// with -race this pins the locking story.
func TestMatchCacheConcurrent(t *testing.T) {
	ix, names := zipfTermIndex(512, 16)
	c := NewMatchCache(32 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			zipf := rand.NewZipf(rand.New(rand.NewSource(seed)), 1.3, 1, uint64(len(names)-1))
			for i := 0; i < 1200; i++ {
				term := names[zipf.Uint64()]
				if m := c.Lookup(ix, 0, term); len(m.Nodes) != 16 {
					t.Errorf("term %s: %d nodes", term, len(m.Nodes))
					return
				}
				if i%7 == 0 {
					c.LookupPrefix(ix, 0, term[:5])
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if st := c.Stats(); st.Bytes > st.MaxBytes {
		t.Errorf("bytes %d exceed budget %d after concurrent load", st.Bytes, st.MaxBytes)
	}
}
