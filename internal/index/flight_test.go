package index

import (
	"fmt"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/graph"
)

// flightFixture reuses the small indexed database of the index tests.
func flightFixture(t *testing.T) (*Index, *MatchCache) {
	t.Helper()
	_, _, ix := newIndexedDB(t)
	return ix, NewMatchCache(1 << 20)
}

// TestFlightGroupCoalescesConcurrentMisses drives K goroutines into the
// same uncached term resolution deterministically: the leader's resolve
// function blocks until every follower has joined the flight, so exactly
// one resolution happens and K-1 lookups coalesce.
func TestFlightGroupCoalescesConcurrentMisses(t *testing.T) {
	g := NewFlightGroup()
	const k = 8

	var mu sync.Mutex
	resolves := 0
	joined := make(chan struct{}, k)
	release := make(chan struct{})

	want := Match{Nodes: []graph.NodeID{1, 2, 3}}
	var wg sync.WaitGroup
	results := make([]Match, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			joined <- struct{}{}
			results[i] = g.do(flightKey{epoch: 0, key: "=term"}, func() Match {
				mu.Lock()
				resolves++
				mu.Unlock()
				// Hold the flight open until all K goroutines have at
				// least started; followers that arrive while we block
				// must coalesce rather than resolve.
				for j := 0; j < k; j++ {
					<-joined
				}
				close(release)
				return want
			})
		}(i)
	}
	<-release
	wg.Wait()

	if resolves != 1 {
		t.Fatalf("resolves = %d, want 1", resolves)
	}
	// Every goroutine saw the leader's result.
	for i, m := range results {
		if len(m.Nodes) != 3 {
			t.Errorf("goroutine %d got %v", i, m.Nodes)
		}
	}
	// The followers that arrived during the in-flight call coalesced.
	// At least one must have (the leader blocked until all had joined);
	// with the join barrier, all k-1 did.
	if got := g.Coalesced(); got != k-1 {
		t.Errorf("Coalesced = %d, want %d", got, k-1)
	}
	if got := g.Resolved(); got != 1 {
		t.Errorf("Resolved = %d, want 1", got)
	}
}

// TestFlightGroupLookupFillsCache checks the layered path: a miss resolves
// through the flight and fills the cache, so the next lookup is a pure
// cache hit that never enters the group.
func TestFlightGroupLookupFillsCache(t *testing.T) {
	ix, cache := flightFixture(t)
	g := NewFlightGroup()

	m1 := g.Lookup(cache, ix, 0, "mohan")
	if len(m1.Nodes) == 0 {
		t.Fatal("no matches through the flight group")
	}
	if g.Resolved() != 1 {
		t.Fatalf("Resolved = %d after first lookup", g.Resolved())
	}
	m2 := g.Lookup(cache, ix, 0, "mohan")
	if g.Resolved() != 1 {
		t.Errorf("second lookup resolved again (Resolved = %d), cache not consulted", g.Resolved())
	}
	if fmt.Sprint(m1.Nodes) != fmt.Sprint(m2.Nodes) {
		t.Errorf("cached result differs: %v vs %v", m1.Nodes, m2.Nodes)
	}

	// Prefix path, same layering.
	p1 := g.LookupPrefix(cache, ix, 0, "moh")
	if len(p1) == 0 {
		t.Fatal("no prefix matches through the flight group")
	}
	resolved := g.Resolved()
	if g.LookupPrefix(cache, ix, 0, "moh"); g.Resolved() != resolved {
		t.Error("cached prefix lookup resolved again")
	}
}

// TestFlightGroupNilSafe: a nil group degrades to the plain cache path.
func TestFlightGroupNilSafe(t *testing.T) {
	ix, cache := flightFixture(t)
	var g *FlightGroup
	if m := g.Lookup(cache, ix, 0, "mohan"); len(m.Nodes) == 0 {
		t.Error("nil group lost the match set")
	}
	if ns := g.LookupPrefix(cache, ix, 0, "moh"); len(ns) == 0 {
		t.Error("nil group lost the prefix matches")
	}
	if g.Coalesced() != 0 || g.Resolved() != 0 {
		t.Error("nil group reports nonzero stats")
	}
}

// TestFlightGroupNoCache: admission still coalesces when caching is
// disabled entirely (nil cache).
func TestFlightGroupNoCache(t *testing.T) {
	ix, _ := flightFixture(t)
	g := NewFlightGroup()
	if m := g.Lookup(nil, ix, 0, "mohan"); len(m.Nodes) == 0 {
		t.Error("cacheless lookup lost the match set")
	}
	if g.Resolved() != 1 {
		t.Errorf("Resolved = %d", g.Resolved())
	}
}
