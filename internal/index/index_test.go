package index

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/sqldb"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Jim Gray", []string{"jim", "gray"}},
		{"Transaction Processing: Concepts", []string{"transaction", "processing", "concepts"}},
		{"soumen-sunita_byron", []string{"soumen", "sunita", "byron"}},
		{"VLDB 1998", []string{"vldb", "1998"}},
		{"", nil},
		{"  --  ", nil},
		{"Ünïcode wörds", []string{"ünïcode", "wörds"}},
		{"a", []string{"a"}},
	}
	for _, c := range cases {
		got := Tokenize(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeNeverEmptyTokens(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func newIndexedDB(t *testing.T) (*sqldb.Database, *graph.Graph, *Index) {
	t.Helper()
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "Author",
		Columns: []sqldb.Column{
			{Name: "AuthorId", Type: sqldb.TypeText, NotNull: true},
			{Name: "AuthorName", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"AuthorId"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "Paper",
		Columns: []sqldb.Column{
			{Name: "PaperId", Type: sqldb.TypeText, NotNull: true},
			{Name: "Title", Type: sqldb.TypeText},
			{Name: "Year", Type: sqldb.TypeInt},
		},
		PrimaryKey: []string{"PaperId"},
	})
	db.Insert("Author", []sqldb.Value{sqldb.Text("gray"), sqldb.Text("Jim Gray")})
	db.Insert("Author", []sqldb.Value{sqldb.Text("mohan"), sqldb.Text("C. Mohan")})
	db.Insert("Paper", []sqldb.Value{sqldb.Text("tp"), sqldb.Text("Transaction Processing"), sqldb.Int(1993)})
	db.Insert("Paper", []sqldb.Value{sqldb.Text("aries"), sqldb.Text("ARIES Transaction Recovery"), sqldb.Int(1992)})
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return db, g, ix
}

func TestLookupDataTokens(t *testing.T) {
	_, g, ix := newIndexedDB(t)
	m := ix.Lookup("transaction")
	if len(m.Nodes) != 2 {
		t.Fatalf("transaction matches = %v", m.Nodes)
	}
	for _, n := range m.Nodes {
		if g.TableNameOf(n) != "Paper" {
			t.Errorf("match in table %s", g.TableNameOf(n))
		}
	}
	m = ix.Lookup("Gray") // case-insensitive
	if len(m.Nodes) != 1 {
		t.Fatalf("gray matches = %v", m.Nodes)
	}
	if m2 := ix.Lookup("GRAY "); !reflect.DeepEqual(m.Nodes, m2.Nodes) {
		t.Error("lookup should trim and fold case")
	}
}

func TestLookupMetadata(t *testing.T) {
	_, g, ix := newIndexedDB(t)
	m := ix.Lookup("author")
	if len(m.Tables) != 1 || m.Tables[0] != g.TableID("Author") {
		t.Errorf("metadata match = %+v", m)
	}
	// Column name metadata: "title" names a Paper column.
	m = ix.Lookup("title")
	if len(m.Tables) != 1 || m.Tables[0] != g.TableID("Paper") {
		t.Errorf("column metadata match = %+v", m)
	}
	// "authorid" tokenizes to one token, matching the Author table.
	m = ix.Lookup("authorid")
	if len(m.Tables) != 1 {
		t.Errorf("authorid metadata = %+v", m)
	}
}

func TestLookupMiss(t *testing.T) {
	_, _, ix := newIndexedDB(t)
	if m := ix.Lookup("zebra"); !m.Empty() {
		t.Errorf("zebra should be empty, got %+v", m)
	}
}

func TestPostingsSortedUnique(t *testing.T) {
	_, _, ix := newIndexedDB(t)
	m := ix.Lookup("transaction")
	for i := 1; i < len(m.Nodes); i++ {
		if m.Nodes[i] <= m.Nodes[i-1] {
			t.Fatalf("postings not sorted/unique: %v", m.Nodes)
		}
	}
}

func TestDuplicateTokenInRowIndexedOnce(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:    "t",
		Columns: []sqldb.Column{{Name: "a", Type: sqldb.TypeText}, {Name: "b", Type: sqldb.TypeText}},
	})
	db.Insert("t", []sqldb.Value{sqldb.Text("echo echo"), sqldb.Text("echo")})
	g, _ := graph.Build(db, nil)
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	if m := ix.Lookup("echo"); len(m.Nodes) != 1 {
		t.Errorf("echo matches = %v, want 1 node", m.Nodes)
	}
}

func TestLookupPrefix(t *testing.T) {
	_, _, ix := newIndexedDB(t)
	ns := ix.LookupPrefix("trans")
	if len(ns) != 2 {
		t.Errorf("prefix matches = %v", ns)
	}
	if got := ix.LookupPrefix(""); got != nil {
		t.Errorf("empty prefix should match nothing, got %v", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	_, _, ix := newIndexedDB(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTerms() != ix.NumTerms() || back.NumPostings() != ix.NumPostings() || back.NumNodes() != ix.NumNodes() {
		t.Errorf("round trip stats: %d/%d/%d vs %d/%d/%d",
			back.NumTerms(), back.NumPostings(), back.NumNodes(),
			ix.NumTerms(), ix.NumPostings(), ix.NumNodes())
	}
	for _, term := range []string{"transaction", "gray", "mohan", "aries"} {
		a, b := ix.Lookup(term), back.Lookup(term)
		if !reflect.DeepEqual(a.Nodes, b.Nodes) {
			t.Errorf("term %q: %v vs %v", term, a.Nodes, b.Nodes)
		}
	}
	a, b := ix.Lookup("author"), back.Lookup("author")
	if !reflect.DeepEqual(a.Tables, b.Tables) {
		t.Errorf("metadata round trip: %v vs %v", a.Tables, b.Tables)
	}
}

func TestReadFromBadInput(t *testing.T) {
	if _, err := ReadFrom(bytes.NewReader([]byte("NOTANINDEX"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadFrom(bytes.NewReader([]byte(magic))); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestIndexSkipsDeletedRows(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:    "t",
		Columns: []sqldb.Column{{Name: "a", Type: sqldb.TypeText}},
	})
	db.Insert("t", []sqldb.Value{sqldb.Text("keepme")})
	rid, _ := db.Insert("t", []sqldb.Value{sqldb.Text("dropme")})
	db.Delete("t", rid)
	g, _ := graph.Build(db, nil)
	ix, err := Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	if m := ix.Lookup("dropme"); !m.Empty() {
		t.Errorf("deleted row still indexed: %+v", m)
	}
	if m := ix.Lookup("keepme"); len(m.Nodes) != 1 {
		t.Errorf("live row not indexed: %+v", m)
	}
}
