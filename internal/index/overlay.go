// Overlay composes an immutable base index with an in-memory delta of
// posting additions and removals, serving the full View interface without a
// rebuild. The owning layer turns each row mutation into per-token set
// diffs (tokens the row gained, tokens it lost) and feeds them to Delta.Add
// and Delta.Remove; metadata (relation/column name) postings are static and
// always come from the base.
package index

import (
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
)

// Overlay is an immutable base-plus-delta index view. Snapshots are cheap
// and safe for concurrent readers while the owning Delta keeps mutating.
type Overlay struct {
	base  View
	nodes int

	// added holds per-token nodes present in the delta but not the base,
	// sorted ascending; slices are never mutated after publication.
	added map[string][]graph.NodeID
	// removed holds per-token base nodes masked out by the delta.
	removed map[string]map[graph.NodeID]struct{}

	terms int
	posts int
}

var _ View = (*Overlay)(nil)

// Lookup returns the merged match set for one term.
func (o *Overlay) Lookup(term string) Match {
	tok := strings.ToLower(strings.TrimSpace(term))
	m := o.base.Lookup(tok)
	add, rm := o.added[tok], o.removed[tok]
	if len(add) == 0 && len(rm) == 0 {
		return m
	}
	return Match{Nodes: mergePostings(m.Nodes, add, rm), Tables: m.Tables}
}

// mergePostings merges two sorted node lists, masking rm out of base.
func mergePostings(base, add []graph.NodeID, rm map[graph.NodeID]struct{}) []graph.NodeID {
	out := make([]graph.NodeID, 0, len(base)+len(add))
	i, j := 0, 0
	for i < len(base) || j < len(add) {
		switch {
		case j >= len(add) || (i < len(base) && base[i] <= add[j]):
			n := base[i]
			i++
			if j < len(add) && add[j] == n {
				j++ // defensive: never emit duplicates
			}
			if _, dead := rm[n]; dead {
				continue
			}
			out = append(out, n)
		default:
			out = append(out, add[j])
			j++
		}
	}
	return out
}

// deltaTouchesPrefix reports whether any delta token starts with prefix.
func (o *Overlay) deltaTouchesPrefix(prefix string) bool {
	for tok := range o.added {
		if strings.HasPrefix(tok, prefix) {
			return true
		}
	}
	for tok := range o.removed {
		if strings.HasPrefix(tok, prefix) {
			return true
		}
	}
	return false
}

// LookupPrefix returns the sorted, deduplicated node set across every
// token with the given prefix, merged across base and delta.
func (o *Overlay) LookupPrefix(prefix string) []graph.NodeID {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	if !o.deltaTouchesPrefix(prefix) {
		return o.base.LookupPrefix(prefix)
	}
	var out []graph.NodeID
	seen := make(map[string]struct{})
	for _, tok := range o.base.PrefixTokens(prefix) {
		seen[tok] = struct{}{}
		out = append(out, o.Lookup(tok).Nodes...)
	}
	for tok, ns := range o.added {
		if !strings.HasPrefix(tok, prefix) {
			continue
		}
		if _, ok := seen[tok]; ok {
			continue
		}
		out = append(out, ns...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// PrefixTokens returns the indexed tokens with the given prefix, ascending,
// excluding tokens whose merged posting list is empty.
func (o *Overlay) PrefixTokens(prefix string) []string {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	base := o.base.PrefixTokens(prefix)
	if !o.deltaTouchesPrefix(prefix) {
		return base
	}
	var out []string
	seen := make(map[string]struct{}, len(base))
	for _, tok := range base {
		seen[tok] = struct{}{}
		if len(o.removed[tok]) > 0 && len(o.Lookup(tok).Nodes) == 0 {
			continue // fully removed from the merged index
		}
		out = append(out, tok)
	}
	for tok := range o.added {
		if !strings.HasPrefix(tok, prefix) {
			continue
		}
		if _, ok := seen[tok]; !ok {
			out = append(out, tok)
		}
	}
	sort.Strings(out)
	return out
}

// NumTerms returns the distinct token count of the merged index.
func (o *Overlay) NumTerms() int { return o.terms }

// NumPostings returns the total posting count of the merged index.
func (o *Overlay) NumPostings() int { return o.posts }

// NumNodes returns the node-id space size the overlay covers.
func (o *Overlay) NumNodes() int { return o.nodes }

// ForEachTermSorted visits every merged token in ascending order, skipping
// tokens whose merged posting list is empty.
func (o *Overlay) ForEachTermSorted(fn func(tok string, ns []graph.NodeID)) error {
	addedToks := make([]string, 0, len(o.added))
	for tok := range o.added {
		addedToks = append(addedToks, tok)
	}
	sort.Strings(addedToks)
	i := 0
	emitAddedOnly := func(upto string, bounded bool) {
		for i < len(addedToks) && (!bounded || addedToks[i] < upto) {
			tok := addedToks[i]
			i++
			if ns := o.Lookup(tok).Nodes; len(ns) > 0 {
				fn(tok, ns)
			}
		}
	}
	err := o.base.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		emitAddedOnly(tok, true)
		if i < len(addedToks) && addedToks[i] == tok {
			i++
		}
		add, rm := o.added[tok], o.removed[tok]
		if len(add) == 0 && len(rm) == 0 {
			fn(tok, ns)
			return
		}
		if merged := mergePostings(ns, add, rm); len(merged) > 0 {
			fn(tok, merged)
		}
	})
	if err != nil {
		return err
	}
	emitAddedOnly("", false)
	return nil
}

// MetaTables returns the base's metadata map (schema tokens are static).
func (o *Overlay) MetaTables() map[string][]int32 { return o.base.MetaTables() }

// LazyErr reports the base's first deferred-load failure.
func (o *Overlay) LazyErr() error { return o.base.LazyErr() }

// Base returns the view this overlay composes over.
func (o *Overlay) Base() View { return o.base }

// Delta accumulates posting additions and removals over a base index. It is
// not safe for concurrent use; published Snapshots stay valid and immutable
// across later Adds/Removes.
type Delta struct {
	cur Overlay

	// baseMemo caches the base posting list of every touched token, so
	// presence checks and count bookkeeping fault each block at most once.
	baseMemo map[string][]graph.NodeID

	pending int
}

// NewDelta prepares a posting delta over base.
func NewDelta(base View) *Delta {
	return &Delta{
		cur: Overlay{
			base:    base,
			nodes:   base.NumNodes(),
			added:   make(map[string][]graph.NodeID),
			removed: make(map[string]map[graph.NodeID]struct{}),
			terms:   base.NumTerms(),
			posts:   base.NumPostings(),
		},
		baseMemo: make(map[string][]graph.NodeID),
	}
}

// Pending returns how many Add/Remove operations changed the delta.
func (d *Delta) Pending() int { return d.pending }

// Snapshot publishes the current state as an immutable Overlay for the
// given node-id space size (the paired graph view's NumNodes).
func (d *Delta) Snapshot(numNodes int) *Overlay {
	o := d.cur
	o.nodes = numNodes
	o.added = make(map[string][]graph.NodeID, len(d.cur.added))
	for k, v := range d.cur.added {
		o.added[k] = v
	}
	o.removed = make(map[string]map[graph.NodeID]struct{}, len(d.cur.removed))
	for k, v := range d.cur.removed {
		cp := make(map[graph.NodeID]struct{}, len(v))
		for n := range v {
			cp[n] = struct{}{}
		}
		o.removed[k] = cp
	}
	return &o
}

func (d *Delta) baseNodes(tok string) []graph.NodeID {
	if ns, ok := d.baseMemo[tok]; ok {
		return ns
	}
	ns := d.cur.base.Lookup(tok).Nodes
	d.baseMemo[tok] = ns
	return ns
}

func containsNode(ns []graph.NodeID, n graph.NodeID) bool {
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= n })
	return i < len(ns) && ns[i] == n
}

// mergedLen returns the merged posting count of tok.
func (d *Delta) mergedLen(tok string) int {
	return len(d.baseNodes(tok)) + len(d.cur.added[tok]) - len(d.cur.removed[tok])
}

// Add records that node n now matches tok (already tokenized: lower-case).
// Adding an already-present posting is a no-op.
func (d *Delta) Add(tok string, n graph.NodeID) {
	before := d.mergedLen(tok)
	if rm := d.cur.removed[tok]; rm != nil {
		if _, dead := rm[n]; dead {
			delete(rm, n)
			if len(rm) == 0 {
				delete(d.cur.removed, tok)
			}
			d.bump(before, +1)
			return
		}
	}
	if containsNode(d.baseNodes(tok), n) || containsNode(d.cur.added[tok], n) {
		return
	}
	old := d.cur.added[tok]
	i := sort.Search(len(old), func(i int) bool { return old[i] >= n })
	fresh := make([]graph.NodeID, 0, len(old)+1)
	fresh = append(fresh, old[:i]...)
	fresh = append(fresh, n)
	fresh = append(fresh, old[i:]...)
	d.cur.added[tok] = fresh
	d.bump(before, +1)
}

// Remove records that node n no longer matches tok. Removing an absent
// posting is a no-op.
func (d *Delta) Remove(tok string, n graph.NodeID) {
	before := d.mergedLen(tok)
	if old := d.cur.added[tok]; containsNode(old, n) {
		i := sort.Search(len(old), func(i int) bool { return old[i] >= n })
		fresh := make([]graph.NodeID, 0, len(old)-1)
		fresh = append(fresh, old[:i]...)
		fresh = append(fresh, old[i+1:]...)
		if len(fresh) == 0 {
			delete(d.cur.added, tok)
		} else {
			d.cur.added[tok] = fresh
		}
		d.bump(before, -1)
		return
	}
	if !containsNode(d.baseNodes(tok), n) {
		return
	}
	rm := d.cur.removed[tok]
	if rm == nil {
		rm = make(map[graph.NodeID]struct{})
		d.cur.removed[tok] = rm
	} else if _, dead := rm[n]; dead {
		return
	}
	rm[n] = struct{}{}
	d.bump(before, -1)
}

// bump maintains the merged term/posting counts across one ±1 change.
func (d *Delta) bump(before, delta int) {
	d.cur.posts += delta
	after := before + delta
	if before == 0 && after > 0 {
		d.cur.terms++
	}
	if before > 0 && after == 0 {
		d.cur.terms--
	}
	d.pending++
}
