package index

import (
	"sync"
	"sync/atomic"

	"github.com/banksdb/banks/internal/graph"
)

// FlightGroup is the single-flight admission layer for term resolution:
// when several concurrent queries miss the match cache on the same term
// at the same time, exactly one performs the index lookup (and fills the
// cache) while the others wait for its result — the per-term work sharing
// across concurrent requests that Mragyati-style keyword-search servers
// rely on. On top of the MatchCache this closes the cache's one gap under
// bursts: a popular term that is not yet cached is resolved once per
// burst, not once per query.
//
// Like the MatchCache, a FlightGroup carries over across snapshot
// publishes; in-flight calls are keyed by (epoch, term) so two queries
// pinned to different snapshots never share a resolution — the same term
// can legitimately resolve to different match sets across an epoch
// boundary. A nil *FlightGroup is valid and disables coalescing: every
// lookup falls through to the cache/index pair.
type FlightGroup struct {
	mu        sync.Mutex
	calls     map[flightKey]*flightCall
	coalesced atomic.Int64
	resolved  atomic.Int64
}

// flightKey identifies one coalescible resolution: the reader's snapshot
// epoch plus the kind-prefixed normalized term.
type flightKey struct {
	epoch uint64
	key   string
}

// flightCall is one in-flight resolution; done closes once m is set.
type flightCall struct {
	done chan struct{}
	m    Match
}

// NewFlightGroup returns an empty admission group.
func NewFlightGroup() *FlightGroup {
	return &FlightGroup{calls: make(map[flightKey]*flightCall)}
}

// do runs fn under key unless an identical call is already in flight, in
// which case it waits for and shares that call's result.
func (g *FlightGroup) do(key flightKey, fn func() Match) Match {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		g.coalesced.Add(1)
		<-c.done
		return c.m
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	g.resolved.Add(1)
	c.m = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.m
}

// Lookup resolves one exact term through cache -> flight -> index: a
// cache hit returns immediately; a miss joins (or leads) the single
// in-flight resolution for that term, which fills the cache for everyone
// arriving later. Callers must not mutate the returned slices.
func (g *FlightGroup) Lookup(c *MatchCache, ix View, epoch uint64, term string) Match {
	if g == nil {
		return c.Lookup(ix, epoch, term)
	}
	tok := normalizeTerm(term)
	if m, ok := c.peekExact(tok, epoch); ok {
		return m
	}
	return g.do(flightKey{epoch, exactKeyPrefix + tok}, func() Match {
		return c.Lookup(ix, epoch, tok)
	})
}

// LookupPrefix is Lookup for prefix resolution — the lookup most worth
// admitting once per burst, since an uncached prefix expansion walks the
// whole vocabulary. Callers must not mutate the returned slice.
func (g *FlightGroup) LookupPrefix(c *MatchCache, ix View, epoch uint64, prefix string) []graph.NodeID {
	if g == nil {
		return c.LookupPrefix(ix, epoch, prefix)
	}
	tok := normalizeTerm(prefix)
	if m, ok := c.peekPrefix(tok, epoch); ok {
		return m.Nodes
	}
	m := g.do(flightKey{epoch, prefixKeyPrefix + tok}, func() Match {
		return Match{Nodes: c.LookupPrefix(ix, epoch, tok)}
	})
	return m.Nodes
}

// Coalesced returns how many lookups piggybacked on another query's
// in-flight resolution instead of resolving themselves. Safe on nil.
func (g *FlightGroup) Coalesced() int64 {
	if g == nil {
		return 0
	}
	return g.coalesced.Load()
}

// Resolved returns how many resolutions this group actually led (cache
// misses that went to the index). Safe on nil.
func (g *FlightGroup) Resolved() int64 {
	if g == nil {
		return 0
	}
	return g.resolved.Load()
}
