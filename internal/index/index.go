// Package index implements the keyword index of Section 3 of the paper:
// given a search term, it returns the set of nodes S_i relevant to it. A
// node is relevant when the term appears in a textual attribute of the
// tuple, or in metadata — the name of the tuple's relation or one of its
// columns ("all tuples belonging to a relation named AUTHOR would be
// regarded as relevant to the keyword 'author'").
//
// The paper keeps this index disk-resident; WriteTo/ReadFrom provide a
// compact binary serialization for the same purpose.
package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"unicode"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/par"
	"github.com/banksdb/banks/internal/sqldb"
)

// Tokenize splits s into lower-cased tokens at non-alphanumeric boundaries.
// Numbers are kept as tokens (so "vldb 1998" matches a year column rendered
// as text).
func Tokenize(s string) []string {
	var out []string
	start := -1
	for i, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, strings.ToLower(s[start:i]))
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, strings.ToLower(s[start:]))
	}
	return out
}

// Match is the result of looking up one search term: explicit node matches
// from data tokens, plus table ids whose metadata (relation or column name)
// matched — every node of such a table is relevant to the term.
type Match struct {
	Nodes  []graph.NodeID
	Tables []int32
}

// Empty reports whether the term matched nothing at all.
func (m Match) Empty() bool { return len(m.Nodes) == 0 && len(m.Tables) == 0 }

// Index is the inverted keyword index over a data graph. An Index is
// either eager (Build / NewFromPostings / ReadFrom: every posting list
// resident in terms) or lazy (OpenLazy: only the term dictionary resident,
// postings fetched from a LazySource on first lookup); both serve the same
// read interface with identical results.
type Index struct {
	terms map[string][]graph.NodeID
	meta  map[string][]int32
	nodes int
	posts int
	lazy  *lazyIndex // non-nil for store-opened indexes
}

// BuildOptions tune index construction.
type BuildOptions struct {
	// Shards caps how many concurrent workers tokenize the database. 0
	// uses runtime.GOMAXPROCS(0); 1 forces a serial build. Every shard
	// count produces byte-identical indexes: shards cover contiguous RID
	// ranges in (table, range) order, so concatenating their postings in
	// plan order yields the same sorted posting lists a serial build does.
	Shards int
}

// Build indexes every text attribute of every live row of db, mapping
// matches to nodes of g. g must have been built from the same database
// snapshot. The build is sharded over GOMAXPROCS workers; use
// BuildWithOptions to control the shard count.
func Build(db *sqldb.Database, g *graph.Graph) (*Index, error) {
	return BuildWithOptions(db, g, nil)
}

// indexShard is one contiguous RID range of one table, tokenized by one
// worker into a private posting map.
type indexShard struct {
	table    string
	t        *sqldb.Table
	textCols []int
	lo, hi   sqldb.RID
	terms    map[string][]graph.NodeID
}

// indexShardSize is the minimum row-range per shard (tokenizing is cheap
// per row, so shards smaller than this are dominated by overhead).
const indexShardSize = 512

// BuildWithOptions is Build with explicit construction options.
func BuildWithOptions(db *sqldb.Database, g *graph.Graph, opts *BuildOptions) (*Index, error) {
	shards := 0
	if opts != nil {
		shards = opts.Shards
	}
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	ix := &Index{
		terms: make(map[string][]graph.NodeID),
		meta:  make(map[string][]int32),
		nodes: g.NumNodes(),
	}
	db.RLock()
	defer db.RUnlock()

	// Serial prologue: metadata tokens (relation and column names) and the
	// shard plan. Error paths all live here, so the parallel scan below
	// cannot fail.
	var plan []indexShard
	for _, name := range db.TableNames() {
		t := db.Table(name)
		if t == nil {
			return nil, fmt.Errorf("index: table %s disappeared during build", name)
		}
		tid := g.TableID(name)
		if tid < 0 {
			return nil, fmt.Errorf("index: table %s not in graph", name)
		}
		for _, tok := range Tokenize(name) {
			ix.meta[tok] = appendUniqueTable(ix.meta[tok], tid)
		}
		textCols := make([]int, 0, len(t.Schema().Columns))
		for i, c := range t.Schema().Columns {
			for _, tok := range Tokenize(c.Name) {
				ix.meta[tok] = appendUniqueTable(ix.meta[tok], tid)
			}
			if c.Type == sqldb.TypeText {
				textCols = append(textCols, i)
			}
		}
		if len(textCols) == 0 {
			continue
		}
		capRows := t.Cap()
		chunk := (capRows + shards - 1) / shards
		if chunk < indexShardSize {
			chunk = indexShardSize
		}
		for lo := 0; lo < capRows; lo += chunk {
			hi := lo + chunk
			if hi > capRows {
				hi = capRows
			}
			plan = append(plan, indexShard{
				table: name, t: t, textCols: textCols,
				lo: sqldb.RID(lo), hi: sqldb.RID(hi),
			})
		}
	}

	// Parallel scan: each shard tokenizes its row range into a private
	// map. Within a shard postings are appended in RID order, so they are
	// sorted by node id (node ids are assigned in RID order per table).
	par.Run(len(plan), shards, func(i int) {
		sh := &plan[i]
		sh.terms = make(map[string][]graph.NodeID)
		sh.t.ScanRange(sh.lo, sh.hi, func(rid sqldb.RID, row []sqldb.Value) bool {
			n := g.NodeOf(sh.table, rid)
			if n == graph.NoNode {
				return true
			}
			for _, ci := range sh.textCols {
				v := row[ci]
				if v.IsNull() {
					continue
				}
				for _, tok := range Tokenize(v.S) {
					sh.terms[tok] = append(sh.terms[tok], n)
				}
			}
			return true
		})
	})

	// Merge in plan order: tables appear in creation order and ranges in
	// ascending RID order. When node ids are assigned in RID order per
	// table (the default graph layout) the concatenated postings per term
	// are already globally sorted; a graph built with a renumbering layout
	// pass (BuildOptions.LayoutOrder) breaks that correspondence, so any
	// out-of-order list is sorted before deduplication. Either way the
	// result is canonical — identical for every shard count and layout.
	for i := range plan {
		for tok, ns := range plan[i].terms {
			ix.terms[tok] = append(ix.terms[tok], ns...)
		}
	}
	for tok, ns := range ix.terms {
		if !sort.SliceIsSorted(ns, func(i, j int) bool { return ns[i] < ns[j] }) {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
		out := ns[:0]
		for i, n := range ns {
			if i == 0 || n != ns[i-1] {
				out = append(out, n)
			}
		}
		ix.terms[tok] = out
		ix.posts += len(out)
	}
	return ix, nil
}

func appendUniqueTable(s []int32, t int32) []int32 {
	for _, x := range s {
		if x == t {
			return s
		}
	}
	return append(s, t)
}

// Lookup returns the match set for one search term (case-insensitive exact
// token match, as in the paper's prototype).
func (ix *Index) Lookup(term string) Match {
	tok := strings.ToLower(strings.TrimSpace(term))
	if ix.lazy != nil {
		return ix.lazyLookup(tok)
	}
	return Match{Nodes: ix.terms[tok], Tables: ix.meta[tok]}
}

// LookupPrefix returns nodes for all indexed tokens with the given prefix;
// it backs the approximate-match extension mentioned in the paper's future
// work. The result is sorted and deduplicated.
func (ix *Index) LookupPrefix(prefix string) []graph.NodeID {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	if ix.lazy != nil {
		return ix.lazyLookupPrefix(prefix)
	}
	var out []graph.NodeID
	for tok, ns := range ix.terms {
		if strings.HasPrefix(tok, prefix) {
			out = append(out, ns...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	dedup := out[:0]
	for i, n := range out {
		if i == 0 || n != out[i-1] {
			dedup = append(dedup, n)
		}
	}
	return dedup
}

// NewFromPostings builds an index directly from posting and metadata maps
// for a graph of numNodes nodes — for tests and embedders that synthesize
// match sets without a database. Unlike Build, postings are taken verbatim:
// no sorting or deduplication is applied, so consumers of Lookup (such as
// core.Searcher) must tolerate duplicate node entries.
func NewFromPostings(numNodes int, terms map[string][]graph.NodeID, meta map[string][]int32) *Index {
	ix := &Index{
		terms: make(map[string][]graph.NodeID, len(terms)),
		meta:  make(map[string][]int32, len(meta)),
		nodes: numNodes,
	}
	for tok, ns := range terms {
		ix.terms[strings.ToLower(tok)] = append([]graph.NodeID(nil), ns...)
		ix.posts += len(ns)
	}
	for tok, ts := range meta {
		ix.meta[strings.ToLower(tok)] = append([]int32(nil), ts...)
	}
	return ix
}

// NumTerms returns the number of distinct indexed tokens.
func (ix *Index) NumTerms() int {
	if ix.lazy != nil {
		return len(ix.ensureDict().Toks)
	}
	return len(ix.terms)
}

// NumPostings returns the total posting count.
func (ix *Index) NumPostings() int {
	if ix.lazy != nil {
		return ix.ensureDict().Posts
	}
	return ix.posts
}

// NumNodes returns the node count of the graph the index was built for.
func (ix *Index) NumNodes() int { return ix.nodes }

const magic = "BANKSIX1"

// WriteTo serializes the index (the paper's "disk resident" mode). A lazy
// index streams every posting list through its source, so re-saving a
// store-opened engine works without materializing the whole index at once.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := cw.Write([]byte(magic)); err != nil {
		return cw.n, err
	}
	writeUvarint(cw, uint64(ix.nodes))
	writeUvarint(cw, uint64(ix.NumTerms()))
	if err := ix.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		writeString(cw, tok)
		writeUvarint(cw, uint64(len(ns)))
		prev := graph.NodeID(0)
		for _, n := range ns {
			writeUvarint(cw, uint64(n-prev)) // delta coding: postings are sorted
			prev = n
		}
	}); err != nil {
		return cw.n, err
	}
	meta := ix.MetaTables()
	writeUvarint(cw, uint64(len(meta)))
	mtoks := make([]string, 0, len(meta))
	for tok := range meta {
		mtoks = append(mtoks, tok)
	}
	sort.Strings(mtoks)
	for _, tok := range mtoks {
		writeString(cw, tok)
		ts := meta[tok]
		writeUvarint(cw, uint64(len(ts)))
		for _, t := range ts {
			writeUvarint(cw, uint64(t))
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, bw.Flush()
}

// ForEachTermSorted visits every indexed token in ascending order with
// its posting list — the iteration order WriteTo and the store”s postings
// segment share. Lazy indexes fetch each list through their source and
// return the first fetch error. Visited slices must not be mutated and
// are only valid for the duration of the callback (a lazy sweep decodes
// every term into one reused buffer).
func (ix *Index) ForEachTermSorted(fn func(tok string, ns []graph.NodeID)) error {
	if ix.lazy != nil {
		d := ix.ensureDict()
		if err := ix.LazyErr(); err != nil {
			return err
		}
		// Prefer the source's sequential path when it has one: a full
		// sweep must stream blocks through, not admit every decoded
		// block into the source's cache (which would pin the whole
		// postings set resident on an unbounded budget). With an
		// append-capable source the whole sweep shares one buffer.
		if seq, ok := ix.lazy.src.(sequentialAppendSource); ok {
			var buf []graph.NodeID
			for i, tok := range d.Toks {
				ns, err := seq.PostingsSequentialAppend(i, tok, buf[:0])
				if err != nil {
					return fmt.Errorf("index: loading postings for %q: %w", tok, err)
				}
				buf = ns
				fn(tok, ns)
			}
			return nil
		}
		fetch := ix.lazy.src.Postings
		if seq, ok := ix.lazy.src.(sequentialSource); ok {
			fetch = seq.PostingsSequential
		}
		for i, tok := range d.Toks {
			ns, err := fetch(i, tok)
			if err != nil {
				return fmt.Errorf("index: loading postings for %q: %w", tok, err)
			}
			fn(tok, ns)
		}
		return nil
	}
	toks := make([]string, 0, len(ix.terms))
	for tok := range ix.terms {
		toks = append(toks, tok)
	}
	sort.Strings(toks)
	for _, tok := range toks {
		fn(tok, ix.terms[tok])
	}
	return nil
}

// MetaTables returns the metadata (relation/column name token -> table
// ids) map, loading the dictionary for lazy indexes. The map and its
// slices are shared — callers must not mutate them.
func (ix *Index) MetaTables() map[string][]int32 {
	if ix.lazy != nil {
		return ix.ensureDict().Meta
	}
	return ix.meta
}

// readPrealloc caps the slice capacity trusted from a length prefix: a
// corrupted count cannot drive a huge allocation because slices grow by
// appending as the postings actually arrive, so a bogus count fails at
// the truncated stream instead of exhausting memory.
const readPrealloc = 1 << 16

// ReadFrom deserializes an index written by WriteTo. Corrupt input —
// counts or node ids outside the graph the index claims to cover, or a
// truncated stream — is rejected with an error rather than panicking or
// allocating unboundedly; the fuzz harness locks this contract down.
func ReadFrom(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != magic {
		return nil, errors.New("index: bad magic")
	}
	ix := &Index{terms: make(map[string][]graph.NodeID), meta: make(map[string][]int32)}
	nodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if nodes > math.MaxInt32 {
		return nil, fmt.Errorf("index: node count %d out of range", nodes)
	}
	ix.nodes = int(nodes)
	nterms, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nterms; i++ {
		tok, err := readString(br)
		if err != nil {
			return nil, err
		}
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if cnt > math.MaxInt32 {
			return nil, fmt.Errorf("index: term %q claims %d postings", tok, cnt)
		}
		ns := make([]graph.NodeID, 0, min(cnt, readPrealloc))
		prev := uint64(0)
		for j := uint64(0); j < cnt; j++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prev += d
			if prev >= nodes {
				return nil, fmt.Errorf("index: term %q posting %d references node %d of %d", tok, j, prev, nodes)
			}
			ns = append(ns, graph.NodeID(prev))
		}
		ix.terms[tok] = ns
		ix.posts += len(ns)
	}
	nmeta, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nmeta; i++ {
		tok, err := readString(br)
		if err != nil {
			return nil, err
		}
		cnt, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if cnt > math.MaxInt32 {
			return nil, fmt.Errorf("index: metadata term %q claims %d tables", tok, cnt)
		}
		ts := make([]int32, 0, min(cnt, readPrealloc))
		for j := uint64(0); j < cnt; j++ {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			if v > math.MaxInt32 {
				return nil, fmt.Errorf("index: metadata term %q references table %d", tok, v)
			}
			ts = append(ts, int32(v))
		}
		ix.meta[tok] = ts
	}
	return ix, nil
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func writeUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func writeString(w io.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func readString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("index: token too long")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
