package index

import (
	"sort"

	"github.com/banksdb/banks/internal/graph"
)

// Materialize folds any index view — typically a base+delta Overlay —
// into a concrete eager Index over a renumbered graph: remap maps the
// view's node IDs to the materialized graph's (graph.NoNode for
// tombstoned nodes, which drop out of every posting list), and numNodes
// is the new graph's node count. The view is an immutable snapshot, so
// the fold runs without any lock — it is Compact's index-side
// counterpart to graph.Materialize.
//
// The remap is not monotonic in general (delta nodes renumber into their
// tables' ranges), so each posting list is re-sorted; the result is
// byte-identical to an index built from scratch over the materialized
// graph.
func Materialize(v View, remap []graph.NodeID, numNodes int) (*Index, error) {
	ix := &Index{
		terms: make(map[string][]graph.NodeID, v.NumTerms()),
		meta:  make(map[string][]int32),
		nodes: numNodes,
	}
	err := v.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		out := make([]graph.NodeID, 0, len(ns))
		for _, n := range ns {
			if m := remap[n]; m != graph.NoNode {
				out = append(out, m)
			}
		}
		if len(out) == 0 {
			return
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		ix.terms[tok] = out
		ix.posts += len(out)
	})
	if err != nil {
		return nil, err
	}
	for tok, ts := range v.MetaTables() {
		ix.meta[tok] = append([]int32(nil), ts...)
	}
	return ix, nil
}
