package index

import (
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
)

// View is the read interface of the keyword index. Three implementations
// serve it with identical results: the eager *Index (Build/ReadFrom), the
// store-opened lazy *Index (OpenLazy), and *Overlay — an immutable base
// composed with an in-memory delta of live posting changes. The search
// core, match cache and single-flight group all resolve terms through a
// View, so engines compose without touching the lookup path.
type View interface {
	// Lookup returns the match set for one term (case-insensitive exact
	// token match). Nodes are sorted ascending and deduplicated.
	Lookup(term string) Match
	// LookupPrefix returns the sorted, deduplicated node set across every
	// indexed token with the given prefix.
	LookupPrefix(prefix string) []graph.NodeID
	// PrefixTokens returns the indexed tokens with the given prefix, in
	// ascending order — the per-token decomposition an overlay needs to
	// merge base and delta prefix matches exactly.
	PrefixTokens(prefix string) []string
	// NumTerms returns the number of distinct indexed tokens.
	NumTerms() int
	// NumPostings returns the total posting count.
	NumPostings() int
	// NumNodes returns the node-id space size the index covers.
	NumNodes() int
	// ForEachTermSorted visits every token in ascending order with its
	// posting list; visited slices are read-only.
	ForEachTermSorted(fn func(tok string, ns []graph.NodeID)) error
	// MetaTables returns the metadata token -> table-ids map, read-only.
	MetaTables() map[string][]int32
	// LazyErr reports the first deferred-load failure, or nil.
	LazyErr() error
}

var _ View = (*Index)(nil)

// PrefixTokens returns the indexed tokens beginning with prefix, sorted
// ascending. A lazy index reads the contiguous dictionary range; an eager
// one scans its vocabulary.
func (ix *Index) PrefixTokens(prefix string) []string {
	prefix = strings.ToLower(strings.TrimSpace(prefix))
	if prefix == "" {
		return nil
	}
	if ix.lazy != nil {
		d := ix.ensureDict()
		var out []string
		for i := sort.SearchStrings(d.Toks, prefix); i < len(d.Toks) && strings.HasPrefix(d.Toks[i], prefix); i++ {
			out = append(out, d.Toks[i])
		}
		return out
	}
	var out []string
	for tok := range ix.terms {
		if strings.HasPrefix(tok, prefix) {
			out = append(out, tok)
		}
	}
	sort.Strings(out)
	return out
}
