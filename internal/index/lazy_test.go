package index

import (
	"bytes"
	"errors"
	"sort"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/graph"
)

// eagerAsLazySource adapts an eager index into a LazySource, counting
// postings fetches — the in-memory stand-in for the store.
type eagerAsLazySource struct {
	ix      *Index
	fetches int
	dictErr error
	postErr error
}

func (s *eagerAsLazySource) Dict() (*LazyDict, error) {
	if s.dictErr != nil {
		return nil, s.dictErr
	}
	d := &LazyDict{Meta: s.ix.meta, Posts: s.ix.posts}
	for tok := range s.ix.terms {
		d.Toks = append(d.Toks, tok)
	}
	sort.Strings(d.Toks)
	d.Counts = make([]int, len(d.Toks))
	for i, tok := range d.Toks {
		d.Counts[i] = len(s.ix.terms[tok])
	}
	return d, nil
}

func (s *eagerAsLazySource) Postings(i int, tok string) ([]graph.NodeID, error) {
	s.fetches++
	if s.postErr != nil {
		return nil, s.postErr
	}
	return s.ix.terms[tok], nil
}

func lazyPair(t *testing.T) (*Index, *Index, *eagerAsLazySource) {
	t.Helper()
	_, _, eager := newIndexedDB(t)
	src := &eagerAsLazySource{ix: eager}
	return eager, OpenLazy(eager.NumNodes(), src), src
}

func TestLazyLookupMatchesEager(t *testing.T) {
	eager, lazy, _ := lazyPair(t)
	terms := []string{"transaction", "gray", "author", "missing", "  TRANSACTION  ", "title"}
	for _, term := range terms {
		want, got := eager.Lookup(term), lazy.Lookup(term)
		if !equalNodes(want.Nodes, got.Nodes) || !equalTables(want.Tables, got.Tables) {
			t.Errorf("Lookup(%q): lazy %+v, eager %+v", term, got, want)
		}
	}
	for _, pfx := range []string{"t", "tr", "a", "zzz", ""} {
		if !equalNodes(eager.LookupPrefix(pfx), lazy.LookupPrefix(pfx)) {
			t.Errorf("LookupPrefix(%q) differs", pfx)
		}
	}
	if eager.NumTerms() != lazy.NumTerms() || eager.NumPostings() != lazy.NumPostings() {
		t.Errorf("counters differ: terms %d/%d postings %d/%d",
			lazy.NumTerms(), eager.NumTerms(), lazy.NumPostings(), eager.NumPostings())
	}
	if err := lazy.LazyErr(); err != nil {
		t.Fatal(err)
	}
}

func TestLazyWriteToMatchesEager(t *testing.T) {
	eager, lazy, _ := lazyPair(t)
	var want, got bytes.Buffer
	if _, err := eager.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := lazy.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("lazy index serializes differently from the eager index")
	}
}

func TestLazyPrefixFetchesOnlyMatchingTerms(t *testing.T) {
	_, lazy, src := lazyPair(t)
	lazy.LookupPrefix("tr")
	matching := 0
	for _, tok := range src.mustDict(t).Toks {
		if strings.HasPrefix(tok, "tr") {
			matching++
		}
	}
	if src.fetches != matching {
		t.Errorf("prefix lookup fetched %d posting lists, want %d (only matching terms)", src.fetches, matching)
	}
}

func (s *eagerAsLazySource) mustDict(t *testing.T) *LazyDict {
	t.Helper()
	d, err := s.Dict()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestLazySourceErrorsAreStickyAndSoft(t *testing.T) {
	_, lazy, src := lazyPair(t)
	src.postErr = errors.New("bad sector")
	if m := lazy.Lookup("transaction"); len(m.Nodes) != 0 {
		t.Fatal("failed postings fetch returned nodes")
	}
	if err := lazy.LazyErr(); err == nil || !strings.Contains(err.Error(), "bad sector") {
		t.Fatalf("LazyErr = %v, want the fetch failure", err)
	}

	_, _, eagerForBroken := newIndexedDB(t)
	broken := OpenLazy(4, &eagerAsLazySource{ix: eagerForBroken, dictErr: errors.New("no dict")})
	if n := broken.NumTerms(); n != 0 {
		t.Fatalf("broken dict NumTerms = %d, want 0", n)
	}
	if err := broken.LazyErr(); err == nil {
		t.Fatal("dict failure not reported")
	}
}

func TestMatchCacheHotKeysAndWarm(t *testing.T) {
	_, _, eager := newIndexedDB(t)
	c := NewMatchCache(1 << 20)
	c.Lookup(eager, 0, "transaction")
	c.Lookup(eager, 0, "gray")
	c.LookupPrefix(eager, 0, "tr")

	keys := c.HotKeys(16)
	if len(keys) != 3 {
		t.Fatalf("HotKeys = %v, want 3 keys", keys)
	}
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	for _, want := range []string{"=transaction", "=gray", "~tr"} {
		if !seen[want] {
			t.Errorf("HotKeys missing %q (got %v)", want, keys)
		}
	}
	if got := c.HotKeys(2); len(got) != 2 {
		t.Errorf("HotKeys(2) returned %d keys", len(got))
	}

	// Warming a fresh cache with those keys makes them hits.
	fresh := NewMatchCache(1 << 20)
	fresh.Warm(eager, 0, keys)
	st := fresh.Stats()
	if st.Misses != 3 || st.Entries != 3 {
		t.Fatalf("after Warm: %+v, want 3 misses / 3 entries", st)
	}
	fresh.Lookup(eager, 0, "transaction")
	fresh.LookupPrefix(eager, 0, "tr")
	if st := fresh.Stats(); st.Hits != 2 {
		t.Fatalf("warmed lookups missed: %+v", st)
	}

	// Unknown key kinds and nil caches are ignored.
	fresh.Warm(eager, 0, []string{"?junk", ""})
	var nilCache *MatchCache
	nilCache.Warm(eager, 0, keys)
	if nilCache.HotKeys(5) != nil {
		t.Error("nil cache HotKeys != nil")
	}
}

func equalNodes(a, b []graph.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalTables(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
