package xmlshred

import (
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

const bibXML = `<?xml version="1.0"?>
<bibliography>
  <paper year="1998">
    <title>Mining Surprising Patterns</title>
    <author>Soumen Chakrabarti</author>
    <author>Sunita Sarawagi</author>
    <author>Byron Dom</author>
  </paper>
  <paper year="1981">
    <title>The Transaction Concept</title>
    <author>Jim Gray</author>
  </paper>
</bibliography>`

func TestLoadShape(t *testing.T) {
	db := sqldb.NewDatabase()
	n, err := Load(db, strings.NewReader(bibXML), "bib")
	if err != nil {
		t.Fatal(err)
	}
	// bibliography + 2 papers + 2 titles + 4 authors = 9 elements.
	if n != 9 {
		t.Errorf("loaded %d elements, want 9", n)
	}
	if got := db.Table(ElementTable).Len(); got != 9 {
		t.Errorf("element rows = %d", got)
	}
	if got := db.Table(AttributeTable).Len(); got != 2 {
		t.Errorf("attribute rows = %d (year attrs)", got)
	}
}

func TestLoadParentLinks(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader(bibXML), "bib"); err != nil {
		t.Fatal(err)
	}
	el := db.Table(ElementTable)
	// Exactly one root (NULL parent).
	roots := 0
	el.Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
		if row[4].IsNull() {
			roots++
			if row[2].S != "bibliography" {
				t.Errorf("root tag = %q", row[2].S)
			}
		}
		return true
	})
	if roots != 1 {
		t.Errorf("roots = %d", roots)
	}
	// Every non-root parent exists (FKs enforced at insert already).
}

func TestLoadTextContent(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader(bibXML), "bib"); err != nil {
		t.Fatal(err)
	}
	found := false
	db.Table(ElementTable).Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
		if row[2].S == "author" && row[3].S == "Sunita Sarawagi" {
			found = true
		}
		return true
	})
	if !found {
		t.Error("author text content missing")
	}
}

func TestMultipleDocuments(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader(bibXML), "bib1"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(db, strings.NewReader("<doc><x>hello</x></doc>"), "bib2"); err != nil {
		t.Fatal(err)
	}
	// Element ids must not collide: PK enforcement would have failed, but
	// assert the count.
	if got := db.Table(ElementTable).Len(); got != 11 {
		t.Errorf("elements = %d", got)
	}
}

func TestLoadMalformed(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader("<a><b></a>"), "bad"); err == nil {
		t.Error("mismatched tags should fail")
	}
}

// TestKeywordSearchOverXML is the point of the exercise: BANKS answers a
// keyword query over the shredded document with a connection tree through
// containment edges — two author names connect at their paper element.
func TestKeywordSearchOverXML(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader(bibXML), "bib"); err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	s := core.NewSearcher(g, ix)
	answers, err := s.Search([]string{"soumen", "sunita"}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no answers over XML")
	}
	top := answers[0]
	// The information node should be the shared <paper> element.
	rootRow := db.Table(ElementTable).Row(g.RIDOf(top.Root))
	if rootRow == nil || rootRow[2].S != "paper" {
		t.Errorf("root tag = %v, want paper\n%s", rootRow, top.Describe(g))
	}
}

// TestAttributeSearchOverXML: attribute values are searchable and connect
// to their element through the attribute relation.
func TestAttributeSearchOverXML(t *testing.T) {
	db := sqldb.NewDatabase()
	if _, err := Load(db, strings.NewReader(bibXML), "bib"); err != nil {
		t.Fatal(err)
	}
	g, _ := graph.Build(db, nil)
	ix, _ := index.Build(db, g)
	s := core.NewSearcher(g, ix)
	// "1981 gray": the year attribute of the second paper + its author.
	o := core.DefaultOptions()
	o.ExcludedRootTables = []string{AttributeTable}
	answers, err := s.Search([]string{"1981", "gray"}, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) == 0 {
		t.Fatal("no attribute answers")
	}
	rootRow := db.Table(ElementTable).Row(g.RIDOf(answers[0].Root))
	if rootRow == nil || rootRow[2].S != "paper" {
		t.Errorf("attribute query root = %v", rootRow)
	}
}

func TestEnsureSchemaIdempotent(t *testing.T) {
	db := sqldb.NewDatabase()
	if err := EnsureSchema(db); err != nil {
		t.Fatal(err)
	}
	if err := EnsureSchema(db); err != nil {
		t.Fatal(err)
	}
}
