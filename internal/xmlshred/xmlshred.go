// Package xmlshred implements the XML support Section 7 of the paper
// describes as ongoing work: "Since edges in our model can have attributes
// such as type and weight, we can model containment (as in DataSpot and in
// nested XML) simply as edges of a new type."
//
// XML documents are shredded into two relations — element (with a
// containment foreign key to its parent element) and attribute (with a
// foreign key to its element) — after which the ordinary BANKS machinery
// indexes and searches them: a keyword query over XML returns connection
// trees through the document structure.
package xmlshred

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
)

// ElementTable and AttributeTable are the shredded relation names.
const (
	ElementTable   = "xml_element"
	AttributeTable = "xml_attribute"
)

// ContainmentWeight is the edge weight of parent-child containment edges.
// The paper treats containment as just another link type; 1 keeps nested
// elements as proximate as foreign-key neighbours.
const ContainmentWeight = 1

// Schema returns the two shredded relations.
func Schema() []*sqldb.TableSchema {
	return []*sqldb.TableSchema{
		{
			Name: ElementTable,
			Columns: []sqldb.Column{
				{Name: "eid", Type: sqldb.TypeInt, NotNull: true},
				{Name: "doc", Type: sqldb.TypeText},
				{Name: "tag", Type: sqldb.TypeText},
				{Name: "content", Type: sqldb.TypeText},
				{Name: "parent", Type: sqldb.TypeInt},
			},
			PrimaryKey: []string{"eid"},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "parent", RefTable: ElementTable, Weight: ContainmentWeight},
			},
		},
		{
			Name: AttributeTable,
			Columns: []sqldb.Column{
				{Name: "elem", Type: sqldb.TypeInt, NotNull: true},
				{Name: "name", Type: sqldb.TypeText},
				{Name: "value", Type: sqldb.TypeText},
			},
			ForeignKeys: []sqldb.ForeignKey{
				{Column: "elem", RefTable: ElementTable, Weight: ContainmentWeight},
			},
		},
	}
}

// EnsureSchema creates the shredded relations if they do not exist yet.
func EnsureSchema(db *sqldb.Database) error {
	for _, s := range Schema() {
		if db.Table(s.Name) != nil {
			continue
		}
		if _, err := db.CreateTable(s); err != nil {
			return err
		}
	}
	return nil
}

// Load parses one XML document and shreds it into db under the given
// document name. It returns the number of elements loaded. Element ids
// continue from the current maximum, so multiple documents coexist.
func Load(db *sqldb.Database, r io.Reader, docName string) (int, error) {
	if err := EnsureSchema(db); err != nil {
		return 0, err
	}
	// Find the next free element id.
	nextID := int64(1)
	db.Table(ElementTable).Scan(func(_ sqldb.RID, row []sqldb.Value) bool {
		if row[0].I >= nextID {
			nextID = row[0].I + 1
		}
		return true
	})

	dec := xml.NewDecoder(r)
	type frame struct {
		eid  int64
		text strings.Builder
		rid  sqldb.RID
	}
	var stack []*frame
	loaded := 0
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return loaded, fmt.Errorf("xmlshred: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			eid := nextID
			nextID++
			parent := sqldb.Null()
			if len(stack) > 0 {
				parent = sqldb.Int(stack[len(stack)-1].eid)
			}
			rid, err := db.Insert(ElementTable, []sqldb.Value{
				sqldb.Int(eid), sqldb.Text(docName), sqldb.Text(t.Name.Local),
				sqldb.Null(), parent,
			})
			if err != nil {
				return loaded, err
			}
			loaded++
			for _, a := range t.Attr {
				if _, err := db.Insert(AttributeTable, []sqldb.Value{
					sqldb.Int(eid), sqldb.Text(a.Name.Local), sqldb.Text(a.Value),
				}); err != nil {
					return loaded, err
				}
			}
			stack = append(stack, &frame{eid: eid, rid: rid})
		case xml.CharData:
			if len(stack) > 0 {
				s := strings.TrimSpace(string(t))
				if s != "" {
					f := stack[len(stack)-1]
					if f.text.Len() > 0 {
						f.text.WriteByte(' ')
					}
					f.text.WriteString(s)
				}
			}
		case xml.EndElement:
			if len(stack) == 0 {
				return loaded, fmt.Errorf("xmlshred: unbalanced end element %s", t.Name.Local)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f.text.Len() > 0 {
				if err := db.Update(ElementTable, f.rid, map[string]sqldb.Value{
					"content": sqldb.Text(f.text.String()),
				}); err != nil {
					return loaded, err
				}
			}
		}
	}
	if len(stack) != 0 {
		return loaded, fmt.Errorf("xmlshred: %d unclosed element(s)", len(stack))
	}
	return loaded, nil
}
