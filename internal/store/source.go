package store

import "fmt"

// viewer is the optional byte-source extension behind the zero-copy open
// path: ViewAt returns a stable read-only sub-slice of the source covering
// [off, off+n), or ok=false when it cannot (the store then falls back to
// ReadAt copies). Views must stay valid until the store is torn down —
// graph and index structures alias them directly.
type viewer interface {
	ViewAt(off, n int64) ([]byte, bool)
}

// Mem is an in-memory store image served zero-copy: OpenReaderAt over a
// Mem aliases segments straight out of the buffer instead of copying them.
// The caller must not mutate the buffer while the store is open.
type Mem []byte

func (m Mem) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m)) {
		return 0, fmt.Errorf("store: read at %d outside buffer of %d bytes", off, len(m))
	}
	n := copy(p, m[off:])
	if n < len(p) {
		return n, fmt.Errorf("store: read [%d, %d) overruns buffer of %d bytes", off, off+int64(len(p)), len(m))
	}
	return n, nil
}

func (m Mem) ViewAt(off, n int64) ([]byte, bool) {
	if off < 0 || n < 0 || off+n > int64(len(m)) {
		return nil, false
	}
	return m[off : off+n : off+n], true
}
