package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Options tune an opened store's serving mode.
type Options struct {
	// BudgetBytes caps the resident bytes of lazily-loaded posting blocks
	// (decoded match sets), evicted LRU — the EMBANKS memory-bound serving
	// mode. 0 keeps every touched block resident (no bound); negative
	// disables block caching entirely (every lookup re-reads its block).
	// Structural segments (arcs, node metadata, term dictionary) are
	// loaded at most once each and are reported, not evicted; see
	// Stats.StructuralBytes.
	BudgetBytes int64
}

// Store is an opened disk-resident engine. Graph and Index return lazy
// views that fault their segments in on first touch; all methods are safe
// for concurrent use. Close releases the underlying file — only after all
// queries against the store's engine have finished.
type Store struct {
	r      io.ReaderAt
	closer io.Closer
	size   int64
	segs   map[kind]dirEntry
	opts   Options

	g  *graph.Graph
	ix *index.Index

	blocksMu sync.Mutex
	blocks   []blockRef // per-term postings refs, set when the dict loads
	cache    *blockCache

	structural atomic.Int64 // bytes of structural segments made resident
	faulted    atomic.Int64 // cumulative bytes ever faulted from disk
	hits       atomic.Int64
	misses     atomic.Int64

	errMu sync.Mutex
	err   error
}

// blockRef locates one term's postings block inside the postings segment.
type blockRef struct {
	off, length uint64
	crc         uint32
	count       int
}

// Open opens the store file at path. Work is directory-read plus
// header/footer/checksum verification — segments stay on disk until a
// query touches them, which is what makes cold open rebuild-free.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	s, err := OpenReaderAt(f, fi.Size(), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// OpenReaderAt is Open over any random-access byte source (an os.File, a
// bytes.Reader over an in-memory snapshot, an mmap). size is the total
// store length in bytes.
func OpenReaderAt(r io.ReaderAt, size int64, opts Options) (*Store, error) {
	s := &Store{r: r, size: size, opts: opts, cache: newBlockCache(opts.BudgetBytes)}
	if err := s.readLayout(); err != nil {
		return nil, err
	}
	metaSeg, err := s.readSegment(kindGraphMeta)
	if err != nil {
		return nil, err
	}
	g, err := graph.OpenLazy(metaSeg, s)
	if err != nil {
		return nil, err
	}
	s.g = g
	s.ix = index.OpenLazy(g.NumNodes(), s)
	return s, nil
}

// readLayout verifies the header, footer and directory and indexes the
// segments.
func (s *Store) readLayout() error {
	if s.size < headerSize+footerSize {
		return fmt.Errorf("store: file is %d bytes; not a BANKS store", s.size)
	}
	var hdr [headerSize]byte
	if _, err := s.r.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return fmt.Errorf("store: not a BANKS store (bad magic %q)", hdr[:8])
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != Version {
		return fmt.Errorf("store: unsupported store version %d (want %d)", v, Version)
	}
	var foot [footerSize]byte
	if _, err := s.r.ReadAt(foot[:], s.size-footerSize); err != nil {
		return fmt.Errorf("store: reading footer: %w", err)
	}
	if string(foot[20:]) != footerMagic {
		return fmt.Errorf("store: truncated or torn store (bad footer magic %q)", foot[20:])
	}
	dirOff := binary.BigEndian.Uint64(foot[0:])
	dirLen := binary.BigEndian.Uint64(foot[8:])
	dirCRC := binary.BigEndian.Uint32(foot[16:])
	if dirOff < headerSize || dirLen > uint64(s.size) || dirOff+dirLen != uint64(s.size-footerSize) {
		return fmt.Errorf("store: directory [%d, %d) does not fit the file", dirOff, dirOff+dirLen)
	}
	dir := make([]byte, dirLen)
	if _, err := s.r.ReadAt(dir, int64(dirOff)); err != nil {
		return fmt.Errorf("store: reading directory: %w", err)
	}
	if checksum(dir) != dirCRC {
		return errors.New("store: directory checksum mismatch")
	}
	entries, err := decodeDirectory(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = make(map[kind]dirEntry, len(entries))
	for _, e := range entries {
		if e.off < headerSize || e.length > uint64(s.size) || e.off+e.length > dirOff {
			return fmt.Errorf("store: %s segment [%d, %d) overruns the directory", e.kind, e.off, e.off+e.length)
		}
		if _, dup := s.segs[e.kind]; dup {
			return fmt.Errorf("store: duplicate %s segment", e.kind)
		}
		s.segs[e.kind] = e
	}
	for _, k := range requiredKinds {
		if _, ok := s.segs[k]; !ok {
			return fmt.Errorf("store: missing %s segment", k)
		}
	}
	return nil
}

// readSegment fetches and checksums one whole segment.
func (s *Store) readSegment(k kind) ([]byte, error) {
	e, ok := s.segs[k]
	if !ok {
		return nil, fmt.Errorf("store: missing %s segment", k)
	}
	data := make([]byte, e.length)
	if _, err := s.r.ReadAt(data, int64(e.off)); err != nil {
		return nil, fmt.Errorf("store: reading %s segment: %w", k, err)
	}
	if checksum(data) != e.crc {
		return nil, fmt.Errorf("store: %s segment checksum mismatch", k)
	}
	return data, nil
}

// EngineSource is the unified lazy-load contract a store serves: the
// graph's segment fetches and the index's dictionary/postings fetches.
// Store is the canonical implementation; graph.OpenLazy and index.OpenLazy
// each consume their half.
type EngineSource interface {
	graph.SegmentSource
	index.LazySource
}

var _ EngineSource = (*Store)(nil)

// Graph returns the lazily-loading data graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// Index returns the lazily-loading keyword index.
func (s *Store) Index() *index.Index { return s.ix }

// WALSeq returns the last WAL batch sequence folded into the store, or 0
// when the store predates (or never had) a WAL.
func (s *Store) WALSeq() (uint64, error) {
	if _, ok := s.segs[kindWALSeq]; !ok {
		return 0, nil
	}
	data, err := s.readSegment(kindWALSeq)
	if err != nil {
		return 0, err
	}
	if len(data) != 8 {
		return 0, fmt.Errorf("store: WAL sequence segment is %d bytes, want 8", len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}

// Close releases the underlying file (a no-op for in-memory stores).
func (s *Store) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// Err reports the first I/O, checksum or decode failure hit by any lazy
// load since Open — the graph's, the index's or the store's own. Lazy
// reads degrade to empty results on failure, so callers that must fail
// loudly (banks.System does, after every query) check Err at their
// operation boundary.
func (s *Store) Err() error {
	s.errMu.Lock()
	err := s.err
	s.errMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.g.LazyErr(); err != nil {
		return err
	}
	return s.ix.LazyErr()
}

func (s *Store) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// WarmKeys returns the match-cache warmup keys recorded at save time
// (MatchCache.HotKeys order), or nil when the segment is absent.
func (s *Store) WarmKeys() ([]string, error) {
	if _, ok := s.segs[kindWarmTerms]; !ok {
		return nil, nil
	}
	data, err := s.readSegment(kindWarmTerms)
	if err != nil {
		return nil, err
	}
	d := cursor{buf: data}
	n := d.uvarint()
	if n > maxWarmKeys {
		return nil, fmt.Errorf("store: warm segment claims %d keys", n)
	}
	keys := make([]string, 0, min(n, 1024))
	for i := uint64(0); i < n; i++ {
		keys = append(keys, d.str())
	}
	if d.err != nil {
		return nil, fmt.Errorf("store: warm segment: %w", d.err)
	}
	return keys, nil
}

const maxWarmKeys = 1 << 20

// ArcsSegment implements graph.SegmentSource.
func (s *Store) ArcsSegment() ([]byte, error) {
	data, err := s.readSegment(kindGraphArcs)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	s.structural.Add(int64(len(data)))
	s.faulted.Add(int64(len(data)))
	return data, nil
}

// NodeMetaSegment implements graph.SegmentSource.
func (s *Store) NodeMetaSegment() ([]byte, error) {
	data, err := s.readSegment(kindNodeMeta)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	s.structural.Add(int64(len(data)))
	s.faulted.Add(int64(len(data)))
	return data, nil
}

// Dict implements index.LazySource: it parses the term dictionary segment
// into the index-facing LazyDict and the store-private block refs.
func (s *Store) Dict() (*index.LazyDict, error) {
	data, err := s.readSegment(kindTermDict)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	postingsLen := s.segs[kindPostings].length
	d := cursor{buf: data}
	nodes := d.uvarint()
	posts := d.uvarint()
	nterms := d.uvarint()
	if d.err == nil && nodes != uint64(s.g.NumNodes()) {
		d.err = fmt.Errorf("dictionary built for %d nodes, graph has %d", nodes, s.g.NumNodes())
	}
	if d.err == nil && (nterms > math.MaxInt32 || posts > math.MaxInt32) {
		d.err = fmt.Errorf("dictionary claims %d terms, %d postings", nterms, posts)
	}
	dict := &index.LazyDict{Posts: int(posts)}
	var blocks []blockRef
	for i := uint64(0); i < nterms && d.err == nil; i++ {
		tok := d.str()
		count := d.uvarint()
		off := d.uvarint()
		ln := d.uvarint()
		crc := d.u32()
		if d.err != nil {
			break
		}
		if count > posts {
			d.err = fmt.Errorf("term %q claims %d of %d postings", tok, count, posts)
			break
		}
		if off+ln < off || off+ln > postingsLen {
			d.err = fmt.Errorf("term %q block [%d, %d) overruns the postings segment (%d bytes)", tok, off, off+ln, postingsLen)
			break
		}
		dict.Toks = append(dict.Toks, tok)
		dict.Counts = append(dict.Counts, int(count))
		blocks = append(blocks, blockRef{off: off, length: ln, crc: crc, count: int(count)})
	}
	nmeta := d.uvarint()
	if d.err == nil && nmeta > math.MaxInt32 {
		d.err = fmt.Errorf("dictionary claims %d metadata terms", nmeta)
	}
	dict.Meta = make(map[string][]int32, min(nmeta, 1024))
	for i := uint64(0); i < nmeta && d.err == nil; i++ {
		tok := d.str()
		nt := d.uvarint()
		if nt > uint64(len(data)) {
			d.err = fmt.Errorf("metadata term %q claims %d tables", tok, nt)
			break
		}
		ts := make([]int32, 0, min(nt, 1024))
		for j := uint64(0); j < nt; j++ {
			v := d.uvarint()
			if v > math.MaxInt32 {
				d.err = fmt.Errorf("metadata term %q references table %d", tok, v)
				break
			}
			ts = append(ts, int32(v))
		}
		dict.Meta[tok] = ts
	}
	if d.err != nil {
		err := fmt.Errorf("store: term dictionary: %w", d.err)
		s.setErr(err)
		return nil, err
	}
	s.structural.Add(int64(len(data)))
	s.faulted.Add(int64(len(data)))
	s.blocksMu.Lock()
	s.blocks = blocks
	s.blocksMu.Unlock()
	return dict, nil
}

// Postings implements index.LazySource: resolve dictionary entry i through
// the block cache, reading and checksumming exactly one posting block on a
// miss.
func (s *Store) Postings(i int, tok string) ([]graph.NodeID, error) {
	if ns, ok := s.cache.get(i); ok {
		s.hits.Add(1)
		return ns, nil
	}
	s.misses.Add(1)
	return s.readPostings(i, tok, true)
}

// PostingsSequential implements index's sequential-scan source: the same
// block read, but bypassing cache admission (and the hit/miss counters)
// so a full-index sweep — WriteTo, re-Save — streams through without
// pinning every decoded block resident.
func (s *Store) PostingsSequential(i int, tok string) ([]graph.NodeID, error) {
	if ns, ok := s.cache.get(i); ok {
		return ns, nil
	}
	return s.readPostings(i, tok, false)
}

// readPostings fetches, checksums and decodes dictionary entry i's block,
// optionally admitting the result to the block cache.
func (s *Store) readPostings(i int, tok string, admit bool) ([]graph.NodeID, error) {
	s.blocksMu.Lock()
	var ref blockRef
	ok := i >= 0 && i < len(s.blocks)
	if ok {
		ref = s.blocks[i]
	}
	s.blocksMu.Unlock()
	if !ok {
		err := fmt.Errorf("store: postings request %d outside the dictionary", i)
		s.setErr(err)
		return nil, err
	}
	block := make([]byte, ref.length)
	e := s.segs[kindPostings]
	if _, err := s.r.ReadAt(block, int64(e.off+ref.off)); err != nil {
		err = fmt.Errorf("store: reading postings block for %q: %w", tok, err)
		s.setErr(err)
		return nil, err
	}
	if checksum(block) != ref.crc {
		err := fmt.Errorf("store: postings block for %q fails its checksum", tok)
		s.setErr(err)
		return nil, err
	}
	ns, err := decodePostingsBlock(block, ref.count, s.g.NumNodes())
	if err != nil {
		err = fmt.Errorf("store: postings block for %q: %w", tok, err)
		s.setErr(err)
		return nil, err
	}
	s.faulted.Add(int64(ref.length))
	if admit {
		s.cache.put(i, ns)
	}
	return ns, nil
}

// decodePostingsBlock decodes one delta-varint posting block, validating
// node ids against the graph. Each posting is at least one byte, so a
// count exceeding the block length is corruption — checked before the
// count is trusted for allocation.
func decodePostingsBlock(block []byte, count, numNodes int) ([]graph.NodeID, error) {
	if count > len(block) {
		return nil, fmt.Errorf("%d postings cannot fit in a %d-byte block", count, len(block))
	}
	ns := make([]graph.NodeID, 0, count)
	prev := uint64(0)
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(block)
		if n <= 0 {
			return nil, fmt.Errorf("truncated at posting %d of %d", i, count)
		}
		block = block[n:]
		prev += d
		if prev >= uint64(numNodes) {
			return nil, fmt.Errorf("posting %d references node %d of %d", i, prev, numNodes)
		}
		ns = append(ns, graph.NodeID(prev))
	}
	if len(block) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %d postings", len(block), count)
	}
	return ns, nil
}

// Verify reads every segment end to end and checks all checksums — the
// eager integrity pass lazy opening deliberately skips. It does not
// populate caches.
func (s *Store) Verify() error {
	for k := range s.segs {
		if _, err := s.readSegment(k); err != nil {
			return err
		}
	}
	return nil
}

// Stats is a point-in-time summary of an opened store's residency.
type Stats struct {
	// StructuralBytes counts bytes of structural segments (arcs, node
	// metadata, term dictionary) made resident so far; they load at most
	// once each and are never evicted.
	StructuralBytes int64
	// BlockBytes / BlockEntries describe the decoded posting-block cache,
	// the part BudgetBytes bounds.
	BlockBytes   int64
	BlockEntries int
	// BudgetBytes echoes Options.BudgetBytes.
	BudgetBytes int64
	// Hits / Misses count posting-block cache probes.
	Hits, Misses int64
	// FaultedBytes counts cumulative bytes ever faulted from disk
	// (structural segments plus every posting-block read, including
	// cache-miss re-reads); unlike residency it never decreases.
	FaultedBytes int64
}

// Stats returns current residency counters.
func (s *Store) Stats() Stats {
	st := Stats{
		StructuralBytes: s.structural.Load(),
		BudgetBytes:     s.opts.BudgetBytes,
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		FaultedBytes:    s.faulted.Load(),
	}
	st.BlockBytes, st.BlockEntries = s.cache.usage()
	return st
}

// FaultedBytes returns the cumulative bytes ever faulted from disk — the
// monotone meter per-query byte budgets are charged against (see
// core.Searcher.WithFaultMeter).
func (s *Store) FaultedBytes() int64 { return s.faulted.Load() }

// ResidentBytes returns the total lazily-loaded bytes currently resident.
func (s *Store) ResidentBytes() int64 {
	b, _ := s.cache.usage()
	return s.structural.Load() + b
}

// blockCache is the LRU over decoded posting blocks. max == 0 means
// unbounded; max < 0 disables caching.
type blockCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	items map[int]*list.Element
	lru   list.List
}

// blockOverhead approximates the fixed per-entry cost charged on top of
// the decoded postings payload.
const blockOverhead = 64

type blockCacheEntry struct {
	key  int
	ns   []graph.NodeID
	size int64
}

func newBlockCache(max int64) *blockCache {
	c := &blockCache{max: max}
	if max >= 0 {
		c.items = make(map[int]*list.Element)
	}
	return c
}

func (c *blockCache) get(key int) ([]graph.NodeID, bool) {
	if c.max < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*blockCacheEntry).ns, true
}

func (c *blockCache) put(key int, ns []graph.NodeID) {
	if c.max < 0 {
		return
	}
	size := 4*int64(len(ns)) + blockOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && size > c.max {
		return // larger than the whole budget: serve uncached
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*blockCacheEntry)
		c.bytes += size - e.size
		e.ns, e.size = ns, size
		c.lru.MoveToFront(el)
	} else {
		c.items[key] = c.lru.PushFront(&blockCacheEntry{key: key, ns: ns, size: size})
		c.bytes += size
	}
	if c.max == 0 {
		return
	}
	for c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := c.lru.Remove(back).(*blockCacheEntry)
		delete(c.items, e.key)
		c.bytes -= e.size
	}
}

func (c *blockCache) usage() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, len(c.items)
}

// cursor is a varint decoder with sticky errors, shared by the dictionary
// and warm-segment parsers.
type cursor struct {
	buf []byte
	err error
}

func (d *cursor) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *cursor) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 || n > uint64(len(d.buf)) {
		d.err = errors.New("string too long")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *cursor) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.err = errors.New("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}
