package store

import (
	"container/list"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Options tune an opened store's serving mode.
type Options struct {
	// BudgetBytes caps the resident bytes of lazily-loaded posting blocks
	// (encoded block bytes), evicted LRU — the EMBANKS memory-bound serving
	// mode. 0 keeps every touched block resident (no bound); negative
	// disables block caching entirely (every lookup re-reads its block).
	// Structural segments (arcs, node metadata, term dictionary) are
	// loaded at most once each and are reported, not evicted; see
	// Stats.StructuralBytes. A zero-copy store (memory-mapped or opened
	// over Mem) ignores the budget: blocks are served as views of the
	// mapping, whose residency the kernel already bounds.
	BudgetBytes int64
}

// Store is an opened disk-resident engine. Graph and Index return lazy
// views that fault their segments in on first touch; all methods are safe
// for concurrent use.
//
// When the byte source supports zero-copy views (Open memory-maps the file
// on Linux; Mem serves an in-memory image), every segment is served as a
// sub-slice of the mapping — checksummed on first touch, then trusted —
// and the graph's CSR arrays alias the mapping directly. Because queries
// then read mapped memory, the mapping must outlive them: callers that
// race queries against Close hold a reference via Acquire/Release, and
// Close blocks until the last reference is released before unmapping.
type Store struct {
	r      io.ReaderAt
	v      viewer // non-nil when r serves stable zero-copy views
	closer io.Closer
	size   int64
	segs   map[kind]dirEntry
	opts   Options

	g  *graph.Graph
	ix *index.Index

	// states memoizes the structural segments (arcs, node metadata, term
	// dictionary): fetched, checksummed and accounted exactly once each,
	// however many goroutines race the first touch.
	states map[kind]*segState

	blocksMu      sync.Mutex
	blocks        []blockRef // per-term postings refs, set when the dict loads
	blockVerified []atomic.Uint32
	cache         *blockCache

	// refs counts the open handle (1) plus outstanding Acquire holders;
	// teardown (unmap + close) runs when it reaches 0.
	refs     atomic.Int64
	closed   atomic.Bool
	done     chan struct{}
	closeErr error

	structural atomic.Int64 // heap-copied structural segment bytes
	mapped     atomic.Int64 // structural segment bytes served as views (not heap)
	faulted    atomic.Int64 // cumulative bytes ever faulted from disk
	hits       atomic.Int64
	misses     atomic.Int64

	errMu sync.Mutex
	err   error
}

// segState is the once-only load of one structural segment.
type segState struct {
	once sync.Once
	data []byte
	err  error
}

// blockRef locates one term's postings block inside the postings segment.
type blockRef struct {
	off, length uint64
	crc         uint32
	count       int
}

// Open opens the store file at path. Work is directory-read plus
// header/footer/checksum verification — segments stay on disk until a
// query touches them, which is what makes cold open rebuild-free. On
// Linux the file is memory-mapped read-only and served zero-copy; where
// mapping is unavailable the store falls back to plain file reads.
func Open(path string, opts Options) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: %w", err)
	}
	if m, merr := mapFile(f, fi.Size()); merr == nil {
		f.Close() // the mapping holds the pages; the fd is no longer needed
		s, err := OpenReaderAt(m, fi.Size(), opts)
		if err != nil {
			m.Close()
			return nil, err
		}
		s.closer = m
		return s, nil
	}
	s, err := OpenReaderAt(f, fi.Size(), opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// OpenReaderAt is Open over any random-access byte source (an os.File, a
// bytes.Reader over an in-memory snapshot, a Mem, an mmap). size is the
// total store length in bytes. Sources that also implement the zero-copy
// view extension (Mem, the internal mmap source) are served without
// segment copies.
func OpenReaderAt(r io.ReaderAt, size int64, opts Options) (*Store, error) {
	s := &Store{r: r, size: size, opts: opts, cache: newBlockCache(opts.BudgetBytes), done: make(chan struct{})}
	s.v, _ = r.(viewer)
	s.refs.Store(1)
	if err := s.readLayout(); err != nil {
		return nil, err
	}
	s.states = map[kind]*segState{
		kindNodeMeta:  {},
		kindGraphArcs: {},
		kindTermDict:  {},
	}
	metaSeg, err := s.fetchSegment(kindGraphMeta)
	if err != nil {
		return nil, err
	}
	g, err := graph.OpenLazy(metaSeg, s)
	if err != nil {
		return nil, err
	}
	s.g = g
	s.ix = index.OpenLazy(g.NumNodes(), s)
	return s, nil
}

// readLayout verifies the header, footer and directory and indexes the
// segments. Inter-segment gaps (alignment padding) must be shorter than
// segAlign and zero-filled — every byte of the file is then either
// checksummed or pinned to zero, and re-serialization is byte-exact.
func (s *Store) readLayout() error {
	if s.size < headerSize+footerSize {
		return fmt.Errorf("store: file is %d bytes; not a BANKS store", s.size)
	}
	var hdr [headerSize]byte
	if _, err := s.r.ReadAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: reading header: %w", err)
	}
	if string(hdr[:8]) != Magic {
		return fmt.Errorf("store: not a BANKS store (bad magic %q)", hdr[:8])
	}
	if v := binary.BigEndian.Uint32(hdr[8:]); v != Version {
		return fmt.Errorf("store: unsupported store version %d (want %d)", v, Version)
	}
	var foot [footerSize]byte
	if _, err := s.r.ReadAt(foot[:], s.size-footerSize); err != nil {
		return fmt.Errorf("store: reading footer: %w", err)
	}
	if string(foot[20:]) != footerMagic {
		return fmt.Errorf("store: truncated or torn store (bad footer magic %q)", foot[20:])
	}
	dirOff := binary.BigEndian.Uint64(foot[0:])
	dirLen := binary.BigEndian.Uint64(foot[8:])
	dirCRC := binary.BigEndian.Uint32(foot[16:])
	if dirOff < headerSize || dirLen > uint64(s.size) || dirOff+dirLen != uint64(s.size-footerSize) {
		return fmt.Errorf("store: directory [%d, %d) does not fit the file", dirOff, dirOff+dirLen)
	}
	dir := make([]byte, dirLen)
	if _, err := s.r.ReadAt(dir, int64(dirOff)); err != nil {
		return fmt.Errorf("store: reading directory: %w", err)
	}
	if checksum(dir) != dirCRC {
		return errors.New("store: directory checksum mismatch")
	}
	entries, err := decodeDirectory(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.segs = make(map[kind]dirEntry, len(entries))
	spans := make([][2]uint64, 0, len(entries)+1)
	for _, e := range entries {
		if e.off < headerSize || e.length > uint64(s.size) || e.off+e.length > dirOff {
			return fmt.Errorf("store: %s segment [%d, %d) overruns the directory", e.kind, e.off, e.off+e.length)
		}
		if _, dup := s.segs[e.kind]; dup {
			return fmt.Errorf("store: duplicate %s segment", e.kind)
		}
		s.segs[e.kind] = e
		spans = append(spans, [2]uint64{e.off, e.off + e.length})
	}
	for _, k := range requiredKinds {
		if _, ok := s.segs[k]; !ok {
			return fmt.Errorf("store: missing %s segment", k)
		}
	}
	spans = append(spans, [2]uint64{dirOff, dirOff + dirLen})
	sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
	at := uint64(headerSize)
	for _, sp := range spans {
		if sp[0] < at {
			return fmt.Errorf("store: segments overlap at offset %d", sp[0])
		}
		if gap := sp[0] - at; gap > 0 {
			if gap >= segAlign {
				return fmt.Errorf("store: %d-byte gap before offset %d", gap, sp[0])
			}
			var pad [segAlign]byte
			if _, err := s.r.ReadAt(pad[:gap], int64(at)); err != nil {
				return fmt.Errorf("store: reading segment padding: %w", err)
			}
			for _, b := range pad[:gap] {
				if b != 0 {
					return fmt.Errorf("store: nonzero padding at offset %d", at)
				}
			}
		}
		at = sp[1]
	}
	return nil
}

// viewAt returns a zero-copy view of [off, off+n), or nil when the byte
// source cannot serve one.
func (s *Store) viewAt(off, n int64) []byte {
	if s.v == nil {
		return nil
	}
	b, ok := s.v.ViewAt(off, n)
	if !ok {
		return nil
	}
	return b
}

// fetchSegment fetches and checksums one whole segment — as a view when
// the source supports it, as a heap copy otherwise. No memoization, no
// accounting; segmentBytes adds both for the structural kinds.
func (s *Store) fetchSegment(k kind) ([]byte, error) {
	e, ok := s.segs[k]
	if !ok {
		return nil, fmt.Errorf("store: missing %s segment", k)
	}
	if b := s.viewAt(int64(e.off), int64(e.length)); b != nil {
		if checksum(b) != e.crc {
			return nil, fmt.Errorf("store: %s segment checksum mismatch", k)
		}
		return b, nil
	}
	data := make([]byte, e.length)
	if _, err := s.r.ReadAt(data, int64(e.off)); err != nil {
		return nil, fmt.Errorf("store: reading %s segment: %w", k, err)
	}
	if checksum(data) != e.crc {
		return nil, fmt.Errorf("store: %s segment checksum mismatch", k)
	}
	return data, nil
}

// segmentBytes returns the verified bytes of a structural segment,
// fetching (and accounting) exactly once however many goroutines race the
// first touch: a zero-copy view counts toward MappedBytes, a heap copy
// toward StructuralBytes, and either counts toward FaultedBytes once.
func (s *Store) segmentBytes(k kind) ([]byte, error) {
	st, ok := s.states[k]
	if !ok {
		return s.fetchSegment(k)
	}
	st.once.Do(func() {
		e := s.segs[k]
		if b := s.viewAt(int64(e.off), int64(e.length)); b != nil {
			if checksum(b) != e.crc {
				st.err = fmt.Errorf("store: %s segment checksum mismatch", k)
				return
			}
			st.data = b
			s.mapped.Add(int64(e.length))
			s.faulted.Add(int64(e.length))
			return
		}
		data, err := s.fetchSegment(k)
		if err != nil {
			st.err = err
			return
		}
		st.data = data
		s.structural.Add(int64(len(data)))
		s.faulted.Add(int64(len(data)))
	})
	return st.data, st.err
}

// EngineSource is the unified lazy-load contract a store serves: the
// graph's segment fetches and the index's dictionary/postings fetches.
// Store is the canonical implementation; graph.OpenLazy and index.OpenLazy
// each consume their half.
type EngineSource interface {
	graph.SegmentSource
	index.LazySource
}

var _ EngineSource = (*Store)(nil)

// Graph returns the lazily-loading data graph.
func (s *Store) Graph() *graph.Graph { return s.g }

// Index returns the lazily-loading keyword index.
func (s *Store) Index() *index.Index { return s.ix }

// WALSeq returns the last WAL batch sequence folded into the store, or 0
// when the store predates (or never had) a WAL.
func (s *Store) WALSeq() (uint64, error) {
	if _, ok := s.segs[kindWALSeq]; !ok {
		return 0, nil
	}
	data, err := s.fetchSegment(kindWALSeq)
	if err != nil {
		return 0, err
	}
	if len(data) != 8 {
		return 0, fmt.Errorf("store: WAL sequence segment is %d bytes, want 8", len(data))
	}
	return binary.BigEndian.Uint64(data), nil
}

// Acquire takes a reference that keeps the store's byte source alive (in
// particular, keeps the mapping mapped). It returns false once Close has
// begun and the store must no longer be read. Every Acquire must be paired
// with exactly one Release.
func (s *Store) Acquire() bool {
	for {
		n := s.refs.Load()
		if n <= 0 || s.closed.Load() {
			return false
		}
		if s.refs.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// Release drops a reference taken with Acquire; the last release after
// Close tears the byte source down.
func (s *Store) Release() {
	if s.refs.Add(-1) == 0 {
		s.teardown()
	}
}

// Close releases the store's open reference and waits for outstanding
// Acquire holders to drain, then unmaps/closes the byte source — so a
// query that acquired the store before Close never touches an unmapped
// region. Close is idempotent.
func (s *Store) Close() error {
	if !s.closed.Swap(true) {
		s.Release()
	}
	<-s.done
	return s.closeErr
}

func (s *Store) teardown() {
	if s.closer != nil {
		s.closeErr = s.closer.Close()
	}
	close(s.done)
}

// Mapped reports whether the store serves segments as zero-copy views
// (memory-mapped file or in-memory source) rather than heap copies.
func (s *Store) Mapped() bool { return s.v != nil }

// adviser is the residency-control extension of the mmap byte source.
type adviser interface {
	Prefault() error
	Mlock() error
}

// Prefault warms the entire store into the page cache up front — an
// madvise(WILLNEED) sweep plus a page-touch pass on a mapped store, a
// sequential read-through otherwise — so first queries pay no demand
// paging.
func (s *Store) Prefault() error {
	if a, ok := s.r.(adviser); ok {
		return a.Prefault()
	}
	buf := make([]byte, 1<<20)
	for off := int64(0); off < s.size; off += int64(len(buf)) {
		n := int64(len(buf))
		if rem := s.size - off; rem < n {
			n = rem
		}
		if _, err := s.r.ReadAt(buf[:n], off); err != nil {
			return fmt.Errorf("store: prefault read: %w", err)
		}
	}
	return nil
}

// Mlock pins the mapping in physical memory; it errors on stores that are
// not memory-mapped.
func (s *Store) Mlock() error {
	if a, ok := s.r.(adviser); ok {
		return a.Mlock()
	}
	return errors.New("store: Mlock requires a memory-mapped store")
}

// Err reports the first I/O, checksum or decode failure hit by any lazy
// load since Open — the graph's, the index's or the store's own. Lazy
// reads degrade to empty results on failure, so callers that must fail
// loudly (banks.System does, after every query) check Err at their
// operation boundary.
func (s *Store) Err() error {
	s.errMu.Lock()
	err := s.err
	s.errMu.Unlock()
	if err != nil {
		return err
	}
	if err := s.g.LazyErr(); err != nil {
		return err
	}
	return s.ix.LazyErr()
}

func (s *Store) setErr(err error) {
	s.errMu.Lock()
	defer s.errMu.Unlock()
	if s.err == nil {
		s.err = err
	}
}

// WarmKeys returns the match-cache warmup keys recorded at save time
// (MatchCache.HotKeys order), or nil when the segment is absent.
func (s *Store) WarmKeys() ([]string, error) {
	if _, ok := s.segs[kindWarmTerms]; !ok {
		return nil, nil
	}
	data, err := s.fetchSegment(kindWarmTerms)
	if err != nil {
		return nil, err
	}
	d := cursor{buf: data}
	n := d.uvarint()
	if n > maxWarmKeys {
		return nil, fmt.Errorf("store: warm segment claims %d keys", n)
	}
	keys := make([]string, 0, min(n, 1024))
	for i := uint64(0); i < n; i++ {
		keys = append(keys, d.str())
	}
	if d.err != nil {
		return nil, fmt.Errorf("store: warm segment: %w", d.err)
	}
	return keys, nil
}

const maxWarmKeys = 1 << 20

// TermStats returns the term-statistics sketch recorded at save time, or
// nil when the segment is absent. The payload is opaque to the store;
// internal/cluster owns the encoding. The returned bytes are a fresh or
// mapped copy — callers must not mutate them.
func (s *Store) TermStats() ([]byte, error) {
	if _, ok := s.segs[kindTermStats]; !ok {
		return nil, nil
	}
	return s.fetchSegment(kindTermStats)
}

// ArcsSegment implements graph.SegmentSource. On a zero-copy store the
// returned bytes are a view of the mapping, which the graph aliases its
// CSR arrays over — Dijkstra's neighbor scan then reads mapped memory
// directly.
func (s *Store) ArcsSegment() ([]byte, error) {
	data, err := s.segmentBytes(kindGraphArcs)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	return data, nil
}

// NodeMetaSegment implements graph.SegmentSource.
func (s *Store) NodeMetaSegment() ([]byte, error) {
	data, err := s.segmentBytes(kindNodeMeta)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	return data, nil
}

// Dict implements index.LazySource: it parses the term dictionary segment
// into the index-facing LazyDict and the store-private block refs.
func (s *Store) Dict() (*index.LazyDict, error) {
	data, err := s.segmentBytes(kindTermDict)
	if err != nil {
		s.setErr(err)
		return nil, err
	}
	postingsLen := s.segs[kindPostings].length
	d := cursor{buf: data}
	nodes := d.uvarint()
	posts := d.uvarint()
	nterms := d.uvarint()
	if d.err == nil && nodes != uint64(s.g.NumNodes()) {
		d.err = fmt.Errorf("dictionary built for %d nodes, graph has %d", nodes, s.g.NumNodes())
	}
	if d.err == nil && (nterms > math.MaxInt32 || posts > math.MaxInt32) {
		d.err = fmt.Errorf("dictionary claims %d terms, %d postings", nterms, posts)
	}
	dict := &index.LazyDict{Posts: int(posts)}
	// Pre-size from the declared term count, bounded by what the segment
	// could possibly hold (each entry is ≥ 8 encoded bytes) so a corrupt
	// header can't force a huge allocation.
	nalloc := min(nterms, uint64(len(data))/8)
	dict.Toks = make([]string, 0, nalloc)
	dict.Counts = make([]int, 0, nalloc)
	blocks := make([]blockRef, 0, nalloc)
	for i := uint64(0); i < nterms && d.err == nil; i++ {
		// Tokens alias the segment buffer (mapping view or the store's
		// one-shot heap copy — both immutable and store-lifetime, same
		// contract the CSR arrays already rely on).
		tok := d.strAlias()
		count := d.uvarint()
		off := d.uvarint()
		ln := d.uvarint()
		crc := d.u32()
		if d.err != nil {
			break
		}
		if count > posts {
			d.err = fmt.Errorf("term %q claims %d of %d postings", tok, count, posts)
			break
		}
		if off+ln < off || off+ln > postingsLen {
			d.err = fmt.Errorf("term %q block [%d, %d) overruns the postings segment (%d bytes)", tok, off, off+ln, postingsLen)
			break
		}
		dict.Toks = append(dict.Toks, tok)
		dict.Counts = append(dict.Counts, int(count))
		blocks = append(blocks, blockRef{off: off, length: ln, crc: crc, count: int(count)})
	}
	nmeta := d.uvarint()
	if d.err == nil && nmeta > math.MaxInt32 {
		d.err = fmt.Errorf("dictionary claims %d metadata terms", nmeta)
	}
	dict.Meta = make(map[string][]int32, min(nmeta, 1024))
	for i := uint64(0); i < nmeta && d.err == nil; i++ {
		tok := d.str()
		nt := d.uvarint()
		if nt > uint64(len(data)) {
			d.err = fmt.Errorf("metadata term %q claims %d tables", tok, nt)
			break
		}
		ts := make([]int32, 0, min(nt, 1024))
		for j := uint64(0); j < nt; j++ {
			v := d.uvarint()
			if v > math.MaxInt32 {
				d.err = fmt.Errorf("metadata term %q references table %d", tok, v)
				break
			}
			ts = append(ts, int32(v))
		}
		dict.Meta[tok] = ts
	}
	if d.err != nil {
		err := fmt.Errorf("store: term dictionary: %w", d.err)
		s.setErr(err)
		return nil, err
	}
	s.blocksMu.Lock()
	s.blocks = blocks
	s.blockVerified = make([]atomic.Uint32, (len(blocks)+31)/32)
	s.blocksMu.Unlock()
	return dict, nil
}

// blockRefFor resolves dictionary entry i's block ref.
func (s *Store) blockRefFor(i int) (blockRef, bool) {
	s.blocksMu.Lock()
	defer s.blocksMu.Unlock()
	if i < 0 || i >= len(s.blocks) {
		return blockRef{}, false
	}
	return s.blocks[i], true
}

// blockSeen reports whether block i already passed its checksum.
func (s *Store) blockSeen(i int) bool {
	return s.blockVerified[i>>5].Load()&(1<<(uint(i)&31)) != 0
}

// markBlockSeen records block i as verified; it reports whether this call
// was the first to do so (the winner accounts the faulted bytes, so
// concurrent first touches count a block at most once).
func (s *Store) markBlockSeen(i int) bool {
	w := &s.blockVerified[i>>5]
	bit := uint32(1) << (uint(i) & 31)
	for {
		old := w.Load()
		if old&bit != 0 {
			return false
		}
		if w.CompareAndSwap(old, old|bit) {
			return true
		}
	}
}

// Postings implements index.LazySource: resolve dictionary entry i into a
// fresh decoded posting list. On a zero-copy store the encoded block is a
// view of the mapping, checksummed on first touch and trusted after; on a
// copy store the encoded block lives in the budget-bounded LRU cache.
func (s *Store) Postings(i int, tok string) ([]graph.NodeID, error) {
	return s.postings(i, tok, nil, true)
}

// PostingsAppend is Postings decoding into dst (extended and returned) —
// the buffer-reuse path for callers that own their result, like prefix
// sweeps appending into one per-query buffer.
func (s *Store) PostingsAppend(i int, tok string, dst []graph.NodeID) ([]graph.NodeID, error) {
	return s.postings(i, tok, dst, true)
}

// PostingsSequential implements index's sequential-scan source: the same
// block read, but bypassing cache admission (and the hit/miss counters)
// so a full-index sweep — WriteTo, re-Save — streams through without
// pinning every block resident.
func (s *Store) PostingsSequential(i int, tok string) ([]graph.NodeID, error) {
	return s.postings(i, tok, nil, false)
}

// PostingsSequentialAppend is PostingsSequential into a reused buffer; a
// full sweep over the dictionary then decodes every block with a single
// allocation.
func (s *Store) PostingsSequentialAppend(i int, tok string, dst []graph.NodeID) ([]graph.NodeID, error) {
	return s.postings(i, tok, dst, false)
}

// postings is the shared block resolve: locate the ref, obtain verified
// encoded bytes (view, cache or disk read), decode appending to dst (nil
// allocates fresh). interactive selects cache admission and the hit/miss
// counters.
func (s *Store) postings(i int, tok string, dst []graph.NodeID, interactive bool) ([]graph.NodeID, error) {
	ref, ok := s.blockRefFor(i)
	if !ok {
		err := fmt.Errorf("store: postings request %d outside the dictionary", i)
		s.setErr(err)
		return nil, err
	}
	e := s.segs[kindPostings]
	if seg := s.viewAt(int64(e.off), int64(e.length)); seg != nil {
		block := seg[ref.off : ref.off+ref.length]
		if s.blockSeen(i) {
			if interactive {
				s.hits.Add(1)
			}
		} else {
			if checksum(block) != ref.crc {
				err := fmt.Errorf("store: postings block for %q fails its checksum", tok)
				s.setErr(err)
				return nil, err
			}
			if s.markBlockSeen(i) {
				s.faulted.Add(int64(ref.length))
				if interactive {
					s.misses.Add(1)
				}
			} else if interactive {
				s.hits.Add(1)
			}
		}
		return s.decodeBlock(block, ref, tok, dst)
	}
	if enc, ok := s.cache.get(i); ok {
		if interactive {
			s.hits.Add(1)
		}
		return s.decodeBlock(enc, ref, tok, dst)
	}
	if interactive {
		s.misses.Add(1)
	}
	block := make([]byte, ref.length)
	if _, err := s.r.ReadAt(block, int64(e.off+ref.off)); err != nil {
		err = fmt.Errorf("store: reading postings block for %q: %w", tok, err)
		s.setErr(err)
		return nil, err
	}
	if checksum(block) != ref.crc {
		err := fmt.Errorf("store: postings block for %q fails its checksum", tok)
		s.setErr(err)
		return nil, err
	}
	s.faulted.Add(int64(ref.length))
	ns, err := s.decodeBlock(block, ref, tok, dst)
	if err != nil {
		return nil, err
	}
	if interactive {
		s.cache.put(i, block)
	}
	return ns, nil
}

// decodeBlock decodes one verified encoded block, appending to dst (nil
// allocates a right-sized fresh slice).
func (s *Store) decodeBlock(block []byte, ref blockRef, tok string, dst []graph.NodeID) ([]graph.NodeID, error) {
	if dst == nil {
		dst = make([]graph.NodeID, 0, ref.count)
	}
	ns, err := appendPostingsBlock(dst, block, ref.count, s.g.NumNodes())
	if err != nil {
		err = fmt.Errorf("store: postings block for %q: %w", tok, err)
		s.setErr(err)
		return nil, err
	}
	return ns, nil
}

// appendPostingsBlock decodes one delta-varint posting block onto dst,
// validating node ids against the graph. Each posting is at least one
// byte, so a count exceeding the block length is corruption — checked
// before the count is trusted for allocation.
func appendPostingsBlock(dst []graph.NodeID, block []byte, count, numNodes int) ([]graph.NodeID, error) {
	if count > len(block) {
		return nil, fmt.Errorf("%d postings cannot fit in a %d-byte block", count, len(block))
	}
	prev := uint64(0)
	for i := 0; i < count; i++ {
		d, n := binary.Uvarint(block)
		if n <= 0 {
			return nil, fmt.Errorf("truncated at posting %d of %d", i, count)
		}
		block = block[n:]
		prev += d
		if prev >= uint64(numNodes) {
			return nil, fmt.Errorf("posting %d references node %d of %d", i, prev, numNodes)
		}
		dst = append(dst, graph.NodeID(prev))
	}
	if len(block) != 0 {
		return nil, fmt.Errorf("%d trailing bytes after %d postings", len(block), count)
	}
	return dst, nil
}

// decodePostingsBlock decodes one block into a fresh slice (tests use it).
func decodePostingsBlock(block []byte, count, numNodes int) ([]graph.NodeID, error) {
	return appendPostingsBlock(make([]graph.NodeID, 0, count), block, count, numNodes)
}

// Verify reads every segment end to end and checks all checksums — the
// eager integrity pass lazy opening deliberately skips. It does not
// populate caches or residency counters; on a mapped store it checksums
// the views in place without copying.
func (s *Store) Verify() error {
	for k := range s.segs {
		if _, err := s.fetchSegment(k); err != nil {
			return err
		}
	}
	return nil
}

// Stats is a point-in-time summary of an opened store's residency.
type Stats struct {
	// StructuralBytes counts bytes of structural segments (arcs, node
	// metadata, term dictionary) copied onto the heap; they load at most
	// once each and are never evicted. Zero on a zero-copy store — see
	// MappedBytes.
	StructuralBytes int64
	// MappedBytes counts bytes of structural segments served as zero-copy
	// views over the byte source (mmap / in-memory image): resident via
	// the kernel page cache, shared between processes, and invisible to
	// the Go GC.
	MappedBytes int64
	// BlockBytes / BlockEntries describe the encoded posting-block cache,
	// the part BudgetBytes bounds (unused on a zero-copy store).
	BlockBytes   int64
	BlockEntries int
	// BudgetBytes echoes Options.BudgetBytes.
	BudgetBytes int64
	// Hits / Misses count posting-block probes: against the LRU cache on
	// a copy store, against the verified-block set on a zero-copy store.
	Hits, Misses int64
	// FaultedBytes counts cumulative bytes ever faulted from disk
	// (structural segments once each, plus posting-block reads); unlike
	// residency it never decreases.
	FaultedBytes int64
}

// Stats returns current residency counters.
func (s *Store) Stats() Stats {
	st := Stats{
		StructuralBytes: s.structural.Load(),
		MappedBytes:     s.mapped.Load(),
		BudgetBytes:     s.opts.BudgetBytes,
		Hits:            s.hits.Load(),
		Misses:          s.misses.Load(),
		FaultedBytes:    s.faulted.Load(),
	}
	st.BlockBytes, st.BlockEntries = s.cache.usage()
	return st
}

// FaultedBytes returns the cumulative bytes ever faulted from disk — the
// monotone meter per-query byte budgets are charged against (see
// core.Searcher.WithFaultMeter).
func (s *Store) FaultedBytes() int64 { return s.faulted.Load() }

// ResidentBytes returns the total lazily-loaded bytes resident on the Go
// heap (mapped views are excluded; see Stats.MappedBytes).
func (s *Store) ResidentBytes() int64 {
	b, _ := s.cache.usage()
	return s.structural.Load() + b
}

// blockCache is the LRU over encoded posting blocks (the compact on-disk
// bytes, not decoded slices — a hit re-decodes, keeping the cache dense).
// max == 0 means unbounded; max < 0 disables caching.
type blockCache struct {
	mu    sync.Mutex
	max   int64
	bytes int64
	items map[int]*list.Element
	lru   list.List
}

// blockOverhead approximates the fixed per-entry cost charged on top of
// the encoded payload.
const blockOverhead = 64

type blockCacheEntry struct {
	key  int
	enc  []byte
	size int64
}

func newBlockCache(max int64) *blockCache {
	c := &blockCache{max: max}
	if max >= 0 {
		c.items = make(map[int]*list.Element)
	}
	return c
}

func (c *blockCache) get(key int) ([]byte, bool) {
	if c.max < 0 {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.lru.MoveToFront(el)
	return el.Value.(*blockCacheEntry).enc, true
}

func (c *blockCache) put(key int, enc []byte) {
	if c.max < 0 {
		return
	}
	size := int64(len(enc)) + blockOverhead
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && size > c.max {
		return // larger than the whole budget: serve uncached
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*blockCacheEntry)
		c.bytes += size - e.size
		e.enc, e.size = enc, size
		c.lru.MoveToFront(el)
	} else {
		c.items[key] = c.lru.PushFront(&blockCacheEntry{key: key, enc: enc, size: size})
		c.bytes += size
	}
	if c.max == 0 {
		return
	}
	for c.bytes > c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		e := c.lru.Remove(back).(*blockCacheEntry)
		delete(c.items, e.key)
		c.bytes -= e.size
	}
}

func (c *blockCache) usage() (bytes int64, entries int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes, len(c.items)
}

// cursor is a varint decoder with sticky errors, shared by the dictionary
// and warm-segment parsers.
type cursor struct {
	buf []byte
	err error
}

func (d *cursor) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *cursor) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 || n > uint64(len(d.buf)) {
		d.err = errors.New("string too long")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

// strAlias is str without the copy: the returned string aliases the
// cursor's backing bytes. Safe for segment buffers, which are immutable
// for the life of whatever holds the string — a mapping view or a private
// heap copy, never rewritten — and it turns the dictionary parse (one
// string per term) from the dominant first-touch allocator into pointer
// arithmetic.
func (d *cursor) strAlias() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 || n > uint64(len(d.buf)) {
		d.err = errors.New("string too long")
		return ""
	}
	if n == 0 {
		return ""
	}
	s := unsafe.String(&d.buf[0], int(n))
	d.buf = d.buf[n:]
	return s
}

func (d *cursor) u32() uint32 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 4 {
		d.err = errors.New("truncated u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf)
	d.buf = d.buf[4:]
	return v
}
