package store

// Fuzz coverage for the store's attack surface, in the style of the
// index.ReadFrom hardening: arbitrary bytes handed to OpenReaderAt must be
// cleanly rejected or yield an engine whose full materialization neither
// panics nor allocates unboundedly. Seeds cover the valid format plus
// truncations and targeted corruptions of every region (header, segments,
// directory, footer).

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// fuzzSeedStore builds a tiny real engine and serializes it — the honest
// starting point the fuzzer mutates from.
var fuzzSeed = sync.OnceValues(func() ([]byte, error) {
	db := sqldb.NewDatabase()
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name: "author",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeText, NotNull: true},
			{Name: "name", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	}); err != nil {
		return nil, err
	}
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name: "paper",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeText, NotNull: true},
			{Name: "title", Type: sqldb.TypeText},
			{Name: "author", Type: sqldb.TypeText},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "author", RefTable: "author"}},
	}); err != nil {
		return nil, err
	}
	db.Insert("author", []sqldb.Value{sqldb.Text("a1"), sqldb.Text("Sunita Sarawagi")})
	db.Insert("author", []sqldb.Value{sqldb.Text("a2"), sqldb.Text("Soumen Chakrabarti")})
	db.Insert("paper", []sqldb.Value{sqldb.Text("p1"), sqldb.Text("Mining Surprising Patterns"), sqldb.Text("a1")})
	db.Insert("paper", []sqldb.Value{sqldb.Text("p2"), sqldb.Text("Keyword Searching"), sqldb.Text("a2")})
	g, err := graph.Build(db, nil)
	if err != nil {
		return nil, err
	}
	ix, err := index.Build(db, g)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	err = Write(&buf, Engine{Graph: g, Index: ix, WarmKeys: []string{"=sunita", "~min"}})
	return buf.Bytes(), err
})

func FuzzStoreOpen(f *testing.F) {
	seed, err := fuzzSeed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte("BANKSST1"))
	f.Add([]byte("BANKSNAPnot a store"))
	// Truncations at region boundaries.
	for _, cut := range []int{headerSize, headerSize + 10, len(seed) - footerSize, len(seed) - 1, len(seed) / 2} {
		if cut >= 0 && cut <= len(seed) {
			f.Add(seed[:cut])
		}
	}
	// One corruption per region: header, early segment bytes, mid payload,
	// directory and footer.
	for _, pos := range []int{3, 9, headerSize + 4, len(seed) / 3, 2 * len(seed) / 3, len(seed) - entrySize, len(seed) - 2} {
		mut := append([]byte(nil), seed...)
		if pos >= 0 && pos < len(mut) {
			mut[pos] ^= 0x5A
			f.Add(mut)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		// Both byte-source implementations must reject/serve identical
		// inputs identically: the copy path (plain io.ReaderAt) and the
		// zero-copy view path (Mem, the in-memory stand-in for the mmap
		// fast path — same viewer interface, same aliasing decode).
		copyErr := fuzzProbe(OpenReaderAt(bytes.NewReader(data), int64(len(data)), Options{BudgetBytes: 1 << 16}))
		viewErr := fuzzProbe(OpenReaderAt(Mem(data), int64(len(data)), Options{BudgetBytes: 1 << 16}))
		if (copyErr == nil) != (viewErr == nil) {
			t.Fatalf("byte sources disagree on acceptance: copy=%v view=%v", copyErr, viewErr)
		}
	})
}

// fuzzProbe forces every lazy path of an opened store: full graph + index
// materialization, lookups (exact, prefix, metadata), warm keys and the
// eager verification pass. None of it may panic; errors are fine.
func fuzzProbe(st *Store, err error) error {
	if err != nil {
		return err // rejected cleanly
	}
	defer st.Close()
	g, ix := st.Graph(), st.Index()
	_, _ = g.WriteTo(io.Discard)
	_, _ = ix.WriteTo(io.Discard)
	for _, term := range []string{"sunita", "mining", "paper", "zzz"} {
		ix.Lookup(term)
		ix.LookupPrefix(term[:1])
	}
	if g.NumNodes() > 0 {
		g.Out(0)
		g.In(0)
		g.Prestige(0)
		g.RIDOf(0)
	}
	_, _ = st.WarmKeys()
	_ = st.Verify()
	_ = st.Err()
	_ = st.Stats()
	return nil
}

// FuzzStoreRoundTrip mutates warm-key lists and re-serializes: for any
// accepted store, Write(Open(x)) must reproduce x byte-for-byte (the
// determinism Resave relies on).
func FuzzStoreRoundTrip(f *testing.F) {
	seed, err := fuzzSeed()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
		if err != nil {
			return
		}
		warm, err := st.WarmKeys()
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := Write(&out, Engine{Graph: st.Graph(), Index: st.Index(), WarmKeys: warm}); err != nil {
			return // a corrupt lazy segment surfaced during re-save
		}
		if st.Err() != nil {
			return // some segment was corrupt; no determinism claim
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("round trip changed %d bytes to %d and altered content", len(data), out.Len())
		}
	})
}
