package store

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/eval"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// The shared DBLP fixture: one built engine reused across tests (building
// it is the expensive part of this suite).
var fixture struct {
	once sync.Once
	db   *sqldb.Database
	g    *graph.Graph
	ix   *index.Index
	err  error
}

func dblpEngine(t *testing.T) (*sqldb.Database, *graph.Graph, *index.Index) {
	t.Helper()
	fixture.once.Do(func() {
		cfg := datagen.SmallDBLP()
		fixture.db, fixture.err = datagen.BuildDBLP(cfg)
		if fixture.err != nil {
			return
		}
		if fixture.g, fixture.err = graph.Build(fixture.db, nil); fixture.err != nil {
			return
		}
		fixture.ix, fixture.err = index.Build(fixture.db, fixture.g)
	})
	if fixture.err != nil {
		t.Fatal(fixture.err)
	}
	return fixture.db, fixture.g, fixture.ix
}

// saveFixture writes the fixture engine to a fresh store file.
func saveFixture(t *testing.T, warm []string) string {
	t.Helper()
	_, g, ix := dblpEngine(t)
	path := filepath.Join(t.TempDir(), "dblp.bstore")
	if err := WriteFile(path, Engine{Graph: g, Index: ix, WarmKeys: warm}); err != nil {
		t.Fatal(err)
	}
	return path
}

// openCopy opens path through the plain file-read (copy) path, bypassing
// the mmap fast path Open prefers. The block cache and the heap-residency
// accounting only operate on this path — on a mapped store the mapping
// itself is the cache.
func openCopy(t *testing.T, path string, opts Options) *Store {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	st, err := OpenReaderAt(f, fi.Size(), opts)
	if err != nil {
		f.Close()
		t.Fatal(err)
	}
	st.closer = f
	return st
}

var parityQueries = [][]string{
	{"mohan"},
	{"transaction"},
	{"soumen", "sunita"},
	{"seltzer", "sunita"},
	{"mining", "surprising", "patterns"},
}

// queryTrace runs the parity queries and captures everything observable:
// roots, scores, edges and iterator pop counts.
func queryTrace(t *testing.T, g *graph.Graph, ix *index.Index) string {
	t.Helper()
	s := core.NewSearcher(g, ix)
	var b strings.Builder
	for _, terms := range parityQueries {
		answers, stats, err := s.Query(context.Background(), core.Request{Terms: terms}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(strings.Join(terms, " "))
		for _, a := range answers {
			b.WriteString(" |")
			b.WriteString(a.Describe(g))
		}
		b.WriteString(" pops=")
		b.WriteString(strings.Repeat("I", stats.Pops%97)) // cheap pop fingerprint
		b.WriteByte('\n')
	}
	return b.String()
}

func TestStoreRoundTripQueryParity(t *testing.T) {
	_, g, ix := dblpEngine(t)
	path := saveFixture(t, nil)
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := queryTrace(t, g, ix)
	// Cold: first queries fault the segments in. Warm: everything resident.
	if got := queryTrace(t, st.Graph(), st.Index()); got != want {
		t.Fatalf("cold store queries diverge:\n got %q\nwant %q", got, want)
	}
	if got := queryTrace(t, st.Graph(), st.Index()); got != want {
		t.Fatalf("warm store queries diverge:\n got %q\nwant %q", got, want)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// The opened engine serializes byte-identically to the built one —
	// graph and index are equivalent in full, not just on these queries.
	var wantG, gotG, wantIx, gotIx bytes.Buffer
	if _, err := g.WriteTo(&wantG); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Graph().WriteTo(&gotG); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantG.Bytes(), gotG.Bytes()) {
		t.Error("store graph serializes differently from the built graph")
	}
	if _, err := ix.WriteTo(&wantIx); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Index().WriteTo(&gotIx); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantIx.Bytes(), gotIx.Bytes()) {
		t.Error("store index serializes differently from the built index")
	}
}

func TestOpenIsLazy(t *testing.T) {
	path := saveFixture(t, nil)
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.ResidentBytes(); got != 0 {
		t.Fatalf("open made %d bytes resident before any query", got)
	}
	_, g, _ := dblpEngine(t)
	if st.Graph().NumNodes() != g.NumNodes() || st.Graph().NumArcs() != g.NumArcs() {
		t.Fatal("meta facts wrong before segment loads")
	}
	if got := st.ResidentBytes(); got != 0 {
		t.Fatalf("meta queries loaded %d bytes", got)
	}
	st.Index().Lookup("transaction")
	if s := st.Stats(); s.StructuralBytes+s.MappedBytes == 0 {
		t.Fatal("a lookup should have loaded the term dictionary")
	}
	if st.Mapped() {
		// On a mapped store the dictionary is a view, not a heap copy.
		if s := st.Stats(); s.StructuralBytes != 0 || s.MappedBytes == 0 {
			t.Fatalf("mapped store made heap copies: %+v", s)
		}
	}
}

func TestResaveOpenedStoreIsByteIdentical(t *testing.T) {
	path := saveFixture(t, []string{"=transaction", "~sur"})
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	warm, err := st.WarmKeys()
	if err != nil {
		t.Fatal(err)
	}
	var resaved bytes.Buffer
	if err := Write(&resaved, Engine{Graph: st.Graph(), Index: st.Index(), WarmKeys: warm}); err != nil {
		t.Fatal(err)
	}
	original, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(original, resaved.Bytes()) {
		t.Fatal("re-saving an opened store changed its bytes")
	}
}

func TestWarmKeysRoundTrip(t *testing.T) {
	keys := []string{"=transaction", "=mohan", "~sur"}
	path := saveFixture(t, keys)
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	got, err := st.WarmKeys()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(got, ",") != strings.Join(keys, ",") {
		t.Fatalf("WarmKeys = %v, want %v", got, keys)
	}

	// And a store saved without warm keys has none.
	st2, err := Open(saveFixture(t, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got, err := st2.WarmKeys(); err != nil || got != nil {
		t.Fatalf("WarmKeys = %v, %v; want nil, nil", got, err)
	}
}

func TestOverwriteGuard(t *testing.T) {
	_, g, ix := dblpEngine(t)
	eng := Engine{Graph: g, Index: ix}
	dir := t.TempDir()

	// A foreign file must not be clobbered.
	foreign := filepath.Join(dir, "precious.db")
	if err := os.WriteFile(foreign, []byte("this is someone's data"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := WriteFile(foreign, eng)
	if err == nil || !strings.Contains(err.Error(), "refusing to overwrite") {
		t.Fatalf("WriteFile over a foreign file: err = %v, want a refusal", err)
	}
	if data, _ := os.ReadFile(foreign); string(data) != "this is someone's data" {
		t.Fatal("foreign file was modified")
	}

	// Overwriting a previous store, a legacy snapshot, an empty file or a
	// missing path is allowed.
	ours := filepath.Join(dir, "engine.bstore")
	for _, setup := range []func() error{
		func() error { return nil }, // missing
		func() error { return os.WriteFile(ours, nil, 0o644) },
		func() error { return os.WriteFile(ours, []byte(legacySnapshotMagic+"rest"), 0o644) },
		func() error { return WriteFile(ours, eng) },
	} {
		if err := setup(); err != nil {
			t.Fatal(err)
		}
		if err := WriteFile(ours, eng); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCorruptStoresRejected(t *testing.T) {
	path := saveFixture(t, []string{"=transaction"})
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// openAndTouch opens corrupted bytes and, if Open succeeds, forces
	// every lazy load — WriteTo streams every arc, node and posting block —
	// so either stage must surface an error, never a panic.
	openAndTouch := func(data []byte) error {
		st, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
		if err != nil {
			return err
		}
		if _, err := st.Graph().WriteTo(io.Discard); err != nil {
			return err
		}
		if _, err := st.Index().WriteTo(io.Discard); err != nil {
			return err
		}
		st.Index().Lookup("transaction")
		st.Index().LookupPrefix("tr")
		if _, err := st.WarmKeys(); err != nil {
			return err
		}
		return st.Err()
	}

	if err := openAndTouch(pristine); err != nil {
		t.Fatalf("pristine store failed: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"bad header magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[11] = 0xEE; return b }},
		{"truncated footer", func(b []byte) []byte { return b[:len(b)-5] }},
		{"truncated mid-file", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad directory crc", func(b []byte) []byte { b[len(b)-10] ^= 1; return b }},
	}
	for _, c := range cases {
		data := c.mutate(append([]byte(nil), pristine...))
		if _, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)), Options{}); err == nil {
			t.Errorf("%s: Open accepted corrupt store", c.name)
		}
	}

	// Flipping any single payload byte must be caught by a checksum at
	// open, on first touch, or by Verify. Sample positions across the file.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		data := append([]byte(nil), pristine...)
		pos := headerSize + rng.Intn(len(data)-headerSize-footerSize)
		data[pos] ^= 0x40
		st, err := OpenReaderAt(bytes.NewReader(data), int64(len(data)), Options{})
		if err != nil {
			continue // caught at open
		}
		if err := st.Verify(); err == nil {
			t.Errorf("flipped byte at %d survived Verify", pos)
		}
		if err := openAndTouch(data); err == nil {
			t.Errorf("flipped byte at %d survived a full touch", pos)
		}
	}
}

// TestBudgetBoundsResidentBlocks is the EMBANKS memory-bound mode under a
// skewed workload: a Zipf term stream over a budgeted store must stay
// under the block budget at all times while still serving mostly from
// cache.
func TestBudgetBoundsResidentBlocks(t *testing.T) {
	path := saveFixture(t, nil)
	const budget = 16 << 10
	st := openCopy(t, path, Options{BudgetBytes: budget})
	defer st.Close()

	stream := datagen.ZipfTerms(20000, 99)
	for i, term := range stream {
		st.Index().Lookup(term)
		if i%512 == 0 {
			if b := st.Stats().BlockBytes; b > budget {
				t.Fatalf("after %d lookups resident blocks = %d bytes, budget %d", i+1, b, budget)
			}
		}
	}
	stats := st.Stats()
	if stats.BlockBytes > budget {
		t.Fatalf("final resident blocks = %d bytes, budget %d", stats.BlockBytes, budget)
	}
	if stats.BlockEntries == 0 {
		t.Fatal("budgeted cache held nothing")
	}
	if stats.Hits == 0 {
		t.Fatal("skewed workload never hit the block cache")
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}

	// Unbounded and uncached modes behave as documented.
	stU := openCopy(t, path, Options{BudgetBytes: -1})
	defer stU.Close()
	stU.Index().Lookup("transaction")
	stU.Index().Lookup("transaction")
	us := stU.Stats()
	if us.BlockBytes != 0 || us.Hits != 0 || us.Misses != 2 {
		t.Fatalf("uncached mode stats = %+v", us)
	}
}

func TestVerifyPassesOnPristineStore(t *testing.T) {
	path := saveFixture(t, []string{"=mohan"})
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEvalSuiteParityTPCD is the second-dataset leg of the golden parity
// requirement: the full eval-suite answer lists of a store-opened TPC-D
// engine match the freshly built engine's exactly, cold and warm.
func TestEvalSuiteParityTPCD(t *testing.T) {
	db, err := datagen.BuildTPCD(datagen.SmallTPCD())
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "tpcd.bstore")
	if err := WriteFile(path, Engine{Graph: g, Index: ix}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, Options{BudgetBytes: 32 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	suiteTrace := func(g *graph.Graph, ix *index.Index) string {
		s := core.NewSearcher(g, ix)
		var b strings.Builder
		for _, q := range eval.TPCDSuite() {
			answers, stats, err := s.Query(context.Background(), core.Request{Terms: q.Terms}, eval.DefaultDBLPOptions(), nil)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, "%s pops=%d", q.Name, stats.Pops)
			for _, a := range answers {
				fmt.Fprintf(&b, " |%.8f %s", a.Score, a.Describe(g))
			}
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := suiteTrace(g, ix)
	if got := suiteTrace(st.Graph(), st.Index()); got != want {
		t.Fatal("cold TPC-D store eval suite diverges from the built engine")
	}
	if got := suiteTrace(st.Graph(), st.Index()); got != want {
		t.Fatal("warm TPC-D store eval suite diverges from the built engine")
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentColdQueries hammers a freshly opened store from many
// goroutines at once: the first touches of the arcs, node-metadata and
// dictionary segments race here, so the lazy single-load guards and the
// block cache must hold under -race with answers identical to the built
// engine.
func TestConcurrentColdQueries(t *testing.T) {
	_, g, ix := dblpEngine(t)
	st, err := Open(saveFixture(t, nil), Options{BudgetBytes: 64 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	want := make([]string, len(parityQueries))
	ref := core.NewSearcher(g, ix)
	for i, terms := range parityQueries {
		answers, _, err := ref.Query(context.Background(), core.Request{Terms: terms}, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, a := range answers {
			fmt.Fprintf(&b, "|%.8f %s", a.Score, a.Describe(g))
		}
		want[i] = b.String()
	}

	s := core.NewSearcher(st.Graph(), st.Index())
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, terms := range parityQueries {
				answers, _, err := s.Query(context.Background(), core.Request{Terms: terms}, nil, nil)
				if err != nil {
					errs <- err
					return
				}
				var b strings.Builder
				for _, a := range answers {
					fmt.Fprintf(&b, "|%.8f %s", a.Score, a.Describe(st.Graph()))
				}
				if b.String() != want[i] {
					errs <- fmt.Errorf("worker %d query %v diverged", w, terms)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestFullSweepDoesNotPinBlocks: WriteTo / re-save stream every posting
// block through the sequential path, so a full sweep must not populate
// the block cache (which would pin the whole postings set resident on an
// unbounded budget).
func TestFullSweepDoesNotPinBlocks(t *testing.T) {
	st := openCopy(t, saveFixture(t, nil), Options{})
	defer st.Close()
	if _, err := st.Index().WriteTo(io.Discard); err != nil {
		t.Fatal(err)
	}
	if stats := st.Stats(); stats.BlockBytes != 0 || stats.BlockEntries != 0 {
		t.Fatalf("full index sweep left %d bytes / %d entries resident", stats.BlockBytes, stats.BlockEntries)
	}
	// A point lookup afterwards still caches normally.
	st.Index().Lookup("transaction")
	if stats := st.Stats(); stats.BlockEntries != 1 {
		t.Fatalf("point lookup cached %d entries, want 1", stats.BlockEntries)
	}
}

// TestCopyPathQueryParity is the heap-copy leg of the three-way golden
// parity (built vs mmap vs copy): the plain-ReaderAt open, which decodes
// every segment into heap copies, answers identically to the built engine.
func TestCopyPathQueryParity(t *testing.T) {
	_, g, ix := dblpEngine(t)
	st := openCopy(t, saveFixture(t, nil), Options{})
	defer st.Close()
	if st.Mapped() {
		t.Fatal("openCopy produced a view-backed store")
	}
	want := queryTrace(t, g, ix)
	if got := queryTrace(t, st.Graph(), st.Index()); got != want {
		t.Fatalf("copy-path queries diverge:\n got %q\nwant %q", got, want)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestVerifyOnMappedStore: Verify must hold on the mmap fast path too —
// every CRC is computed over the mapping itself, no heap copies involved.
func TestVerifyOnMappedStore(t *testing.T) {
	path := saveFixture(t, []string{"=mohan"})
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if !st.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	if err := st.Verify(); err != nil {
		t.Fatal(err)
	}
	// Verify sweeps every segment; residency must be all views, no copies.
	st.Index().Lookup("transaction")
	stats := st.Stats()
	if stats.StructuralBytes != 0 {
		t.Fatalf("mapped store copied %d structural bytes to the heap", stats.StructuralBytes)
	}
	if stats.MappedBytes == 0 {
		t.Fatal("mapped store reports no mapped structural bytes")
	}
}

// TestStructuralFaultAccountingConcurrent: FaultedBytes must count each
// structural segment at most once even when many goroutines race the
// first touch (the sync.Once winner accounts; everyone else just waits).
// Run under -race, and pin the expectation with a serial baseline.
func TestStructuralFaultAccountingConcurrent(t *testing.T) {
	path := saveFixture(t, nil)

	touch := func(st *Store) {
		g, ix := st.Graph(), st.Index()
		for n := graph.NodeID(0); int(n) < g.NumNodes(); n += 97 {
			g.Out(n)
			g.In(n)
			g.Prestige(n)
			g.RIDOf(n)
		}
		ix.Lookup("transaction")
		ix.Lookup("sunita")
	}

	serial, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	touch(serial)
	want := serial.FaultedBytes()
	serial.Close()
	if want == 0 {
		t.Fatal("serial touch faulted nothing")
	}

	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			touch(st)
		}()
	}
	wg.Wait()
	if got := st.FaultedBytes(); got != want {
		t.Fatalf("concurrent first touch faulted %d bytes, serial baseline %d (double counting)", got, want)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseWaitsForPinnedQueries: Close must not unmap while queries that
// Acquired the store are still reading; once it returns, the store is
// unreachable. Run under -race.
func TestCloseWaitsForPinnedQueries(t *testing.T) {
	st, err := Open(saveFixture(t, nil), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 8
	// Pin before Close starts so every reader is guaranteed in flight.
	for i := 0; i < readers; i++ {
		if !st.Acquire() {
			t.Fatal("Acquire failed on an open store")
		}
	}
	var done int32
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer st.Release()
			<-start
			s := core.NewSearcher(st.Graph(), st.Index())
			if _, err := s.Search([]string{"soumen", "sunita"}, nil); err != nil {
				t.Error(err)
			}
			atomic.AddInt32(&done, 1)
		}()
	}
	closed := make(chan error, 1)
	go func() {
		close(start)
		closed <- st.Close()
	}()
	err = <-closed
	if err != nil {
		t.Fatal(err)
	}
	// Close returning implies every pinned reader drained first.
	if n := atomic.LoadInt32(&done); n != readers {
		t.Fatalf("Close returned with %d/%d pinned readers still running", n, readers)
	}
	if st.Acquire() {
		t.Fatal("Acquire succeeded after Close")
	}
	wg.Wait()
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}

// layoutTrace is queryTrace minus the pop fingerprint: iterator schedules
// legitimately differ across node numberings; answers must not.
func layoutTrace(t *testing.T, g *graph.Graph, ix *index.Index) string {
	t.Helper()
	s := core.NewSearcher(g, ix)
	var b strings.Builder
	for _, terms := range parityQueries {
		answers, err := s.Search(terms, nil)
		if err != nil {
			t.Fatal(err)
		}
		b.WriteString(strings.Join(terms, " "))
		for _, a := range answers {
			b.WriteString(" |")
			b.WriteString(a.Describe(g))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestDegreeLayoutParity: the build-time degree renumber changes node ids
// only — every answer (roots, trees, scores, all named by table[rid]) is
// identical to the default layout, both freshly built and through a store
// round trip.
func TestDegreeLayoutParity(t *testing.T) {
	db, g0, ix0 := dblpEngine(t)
	bo := graph.DefaultBuildOptions()
	bo.LayoutOrder = graph.LayoutDegree
	g1, err := graph.Build(db, bo)
	if err != nil {
		t.Fatal(err)
	}
	ix1, err := index.Build(db, g1)
	if err != nil {
		t.Fatal(err)
	}
	want := layoutTrace(t, g0, ix0)
	if got := layoutTrace(t, g1, ix1); got != want {
		t.Fatalf("degree layout diverges from rid layout:\n got %q\nwant %q", got, want)
	}

	path := filepath.Join(t.TempDir(), "degree.bstore")
	if err := WriteFile(path, Engine{Graph: g1, Index: ix1}); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := layoutTrace(t, st.Graph(), st.Index()); got != want {
		t.Fatalf("store-opened degree layout diverges:\n got %q\nwant %q", got, want)
	}
	if err := st.Err(); err != nil {
		t.Fatal(err)
	}
}
