//go:build !linux

package store

import (
	"errors"
	"os"
)

// mmapSource is unavailable off Linux: Open falls back to serving the
// store through plain file reads (the copy path), which is functionally
// identical — zero-copy views then come only from in-memory sources (Mem).
type mmapSource struct{}

var errNoMmap = errors.New("store: memory mapping not supported on this platform")

func mapFile(f *os.File, size int64) (*mmapSource, error) { return nil, errNoMmap }

func (m *mmapSource) ReadAt(p []byte, off int64) (int, error) { return 0, errNoMmap }
func (m *mmapSource) ViewAt(off, n int64) ([]byte, bool)      { return nil, false }
func (m *mmapSource) Close() error                            { return nil }
func (m *mmapSource) Prefault() error                         { return errNoMmap }
func (m *mmapSource) Mlock() error                            { return errNoMmap }
