// Package store implements the disk-resident engine store: a versioned,
// checksummed, segmented on-disk format for a built BANKS engine (data
// graph + keyword index + match-cache warmup terms), written by Write and
// opened by Open with zero rebuild work. EMBANKS ("Towards Disk Based
// Algorithms For Keyword-Search In Structured Databases") motivates the
// design: very large engines should load lazily and run under a memory
// bound instead of paying a full SQL→graph→index rebuild at every start.
//
// File layout:
//
//	+--------------------------------------------------------------+
//	| header   magic "BANKSST1" · version u32 · flags u32          |
//	+--------------------------------------------------------------+
//	| segments (8-byte-aligned payloads, any gaps ignored)         |
//	|   graph meta   tables, node ranges, counts, normalizers      |
//	|   node meta    per-node RIDs + prestige                      |
//	|   graph arcs   CSR adjacency, forward + reverse              |
//	|   term dict    sorted tokens -> {count, block off/len/crc}   |
//	|                + metadata (table/column-name) postings       |
//	|   postings     delta-varint posting blocks, one per term     |
//	|   warm terms   match-cache keys hot at save time (optional)  |
//	+--------------------------------------------------------------+
//	| directory    {kind, offset, length, crc32c} per segment      |
//	+--------------------------------------------------------------+
//	| footer    dir offset u64 · dir length u64 · dir crc32c u32   |
//	|           · magic "BANKSEND"                                 |
//	+--------------------------------------------------------------+
//
// The directory lives at the tail (located via the fixed-size footer) so
// the file streams out through one io.Writer pass — no seeking — while
// Open random-accesses it through io.ReaderAt. Opening verifies only the
// header, footer, directory and the small graph-meta segment; every other
// segment is fetched, checksummed and decoded on first touch through the
// graph/index lazy-read interfaces, and decoded posting blocks live in an
// LRU cache bounded by Options.BudgetBytes (the EMBANKS memory-bound
// serving mode).
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	// Magic opens every store file; it is distinct from the legacy
	// monolithic snapshot magic ("BANKSNAP") so both formats are
	// sniffable from the first 8 bytes.
	Magic       = "BANKSST1"
	footerMagic = "BANKSEND"

	// Version gates format changes. Version 2 aligns every segment to an
	// 8-byte file offset and widens arc records to 16 bytes (see
	// graph.EncodeArcs) so an mmap-opened store can serve the CSR arrays
	// and node metadata as zero-copy views over the mapping.
	Version = 2

	headerSize = 16 // magic + version + flags
	footerSize = 28 // dirOff + dirLen + dirCRC + magic
	entrySize  = 24 // kind + offset + length + crc

	// segAlign is the file-offset alignment of every segment: the widest
	// field aliased directly out of the mapping is 8 bytes (float64
	// weights, u64 rids), and mmap bases are page-aligned, so an 8-byte
	// segment offset makes every in-segment array naturally aligned.
	segAlign = 8
)

// Segment kinds. Unknown kinds in the directory are ignored on open, so
// future versions can add segments without breaking old readers.
type kind uint32

const (
	kindGraphMeta kind = 1
	kindNodeMeta  kind = 2
	kindGraphArcs kind = 3
	kindTermDict  kind = 4
	kindPostings  kind = 5
	kindWarmTerms kind = 6
	// kindWALSeq records the sequence number of the last write-ahead-log
	// batch folded into this store (8 bytes, big-endian). It makes WAL
	// truncation crash-safe: replay after a crash skips batches with
	// seq <= the stored value. Absent (old stores) means 0.
	kindWALSeq kind = 7
	// kindTermStats holds the partition's term-statistics sketch: the
	// per-term document frequencies the cluster routing broker consults
	// to prune partitions that cannot match a query. The payload is
	// opaque to the store (internal/cluster owns the encoding); absent
	// means "no sketch" and routing falls back to scattering everywhere.
	kindTermStats kind = 8
)

func (k kind) String() string {
	switch k {
	case kindGraphMeta:
		return "graph meta"
	case kindNodeMeta:
		return "node metadata"
	case kindGraphArcs:
		return "graph arcs"
	case kindTermDict:
		return "term dictionary"
	case kindPostings:
		return "postings"
	case kindWarmTerms:
		return "warm terms"
	case kindWALSeq:
		return "WAL sequence"
	case kindTermStats:
		return "term statistics"
	}
	return fmt.Sprintf("segment kind %d", uint32(k))
}

// requiredKinds must each appear exactly once in a valid store.
var requiredKinds = []kind{kindGraphMeta, kindNodeMeta, kindGraphArcs, kindTermDict, kindPostings}

// castagnoli is the CRC-32C table every segment checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func checksum(p []byte) uint32 { return crc32.Checksum(p, castagnoli) }

// dirEntry locates one segment and pins its checksum.
type dirEntry struct {
	kind   kind
	off    uint64
	length uint64
	crc    uint32
}

// encodeDirectory renders the directory: a u32 entry count, then fixed
// 24-byte entries, all big-endian.
func encodeDirectory(entries []dirEntry) []byte {
	buf := make([]byte, 0, 4+entrySize*len(entries))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.BigEndian.AppendUint32(buf, uint32(e.kind))
		buf = binary.BigEndian.AppendUint64(buf, e.off)
		buf = binary.BigEndian.AppendUint64(buf, e.length)
		buf = binary.BigEndian.AppendUint32(buf, e.crc)
	}
	return buf
}

// maxDirEntries bounds the entry count trusted from a directory.
const maxDirEntries = 1 << 16

func decodeDirectory(data []byte) ([]dirEntry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("directory truncated (%d bytes)", len(data))
	}
	n := binary.BigEndian.Uint32(data)
	if n > maxDirEntries {
		return nil, fmt.Errorf("directory claims %d segments", n)
	}
	if len(data) != 4+entrySize*int(n) {
		return nil, fmt.Errorf("directory is %d bytes for %d segments, want %d", len(data), n, 4+entrySize*int(n))
	}
	entries := make([]dirEntry, n)
	for i := range entries {
		p := data[4+entrySize*i:]
		entries[i] = dirEntry{
			kind:   kind(binary.BigEndian.Uint32(p)),
			off:    binary.BigEndian.Uint64(p[4:]),
			length: binary.BigEndian.Uint64(p[12:]),
			crc:    binary.BigEndian.Uint32(p[20:]),
		}
	}
	return entries, nil
}
