package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Engine is what gets persisted: the built graph and index, plus the
// match-cache keys that were hot at save time (from MatchCache.HotKeys) so
// a later Open can pre-warm its cache with the workload's favourites.
type Engine struct {
	Graph    *graph.Graph
	Index    *index.Index
	WarmKeys []string
	// WALSeq is the sequence number of the last WAL batch whose effects
	// this engine already contains; replay on reopen skips seq <= WALSeq.
	// 0 (the default) means "no WAL history folded in".
	WALSeq uint64
	// TermStats is the partition's term-statistics sketch for the cluster
	// routing broker, already encoded (internal/cluster owns the format;
	// the store treats it as opaque bytes). Empty means "no sketch".
	TermStats []byte
}

// legacySnapshotMagic is the monolithic pre-store snapshot format; see the
// overwrite guard in WriteFile.
const legacySnapshotMagic = "BANKSNAP"

// Write streams eng to w in the segmented store format. The output is
// deterministic for a given engine and warm-key list. Writing a lazily
// opened engine re-saves it (segments are materialized as needed).
func Write(w io.Writer, eng Engine) error {
	if eng.Graph == nil || eng.Index == nil {
		return errors.New("store: Write requires a graph and an index")
	}
	if eng.Index.NumNodes() != eng.Graph.NumNodes() {
		return fmt.Errorf("store: index built for %d nodes, graph has %d",
			eng.Index.NumNodes(), eng.Graph.NumNodes())
	}

	nodeMeta, err := eng.Graph.EncodeNodeMeta()
	if err != nil {
		return fmt.Errorf("store: encoding node metadata: %w", err)
	}
	arcs, err := eng.Graph.EncodeArcs()
	if err != nil {
		return fmt.Errorf("store: encoding arcs: %w", err)
	}
	dict, postings, err := encodePostings(eng.Index)
	if err != nil {
		return fmt.Errorf("store: encoding postings: %w", err)
	}

	segments := []struct {
		kind kind
		data []byte
	}{
		{kindGraphMeta, eng.Graph.EncodeMeta()},
		{kindNodeMeta, nodeMeta},
		{kindGraphArcs, arcs},
		{kindTermDict, dict},
		{kindPostings, postings},
		{kindWarmTerms, encodeWarmKeys(eng.WarmKeys)},
		{kindWALSeq, binary.BigEndian.AppendUint64(nil, eng.WALSeq)},
		{kindTermStats, eng.TermStats},
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [headerSize]byte
	copy(hdr[:8], Magic)
	binary.BigEndian.PutUint32(hdr[8:], Version)
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: writing header: %w", err)
	}
	off := uint64(headerSize)
	var pad [segAlign]byte
	entries := make([]dirEntry, 0, len(segments))
	for _, seg := range segments {
		if seg.kind == kindWarmTerms && len(eng.WarmKeys) == 0 {
			continue
		}
		if seg.kind == kindWALSeq && eng.WALSeq == 0 {
			continue
		}
		if seg.kind == kindTermStats && len(eng.TermStats) == 0 {
			continue
		}
		// Align the segment start so an mmap-opened store can alias the
		// segment's fixed-width arrays in place (readers ignore the gap).
		if rem := off % segAlign; rem != 0 {
			n := segAlign - rem
			if _, err := bw.Write(pad[:n]); err != nil {
				return fmt.Errorf("store: writing padding: %w", err)
			}
			off += n
		}
		if _, err := bw.Write(seg.data); err != nil {
			return fmt.Errorf("store: writing %s segment: %w", seg.kind, err)
		}
		entries = append(entries, dirEntry{
			kind:   seg.kind,
			off:    off,
			length: uint64(len(seg.data)),
			crc:    checksum(seg.data),
		})
		off += uint64(len(seg.data))
	}
	dir := encodeDirectory(entries)
	if _, err := bw.Write(dir); err != nil {
		return fmt.Errorf("store: writing directory: %w", err)
	}
	var foot [footerSize]byte
	binary.BigEndian.PutUint64(foot[0:], off)
	binary.BigEndian.PutUint64(foot[8:], uint64(len(dir)))
	binary.BigEndian.PutUint32(foot[16:], checksum(dir))
	copy(foot[20:], footerMagic)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("store: writing footer: %w", err)
	}
	return bw.Flush()
}

// WriteFile persists eng to path atomically: the store is written to a
// temp file in the same directory, synced, and renamed over path, so a
// crash mid-save never leaves a torn store and concurrent readers of the
// old file are undisturbed.
//
// Overwrite guard: if path already exists with content that is neither a
// segmented store nor a legacy snapshot, WriteFile refuses — a mistyped
// path must not silently destroy an unrelated data file.
func WriteFile(path string, eng Engine) error {
	if err := guardOverwrite(path); err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: creating temp file: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := Write(tmp, eng); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: syncing %s: %w", tmp.Name(), err)
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		tmp = nil
		os.Remove(name)
		return fmt.Errorf("store: closing %s: %w", name, err)
	}
	tmp = nil
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("store: installing %s: %w", path, err)
	}
	return nil
}

// guardOverwrite refuses to replace an existing non-empty file whose magic
// identifies neither store format.
func guardOverwrite(path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: checking %s: %w", path, err)
	}
	defer f.Close()
	var head [8]byte
	n, err := io.ReadFull(f, head[:])
	if n == 0 {
		return nil // empty file: nothing to destroy
	}
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("store: checking %s: %w", path, err)
	}
	got := string(head[:n])
	if got == Magic || got == legacySnapshotMagic {
		return nil
	}
	return fmt.Errorf("store: refusing to overwrite %s: existing content is not a BANKS store or snapshot (magic %q)", path, head[:n])
}

// encodePostings renders the term dictionary and postings segments: the
// postings segment concatenates one delta-varint block per term (ascending
// token order, the same coding Index.WriteTo uses), and the dictionary
// maps each token to its count and block {offset, length, crc32c} so a
// single term resolves with one block read — no neighbouring postings are
// touched.
func encodePostings(ix *index.Index) (dict, postings []byte, err error) {
	var blocks []byte
	type ref struct {
		tok      string
		count    int
		off, ln  uint64
		checksum uint32
	}
	var refs []ref
	err = ix.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		start := len(blocks)
		prev := graph.NodeID(0)
		for _, n := range ns {
			blocks = binary.AppendUvarint(blocks, uint64(n-prev))
			prev = n
		}
		refs = append(refs, ref{
			tok:      tok,
			count:    len(ns),
			off:      uint64(start),
			ln:       uint64(len(blocks) - start),
			checksum: checksum(blocks[start:]),
		})
	})
	if err != nil {
		return nil, nil, err
	}

	var d []byte
	d = binary.AppendUvarint(d, uint64(ix.NumNodes()))
	d = binary.AppendUvarint(d, uint64(ix.NumPostings()))
	d = binary.AppendUvarint(d, uint64(len(refs)))
	for _, r := range refs {
		d = binary.AppendUvarint(d, uint64(len(r.tok)))
		d = append(d, r.tok...)
		d = binary.AppendUvarint(d, uint64(r.count))
		d = binary.AppendUvarint(d, r.off)
		d = binary.AppendUvarint(d, r.ln)
		d = binary.LittleEndian.AppendUint32(d, r.checksum)
	}
	meta := ix.MetaTables()
	mtoks := make([]string, 0, len(meta))
	for tok := range meta {
		mtoks = append(mtoks, tok)
	}
	sort.Strings(mtoks)
	d = binary.AppendUvarint(d, uint64(len(mtoks)))
	for _, tok := range mtoks {
		d = binary.AppendUvarint(d, uint64(len(tok)))
		d = append(d, tok...)
		ts := meta[tok]
		d = binary.AppendUvarint(d, uint64(len(ts)))
		for _, t := range ts {
			d = binary.AppendUvarint(d, uint64(t))
		}
	}
	return d, blocks, nil
}

func encodeWarmKeys(keys []string) []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		buf = binary.AppendUvarint(buf, uint64(len(k)))
		buf = append(buf, k...)
	}
	return buf
}
