//go:build linux

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSource serves a store file as a read-only memory mapping: ViewAt
// returns sub-slices of the mapping, so segments are never copied onto the
// Go heap — residency is kernel-managed and N processes opening the same
// store share one page-cache copy. The fd is closed right after mapping
// (the mapping keeps the pages); Close unmaps.
type mmapSource struct {
	data []byte
}

// mapFile maps f read-only. Callers may close f once this returns.
func mapFile(f *os.File, size int64) (*mmapSource, error) {
	if size <= 0 || int64(int(size)) != size {
		return nil, fmt.Errorf("store: cannot map %d bytes", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("store: mmap: %w", err)
	}
	return &mmapSource{data: data}, nil
}

func (m *mmapSource) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 || off > int64(len(m.data)) {
		return 0, fmt.Errorf("store: read at %d outside mapping of %d bytes", off, len(m.data))
	}
	n := copy(p, m.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("store: read [%d, %d) overruns mapping of %d bytes", off, off+int64(len(p)), len(m.data))
	}
	return n, nil
}

func (m *mmapSource) ViewAt(off, n int64) ([]byte, bool) {
	if off < 0 || n < 0 || off+n > int64(len(m.data)) {
		return nil, false
	}
	return m.data[off : off+n : off+n], true
}

func (m *mmapSource) Close() error {
	data := m.data
	m.data = nil
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}

// Prefault asks the kernel to read the whole mapping ahead
// (madvise(WILLNEED)) and then touches every page so the cost of demand
// paging is paid up front rather than inside the first queries.
func (m *mmapSource) Prefault() error {
	if len(m.data) == 0 {
		return nil
	}
	if err := syscall.Madvise(m.data, syscall.MADV_WILLNEED); err != nil {
		return fmt.Errorf("store: madvise: %w", err)
	}
	var sink byte
	for i := 0; i < len(m.data); i += pageSize {
		sink += m.data[i]
	}
	_ = sink
	return nil
}

// Mlock pins the mapping in physical memory (no major faults ever after).
func (m *mmapSource) Mlock() error {
	if len(m.data) == 0 {
		return nil
	}
	if err := syscall.Mlock(m.data); err != nil {
		return fmt.Errorf("store: mlock: %w", err)
	}
	return nil
}

const pageSize = 4096
