package graph

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/par"
	"github.com/banksdb/banks/internal/sqldb"
)

// BuildOptions tune graph construction.
type BuildOptions struct {
	// ScaleBackEdges applies the paper's indegree scaling to backward
	// edges (w(v->u) = s(R(u),R(v)) * IN_{R(u)}(v)). Disabling it (for the
	// hub ablation) gives every backward edge the forward weight.
	ScaleBackEdges bool

	// PrestigeDamping, when > 0 and < 1, replaces raw-indegree prestige
	// with a PageRank-style power iteration using this damping factor —
	// the "transfer of prestige" extension the paper mentions can "easily
	// be added to the model".
	PrestigeDamping float64

	// PrestigeIters bounds the power iteration (default 20).
	PrestigeIters int

	// Shards caps how many concurrent workers build the graph. 0 uses
	// runtime.GOMAXPROCS(0); 1 forces the serial build. Every shard count
	// produces byte-identical graphs: node ids are assigned by a
	// deterministic per-range prefix sum, per-shard link lists are merged
	// in (table, row-range) order, and the arc sort is order-insensitive.
	Shards int

	// LayoutOrder selects the node-numbering pass applied before arcs are
	// materialized. "" or LayoutRID keeps per-table RID order (the
	// default). LayoutDegree renumbers each table by descending structural
	// degree (ties broken by ascending RID), packing hub rows — the nodes
	// a backward expanding search touches most — into adjacent CSR rows so
	// their adjacency lists share cache lines and mapped pages. Answers
	// are layout-independent: result identity and every tie-break key off
	// (table, RID), never node id.
	LayoutOrder string
}

// Layout orders accepted by BuildOptions.LayoutOrder.
const (
	LayoutRID    = "rid"
	LayoutDegree = "degree"
)

// DefaultBuildOptions returns the paper's configuration.
func DefaultBuildOptions() *BuildOptions {
	return &BuildOptions{ScaleBackEdges: true}
}

// link is one resolved FK reference from tuple `from` to tuple `to` with
// relation similarity s(R(from), R(to)).
type link struct {
	from, to NodeID
	w        float64
}

// buildShard is one contiguous RID range of one table; the unit of
// parallelism for every build pass. Shards of a table are ordered by RID
// range, and the global shard list is ordered by (table, range), so
// concatenating per-shard outputs reproduces the serial scan order exactly.
type buildShard struct {
	tbl    int       // index into the build's table list
	lo, hi sqldb.RID // scan range [lo, hi)

	liveRows int    // pass A: live rows in range
	base     NodeID // first node id assigned to this range

	links []link           // pass C: resolved FK links, in scan order
	in    map[NodeID]int32 // pass C: links into v from this shard's table
}

// buildShardSize is the minimum row-range per shard; tables smaller than
// this are built by a single worker, avoiding goroutine overhead on the
// many small relations of a typical schema.
const buildShardSize = 512

// planShards splits every table into up to `shards` contiguous RID ranges.
func planShards(tables []tableInfo, shards int) []buildShard {
	var plan []buildShard
	for i, ti := range tables {
		capRows := ti.t.Cap()
		chunk := (capRows + shards - 1) / shards
		if chunk < buildShardSize {
			chunk = buildShardSize
		}
		if capRows == 0 {
			plan = append(plan, buildShard{tbl: i})
			continue
		}
		for lo := 0; lo < capRows; lo += chunk {
			hi := lo + chunk
			if hi > capRows {
				hi = capRows
			}
			plan = append(plan, buildShard{tbl: i, lo: sqldb.RID(lo), hi: sqldb.RID(hi)})
		}
	}
	return plan
}

type tableInfo struct {
	t  *sqldb.Table
	id int32
}

// Build constructs the data graph from a database snapshot. The caller
// should not mutate the database concurrently. Construction is sharded
// over opts.Shards workers (GOMAXPROCS by default) and the result is
// byte-identical to a serial build.
func Build(db *sqldb.Database, opts *BuildOptions) (*Graph, error) {
	if opts == nil {
		opts = DefaultBuildOptions()
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = runtime.GOMAXPROCS(0)
	}
	db.RLock()
	defer db.RUnlock()

	g := &Graph{tableIDs: make(map[string]int32)}
	names := db.TableNames()
	tables := make([]tableInfo, 0, len(names))
	for _, name := range names {
		t := db.Table(name)
		if t == nil {
			return nil, fmt.Errorf("graph: table %s disappeared during build", name)
		}
		id := int32(len(g.tableNames))
		g.tableNames = append(g.tableNames, t.Name())
		g.tableIDs[strings.ToLower(t.Name())] = id
		tables = append(tables, tableInfo{t: t, id: id})
	}

	plan := planShards(tables, shards)

	// Pass A (parallel): count live rows per shard, so node ids can be
	// assigned without scanning serially.
	par.Run(len(plan), shards, func(i int) {
		sh := &plan[i]
		n := 0
		tables[sh.tbl].t.ScanRange(sh.lo, sh.hi, func(sqldb.RID, []sqldb.Value) bool {
			n++
			return true
		})
		sh.liveRows = n
	})

	// Node-id assignment: contiguous per table in RID order (the paper's
	// dense ids), via a prefix sum over the shard plan.
	g.tableStart = make([]NodeID, len(tables)+1)
	total := NodeID(0)
	ti := 0
	for i := range plan {
		for ti < plan[i].tbl { // tables between shards (none today, but safe)
			ti++
			g.tableStart[ti] = total
		}
		plan[i].base = total
		total += NodeID(plan[i].liveRows)
	}
	for ti < len(tables) {
		ti++
		g.tableStart[ti] = total
	}
	numNodes := int(total)
	g.tableOf = make([]int32, numNodes)
	g.ridOf = make([]sqldb.RID, numNodes)
	g.prestige = make([]float64, numNodes)
	g.nodeOf = make([][]NodeID, len(tables))
	for i, t := range tables {
		m := make([]NodeID, t.t.Cap())
		for r := range m {
			m[r] = NoNode
		}
		g.nodeOf[i] = m
	}

	// Pass B (parallel): fill the node maps. Each shard writes a disjoint
	// node-id range and a disjoint RID range of its table's map.
	par.Run(len(plan), shards, func(i int) {
		sh := &plan[i]
		tid := tables[sh.tbl].id
		m := g.nodeOf[sh.tbl]
		n := sh.base
		tables[sh.tbl].t.ScanRange(sh.lo, sh.hi, func(rid sqldb.RID, _ []sqldb.Value) bool {
			m[rid] = n
			g.tableOf[n] = tid
			g.ridOf[n] = rid
			n++
			return true
		})
	})

	// Per-table FK metadata, resolved once (serial: error paths live here).
	type fkInfo struct {
		col     int
		refTbl  int32
		ref     *sqldb.Table
		refType sqldb.Type
		w       float64
	}
	fksOf := make([][]fkInfo, len(tables))
	for i, t := range tables {
		schema := t.t.Schema()
		if len(schema.ForeignKeys) == 0 {
			continue
		}
		fks := make([]fkInfo, 0, len(schema.ForeignKeys))
		for _, fk := range schema.ForeignKeys {
			refID, ok := g.tableIDs[strings.ToLower(fk.RefTable)]
			if !ok {
				return nil, fmt.Errorf("graph: %s.%s references unknown table %s", schema.Name, fk.Column, fk.RefTable)
			}
			ref := db.Table(fk.RefTable)
			refCol := ref.Schema().Column(fk.RefColumn)
			if refCol == nil {
				return nil, fmt.Errorf("graph: %s.%s references missing column %s.%s", schema.Name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			w := fk.Weight
			if w <= 0 {
				w = 1
			}
			fks = append(fks, fkInfo{
				col:     t.t.ColumnIndex(fk.Column),
				refTbl:  refID,
				ref:     ref,
				refType: refCol.Type,
				w:       w,
			})
		}
		fksOf[i] = fks
	}

	// Pass C (parallel): resolve FK links into per-shard lists and count,
	// per referenced node, the links arriving from this shard's relation
	// (the shard's contribution to IN_{R}(v)). Only reads shared state:
	// node maps are complete after pass B, and PK lookups are read-only.
	par.Run(len(plan), shards, func(i int) {
		sh := &plan[i]
		fks := fksOf[sh.tbl]
		if len(fks) == 0 {
			return
		}
		sh.in = make(map[NodeID]int32)
		m := g.nodeOf[sh.tbl]
		tables[sh.tbl].t.ScanRange(sh.lo, sh.hi, func(rid sqldb.RID, row []sqldb.Value) bool {
			u := m[rid]
			for _, fk := range fks {
				v := row[fk.col]
				if v.IsNull() {
					continue
				}
				cv, err := v.Convert(fk.refType)
				if err != nil {
					continue
				}
				refRID := fk.ref.LookupPK([]sqldb.Value{cv})
				if refRID < 0 {
					continue // dangling reference: skip, the DB enforces FKs anyway
				}
				vNode := g.nodeOf[fk.refTbl][refRID]
				if vNode == u {
					continue // self-loop carries no proximity information
				}
				sh.links = append(sh.links, link{from: u, to: vNode, w: fk.w})
				sh.in[vNode]++
			}
			return true
		})
	})

	// Merge (serial, deterministic): concatenating shard link lists in
	// plan order reproduces the serial scan order exactly; the per-table
	// indegree counts and prestige are order-insensitive integer sums.
	nLinks := 0
	for i := range plan {
		nLinks += len(plan[i].links)
	}
	links := make([]link, 0, nLinks)
	inByTable := make([]map[NodeID]int32, len(tables))
	for i := range plan {
		sh := &plan[i]
		links = append(links, sh.links...)
		if len(sh.in) == 0 {
			continue
		}
		agg := inByTable[sh.tbl]
		if agg == nil {
			agg = make(map[NodeID]int32, len(sh.in))
			inByTable[sh.tbl] = agg
		}
		for v, c := range sh.in {
			agg[v] += c
		}
	}
	for _, l := range links {
		g.prestige[l.to]++
	}

	if err := g.applyLayout(opts.LayoutOrder, links, inByTable); err != nil {
		return nil, err
	}

	// Materialize arcs: each FK link (u->v) contributes the forward arc
	// u->v with weight s, and the backward arc v->u with weight
	// s * IN_{R(u)}(v) (§2.2); parallel arcs are merged to the minimum
	// weight per Equation 1.
	arcs := make([]arc, 0, 2*len(links))
	for _, l := range links {
		arcs = append(arcs, arc{from: l.from, to: l.to, w: l.w})
		bw := l.w
		if opts.ScaleBackEdges {
			bw = l.w * float64(inByTable[g.tableOf[l.from]][l.to])
		}
		arcs = append(arcs, arc{from: l.to, to: l.from, w: bw})
	}
	g.finishShards(arcs, shards)

	if opts.PrestigeDamping > 0 && opts.PrestigeDamping < 1 {
		pairs := make([]pair, len(links))
		for i, l := range links {
			pairs[i] = pair{from: l.from, to: l.to}
		}
		g.applyPageRankPrestige(opts.PrestigeDamping, opts.PrestigeIters, pairs)
	}
	return g, nil
}

// applyLayout renumbers nodes within each table according to
// BuildOptions.LayoutOrder, rewriting every old-id-keyed structure the
// build has produced so far (node maps, RID/prestige arrays, the link list
// and the per-table indegree counts) before arcs are materialized. The
// permutation never crosses table boundaries, so tableStart and tableOf
// are untouched. Sorting by (degree desc, RID asc) is a total order — RIDs
// are unique within a table — so the result is deterministic at any shard
// count.
func (g *Graph) applyLayout(order string, links []link, inByTable []map[NodeID]int32) error {
	switch order {
	case "", LayoutRID:
		return nil
	case LayoutDegree:
	default:
		return fmt.Errorf("graph: unknown layout order %q", order)
	}
	n := g.NumNodes()
	deg := make([]int32, n)
	for _, l := range links {
		deg[l.from]++
		deg[l.to]++
	}
	perm := make([]NodeID, n) // old id -> new id
	var idx []NodeID
	for t := 0; t+1 < len(g.tableStart); t++ {
		lo, hi := g.tableStart[t], g.tableStart[t+1]
		idx = idx[:0]
		for v := lo; v < hi; v++ {
			idx = append(idx, v)
		}
		sort.Slice(idx, func(i, j int) bool {
			a, b := idx[i], idx[j]
			if deg[a] != deg[b] {
				return deg[a] > deg[b]
			}
			return g.ridOf[a] < g.ridOf[b]
		})
		for i, old := range idx {
			perm[old] = lo + NodeID(i)
		}
	}
	rid := make([]sqldb.RID, n)
	prestige := make([]float64, n)
	for old := 0; old < n; old++ {
		nw := perm[old]
		rid[nw] = g.ridOf[old]
		prestige[nw] = g.prestige[old]
	}
	g.ridOf, g.prestige = rid, prestige
	for _, m := range g.nodeOf {
		for r, v := range m {
			if v != NoNode {
				m[r] = perm[v]
			}
		}
	}
	for i := range links {
		links[i].from = perm[links[i].from]
		links[i].to = perm[links[i].to]
	}
	for t, m := range inByTable {
		if m == nil {
			continue
		}
		nm := make(map[NodeID]int32, len(m))
		for v, c := range m {
			nm[perm[v]] = c
		}
		inByTable[t] = nm
	}
	return nil
}

type pair struct{ from, to NodeID }

// applyPageRankPrestige replaces raw indegree with a PageRank over the FK
// reference graph (links point from referencing to referenced tuple, so
// prestige flows toward referenced tuples, e.g. heavily cited papers).
// Scores are rescaled so the maximum matches the maximum raw indegree,
// keeping the §2.3 normalization meaningful.
func (g *Graph) applyPageRankPrestige(d float64, iters int, links []pair) {
	if iters <= 0 {
		iters = 20
	}
	n := g.NumNodes()
	if n == 0 {
		return
	}
	outDeg := make([]int32, n)
	for _, l := range links {
		outDeg[l.from]++
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - d) / float64(n)
		var leaked float64
		for i := range next {
			next[i] = base
		}
		for i, r := range rank {
			if outDeg[i] == 0 {
				leaked += d * r
			}
		}
		for _, l := range links {
			next[l.to] += d * rank[l.from] / float64(outDeg[l.from])
		}
		share := leaked / float64(n)
		for i := range next {
			next[i] += share
		}
		rank, next = next, rank
	}
	var maxRank, maxIn float64
	for i := range rank {
		if rank[i] > maxRank {
			maxRank = rank[i]
		}
		if g.prestige[i] > maxIn {
			maxIn = g.prestige[i]
		}
	}
	if maxRank == 0 {
		return
	}
	scale := maxIn / maxRank
	if scale == 0 {
		scale = 1 / maxRank
	}
	for i := range rank {
		g.prestige[i] = rank[i] * scale
	}
	g.maxNode = 0
	for _, p := range g.prestige {
		if p > g.maxNode {
			g.maxNode = p
		}
	}
}
