package graph

import (
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
)

// BuildOptions tune graph construction.
type BuildOptions struct {
	// ScaleBackEdges applies the paper's indegree scaling to backward
	// edges (w(v->u) = s(R(u),R(v)) * IN_{R(u)}(v)). Disabling it (for the
	// hub ablation) gives every backward edge the forward weight.
	ScaleBackEdges bool

	// PrestigeDamping, when > 0 and < 1, replaces raw-indegree prestige
	// with a PageRank-style power iteration using this damping factor —
	// the "transfer of prestige" extension the paper mentions can "easily
	// be added to the model".
	PrestigeDamping float64

	// PrestigeIters bounds the power iteration (default 20).
	PrestigeIters int
}

// DefaultBuildOptions returns the paper's configuration.
func DefaultBuildOptions() *BuildOptions {
	return &BuildOptions{ScaleBackEdges: true}
}

// Build constructs the data graph from a database snapshot. The caller
// should not mutate the database concurrently.
func Build(db *sqldb.Database, opts *BuildOptions) (*Graph, error) {
	if opts == nil {
		opts = DefaultBuildOptions()
	}
	db.RLock()
	defer db.RUnlock()

	g := &Graph{tableIDs: make(map[string]int32)}
	names := db.TableNames()
	type tinfo struct {
		t  *sqldb.Table
		id int32
	}
	tables := make([]tinfo, 0, len(names))
	for _, name := range names {
		t := db.Table(name)
		if t == nil {
			return nil, fmt.Errorf("graph: table %s disappeared during build", name)
		}
		id := int32(len(g.tableNames))
		g.tableNames = append(g.tableNames, t.Name())
		g.tableIDs[strings.ToLower(t.Name())] = id
		tables = append(tables, tinfo{t: t, id: id})
	}

	// Pass 1: assign node ids, contiguous per table in RID order.
	g.tableStart = make([]NodeID, len(tables)+1)
	g.nodeOf = make([][]NodeID, len(tables))
	for i, ti := range tables {
		g.tableStart[i] = NodeID(len(g.tableOf))
		m := make([]NodeID, ti.t.Cap())
		for r := range m {
			m[r] = NoNode
		}
		ti.t.Scan(func(rid sqldb.RID, _ []sqldb.Value) bool {
			n := NodeID(len(g.tableOf))
			m[rid] = n
			g.tableOf = append(g.tableOf, ti.id)
			g.ridOf = append(g.ridOf, rid)
			return true
		})
		g.nodeOf[i] = m
	}
	g.tableStart[len(tables)] = NodeID(len(g.tableOf))
	g.prestige = make([]float64, len(g.tableOf))

	// Pass 2: resolve FK links into forward arcs and count, per referenced
	// node, the links arriving from each referencing relation (IN_{R}(v)).
	type link struct {
		from, to NodeID
		w        float64 // similarity s(R(from), R(to))
	}
	var links []link
	inByTable := make([]map[NodeID]int32, len(tables)) // [refTableIdx][v] = links into v from that table
	for i := range inByTable {
		inByTable[i] = make(map[NodeID]int32)
	}
	for i, ti := range tables {
		schema := ti.t.Schema()
		if len(schema.ForeignKeys) == 0 {
			continue
		}
		type fkInfo struct {
			col     int
			refTbl  int32
			ref     *sqldb.Table
			refType sqldb.Type
			w       float64
		}
		fks := make([]fkInfo, 0, len(schema.ForeignKeys))
		for _, fk := range schema.ForeignKeys {
			refID, ok := g.tableIDs[strings.ToLower(fk.RefTable)]
			if !ok {
				return nil, fmt.Errorf("graph: %s.%s references unknown table %s", schema.Name, fk.Column, fk.RefTable)
			}
			ref := db.Table(fk.RefTable)
			refCol := ref.Schema().Column(fk.RefColumn)
			if refCol == nil {
				return nil, fmt.Errorf("graph: %s.%s references missing column %s.%s", schema.Name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			w := fk.Weight
			if w <= 0 {
				w = 1
			}
			fks = append(fks, fkInfo{
				col:     ti.t.ColumnIndex(fk.Column),
				refTbl:  refID,
				ref:     ref,
				refType: refCol.Type,
				w:       w,
			})
		}
		fromTblIdx := i
		ti.t.Scan(func(rid sqldb.RID, row []sqldb.Value) bool {
			u := g.nodeOf[fromTblIdx][rid]
			for _, fk := range fks {
				v := row[fk.col]
				if v.IsNull() {
					continue
				}
				cv, err := v.Convert(fk.refType)
				if err != nil {
					continue
				}
				refRID := fk.ref.LookupPK([]sqldb.Value{cv})
				if refRID < 0 {
					continue // dangling reference: skip, the DB enforces FKs anyway
				}
				vNode := g.nodeOf[fk.refTbl][refRID]
				if vNode == u {
					continue // self-loop carries no proximity information
				}
				links = append(links, link{from: u, to: vNode, w: fk.w})
				inByTable[fromTblIdx][vNode]++
				g.prestige[vNode]++
			}
			return true
		})
	}

	// Pass 3: materialize arcs. Each FK link (u->v) contributes the forward
	// arc u->v with weight s, and the backward arc v->u with weight
	// s * IN_{R(u)}(v) (§2.2); parallel arcs are merged to the minimum
	// weight per Equation 1.
	arcs := make([]arc, 0, 2*len(links))
	for _, l := range links {
		arcs = append(arcs, arc{from: l.from, to: l.to, w: l.w})
		bw := l.w
		if opts.ScaleBackEdges {
			bw = l.w * float64(inByTable[g.tableOf[l.from]][l.to])
		}
		arcs = append(arcs, arc{from: l.to, to: l.from, w: bw})
	}
	g.finish(arcs)

	if opts.PrestigeDamping > 0 && opts.PrestigeDamping < 1 {
		pairs := make([]pair, len(links))
		for i, l := range links {
			pairs[i] = pair{from: l.from, to: l.to}
		}
		g.applyPageRankPrestige(opts.PrestigeDamping, opts.PrestigeIters, pairs)
	}
	return g, nil
}

type pair struct{ from, to NodeID }

// applyPageRankPrestige replaces raw indegree with a PageRank over the FK
// reference graph (links point from referencing to referenced tuple, so
// prestige flows toward referenced tuples, e.g. heavily cited papers).
// Scores are rescaled so the maximum matches the maximum raw indegree,
// keeping the §2.3 normalization meaningful.
func (g *Graph) applyPageRankPrestige(d float64, iters int, links []pair) {
	if iters <= 0 {
		iters = 20
	}
	n := g.NumNodes()
	if n == 0 {
		return
	}
	outDeg := make([]int32, n)
	for _, l := range links {
		outDeg[l.from]++
	}
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	for it := 0; it < iters; it++ {
		base := (1 - d) / float64(n)
		var leaked float64
		for i := range next {
			next[i] = base
		}
		for i, r := range rank {
			if outDeg[i] == 0 {
				leaked += d * r
			}
		}
		for _, l := range links {
			next[l.to] += d * rank[l.from] / float64(outDeg[l.from])
		}
		share := leaked / float64(n)
		for i := range next {
			next[i] += share
		}
		rank, next = next, rank
	}
	var maxRank, maxIn float64
	for i := range rank {
		if rank[i] > maxRank {
			maxRank = rank[i]
		}
		if g.prestige[i] > maxIn {
			maxIn = g.prestige[i]
		}
	}
	if maxRank == 0 {
		return
	}
	scale := maxIn / maxRank
	if scale == 0 {
		scale = 1 / maxRank
	}
	for i := range rank {
		g.prestige[i] = rank[i] * scale
	}
	g.maxNode = 0
	for _, p := range g.prestige {
		if p > g.maxNode {
			g.maxNode = p
		}
	}
}
