package graph

import (
	"math/rand"
	"sort"
	"testing"
)

// randomArcs generates arcs with heavy (from, to) collisions so the
// duplicate-merge path downstream of the sort is exercised too.
func randomArcs(n int, seed int64) []arc {
	rng := rand.New(rand.NewSource(seed))
	arcs := make([]arc, n)
	span := max(n/8, 1)
	for i := range arcs {
		arcs[i] = arc{
			from: NodeID(rng.Intn(span)),
			to:   NodeID(rng.Intn(span)),
			w:    float64(rng.Intn(16)) + 1,
		}
	}
	return arcs
}

// TestSortArcsMatchesSerial pins the parallel chunk-sort + pairwise-merge
// against the plain serial sort for shard counts around and beyond the
// chunk boundaries, including the below-threshold fallback.
func TestSortArcsMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 100, minParallelSortArcs - 1, minParallelSortArcs, minParallelSortArcs + 7919} {
		want := randomArcs(max(n, 1), 42)[:n]
		wantCopy := append([]arc(nil), want...)
		sort.Slice(wantCopy, func(i, j int) bool { return arcLess(wantCopy[i], wantCopy[j]) })
		for _, shards := range []int{1, 2, 3, 4, 8, 17} {
			got := append([]arc(nil), want...)
			sortArcs(got, shards)
			for i := range got {
				if got[i] != wantCopy[i] {
					t.Fatalf("n=%d shards=%d: arc %d = %+v, want %+v", n, shards, i, got[i], wantCopy[i])
				}
			}
		}
	}
}
