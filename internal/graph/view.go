package graph

import "github.com/banksdb/banks/internal/sqldb"

// View is the read interface of a data graph. Three implementations serve
// it with identical semantics: the built *Graph, the store-opened lazy
// *Graph (OpenLazy), and *Overlay — an immutable base composed with an
// in-memory delta of live mutations. Search (internal/core), answer
// rendering and the web UI all run against a View, so an engine can be
// swapped between batch-built, disk-resident and base+delta forms without
// touching the read path.
type View interface {
	// NumNodes returns the node-id space size: dense ids in [0, NumNodes).
	// An overlay may contain tombstoned ids inside the range; they are
	// unreachable (no arcs, no postings, NodeOf never returns them).
	NumNodes() int
	// NumArcs returns the directed arc count (forward + backward).
	NumArcs() int
	// NumTables returns the number of relations.
	NumTables() int
	// TableName returns the name of table id t.
	TableName(t int32) string
	// TableID returns the id for a table name (case-insensitive), or -1.
	TableID(name string) int32
	// TableOf returns the table id of node n.
	TableOf(n NodeID) int32
	// TableNameOf returns the table name of node n.
	TableNameOf(n NodeID) string
	// RIDOf returns the row id of node n within its table.
	RIDOf(n NodeID) sqldb.RID
	// NodeOf returns the live node for (table, rid), or NoNode.
	NodeOf(table string, rid sqldb.RID) NodeID
	// EachTableNode visits every live node of table t in ascending node-id
	// order (the metadata-match expansion order). Returning false from fn
	// stops the walk.
	EachTableNode(t int32, fn func(NodeID) bool)
	// Out returns the out-edges of n, sorted by target. Read-only.
	Out(n NodeID) []Edge
	// In returns the in-edges of n as (source, weight) pairs, sorted by
	// source. Read-only.
	In(n NodeID) []Edge
	// ArcWeight returns the weight of arc u->v, or -1 when absent.
	ArcWeight(u, v NodeID) float64
	// Prestige returns the node weight (reference indegree) of n.
	Prestige(n NodeID) float64
	// MinEdgeWeight returns w_min, the edge-score normalizer (§2.3).
	MinEdgeWeight() float64
	// MaxNodeWeight returns w_max, the node-score normalizer (§2.3).
	MaxNodeWeight() float64
	// MemoryFootprint estimates the resident bytes of the view.
	MemoryFootprint() int64
	// LazyErr reports the first deferred-load failure, or nil. Views with
	// no deferred state always return nil.
	LazyErr() error
}

var _ View = (*Graph)(nil)

// EachTableNode visits every node of table t in ascending id order; nodes
// of a built graph are contiguous per table, so this walks [lo, hi).
func (g *Graph) EachTableNode(t int32, fn func(NodeID) bool) {
	for n, hi := g.tableStart[t], g.tableStart[t+1]; n < hi; n++ {
		if !fn(n) {
			return
		}
	}
}
