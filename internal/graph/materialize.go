package graph

// Materialize folds any graph view — typically a base+delta Overlay —
// into a concrete CSR Graph, off to the side and without touching the
// view. It is how Compact turns the accumulated overlay into the next
// base graph while writers keep appending to a new delta: the view is an
// immutable snapshot, so no lock is needed during the fold.
//
// Nodes are renumbered table-major in EachTableNode order. For an
// overlay that is base-ascending followed by delta-insertion order,
// which is ascending RID per table (RIDs are monotonic and never
// reused) — the same order a from-scratch rebuild scans, so the
// materialized graph is numbered exactly like a rebuild. The returned
// remap maps old (view) node IDs to new ones; tombstoned nodes map to
// NoNode. When the view has no delta nodes and no tombstones the remap
// is the identity.
func Materialize(v View) (*Graph, []NodeID) {
	nt := v.NumTables()
	g := &Graph{
		tableNames: make([]string, nt),
		tableIDs:   make(map[string]int32, nt),
		tableStart: make([]NodeID, nt+1),
		nodeOf:     make([][]NodeID, nt),
	}
	remap := make([]NodeID, v.NumNodes())
	for i := range remap {
		remap[i] = NoNode
	}
	for t := int32(0); t < int32(nt); t++ {
		name := v.TableName(t)
		g.tableNames[t] = name
		g.tableIDs[lower(name)] = t
		g.tableStart[t] = NodeID(len(g.tableOf))
		v.EachTableNode(t, func(old NodeID) bool {
			n := NodeID(len(g.tableOf))
			remap[old] = n
			g.tableOf = append(g.tableOf, t)
			rid := v.RIDOf(old)
			g.ridOf = append(g.ridOf, rid)
			for int(rid) >= len(g.nodeOf[t]) {
				g.nodeOf[t] = append(g.nodeOf[t], NoNode)
			}
			g.nodeOf[t][rid] = n
			g.prestige = append(g.prestige, v.Prestige(old))
			return true
		})
	}
	g.tableStart[nt] = NodeID(len(g.tableOf))

	// Carry every live arc through the remap. finish sorts and merges, so
	// collection order does not matter, and it recomputes the w_min/w_max
	// normalizers from scratch — byte-identical to a rebuild's.
	arcs := make([]arc, 0, v.NumArcs())
	for old, n := range remap {
		if n == NoNode {
			continue
		}
		for _, e := range v.Out(NodeID(old)) {
			if to := remap[e.To]; to != NoNode {
				arcs = append(arcs, arc{from: n, to: to, w: e.W})
			}
		}
	}
	g.finish(arcs)
	return g, remap
}
