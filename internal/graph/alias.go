package graph

// In-place segment views. Store format v2 lays the CSR offset/arc arrays
// and the node-metadata RID/prestige arrays out as fixed-width
// little-endian records whose widths and field offsets match the Go
// in-memory types, 8-aligned within the segment. When the host is
// little-endian and the segment bytes land on an 8-byte boundary (mmap'd
// segments always do — the base is page-aligned and the store writer
// aligns segment offsets), the decoder aliases the arrays straight out of
// the segment instead of copying: the engine's structural data then lives
// in the kernel page cache, shared across processes, and is invisible to
// the Go GC. decodeArcs/decodeNodeMeta fall back to copy-decoding when
// any precondition fails, so the views are a pure optimization.

import (
	"unsafe"

	"github.com/banksdb/banks/internal/sqldb"
)

// hostLittleEndian reports whether multi-byte loads read v2 segment bytes
// in on-disk order.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// edgeLayoutMatches reports whether the in-memory Edge layout equals the
// on-disk 16-byte arc record {u32 target, u32 pad, f64 weight}.
const edgeLayoutMatches = unsafe.Sizeof(Edge{}) == 16 &&
	unsafe.Offsetof(Edge{}.To) == 0 && unsafe.Offsetof(Edge{}.W) == 8

// canAlias reports whether segment bytes p may be served in place as typed
// slices.
func canAlias(p []byte) bool {
	return hostLittleEndian && edgeLayoutMatches &&
		(len(p) == 0 || uintptr(unsafe.Pointer(&p[0]))%8 == 0)
}

func aliasInt32(p []byte, n int) []int32 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), n)
}

func aliasEdges(p []byte, n int) []Edge {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*Edge)(unsafe.Pointer(&p[0])), n)
}

func aliasRIDs(p []byte, n int) []sqldb.RID {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*sqldb.RID)(unsafe.Pointer(&p[0])), n)
}

func aliasFloat64(p []byte, n int) []float64 {
	if n == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&p[0])), n)
}
