package graph

// Restrict folds the kept subset of a graph view into a concrete CSR
// Graph: the partition-store builder of internal/cluster. It is
// Materialize with a node filter — nodes are renumbered table-major in
// EachTableNode order, skipping nodes keep rejects, and only arcs with
// both endpoints kept survive — plus one deliberate deviation: the §2.3
// score normalizers (w_min, w_max) are copied from the source view
// instead of being recomputed from the surviving arcs and prestige.
//
// That copy is what makes partitioned scoring exact. EScore divides by
// the graph's minimum arc weight and NScore by its maximum prestige; if
// each partition renormalized against its own extrema, the same
// connection tree would score differently depending on which partition
// held it. With the global normalizers carried over, any tree that lies
// entirely inside one partition scores bit-identically to the
// single-engine search — the store's graph-meta segment persists both
// values verbatim (EncodeMeta/OpenLazy), so the guarantee survives the
// partition-store round trip.
//
// The returned remap maps view node IDs to partition node IDs, NoNode
// for dropped nodes. Every table of the view exists in the restriction
// (possibly with an empty node range), so table IDs are stable across
// partitions.
func Restrict(v View, keep func(NodeID) bool) (*Graph, []NodeID) {
	nt := v.NumTables()
	g := &Graph{
		tableNames: make([]string, nt),
		tableIDs:   make(map[string]int32, nt),
		tableStart: make([]NodeID, nt+1),
		nodeOf:     make([][]NodeID, nt),
	}
	remap := make([]NodeID, v.NumNodes())
	for i := range remap {
		remap[i] = NoNode
	}
	for t := int32(0); t < int32(nt); t++ {
		name := v.TableName(t)
		g.tableNames[t] = name
		g.tableIDs[lower(name)] = t
		g.tableStart[t] = NodeID(len(g.tableOf))
		v.EachTableNode(t, func(old NodeID) bool {
			if !keep(old) {
				return true
			}
			n := NodeID(len(g.tableOf))
			remap[old] = n
			g.tableOf = append(g.tableOf, t)
			rid := v.RIDOf(old)
			g.ridOf = append(g.ridOf, rid)
			for int(rid) >= len(g.nodeOf[t]) {
				g.nodeOf[t] = append(g.nodeOf[t], NoNode)
			}
			g.nodeOf[t][rid] = n
			g.prestige = append(g.prestige, v.Prestige(old))
			return true
		})
	}
	g.tableStart[nt] = NodeID(len(g.tableOf))

	arcs := make([]arc, 0)
	for old, n := range remap {
		if n == NoNode {
			continue
		}
		for _, e := range v.Out(NodeID(old)) {
			if to := remap[e.To]; to != NoNode {
				arcs = append(arcs, arc{from: n, to: to, w: e.W})
			}
		}
	}
	g.finish(arcs)
	// Override the recomputed normalizers with the source view's global
	// ones — see the package comment above for why partitioned scoring
	// depends on this.
	g.minEdge = v.MinEdgeWeight()
	g.maxNode = v.MaxNodeWeight()
	return g, remap
}
