package graph

// Segment (de)serialization for the disk-resident engine store
// (internal/store). Where WriteTo/ReadGraph persist the whole graph as one
// stream, the store splits it into three independent segments:
//
//   - meta: table names, node ranges, counts and score normalizers — a few
//     hundred bytes, parsed eagerly at open so NumNodes/TableID/TableOf
//     work immediately;
//   - arcs: the CSR adjacency (forward and reverse), stored as the exact
//     in-memory arrays so loading is a bulk decode with no re-sorting;
//   - node metadata: per-node RIDs and prestige, from which the
//     rid->node maps are rebuilt.
//
// The arcs and node-metadata segments are fetched lazily through a
// SegmentSource on first touch (first Out/In for arcs, first RIDOf/
// Prestige/NodeOf for node metadata), so a store-opened graph costs almost
// nothing until a query actually expands it. Layouts live here because the
// fields are unexported; framing, checksums and caching belong to the
// store.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/banksdb/banks/internal/sqldb"
)

// SegmentSource supplies the lazily-loaded segment bytes of a store-opened
// graph. Implementations must be safe for concurrent use; the graph calls
// each method at most once (sync.Once-guarded) and validates the decoded
// payload itself.
type SegmentSource interface {
	ArcsSegment() ([]byte, error)
	NodeMetaSegment() ([]byte, error)
}

// lazyGraph is the not-yet-loaded state of a store-opened graph.
type lazyGraph struct {
	src      SegmentSource
	arcs     sync.Once
	nodeMeta sync.Once
	mu       sync.Mutex
	err      error
}

func (l *lazyGraph) setErr(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// LazyErr reports the first segment-load failure of a store-opened graph,
// or nil. After a failure the affected accessors serve empty (but valid)
// structures, so callers that need loud failures must check LazyErr at
// their operation boundary — banks.System does after every query.
func (g *Graph) LazyErr() error {
	if g.lazy == nil {
		return nil
	}
	g.lazy.mu.Lock()
	defer g.lazy.mu.Unlock()
	return g.lazy.err
}

// ensureArcs materializes the CSR adjacency of a lazily-opened graph. On
// load failure the adjacency stays empty and the error is sticky.
func (g *Graph) ensureArcs() {
	if g.lazy == nil {
		return
	}
	g.lazy.arcs.Do(func() {
		data, err := g.lazy.src.ArcsSegment()
		if err == nil {
			err = g.decodeArcs(data)
		}
		if err != nil {
			nn := g.NumNodes()
			g.fwdOff = make([]int32, nn+1)
			g.revOff = make([]int32, nn+1)
			g.fwdEdges, g.revEdges = nil, nil
			g.lazy.setErr(fmt.Errorf("graph: loading arcs segment: %w", err))
		}
	})
}

// ensureNodeMeta materializes RIDs, prestige and the rid->node maps of a
// lazily-opened graph.
func (g *Graph) ensureNodeMeta() {
	if g.lazy == nil {
		return
	}
	g.lazy.nodeMeta.Do(func() {
		data, err := g.lazy.src.NodeMetaSegment()
		if err == nil {
			err = g.decodeNodeMeta(data)
		}
		if err != nil {
			g.ridOf = make([]sqldb.RID, g.NumNodes())
			g.prestige = make([]float64, g.NumNodes())
			g.nodeOf = make([][]NodeID, len(g.tableNames))
			g.lazy.setErr(fmt.Errorf("graph: loading node metadata segment: %w", err))
		}
	})
}

// EncodeMeta serializes the meta segment: everything a store-opened graph
// needs before any segment load — tables, node ranges, counts and the §2.3
// score normalizers (which finish() would otherwise derive from the arcs).
func (g *Graph) EncodeMeta() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, uint64(len(g.tableNames)))
	for _, name := range g.tableNames {
		buf = binary.AppendUvarint(buf, uint64(len(name)))
		buf = append(buf, name...)
	}
	for _, s := range g.tableStart {
		buf = binary.AppendUvarint(buf, uint64(s))
	}
	buf = binary.AppendUvarint(buf, uint64(g.NumNodes()))
	buf = binary.AppendUvarint(buf, uint64(g.numArcs))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.minEdge))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g.maxNode))
	return buf
}

// Segment layout constants (store format v2). Both fixed-width segments
// are laid out so that, when the segment itself starts at an 8-byte file
// offset (the store writer guarantees it) every embedded array is
// naturally aligned — which is what lets an mmap-opened store alias the
// arrays in place instead of decoding them (see alias.go).
const (
	arcsHeaderSize     = 16 // u32 node count · u32 reserved · u64 arc count
	arcRecordSize      = 16 // u32 target · u32 reserved · f64 weight bits
	nodeMetaHeaderSize = 8  // u32 node count · u32 reserved
)

// csrBytes is the encoded size of one direction's CSR: u32 offsets padded
// to an 8-byte boundary, then fixed 16-byte arc records.
func csrBytes(nn int, narcs int) int {
	ob := 4 * (nn + 1)
	return (ob+7)&^7 + arcRecordSize*narcs
}

// EncodeArcs serializes the CSR adjacency segment of a fully-materialized
// graph (a lazily-opened one is materialized first): the 16-byte header,
// then per direction the u32 offsets, zero padding to an 8-byte boundary,
// and 16-byte arc records {u32 target, u32 reserved, f64 weight bits} —
// the in-memory layout of []Edge on little-endian hosts, so an aligned
// view of the segment serves Out/In with no decode step at all.
func (g *Graph) EncodeArcs() ([]byte, error) {
	g.ensureArcs()
	if err := g.LazyErr(); err != nil {
		return nil, err
	}
	nn := g.NumNodes()
	buf := make([]byte, 0, arcsHeaderSize+2*csrBytes(nn, g.numArcs))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nn))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.numArcs))
	appendCSR := func(buf []byte, off []int32, edges []Edge) []byte {
		for _, o := range off {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(o))
		}
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		for _, e := range edges {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(e.To))
			buf = binary.LittleEndian.AppendUint32(buf, 0)
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.W))
		}
		return buf
	}
	buf = appendCSR(buf, g.fwdOff, g.fwdEdges)
	buf = appendCSR(buf, g.revOff, g.revEdges)
	return buf, nil
}

// EncodeNodeMeta serializes the node metadata segment (RIDs + prestige):
// an 8-byte header, u64 RIDs, then f64 prestige bits — both arrays
// 8-aligned within the segment for in-place aliasing.
func (g *Graph) EncodeNodeMeta() ([]byte, error) {
	g.ensureNodeMeta()
	if err := g.LazyErr(); err != nil {
		return nil, err
	}
	nn := g.NumNodes()
	buf := make([]byte, 0, nodeMetaHeaderSize+16*nn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nn))
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	for _, rid := range g.ridOf {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(rid))
	}
	for _, p := range g.prestige {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p))
	}
	return buf, nil
}

// OpenLazy reconstructs a graph from its meta segment, deferring the arcs
// and node-metadata segments to src until first touch. The returned graph
// answers NumNodes, NumArcs, table and score-normalizer queries
// immediately; Out/In materialize the adjacency and RIDOf/Prestige/NodeOf
// the node metadata. Segment decoding is validated — corrupt bytes yield
// an error (at OpenLazy for the meta segment, via LazyErr for the lazy
// ones), never a panic.
func OpenLazy(meta []byte, src SegmentSource) (*Graph, error) {
	if src == nil {
		return nil, errors.New("graph: OpenLazy requires a segment source")
	}
	g := &Graph{tableIDs: make(map[string]int32), lazy: &lazyGraph{src: src}}
	d := metaDecoder{buf: meta}
	ntables := d.uvarint()
	if ntables > maxTables {
		return nil, fmt.Errorf("graph: meta segment claims %d tables", ntables)
	}
	for i := uint64(0); i < ntables && d.err == nil; i++ {
		name := d.str()
		g.tableIDs[lower(name)] = int32(len(g.tableNames))
		g.tableNames = append(g.tableNames, name)
	}
	g.tableStart = make([]NodeID, ntables+1)
	for i := range g.tableStart {
		g.tableStart[i] = NodeID(d.uvarint())
	}
	nnodes := d.uvarint()
	narcs := d.uvarint()
	g.minEdge = d.float()
	g.maxNode = d.float()
	if d.err != nil {
		return nil, fmt.Errorf("graph: meta segment: %w", d.err)
	}
	if nnodes > math.MaxInt32 || narcs > math.MaxInt32 {
		return nil, fmt.Errorf("graph: meta segment claims %d nodes, %d arcs", nnodes, narcs)
	}
	g.numArcs = int(narcs)
	// Validate the node ranges, then derive the node->table array: with it
	// resident, TableOf and the metadata-match expansion work without any
	// segment load.
	prev := NodeID(0)
	for i, s := range g.tableStart {
		if s < prev || uint64(s) > nnodes {
			return nil, fmt.Errorf("graph: meta segment: table range %d out of order", i)
		}
		prev = s
	}
	if ntables > 0 && uint64(g.tableStart[ntables]) != nnodes {
		return nil, fmt.Errorf("graph: meta segment: node ranges cover %d of %d nodes",
			g.tableStart[ntables], nnodes)
	}
	if ntables == 0 && nnodes != 0 {
		return nil, fmt.Errorf("graph: meta segment: %d nodes but no tables", nnodes)
	}
	g.tableOf = make([]int32, nnodes)
	for t := int32(0); t < int32(ntables); t++ {
		for n := g.tableStart[t]; n < g.tableStart[t+1]; n++ {
			g.tableOf[n] = t
		}
	}
	return g, nil
}

// maxTables bounds the table count trusted from a meta segment; far beyond
// any real schema, it keeps a corrupt count from driving allocations.
const maxTables = 1 << 20

// maxRIDFactor bounds how sparse the rid space may be relative to the node
// count: the rid->node maps allocate one entry per rid up to the table's
// maximum, so a corrupt 64-bit rid must not drive a huge allocation.
const maxRIDFactor = 256

// decodeArcs fills the CSR arrays from an arcs segment, validating every
// offset and target so corrupt bytes cannot produce a graph that panics
// under search. When the segment bytes are 8-aligned and the host layout
// matches (alias.go), the offset and edge arrays are served as views over
// the segment — zero copy, zero decode; otherwise they are decoded into
// fresh heap arrays. Either way the caller's bytes are never mutated.
func (g *Graph) decodeArcs(data []byte) error {
	nn := g.NumNodes()
	if len(data) < arcsHeaderSize {
		return errors.New("arcs segment truncated")
	}
	if int(binary.LittleEndian.Uint32(data)) != nn {
		return fmt.Errorf("arcs segment built for %d nodes, graph has %d",
			binary.LittleEndian.Uint32(data), nn)
	}
	narcs := int(binary.LittleEndian.Uint64(data[8:]))
	if narcs != g.numArcs {
		return fmt.Errorf("arcs segment holds %d arcs, meta claims %d", narcs, g.numArcs)
	}
	want := arcsHeaderSize + 2*csrBytes(nn, narcs)
	if len(data) != want {
		return fmt.Errorf("arcs segment is %d bytes, want %d", len(data), want)
	}
	alias := canAlias(data)
	p := data[arcsHeaderSize:]
	takeCSR := func() ([]int32, []Edge) {
		ob := 4 * (nn + 1)
		obPad := (ob + 7) &^ 7
		var off []int32
		var edges []Edge
		if alias {
			off = aliasInt32(p, nn+1)
			edges = aliasEdges(p[obPad:], narcs)
		} else {
			off = make([]int32, nn+1)
			for i := range off {
				off[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
			}
			edges = make([]Edge, narcs)
			q := p[obPad:]
			for i := range edges {
				edges[i] = Edge{
					To: NodeID(binary.LittleEndian.Uint32(q[arcRecordSize*i:])),
					W:  math.Float64frombits(binary.LittleEndian.Uint64(q[arcRecordSize*i+8:])),
				}
			}
		}
		p = p[obPad+arcRecordSize*narcs:]
		return off, edges
	}
	validateCSR := func(off []int32, edges []Edge) error {
		if off[0] != 0 || off[nn] != int32(narcs) {
			return fmt.Errorf("CSR offsets span [%d, %d), want [0, %d)", off[0], off[nn], narcs)
		}
		for i := 0; i < nn; i++ {
			if off[i] > off[i+1] {
				return fmt.Errorf("CSR offsets decrease at node %d", i)
			}
		}
		for i, e := range edges {
			if uint32(e.To) >= uint32(nn) {
				return fmt.Errorf("arc %d targets node %d of %d", i, e.To, nn)
			}
		}
		return nil
	}
	fwdOff, fwdEdges := takeCSR()
	revOff, revEdges := takeCSR()
	if err := validateCSR(fwdOff, fwdEdges); err != nil {
		return err
	}
	if err := validateCSR(revOff, revEdges); err != nil {
		return err
	}
	g.fwdOff, g.fwdEdges = fwdOff, fwdEdges
	g.revOff, g.revEdges = revOff, revEdges
	return nil
}

// decodeNodeMeta fills ridOf and prestige from a node-metadata segment and
// rebuilds the rid->node maps. Like decodeArcs, the flat arrays are
// aliased in place when alignment and host layout allow; the derived
// rid->node maps are always heap-built.
func (g *Graph) decodeNodeMeta(data []byte) error {
	nn := g.NumNodes()
	if len(data) < nodeMetaHeaderSize {
		return errors.New("node metadata segment truncated")
	}
	if int(binary.LittleEndian.Uint32(data)) != nn {
		return fmt.Errorf("node metadata segment built for %d nodes, graph has %d",
			binary.LittleEndian.Uint32(data), nn)
	}
	if len(data) != nodeMetaHeaderSize+16*nn {
		return fmt.Errorf("node metadata segment is %d bytes, want %d", len(data), nodeMetaHeaderSize+16*nn)
	}
	p := data[nodeMetaHeaderSize:]
	var ridOf []sqldb.RID
	var prestige []float64
	if canAlias(data) {
		ridOf = aliasRIDs(p, nn)
		prestige = aliasFloat64(p[8*nn:], nn)
	} else {
		ridOf = make([]sqldb.RID, nn)
		for n := 0; n < nn; n++ {
			ridOf[n] = sqldb.RID(binary.LittleEndian.Uint64(p[8*n:]))
		}
		prestige = make([]float64, nn)
		q := p[8*nn:]
		for n := 0; n < nn; n++ {
			prestige[n] = math.Float64frombits(binary.LittleEndian.Uint64(q[8*n:]))
		}
	}
	ridLimit := uint64(maxRIDFactor)*uint64(nn) + 1<<16
	maxRID := make([]int64, len(g.tableNames))
	for n, rid := range ridOf {
		if uint64(rid) >= ridLimit {
			return fmt.Errorf("node %d claims rid %d (limit %d)", n, uint64(rid), ridLimit)
		}
		if t := g.tableOf[n]; int64(rid) >= maxRID[t] {
			maxRID[t] = int64(rid) + 1
		}
	}
	nodeOf := make([][]NodeID, len(g.tableNames))
	for t := range nodeOf {
		m := make([]NodeID, maxRID[t])
		for i := range m {
			m[i] = NoNode
		}
		nodeOf[t] = m
	}
	for n := range ridOf {
		nodeOf[g.tableOf[n]][ridOf[n]] = NodeID(n)
	}
	g.ridOf, g.prestige, g.nodeOf = ridOf, prestige, nodeOf
	return nil
}

// metaDecoder is a tiny cursor over the meta segment with sticky errors.
type metaDecoder struct {
	buf []byte
	err error
}

func (d *metaDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = errors.New("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *metaDecoder) str() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<20 || n > uint64(len(d.buf)) {
		d.err = errors.New("string too long")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *metaDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.buf) < 8 {
		d.err = errors.New("truncated float")
		return 0
	}
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return f
}
