package graph

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// requireIdentical compares two graphs node by node under the SAME
// numbering — stronger than fingerprint parity, which is id-free.
// Materialize promises rebuild-identical numbering, so every structural
// accessor must agree at every node id.
func requireIdentical(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumArcs() != want.NumArcs() {
		t.Fatalf("%s: size mismatch: %d/%d nodes, %d/%d arcs",
			label, got.NumNodes(), want.NumNodes(), got.NumArcs(), want.NumArcs())
	}
	if got.MinEdgeWeight() != want.MinEdgeWeight() || got.MaxNodeWeight() != want.MaxNodeWeight() {
		t.Fatalf("%s: normalizer mismatch: minEdge %g/%g, maxNode %g/%g",
			label, got.MinEdgeWeight(), want.MinEdgeWeight(), got.MaxNodeWeight(), want.MaxNodeWeight())
	}
	for n := NodeID(0); int(n) < want.NumNodes(); n++ {
		if got.TableOf(n) != want.TableOf(n) || got.RIDOf(n) != want.RIDOf(n) {
			t.Fatalf("%s: node %d is %s/%d, want %s/%d", label, n,
				got.TableNameOf(n), got.RIDOf(n), want.TableNameOf(n), want.RIDOf(n))
		}
		if got.Prestige(n) != want.Prestige(n) {
			t.Fatalf("%s: node %d prestige %g, want %g", label, n, got.Prestige(n), want.Prestige(n))
		}
		if !reflect.DeepEqual(got.Out(n), want.Out(n)) {
			t.Fatalf("%s: node %d out-edges %v, want %v", label, n, got.Out(n), want.Out(n))
		}
		if !reflect.DeepEqual(got.In(n), want.In(n)) {
			t.Fatalf("%s: node %d in-edges %v, want %v", label, n, got.In(n), want.In(n))
		}
	}
}

// TestMaterializeMatchesRebuild folds overlays with inserts, rewires and
// deletes into concrete graphs and requires them to be numbered and
// weighted exactly like a from-scratch rebuild of the mutated database.
func TestMaterializeMatchesRebuild(t *testing.T) {
	for _, scale := range []bool{true, false} {
		t.Run(fmt.Sprintf("scale=%v", scale), func(t *testing.T) {
			db := newMutDB(t)
			m := newMutator(t, db, scale)

			check := func(label string) {
				t.Helper()
				view := m.d.Snapshot()
				g1, remap := Materialize(view)
				rebuilt, err := Build(db, &BuildOptions{ScaleBackEdges: scale})
				if err != nil {
					t.Fatal(err)
				}
				requireIdentical(t, g1, rebuilt, label)
				// The remap must send every live overlay node to the node
				// with the same identity, and only tombstones to NoNode.
				for old := NodeID(0); int(old) < view.NumNodes(); old++ {
					n := remap[old]
					if view.NodeOf(view.TableNameOf(old), view.RIDOf(old)) == NoNode {
						if n != NoNode {
							t.Fatalf("%s: tombstoned node %d remapped to %d", label, old, n)
						}
						continue
					}
					if n == NoNode {
						t.Fatalf("%s: live node %d dropped by the remap", label, old)
					}
					if g1.TableOf(n) != view.TableOf(old) || g1.RIDOf(n) != view.RIDOf(old) {
						t.Fatalf("%s: remap %d->%d changed identity", label, old, n)
					}
				}
			}

			// Identity overlay (no changes yet).
			check("empty delta")

			// Inserts, including a chain through a fresh author.
			m.apply(
				m.insert("author", sqldb.Text("a9"), sqldb.Text("Author 9")),
				m.insert("paper", sqldb.Text("p9"), sqldb.Text("Paper 9")),
				m.insert("writes", sqldb.Text("a9"), sqldb.Text("p9")),
			)
			check("after inserts")

			// FK rewire and a citation flip.
			writes := db.Table("writes")
			var wrid sqldb.RID
			writes.Scan(func(rid sqldb.RID, _ []sqldb.Value) bool { wrid = rid; return false })
			m.apply(m.update("writes", wrid, map[string]sqldb.Value{"pid": sqldb.Text("p9")}))
			check("after rewire")

			// Delete a citation, tombstoning a base node.
			cites := db.Table("cites")
			var crid sqldb.RID
			cites.Scan(func(rid sqldb.RID, _ []sqldb.Value) bool { crid = rid; return false })
			m.apply(m.del("cites", crid))
			check("after delete")

			// Delete a delta node (inserted above) again.
			var drid sqldb.RID
			writes.Scan(func(rid sqldb.RID, row []sqldb.Value) bool {
				if row[0].S == "a9" {
					drid = rid
					return false
				}
				return true
			})
			m.apply(m.del("writes", drid))
			check("after deleting a delta node")
		})
	}
}
