package graph

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// newMutDB builds the bibliography schema the overlay tests mutate: papers
// cite papers (a self-referencing relation), authors write papers.
func newMutDB(t *testing.T) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	mustCreate := func(s *sqldb.TableSchema) {
		t.Helper()
		if _, err := db.CreateTable(s); err != nil {
			t.Fatal(err)
		}
	}
	mustCreate(&sqldb.TableSchema{
		Name: "author",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeText},
			{Name: "name", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	mustCreate(&sqldb.TableSchema{
		Name: "paper",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeText},
			{Name: "title", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	mustCreate(&sqldb.TableSchema{
		Name: "writes",
		Columns: []sqldb.Column{
			{Name: "aid", Type: sqldb.TypeText},
			{Name: "pid", Type: sqldb.TypeText},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "aid", RefTable: "author", RefColumn: "id"},
			{Column: "pid", RefTable: "paper", RefColumn: "id"},
		},
	})
	mustCreate(&sqldb.TableSchema{
		Name: "cites",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeText},
			{Name: "src", Type: sqldb.TypeText},
			{Name: "dst", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "src", RefTable: "paper", RefColumn: "id"},
			{Column: "dst", RefTable: "paper", RefColumn: "id"},
		},
	})
	mustInsert := func(table string, vals ...sqldb.Value) {
		t.Helper()
		if _, err := db.Insert(table, vals); err != nil {
			t.Fatalf("insert %s: %v", table, err)
		}
	}
	for i := 0; i < 4; i++ {
		mustInsert("author", sqldb.Text(fmt.Sprintf("a%d", i)), sqldb.Text(fmt.Sprintf("Author %d", i)))
	}
	for i := 0; i < 5; i++ {
		mustInsert("paper", sqldb.Text(fmt.Sprintf("p%d", i)), sqldb.Text(fmt.Sprintf("Paper %d", i)))
	}
	mustInsert("writes", sqldb.Text("a0"), sqldb.Text("p0"))
	mustInsert("writes", sqldb.Text("a1"), sqldb.Text("p0"))
	mustInsert("writes", sqldb.Text("a1"), sqldb.Text("p1"))
	mustInsert("writes", sqldb.Text("a2"), sqldb.Text("p2"))
	mustInsert("cites", sqldb.Text("c0"), sqldb.Text("p1"), sqldb.Text("p0"))
	mustInsert("cites", sqldb.Text("c1"), sqldb.Text("p2"), sqldb.Text("p0"))
	mustInsert("cites", sqldb.Text("c2"), sqldb.Text("p2"), sqldb.Text("p1"))
	return db
}

// rowName renders a node as table/rid, the identity stable across rebuilds.
func rowName(v View, n NodeID) string {
	return fmt.Sprintf("%s/%d", v.TableNameOf(n), v.RIDOf(n))
}

// fingerprint renders the live graph in node-id-free form: per table (in id
// order), the visit order of EachTableNode, and per node its prestige and
// its out/in edge lists re-keyed by (table, rid). Two views with the same
// fingerprint answer every View query identically up to node-id naming.
func fingerprint(v View) string {
	var b strings.Builder
	edges := func(es []Edge) string {
		parts := make([]string, len(es))
		for i, e := range es {
			parts[i] = fmt.Sprintf("%s:%g", rowName(v, e.To), e.W)
		}
		sort.Strings(parts)
		return strings.Join(parts, ",")
	}
	live := 0
	for t := int32(0); t < int32(v.NumTables()); t++ {
		fmt.Fprintf(&b, "table %s:\n", v.TableName(t))
		v.EachTableNode(t, func(n NodeID) bool {
			live++
			fmt.Fprintf(&b, "  %s p=%g out=[%s] in=[%s]\n",
				rowName(v, n), v.Prestige(n), edges(v.Out(n)), edges(v.In(n)))
			return true
		})
	}
	fmt.Fprintf(&b, "live=%d arcs=%d minEdge=%g maxNode=%g\n",
		live, v.NumArcs(), v.MinEdgeWeight(), v.MaxNodeWeight())
	return b.String()
}

// mutator drives paired db+delta mutations the way the serving layer does:
// capture old targets, mutate the database, fold the change into the delta.
type mutator struct {
	t     *testing.T
	db    *sqldb.Database
	d     *Delta
	scale bool
}

func newMutator(t *testing.T, db *sqldb.Database, scale bool) *mutator {
	t.Helper()
	g, err := Build(db, &BuildOptions{ScaleBackEdges: scale})
	if err != nil {
		t.Fatal(err)
	}
	return &mutator{t: t, db: db, d: NewDelta(g, db, scale), scale: scale}
}

func (m *mutator) apply(changes ...RowChange) {
	m.t.Helper()
	if err := m.d.Apply(changes); err != nil {
		m.t.Fatalf("delta apply: %v", err)
	}
}

func (m *mutator) insert(table string, vals ...sqldb.Value) RowChange {
	m.t.Helper()
	rid, err := m.db.Insert(table, vals)
	if err != nil {
		m.t.Fatalf("insert %s: %v", table, err)
	}
	return RowChange{Op: RowInsert, Table: table, RID: rid}
}

func (m *mutator) update(table string, rid sqldb.RID, set map[string]sqldb.Value) RowChange {
	m.t.Helper()
	old, err := m.d.Targets(table, rid)
	if err != nil {
		m.t.Fatalf("targets %s/%d: %v", table, rid, err)
	}
	if err := m.db.Update(table, rid, set); err != nil {
		m.t.Fatalf("update %s/%d: %v", table, rid, err)
	}
	return RowChange{Op: RowUpdate, Table: table, RID: rid, OldTargets: old}
}

func (m *mutator) del(table string, rid sqldb.RID) RowChange {
	m.t.Helper()
	old, err := m.d.Targets(table, rid)
	if err != nil {
		m.t.Fatalf("targets %s/%d: %v", table, rid, err)
	}
	if err := m.db.Delete(table, rid); err != nil {
		m.t.Fatalf("delete %s/%d: %v", table, rid, err)
	}
	return RowChange{Op: RowDelete, Table: table, RID: rid, OldTargets: old}
}

// checkParity rebuilds the graph from scratch and compares fingerprints.
func (m *mutator) checkParity(label string) {
	m.t.Helper()
	rebuilt, err := Build(m.db, &BuildOptions{ScaleBackEdges: m.scale})
	if err != nil {
		m.t.Fatal(err)
	}
	want := fingerprint(rebuilt)
	got := fingerprint(m.d.Snapshot())
	if got != want {
		m.t.Fatalf("%s: overlay diverges from rebuild\n--- overlay ---\n%s--- rebuild ---\n%s", label, got, want)
	}
}

func TestOverlayParityScenarios(t *testing.T) {
	for _, scale := range []bool{true, false} {
		t.Run(fmt.Sprintf("scale=%v", scale), func(t *testing.T) {
			db := newMutDB(t)
			m := newMutator(t, db, scale)

			// Fresh delta, no changes: snapshot equals base equals rebuild.
			m.checkParity("pristine")

			// Insert a leaf row (no FKs touched).
			m.apply(m.insert("author", sqldb.Text("a9"), sqldb.Text("Fresh Author")))
			m.checkParity("insert leaf")

			// Insert a linking row: prestige and indegree scaling shift for
			// both targets, and sibling writers' in-edges rescale (the ring).
			m.apply(m.insert("writes", sqldb.Text("a9"), sqldb.Text("p0")))
			m.checkParity("insert link")

			// Rewire a link: writes rid 2 moves a1 from p1 to p3.
			m.apply(m.update("writes", 2, map[string]sqldb.Value{"pid": sqldb.Text("p3")}))
			m.checkParity("rewire link")

			// Text-only update: graph parity must hold even when folded.
			m.apply(m.update("paper", 1, map[string]sqldb.Value{"title": sqldb.Text("Retitled")}))
			m.checkParity("text-only update")

			// Self-referential citation: a paper citing itself adds only the
			// non-self half of its links.
			m.apply(m.insert("cites", sqldb.Text("c9"), sqldb.Text("p3"), sqldb.Text("p3")))
			m.checkParity("self citation")

			// NULL FK: no link for the null column.
			m.apply(m.insert("writes", sqldb.Null(), sqldb.Text("p4")))
			m.checkParity("null fk")

			// Delete a link row.
			m.apply(m.del("writes", 1))
			m.checkParity("delete link")

			// Delete a referenced row after removing its last reference.
			m.apply(m.del("cites", 2))
			m.checkParity("delete citation")

			// One batch mixing all three ops, including insert-then-delete
			// of the same fresh row.
			ins := m.insert("writes", sqldb.Text("a3"), sqldb.Text("p4"))
			doomed := m.insert("writes", sqldb.Text("a0"), sqldb.Text("p4"))
			upd := m.update("cites", 0, map[string]sqldb.Value{"dst": sqldb.Text("p4")})
			del := m.del("writes", doomed.RID)
			m.apply(ins, doomed, upd, del)
			m.checkParity("mixed batch")
		})
	}
}

func TestOverlayNodeLifecycle(t *testing.T) {
	db := newMutDB(t)
	m := newMutator(t, db, true)

	ins := m.insert("author", sqldb.Text("az"), sqldb.Text("Zeta"))
	m.apply(ins)
	o := m.d.Snapshot()
	n := o.NodeOf("author", ins.RID)
	if n == NoNode {
		t.Fatal("inserted row has no node")
	}
	if int(n) < o.base.NumNodes() {
		t.Fatalf("inserted node %d not in the delta id range", n)
	}
	if got := o.TableNameOf(n); got != "author" {
		t.Fatalf("TableNameOf = %q", got)
	}
	if got := o.RIDOf(n); got != ins.RID {
		t.Fatalf("RIDOf = %d, want %d", got, ins.RID)
	}

	m.apply(m.del("author", ins.RID))
	o2 := m.d.Snapshot()
	if o2.NodeOf("author", ins.RID) != NoNode {
		t.Fatal("deleted row still resolves")
	}
	if len(o2.Out(n)) != 0 || len(o2.In(n)) != 0 || o2.Prestige(n) != 0 {
		t.Fatal("tombstoned node still has adjacency or prestige")
	}
	seen := false
	o2.EachTableNode(o2.TableID("author"), func(x NodeID) bool {
		if x == n {
			seen = true
		}
		return true
	})
	if seen {
		t.Fatal("EachTableNode visited a tombstone")
	}
	// The earlier snapshot is immutable: the node is still live there.
	if o.NodeOf("author", ins.RID) != n {
		t.Fatal("published snapshot changed under a later Apply")
	}
}

func TestOverlaySnapshotImmutable(t *testing.T) {
	db := newMutDB(t)
	m := newMutator(t, db, true)
	m.apply(m.insert("writes", sqldb.Text("a3"), sqldb.Text("p3")))
	snap := m.d.Snapshot()
	before := fingerprint(snap)

	m.apply(m.update("writes", 0, map[string]sqldb.Value{"pid": sqldb.Text("p4")}))
	m.apply(m.del("writes", 3))
	m.apply(m.insert("author", sqldb.Text("aq"), sqldb.Text("Quux")))

	if got := fingerprint(snap); got != before {
		t.Fatalf("published snapshot mutated by later Applies:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	m.checkParity("after immutability churn")
}

func TestOverlayRejectsUnknownTable(t *testing.T) {
	db := newMutDB(t)
	m := newMutator(t, db, true)
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name:       "venue",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeText}},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	rid, err := db.Insert("venue", []sqldb.Value{sqldb.Text("v0")})
	if err != nil {
		t.Fatal(err)
	}
	err = m.d.Apply([]RowChange{{Op: RowInsert, Table: "venue", RID: rid}})
	if err == nil || !strings.Contains(err.Error(), "rebuild") {
		t.Fatalf("apply to unknown table: err = %v, want a rebuild hint", err)
	}
	// Validation failures are not sticky: the delta still works.
	if m.d.Err() != nil {
		t.Fatalf("validation failure stuck: %v", m.d.Err())
	}
	m.apply(m.insert("author", sqldb.Text("ax"), sqldb.Text("Extra")))
}

func TestOverlayValidation(t *testing.T) {
	db := newMutDB(t)
	m := newMutator(t, db, true)
	if err := m.d.Apply([]RowChange{{Op: RowUpdate, Table: "author", RID: 999}}); err == nil {
		t.Fatal("update of unknown row accepted")
	}
	if err := m.d.Apply([]RowChange{{Op: RowInsert, Table: "author", RID: 0}}); err == nil {
		t.Fatal("insert of already-tracked row accepted")
	}
	if err := m.d.Apply([]RowChange{{Op: RowOp(9), Table: "author", RID: 0}}); err == nil {
		t.Fatal("unknown op accepted")
	}
}

// TestOverlayRandomizedParity drives seeded random mutation batches and
// checks parity with a from-scratch rebuild after every batch.
func TestOverlayRandomizedParity(t *testing.T) {
	for _, scale := range []bool{true, false} {
		t.Run(fmt.Sprintf("scale=%v", scale), func(t *testing.T) {
			db := newMutDB(t)
			m := newMutator(t, db, scale)
			rng := rand.New(rand.NewSource(42))

			authors := []string{"a0", "a1", "a2", "a3"}
			papers := []string{"p0", "p1", "p2", "p3", "p4"}
			var liveWrites []sqldb.RID
			db.Table("writes").Scan(func(rid sqldb.RID, _ []sqldb.Value) bool {
				liveWrites = append(liveWrites, rid)
				return true
			})

			nextID := 0
			for batch := 0; batch < 12; batch++ {
				n := 1 + rng.Intn(4)
				changes := make([]RowChange, 0, n)
				for i := 0; i < n; i++ {
					switch op := rng.Intn(10); {
					case op < 4: // insert a link row
						a := authors[rng.Intn(len(authors))]
						p := papers[rng.Intn(len(papers))]
						ch := m.insert("writes", sqldb.Text(a), sqldb.Text(p))
						liveWrites = append(liveWrites, ch.RID)
						changes = append(changes, ch)
					case op < 6: // insert a fresh entity, sometimes linked next round
						id := fmt.Sprintf("x%d", nextID)
						nextID++
						if rng.Intn(2) == 0 {
							changes = append(changes, m.insert("author", sqldb.Text(id), sqldb.Text("A "+id)))
							authors = append(authors, id)
						} else {
							changes = append(changes, m.insert("paper", sqldb.Text(id), sqldb.Text("P "+id)))
							papers = append(papers, id)
						}
					case op < 8: // rewire a link
						if len(liveWrites) == 0 {
							continue
						}
						rid := liveWrites[rng.Intn(len(liveWrites))]
						set := map[string]sqldb.Value{"pid": sqldb.Text(papers[rng.Intn(len(papers))])}
						if rng.Intn(3) == 0 {
							set["aid"] = sqldb.Null()
						}
						changes = append(changes, m.update("writes", rid, set))
					default: // delete a link
						if len(liveWrites) == 0 {
							continue
						}
						k := rng.Intn(len(liveWrites))
						rid := liveWrites[k]
						liveWrites = append(liveWrites[:k], liveWrites[k+1:]...)
						changes = append(changes, m.del("writes", rid))
					}
				}
				if len(changes) == 0 {
					continue
				}
				m.apply(changes...)
				m.checkParity(fmt.Sprintf("batch %d", batch))
			}
			if m.d.Pending() == 0 {
				t.Fatal("randomized run applied nothing")
			}
		})
	}
}
