// Package graph implements the BANKS data graph of Section 2 of the paper:
// every tuple is a node, every foreign-key link from tuple u to tuple v
// yields a forward edge u->v with weight s(R(u),R(v)) and a backward edge
// v->u whose weight additionally scales with the indegree of v contributed
// by tuples of u's relation — the paper's fix for "hub" nodes collapsing
// proximity. Node prestige is the reference indegree, the paper's
// PageRank-inspired node weight.
//
// Nodes store only their table id and RID, matching the paper's observation
// that "the in-memory node representation need not store any attribute of
// the corresponding tuple other than the RID", which is what lets graphs of
// millions of tuples fit in memory.
package graph

import (
	"fmt"
	"runtime"

	"github.com/banksdb/banks/internal/sqldb"
)

// NodeID identifies a node of the data graph. IDs are dense from 0.
type NodeID int32

// NoNode is the invalid node id.
const NoNode NodeID = -1

// Edge is one directed arc to To with weight W (smaller = closer).
type Edge struct {
	To NodeID
	W  float64
}

// Graph is the immutable data graph built from a database snapshot.
type Graph struct {
	tableNames []string         // table id -> name
	tableIDs   map[string]int32 // lower(name) -> table id
	tableStart []NodeID         // nodes of table t are [tableStart[t], tableStart[t+1])

	tableOf []int32     // node -> table id
	ridOf   []sqldb.RID // node -> rid
	nodeOf  [][]NodeID  // table id -> rid -> node (NoNode for tombstones)

	// Adjacency is stored in CSR (compressed sparse row) form: the
	// out-edges of node n are fwdEdges[fwdOff[n]:fwdOff[n+1]], likewise for
	// the reverse direction. Two flat arrays per direction instead of a
	// slice-of-slices keeps the per-node overhead at 4 bytes and makes the
	// Dijkstra relaxation loop walk contiguous memory.
	fwdOff   []int32 // len NumNodes+1
	fwdEdges []Edge  // out-edges (both FK-forward and indegree-scaled backward arcs)
	revOff   []int32
	revEdges []Edge // in-edges: revEdges[revOff[v]:revOff[v+1]] = (u, w(u->v)) for every arc u->v

	prestige []float64 // node weight: FK reference indegree

	minEdge float64 // minimum arc weight (w_min in §2.3), 1 if no arcs
	maxNode float64 // maximum node weight (w_max in §2.3), 0 if no references
	numArcs int

	// lazy is non-nil for store-opened graphs (OpenLazy): the adjacency
	// and node-metadata arrays above are loaded from their segments on
	// first touch. nil for built graphs, making the ensure hooks in the
	// accessors a single predictable branch.
	lazy *lazyGraph
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.tableOf) }

// NumArcs returns the directed arc count (forward + backward).
func (g *Graph) NumArcs() int { return g.numArcs }

// NumTables returns the number of relations in the graph.
func (g *Graph) NumTables() int { return len(g.tableNames) }

// TableName returns the name of table id t.
func (g *Graph) TableName(t int32) string { return g.tableNames[t] }

// TableID returns the id for a table name (case-insensitive), or -1.
func (g *Graph) TableID(name string) int32 {
	if id, ok := g.tableIDs[lower(name)]; ok {
		return id
	}
	return -1
}

// TableOf returns the table id of node n.
func (g *Graph) TableOf(n NodeID) int32 { return g.tableOf[n] }

// TableNameOf returns the table name of node n.
func (g *Graph) TableNameOf(n NodeID) string { return g.tableNames[g.tableOf[n]] }

// RIDOf returns the row id of node n within its table.
func (g *Graph) RIDOf(n NodeID) sqldb.RID {
	g.ensureNodeMeta()
	return g.ridOf[n]
}

// NodeOf returns the node for (table, rid), or NoNode.
func (g *Graph) NodeOf(table string, rid sqldb.RID) NodeID {
	g.ensureNodeMeta()
	t := g.TableID(table)
	if t < 0 {
		return NoNode
	}
	m := g.nodeOf[t]
	if rid < 0 || int(rid) >= len(m) {
		return NoNode
	}
	return m[rid]
}

// NodesOfTable returns the (contiguous) node range [lo, hi) of table id t.
func (g *Graph) NodesOfTable(t int32) (lo, hi NodeID) {
	return g.tableStart[t], g.tableStart[t+1]
}

// Out returns the out-edges of n. Callers must not mutate the slice.
func (g *Graph) Out(n NodeID) []Edge {
	g.ensureArcs()
	return g.fwdEdges[g.fwdOff[n]:g.fwdOff[n+1]]
}

// In returns the in-edges of n as (source, weight-of-arc-into-n) pairs.
// Callers must not mutate the slice.
func (g *Graph) In(n NodeID) []Edge {
	g.ensureArcs()
	return g.revEdges[g.revOff[n]:g.revOff[n+1]]
}

// ArcWeight returns the weight of arc u->v, or -1 when absent.
func (g *Graph) ArcWeight(u, v NodeID) float64 {
	for _, e := range g.Out(u) {
		if e.To == v {
			return e.W
		}
	}
	return -1
}

// Prestige returns the node weight (reference indegree) of n.
func (g *Graph) Prestige(n NodeID) float64 {
	g.ensureNodeMeta()
	return g.prestige[n]
}

// MinEdgeWeight returns w_min, the normalizer for edge scores (§2.3).
func (g *Graph) MinEdgeWeight() float64 { return g.minEdge }

// MaxNodeWeight returns w_max, the normalizer for node scores (§2.3).
func (g *Graph) MaxNodeWeight() float64 { return g.maxNode }

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{%d tables, %d nodes, %d arcs}", g.NumTables(), g.NumNodes(), g.NumArcs())
}

// MemoryFootprint estimates the resident bytes of the graph structures; it
// backs the Section 5.2 space experiment (the paper measured ~120 MB for a
// 100K-node/300K-edge graph in Java).
func (g *Graph) MemoryFootprint() int64 {
	var b int64
	b += int64(len(g.tableOf)) * 4
	b += int64(len(g.ridOf)) * 8
	b += int64(len(g.prestige)) * 8
	for _, m := range g.nodeOf {
		b += int64(len(m)) * 4
	}
	b += int64(len(g.fwdEdges)+len(g.revEdges)) * 16
	b += int64(len(g.fwdOff)+len(g.revOff)) * 4
	return b
}

func lower(s string) string {
	// strings.ToLower without the import churn elsewhere in the package.
	b := []byte(s)
	changed := false
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
			changed = true
		}
	}
	if !changed {
		return s
	}
	return string(b)
}

// arc is a builder-internal directed edge.
type arc struct {
	from, to NodeID
	w        float64
}

// finish sorts/merges arcs (parallel arcs keep the minimum weight, Eq. 1 of
// the paper) and fills adjacency, reverse adjacency, and normalizers.
func (g *Graph) finish(arcs []arc) {
	g.finishShards(arcs, runtime.GOMAXPROCS(0))
}

// finishShards is finish with the arc sort spread over up to `shards`
// workers. The output is independent of the shard count: arcLess is a
// total order over (from, to, w), and the duplicate-arc merge keeps the
// minimum weight whichever sorted run it arrives from.
func (g *Graph) finishShards(arcs []arc, shards int) {
	sortArcs(arcs, shards)
	merged := arcs[:0]
	for _, a := range arcs {
		if n := len(merged); n > 0 && merged[n-1].from == a.from && merged[n-1].to == a.to {
			continue // keep the smaller weight (sorted ascending)
		}
		merged = append(merged, a)
	}
	nn := g.NumNodes()
	g.fwdOff = make([]int32, nn+1)
	g.revOff = make([]int32, nn+1)
	for _, a := range merged {
		g.fwdOff[a.from+1]++
		g.revOff[a.to+1]++
	}
	for n := 0; n < nn; n++ {
		g.fwdOff[n+1] += g.fwdOff[n]
		g.revOff[n+1] += g.revOff[n]
	}
	g.fwdEdges = make([]Edge, len(merged))
	g.revEdges = make([]Edge, len(merged))
	fc := make([]int32, nn)
	rc := make([]int32, nn)
	g.minEdge = 0
	for _, a := range merged {
		g.fwdEdges[g.fwdOff[a.from]+fc[a.from]] = Edge{To: a.to, W: a.w}
		fc[a.from]++
		g.revEdges[g.revOff[a.to]+rc[a.to]] = Edge{To: a.from, W: a.w}
		rc[a.to]++
		if g.minEdge == 0 || a.w < g.minEdge {
			g.minEdge = a.w
		}
	}
	if g.minEdge == 0 {
		g.minEdge = 1
	}
	g.numArcs = len(merged)
	g.maxNode = 0
	for _, p := range g.prestige {
		if p > g.maxNode {
			g.maxNode = p
		}
	}
}
