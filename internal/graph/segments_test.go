package graph

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// segmentsTestGraph builds a small graph with a foreign-key hub and a
// deleted row, exercising tombstoned rid maps.
func segmentsTestGraph(t *testing.T) (*sqldb.Database, *Graph) {
	t.Helper()
	db := newUniversityDB(t, 6)
	if err := db.Delete("student", 2); err != nil {
		t.Fatal(err)
	}
	return db, mustBuild(t, db, nil)
}

// memSource serves segments from memory, counting fetches.
type memSource struct {
	arcs, nodeMeta []byte
	arcsN, nodesN  int
	arcsErr        error
}

func (m *memSource) ArcsSegment() ([]byte, error) {
	m.arcsN++
	if m.arcsErr != nil {
		return nil, m.arcsErr
	}
	return m.arcs, nil
}

func (m *memSource) NodeMetaSegment() ([]byte, error) {
	m.nodesN++
	return m.nodeMeta, nil
}

func encodeSegments(t *testing.T, g *Graph) (meta []byte, src *memSource) {
	t.Helper()
	arcs, err := g.EncodeArcs()
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := g.EncodeNodeMeta()
	if err != nil {
		t.Fatal(err)
	}
	return g.EncodeMeta(), &memSource{arcs: arcs, nodeMeta: nodes}
}

func TestSegmentsRoundTripByteIdentical(t *testing.T) {
	_, g := segmentsTestGraph(t)
	meta, src := encodeSegments(t, g)

	lg, err := OpenLazy(meta, src)
	if err != nil {
		t.Fatal(err)
	}
	// Eager facts come from the meta segment alone.
	if src.arcsN != 0 || src.nodesN != 0 {
		t.Fatalf("OpenLazy touched segments: arcs=%d nodes=%d", src.arcsN, src.nodesN)
	}
	if lg.NumNodes() != g.NumNodes() || lg.NumArcs() != g.NumArcs() || lg.NumTables() != g.NumTables() {
		t.Fatalf("lazy graph shape %s, want %s", lg, g)
	}
	if lg.MinEdgeWeight() != g.MinEdgeWeight() || lg.MaxNodeWeight() != g.MaxNodeWeight() {
		t.Fatalf("normalizers differ: (%v,%v) vs (%v,%v)",
			lg.MinEdgeWeight(), lg.MaxNodeWeight(), g.MinEdgeWeight(), g.MaxNodeWeight())
	}
	for n := 0; n < g.NumNodes(); n++ {
		if lg.TableOf(NodeID(n)) != g.TableOf(NodeID(n)) {
			t.Fatalf("TableOf(%d) differs", n)
		}
	}

	// The strongest equivalence check available: the legacy serialization
	// walks every table, node, rid, prestige value and arc, so identical
	// WriteTo bytes mean identical graphs.
	var want, got bytes.Buffer
	if _, err := g.WriteTo(&want); err != nil {
		t.Fatal(err)
	}
	if _, err := lg.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		t.Fatal("lazy graph serializes differently from the built graph")
	}
	if src.arcsN != 1 || src.nodesN != 1 {
		t.Fatalf("segments fetched arcs=%d nodes=%d times, want once each", src.arcsN, src.nodesN)
	}
	// rid->node maps round-trip too.
	if lg.NodeOf("author", g.RIDOf(0)) != g.NodeOf("author", g.RIDOf(0)) {
		t.Fatal("NodeOf differs")
	}
	if err := lg.LazyErr(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenLazyArcsErrorIsStickyAndSafe(t *testing.T) {
	_, g := segmentsTestGraph(t)
	meta, src := encodeSegments(t, g)
	src.arcsErr = errors.New("disk gone")

	lg, err := OpenLazy(meta, src)
	if err != nil {
		t.Fatal(err)
	}
	// Accessors must not panic after a load failure: the adjacency is empty.
	for n := 0; n < lg.NumNodes(); n++ {
		if len(lg.Out(NodeID(n))) != 0 || len(lg.In(NodeID(n))) != 0 {
			t.Fatal("failed arcs load produced edges")
		}
	}
	if err := lg.LazyErr(); err == nil || !strings.Contains(err.Error(), "disk gone") {
		t.Fatalf("LazyErr = %v, want the load failure", err)
	}
	if src.arcsN != 1 {
		t.Fatalf("failed load retried %d times, want 1 (sticky)", src.arcsN)
	}
}

func TestDecodeRejectsCorruptSegments(t *testing.T) {
	_, g := segmentsTestGraph(t)
	meta, src := encodeSegments(t, g)

	corrupt := func(name string, mutate func(s *memSource)) {
		s := &memSource{
			arcs:     append([]byte(nil), src.arcs...),
			nodeMeta: append([]byte(nil), src.nodeMeta...),
		}
		mutate(s)
		lg, err := OpenLazy(meta, s)
		if err != nil {
			t.Fatalf("%s: OpenLazy failed on valid meta: %v", name, err)
		}
		lg.Out(0)
		lg.Prestige(0)
		if lg.LazyErr() == nil {
			t.Errorf("%s: corrupt segment accepted", name)
		}
	}
	corrupt("truncated arcs", func(s *memSource) { s.arcs = s.arcs[:len(s.arcs)-3] })
	corrupt("arc target out of range", func(s *memSource) {
		// First edge target lives after the header and the fwd offsets.
		off := 12 + 4*(g.NumNodes()+1)
		s.arcs[off] = 0xFF
		s.arcs[off+1] = 0xFF
		s.arcs[off+2] = 0xFF
		s.arcs[off+3] = 0x7F
	})
	corrupt("truncated node meta", func(s *memSource) { s.nodeMeta = s.nodeMeta[:7] })
	corrupt("huge rid", func(s *memSource) {
		for i := 4; i < 12; i++ {
			s.nodeMeta[i] = 0xFF
		}
	})

	// Corrupt meta segments fail at OpenLazy itself.
	if _, err := OpenLazy(meta[:len(meta)-5], src); err == nil {
		t.Error("truncated meta accepted")
	}
	if _, err := OpenLazy([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}, src); err == nil {
		t.Error("garbage meta accepted")
	}
}
