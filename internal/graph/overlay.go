// Overlay composes an immutable base graph with an in-memory delta of live
// row mutations, serving the full View interface without a rebuild. The
// delta is maintained by re-deriving the affected region of the graph from
// the (already mutated) database, mirroring the builder's semantics exactly:
//
//   - The "core" of a mutation — the mutated row's node plus every FK target
//     it referenced before or references after — gets its out-edges,
//     in-edges and prestige recomputed in full from the database.
//   - With indegree-scaled backward edges (§2.2), a mutation to a row of
//     relation R changes IN_R(v) for each target v, which rescales the
//     backward arcs v->u of *every other* row u of R referencing v. Those
//     "ring" nodes need only the single in-edge entry for source v patched,
//     and its exact merged weight is read off v's freshly recomputed
//     out-edge list — no recursive expansion.
//
// Everything else in the graph is untouched, so an Apply costs a handful of
// reference lookups per mutation instead of the full SQL->graph build.
package graph

import (
	"fmt"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
)

// RowOp is the kind of one row mutation.
type RowOp uint8

const (
	RowInsert RowOp = iota + 1
	RowUpdate
	RowDelete
)

func (op RowOp) String() string {
	switch op {
	case RowInsert:
		return "insert"
	case RowUpdate:
		return "update"
	case RowDelete:
		return "delete"
	}
	return fmt.Sprintf("RowOp(%d)", uint8(op))
}

// RowRef names one row.
type RowRef struct {
	Table string
	RID   sqldb.RID
}

// RowChange describes one already-applied database mutation for Delta.Apply.
// OldTargets must list the FK target rows the pre-mutation row version
// referenced (resolved the way the builder resolves links: non-NULL,
// convertible, non-dangling, non-self); it is empty for inserts. The new
// targets are read from the database, which already holds the final row.
type RowChange struct {
	Op         RowOp
	Table      string
	RID        sqldb.RID
	OldTargets []RowRef
}

// nodeKey identifies a row by table id and RID.
type nodeKey struct {
	t   int32
	rid sqldb.RID
}

// Overlay is an immutable base-plus-delta graph view. Snapshots are cheap
// (map headers are copied, patch payloads are shared) and safe to read
// concurrently while the owning Delta keeps mutating.
type Overlay struct {
	base      View
	baseNodes int

	// Delta nodes (inserted rows) occupy ids [baseNodes, NumNodes) in
	// insertion order, which is RID order per table — the same relative
	// order a rebuild would give them, so metadata-match expansion visits
	// identical row sequences.
	dTable   []int32
	dRID     []sqldb.RID
	dByTable [][]NodeID
	dNodeOf  map[nodeKey]NodeID

	tomb map[NodeID]struct{} // deleted nodes: no arcs, no lookups, skipped by walks

	// Patches are full replacements, always freshly allocated, sorted the
	// way the builder sorts them (out by target, in by source).
	patchOut      map[NodeID][]Edge
	patchIn       map[NodeID][]Edge
	patchPrestige map[NodeID]float64

	numArcs int
	minEdge float64
	maxNode float64
}

var _ View = (*Overlay)(nil)

// NumNodes returns the node-id space size, tombstones included.
func (o *Overlay) NumNodes() int { return o.baseNodes + len(o.dTable) }

// NumArcs returns the merged directed arc count.
func (o *Overlay) NumArcs() int { return o.numArcs }

// NumTables returns the relation count (fixed by the base).
func (o *Overlay) NumTables() int { return o.base.NumTables() }

// TableName returns the name of table id t.
func (o *Overlay) TableName(t int32) string { return o.base.TableName(t) }

// TableID returns the id for a table name, or -1.
func (o *Overlay) TableID(name string) int32 { return o.base.TableID(name) }

// TableOf returns the table id of node n.
func (o *Overlay) TableOf(n NodeID) int32 {
	if int(n) >= o.baseNodes {
		return o.dTable[int(n)-o.baseNodes]
	}
	return o.base.TableOf(n)
}

// TableNameOf returns the table name of node n.
func (o *Overlay) TableNameOf(n NodeID) string { return o.base.TableName(o.TableOf(n)) }

// RIDOf returns the row id of node n.
func (o *Overlay) RIDOf(n NodeID) sqldb.RID {
	if int(n) >= o.baseNodes {
		return o.dRID[int(n)-o.baseNodes]
	}
	return o.base.RIDOf(n)
}

// NodeOf returns the live node for (table, rid), or NoNode.
func (o *Overlay) NodeOf(table string, rid sqldb.RID) NodeID {
	t := o.base.TableID(table)
	if t < 0 {
		return NoNode
	}
	n := o.resolve(t, rid)
	if n == NoNode {
		return NoNode
	}
	if _, dead := o.tomb[n]; dead {
		return NoNode
	}
	return n
}

// resolve finds the node for (t, rid) including tombstoned ones.
func (o *Overlay) resolve(t int32, rid sqldb.RID) NodeID {
	if n, ok := o.dNodeOf[nodeKey{t, rid}]; ok {
		return n
	}
	return o.base.NodeOf(o.base.TableName(t), rid)
}

// EachTableNode visits the live nodes of table t in ascending id order:
// base nodes (RID order) first, then delta nodes (also RID order).
func (o *Overlay) EachTableNode(t int32, fn func(NodeID) bool) {
	stopped := false
	o.base.EachTableNode(t, func(n NodeID) bool {
		if _, dead := o.tomb[n]; dead {
			return true
		}
		if !fn(n) {
			stopped = true
			return false
		}
		return true
	})
	if stopped || int(t) >= len(o.dByTable) {
		return
	}
	for _, n := range o.dByTable[t] {
		if _, dead := o.tomb[n]; dead {
			continue
		}
		if !fn(n) {
			return
		}
	}
}

// Out returns the out-edges of n, sorted by target. Read-only.
func (o *Overlay) Out(n NodeID) []Edge {
	if e, ok := o.patchOut[n]; ok {
		return e
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.base.Out(n)
}

// In returns the in-edges of n, sorted by source. Read-only.
func (o *Overlay) In(n NodeID) []Edge {
	if e, ok := o.patchIn[n]; ok {
		return e
	}
	if int(n) >= o.baseNodes {
		return nil
	}
	return o.base.In(n)
}

// ArcWeight returns the weight of arc u->v, or -1 when absent.
func (o *Overlay) ArcWeight(u, v NodeID) float64 {
	out := o.Out(u)
	i := sort.Search(len(out), func(i int) bool { return out[i].To >= v })
	if i < len(out) && out[i].To == v {
		return out[i].W
	}
	return -1
}

// Prestige returns the node weight of n.
func (o *Overlay) Prestige(n NodeID) float64 {
	if p, ok := o.patchPrestige[n]; ok {
		return p
	}
	if int(n) >= o.baseNodes {
		return 0
	}
	return o.base.Prestige(n)
}

// MinEdgeWeight returns w_min over the composed graph.
func (o *Overlay) MinEdgeWeight() float64 { return o.minEdge }

// MaxNodeWeight returns w_max over the composed graph.
func (o *Overlay) MaxNodeWeight() float64 { return o.maxNode }

// MemoryFootprint estimates resident bytes: the base plus the delta's
// patches and node registry.
func (o *Overlay) MemoryFootprint() int64 {
	b := o.base.MemoryFootprint()
	b += int64(len(o.dTable)) * (4 + 8 + 4) // dTable + dRID + dByTable entry
	b += int64(len(o.dNodeOf)) * 16
	b += int64(len(o.tomb)) * 8
	for _, e := range o.patchOut {
		b += 8 + int64(len(e))*16
	}
	for _, e := range o.patchIn {
		b += 8 + int64(len(e))*16
	}
	b += int64(len(o.patchPrestige)) * 16
	return b
}

// LazyErr reports the base's first deferred-load failure.
func (o *Overlay) LazyErr() error { return o.base.LazyErr() }

// Base returns the view this overlay composes over.
func (o *Overlay) Base() View { return o.base }

// DeltaNodes returns how many nodes the delta added (tombstoned or not).
func (o *Overlay) DeltaNodes() int { return len(o.dTable) }

// Tombstones returns how many nodes the delta removed.
func (o *Overlay) Tombstones() int { return len(o.tomb) }

// fkInfo mirrors the builder's per-FK resolution cache.
type fkInfo struct {
	col     int
	colName string
	refTbl  int32
	ref     *sqldb.Table
	refType sqldb.Type
	w       float64
}

// Delta accumulates live row mutations over an immutable base graph. It is
// not safe for concurrent use; the owning system serializes Apply/Snapshot.
// Published Snapshots stay valid and immutable across later Applies.
type Delta struct {
	db    *sqldb.Database
	scale bool // BuildOptions.ScaleBackEdges of the base

	cur Overlay

	fks      [][]fkInfo
	fksBuilt bool

	// Aggregate multisets back the w_min / w_max normalizers under
	// removal: weightCount holds every merged arc weight (counted once per
	// arc, i.e. over out-edge lists), prestigeCount every live node's
	// prestige. Seeded from the base on first Apply (one O(N+E) sweep).
	weightCount   map[float64]int
	prestigeCount map[float64]int
	seeded        bool

	pending int
	err     error // sticky: a failed Apply leaves the delta unusable

	refsMemo map[nodeKey][]sqldb.Reference // per-Apply Referencing cache
}

// NewDelta prepares a mutation delta over base, which must have been built
// from db's current contents with ScaleBackEdges=scaleBackEdges and without
// prestige damping (damped prestige is global and cannot be patched
// incrementally; callers must rebuild instead).
func NewDelta(base View, db *sqldb.Database, scaleBackEdges bool) *Delta {
	d := &Delta{
		db:            db,
		scale:         scaleBackEdges,
		weightCount:   make(map[float64]int),
		prestigeCount: make(map[float64]int),
	}
	d.cur = Overlay{
		base:          base,
		baseNodes:     base.NumNodes(),
		dByTable:      make([][]NodeID, base.NumTables()),
		dNodeOf:       make(map[nodeKey]NodeID),
		tomb:          make(map[NodeID]struct{}),
		patchOut:      make(map[NodeID][]Edge),
		patchIn:       make(map[NodeID][]Edge),
		patchPrestige: make(map[NodeID]float64),
		numArcs:       base.NumArcs(),
		minEdge:       base.MinEdgeWeight(),
		maxNode:       base.MaxNodeWeight(),
	}
	return d
}

// Pending returns how many row changes have been applied since NewDelta.
func (d *Delta) Pending() int { return d.pending }

// Err returns the sticky failure state, or nil.
func (d *Delta) Err() error { return d.err }

// Snapshot publishes the current state as an immutable Overlay. The maps
// are copied (payload slices are shared; Apply never mutates a published
// slice in place), so the snapshot is safe for concurrent readers.
func (d *Delta) Snapshot() *Overlay {
	o := d.cur
	o.dTable = d.cur.dTable[:len(d.cur.dTable):len(d.cur.dTable)]
	o.dRID = d.cur.dRID[:len(d.cur.dRID):len(d.cur.dRID)]
	o.dByTable = make([][]NodeID, len(d.cur.dByTable))
	for i, s := range d.cur.dByTable {
		o.dByTable[i] = s[:len(s):len(s)]
	}
	o.dNodeOf = make(map[nodeKey]NodeID, len(d.cur.dNodeOf))
	for k, v := range d.cur.dNodeOf {
		o.dNodeOf[k] = v
	}
	o.tomb = make(map[NodeID]struct{}, len(d.cur.tomb))
	for k := range d.cur.tomb {
		o.tomb[k] = struct{}{}
	}
	o.patchOut = make(map[NodeID][]Edge, len(d.cur.patchOut))
	for k, v := range d.cur.patchOut {
		o.patchOut[k] = v
	}
	o.patchIn = make(map[NodeID][]Edge, len(d.cur.patchIn))
	for k, v := range d.cur.patchIn {
		o.patchIn[k] = v
	}
	o.patchPrestige = make(map[NodeID]float64, len(d.cur.patchPrestige))
	for k, v := range d.cur.patchPrestige {
		o.patchPrestige[k] = v
	}
	return &o
}

// Apply folds a batch of already-applied database mutations into the delta.
// The database must already hold the final state of every changed row, and
// the caller must not mutate it concurrently. Validation errors (unknown
// table, unknown row) are returned before any state changes; errors past
// validation indicate the delta no longer matches the database and are
// sticky — the caller must rebuild.
func (d *Delta) Apply(changes []RowChange) error {
	if d.err != nil {
		return d.err
	}
	if len(changes) == 0 {
		return nil
	}
	if err := d.ensureFKs(); err != nil {
		return err
	}

	// Validation pass: resolve every table and row before touching state.
	// willAdd simulates in-batch inserts so later changes can address them.
	willAdd := make(map[nodeKey]bool)
	for i := range changes {
		ch := &changes[i]
		t := d.cur.base.TableID(ch.Table)
		if t < 0 {
			return fmt.Errorf("graph: table %s is not in the base graph; a rebuild is required", ch.Table)
		}
		key := nodeKey{t, ch.RID}
		switch ch.Op {
		case RowInsert:
			if willAdd[key] || d.liveNode(t, ch.RID) != NoNode {
				return fmt.Errorf("graph: insert of %s rid %d: row already tracked", ch.Table, ch.RID)
			}
			willAdd[key] = true
		case RowUpdate, RowDelete:
			if !willAdd[key] && d.liveNode(t, ch.RID) == NoNode {
				return fmt.Errorf("graph: %s of %s rid %d: row not tracked", ch.Op, ch.Table, ch.RID)
			}
			if ch.Op == RowDelete {
				delete(willAdd, key)
			}
		default:
			return fmt.Errorf("graph: unknown row op %d", ch.Op)
		}
		for _, ref := range ch.OldTargets {
			if d.cur.base.TableID(ref.Table) < 0 {
				return fmt.Errorf("graph: old target table %s is not in the base graph", ref.Table)
			}
		}
	}

	d.seedAggregates()
	d.refsMemo = make(map[nodeKey][]sqldb.Reference)
	defer func() { d.refsMemo = nil }()

	// Registration pass: create delta nodes for inserts and tombstone
	// deletes, for the whole batch, before any target resolution. A batch
	// may legally order an insert that (in the final database state)
	// references another of the batch's inserts before that insert — the
	// per-row net batches Compact's tail fold produces do this routinely —
	// so every row must be registered before any row's targets resolve.
	deletedInBatch := make(map[nodeKey]bool)
	for i := range changes {
		if changes[i].Op == RowDelete {
			deletedInBatch[nodeKey{d.cur.base.TableID(changes[i].Table), changes[i].RID}] = true
		}
	}
	nodes := make([]NodeID, len(changes))
	for i := range changes {
		ch := &changes[i]
		t := d.cur.base.TableID(ch.Table)
		switch ch.Op {
		case RowInsert:
			nodes[i] = d.addNode(t, ch.RID)
		case RowUpdate, RowDelete:
			nodes[i] = d.node(t, ch.RID)
			if ch.Op == RowDelete {
				d.cur.tomb[nodes[i]] = struct{}{}
			}
		}
	}

	// Resolution pass: collect the core set plus, per target, the set of
	// relations whose IN contribution changed (the ring seeds). Rows
	// deleted in the same batch are already gone from the database, so
	// their inserts and updates skip new-target resolution — the delete's
	// OldTargets (captured pre-delete) names those targets instead.
	core := make(map[NodeID]struct{})
	ringSrc := make(map[NodeID]map[int32]struct{})
	mark := func(v NodeID, fromTable int32) {
		core[v] = struct{}{}
		m := ringSrc[v]
		if m == nil {
			m = make(map[int32]struct{})
			ringSrc[v] = m
		}
		m[fromTable] = struct{}{}
	}
	for i := range changes {
		ch := &changes[i]
		t := d.cur.base.TableID(ch.Table)
		n := nodes[i]
		core[n] = struct{}{}
		for _, ref := range ch.OldTargets {
			rt := d.cur.base.TableID(ref.Table)
			v := d.node(rt, ref.RID)
			if v == NoNode {
				return d.fail(fmt.Errorf("graph: old target %s rid %d has no node", ref.Table, ref.RID))
			}
			if v != n {
				mark(v, t)
			}
		}
		if ch.Op != RowDelete && !deletedInBatch[nodeKey{t, ch.RID}] {
			vs, err := d.targetsOf(t, ch.RID, n)
			if err != nil {
				return d.fail(err)
			}
			for _, v := range vs {
				mark(v, t)
			}
		}
	}

	// Core pass: full recompute of every affected node from the database.
	coreList := make([]NodeID, 0, len(core))
	for n := range core {
		coreList = append(coreList, n)
	}
	sort.Slice(coreList, func(i, j int) bool { return coreList[i] < coreList[j] })
	for _, n := range coreList {
		out, in, prestige, err := d.recompute(n)
		if err != nil {
			return d.fail(err)
		}
		d.patchNode(n, out, in, prestige)
	}

	// Ring pass: rescaled backward arcs v->u land in the in-edge lists of
	// untouched referencing rows; patch just that entry. Without indegree
	// scaling backward weights do not depend on IN, so there is no ring.
	if d.scale {
		ringList := make([]NodeID, 0, len(ringSrc))
		for v := range ringSrc {
			ringList = append(ringList, v)
		}
		sort.Slice(ringList, func(i, j int) bool { return ringList[i] < ringList[j] })
		for _, v := range ringList {
			if _, dead := d.cur.tomb[v]; dead {
				continue
			}
			tables := ringSrc[v]
			for _, ref := range d.refs(d.cur.TableOf(v), d.cur.RIDOf(v)) {
				rt := d.cur.base.TableID(ref.Table)
				if _, changed := tables[rt]; !changed {
					continue
				}
				for _, rid := range ref.RIDs {
					u := d.liveNode(rt, rid)
					if u == NoNode || u == v {
						continue
					}
					if _, isCore := core[u]; isCore {
						continue
					}
					if err := d.patchRingIn(u, v); err != nil {
						return d.fail(err)
					}
				}
			}
		}
	}

	d.refreshNormalizers()
	d.pending += len(changes)
	return nil
}

func (d *Delta) fail(err error) error {
	d.err = err
	return err
}

// node resolves (t, rid) to a node, tombstoned or not.
func (d *Delta) node(t int32, rid sqldb.RID) NodeID {
	return d.cur.resolve(t, rid)
}

// liveNode resolves (t, rid) to a non-tombstoned node, or NoNode.
func (d *Delta) liveNode(t int32, rid sqldb.RID) NodeID {
	n := d.cur.resolve(t, rid)
	if n == NoNode {
		return NoNode
	}
	if _, dead := d.cur.tomb[n]; dead {
		return NoNode
	}
	return n
}

// addNode registers a fresh delta node for (t, rid).
func (d *Delta) addNode(t int32, rid sqldb.RID) NodeID {
	n := NodeID(d.cur.baseNodes + len(d.cur.dTable))
	d.cur.dTable = append(d.cur.dTable, t)
	d.cur.dRID = append(d.cur.dRID, rid)
	d.cur.dByTable[t] = append(d.cur.dByTable[t], n)
	d.cur.dNodeOf[nodeKey{t, rid}] = n
	d.prestigeCount[0]++ // live with no references yet; patched next
	return n
}

// ensureFKs resolves every table's FK metadata against the base graph once.
func (d *Delta) ensureFKs() error {
	if d.fksBuilt {
		return nil
	}
	nt := d.cur.base.NumTables()
	fks := make([][]fkInfo, nt)
	for t := int32(0); t < int32(nt); t++ {
		name := d.cur.base.TableName(t)
		tbl := d.db.Table(name)
		if tbl == nil {
			return fmt.Errorf("graph: table %s is in the base graph but not the database; a rebuild is required", name)
		}
		schema := tbl.Schema()
		for _, fk := range schema.ForeignKeys {
			refID := d.cur.base.TableID(fk.RefTable)
			if refID < 0 {
				return fmt.Errorf("graph: %s.%s references table %s unknown to the base graph; a rebuild is required", name, fk.Column, fk.RefTable)
			}
			ref := d.db.Table(fk.RefTable)
			refCol := ref.Schema().Column(fk.RefColumn)
			if refCol == nil {
				return fmt.Errorf("graph: %s.%s references missing column %s.%s", name, fk.Column, fk.RefTable, fk.RefColumn)
			}
			w := fk.Weight
			if w <= 0 {
				w = 1
			}
			fks[t] = append(fks[t], fkInfo{
				col:     tbl.ColumnIndex(fk.Column),
				colName: fk.Column,
				refTbl:  refID,
				ref:     ref,
				refType: refCol.Type,
				w:       w,
			})
		}
	}
	d.fks = fks
	d.fksBuilt = true
	return nil
}

// refs returns db.Referencing for (t, rid), memoized for the current Apply.
func (d *Delta) refs(t int32, rid sqldb.RID) []sqldb.Reference {
	key := nodeKey{t, rid}
	if rs, ok := d.refsMemo[key]; ok {
		return rs
	}
	rs := d.db.Referencing(d.cur.base.TableName(t), rid)
	d.refsMemo[key] = rs
	return rs
}

// fkWeight returns the edge weight of the FK (table t, column col).
func (d *Delta) fkWeight(t int32, col string) (float64, error) {
	for _, fk := range d.fks[t] {
		if strings.EqualFold(fk.colName, col) {
			return fk.w, nil
		}
	}
	return 0, fmt.Errorf("graph: no foreign key on %s.%s", d.cur.base.TableName(t), col)
}

// Targets resolves the FK target rows the database's current version of
// (table, rid) references, with the builder's link semantics (NULL,
// unconvertible, dangling and self references are skipped). Callers capture
// a row's targets with this before mutating it, then pass the result as
// RowChange.OldTargets.
func (d *Delta) Targets(table string, rid sqldb.RID) ([]RowRef, error) {
	if err := d.ensureFKs(); err != nil {
		return nil, err
	}
	t := d.cur.base.TableID(table)
	if t < 0 {
		return nil, fmt.Errorf("graph: table %s is not in the base graph; a rebuild is required", table)
	}
	fks := d.fks[t]
	if len(fks) == 0 {
		return nil, nil
	}
	row := d.db.Table(d.cur.base.TableName(t)).Row(rid)
	if row == nil {
		return nil, fmt.Errorf("graph: no row %s rid %d", table, rid)
	}
	var out []RowRef
	for _, fk := range fks {
		v := row[fk.col]
		if v.IsNull() {
			continue
		}
		cv, err := v.Convert(fk.refType)
		if err != nil {
			continue
		}
		refRID := fk.ref.LookupPK([]sqldb.Value{cv})
		if refRID < 0 {
			continue
		}
		if fk.refTbl == t && refRID == rid {
			continue // self reference: no link
		}
		out = append(out, RowRef{Table: fk.ref.Name(), RID: refRID})
	}
	return out, nil
}

// outLink is one resolved FK link n->v with similarity w.
type outLink struct {
	v NodeID
	w float64
}

// inLink is one resolved FK link u->n with similarity w, from table t.
type inLink struct {
	u NodeID
	w float64
	t int32
}

// targetsOf resolves the FK target nodes of the current row (t, rid),
// excluding self, exactly as the builder's pass C does.
func (d *Delta) targetsOf(t int32, rid sqldb.RID, self NodeID) ([]NodeID, error) {
	links, err := d.linksOut(t, rid, self)
	if err != nil {
		return nil, err
	}
	vs := make([]NodeID, 0, len(links))
	for _, l := range links {
		vs = append(vs, l.v)
	}
	return vs, nil
}

// linksOut resolves the row's outgoing FK links from the final database
// state. NULL, unconvertible, dangling and self references are skipped,
// matching the builder.
func (d *Delta) linksOut(t int32, rid sqldb.RID, self NodeID) ([]outLink, error) {
	fks := d.fks[t]
	if len(fks) == 0 {
		return nil, nil
	}
	row := d.db.Table(d.cur.base.TableName(t)).Row(rid)
	if row == nil {
		return nil, fmt.Errorf("graph: row %s rid %d vanished from the database", d.cur.base.TableName(t), rid)
	}
	var out []outLink
	for _, fk := range fks {
		v := row[fk.col]
		if v.IsNull() {
			continue
		}
		cv, err := v.Convert(fk.refType)
		if err != nil {
			continue
		}
		refRID := fk.ref.LookupPK([]sqldb.Value{cv})
		if refRID < 0 {
			continue
		}
		vn := d.liveNode(fk.refTbl, refRID)
		if vn == NoNode {
			return nil, fmt.Errorf("graph: %s rid %d references untracked row %s rid %d", d.cur.base.TableName(t), rid, fk.ref.Name(), refRID)
		}
		if vn == self {
			continue
		}
		out = append(out, outLink{v: vn, w: fk.w})
	}
	return out, nil
}

// linksIn resolves the links into node n from the final database state via
// db.Referencing, excluding self references.
func (d *Delta) linksIn(t int32, rid sqldb.RID, self NodeID) ([]inLink, error) {
	var in []inLink
	for _, ref := range d.refs(t, rid) {
		rt := d.cur.base.TableID(ref.Table)
		if rt < 0 {
			return nil, fmt.Errorf("graph: referencing table %s is not in the base graph; a rebuild is required", ref.Table)
		}
		w, err := d.fkWeight(rt, ref.Column)
		if err != nil {
			return nil, err
		}
		for _, urid := range ref.RIDs {
			u := d.liveNode(rt, urid)
			if u == NoNode {
				return nil, fmt.Errorf("graph: untracked row %s rid %d references %s rid %d", ref.Table, urid, d.cur.base.TableName(t), rid)
			}
			if u == self {
				continue
			}
			in = append(in, inLink{u: u, w: w, t: rt})
		}
	}
	return in, nil
}

// countLinksFrom returns IN_{from}(target): how many FK links arrive at
// target from rows of relation `from`, excluding target's own row.
func (d *Delta) countLinksFrom(from int32, target NodeID) int {
	tt := d.cur.TableOf(target)
	trid := d.cur.RIDOf(target)
	cnt := 0
	for _, ref := range d.refs(tt, trid) {
		if d.cur.base.TableID(ref.Table) != from {
			continue
		}
		for _, rid := range ref.RIDs {
			if from == tt && rid == trid {
				continue // self link carries no arc
			}
			cnt++
		}
	}
	return cnt
}

// recompute derives node n's merged out-edges, in-edges and prestige from
// the database, with exactly the builder's semantics. Tombstoned nodes get
// empty adjacency and zero prestige.
func (d *Delta) recompute(n NodeID) (out, in []Edge, prestige float64, err error) {
	if _, dead := d.cur.tomb[n]; dead {
		return nil, nil, 0, nil
	}
	t := d.cur.TableOf(n)
	rid := d.cur.RIDOf(n)
	lo, err := d.linksOut(t, rid, n)
	if err != nil {
		return nil, nil, 0, err
	}
	li, err := d.linksIn(t, rid, n)
	if err != nil {
		return nil, nil, 0, err
	}
	prestige = float64(len(li))

	// Out: forward arcs n->v per FK link, plus backward arcs n->u per link
	// u->n, scaled by IN_{R(u)}(n) (computable from li itself).
	var inBy map[int32]int
	if d.scale && len(li) > 0 {
		inBy = make(map[int32]int)
		for _, l := range li {
			inBy[l.t]++
		}
	}
	arcs := make([]Edge, 0, len(lo)+len(li))
	for _, l := range lo {
		arcs = append(arcs, Edge{To: l.v, W: l.w})
	}
	for _, l := range li {
		w := l.w
		if d.scale {
			w *= float64(inBy[l.t])
		}
		arcs = append(arcs, Edge{To: l.u, W: w})
	}
	out = mergeEdges(arcs)

	// In: forward arcs u->n per link u->n, plus backward arcs v->n per link
	// n->v, scaled by IN_{R(n)}(v) (a Referencing sweep of each target).
	arcs = make([]Edge, 0, len(lo)+len(li))
	for _, l := range li {
		arcs = append(arcs, Edge{To: l.u, W: l.w})
	}
	for _, l := range lo {
		w := l.w
		if d.scale {
			w *= float64(d.countLinksFrom(t, l.v))
		}
		arcs = append(arcs, Edge{To: l.v, W: w})
	}
	in = mergeEdges(arcs)
	return out, in, prestige, nil
}

// mergeEdges sorts by target and keeps the minimum weight per target
// (Equation 1 of the paper), mirroring the builder's arc merge.
func mergeEdges(arcs []Edge) []Edge {
	if len(arcs) == 0 {
		return nil
	}
	sort.Slice(arcs, func(i, j int) bool {
		if arcs[i].To != arcs[j].To {
			return arcs[i].To < arcs[j].To
		}
		return arcs[i].W < arcs[j].W
	})
	out := arcs[:0]
	for _, a := range arcs {
		if n := len(out); n > 0 && out[n-1].To == a.To {
			continue
		}
		out = append(out, a)
	}
	return out
}

// patchNode installs freshly recomputed adjacency for n, updating the arc
// count and the normalizer multisets from the diff against n's current
// (pre-patch) state.
func (d *Delta) patchNode(n NodeID, out, in []Edge, prestige float64) {
	old := d.cur.Out(n)
	for _, e := range old {
		d.dropWeight(e.W)
	}
	for _, e := range out {
		d.weightCount[e.W]++
	}
	d.cur.numArcs += len(out) - len(old)

	oldP := d.cur.Prestige(n)
	d.dropPrestige(oldP)
	if _, dead := d.cur.tomb[n]; !dead {
		d.prestigeCount[prestige]++
	}

	d.cur.patchOut[n] = out
	d.cur.patchIn[n] = in
	d.cur.patchPrestige[n] = prestige
}

// patchRingIn updates the single in-edge entry (source v) of ring node u to
// the merged weight of arc v->u, read from v's freshly recomputed out-edge
// list. An unexpected shape (no such arc or entry) falls back to a full
// recompute of u — correct regardless of how the mismatch arose.
func (d *Delta) patchRingIn(u, v NodeID) error {
	vOut := d.cur.Out(v)
	i := sort.Search(len(vOut), func(i int) bool { return vOut[i].To >= u })
	in := d.cur.In(u)
	j := sort.Search(len(in), func(j int) bool { return in[j].To >= v })
	if i >= len(vOut) || vOut[i].To != u || j >= len(in) || in[j].To != v {
		out, inFull, prestige, err := d.recompute(u)
		if err != nil {
			return err
		}
		d.patchNode(u, out, inFull, prestige)
		return nil
	}
	if in[j].W == vOut[i].W {
		return nil
	}
	cp := append([]Edge(nil), in...)
	cp[j].W = vOut[i].W
	d.cur.patchIn[u] = cp
	return nil
}

func (d *Delta) dropWeight(w float64) {
	if c := d.weightCount[w] - 1; c > 0 {
		d.weightCount[w] = c
	} else {
		delete(d.weightCount, w)
	}
}

func (d *Delta) dropPrestige(p float64) {
	if c := d.prestigeCount[p] - 1; c > 0 {
		d.prestigeCount[p] = c
	} else {
		delete(d.prestigeCount, p)
	}
}

// seedAggregates fills the normalizer multisets from the base: one sweep
// over every live node's out-edges and prestige. Runs once per Delta; on a
// store-opened base this faults the adjacency segments in.
func (d *Delta) seedAggregates() {
	if d.seeded {
		return
	}
	d.seeded = true
	base := d.cur.base
	for t := int32(0); t < int32(base.NumTables()); t++ {
		base.EachTableNode(t, func(n NodeID) bool {
			for _, e := range base.Out(n) {
				d.weightCount[e.W]++
			}
			d.prestigeCount[base.Prestige(n)]++
			return true
		})
	}
}

// refreshNormalizers recomputes w_min / w_max from the multisets; the key
// spaces (distinct arc weights, distinct prestige values) are small.
func (d *Delta) refreshNormalizers() {
	minEdge := 0.0
	for w := range d.weightCount {
		if minEdge == 0 || w < minEdge {
			minEdge = w
		}
	}
	if minEdge == 0 {
		minEdge = 1 // no arcs: the builder's convention
	}
	maxNode := 0.0
	for p := range d.prestigeCount {
		if p > maxNode {
			maxNode = p
		}
	}
	d.cur.minEdge = minEdge
	d.cur.maxNode = maxNode
}
