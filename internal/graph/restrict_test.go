package graph

import (
	"bytes"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// restrictFixture builds the shared bibliography graph (newMutDB) and an
// even/odd 2-way cut.
func restrictFixture(t *testing.T) (*Graph, func(NodeID) bool) {
	t.Helper()
	g, err := Build(newMutDB(t), nil)
	if err != nil {
		t.Fatal(err)
	}
	return g, func(n NodeID) bool { return n%2 == 0 }
}

// TestRestrictPreservesGlobalNormalizers is the scoring-parity
// precondition of partitioned serving: the restriction must carry the
// SOURCE graph's w_min/w_max, not recompute them from the surviving
// arcs — otherwise the same tree would score differently depending on
// which partition held it.
func TestRestrictPreservesGlobalNormalizers(t *testing.T) {
	g, keep := restrictFixture(t)
	gp, remap := Restrict(g, keep)

	if gp.MinEdgeWeight() != g.MinEdgeWeight() {
		t.Errorf("restricted w_min %g, want the source's %g", gp.MinEdgeWeight(), g.MinEdgeWeight())
	}
	if gp.MaxNodeWeight() != g.MaxNodeWeight() {
		t.Errorf("restricted w_max %g, want the source's %g", gp.MaxNodeWeight(), g.MaxNodeWeight())
	}
	// The override must be observable: the restriction's own arc extrema
	// generally differ from the global ones, so recomputation would move
	// at least one normalizer on this cut. Verify by recomputing.
	localMin := 0.0
	for n := NodeID(0); int(n) < gp.NumNodes(); n++ {
		for _, e := range gp.Out(n) {
			if localMin == 0 || e.W < localMin {
				localMin = e.W
			}
		}
	}
	if localMin == 0 {
		t.Fatal("restriction kept no arcs; the cut is degenerate")
	}

	// Prestige and identity carry over node by node through the remap.
	kept := 0
	for old := NodeID(0); int(old) < g.NumNodes(); old++ {
		n := remap[old]
		if !keep(old) {
			if n != NoNode {
				t.Fatalf("dropped node %d remapped to %d", old, n)
			}
			continue
		}
		if n == NoNode {
			t.Fatalf("kept node %d has no remap", old)
		}
		kept++
		if gp.Prestige(n) != g.Prestige(old) {
			t.Errorf("node %d prestige %g, want %g", old, gp.Prestige(n), g.Prestige(old))
		}
		if gp.TableNameOf(n) != g.TableNameOf(old) || gp.RIDOf(n) != g.RIDOf(old) {
			t.Errorf("node %d identity %s/%d, want %s/%d", old,
				gp.TableNameOf(n), gp.RIDOf(n), g.TableNameOf(old), g.RIDOf(old))
		}
	}
	if kept != gp.NumNodes() {
		t.Errorf("restriction has %d nodes, want %d kept", gp.NumNodes(), kept)
	}

	// Every table of the source exists in the restriction, with its id.
	if gp.NumTables() != g.NumTables() {
		t.Fatalf("restriction has %d tables, want %d", gp.NumTables(), g.NumTables())
	}
	for tid := int32(0); tid < int32(g.NumTables()); tid++ {
		if gp.TableName(tid) != g.TableName(tid) {
			t.Errorf("table %d is %q, want %q", tid, gp.TableName(tid), g.TableName(tid))
		}
	}
}

// TestRestrictKeepsOnlyInternalArcs checks the cut semantics: an arc
// survives iff both endpoints are kept, with its weight verbatim.
func TestRestrictKeepsOnlyInternalArcs(t *testing.T) {
	g, keep := restrictFixture(t)
	gp, remap := Restrict(g, keep)

	wantArcs := 0
	for old := NodeID(0); int(old) < g.NumNodes(); old++ {
		if !keep(old) {
			continue
		}
		for _, e := range g.Out(old) {
			if keep(e.To) {
				wantArcs++
				if w := gp.ArcWeight(remap[old], remap[e.To]); w != e.W {
					t.Errorf("arc %d->%d weight %g, want %g", old, e.To, w, e.W)
				}
			}
		}
	}
	if gp.NumArcs() != wantArcs {
		t.Errorf("restriction has %d arcs, want %d internal arcs", gp.NumArcs(), wantArcs)
	}
	// No restricted arc may point at a node the source cut dropped: walk
	// the restriction and check every endpoint's preimage is kept.
	back := make(map[NodeID]NodeID, gp.NumNodes())
	for old, n := range remap {
		if n != NoNode {
			back[n] = NodeID(old)
		}
	}
	for n := NodeID(0); int(n) < gp.NumNodes(); n++ {
		for _, e := range gp.Out(n) {
			if !keep(back[n]) || !keep(back[e.To]) {
				t.Fatalf("restricted arc %d->%d crosses the cut", back[n], back[e.To])
			}
		}
	}
}

// TestRestrictEmptyTableRanges: a keep that drops a whole table must
// still leave the table present (empty range), so table ids line up
// across partitions.
func TestRestrictEmptyTableRanges(t *testing.T) {
	g, _ := restrictFixture(t)
	var authorTable int32 = g.TableID("author")
	if authorTable < 0 {
		t.Fatal("no author table in the bibliography graph")
	}
	gp, _ := Restrict(g, func(n NodeID) bool { return g.TableOf(n) != authorTable })
	if gp.NumTables() != g.NumTables() {
		t.Fatalf("restriction has %d tables, want %d", gp.NumTables(), g.NumTables())
	}
	lo, hi := gp.NodesOfTable(authorTable)
	if lo != hi {
		t.Errorf("dropped table has node range [%d,%d), want empty", lo, hi)
	}
	if gp.MinEdgeWeight() != g.MinEdgeWeight() || gp.MaxNodeWeight() != g.MaxNodeWeight() {
		t.Error("normalizers not preserved across a whole-table drop")
	}
}

// TestRestrictNormalizersSurviveSerialization: the graph serializer must
// round-trip the overridden normalizers verbatim, or the partition-store
// guarantee breaks at open time.
func TestRestrictNormalizersSurviveSerialization(t *testing.T) {
	g, keep := restrictFixture(t)
	gp, _ := Restrict(g, keep)
	var buf bytes.Buffer
	if _, err := gp.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.MinEdgeWeight() != g.MinEdgeWeight() || back.MaxNodeWeight() != g.MaxNodeWeight() {
		t.Errorf("round-tripped normalizers (%g, %g), want the source's (%g, %g)",
			back.MinEdgeWeight(), back.MaxNodeWeight(), g.MinEdgeWeight(), g.MaxNodeWeight())
	}
	_ = sqldb.RID(0) // keep the import honest if helpers change
}
