package graph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"github.com/banksdb/banks/internal/sqldb"
)

// The graph snapshot format lets a built graph be persisted and reloaded
// without touching the database — useful when the paper's "2 minute load"
// is still too slow for a deployment, and for shipping a search service
// without the row data.

const graphMagic = "BANKSGR1"

// WriteTo serializes the graph. A lazily-opened graph is fully
// materialized first (WriteTo walks every arc and node).
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	g.ensureArcs()
	g.ensureNodeMeta()
	if err := g.LazyErr(); err != nil {
		return 0, err
	}
	bw := bufio.NewWriter(w)
	cw := &countWriter{w: bw}
	if _, err := io.WriteString(cw, graphMagic); err != nil {
		return cw.n, err
	}
	putUvarint(cw, uint64(len(g.tableNames)))
	for _, name := range g.tableNames {
		putString(cw, name)
	}
	putUvarint(cw, uint64(g.NumNodes()))
	for i := range g.tableStart {
		putUvarint(cw, uint64(g.tableStart[i]))
	}
	for n := 0; n < g.NumNodes(); n++ {
		putUvarint(cw, uint64(g.ridOf[n]))
	}
	for n := 0; n < g.NumNodes(); n++ {
		putFloat(cw, g.prestige[n])
	}
	// Arcs: forward adjacency only; the reverse side is rebuilt on read.
	putUvarint(cw, uint64(g.numArcs))
	for n := 0; n < g.NumNodes(); n++ {
		out := g.Out(NodeID(n))
		putUvarint(cw, uint64(len(out)))
		prev := NodeID(0)
		for _, e := range out {
			putUvarint(cw, uint64(e.To-prev)) // sorted by To: delta-code
			prev = e.To
			putFloat(cw, e.W)
		}
	}
	if cw.err != nil {
		return cw.n, cw.err
	}
	return cw.n, bw.Flush()
}

// ReadGraph deserializes a graph written by WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, err
	}
	if string(head) != graphMagic {
		return nil, errors.New("graph: bad magic")
	}
	g := &Graph{tableIDs: make(map[string]int32)}
	ntables, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < ntables; i++ {
		name, err := getString(br)
		if err != nil {
			return nil, err
		}
		g.tableIDs[lower(name)] = int32(len(g.tableNames))
		g.tableNames = append(g.tableNames, name)
	}
	nnodes, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	g.tableStart = make([]NodeID, ntables+1)
	for i := range g.tableStart {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		g.tableStart[i] = NodeID(v)
	}
	g.tableOf = make([]int32, nnodes)
	for t := int32(0); t < int32(ntables); t++ {
		for n := g.tableStart[t]; n < g.tableStart[t+1]; n++ {
			g.tableOf[n] = t
		}
	}
	g.ridOf = make([]sqldb.RID, nnodes)
	maxRID := make([]int64, ntables)
	for n := range g.ridOf {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		g.ridOf[n] = sqldb.RID(v)
		t := g.tableOf[n]
		if int64(v) >= maxRID[t] {
			maxRID[t] = int64(v) + 1
		}
	}
	g.nodeOf = make([][]NodeID, ntables)
	for t := range g.nodeOf {
		m := make([]NodeID, maxRID[t])
		for i := range m {
			m[i] = NoNode
		}
		g.nodeOf[t] = m
	}
	for n := range g.ridOf {
		g.nodeOf[g.tableOf[n]][g.ridOf[n]] = NodeID(n)
	}
	g.prestige = make([]float64, nnodes)
	for n := range g.prestige {
		f, err := getFloat(br)
		if err != nil {
			return nil, err
		}
		g.prestige[n] = f
	}
	narcs, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	arcs := make([]arc, 0, narcs)
	for n := 0; n < int(nnodes); n++ {
		deg, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		prev := NodeID(0)
		for j := uint64(0); j < deg; j++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, err
			}
			prev += NodeID(d)
			w, err := getFloat(br)
			if err != nil {
				return nil, err
			}
			arcs = append(arcs, arc{from: NodeID(n), to: prev, w: w})
		}
	}
	if uint64(len(arcs)) != narcs {
		return nil, fmt.Errorf("graph: arc count mismatch: header %d, data %d", narcs, len(arcs))
	}
	g.finish(arcs)
	return g, nil
}

type countWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (c *countWriter) Write(p []byte) (int, error) {
	if c.err != nil {
		return 0, c.err
	}
	n, err := c.w.Write(p)
	c.n += int64(n)
	c.err = err
	return n, err
}

func putUvarint(w io.Writer, v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.Write(buf[:n])
}

func putString(w io.Writer, s string) {
	putUvarint(w, uint64(len(s)))
	io.WriteString(w, s)
}

func putFloat(w io.Writer, f float64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	w.Write(buf[:])
}

func getString(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", errors.New("graph: string too long")
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func getFloat(br *bufio.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(br, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
