package graph

import (
	"sort"

	"github.com/banksdb/banks/internal/par"
)

// arcLess is the total order the CSR fill relies on: grouped by source,
// then target, then ascending weight so the duplicate merge keeps the
// minimum-weight parallel arc (Equation 1).
func arcLess(a, b arc) bool {
	if a.from != b.from {
		return a.from < b.from
	}
	if a.to != b.to {
		return a.to < b.to
	}
	return a.w < b.w
}

// minParallelSortArcs is the arc count below which a parallel sort is not
// worth the goroutine and scratch-buffer overhead.
const minParallelSortArcs = 1 << 15

// sortArcs sorts arcs by arcLess using up to `shards` workers: the slice
// is split into contiguous runs sorted concurrently, then merged pairwise
// in parallel rounds. Because arcLess is a total order, the result is the
// same permutation class for every shard count — fully-equal arcs are
// interchangeable — so downstream consumers see identical output.
func sortArcs(arcs []arc, shards int) {
	n := len(arcs)
	if shards <= 1 || n < minParallelSortArcs {
		sort.Slice(arcs, func(i, j int) bool { return arcLess(arcs[i], arcs[j]) })
		return
	}
	chunk := (n + shards - 1) / shards
	runs := make([][2]int, 0, shards)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		runs = append(runs, [2]int{lo, hi})
	}
	par.Run(len(runs), shards, func(i int) {
		s := arcs[runs[i][0]:runs[i][1]]
		sort.Slice(s, func(a, b int) bool { return arcLess(s[a], s[b]) })
	})

	scratch := make([]arc, n)
	src, dst := arcs, scratch
	for len(runs) > 1 {
		type mergeJob struct{ a, b [2]int }
		jobs := make([]mergeJob, 0, len(runs)/2)
		next := make([][2]int, 0, (len(runs)+1)/2)
		for i := 0; i+1 < len(runs); i += 2 {
			jobs = append(jobs, mergeJob{a: runs[i], b: runs[i+1]})
			next = append(next, [2]int{runs[i][0], runs[i+1][1]})
		}
		odd := len(runs)%2 == 1
		par.Run(len(jobs), shards, func(ji int) {
			j := jobs[ji]
			mergeArcRuns(dst, src, j.a, j.b)
		})
		if odd {
			last := runs[len(runs)-1]
			copy(dst[last[0]:last[1]], src[last[0]:last[1]])
			next = append(next, last)
		}
		src, dst = dst, src
		runs = next
	}
	if &src[0] != &arcs[0] {
		copy(arcs, src)
	}
}

// mergeArcRuns merges the sorted runs src[a[0]:a[1]] and src[b[0]:b[1]]
// (adjacent: a[1] == b[0]) into dst[a[0]:b[1]]. Ties go to the left run,
// matching what a serial stable sort of the concatenation would produce.
func mergeArcRuns(dst, src []arc, a, b [2]int) {
	i, j, o := a[0], b[0], a[0]
	for i < a[1] && j < b[1] {
		if arcLess(src[j], src[i]) {
			dst[o] = src[j]
			j++
		} else {
			dst[o] = src[i]
			i++
		}
		o++
	}
	for i < a[1] {
		dst[o] = src[i]
		i++
		o++
	}
	for j < b[1] {
		dst[o] = src[j]
		j++
		o++
	}
}
