package graph

import (
	"bytes"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

func TestGraphSerializationRoundTrip(t *testing.T) {
	db := newUniversityDB(t, 9)
	g := mustBuild(t, db, nil)
	var buf bytes.Buffer
	n, err := g.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d, wrote %d", n, buf.Len())
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumArcs() != g.NumArcs() || back.NumTables() != g.NumTables() {
		t.Fatalf("shape mismatch: %s vs %s", back, g)
	}
	if back.MinEdgeWeight() != g.MinEdgeWeight() || back.MaxNodeWeight() != g.MaxNodeWeight() {
		t.Errorf("normalizers differ")
	}
	for n := NodeID(0); int(n) < g.NumNodes(); n++ {
		if back.TableNameOf(n) != g.TableNameOf(n) || back.RIDOf(n) != g.RIDOf(n) {
			t.Fatalf("node %d identity differs", n)
		}
		if back.Prestige(n) != g.Prestige(n) {
			t.Fatalf("node %d prestige differs", n)
		}
		a, b := g.Out(n), back.Out(n)
		if len(a) != len(b) {
			t.Fatalf("node %d degree differs", n)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d differs: %+v vs %+v", n, i, a[i], b[i])
			}
		}
	}
	// Node lookup by (table, rid) survives.
	if back.NodeOf("dept", 0) != g.NodeOf("dept", 0) {
		t.Error("NodeOf mismatch")
	}
	if back.NodeOf("student", 3) != g.NodeOf("student", 3) {
		t.Error("NodeOf mismatch for student")
	}
}

func TestGraphSerializationWithTombstones(t *testing.T) {
	db := newUniversityDB(t, 5)
	if err := db.Delete("student", 2); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, db, nil)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NodeOf("student", 2) != NoNode {
		t.Error("tombstoned rid mapped to a node after round trip")
	}
	if back.NodeOf("student", 3) == NoNode {
		t.Error("live rid lost after round trip")
	}
}

func TestReadGraphBadInput(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("NOTAGRAPH"))); err == nil {
		t.Error("bad magic should fail")
	}
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := ReadGraph(bytes.NewReader([]byte(graphMagic))); err == nil {
		t.Error("truncated input should fail")
	}
}

func TestGraphSerializationEmpty(t *testing.T) {
	g := mustBuild(t, sqldb.NewDatabase(), nil)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 0 || back.NumArcs() != 0 {
		t.Errorf("empty round trip: %s", back)
	}
}
