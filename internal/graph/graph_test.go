package graph

import (
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// newUniversityDB builds the paper's §2.1 hub example: a department with
// many students. Students reference their department; the backward edge
// from the department to each student must scale with the student count.
func newUniversityDB(t *testing.T, students int) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name:       "dept",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}, {Name: "name", Type: sqldb.TypeText}},
		PrimaryKey: []string{"id"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateTable(&sqldb.TableSchema{
		Name: "student",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "name", Type: sqldb.TypeText},
			{Name: "dept", Type: sqldb.TypeInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "dept", RefTable: "dept"}},
	}); err != nil {
		t.Fatal(err)
	}
	db.Insert("dept", []sqldb.Value{sqldb.Int(1), sqldb.Text("CSE")})
	for i := 0; i < students; i++ {
		db.Insert("student", []sqldb.Value{sqldb.Int(int64(100 + i)), sqldb.Text("S"), sqldb.Int(1)})
	}
	return db
}

func mustBuild(t *testing.T, db *sqldb.Database, opts *BuildOptions) *Graph {
	t.Helper()
	g, err := Build(db, opts)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildBasicShape(t *testing.T) {
	db := newUniversityDB(t, 3)
	g := mustBuild(t, db, nil)
	if g.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", g.NumNodes())
	}
	// 3 FK links, each yielding a forward and a backward arc.
	if g.NumArcs() != 6 {
		t.Errorf("arcs = %d, want 6", g.NumArcs())
	}
	if g.NumTables() != 2 {
		t.Errorf("tables = %d", g.NumTables())
	}
}

func TestForwardAndBackwardWeights(t *testing.T) {
	db := newUniversityDB(t, 5)
	g := mustBuild(t, db, nil)
	dept := g.NodeOf("dept", 0)
	stu := g.NodeOf("student", 0)
	if dept == NoNode || stu == NoNode {
		t.Fatal("node lookup failed")
	}
	// Forward edge student -> dept has the similarity weight 1.
	if w := g.ArcWeight(stu, dept); w != 1 {
		t.Errorf("forward weight = %v, want 1", w)
	}
	// Backward edge dept -> student scales with IN_student(dept) = 5 (§2.1).
	if w := g.ArcWeight(dept, stu); w != 5 {
		t.Errorf("backward weight = %v, want 5", w)
	}
}

func TestBackwardScalingGrowsWithHubSize(t *testing.T) {
	small := mustBuild(t, newUniversityDB(t, 2), nil)
	big := mustBuild(t, newUniversityDB(t, 50), nil)
	sd, ss := small.NodeOf("dept", 0), small.NodeOf("student", 0)
	bd, bs := big.NodeOf("dept", 0), big.NodeOf("student", 0)
	if small.ArcWeight(sd, ss) >= big.ArcWeight(bd, bs) {
		t.Errorf("hub backward weight should grow: small=%v big=%v",
			small.ArcWeight(sd, ss), big.ArcWeight(bd, bs))
	}
}

func TestScaleBackEdgesDisabled(t *testing.T) {
	db := newUniversityDB(t, 7)
	g := mustBuild(t, db, &BuildOptions{ScaleBackEdges: false})
	dept := g.NodeOf("dept", 0)
	stu := g.NodeOf("student", 0)
	if w := g.ArcWeight(dept, stu); w != 1 {
		t.Errorf("unscaled backward weight = %v, want 1", w)
	}
}

func TestPrestigeIsReferenceIndegree(t *testing.T) {
	db := newUniversityDB(t, 4)
	g := mustBuild(t, db, nil)
	dept := g.NodeOf("dept", 0)
	if p := g.Prestige(dept); p != 4 {
		t.Errorf("dept prestige = %v, want 4", p)
	}
	stu := g.NodeOf("student", 0)
	if p := g.Prestige(stu); p != 0 {
		t.Errorf("student prestige = %v, want 0", p)
	}
	if g.MaxNodeWeight() != 4 {
		t.Errorf("max node weight = %v", g.MaxNodeWeight())
	}
}

func TestFKWeightPropagates(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:       "p",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "c",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "ref", Type: sqldb.TypeInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "ref", RefTable: "p", Weight: 2.5}},
	})
	db.Insert("p", []sqldb.Value{sqldb.Int(1)})
	db.Insert("c", []sqldb.Value{sqldb.Int(10), sqldb.Int(1)})
	g := mustBuild(t, db, nil)
	c, p := g.NodeOf("c", 0), g.NodeOf("p", 0)
	if w := g.ArcWeight(c, p); w != 2.5 {
		t.Errorf("forward = %v, want 2.5", w)
	}
	if w := g.ArcWeight(p, c); w != 2.5 {
		t.Errorf("backward = %v, want 2.5 (1 link * 2.5)", w)
	}
	if g.MinEdgeWeight() != 2.5 {
		t.Errorf("min edge = %v", g.MinEdgeWeight())
	}
}

func TestNullFKsProduceNoEdges(t *testing.T) {
	db := newUniversityDB(t, 0)
	db.Insert("student", []sqldb.Value{sqldb.Int(999), sqldb.Text("Orphan"), sqldb.Null()})
	g := mustBuild(t, db, nil)
	stu := g.NodeOf("student", 0)
	if len(g.Out(stu)) != 0 || len(g.In(stu)) != 0 {
		t.Errorf("orphan should have no edges: out=%v in=%v", g.Out(stu), g.In(stu))
	}
}

func TestDeletedRowsExcluded(t *testing.T) {
	db := newUniversityDB(t, 3)
	// Delete the second student; its node must not appear.
	stu := db.Table("student")
	var second sqldb.RID = 1
	if err := db.Delete("student", second); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, db, nil)
	if g.NumNodes() != 3 {
		t.Errorf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NodeOf("student", second) != NoNode {
		t.Error("deleted row mapped to a node")
	}
	dept := g.NodeOf("dept", 0)
	if p := g.Prestige(dept); p != 2 {
		t.Errorf("prestige after delete = %v, want 2", p)
	}
	_ = stu
}

func TestReverseAdjacencyMirrorsForward(t *testing.T) {
	db := newUniversityDB(t, 6)
	g := mustBuild(t, db, nil)
	// Every arc u->v must appear in rev[v] with the same weight.
	count := 0
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for _, e := range g.Out(u) {
			found := false
			for _, r := range g.In(e.To) {
				if r.To == u && r.W == e.W {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("arc %d->%d (w=%v) missing from reverse adjacency", u, e.To, e.W)
			}
			count++
		}
	}
	if count != g.NumArcs() {
		t.Errorf("arc count mismatch: %d vs %d", count, g.NumArcs())
	}
}

func TestNodesOfTableRanges(t *testing.T) {
	db := newUniversityDB(t, 3)
	g := mustBuild(t, db, nil)
	dt := g.TableID("dept")
	st := g.TableID("STUDENT") // case-insensitive
	lo, hi := g.NodesOfTable(dt)
	if hi-lo != 1 {
		t.Errorf("dept range = [%d,%d)", lo, hi)
	}
	lo, hi = g.NodesOfTable(st)
	if hi-lo != 3 {
		t.Errorf("student range = [%d,%d)", lo, hi)
	}
	for n := lo; n < hi; n++ {
		if g.TableNameOf(n) != "student" {
			t.Errorf("node %d table = %s", n, g.TableNameOf(n))
		}
	}
}

func TestParallelEdgesMergedToMin(t *testing.T) {
	// Cites-style table with two FKs to the same target; a row referencing
	// the same paper twice creates parallel arcs that must merge to min.
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name:       "paper",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "rel",
		Columns: []sqldb.Column{
			{Name: "a", Type: sqldb.TypeInt},
			{Name: "b", Type: sqldb.TypeInt},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "a", RefTable: "paper", Weight: 1},
			{Column: "b", RefTable: "paper", Weight: 3},
		},
	})
	db.Insert("paper", []sqldb.Value{sqldb.Int(1)})
	db.Insert("rel", []sqldb.Value{sqldb.Int(1), sqldb.Int(1)})
	g := mustBuild(t, db, nil)
	r, p := g.NodeOf("rel", 0), g.NodeOf("paper", 0)
	if w := g.ArcWeight(r, p); w != 1 {
		t.Errorf("merged forward = %v, want min(1,3)=1", w)
	}
	if len(g.Out(r)) != 1 {
		t.Errorf("out degree = %d, want 1 after merge", len(g.Out(r)))
	}
	// Prestige still counts both links.
	if g.Prestige(p) != 2 {
		t.Errorf("prestige = %v, want 2", g.Prestige(p))
	}
}

func TestPageRankPrestigeOption(t *testing.T) {
	// A citation chain: c2 -> c1 -> root. With prestige transfer, root
	// benefits from c1's own prestige.
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "paper",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "cites", Type: sqldb.TypeInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "cites", RefTable: "paper"}},
	})
	db.Insert("paper", []sqldb.Value{sqldb.Int(1), sqldb.Null()})
	db.Insert("paper", []sqldb.Value{sqldb.Int(2), sqldb.Int(1)})
	db.Insert("paper", []sqldb.Value{sqldb.Int(3), sqldb.Int(2)})
	g := mustBuild(t, db, &BuildOptions{ScaleBackEdges: true, PrestigeDamping: 0.85})
	root := g.NodeOf("paper", 0)
	mid := g.NodeOf("paper", 1)
	leaf := g.NodeOf("paper", 2)
	if !(g.Prestige(root) > g.Prestige(mid) && g.Prestige(mid) > g.Prestige(leaf)) {
		t.Errorf("pagerank order violated: root=%v mid=%v leaf=%v",
			g.Prestige(root), g.Prestige(mid), g.Prestige(leaf))
	}
}

func TestEmptyDatabase(t *testing.T) {
	g := mustBuild(t, sqldb.NewDatabase(), nil)
	if g.NumNodes() != 0 || g.NumArcs() != 0 {
		t.Errorf("empty graph: %s", g)
	}
	if g.MinEdgeWeight() != 1 {
		t.Errorf("min edge default = %v", g.MinEdgeWeight())
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	g := mustBuild(t, newUniversityDB(t, 10), nil)
	if g.MemoryFootprint() <= 0 {
		t.Error("footprint should be positive")
	}
}

func TestSelfLoopSkipped(t *testing.T) {
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "emp",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "boss", Type: sqldb.TypeInt},
		},
		PrimaryKey:  []string{"id"},
		ForeignKeys: []sqldb.ForeignKey{{Column: "boss", RefTable: "emp"}},
	})
	// FK checks are immediate, so a row cannot reference itself at insert
	// time; insert with NULL then update to point at itself.
	if _, err := db.Insert("emp", []sqldb.Value{sqldb.Int(1), sqldb.Null()}); err != nil {
		t.Fatal(err)
	}
	if err := db.Update("emp", 0, map[string]sqldb.Value{"boss": sqldb.Int(1)}); err != nil {
		t.Fatal(err)
	}
	g := mustBuild(t, db, nil)
	n := g.NodeOf("emp", 0)
	if len(g.Out(n)) != 0 {
		t.Errorf("self-loop should be skipped, out = %v", g.Out(n))
	}
}
