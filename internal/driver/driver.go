// Package driver adapts the embedded engine to database/sql, playing the
// role JDBC played in the original BANKS system. Databases are registered
// under a name and opened with sql.Open("banks", name):
//
//	drv.Register("dblp", db)
//	sqlDB, err := sql.Open("banks", "dblp")
//
// The driver registers itself with database/sql under the name "banks" on
// import.
package driver

import (
	"database/sql"
	"database/sql/driver"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
	"github.com/banksdb/banks/internal/sqlparse"
)

// Name is the database/sql driver name.
const Name = "banks"

var (
	regMu    sync.RWMutex
	registry = make(map[string]*sqldb.Database)
)

// Register makes db reachable as sql.Open("banks", name). Registering the
// same name twice replaces the previous database.
func Register(name string, db *sqldb.Database) {
	regMu.Lock()
	defer regMu.Unlock()
	registry[name] = db
}

// Unregister removes a named database.
func Unregister(name string) {
	regMu.Lock()
	defer regMu.Unlock()
	delete(registry, name)
}

// Lookup returns the database registered under name, or nil.
func Lookup(name string) *sqldb.Database {
	regMu.RLock()
	defer regMu.RUnlock()
	return registry[name]
}

func init() {
	sql.Register(Name, &Driver{})
}

// Driver implements driver.Driver.
type Driver struct{}

// Open returns a connection to the database registered under the DSN.
func (Driver) Open(dsn string) (driver.Conn, error) {
	db := Lookup(dsn)
	if db == nil {
		return nil, fmt.Errorf("banks driver: no database registered as %q", dsn)
	}
	return &conn{engine: sqlexec.New(db)}, nil
}

type conn struct {
	engine *sqlexec.Engine
}

func (c *conn) Prepare(query string) (driver.Stmt, error) {
	stmt, err := sqlparse.Parse(query)
	if err != nil {
		return nil, err
	}
	return &prepared{engine: c.engine, stmt: stmt, nparams: sqlparse.CountParams(stmt)}, nil
}

func (c *conn) Close() error { return nil }

// Begin is required by driver.Conn; the engine does not support
// transactions, so it fails loudly rather than lying with a no-op.
func (c *conn) Begin() (driver.Tx, error) {
	return nil, errors.New("banks driver: transactions are not supported")
}

type prepared struct {
	engine  *sqlexec.Engine
	stmt    sqlparse.Statement
	nparams int
}

func (p *prepared) Close() error  { return nil }
func (p *prepared) NumInput() int { return p.nparams }

func (p *prepared) run(args []driver.Value) (*sqlexec.Result, error) {
	params := make([]sqldb.Value, len(args))
	for i, a := range args {
		v, err := toValue(a)
		if err != nil {
			return nil, err
		}
		params[i] = v
	}
	return p.engine.ExecuteStmt(p.stmt, params)
}

func (p *prepared) Exec(args []driver.Value) (driver.Result, error) {
	r, err := p.run(args)
	if err != nil {
		return nil, err
	}
	return result{rows: r.RowsAffected, last: int64(r.LastRID)}, nil
}

func (p *prepared) Query(args []driver.Value) (driver.Rows, error) {
	r, err := p.run(args)
	if err != nil {
		return nil, err
	}
	if !r.IsQuery() {
		return &rows{res: &sqlexec.Result{Columns: []string{}}}, nil
	}
	return &rows{res: r}, nil
}

type result struct {
	rows int64
	last int64
}

func (r result) LastInsertId() (int64, error) { return r.last, nil }
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

type rows struct {
	res *sqlexec.Result
	pos int
}

func (r *rows) Columns() []string { return r.res.Columns }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.pos >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.pos]
	r.pos++
	for i, v := range row {
		dest[i] = fromValue(v)
	}
	return nil
}

// toValue converts a driver.Value to an engine value.
func toValue(a driver.Value) (sqldb.Value, error) {
	switch v := a.(type) {
	case nil:
		return sqldb.Null(), nil
	case int64:
		return sqldb.Int(v), nil
	case float64:
		return sqldb.Float(v), nil
	case bool:
		return sqldb.Bool(v), nil
	case string:
		return sqldb.Text(v), nil
	case []byte:
		return sqldb.Text(string(v)), nil
	case time.Time:
		return sqldb.Text(v.UTC().Format(time.RFC3339)), nil
	}
	return sqldb.Null(), fmt.Errorf("banks driver: unsupported parameter type %T", a)
}

// fromValue converts an engine value to a driver.Value.
func fromValue(v sqldb.Value) driver.Value {
	switch v.T {
	case sqldb.TypeNull:
		return nil
	case sqldb.TypeInt:
		return v.I
	case sqldb.TypeFloat:
		return v.F
	case sqldb.TypeBool:
		return v.I != 0
	default:
		return v.S
	}
}
