package driver

import (
	"database/sql"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

func openTestDB(t *testing.T) *sql.DB {
	t.Helper()
	name := "testdb-" + t.Name()
	Register(name, sqldb.NewDatabase())
	t.Cleanup(func() { Unregister(name) })
	db, err := sql.Open(Name, name)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func TestDriverRoundTrip(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Exec("CREATE TABLE t (id INT PRIMARY KEY, name TEXT, score FLOAT, ok BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec("INSERT INTO t VALUES (?, ?, ?, ?)", 1, "alice", 2.5, true)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res.RowsAffected(); n != 1 {
		t.Errorf("RowsAffected = %d", n)
	}
	db.Exec("INSERT INTO t VALUES (?, ?, ?, ?)", 2, "bob", nil, false)

	rows, err := db.Query("SELECT id, name, score, ok FROM t ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	defer rows.Close()
	cols, _ := rows.Columns()
	if strings.Join(cols, ",") != "id,name,score,ok" {
		t.Errorf("columns = %v", cols)
	}
	var got []string
	for rows.Next() {
		var id int64
		var name string
		var score sql.NullFloat64
		var ok bool
		if err := rows.Scan(&id, &name, &score, &ok); err != nil {
			t.Fatal(err)
		}
		got = append(got, name)
		if id == 2 && score.Valid {
			t.Error("bob's score should be NULL")
		}
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "alice" {
		t.Errorf("names = %v", got)
	}
}

func TestDriverQueryRow(t *testing.T) {
	db := openTestDB(t)
	db.Exec("CREATE TABLE t (a INT)")
	db.Exec("INSERT INTO t VALUES (41)")
	var n int
	if err := db.QueryRow("SELECT a + 1 FROM t").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 42 {
		t.Errorf("n = %d", n)
	}
}

func TestDriverPrepared(t *testing.T) {
	db := openTestDB(t)
	db.Exec("CREATE TABLE t (a INT)")
	stmt, err := db.Prepare("INSERT INTO t VALUES (?)")
	if err != nil {
		t.Fatal(err)
	}
	defer stmt.Close()
	for i := 0; i < 5; i++ {
		if _, err := stmt.Exec(i); err != nil {
			t.Fatal(err)
		}
	}
	var n int
	db.QueryRow("SELECT COUNT(*) FROM t").Scan(&n)
	if n != 5 {
		t.Errorf("count = %d", n)
	}
}

func TestDriverWrongParamCount(t *testing.T) {
	db := openTestDB(t)
	db.Exec("CREATE TABLE t (a INT, b INT)")
	if _, err := db.Exec("INSERT INTO t VALUES (?, ?)", 1); err == nil {
		t.Error("too few args should error")
	}
}

func TestDriverUnknownDSN(t *testing.T) {
	db, err := sql.Open(Name, "never-registered")
	if err != nil {
		t.Fatal(err) // Open is lazy; error surfaces on first use
	}
	defer db.Close()
	if err := db.Ping(); err == nil {
		t.Error("ping of unregistered DSN should fail")
	}
}

func TestDriverTransactionsUnsupported(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Begin(); err == nil {
		t.Error("Begin should fail")
	}
}

func TestDriverSyntaxError(t *testing.T) {
	db := openTestDB(t)
	if _, err := db.Query("SELEKT 1"); err == nil {
		t.Error("bad SQL should fail")
	}
}

func TestDriverSharesUnderlyingDatabase(t *testing.T) {
	// Direct engine access and the driver see the same data.
	under := sqldb.NewDatabase()
	Register("shared-db", under)
	defer Unregister("shared-db")
	db, _ := sql.Open(Name, "shared-db")
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (a INT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := under.Insert("t", []sqldb.Value{sqldb.Int(9)}); err != nil {
		t.Fatal(err)
	}
	var n int
	if err := db.QueryRow("SELECT a FROM t").Scan(&n); err != nil || n != 9 {
		t.Errorf("n = %d, err = %v", n, err)
	}
}
