package sqlexec

import (
	"bytes"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// TestDumpSQLReplay dumps a populated database and replays the script into
// a fresh engine, then compares row counts and spot values.
func TestDumpSQLReplay(t *testing.T) {
	src := newEngine(t) // authors/papers/writes with data
	var buf bytes.Buffer
	if err := src.DB().DumpSQL(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(sqldb.NewDatabase())
	if _, err := dst.ExecuteScript(buf.String()); err != nil {
		t.Fatalf("replaying dump: %v\n--- dump ---\n%s", err, buf.String())
	}
	for _, tbl := range []string{"author", "paper", "writes"} {
		a := src.DB().Table(tbl).Len()
		b := dst.DB().Table(tbl).Len()
		if a != b {
			t.Errorf("table %s: %d rows vs %d after replay", tbl, a, b)
		}
	}
	r, err := dst.Execute("SELECT name FROM author WHERE aid = 'gray'")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Jim Gray" {
		t.Errorf("replayed value = %v", rowStrings(r))
	}
	// NULLs survive.
	r, err = dst.Execute("SELECT COUNT(*) FROM author WHERE born IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0][0].I != 2 {
		t.Errorf("NULL count = %v", r.Rows[0][0])
	}
}
