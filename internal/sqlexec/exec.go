package sqlexec

import (
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlparse"
)

// Result is the outcome of executing one statement. Query statements fill
// Columns/Rows; data-modifying statements fill RowsAffected (and LastRID for
// single-row inserts).
type Result struct {
	Columns      []string
	Rows         [][]sqldb.Value
	RowsAffected int64
	LastRID      sqldb.RID
}

// IsQuery reports whether the result carries a row set.
func (r *Result) IsQuery() bool { return r.Columns != nil }

// Engine executes SQL against a database.
type Engine struct {
	db *sqldb.Database
}

// New returns an engine over db.
func New(db *sqldb.Database) *Engine { return &Engine{db: db} }

// DB returns the underlying database.
func (e *Engine) DB() *sqldb.Database { return e.db }

// Execute parses and runs a single SQL statement with optional ?
// placeholders bound from params.
func (e *Engine) Execute(sql string, params ...sqldb.Value) (*Result, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.ExecuteStmt(stmt, params)
}

// ExecuteScript parses and runs a semicolon-separated script, returning the
// result of each statement. It stops at the first error.
func (e *Engine) ExecuteScript(sql string, params ...sqldb.Value) ([]*Result, error) {
	stmts, err := sqlparse.ParseAll(sql)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(stmts))
	for i, s := range stmts {
		r, err := e.ExecuteStmt(s, params)
		if err != nil {
			return out, fmt.Errorf("statement %d: %w", i+1, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ExecuteStmt runs one parsed statement.
func (e *Engine) ExecuteStmt(stmt sqlparse.Statement, params []sqldb.Value) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		e.db.RLock()
		defer e.db.RUnlock()
		return runSelect(e.db, s, params)
	case *sqlparse.CreateTable:
		if _, err := e.db.CreateTable(s.Schema); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.DropTable:
		if err := e.db.DropTable(s.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil
	case *sqlparse.Insert:
		return e.runInsert(s, params)
	case *sqlparse.Update:
		return e.runUpdate(s, params)
	case *sqlparse.Delete:
		return e.runDelete(s, params)
	}
	return nil, fmt.Errorf("sqlexec: unsupported statement %T", stmt)
}

func (e *Engine) runInsert(s *sqlparse.Insert, params []sqldb.Value) (*Result, error) {
	t := e.db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, s.Table)
	}
	cols := t.Schema().Columns
	colPos := make([]int, 0, len(cols))
	if len(s.Columns) == 0 {
		for i := range cols {
			colPos = append(colPos, i)
		}
	} else {
		for _, name := range s.Columns {
			i := t.ColumnIndex(name)
			if i < 0 {
				return nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, s.Table, name)
			}
			colPos = append(colPos, i)
		}
	}
	res := &Result{LastRID: -1}
	for _, rowExprs := range s.Rows {
		if len(rowExprs) != len(colPos) {
			return res, fmt.Errorf("sqlexec: INSERT into %s: %d values for %d columns", s.Table, len(rowExprs), len(colPos))
		}
		vals := make([]sqldb.Value, len(cols))
		for i, ex := range rowExprs {
			v, err := eval(ex, &evalCtx{params: params})
			if err != nil {
				return res, err
			}
			vals[colPos[i]] = v
		}
		rid, err := e.db.Insert(s.Table, vals)
		if err != nil {
			return res, err
		}
		res.RowsAffected++
		res.LastRID = rid
	}
	return res, nil
}

// matchingRIDs collects the rids of rows in table t satisfying where (all
// rows when where is nil).
func (e *Engine) matchingRIDs(t *sqldb.Table, alias string, where sqlparse.Expr, params []sqldb.Value) ([]sqldb.RID, error) {
	schema := tableSchema(t, alias)
	var rids []sqldb.RID
	var evalErr error
	t.Scan(func(rid sqldb.RID, row []sqldb.Value) bool {
		if where != nil {
			v, err := eval(where, &evalCtx{schema: schema, row: row, params: params})
			if err != nil {
				evalErr = err
				return false
			}
			if v.IsNull() || !v.AsBool() {
				return true
			}
		}
		rids = append(rids, rid)
		return true
	})
	return rids, evalErr
}

func (e *Engine) runUpdate(s *sqlparse.Update, params []sqldb.Value) (*Result, error) {
	t := e.db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, s.Table)
	}
	for _, sc := range s.Set {
		if t.ColumnIndex(sc.Column) < 0 {
			return nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, s.Table, sc.Column)
		}
	}
	e.db.RLock()
	rids, err := e.matchingRIDs(t, "", s.Where, params)
	e.db.RUnlock()
	if err != nil {
		return nil, err
	}
	schema := tableSchema(t, "")
	res := &Result{LastRID: -1}
	for _, rid := range rids {
		row := t.Row(rid)
		if row == nil {
			continue
		}
		set := make(map[string]sqldb.Value, len(s.Set))
		for _, sc := range s.Set {
			v, err := eval(sc.Expr, &evalCtx{schema: schema, row: row, params: params})
			if err != nil {
				return res, err
			}
			set[sc.Column] = v
		}
		if err := e.db.Update(s.Table, rid, set); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	return res, nil
}

func (e *Engine) runDelete(s *sqlparse.Delete, params []sqldb.Value) (*Result, error) {
	t := e.db.Table(s.Table)
	if t == nil {
		return nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, s.Table)
	}
	e.db.RLock()
	rids, err := e.matchingRIDs(t, "", s.Where, params)
	e.db.RUnlock()
	if err != nil {
		return nil, err
	}
	res := &Result{LastRID: -1}
	for _, rid := range rids {
		if err := e.db.Delete(s.Table, rid); err != nil {
			return res, err
		}
		res.RowsAffected++
	}
	return res, nil
}

// FormatTable renders a result as an aligned text table; the SQL shell and
// examples use it.
func FormatTable(r *Result) string {
	if !r.IsQuery() {
		return fmt.Sprintf("%d row(s) affected", r.RowsAffected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, v := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(v)
			for p := len(v); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(r.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(r.Rows))
	return b.String()
}
