package sqlexec

import (
	"errors"
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// newEngine loads a small bibliographic database through the SQL path so the
// tests exercise parser + executor + storage together.
func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(sqldb.NewDatabase())
	script := `
	CREATE TABLE author (aid TEXT PRIMARY KEY, name TEXT NOT NULL, born INT);
	CREATE TABLE paper (pid TEXT PRIMARY KEY, title TEXT, year INT);
	CREATE TABLE writes (aid TEXT REFERENCES author, pid TEXT REFERENCES paper);
	INSERT INTO author VALUES ('gray', 'Jim Gray', 1944), ('reuter', 'Andreas Reuter', 1949),
		('soumen', 'Soumen Chakrabarti', NULL), ('sunita', 'Sunita Sarawagi', NULL);
	INSERT INTO paper VALUES ('tp', 'Transaction Processing', 1993),
		('tc', 'The Transaction Concept', 1981),
		('mining', 'Mining Surprising Patterns', 1998);
	INSERT INTO writes VALUES ('gray', 'tp'), ('reuter', 'tp'), ('gray', 'tc'),
		('soumen', 'mining'), ('sunita', 'mining');
	`
	if _, err := e.ExecuteScript(script); err != nil {
		t.Fatalf("loading script: %v", err)
	}
	return e
}

func mustQuery(t *testing.T, e *Engine, sql string, params ...sqldb.Value) *Result {
	t.Helper()
	r, err := e.Execute(sql, params...)
	if err != nil {
		t.Fatalf("Execute(%q): %v", sql, err)
	}
	return r
}

func rowStrings(r *Result) []string {
	var out []string
	for _, row := range r.Rows {
		var cells []string
		for _, v := range row {
			cells = append(cells, v.String())
		}
		out = append(out, strings.Join(cells, "|"))
	}
	return out
}

func TestSelectAll(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT * FROM author")
	if len(r.Columns) != 3 || r.Columns[0] != "aid" {
		t.Errorf("columns = %v", r.Columns)
	}
	if len(r.Rows) != 4 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}

func TestSelectWhere(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT name FROM author WHERE born > 1945")
	got := rowStrings(r)
	if len(got) != 1 || got[0] != "Andreas Reuter" {
		t.Errorf("rows = %v", got)
	}
}

func TestSelectWhereNullComparison(t *testing.T) {
	e := newEngine(t)
	// born IS NULL for soumen/sunita; NULL comparisons must not match.
	r := mustQuery(t, e, "SELECT COUNT(*) FROM author WHERE born > 0")
	if r.Rows[0][0].I != 2 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	r = mustQuery(t, e, "SELECT COUNT(*) FROM author WHERE born IS NULL")
	if r.Rows[0][0].I != 2 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
}

func TestSelectProjectionAndAlias(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT name AS who, born + 1 AS next FROM author WHERE aid = 'gray'")
	if r.Columns[0] != "who" || r.Columns[1] != "next" {
		t.Errorf("columns = %v", r.Columns)
	}
	if r.Rows[0][1].I != 1945 {
		t.Errorf("expr value = %v", r.Rows[0][1])
	}
}

func TestSelectOrderByLimitOffset(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT aid FROM author ORDER BY aid DESC LIMIT 2 OFFSET 1")
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "soumen" || got[1] != "reuter" {
		t.Errorf("rows = %v", got)
	}
}

func TestSelectOrderByOrdinalAndAlias(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT aid, born AS b FROM author WHERE born IS NOT NULL ORDER BY 2 DESC")
	got := rowStrings(r)
	if got[0] != "reuter|1949" {
		t.Errorf("ordinal order = %v", got)
	}
	r = mustQuery(t, e, "SELECT aid, born AS b FROM author WHERE born IS NOT NULL ORDER BY b")
	got = rowStrings(r)
	if got[0] != "gray|1944" {
		t.Errorf("alias order = %v", got)
	}
}

func TestJoinInner(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, `SELECT a.name, p.title FROM author a
		JOIN writes w ON w.aid = a.aid
		JOIN paper p ON p.pid = w.pid
		WHERE p.pid = 'tp' ORDER BY a.name`)
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "Andreas Reuter|Transaction Processing" || got[1] != "Jim Gray|Transaction Processing" {
		t.Errorf("rows = %v", got)
	}
}

func TestJoinLeft(t *testing.T) {
	e := newEngine(t)
	// A paper with no authors.
	mustQuery(t, e, "INSERT INTO paper VALUES ('lonely', 'No Authors Here', 2000)")
	r := mustQuery(t, e, `SELECT p.pid, w.aid FROM paper p
		LEFT JOIN writes w ON w.pid = p.pid
		WHERE p.pid = 'lonely'`)
	got := rowStrings(r)
	if len(got) != 1 || got[0] != "lonely|NULL" {
		t.Errorf("rows = %v", got)
	}
}

func TestJoinCross(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT COUNT(*) FROM author, paper")
	if r.Rows[0][0].I != 12 {
		t.Errorf("cross product count = %v", r.Rows[0][0])
	}
}

func TestJoinIndexAcceleration(t *testing.T) {
	e := newEngine(t)
	// Same result whether or not the equi-probe path is taken; the
	// non-indexable ON forces a scan join.
	r1 := mustQuery(t, e, "SELECT COUNT(*) FROM writes w JOIN paper p ON p.pid = w.pid")
	r2 := mustQuery(t, e, "SELECT COUNT(*) FROM writes w JOIN paper p ON p.pid || '' = w.pid")
	if r1.Rows[0][0].I != r2.Rows[0][0].I {
		t.Errorf("indexed join = %v, scan join = %v", r1.Rows[0][0], r2.Rows[0][0])
	}
	if r1.Rows[0][0].I != 5 {
		t.Errorf("join count = %v", r1.Rows[0][0])
	}
}

func TestGroupByHavingAggregates(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, `SELECT w.pid, COUNT(*) AS n FROM writes w
		GROUP BY w.pid HAVING COUNT(*) >= 2 ORDER BY w.pid`)
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "mining|2" || got[1] != "tp|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestAggregateFunctions(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT COUNT(*), COUNT(born), SUM(born), AVG(born), MIN(born), MAX(born) FROM author")
	row := r.Rows[0]
	if row[0].I != 4 || row[1].I != 2 {
		t.Errorf("counts = %v %v", row[0], row[1])
	}
	if row[2].I != 1944+1949 {
		t.Errorf("sum = %v", row[2])
	}
	if row[3].F != float64(1944+1949)/2 {
		t.Errorf("avg = %v", row[3])
	}
	if row[4].I != 1944 || row[5].I != 1949 {
		t.Errorf("min/max = %v %v", row[4], row[5])
	}
}

func TestCountDistinct(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT COUNT(DISTINCT pid) FROM writes")
	if r.Rows[0][0].I != 3 {
		t.Errorf("count distinct = %v", r.Rows[0][0])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT COUNT(*), SUM(born) FROM author WHERE aid = 'nobody'")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("rows = %v", rowStrings(r))
	}
}

func TestDistinct(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT DISTINCT aid FROM writes ORDER BY aid")
	if len(r.Rows) != 4 {
		t.Errorf("distinct rows = %v", rowStrings(r))
	}
}

func TestLike(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT title FROM paper WHERE title LIKE '%transaction%' ORDER BY title")
	got := rowStrings(r)
	if len(got) != 2 {
		t.Errorf("rows = %v", got)
	}
	r = mustQuery(t, e, "SELECT title FROM paper WHERE title LIKE 'Mining%'")
	if len(r.Rows) != 1 {
		t.Errorf("prefix match = %v", rowStrings(r))
	}
	r = mustQuery(t, e, "SELECT title FROM paper WHERE title LIKE '__ning%'")
	if len(r.Rows) != 1 {
		t.Errorf("underscore match = %v", rowStrings(r))
	}
}

func TestInBetween(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT pid FROM paper WHERE year BETWEEN 1980 AND 1995 ORDER BY pid")
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "tc" || got[1] != "tp" {
		t.Errorf("between rows = %v", got)
	}
	r = mustQuery(t, e, "SELECT pid FROM paper WHERE pid IN ('tp', 'mining') ORDER BY pid")
	if len(r.Rows) != 2 {
		t.Errorf("in rows = %v", rowStrings(r))
	}
	r = mustQuery(t, e, "SELECT pid FROM paper WHERE pid NOT IN ('tp', 'mining', 'tc')")
	if len(r.Rows) != 0 {
		t.Errorf("not in rows = %v", rowStrings(r))
	}
}

func TestParams(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT name FROM author WHERE aid = ?", sqldb.Text("gray"))
	if len(r.Rows) != 1 || r.Rows[0][0].S != "Jim Gray" {
		t.Errorf("rows = %v", rowStrings(r))
	}
	if _, err := e.Execute("SELECT name FROM author WHERE aid = ?"); err == nil {
		t.Error("missing parameter should error")
	}
}

func TestInsertUpdateDelete(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "INSERT INTO author (aid, name) VALUES ('new', 'New Author')")
	if r.RowsAffected != 1 || r.LastRID < 0 {
		t.Errorf("insert result = %+v", r)
	}
	r = mustQuery(t, e, "UPDATE author SET born = 2000 WHERE aid = 'new'")
	if r.RowsAffected != 1 {
		t.Errorf("update affected = %d", r.RowsAffected)
	}
	q := mustQuery(t, e, "SELECT born FROM author WHERE aid = 'new'")
	if q.Rows[0][0].I != 2000 {
		t.Errorf("born = %v", q.Rows[0][0])
	}
	r = mustQuery(t, e, "DELETE FROM author WHERE aid = 'new'")
	if r.RowsAffected != 1 {
		t.Errorf("delete affected = %d", r.RowsAffected)
	}
	q = mustQuery(t, e, "SELECT COUNT(*) FROM author")
	if q.Rows[0][0].I != 4 {
		t.Errorf("count after delete = %v", q.Rows[0][0])
	}
}

func TestUpdateSelfReference(t *testing.T) {
	e := newEngine(t)
	mustQuery(t, e, "UPDATE author SET born = born + 1 WHERE aid = 'gray'")
	q := mustQuery(t, e, "SELECT born FROM author WHERE aid = 'gray'")
	if q.Rows[0][0].I != 1945 {
		t.Errorf("born = %v", q.Rows[0][0])
	}
}

func TestDeleteRestrictPropagates(t *testing.T) {
	e := newEngine(t)
	_, err := e.Execute("DELETE FROM author WHERE aid = 'gray'")
	if !errors.Is(err, sqldb.ErrFKRestrict) {
		t.Errorf("want ErrFKRestrict, got %v", err)
	}
}

func TestFKViolationViaSQL(t *testing.T) {
	e := newEngine(t)
	_, err := e.Execute("INSERT INTO writes VALUES ('ghost', 'tp')")
	if !errors.Is(err, sqldb.ErrFKViolation) {
		t.Errorf("want ErrFKViolation, got %v", err)
	}
}

func TestScalarFunctions(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT UPPER('ab'), LOWER('AB'), LENGTH('abc'), ABS(-4), COALESCE(NULL, 7), SUBSTR('hello', 2, 3)")
	row := r.Rows[0]
	want := []string{"AB", "ab", "3", "4", "7", "ell"}
	for i, w := range want {
		if row[i].String() != w {
			t.Errorf("func %d = %v, want %s", i, row[i], w)
		}
	}
}

func TestArithmetic(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT 7 / 2, 7.0 / 2, 7 % 3, 2 * 3 + 1, 'a' || 'b'")
	row := r.Rows[0]
	if row[0].I != 3 {
		t.Errorf("int div = %v", row[0])
	}
	if row[1].F != 3.5 {
		t.Errorf("float div = %v", row[1])
	}
	if row[2].I != 1 {
		t.Errorf("mod = %v", row[2])
	}
	if row[3].I != 7 {
		t.Errorf("mul-add = %v", row[3])
	}
	if row[4].S != "ab" {
		t.Errorf("concat = %v", row[4])
	}
}

func TestDivisionByZero(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Execute("SELECT 1 / 0"); err == nil {
		t.Error("1/0 should error")
	}
	if _, err := e.Execute("SELECT 1 % 0"); err == nil {
		t.Error("1%0 should error")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Execute("SELECT aid FROM author a JOIN writes w ON w.aid = a.aid"); err == nil {
		t.Error("ambiguous column should error")
	}
}

func TestUnknownColumnAndTable(t *testing.T) {
	e := newEngine(t)
	if _, err := e.Execute("SELECT bogus FROM author"); err == nil {
		t.Error("unknown column should error")
	}
	if _, err := e.Execute("SELECT * FROM bogus"); err == nil {
		t.Error("unknown table should error")
	}
}

func TestStarTableForm(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT a.* FROM author a JOIN writes w ON w.aid = a.aid WHERE w.pid = 'tc'")
	if len(r.Columns) != 3 || len(r.Rows) != 1 {
		t.Errorf("result = %v / %v", r.Columns, rowStrings(r))
	}
}

func TestSelectNoFrom(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT 1 + 2 AS x")
	if len(r.Rows) != 1 || r.Rows[0][0].I != 3 {
		t.Errorf("rows = %v", rowStrings(r))
	}
}

func TestThreeValuedLogic(t *testing.T) {
	e := newEngine(t)
	// NULL OR TRUE = TRUE; NULL AND FALSE = FALSE; NULL AND TRUE = NULL.
	r := mustQuery(t, e, "SELECT COUNT(*) FROM author WHERE born > 0 OR 1 = 1")
	if r.Rows[0][0].I != 4 {
		t.Errorf("NULL OR TRUE: count = %v", r.Rows[0][0])
	}
	r = mustQuery(t, e, "SELECT COUNT(*) FROM author WHERE born > 0 AND 1 = 0")
	if r.Rows[0][0].I != 0 {
		t.Errorf("NULL AND FALSE: count = %v", r.Rows[0][0])
	}
	r = mustQuery(t, e, "SELECT COUNT(*) FROM author WHERE NOT (born > 0)")
	if r.Rows[0][0].I != 0 {
		t.Errorf("NOT NULL(3VL): count = %v", r.Rows[0][0])
	}
}

func TestGroupByExpression(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT year / 10 * 10 AS decade, COUNT(*) FROM paper GROUP BY year / 10 * 10 ORDER BY decade")
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "1980|1" || got[1] != "1990|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestOrderByAggregate(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT aid, COUNT(*) FROM writes GROUP BY aid ORDER BY COUNT(*) DESC, aid LIMIT 1")
	got := rowStrings(r)
	if len(got) != 1 || got[0] != "gray|2" {
		t.Errorf("rows = %v", got)
	}
}

func TestFormatTable(t *testing.T) {
	e := newEngine(t)
	r := mustQuery(t, e, "SELECT aid FROM author WHERE aid = 'gray'")
	s := FormatTable(r)
	if !strings.Contains(s, "aid") || !strings.Contains(s, "gray") || !strings.Contains(s, "(1 rows)") {
		t.Errorf("FormatTable = %q", s)
	}
	s = FormatTable(&Result{RowsAffected: 2})
	if !strings.Contains(s, "2 row(s) affected") {
		t.Errorf("FormatTable exec = %q", s)
	}
}

func TestExecuteScriptStopsOnError(t *testing.T) {
	e := New(sqldb.NewDatabase())
	_, err := e.ExecuteScript("CREATE TABLE t (a INT); INSERT INTO missing VALUES (1); CREATE TABLE u (b INT);")
	if err == nil {
		t.Fatal("script should fail")
	}
	if e.DB().Table("t") == nil {
		t.Error("statements before the error should have run")
	}
	if e.DB().Table("u") != nil {
		t.Error("statements after the error should not have run")
	}
}

func TestMatchLike(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "HELLO", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true}, // each _ matches exactly one char
		{"hello", "h_lo", false},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "%%", true},
		{"abc", "a%b%c", true},
		{"abc", "a%d", false},
		{"aXbXc", "a%b%c", true},
	}
	for _, c := range cases {
		if got := matchLike(c.s, c.p); got != c.want {
			t.Errorf("matchLike(%q, %q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}
