package sqlexec

import (
	"fmt"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlparse"
)

// rowIter is the Volcano-style pull iterator rows flow through. next returns
// (nil, nil) at end of stream.
type rowIter interface {
	next() ([]sqldb.Value, error)
}

// --- scan ---

type scanIter struct {
	t   *sqldb.Table
	rid sqldb.RID
}

func (s *scanIter) next() ([]sqldb.Value, error) {
	for int64(s.rid) < int64(s.t.Cap()) {
		row := s.t.Row(s.rid)
		s.rid++
		if row != nil {
			return row, nil
		}
	}
	return nil, nil
}

func tableSchema(t *sqldb.Table, alias string) *rowSchema {
	qual := strings.ToLower(alias)
	if qual == "" {
		qual = strings.ToLower(t.Name())
	}
	s := &rowSchema{}
	for _, c := range t.Schema().Columns {
		s.cols = append(s.cols, colInfo{qual: qual, name: strings.ToLower(c.Name), disp: c.Name})
	}
	return s
}

// --- filter ---

type filterIter struct {
	in     rowIter
	cond   sqlparse.Expr
	schema *rowSchema
	params []sqldb.Value
}

func (f *filterIter) next() ([]sqldb.Value, error) {
	for {
		row, err := f.in.next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := eval(f.cond, &evalCtx{schema: f.schema, row: row, params: f.params})
		if err != nil {
			return nil, err
		}
		if !v.IsNull() && v.AsBool() {
			return row, nil
		}
	}
}

// --- joins ---

// joinIter joins the left stream against a base table. When the ON
// condition contains equality predicates between a left expression and a
// right column, the right side is probed through the table's secondary
// index ("index nested loops"); otherwise each left row scans the right
// table.
type joinIter struct {
	left    rowIter
	lSchema *rowSchema
	right   *sqldb.Table
	rWidth  int
	on      sqlparse.Expr
	outer   bool // LEFT JOIN
	schema  *rowSchema
	params  []sqldb.Value

	// index acceleration: probe right.LookupEq(eqRightCol, eval(eqLeftExpr))
	eqRightCol int
	eqLeftExpr sqlparse.Expr

	curLeft  []sqldb.Value
	matches  []sqldb.RID
	matchPos int
	emitted  bool // whether curLeft produced any row (for LEFT JOIN)
	scanRID  sqldb.RID
	indexed  bool
}

func (j *joinIter) next() ([]sqldb.Value, error) {
	for {
		if j.curLeft == nil {
			l, err := j.left.next()
			if err != nil {
				return nil, err
			}
			if l == nil {
				return nil, nil
			}
			j.curLeft = l
			j.emitted = false
			j.scanRID = 0
			j.matchPos = 0
			if j.indexed {
				v, err := eval(j.eqLeftExpr, &evalCtx{schema: j.lSchema, row: l, params: j.params})
				if err != nil {
					return nil, err
				}
				if v.IsNull() {
					j.matches = nil
				} else {
					j.matches = j.right.LookupEq(j.eqRightCol, v)
				}
			}
		}
		var rRow []sqldb.Value
		if j.indexed {
			if j.matchPos < len(j.matches) {
				rRow = j.right.Row(j.matches[j.matchPos])
				j.matchPos++
			}
		} else {
			for int64(j.scanRID) < int64(j.right.Cap()) {
				r := j.right.Row(j.scanRID)
				j.scanRID++
				if r != nil {
					rRow = r
					break
				}
			}
		}
		if rRow == nil {
			// Right side exhausted for this left row.
			left := j.curLeft
			wasEmitted := j.emitted
			j.curLeft = nil
			if j.outer && !wasEmitted {
				out := make([]sqldb.Value, 0, len(left)+j.rWidth)
				out = append(out, left...)
				for i := 0; i < j.rWidth; i++ {
					out = append(out, sqldb.Null())
				}
				return out, nil
			}
			continue
		}
		out := make([]sqldb.Value, 0, len(j.curLeft)+len(rRow))
		out = append(out, j.curLeft...)
		out = append(out, rRow...)
		if j.on != nil {
			v, err := eval(j.on, &evalCtx{schema: j.schema, row: out, params: j.params})
			if err != nil {
				return nil, err
			}
			if v.IsNull() || !v.AsBool() {
				continue
			}
		}
		j.emitted = true
		return out, nil
	}
}

// findEquiProbe looks for a conjunct of the ON condition of the form
// <left expr> = <right column> (either side) where the right column belongs
// to the table being joined in and the other side references only columns
// of the left schema. Returns the right column position and the left
// expression, or -1.
func findEquiProbe(on sqlparse.Expr, lSchema *rowSchema, right *sqldb.Table, rightQual string) (int, sqlparse.Expr) {
	be, ok := on.(*sqlparse.BinaryExpr)
	if !ok {
		return -1, nil
	}
	if be.Op == "AND" {
		if c, e := findEquiProbe(be.Left, lSchema, right, rightQual); c >= 0 {
			return c, e
		}
		return findEquiProbe(be.Right, lSchema, right, rightQual)
	}
	if be.Op != "=" {
		return -1, nil
	}
	try := func(a, b sqlparse.Expr) (int, sqlparse.Expr) {
		cr, ok := a.(*sqlparse.ColumnRef)
		if !ok {
			return -1, nil
		}
		if cr.Table != "" && !strings.EqualFold(cr.Table, rightQual) {
			return -1, nil
		}
		ci := right.ColumnIndex(cr.Column)
		if ci < 0 {
			return -1, nil
		}
		if cr.Table == "" {
			// Unqualified: must not also resolve on the left side.
			if _, err := lSchema.resolve("", cr.Column); err == nil {
				return -1, nil
			}
		}
		if !exprUsesOnly(b, lSchema) {
			return -1, nil
		}
		return ci, b
	}
	if ci, e := try(be.Right, be.Left); ci >= 0 {
		return ci, e
	}
	return try(be.Left, be.Right)
}

// exprUsesOnly reports whether every column reference in e resolves in s.
func exprUsesOnly(e sqlparse.Expr, s *rowSchema) bool {
	ok := true
	var walk func(sqlparse.Expr)
	walk = func(e sqlparse.Expr) {
		switch x := e.(type) {
		case *sqlparse.ColumnRef:
			if _, err := s.resolve(x.Table, x.Column); err != nil {
				ok = false
			}
		case *sqlparse.BinaryExpr:
			walk(x.Left)
			walk(x.Right)
		case *sqlparse.UnaryExpr:
			walk(x.X)
		case *sqlparse.FuncCall:
			for _, a := range x.Args {
				walk(a)
			}
		case *sqlparse.InExpr:
			walk(x.X)
			for _, a := range x.List {
				walk(a)
			}
		case *sqlparse.IsNullExpr:
			walk(x.X)
		case *sqlparse.BetweenExpr:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		}
	}
	walk(e)
	return ok
}

// buildFrom builds the row source for a FROM clause.
func buildFrom(db *sqldb.Database, refs []sqlparse.TableRef, params []sqldb.Value) (rowIter, *rowSchema, error) {
	if len(refs) == 0 {
		return &singleRowIter{}, &rowSchema{}, nil
	}
	t0 := db.Table(refs[0].Table)
	if t0 == nil {
		return nil, nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, refs[0].Table)
	}
	it := rowIter(&scanIter{t: t0})
	schema := tableSchema(t0, refs[0].Alias)
	for _, r := range refs[1:] {
		rt := db.Table(r.Table)
		if rt == nil {
			return nil, nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, r.Table)
		}
		rQual := r.Alias
		if rQual == "" {
			rQual = r.Table
		}
		combined := &rowSchema{cols: append(append([]colInfo{}, schema.cols...), tableSchema(rt, r.Alias).cols...)}
		j := &joinIter{
			left:    it,
			lSchema: schema,
			right:   rt,
			rWidth:  len(rt.Schema().Columns),
			on:      r.On,
			outer:   r.Join == sqlparse.JoinLeft,
			schema:  combined,
			params:  params,
		}
		if r.On != nil {
			if ci, le := findEquiProbe(r.On, schema, rt, rQual); ci >= 0 {
				j.indexed = true
				j.eqRightCol = ci
				j.eqLeftExpr = le
			}
		}
		it = j
		schema = combined
	}
	return it, schema, nil
}

// singleRowIter yields one empty row; it backs FROM-less selects like
// SELECT 1+2.
type singleRowIter struct{ done bool }

func (s *singleRowIter) next() ([]sqldb.Value, error) {
	if s.done {
		return nil, nil
	}
	s.done = true
	return []sqldb.Value{}, nil
}

// --- select driver ---

// outRow pairs a projected row with its sort keys.
type outRow struct {
	vals []sqldb.Value
	keys []sqldb.Value
}

func runSelect(db *sqldb.Database, sel *sqlparse.Select, params []sqldb.Value) (*Result, error) {
	src, schema, err := buildFrom(db, sel.From, params)
	if err != nil {
		return nil, err
	}
	if sel.Where != nil {
		src = &filterIter{in: src, cond: sel.Where, schema: schema, params: params}
	}

	// Expand projection items.
	type projItem struct {
		expr sqlparse.Expr
		name string
	}
	var items []projItem
	for _, it := range sel.Items {
		switch {
		case it.Star:
			if len(schema.cols) == 0 {
				return nil, fmt.Errorf("sqlexec: SELECT * with no FROM")
			}
			for _, c := range schema.cols {
				items = append(items, projItem{expr: &sqlparse.ColumnRef{Table: c.qual, Column: c.name}, name: c.disp})
			}
		case it.StarTable != "":
			found := false
			q := strings.ToLower(it.StarTable)
			for _, c := range schema.cols {
				if c.qual == q {
					items = append(items, projItem{expr: &sqlparse.ColumnRef{Table: c.qual, Column: c.name}, name: c.disp})
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("sqlexec: unknown table %q in %s.*", it.StarTable, it.StarTable)
			}
		default:
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sqlparse.ColumnRef); ok {
					name = cr.Column
				} else {
					name = it.Expr.String()
				}
			}
			items = append(items, projItem{expr: it.Expr, name: name})
		}
	}

	// Gather aggregate calls from items, HAVING and ORDER BY.
	var aggCalls []*sqlparse.FuncCall
	seenAgg := map[string]bool{}
	collectAggs := func(e sqlparse.Expr) {
		walkAggregates(e, func(f *sqlparse.FuncCall) {
			k := f.String()
			if !seenAgg[k] {
				seenAgg[k] = true
				aggCalls = append(aggCalls, f)
			}
		})
	}
	for _, it := range items {
		collectAggs(it.expr)
	}
	if sel.Having != nil {
		collectAggs(sel.Having)
	}
	for _, o := range sel.OrderBy {
		collectAggs(o.Expr)
	}
	grouped := len(aggCalls) > 0 || len(sel.GroupBy) > 0

	// orderKey computes the sort keys for one projected row given its
	// evaluation context.
	orderKey := func(ctx *evalCtx, out []sqldb.Value) ([]sqldb.Value, error) {
		if len(sel.OrderBy) == 0 {
			return nil, nil
		}
		keys := make([]sqldb.Value, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			// ORDER BY <ordinal>
			if lit, ok := o.Expr.(*sqlparse.Literal); ok && lit.Value.T == sqldb.TypeInt {
				n := int(lit.Value.I)
				if n < 1 || n > len(out) {
					return nil, fmt.Errorf("sqlexec: ORDER BY position %d out of range", n)
				}
				keys[i] = out[n-1]
				continue
			}
			// ORDER BY <output alias>
			if cr, ok := o.Expr.(*sqlparse.ColumnRef); ok && cr.Table == "" {
				matched := -1
				for j, it := range items {
					if strings.EqualFold(it.name, cr.Column) {
						matched = j
						break
					}
				}
				if matched >= 0 {
					keys[i] = out[matched]
					continue
				}
			}
			v, err := eval(o.Expr, ctx)
			if err != nil {
				return nil, err
			}
			keys[i] = v
		}
		return keys, nil
	}

	var rows []outRow
	if grouped {
		type group struct {
			accs []*aggAcc
			rep  []sqldb.Value
		}
		groups := make(map[string]*group)
		var order []string
		for {
			row, err := src.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			ctx := &evalCtx{schema: schema, row: row, params: params}
			var key string
			if len(sel.GroupBy) > 0 {
				kv := make([]sqldb.Value, len(sel.GroupBy))
				for i, g := range sel.GroupBy {
					v, err := eval(g, ctx)
					if err != nil {
						return nil, err
					}
					kv[i] = v
				}
				key = sqldb.EncodeRowKey(kv)
			}
			g, ok := groups[key]
			if !ok {
				g = &group{rep: row}
				for _, f := range aggCalls {
					g.accs = append(g.accs, newAggAcc(f))
				}
				groups[key] = g
				order = append(order, key)
			}
			for _, a := range g.accs {
				if err := a.add(ctx); err != nil {
					return nil, err
				}
			}
		}
		// A global aggregate over an empty input still yields one row.
		if len(groups) == 0 && len(sel.GroupBy) == 0 {
			g := &group{rep: make([]sqldb.Value, len(schema.cols))}
			for _, f := range aggCalls {
				g.accs = append(g.accs, newAggAcc(f))
			}
			groups[""] = g
			order = append(order, "")
		}
		for _, key := range order {
			g := groups[key]
			aggs := make(map[string]sqldb.Value, len(aggCalls))
			for i, f := range aggCalls {
				aggs[f.String()] = g.accs[i].result()
			}
			ctx := &evalCtx{schema: schema, row: g.rep, params: params, aggs: aggs}
			if sel.Having != nil {
				hv, err := eval(sel.Having, ctx)
				if err != nil {
					return nil, err
				}
				if hv.IsNull() || !hv.AsBool() {
					continue
				}
			}
			out := make([]sqldb.Value, len(items))
			for i, it := range items {
				v, err := eval(it.expr, ctx)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			keys, err := orderKey(ctx, out)
			if err != nil {
				return nil, err
			}
			rows = append(rows, outRow{vals: out, keys: keys})
		}
	} else {
		for {
			row, err := src.next()
			if err != nil {
				return nil, err
			}
			if row == nil {
				break
			}
			ctx := &evalCtx{schema: schema, row: row, params: params}
			out := make([]sqldb.Value, len(items))
			for i, it := range items {
				v, err := eval(it.expr, ctx)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			keys, err := orderKey(ctx, out)
			if err != nil {
				return nil, err
			}
			rows = append(rows, outRow{vals: out, keys: keys})
		}
	}

	if sel.Distinct {
		seen := make(map[string]bool, len(rows))
		kept := rows[:0]
		for _, r := range rows {
			k := sqldb.EncodeRowKey(r.vals)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, r)
			}
		}
		rows = kept
	}

	if len(sel.OrderBy) > 0 {
		var sortErr error
		sort.SliceStable(rows, func(i, j int) bool {
			for k, o := range sel.OrderBy {
				c, err := rows[i].keys[k].Compare(rows[j].keys[k])
				if err != nil {
					if sortErr == nil {
						sortErr = err
					}
					return false
				}
				if c != 0 {
					if o.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		if sortErr != nil {
			return nil, sortErr
		}
	}

	// OFFSET / LIMIT.
	constInt := func(e sqlparse.Expr, what string) (int, error) {
		v, err := eval(e, &evalCtx{params: params})
		if err != nil {
			return 0, err
		}
		if v.T != sqldb.TypeInt || v.I < 0 {
			return 0, fmt.Errorf("sqlexec: %s must be a non-negative integer", what)
		}
		return int(v.I), nil
	}
	if sel.Offset != nil {
		n, err := constInt(sel.Offset, "OFFSET")
		if err != nil {
			return nil, err
		}
		if n >= len(rows) {
			rows = nil
		} else {
			rows = rows[n:]
		}
	}
	if sel.Limit != nil {
		n, err := constInt(sel.Limit, "LIMIT")
		if err != nil {
			return nil, err
		}
		if n < len(rows) {
			rows = rows[:n]
		}
	}

	res := &Result{}
	for _, it := range items {
		res.Columns = append(res.Columns, it.name)
	}
	for _, r := range rows {
		res.Rows = append(res.Rows, r.vals)
	}
	return res, nil
}

// walkAggregates calls fn for every aggregate FuncCall in e, without
// descending into aggregate arguments (nested aggregates are invalid
// anyway).
func walkAggregates(e sqlparse.Expr, fn func(*sqlparse.FuncCall)) {
	switch x := e.(type) {
	case *sqlparse.FuncCall:
		if sqlparse.AggregateFuncs[x.Name] {
			fn(x)
			return
		}
		for _, a := range x.Args {
			walkAggregates(a, fn)
		}
	case *sqlparse.BinaryExpr:
		walkAggregates(x.Left, fn)
		walkAggregates(x.Right, fn)
	case *sqlparse.UnaryExpr:
		walkAggregates(x.X, fn)
	case *sqlparse.InExpr:
		walkAggregates(x.X, fn)
		for _, a := range x.List {
			walkAggregates(a, fn)
		}
	case *sqlparse.IsNullExpr:
		walkAggregates(x.X, fn)
	case *sqlparse.BetweenExpr:
		walkAggregates(x.X, fn)
		walkAggregates(x.Lo, fn)
		walkAggregates(x.Hi, fn)
	}
}
