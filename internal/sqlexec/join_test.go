package sqlexec

import (
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

// TestLeftJoinIndexedProbe exercises the indexed nested-loop path together
// with LEFT JOIN semantics (emitted-flag handling): left rows without
// matches must surface exactly once with NULLs.
func TestLeftJoinIndexedProbe(t *testing.T) {
	e := New(sqldb.NewDatabase())
	if _, err := e.ExecuteScript(`
		CREATE TABLE parent (id INT PRIMARY KEY, name TEXT);
		CREATE TABLE child (id INT PRIMARY KEY, pid INT REFERENCES parent);
		INSERT INTO parent VALUES (1, 'has kids'), (2, 'childless');
		INSERT INTO child VALUES (10, 1), (11, 1);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Execute(`SELECT p.id, c.id FROM parent p LEFT JOIN child c ON c.pid = p.id ORDER BY p.id, c.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(r)
	want := []string{"1|10", "1|11", "2|NULL"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestJoinWithCompoundOn exercises an ON clause with an extra conjunct: the
// index probe uses the equi-part, the residual filters.
func TestJoinWithCompoundOn(t *testing.T) {
	e := New(sqldb.NewDatabase())
	if _, err := e.ExecuteScript(`
		CREATE TABLE a (id INT PRIMARY KEY, v INT);
		CREATE TABLE b (id INT PRIMARY KEY, aid INT, flag INT);
		INSERT INTO a VALUES (1, 100), (2, 200);
		INSERT INTO b VALUES (10, 1, 1), (11, 1, 0), (12, 2, 1);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Execute(`SELECT b.id FROM a JOIN b ON b.aid = a.id AND b.flag = 1 ORDER BY b.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(r)
	if len(got) != 2 || got[0] != "10" || got[1] != "12" {
		t.Errorf("rows = %v", got)
	}
}

// TestJoinNullKeysNeverMatch: NULL join keys match nothing under the
// indexed and the scanning paths alike.
func TestJoinNullKeysNeverMatch(t *testing.T) {
	e := New(sqldb.NewDatabase())
	if _, err := e.ExecuteScript(`
		CREATE TABLE l (id INT PRIMARY KEY, k INT);
		CREATE TABLE r (id INT PRIMARY KEY, k INT);
		INSERT INTO l VALUES (1, NULL), (2, 7);
		INSERT INTO r VALUES (10, NULL), (11, 7);
	`); err != nil {
		t.Fatal(err)
	}
	q, err := e.Execute(`SELECT l.id, r.id FROM l JOIN r ON r.k = l.k`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(q)
	if len(got) != 1 || got[0] != "2|11" {
		t.Errorf("rows = %v", got)
	}
	// LEFT JOIN keeps the NULL-keyed left row.
	q, err = e.Execute(`SELECT l.id, r.id FROM l LEFT JOIN r ON r.k = l.k ORDER BY l.id`)
	if err != nil {
		t.Fatal(err)
	}
	got = rowStrings(q)
	if len(got) != 2 || got[0] != "1|NULL" {
		t.Errorf("left join rows = %v", got)
	}
}

// TestSelfJoin uses the same table under two aliases.
func TestSelfJoin(t *testing.T) {
	e := New(sqldb.NewDatabase())
	if _, err := e.ExecuteScript(`
		CREATE TABLE n (id INT PRIMARY KEY, parent INT);
		INSERT INTO n VALUES (1, NULL), (2, 1), (3, 1), (4, 2);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Execute(`SELECT kid.id, mom.id FROM n kid JOIN n mom ON mom.id = kid.parent ORDER BY kid.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(r)
	want := []string{"2|1", "3|1", "4|2"}
	if len(got) != len(want) {
		t.Fatalf("rows = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d = %q", i, got[i])
		}
	}
}

// TestThreeWayJoinChain checks column resolution across three joined
// tables.
func TestThreeWayJoinChain(t *testing.T) {
	e := New(sqldb.NewDatabase())
	if _, err := e.ExecuteScript(`
		CREATE TABLE x (id INT PRIMARY KEY);
		CREATE TABLE y (id INT PRIMARY KEY, xid INT);
		CREATE TABLE z (id INT PRIMARY KEY, yid INT);
		INSERT INTO x VALUES (1);
		INSERT INTO y VALUES (10, 1);
		INSERT INTO z VALUES (100, 10);
	`); err != nil {
		t.Fatal(err)
	}
	r, err := e.Execute(`SELECT x.id, y.id, z.id FROM x
		JOIN y ON y.xid = x.id
		JOIN z ON z.yid = y.id`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowStrings(r)
	if len(got) != 1 || got[0] != "1|10|100" {
		t.Errorf("rows = %v", got)
	}
}
