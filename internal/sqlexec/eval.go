// Package sqlexec plans and executes parsed SQL statements against a
// sqldb.Database. Together with internal/sqlparse it forms the SQL access
// path the paper got from JDBC + IBM UDB: the browsing subsystem compiles
// its view operations to SELECT statements executed here, and datasets can
// be loaded from .sql scripts.
package sqlexec

import (
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlparse"
)

// colInfo describes one column of an intermediate row: the (lower-cased)
// qualifier it is reachable under, its (lower-cased) name, and its display
// name.
type colInfo struct {
	qual string
	name string
	disp string
}

// rowSchema is the shape of rows flowing through the executor.
type rowSchema struct {
	cols []colInfo
}

func (s *rowSchema) resolve(qual, name string) (int, error) {
	qual = strings.ToLower(qual)
	name = strings.ToLower(name)
	found := -1
	for i, c := range s.cols {
		if c.name != name {
			continue
		}
		if qual != "" && c.qual != qual {
			continue
		}
		if found >= 0 {
			return -1, fmt.Errorf("sqlexec: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qual != "" {
			return -1, fmt.Errorf("sqlexec: no column %s.%s", qual, name)
		}
		return -1, fmt.Errorf("sqlexec: no column %q", name)
	}
	return found, nil
}

// evalCtx carries everything expression evaluation needs: the row schema and
// values, bound parameters, and (after aggregation) computed aggregate
// values keyed by the canonical expression string.
type evalCtx struct {
	schema *rowSchema
	row    []sqldb.Value
	params []sqldb.Value
	aggs   map[string]sqldb.Value
}

func eval(e sqlparse.Expr, ctx *evalCtx) (sqldb.Value, error) {
	// Aggregate results computed by the grouping stage shadow everything.
	if ctx.aggs != nil {
		if v, ok := ctx.aggs[e.String()]; ok {
			return v, nil
		}
	}
	switch x := e.(type) {
	case *sqlparse.Literal:
		return x.Value, nil
	case *sqlparse.Param:
		if x.Index >= len(ctx.params) {
			return sqldb.Null(), fmt.Errorf("sqlexec: missing value for parameter %d", x.Index+1)
		}
		return ctx.params[x.Index], nil
	case *sqlparse.ColumnRef:
		if ctx.schema == nil {
			return sqldb.Null(), fmt.Errorf("sqlexec: column %s in constant context", e.String())
		}
		i, err := ctx.schema.resolve(x.Table, x.Column)
		if err != nil {
			return sqldb.Null(), err
		}
		return ctx.row[i], nil
	case *sqlparse.UnaryExpr:
		v, err := eval(x.X, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		switch x.Op {
		case "-":
			switch v.T {
			case sqldb.TypeNull:
				return sqldb.Null(), nil
			case sqldb.TypeInt:
				return sqldb.Int(-v.I), nil
			case sqldb.TypeFloat:
				return sqldb.Float(-v.F), nil
			}
			return sqldb.Null(), fmt.Errorf("sqlexec: cannot negate %s", v.T)
		case "NOT":
			if v.IsNull() {
				return sqldb.Null(), nil
			}
			return sqldb.Bool(!v.AsBool()), nil
		}
		return sqldb.Null(), fmt.Errorf("sqlexec: unknown unary op %q", x.Op)
	case *sqlparse.BinaryExpr:
		return evalBinary(x, ctx)
	case *sqlparse.FuncCall:
		return evalScalarFunc(x, ctx)
	case *sqlparse.InExpr:
		v, err := eval(x.X, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		if v.IsNull() {
			return sqldb.Null(), nil
		}
		sawNull := false
		for _, item := range x.List {
			iv, err := eval(item, ctx)
			if err != nil {
				return sqldb.Null(), err
			}
			if iv.IsNull() {
				sawNull = true
				continue
			}
			if v.Equal(iv) {
				return sqldb.Bool(!x.Not), nil
			}
		}
		if sawNull {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(x.Not), nil
	case *sqlparse.IsNullExpr:
		v, err := eval(x.X, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		return sqldb.Bool(v.IsNull() != x.Not), nil
	case *sqlparse.BetweenExpr:
		v, err := eval(x.X, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		lo, err := eval(x.Lo, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		hi, err := eval(x.Hi, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		if v.IsNull() || lo.IsNull() || hi.IsNull() {
			return sqldb.Null(), nil
		}
		c1, err := v.Compare(lo)
		if err != nil {
			return sqldb.Null(), err
		}
		c2, err := v.Compare(hi)
		if err != nil {
			return sqldb.Null(), err
		}
		in := c1 >= 0 && c2 <= 0
		return sqldb.Bool(in != x.Not), nil
	}
	return sqldb.Null(), fmt.Errorf("sqlexec: cannot evaluate %T", e)
}

func evalBinary(x *sqlparse.BinaryExpr, ctx *evalCtx) (sqldb.Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := eval(x.Left, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		// Short-circuit where three-valued logic allows it.
		if x.Op == "AND" && !l.IsNull() && !l.AsBool() {
			return sqldb.Bool(false), nil
		}
		if x.Op == "OR" && !l.IsNull() && l.AsBool() {
			return sqldb.Bool(true), nil
		}
		r, err := eval(x.Right, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		if x.Op == "AND" {
			if !r.IsNull() && !r.AsBool() {
				return sqldb.Bool(false), nil
			}
			if l.IsNull() || r.IsNull() {
				return sqldb.Null(), nil
			}
			return sqldb.Bool(true), nil
		}
		if !r.IsNull() && r.AsBool() {
			return sqldb.Bool(true), nil
		}
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(false), nil
	}

	l, err := eval(x.Left, ctx)
	if err != nil {
		return sqldb.Null(), err
	}
	r, err := eval(x.Right, ctx)
	if err != nil {
		return sqldb.Null(), err
	}
	switch x.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		c, err := l.Compare(r)
		if err != nil {
			return sqldb.Null(), err
		}
		var b bool
		switch x.Op {
		case "=":
			b = c == 0
		case "<>":
			b = c != 0
		case "<":
			b = c < 0
		case "<=":
			b = c <= 0
		case ">":
			b = c > 0
		case ">=":
			b = c >= 0
		}
		return sqldb.Bool(b), nil
	case "LIKE":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Bool(matchLike(l.String(), r.String())), nil
	case "||":
		if l.IsNull() || r.IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Text(l.String() + r.String()), nil
	case "+", "-", "*", "/", "%":
		return evalArith(x.Op, l, r)
	}
	return sqldb.Null(), fmt.Errorf("sqlexec: unknown operator %q", x.Op)
}

func evalArith(op string, l, r sqldb.Value) (sqldb.Value, error) {
	if l.IsNull() || r.IsNull() {
		return sqldb.Null(), nil
	}
	numeric := func(v sqldb.Value) bool {
		return v.T == sqldb.TypeInt || v.T == sqldb.TypeFloat || v.T == sqldb.TypeBool
	}
	if !numeric(l) || !numeric(r) {
		return sqldb.Null(), fmt.Errorf("sqlexec: %s requires numeric operands, got %s and %s", op, l.T, r.T)
	}
	if l.T == sqldb.TypeInt && r.T == sqldb.TypeInt {
		a, b := l.I, r.I
		switch op {
		case "+":
			return sqldb.Int(a + b), nil
		case "-":
			return sqldb.Int(a - b), nil
		case "*":
			return sqldb.Int(a * b), nil
		case "/":
			if b == 0 {
				return sqldb.Null(), fmt.Errorf("sqlexec: division by zero")
			}
			return sqldb.Int(a / b), nil
		case "%":
			if b == 0 {
				return sqldb.Null(), fmt.Errorf("sqlexec: division by zero")
			}
			return sqldb.Int(a % b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case "+":
		return sqldb.Float(a + b), nil
	case "-":
		return sqldb.Float(a - b), nil
	case "*":
		return sqldb.Float(a * b), nil
	case "/":
		if b == 0 {
			return sqldb.Null(), fmt.Errorf("sqlexec: division by zero")
		}
		return sqldb.Float(a / b), nil
	case "%":
		return sqldb.Null(), fmt.Errorf("sqlexec: %% requires integer operands")
	}
	return sqldb.Null(), fmt.Errorf("sqlexec: unknown operator %q", op)
}

// matchLike implements SQL LIKE with % (any run) and _ (any one char),
// case-insensitively (the common default for keyword-driven applications;
// documented in the package README).
func matchLike(s, pattern string) bool {
	s = strings.ToLower(s)
	pattern = strings.ToLower(pattern)
	// Iterative two-pointer matcher with backtracking on the last %.
	si, pi := 0, 0
	starP, starS := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			si++
			pi++
		case pi < len(pattern) && pattern[pi] == '%':
			starP = pi
			starS = si
			pi++
		case starP >= 0:
			starS++
			si = starS
			pi = starP + 1
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

func evalScalarFunc(x *sqlparse.FuncCall, ctx *evalCtx) (sqldb.Value, error) {
	if sqlparse.AggregateFuncs[x.Name] {
		return sqldb.Null(), fmt.Errorf("sqlexec: aggregate %s used outside GROUP BY context", x.Name)
	}
	args := make([]sqldb.Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, ctx)
		if err != nil {
			return sqldb.Null(), err
		}
		args[i] = v
	}
	needArgs := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("sqlexec: %s expects %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "UPPER":
		if err := needArgs(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Text(strings.ToUpper(args[0].String())), nil
	case "LOWER":
		if err := needArgs(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Text(strings.ToLower(args[0].String())), nil
	case "LENGTH":
		if err := needArgs(1); err != nil {
			return sqldb.Null(), err
		}
		if args[0].IsNull() {
			return sqldb.Null(), nil
		}
		return sqldb.Int(int64(len(args[0].String()))), nil
	case "ABS":
		if err := needArgs(1); err != nil {
			return sqldb.Null(), err
		}
		v := args[0]
		switch v.T {
		case sqldb.TypeNull:
			return sqldb.Null(), nil
		case sqldb.TypeInt:
			if v.I < 0 {
				return sqldb.Int(-v.I), nil
			}
			return v, nil
		case sqldb.TypeFloat:
			if v.F < 0 {
				return sqldb.Float(-v.F), nil
			}
			return v, nil
		}
		return sqldb.Null(), fmt.Errorf("sqlexec: ABS of %s", v.T)
	case "COALESCE":
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return sqldb.Null(), nil
	case "SUBSTR":
		if len(args) != 2 && len(args) != 3 {
			return sqldb.Null(), fmt.Errorf("sqlexec: SUBSTR expects 2 or 3 arguments")
		}
		if args[0].IsNull() || args[1].IsNull() {
			return sqldb.Null(), nil
		}
		s := args[0].String()
		start := int(args[1].AsFloat()) - 1 // SQL SUBSTR is 1-based
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return sqldb.Text(""), nil
		}
		end := len(s)
		if len(args) == 3 && !args[2].IsNull() {
			if n := int(args[2].AsFloat()); start+n < end {
				end = start + n
			}
		}
		if end < start {
			end = start
		}
		return sqldb.Text(s[start:end]), nil
	}
	return sqldb.Null(), fmt.Errorf("sqlexec: unknown function %s", x.Name)
}

// aggAcc accumulates one aggregate over the rows of a group.
type aggAcc struct {
	fn       string
	star     bool
	distinct bool
	arg      sqlparse.Expr

	count   int64
	sumI    int64
	sumF    float64
	isFloat bool
	min     sqldb.Value
	max     sqldb.Value
	hasMM   bool
	seen    map[string]bool
}

func newAggAcc(f *sqlparse.FuncCall) *aggAcc {
	a := &aggAcc{fn: f.Name, star: f.Star, distinct: f.Distinct}
	if !f.Star && len(f.Args) == 1 {
		a.arg = f.Args[0]
	}
	if a.distinct {
		a.seen = make(map[string]bool)
	}
	return a
}

func (a *aggAcc) add(ctx *evalCtx) error {
	if a.star {
		a.count++
		return nil
	}
	if a.arg == nil {
		return fmt.Errorf("sqlexec: %s requires one argument", a.fn)
	}
	v, err := eval(a.arg, ctx)
	if err != nil {
		return err
	}
	if v.IsNull() {
		return nil
	}
	if a.distinct {
		k := v.KeyString()
		if a.seen[k] {
			return nil
		}
		a.seen[k] = true
	}
	a.count++
	switch a.fn {
	case "SUM", "AVG":
		switch v.T {
		case sqldb.TypeInt, sqldb.TypeBool:
			a.sumI += v.I
			a.sumF += float64(v.I)
		case sqldb.TypeFloat:
			a.isFloat = true
			a.sumF += v.F
		default:
			return fmt.Errorf("sqlexec: %s of non-numeric %s", a.fn, v.T)
		}
	case "MIN", "MAX":
		if !a.hasMM {
			a.min, a.max = v, v
			a.hasMM = true
			return nil
		}
		if c, err := v.Compare(a.min); err != nil {
			return err
		} else if c < 0 {
			a.min = v
		}
		if c, err := v.Compare(a.max); err != nil {
			return err
		} else if c > 0 {
			a.max = v
		}
	}
	return nil
}

func (a *aggAcc) result() sqldb.Value {
	switch a.fn {
	case "COUNT":
		return sqldb.Int(a.count)
	case "SUM":
		if a.count == 0 {
			return sqldb.Null()
		}
		if a.isFloat {
			return sqldb.Float(a.sumF)
		}
		return sqldb.Int(a.sumI)
	case "AVG":
		if a.count == 0 {
			return sqldb.Null()
		}
		return sqldb.Float(a.sumF / float64(a.count))
	case "MIN":
		if !a.hasMM {
			return sqldb.Null()
		}
		return a.min
	case "MAX":
		if !a.hasMM {
			return sqldb.Null()
		}
		return a.max
	}
	return sqldb.Null()
}
