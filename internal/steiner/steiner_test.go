package steiner

import (
	"math"
	"math/rand"
	"testing"

	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/sqldb"
)

// newChainDB builds authors a0..a(n-1), papers p0..p(n-2) where paper pi is
// written by ai and a(i+1): a path of coauthorships.
func newChainDB(t *testing.T, n int) *sqldb.Database {
	t.Helper()
	db := sqldb.NewDatabase()
	db.CreateTable(&sqldb.TableSchema{
		Name: "author",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "name", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "paper",
		Columns: []sqldb.Column{
			{Name: "id", Type: sqldb.TypeInt, NotNull: true},
			{Name: "title", Type: sqldb.TypeText},
		},
		PrimaryKey: []string{"id"},
	})
	db.CreateTable(&sqldb.TableSchema{
		Name: "writes",
		Columns: []sqldb.Column{
			{Name: "aid", Type: sqldb.TypeInt},
			{Name: "pid", Type: sqldb.TypeInt},
		},
		ForeignKeys: []sqldb.ForeignKey{
			{Column: "aid", RefTable: "author"},
			{Column: "pid", RefTable: "paper"},
		},
	})
	for i := 0; i < n; i++ {
		db.Insert("author", []sqldb.Value{sqldb.Int(int64(i)), sqldb.Text("author" + string(rune('a'+i)))})
	}
	for i := 0; i < n-1; i++ {
		db.Insert("paper", []sqldb.Value{sqldb.Int(int64(i)), sqldb.Text("paper")})
		db.Insert("writes", []sqldb.Value{sqldb.Int(int64(i)), sqldb.Int(int64(i))})
		db.Insert("writes", []sqldb.Value{sqldb.Int(int64(i + 1)), sqldb.Int(int64(i))})
	}
	return db
}

func buildAll(t *testing.T, db *sqldb.Database) (*graph.Graph, *index.Index) {
	t.Helper()
	g, err := graph.Build(db, nil)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(db, g)
	if err != nil {
		t.Fatal(err)
	}
	return g, ix
}

func authorNode(t *testing.T, db *sqldb.Database, g *graph.Graph, id int64) graph.NodeID {
	t.Helper()
	rid := db.Table("author").LookupPK([]sqldb.Value{sqldb.Int(id)})
	n := g.NodeOf("author", rid)
	if n == graph.NoNode {
		t.Fatalf("author %d has no node", id)
	}
	return n
}

func TestMinConnectionTreeAdjacentAuthors(t *testing.T) {
	db := newChainDB(t, 4)
	g, _ := buildAll(t, db)
	a0 := authorNode(t, db, g, 0)
	a1 := authorNode(t, db, g, 1)
	// Adjacent authors connect through their shared paper's two writes
	// tuples. Cheapest tree: rooted at one writes tuple: w->a0 (1) and
	// w->p->w'->a1... or rooted at the paper: p->w0->a0, p->w1->a1 with
	// backward p->w weights of 1 each (single-author-per-writes indegree
	// is 1 per writes tuple: each writes row references p once; two writes
	// rows of the same relation -> IN_writes(p)=2, so back edges cost 2).
	// The independent PairMinWeight oracle defines truth here.
	want := PairMinWeight(g, a0, a1)
	got, root, err := MinConnectionTree(g, [][]graph.NodeID{{a0}, {a1}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("exact = %v, pair oracle = %v", got, want)
	}
	if root == graph.NoNode {
		t.Error("no witness root")
	}
}

func TestMinConnectionTreeMatchesPairOracleRandom(t *testing.T) {
	db := newChainDB(t, 7)
	g, _ := buildAll(t, db)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		i := int64(rng.Intn(7))
		j := int64(rng.Intn(7))
		if i == j {
			continue
		}
		a, b := authorNode(t, db, g, i), authorNode(t, db, g, j)
		want := PairMinWeight(g, a, b)
		got, _, err := MinConnectionTree(g, [][]graph.NodeID{{a}, {b}})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("authors %d,%d: exact=%v oracle=%v", i, j, got, want)
		}
	}
}

func TestMinConnectionTreeThreeGroups(t *testing.T) {
	db := newChainDB(t, 5)
	g, _ := buildAll(t, db)
	a0 := authorNode(t, db, g, 0)
	a2 := authorNode(t, db, g, 2)
	a4 := authorNode(t, db, g, 4)
	w3, _, err := MinConnectionTree(g, [][]graph.NodeID{{a0}, {a2}, {a4}})
	if err != nil {
		t.Fatal(err)
	}
	w2, _, _ := MinConnectionTree(g, [][]graph.NodeID{{a0}, {a4}})
	if w3 < w2-1e-9 {
		t.Errorf("3-terminal tree (%v) cannot be lighter than its 2-terminal subproblem (%v)", w3, w2)
	}
	if math.IsInf(w3, 1) {
		t.Error("chain is connected; weight should be finite")
	}
}

func TestMinConnectionTreeGroupSemantics(t *testing.T) {
	db := newChainDB(t, 6)
	g, _ := buildAll(t, db)
	a0 := authorNode(t, db, g, 0)
	near := authorNode(t, db, g, 1)
	far := authorNode(t, db, g, 5)
	// Group {near, far}: the optimum should use the near member.
	wGroup, _, err := MinConnectionTree(g, [][]graph.NodeID{{a0}, {near, far}})
	if err != nil {
		t.Fatal(err)
	}
	wNear, _, _ := MinConnectionTree(g, [][]graph.NodeID{{a0}, {near}})
	if math.Abs(wGroup-wNear) > 1e-9 {
		t.Errorf("group optimum %v should equal near-member optimum %v", wGroup, wNear)
	}
}

func TestMinConnectionTreeDisconnected(t *testing.T) {
	db := newChainDB(t, 3)
	// An isolated island.
	db.CreateTable(&sqldb.TableSchema{
		Name:       "island",
		Columns:    []sqldb.Column{{Name: "id", Type: sqldb.TypeInt, NotNull: true}, {Name: "t", Type: sqldb.TypeText}},
		PrimaryKey: []string{"id"},
	})
	db.Insert("island", []sqldb.Value{sqldb.Int(1), sqldb.Text("alone")})
	g, _ := buildAll(t, db)
	a0 := authorNode(t, db, g, 0)
	iso := g.NodeOf("island", 0)
	w, _, err := MinConnectionTree(g, [][]graph.NodeID{{a0}, {iso}})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w, 1) {
		t.Errorf("disconnected terminals should give Inf, got %v", w)
	}
}

func TestMinConnectionTreeErrors(t *testing.T) {
	db := newChainDB(t, 3)
	g, _ := buildAll(t, db)
	if _, _, err := MinConnectionTree(g, nil); err == nil {
		t.Error("no groups should error")
	}
	if _, _, err := MinConnectionTree(g, [][]graph.NodeID{{}}); err == nil {
		t.Error("empty group should error")
	}
	groups := make([][]graph.NodeID, 13)
	for i := range groups {
		groups[i] = []graph.NodeID{0}
	}
	if _, _, err := MinConnectionTree(g, groups); err == nil {
		t.Error("too many groups should error")
	}
}

// TestHeuristicVsExactSteiner (ablation A1): the heuristic's best answer is
// a valid connection tree whose weight is at worst a small factor above the
// exact optimum on chain graphs.
func TestHeuristicVsExactSteiner(t *testing.T) {
	db := newChainDB(t, 8)
	g, ix := buildAll(t, db)
	s := core.NewSearcher(g, ix)
	rng := rand.New(rand.NewSource(42))
	var worst float64 = 1
	for trial := 0; trial < 15; trial++ {
		i := rng.Intn(8)
		j := rng.Intn(8)
		if i == j {
			continue
		}
		a := authorNode(t, db, g, int64(i))
		b := authorNode(t, db, g, int64(j))
		exact, _, err := MinConnectionTree(g, [][]graph.NodeID{{a}, {b}})
		if err != nil {
			t.Fatal(err)
		}
		o := core.DefaultOptions()
		o.Score = core.ScoreOptions{Lambda: 0} // pure proximity
		o.HeapSize = 100
		answers, err := s.Search([]string{"author" + string(rune('a'+i)), "author" + string(rune('a'+j))}, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) == 0 {
			t.Fatalf("no heuristic answer for authors %d,%d", i, j)
		}
		best := answers[0].Weight
		for _, ans := range answers {
			if ans.Weight < best {
				best = ans.Weight
			}
		}
		if best < exact-1e-9 {
			t.Errorf("heuristic weight %v beats exact optimum %v: exact solver is wrong", best, exact)
		}
		if ratio := best / exact; ratio > worst {
			worst = ratio
		}
	}
	// The backward expanding heuristic is optimal for two terminals on
	// these graphs (it roots trees at the meeting vertex of shortest
	// paths); allow slack for ties broken by pruning rules.
	if worst > 1.5 {
		t.Errorf("worst heuristic/exact ratio = %v, want <= 1.5", worst)
	}
}

func TestProximitySearchBaseline(t *testing.T) {
	db := newChainDB(t, 5)
	g, ix := buildAll(t, db)
	a0 := ix.Lookup("authora").Nodes
	a1 := ix.Lookup("authorb").Nodes
	if len(a0) != 1 || len(a1) != 1 {
		t.Fatalf("lookup: %v %v", a0, a1)
	}
	// Papers nearest to both a0 and a1: paper 0 (written by both).
	res, err := ProximitySearch(g, "paper", [][]graph.NodeID{a0, a1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no proximity results")
	}
	p0 := g.NodeOf("paper", db.Table("paper").LookupPK([]sqldb.Value{sqldb.Int(0)}))
	if res[0].Node != p0 {
		t.Errorf("top proximity result = node %d, want paper 0 (node %d)", res[0].Node, p0)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score < res[i-1].Score {
			t.Error("proximity results not sorted")
		}
	}
}

func TestProximitySearchErrors(t *testing.T) {
	db := newChainDB(t, 3)
	g, _ := buildAll(t, db)
	if _, err := ProximitySearch(g, "nosuch", [][]graph.NodeID{{0}}, 5); err == nil {
		t.Error("unknown table should error")
	}
	if _, err := ProximitySearch(g, "paper", nil, 5); err == nil {
		t.Error("no groups should error")
	}
	if _, err := ProximitySearch(g, "paper", [][]graph.NodeID{{}}, 5); err == nil {
		t.Error("empty group should error")
	}
}

func TestForwardDistances(t *testing.T) {
	db := newChainDB(t, 3)
	g, _ := buildAll(t, db)
	a0 := authorNode(t, db, g, 0)
	dist := ForwardDistances(g, []graph.NodeID{a0})
	if dist[a0] != 0 {
		t.Errorf("dist to self = %v", dist[a0])
	}
	// The writes tuple referencing a0 is 1 away (forward arc w->a0).
	found := false
	for v := 0; v < g.NumNodes(); v++ {
		if g.TableNameOf(graph.NodeID(v)) == "writes" && dist[v] == 1 {
			found = true
		}
	}
	if !found {
		t.Error("no writes tuple at forward distance 1")
	}
}
