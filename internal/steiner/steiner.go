// Package steiner provides reference algorithms the heuristic backward
// expanding search is measured against:
//
//   - Exact minimum-weight connection trees (directed Steiner trees over
//     the BANKS graph) via a Dreyfus–Wagner style dynamic program over
//     terminal subsets. Exponential in the number of terminals, fine for
//     the small k the ablation uses.
//   - The Goldman et al. proximity-search baseline ("find object near
//     object", VLDB 1998), which ranks single tuples of a target relation
//     by summed distance to the keyword sets — the closest prior system
//     the paper compares against qualitatively in Section 6.
package steiner

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"github.com/banksdb/banks/internal/graph"
)

// Inf is the distance of unreachable nodes.
var Inf = math.Inf(1)

// MinConnectionTree computes the minimum total edge weight of a rooted
// directed tree that contains a path from some root to at least one
// terminal in each group (the §2 answer model, optimized exactly). It
// returns the weight and a witness root; returns Inf if no connection
// exists. Complexity is O(3^k · n + 2^k · m log n) for k groups.
//
// Group semantics ("reach any one member") fall out of the base case: the
// singleton-group cost is 0 at every member of that group.
func MinConnectionTree(g *graph.Graph, groups [][]graph.NodeID) (float64, graph.NodeID, error) {
	k := len(groups)
	if k == 0 {
		return Inf, graph.NoNode, fmt.Errorf("steiner: no terminal groups")
	}
	if k > 12 {
		return Inf, graph.NoNode, fmt.Errorf("steiner: %d groups exceeds the exact solver's limit", k)
	}
	for i, grp := range groups {
		if len(grp) == 0 {
			return Inf, graph.NoNode, fmt.Errorf("steiner: group %d is empty", i)
		}
	}
	n := g.NumNodes()
	if n == 0 {
		return Inf, graph.NoNode, fmt.Errorf("steiner: empty graph")
	}
	full := (1 << k) - 1
	// dp[mask][v] = min weight of a tree rooted at v covering the groups
	// in mask.
	dp := make([][]float64, full+1)
	for m := range dp {
		dp[m] = make([]float64, n)
		for v := range dp[m] {
			dp[m][v] = Inf
		}
	}
	for gi, grp := range groups {
		m := 1 << gi
		for _, t := range grp {
			dp[m][t] = 0
		}
		// Close the singleton masks under shortest paths immediately.
		relax(g, dp[m])
	}
	for mask := 1; mask <= full; mask++ {
		if mask&(mask-1) == 0 {
			continue // singleton, done above
		}
		// Merge: split mask into submask + rest at the same root.
		for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
			rest := mask ^ sub
			if sub < rest {
				continue // each split considered once
			}
			ds, dr := dp[sub], dp[rest]
			dm := dp[mask]
			for v := 0; v < n; v++ {
				if ds[v] < Inf && dr[v] < Inf {
					if w := ds[v] + dr[v]; w < dm[v] {
						dm[v] = w
					}
				}
			}
		}
		// Grow: extend trees along forward arcs (root v with arc v->u and
		// tree rooted at u).
		relax(g, dp[mask])
	}
	best, bestRoot := Inf, graph.NoNode
	for v := 0; v < n; v++ {
		if dp[full][v] < best {
			best = dp[full][v]
			bestRoot = graph.NodeID(v)
		}
	}
	return best, bestRoot, nil
}

// relax runs a multi-source Dijkstra that closes cost[] under
// cost[v] <= w(v->u) + cost[u] for every forward arc v->u: a cheaper tree
// rooted at v obtained by hanging the u-rooted tree below v.
func relax(g *graph.Graph, cost []float64) {
	var pq relaxHeap
	for v, c := range cost {
		if c < Inf {
			pq = append(pq, relaxEntry{node: graph.NodeID(v), d: c})
		}
	}
	heap.Init(&pq)
	settled := make([]bool, len(cost))
	for pq.Len() > 0 {
		e := heap.Pop(&pq).(relaxEntry)
		if settled[e.node] || e.d > cost[e.node] {
			continue
		}
		settled[e.node] = true
		// Arc v->e.node means a tree rooted at v can adopt this one.
		for _, in := range g.In(e.node) {
			v, w := in.To, in.W
			if nd := e.d + w; nd < cost[v] {
				cost[v] = nd
				heap.Push(&pq, relaxEntry{node: v, d: nd})
			}
		}
	}
}

type relaxEntry struct {
	node graph.NodeID
	d    float64
}

type relaxHeap []relaxEntry

func (h relaxHeap) Len() int            { return len(h) }
func (h relaxHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h relaxHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *relaxHeap) Push(x interface{}) { *h = append(*h, x.(relaxEntry)) }
func (h *relaxHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// ForwardDistances returns d[v] = weight of the shortest forward path from
// v to any node in targets (multi-source Dijkstra over reversed edges).
func ForwardDistances(g *graph.Graph, targets []graph.NodeID) []float64 {
	dist := make([]float64, g.NumNodes())
	for i := range dist {
		dist[i] = Inf
	}
	for _, t := range targets {
		dist[t] = 0
	}
	relax(g, dist)
	return dist
}

// ProximityResult is one ranked tuple from the Goldman-style baseline.
type ProximityResult struct {
	Node  graph.NodeID
	Score float64 // summed distance to the keyword sets (lower is better)
}

// ProximitySearch implements the "find object near object" baseline: it
// ranks the tuples of targetTable by the sum over keyword groups of the
// shortest forward-path distance from the tuple to any group member, and
// returns the topK closest. Tuples unreachable from some group are
// excluded. Unlike BANKS it returns flat tuples, not connection trees, and
// uses no prestige.
func ProximitySearch(g *graph.Graph, targetTable string, groups [][]graph.NodeID, topK int) ([]ProximityResult, error) {
	tid := g.TableID(targetTable)
	if tid < 0 {
		return nil, fmt.Errorf("steiner: no table %q", targetTable)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("steiner: no keyword groups")
	}
	lo, hi := g.NodesOfTable(tid)
	total := make([]float64, hi-lo)
	for _, grp := range groups {
		if len(grp) == 0 {
			return nil, fmt.Errorf("steiner: empty keyword group")
		}
		dist := ForwardDistances(g, grp)
		for i := range total {
			total[i] += dist[lo+graph.NodeID(i)]
		}
	}
	out := make([]ProximityResult, 0, hi-lo)
	for i, s := range total {
		if !math.IsInf(s, 1) {
			out = append(out, ProximityResult{Node: lo + graph.NodeID(i), Score: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score < out[j].Score
		}
		return out[i].Node < out[j].Node
	})
	if topK > 0 && len(out) > topK {
		out = out[:topK]
	}
	return out, nil
}

// PairMinWeight computes, by brute force over all candidate roots, the
// minimum weight d(v,a) + d(v,b) of a two-terminal connection tree. It is
// an independent oracle used to cross-check both MinConnectionTree and the
// search heuristic in tests.
func PairMinWeight(g *graph.Graph, a, b graph.NodeID) float64 {
	da := ForwardDistances(g, []graph.NodeID{a})
	db := ForwardDistances(g, []graph.NodeID{b})
	best := Inf
	for v := 0; v < g.NumNodes(); v++ {
		if da[v] < Inf && db[v] < Inf && da[v]+db[v] < best {
			best = da[v] + db[v]
		}
	}
	return best
}
