// Package sqlparse implements the lexer and recursive-descent parser for the
// SQL subset the engine supports: CREATE TABLE / DROP TABLE / INSERT /
// SELECT (joins, WHERE, GROUP BY + aggregates, HAVING, ORDER BY,
// LIMIT/OFFSET, DISTINCT) / UPDATE / DELETE. It exists so BANKS can be run
// "on any schema without any programming", as the paper puts it: datasets
// are loadable and browsable through plain SQL.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// TokenKind classifies lexical tokens.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp    // operators and punctuation: ( ) , . ; = < > <= >= <> != + - * / ?
	TokParam // ? placeholder
)

// Token is one lexical token with its source position (byte offset).
type Token struct {
	Kind TokenKind
	Text string // keywords are upper-cased; identifiers keep original case
	Pos  int
}

// keywords recognized by the lexer; everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "PRIMARY": true, "KEY": true, "FOREIGN": true,
	"REFERENCES": true, "DROP": true, "UPDATE": true, "SET": true,
	"DELETE": true, "ORDER": true, "BY": true, "GROUP": true, "HAVING": true,
	"LIMIT": true, "OFFSET": true, "ASC": true, "DESC": true, "JOIN": true,
	"INNER": true, "LEFT": true, "OUTER": true, "ON": true, "AS": true,
	"DISTINCT": true, "NULL": true, "TRUE": true, "FALSE": true, "LIKE": true,
	"IN": true, "IS": true, "BETWEEN": true, "NOT NULL": true, "UNIQUE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"WEIGHT": true,
}

// Lexer turns SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer { return &Lexer{src: src} }

// Next returns the next token, or an error for malformed input.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return Token{Kind: TokEOF, Pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	switch {
	case c == '\'':
		return l.lexString()
	case c == '"':
		return l.lexQuotedIdent()
	case isDigit(c) || (c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexWord()
	case c == '?':
		l.pos++
		return Token{Kind: TokParam, Text: "?", Pos: start}, nil
	}
	// Multi-char operators first.
	for _, op := range []string{"<=", ">=", "<>", "!=", "||"} {
		if strings.HasPrefix(l.src[l.pos:], op) {
			l.pos += 2
			return Token{Kind: TokOp, Text: op, Pos: start}, nil
		}
	}
	switch c {
	case '(', ')', ',', '.', ';', '=', '<', '>', '+', '-', '*', '/', '%':
		l.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqlparse: unexpected character %q at offset %d", c, l.pos)
}

func (l *Lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *Lexer) lexString() (Token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			return Token{Kind: TokString, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated string at offset %d", start)
}

func (l *Lexer) lexQuotedIdent() (Token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '"' {
			l.pos++
			return Token{Kind: TokIdent, Text: b.String(), Pos: start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return Token{}, fmt.Errorf("sqlparse: unterminated quoted identifier at offset %d", start)
}

func (l *Lexer) lexNumber() (Token, error) {
	start := l.pos
	seenDot, seenExp := false, false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case isDigit(c):
			l.pos++
		case c == '.' && !seenDot && !seenExp:
			seenDot = true
			l.pos++
		case (c == 'e' || c == 'E') && !seenExp && l.pos > start:
			seenExp = true
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
				l.pos++
			}
		default:
			return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
		}
	}
	return Token{Kind: TokNumber, Text: l.src[start:l.pos], Pos: start}, nil
}

func (l *Lexer) lexWord() (Token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	word := l.src[start:l.pos]
	up := strings.ToUpper(word)
	if keywords[up] {
		return Token{Kind: TokKeyword, Text: up, Pos: start}, nil
	}
	return Token{Kind: TokIdent, Text: word, Pos: start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return c == '_' || c == '$' || unicode.IsLetter(rune(c)) || isDigit(c) }

// Tokenize lexes the whole input; convenient for tests.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}
