package sqlparse

import (
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
)

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is any parsed expression.
type Expr interface {
	expr()
	String() string
}

// --- statements ---

// CreateTable is CREATE TABLE name (coldefs..., constraints...).
type CreateTable struct {
	Schema *sqldb.TableSchema
}

// DropTable is DROP TABLE name.
type DropTable struct {
	Name string
}

// Insert is INSERT INTO table [(cols)] VALUES (exprs), (exprs)...
type Insert struct {
	Table   string
	Columns []string // empty means schema order
	Rows    [][]Expr
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef // joined left to right
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    Expr // nil if absent
	Offset   Expr // nil if absent
}

// SelectItem is one projection: expression with optional alias, or *, or
// table.*.
type SelectItem struct {
	Star      bool
	StarTable string // qualified star, e.g. t.*
	Expr      Expr
	Alias     string
}

// JoinKind distinguishes join types.
type JoinKind uint8

// Join kinds.
const (
	JoinNone JoinKind = iota // first table in FROM
	JoinInner
	JoinLeft
	JoinCross // comma-separated FROM
)

// TableRef is one table in the FROM clause, with how it joins to the tables
// before it.
type TableRef struct {
	Table string
	Alias string
	Join  JoinKind
	On    Expr // nil for JoinNone/JoinCross
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// Update is UPDATE table SET col = expr, ... [WHERE ...].
type Update struct {
	Table string
	Set   []SetClause
	Where Expr
}

// SetClause is one col = expr assignment.
type SetClause struct {
	Column string
	Expr   Expr
}

// Delete is DELETE FROM table [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

func (*CreateTable) stmt() {}
func (*DropTable) stmt()   {}
func (*Insert) stmt()      {}
func (*Select) stmt()      {}
func (*Update) stmt()      {}
func (*Delete) stmt()      {}

// --- expressions ---

// Literal is a constant value.
type Literal struct {
	Value sqldb.Value
}

// Param is a ? placeholder; Index is its 0-based position in the statement.
type Param struct {
	Index int
}

// ColumnRef names a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table  string // may be empty
	Column string
}

// BinaryExpr applies Op to Left and Right. Ops: = <> < <= > >= + - * / %
// AND OR LIKE || .
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies Op ("-" or "NOT") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// FuncCall is an aggregate or scalar function call. Star marks COUNT(*).
type FuncCall struct {
	Name     string // upper-cased
	Star     bool
	Distinct bool
	Args     []Expr
}

// InExpr is X [NOT] IN (list...).
type InExpr struct {
	X    Expr
	List []Expr
	Not  bool
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*Literal) expr()     {}
func (*Param) expr()       {}
func (*ColumnRef) expr()   {}
func (*BinaryExpr) expr()  {}
func (*UnaryExpr) expr()   {}
func (*FuncCall) expr()    {}
func (*InExpr) expr()      {}
func (*IsNullExpr) expr()  {}
func (*BetweenExpr) expr() {}

func (e *Literal) String() string { return e.Value.SQLLiteral() }
func (e *Param) String() string   { return "?" }

func (e *ColumnRef) String() string {
	if e.Table != "" {
		return e.Table + "." + e.Column
	}
	return e.Column
}

func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return "(NOT " + e.X.String() + ")"
	}
	return "(" + e.Op + e.X.String() + ")"
}

func (e *FuncCall) String() string {
	if e.Star {
		return e.Name + "(*)"
	}
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	d := ""
	if e.Distinct {
		d = "DISTINCT "
	}
	return e.Name + "(" + d + strings.Join(args, ", ") + ")"
}

func (e *InExpr) String() string {
	items := make([]string, len(e.List))
	for i, a := range e.List {
		items[i] = a.String()
	}
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s IN (%s))", e.X.String(), not, strings.Join(items, ", "))
}

func (e *IsNullExpr) String() string {
	if e.Not {
		return "(" + e.X.String() + " IS NOT NULL)"
	}
	return "(" + e.X.String() + " IS NULL)"
}

func (e *BetweenExpr) String() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return fmt.Sprintf("(%s%s BETWEEN %s AND %s)", e.X.String(), not, e.Lo.String(), e.Hi.String())
}
