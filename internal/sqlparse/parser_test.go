package sqlparse

import (
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/sqldb"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return s
}

func TestLexerBasics(t *testing.T) {
	toks, err := Tokenize("SELECT a, 'it''s', 3.5 FROM t -- comment\nWHERE x >= ?")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokenKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "it's", ",", "3.5", "FROM", "t", "WHERE", "x", ">=", "?", ""}
	if len(texts) != len(want) {
		t.Fatalf("tokens = %q", texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[3] != TokString {
		t.Error("escaped string not lexed as string")
	}
	if kinds[11] != TokParam {
		t.Error("? not lexed as param")
	}
}

func TestLexerBlockComment(t *testing.T) {
	toks, err := Tokenize("SELECT /* hi\nthere */ 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 3 || toks[1].Text != "1" {
		t.Errorf("tokens = %v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{"'unterminated", "\"unterminated", "@"} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("Tokenize(%q) should fail", src)
		}
	}
}

func TestParseCreateTable(t *testing.T) {
	s := mustParse(t, `CREATE TABLE Writes (
		AuthorId VARCHAR(32) NOT NULL REFERENCES Author(AuthorId) WEIGHT 1.5,
		PaperId  TEXT REFERENCES Paper,
		Position INT,
		PRIMARY KEY (AuthorId, PaperId)
	)`)
	ct, ok := s.(*CreateTable)
	if !ok {
		t.Fatalf("got %T", s)
	}
	sc := ct.Schema
	if sc.Name != "Writes" || len(sc.Columns) != 3 {
		t.Fatalf("schema = %+v", sc)
	}
	if sc.Columns[0].Type != sqldb.TypeText || !sc.Columns[0].NotNull {
		t.Errorf("col0 = %+v", sc.Columns[0])
	}
	if len(sc.PrimaryKey) != 2 {
		t.Errorf("PK = %v", sc.PrimaryKey)
	}
	if len(sc.ForeignKeys) != 2 {
		t.Fatalf("FKs = %v", sc.ForeignKeys)
	}
	if sc.ForeignKeys[0].Weight != 1.5 || sc.ForeignKeys[0].RefColumn != "AuthorId" {
		t.Errorf("FK0 = %+v", sc.ForeignKeys[0])
	}
	if sc.ForeignKeys[1].RefColumn != "" {
		t.Errorf("FK1 RefColumn should be unresolved, got %+v", sc.ForeignKeys[1])
	}
}

func TestParseCreateTableInlinePK(t *testing.T) {
	s := mustParse(t, "CREATE TABLE t (id INT PRIMARY KEY, name TEXT)")
	ct := s.(*CreateTable)
	if len(ct.Schema.PrimaryKey) != 1 || ct.Schema.PrimaryKey[0] != "id" {
		t.Errorf("PK = %v", ct.Schema.PrimaryKey)
	}
	if !ct.Schema.Columns[0].NotNull {
		t.Error("inline PK should imply NOT NULL")
	}
}

func TestParseForeignKeyClause(t *testing.T) {
	s := mustParse(t, "CREATE TABLE c (a INT, FOREIGN KEY (a) REFERENCES p (id) WEIGHT 2)")
	ct := s.(*CreateTable)
	if len(ct.Schema.ForeignKeys) != 1 {
		t.Fatalf("FKs = %v", ct.Schema.ForeignKeys)
	}
	fk := ct.Schema.ForeignKeys[0]
	if fk.Column != "a" || fk.RefTable != "p" || fk.RefColumn != "id" || fk.Weight != 2 {
		t.Errorf("fk = %+v", fk)
	}
}

func TestParseInsert(t *testing.T) {
	s := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, NULL)")
	ins := s.(*Insert)
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("ins = %+v", ins)
	}
	lit := ins.Rows[1][1].(*Literal)
	if !lit.Value.IsNull() {
		t.Errorf("row1 col1 = %v", lit.Value)
	}
}

func TestParseInsertParams(t *testing.T) {
	s := mustParse(t, "INSERT INTO t VALUES (?, ?, ?)")
	if got := CountParams(s); got != 3 {
		t.Errorf("CountParams = %d", got)
	}
	ins := s.(*Insert)
	for i, e := range ins.Rows[0] {
		if p, ok := e.(*Param); !ok || p.Index != i {
			t.Errorf("param %d = %#v", i, e)
		}
	}
}

func TestParseSelectFull(t *testing.T) {
	s := mustParse(t, `SELECT DISTINCT a.name, COUNT(*) AS n
		FROM author a JOIN writes w ON w.authorid = a.authorid
		LEFT JOIN paper p ON p.paperid = w.paperid
		WHERE a.name LIKE '%gray%' AND p.year >= 1980
		GROUP BY a.name HAVING COUNT(*) > 2
		ORDER BY n DESC, a.name LIMIT 10 OFFSET 5`)
	sel := s.(*Select)
	if !sel.Distinct || len(sel.Items) != 2 || len(sel.From) != 3 {
		t.Fatalf("select = %+v", sel)
	}
	if sel.From[1].Join != JoinInner || sel.From[2].Join != JoinLeft {
		t.Errorf("joins = %v %v", sel.From[1].Join, sel.From[2].Join)
	}
	if sel.From[0].Alias != "a" {
		t.Errorf("alias = %q", sel.From[0].Alias)
	}
	if sel.Items[1].Alias != "n" {
		t.Errorf("item alias = %q", sel.Items[1].Alias)
	}
	if sel.Where == nil || sel.Having == nil || sel.Limit == nil || sel.Offset == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 2 || !sel.OrderBy[0].Desc || sel.OrderBy[1].Desc {
		t.Errorf("order by = %+v", sel.OrderBy)
	}
}

func TestParseSelectStarForms(t *testing.T) {
	s := mustParse(t, "SELECT *, t.* FROM t")
	sel := s.(*Select)
	if !sel.Items[0].Star {
		t.Error("item 0 should be *")
	}
	if sel.Items[1].StarTable != "t" {
		t.Errorf("item 1 = %+v", sel.Items[1])
	}
}

func TestParseExprPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT 1 + 2 * 3 = 7 AND NOT 1 > 2 OR 0 = 1")
	sel := s.(*Select)
	got := sel.Items[0].Expr.String()
	want := "(((1 + (2 * 3)) = 7) AND (NOT (1 > 2))) OR (0 = 1)"
	if got != "("+want+")" && got != want {
		t.Errorf("precedence tree = %s", got)
	}
}

func TestParseInBetweenIsNull(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a IN (1,2) AND b NOT IN (3) AND c BETWEEN 1 AND 5 AND d IS NOT NULL AND e IS NULL AND f NOT LIKE 'x%'")
	sel := s.(*Select)
	str := sel.Where.String()
	for _, frag := range []string{"IN (1, 2)", "NOT IN (3)", "BETWEEN 1 AND 5", "IS NOT NULL", "IS NULL", "NOT (f LIKE 'x%')"} {
		if !strings.Contains(str, frag) {
			t.Errorf("WHERE %s missing %q", str, frag)
		}
	}
}

func TestParseUpdateDelete(t *testing.T) {
	s := mustParse(t, "UPDATE t SET a = a + 1, b = 'x' WHERE id = 3")
	u := s.(*Update)
	if u.Table != "t" || len(u.Set) != 2 || u.Where == nil {
		t.Fatalf("update = %+v", u)
	}
	s = mustParse(t, "DELETE FROM t WHERE id = 3")
	d := s.(*Delete)
	if d.Table != "t" || d.Where == nil {
		t.Fatalf("delete = %+v", d)
	}
	s = mustParse(t, "DELETE FROM t")
	if s.(*Delete).Where != nil {
		t.Error("where should be nil")
	}
}

func TestParseDropTable(t *testing.T) {
	s := mustParse(t, "DROP TABLE old")
	if s.(*DropTable).Name != "old" {
		t.Errorf("drop = %+v", s)
	}
}

func TestParseAllMultiStatement(t *testing.T) {
	stmts, err := ParseAll("CREATE TABLE a (x INT); INSERT INTO a VALUES (1); SELECT * FROM a;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"CREATE TABLE (a INT)",
		"CREATE TABLE t (a BLOB)",
		"INSERT INTO t VALUES 1",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP a",
		"UPDATE t SET",
		"SELECT a FROM t ORDER",
		"SELECT * FROM t JOIN u",
		"SELECT (1 FROM t",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseScalarFuncs(t *testing.T) {
	s := mustParse(t, "SELECT UPPER(name), LENGTH(name), COALESCE(a, b, 0) FROM t")
	sel := s.(*Select)
	f := sel.Items[0].Expr.(*FuncCall)
	if f.Name != "UPPER" || len(f.Args) != 1 {
		t.Errorf("f = %+v", f)
	}
	f3 := sel.Items[2].Expr.(*FuncCall)
	if len(f3.Args) != 3 {
		t.Errorf("coalesce args = %d", len(f3.Args))
	}
}

func TestParseAggregates(t *testing.T) {
	s := mustParse(t, "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), MIN(c), MAX(c), AVG(b) FROM t")
	sel := s.(*Select)
	if !sel.Items[0].Expr.(*FuncCall).Star {
		t.Error("COUNT(*) star flag missing")
	}
	if !sel.Items[1].Expr.(*FuncCall).Distinct {
		t.Error("COUNT(DISTINCT) flag missing")
	}
}

func TestKeywordsAsColumnNames(t *testing.T) {
	// Non-reserved keywords (aggregate names, WEIGHT) can name columns.
	// The lexer canonicalizes keywords to upper case; column resolution is
	// case-insensitive, so that is fine.
	s := mustParse(t, "SELECT count, weight FROM t")
	sel := s.(*Select)
	if !strings.EqualFold(sel.Items[0].Expr.(*ColumnRef).Column, "count") {
		t.Errorf("item0 = %+v", sel.Items[0].Expr)
	}
}

func TestQuotedIdentifiers(t *testing.T) {
	s := mustParse(t, `SELECT "select" FROM "from"`)
	sel := s.(*Select)
	if sel.Items[0].Expr.(*ColumnRef).Column != "select" {
		t.Errorf("quoted ident = %+v", sel.Items[0].Expr)
	}
	if sel.From[0].Table != "from" {
		t.Errorf("quoted table = %+v", sel.From[0])
	}
}

func TestNumberForms(t *testing.T) {
	s := mustParse(t, "SELECT 1, 1.5, .5, 2e3, -4")
	sel := s.(*Select)
	if v := sel.Items[0].Expr.(*Literal).Value; v.T != sqldb.TypeInt || v.I != 1 {
		t.Errorf("int literal = %v", v)
	}
	if v := sel.Items[1].Expr.(*Literal).Value; v.T != sqldb.TypeFloat || v.F != 1.5 {
		t.Errorf("float literal = %v", v)
	}
	if v := sel.Items[2].Expr.(*Literal).Value; v.F != 0.5 {
		t.Errorf(".5 literal = %v", v)
	}
	if v := sel.Items[3].Expr.(*Literal).Value; v.F != 2000 {
		t.Errorf("2e3 literal = %v", v)
	}
	u := sel.Items[4].Expr.(*UnaryExpr)
	if u.Op != "-" {
		t.Errorf("negation = %+v", u)
	}
}
