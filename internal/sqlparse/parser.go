package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
)

// Parser is a recursive-descent parser over a token stream.
type Parser struct {
	toks    []Token
	pos     int
	nparams int
}

// Parse parses a single SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sqlparse: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated list of statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	var out []Statement
	for {
		for p.peek().Kind == TokOp && p.peek().Text == ";" {
			p.pos++
		}
		if p.peek().Kind == TokEOF {
			return out, nil
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		switch t := p.peek(); {
		case t.Kind == TokEOF:
		case t.Kind == TokOp && t.Text == ";":
		default:
			return nil, p.errorf("unexpected %q after statement", t.Text)
		}
	}
}

func (p *Parser) peek() Token { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }
func (p *Parser) peek2() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return Token{Kind: TokEOF}
}

func (p *Parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sqlparse: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().Pos)
}

func (p *Parser) acceptKeyword(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s, got %q", kw, p.peek().Text)
	}
	return nil
}

func (p *Parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errorf("expected %q, got %q", op, p.peek().Text)
	}
	return nil
}

func (p *Parser) expectIdent() (string, error) {
	t := p.peek()
	// Permit non-reserved keywords (e.g. aggregate names) as identifiers in
	// name positions, like real engines do for e.g. a column named "count".
	if t.Kind == TokIdent || (t.Kind == TokKeyword && !reserved[t.Text]) {
		p.pos++
		return t.Text, nil
	}
	return "", p.errorf("expected identifier, got %q", t.Text)
}

// reserved keywords cannot be used as bare identifiers.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "DROP": true, "UPDATE": true, "SET": true, "DELETE": true,
	"ORDER": true, "GROUP": true, "HAVING": true, "LIMIT": true,
	"OFFSET": true, "JOIN": true, "INNER": true, "LEFT": true, "OUTER": true,
	"ON": true, "AS": true, "DISTINCT": true, "NULL": true, "LIKE": true,
	"IN": true, "IS": true, "BETWEEN": true, "PRIMARY": true, "FOREIGN": true,
	"REFERENCES": true, "BY": true,
}

func (p *Parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errorf("expected statement, got %q", t.Text)
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "CREATE":
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	}
	return nil, p.errorf("unsupported statement %q", t.Text)
}

func (p *Parser) parseCreateTable() (Statement, error) {
	p.next() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	schema := &sqldb.TableSchema{Name: name}
	for {
		t := p.peek()
		switch {
		case t.Kind == TokKeyword && t.Text == "PRIMARY":
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			for {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				schema.PrimaryKey = append(schema.PrimaryKey, col)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
		case t.Kind == TokKeyword && t.Text == "FOREIGN":
			p.next()
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			fk, err := p.parseReferences(col)
			if err != nil {
				return nil, err
			}
			schema.ForeignKeys = append(schema.ForeignKeys, fk)
		default:
			colName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typName, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			typ, err := sqldb.ParseType(typName)
			if err != nil {
				return nil, p.errorf("%v", err)
			}
			// Skip a length spec like VARCHAR(255).
			if p.acceptOp("(") {
				for !p.acceptOp(")") {
					if p.peek().Kind == TokEOF {
						return nil, p.errorf("unterminated type length")
					}
					p.next()
				}
			}
			col := sqldb.Column{Name: colName, Type: typ}
			for {
				t := p.peek()
				if t.Kind == TokKeyword && t.Text == "NOT" {
					p.next()
					if err := p.expectKeyword("NULL"); err != nil {
						return nil, err
					}
					col.NotNull = true
					continue
				}
				if t.Kind == TokKeyword && t.Text == "PRIMARY" {
					p.next()
					if err := p.expectKeyword("KEY"); err != nil {
						return nil, err
					}
					schema.PrimaryKey = append(schema.PrimaryKey, colName)
					col.NotNull = true
					continue
				}
				if t.Kind == TokKeyword && t.Text == "UNIQUE" {
					p.next() // accepted and ignored; PK covers our needs
					continue
				}
				if t.Kind == TokKeyword && t.Text == "REFERENCES" {
					fk, err := p.parseReferences(colName)
					if err != nil {
						return nil, err
					}
					schema.ForeignKeys = append(schema.ForeignKeys, fk)
					continue
				}
				break
			}
			schema.Columns = append(schema.Columns, col)
		}
		if p.acceptOp(",") {
			continue
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		break
	}
	return &CreateTable{Schema: schema}, nil
}

// parseReferences parses REFERENCES tbl [(col)] [WEIGHT num] for the FK on
// the given column. WEIGHT is a BANKS extension setting the similarity
// s(R1,R2) from Section 2.2 of the paper.
func (p *Parser) parseReferences(col string) (sqldb.ForeignKey, error) {
	var fk sqldb.ForeignKey
	fk.Column = col
	if err := p.expectKeyword("REFERENCES"); err != nil {
		return fk, err
	}
	ref, err := p.expectIdent()
	if err != nil {
		return fk, err
	}
	fk.RefTable = ref
	if p.acceptOp("(") {
		rc, err := p.expectIdent()
		if err != nil {
			return fk, err
		}
		fk.RefColumn = rc
		if err := p.expectOp(")"); err != nil {
			return fk, err
		}
	}
	if p.acceptKeyword("WEIGHT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return fk, p.errorf("expected number after WEIGHT")
		}
		p.next()
		w, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return fk, p.errorf("bad WEIGHT %q", t.Text)
		}
		fk.Weight = w
	}
	return fk, nil
}

func (p *Parser) parseDropTable() (Statement, error) {
	p.next() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	return &DropTable{Name: name}, nil
}

func (p *Parser) parseInsert() (Statement, error) {
	p.next() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.acceptOp("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, col)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *Parser) parseUpdate() (Statement, error) {
	p.next() // UPDATE
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, SetClause{Column: col, Expr: e})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *Parser) parseDelete() (Statement, error) {
	p.next() // DELETE
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: table}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *Parser) parseSelect() (*Select, error) {
	p.next() // SELECT
	s := &Select{}
	s.Distinct = p.acceptKeyword("DISTINCT")
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		refs, err := p.parseFrom()
		if err != nil {
			return nil, err
		}
		s.From = refs
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			s.OrderBy = append(s.OrderBy, item)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Limit = e
	}
	if p.acceptKeyword("OFFSET") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Offset = e
	}
	return s, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	if p.acceptOp("*") {
		return SelectItem{Star: true}, nil
	}
	// table.* form
	if p.peek().Kind == TokIdent && p.peek2().Kind == TokOp && p.peek2().Text == "." {
		if p.pos+2 < len(p.toks) && p.toks[p.pos+2].Kind == TokOp && p.toks[p.pos+2].Text == "*" {
			tbl := p.next().Text
			p.next() // .
			p.next() // *
			return SelectItem{StarTable: tbl}, nil
		}
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		item.Alias = t.Text
	}
	return item, nil
}

func (p *Parser) parseFrom() ([]TableRef, error) {
	first, err := p.parseTableRef(JoinNone)
	if err != nil {
		return nil, err
	}
	refs := []TableRef{first}
	for {
		switch {
		case p.acceptOp(","):
			r, err := p.parseTableRef(JoinCross)
			if err != nil {
				return nil, err
			}
			refs = append(refs, r)
		case p.peek().Kind == TokKeyword && (p.peek().Text == "JOIN" || p.peek().Text == "INNER" || p.peek().Text == "LEFT"):
			kind := JoinInner
			if p.acceptKeyword("LEFT") {
				kind = JoinLeft
				p.acceptKeyword("OUTER")
			} else {
				p.acceptKeyword("INNER")
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			r, err := p.parseTableRef(kind)
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			on, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			r.On = on
			refs = append(refs, r)
		default:
			return refs, nil
		}
	}
}

func (p *Parser) parseTableRef(kind JoinKind) (TableRef, error) {
	name, err := p.expectIdent()
	if err != nil {
		return TableRef{}, err
	}
	r := TableRef{Table: name, Join: kind}
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return TableRef{}, err
		}
		r.Alias = a
	} else if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		r.Alias = t.Text
	}
	return r, nil
}

// --- expression parsing, lowest precedence first ---

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// AND inside a BETWEEN binds to the BETWEEN, handled there.
		if t := p.peek(); t.Kind == TokKeyword && t.Text == "AND" {
			p.next()
			right, err := p.parseNot()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "AND", Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parseComparison()
}

func (p *Parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.peek()
	if t.Kind == TokOp {
		switch t.Text {
		case "=", "<", "<=", ">", ">=", "<>", "!=":
			p.next()
			op := t.Text
			if op == "!=" {
				op = "<>"
			}
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: left, Right: right}, nil
		}
	}
	if t.Kind == TokKeyword {
		not := false
		save := p.pos
		if t.Text == "NOT" {
			nt := p.peek2()
			if nt.Kind == TokKeyword && (nt.Text == "LIKE" || nt.Text == "IN" || nt.Text == "BETWEEN") {
				p.next()
				not = true
				t = p.peek()
			}
		}
		switch t.Text {
		case "LIKE":
			p.next()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			var e Expr = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
			if not {
				e = &UnaryExpr{Op: "NOT", X: e}
			}
			return e, nil
		case "IN":
			p.next()
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var list []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				list = append(list, e)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &InExpr{X: left, List: list, Not: not}, nil
		case "BETWEEN":
			p.next()
			lo, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("AND"); err != nil {
				return nil, err
			}
			hi, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &BetweenExpr{X: left, Lo: lo, Hi: hi, Not: not}, nil
		case "IS":
			p.next()
			isNot := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			return &IsNullExpr{X: left, Not: isNot}, nil
		default:
			p.pos = save
		}
	}
	return left, nil
}

func (p *Parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "+" || t.Text == "-" || t.Text == "||") {
			p.next()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%") {
			p.next()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.Text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.acceptOp("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	p.acceptOp("+")
	return p.parsePrimary()
}

// scalarFuncs are the non-aggregate functions the executor evaluates.
var scalarFuncs = map[string]bool{
	"UPPER": true, "LOWER": true, "LENGTH": true, "ABS": true,
	"COALESCE": true, "SUBSTR": true,
}

// AggregateFuncs are the aggregate function names.
var AggregateFuncs = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case TokNumber:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.Text)
			}
			return &Literal{Value: sqldb.Float(f)}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.Text)
		}
		return &Literal{Value: sqldb.Int(i)}, nil
	case TokString:
		p.next()
		return &Literal{Value: sqldb.Text(t.Text)}, nil
	case TokParam:
		p.next()
		e := &Param{Index: p.nparams}
		p.nparams++
		return e, nil
	case TokKeyword:
		switch t.Text {
		case "NULL":
			p.next()
			return &Literal{Value: sqldb.Null()}, nil
		case "TRUE":
			p.next()
			return &Literal{Value: sqldb.Bool(true)}, nil
		case "FALSE":
			p.next()
			return &Literal{Value: sqldb.Bool(false)}, nil
		case "COUNT", "SUM", "AVG", "MIN", "MAX":
			if n := p.peek2(); n.Kind == TokOp && n.Text == "(" {
				return p.parseFuncCall()
			}
			return p.parseIdentExpr()
		}
		if !reserved[t.Text] {
			return p.parseIdentExpr()
		}
	case TokIdent:
		return p.parseIdentExpr()
	case TokOp:
		if t.Text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errorf("unexpected %q in expression", t.Text)
}

func (p *Parser) parseFuncCall() (Expr, error) {
	name := strings.ToUpper(p.next().Text)
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	f := &FuncCall{Name: name}
	if p.acceptOp("*") {
		f.Star = true
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	f.Distinct = p.acceptKeyword("DISTINCT")
	if !p.acceptOp(")") {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// parseIdentExpr parses a column reference (possibly qualified) or a scalar
// function call.
func (p *Parser) parseIdentExpr() (Expr, error) {
	name := p.next().Text
	if t := p.peek(); t.Kind == TokOp && t.Text == "(" && scalarFuncs[strings.ToUpper(name)] {
		p.pos-- // rewind so parseFuncCall sees the name
		return p.parseFuncCall()
	}
	if p.acceptOp(".") {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Table: name, Column: col}, nil
	}
	return &ColumnRef{Column: name}, nil
}

// NumParams reports how many ? placeholders the statement contained. Valid
// after the statement is parsed with this parser. The package-level Parse
// functions embed the count in each Param's Index already; this helper is
// exposed for the driver.
func CountParams(s Statement) int {
	n := 0
	walkStatement(s, func(e Expr) {
		if _, ok := e.(*Param); ok {
			n++
		}
	})
	return n
}

func walkStatement(s Statement, fn func(Expr)) {
	switch st := s.(type) {
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				walkExpr(e, fn)
			}
		}
	case *Select:
		for _, it := range st.Items {
			if it.Expr != nil {
				walkExpr(it.Expr, fn)
			}
		}
		for _, r := range st.From {
			if r.On != nil {
				walkExpr(r.On, fn)
			}
		}
		for _, e := range []Expr{st.Where, st.Having, st.Limit, st.Offset} {
			if e != nil {
				walkExpr(e, fn)
			}
		}
		for _, e := range st.GroupBy {
			walkExpr(e, fn)
		}
		for _, o := range st.OrderBy {
			walkExpr(o.Expr, fn)
		}
	case *Update:
		for _, sc := range st.Set {
			walkExpr(sc.Expr, fn)
		}
		if st.Where != nil {
			walkExpr(st.Where, fn)
		}
	case *Delete:
		if st.Where != nil {
			walkExpr(st.Where, fn)
		}
	}
}

func walkExpr(e Expr, fn func(Expr)) {
	fn(e)
	switch x := e.(type) {
	case *BinaryExpr:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *FuncCall:
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *InExpr:
		walkExpr(x.X, fn)
		for _, a := range x.List {
			walkExpr(a, fn)
		}
	case *IsNullExpr:
		walkExpr(x.X, fn)
	case *BetweenExpr:
		walkExpr(x.X, fn)
		walkExpr(x.Lo, fn)
		walkExpr(x.Hi, fn)
	}
}
