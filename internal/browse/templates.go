package browse

import (
	"encoding/json"
	"fmt"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

// TemplateKind enumerates the four predefined display templates of §4.
type TemplateKind string

// The four template kinds.
const (
	KindCrossTab TemplateKind = "crosstab" // OLAP-style cross tabulation
	KindGroupBy  TemplateKind = "groupby"  // hierarchical drill-down view
	KindFolder   TemplateKind = "folder"   // folder view (same data, tree rendering)
	KindChart    TemplateKind = "chart"    // bar / line / pie chart
)

// Template is one customized template instance. Instances are stored in
// the database itself (table banks_templates) and accessed by name, as in
// the paper ("template instances are customized, stored in the database,
// and given a hyperlink name").
type Template struct {
	Name  string
	Kind  TemplateKind
	Table string
	// Spec holds kind-specific settings:
	//   crosstab: row, col, agg (COUNT/SUM/AVG/MIN/MAX), measure
	//   groupby/folder: attrs (comma-separated drill-down attributes)
	//   chart: label, value ("" = COUNT(*)), chart (bar/line/pie)
	// All kinds accept link: the name of another template to compose to
	// when a value is clicked.
	Spec map[string]string
}

// templateTable is the storage relation for template instances.
const templateTable = "banks_templates"

func ensureTemplateTable(engine *sqlexec.Engine) error {
	if engine.DB().Table(templateTable) != nil {
		return nil
	}
	_, err := engine.Execute(`CREATE TABLE ` + templateTable + ` (
		name TEXT PRIMARY KEY,
		kind TEXT NOT NULL,
		tbl  TEXT NOT NULL,
		spec TEXT
	)`)
	return err
}

// SaveTemplate stores (or replaces) a template instance in the database.
func SaveTemplate(engine *sqlexec.Engine, t Template) error {
	switch t.Kind {
	case KindCrossTab, KindGroupBy, KindFolder, KindChart:
	default:
		return fmt.Errorf("browse: unknown template kind %q", t.Kind)
	}
	if t.Name == "" || t.Table == "" {
		return fmt.Errorf("browse: template needs a name and a table")
	}
	if err := ensureTemplateTable(engine); err != nil {
		return err
	}
	spec, err := json.Marshal(t.Spec)
	if err != nil {
		return err
	}
	if _, err := engine.Execute("DELETE FROM "+templateTable+" WHERE name = ?", sqldb.Text(t.Name)); err != nil {
		return err
	}
	_, err = engine.Execute("INSERT INTO "+templateTable+" VALUES (?, ?, ?, ?)",
		sqldb.Text(t.Name), sqldb.Text(string(t.Kind)), sqldb.Text(t.Table), sqldb.Text(string(spec)))
	return err
}

// LoadTemplate fetches a template instance by name.
func LoadTemplate(engine *sqlexec.Engine, name string) (Template, error) {
	if engine.DB().Table(templateTable) == nil {
		return Template{}, fmt.Errorf("browse: no templates defined")
	}
	res, err := engine.Execute("SELECT kind, tbl, spec FROM "+templateTable+" WHERE name = ?", sqldb.Text(name))
	if err != nil {
		return Template{}, err
	}
	if len(res.Rows) == 0 {
		return Template{}, fmt.Errorf("browse: no template %q", name)
	}
	t := Template{
		Name:  name,
		Kind:  TemplateKind(res.Rows[0][0].S),
		Table: res.Rows[0][1].S,
		Spec:  map[string]string{},
	}
	if s := res.Rows[0][2].S; s != "" {
		if err := json.Unmarshal([]byte(s), &t.Spec); err != nil {
			return Template{}, fmt.Errorf("browse: template %q has bad spec: %w", name, err)
		}
	}
	return t, nil
}

// ListTemplates returns the stored template names in order.
func ListTemplates(engine *sqlexec.Engine) ([]string, error) {
	if engine.DB().Table(templateTable) == nil {
		return nil, nil
	}
	res, err := engine.Execute("SELECT name FROM " + templateTable + " ORDER BY name")
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		names = append(names, r[0].S)
	}
	return names, nil
}

// --- cross-tab ---

// CrossTab is a rendered cross tabulation.
type CrossTab struct {
	RowAttr, ColAttr string
	RowVals, ColVals []string
	Cells            map[[2]string]string // (row, col) -> aggregated value
}

// RenderCrossTab executes a crosstab template.
func RenderCrossTab(engine *sqlexec.Engine, t Template) (*CrossTab, error) {
	row, col := t.Spec["row"], t.Spec["col"]
	if row == "" || col == "" {
		return nil, fmt.Errorf("browse: crosstab %q needs row and col", t.Name)
	}
	agg := strings.ToUpper(t.Spec["agg"])
	if agg == "" {
		agg = "COUNT"
	}
	measure := t.Spec["measure"]
	var aggExpr string
	if agg == "COUNT" && measure == "" {
		aggExpr = "COUNT(*)"
	} else {
		if measure == "" {
			return nil, fmt.Errorf("browse: crosstab %q: %s needs a measure", t.Name, agg)
		}
		aggExpr = fmt.Sprintf("%s(%s)", agg, quoteIdent(measure))
	}
	sql := fmt.Sprintf("SELECT %s, %s, %s FROM %s GROUP BY %s, %s",
		quoteIdent(row), quoteIdent(col), aggExpr,
		quoteIdent(t.Table), quoteIdent(row), quoteIdent(col))
	res, err := engine.Execute(sql)
	if err != nil {
		return nil, err
	}
	ct := &CrossTab{RowAttr: row, ColAttr: col, Cells: map[[2]string]string{}}
	seenRow, seenCol := map[string]bool{}, map[string]bool{}
	for _, r := range res.Rows {
		rv, cv := r[0].String(), r[1].String()
		if !seenRow[rv] {
			seenRow[rv] = true
			ct.RowVals = append(ct.RowVals, rv)
		}
		if !seenCol[cv] {
			seenCol[cv] = true
			ct.ColVals = append(ct.ColVals, cv)
		}
		ct.Cells[[2]string{rv, cv}] = r[2].String()
	}
	return ct, nil
}

// --- hierarchical group-by / folder view ---

// HierLevel is one level of a drill-down: either the distinct values of
// the next grouping attribute (with counts), or — past the last attribute
// — the matching tuples.
type HierLevel struct {
	Attr   string          // attribute grouped at this level ("" at the leaf)
	Values []HierVal       // groups (when Attr != "")
	Leaves *sqlexec.Result // tuples (when Attr == "")
	Path   []string        // the drill-down values leading here
}

// HierVal is one group value with its tuple count.
type HierVal struct {
	Value string
	Count int64
}

// RenderHierarchy executes a groupby/folder template at the given
// drill-down path: path[i] fixes the i-th grouping attribute's value. With
// len(path) == len(attrs) the matching tuples are returned.
func RenderHierarchy(engine *sqlexec.Engine, t Template, path []string) (*HierLevel, error) {
	attrs := splitAttrs(t.Spec["attrs"])
	if len(attrs) == 0 {
		return nil, fmt.Errorf("browse: template %q has no attrs", t.Name)
	}
	if len(path) > len(attrs) {
		return nil, fmt.Errorf("browse: drill-down deeper than attrs")
	}
	tbl := engine.DB().Table(t.Table)
	if tbl == nil {
		return nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, t.Table)
	}
	for _, a := range attrs {
		if tbl.ColumnIndex(a) < 0 {
			return nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, t.Table, a)
		}
	}
	var where []string
	var params []sqldb.Value
	for i, val := range path {
		where = append(where, fmt.Sprintf("%s = ?", quoteIdent(attrs[i])))
		params = append(params, filterValue(tbl, Filter{Column: attrs[i], Value: val}))
	}
	whereSQL := ""
	if len(where) > 0 {
		whereSQL = " WHERE " + strings.Join(where, " AND ")
	}
	lvl := &HierLevel{Path: append([]string(nil), path...)}
	if len(path) == len(attrs) {
		res, err := engine.Execute("SELECT * FROM "+quoteIdent(t.Table)+whereSQL, params...)
		if err != nil {
			return nil, err
		}
		lvl.Leaves = res
		return lvl, nil
	}
	next := attrs[len(path)]
	lvl.Attr = next
	sql := fmt.Sprintf("SELECT %s, COUNT(*) FROM %s%s GROUP BY %s ORDER BY %s",
		quoteIdent(next), quoteIdent(t.Table), whereSQL, quoteIdent(next), quoteIdent(next))
	res, err := engine.Execute(sql, params...)
	if err != nil {
		return nil, err
	}
	for _, r := range res.Rows {
		lvl.Values = append(lvl.Values, HierVal{Value: r[0].String(), Count: r[1].I})
	}
	return lvl, nil
}

func splitAttrs(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// --- chart ---

// Chart is a rendered chart template: labels with numeric values, plus the
// chart style (bar, line or pie).
type Chart struct {
	Style  string
	Labels []string
	Values []float64
}

// RenderChart executes a chart template: label column against either
// COUNT(*) or an aggregated value column.
func RenderChart(engine *sqlexec.Engine, t Template) (*Chart, error) {
	label := t.Spec["label"]
	if label == "" {
		return nil, fmt.Errorf("browse: chart %q needs a label attribute", t.Name)
	}
	style := t.Spec["chart"]
	switch style {
	case "bar", "line", "pie":
	case "":
		style = "bar"
	default:
		return nil, fmt.Errorf("browse: unknown chart style %q", style)
	}
	valueExpr := "COUNT(*)"
	if v := t.Spec["value"]; v != "" {
		agg := strings.ToUpper(t.Spec["agg"])
		if agg == "" {
			agg = "SUM"
		}
		valueExpr = fmt.Sprintf("%s(%s)", agg, quoteIdent(v))
	}
	sql := fmt.Sprintf("SELECT %s, %s FROM %s GROUP BY %s ORDER BY %s",
		quoteIdent(label), valueExpr, quoteIdent(t.Table), quoteIdent(label), quoteIdent(label))
	res, err := engine.Execute(sql)
	if err != nil {
		return nil, err
	}
	ch := &Chart{Style: style}
	for _, r := range res.Rows {
		ch.Labels = append(ch.Labels, r[0].String())
		ch.Values = append(ch.Values, r[1].AsFloat())
	}
	return ch, nil
}
