package browse

import (
	"strings"
	"testing"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

// newThesisEngine loads the small thesis database — the dataset behind the
// paper's Figure 4 browsing session.
func newThesisEngine(t *testing.T) *sqlexec.Engine {
	t.Helper()
	db, err := datagen.BuildThesis(datagen.SmallThesis())
	if err != nil {
		t.Fatal(err)
	}
	return sqlexec.New(db)
}

func TestViewPlainTable(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{Table: "student", PageSize: 10}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Errorf("rows = %d, want page of 10", len(res.Rows))
	}
	if len(res.Columns) != 3 {
		t.Errorf("columns = %v", res.Columns)
	}
}

func TestViewPagination(t *testing.T) {
	e := newThesisEngine(t)
	p0 := &View{Table: "student", PageSize: 5, Page: 0}
	p1 := &View{Table: "student", PageSize: 5, Page: 1}
	r0, err := p0.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p1.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if r0.Rows[0][0].String() == r1.Rows[0][0].String() {
		t.Error("pages should differ")
	}
}

func TestViewDropColumn(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{Table: "student", Dropped: []string{"progid"}}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Columns {
		if strings.EqualFold(c, "progid") {
			t.Error("dropped column still present")
		}
	}
	// Dropping everything is an error.
	v = &View{Table: "student", Dropped: []string{"rollno", "name", "progid"}}
	if _, err := v.Run(e); err == nil {
		t.Error("dropping all columns should fail")
	}
}

func TestViewFilter(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{Table: "student", Filters: []Filter{{Column: "rollno", Op: "=", Value: datagen.StudentAditya}}}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Numeric coercion on an int column.
	v = &View{Table: "department", Filters: []Filter{{Column: "deptid", Op: "<=", Value: "2"}}}
	res, err = v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("dept rows = %d, want 2", len(res.Rows))
	}
	// LIKE filter.
	v = &View{Table: "department", Filters: []Filter{{Column: "name", Op: "LIKE", Value: "%computer%"}}}
	res, err = v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("computer dept rows = %d", len(res.Rows))
	}
	// Invalid operator rejected (not interpolated!).
	v = &View{Table: "student", Filters: []Filter{{Column: "name", Op: "; DROP TABLE", Value: "x"}}}
	if _, err := v.Run(e); err == nil {
		t.Error("invalid op should fail")
	}
}

// TestBrowseFigure4Session reproduces the Figure 4 session: start from the
// student relation, join in the thesis... the paper joins thesis with
// student via the thesis.rollno FK; we browse thesis and join student in,
// then drop columns.
func TestBrowseFigure4Session(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{
		Table:   "thesis",
		Joins:   []Join{{FKColumn: "rollno"}, {FKColumn: "advisor"}},
		Dropped: []string{"thesisid"},
		Filters: []Filter{{Column: "rollno", Op: "=", Value: datagen.StudentAditya}},
	}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Joined columns are qualified with the referenced table's name.
	joined := strings.Join(res.Columns, ",")
	if !strings.Contains(joined, "student.name") || !strings.Contains(joined, "faculty.name") {
		t.Errorf("columns = %v", res.Columns)
	}
	if strings.Contains(joined, "thesisid") {
		t.Error("dropped column survived the join")
	}
	// The row shows Aditya's advisor: S. Sudarshan.
	row := strings.Join(rowText(res, 0), "|")
	if !strings.Contains(row, "Sudarshan") {
		t.Errorf("row = %s", row)
	}
}

func rowText(res *sqlexec.Result, i int) []string {
	var out []string
	for _, v := range res.Rows[i] {
		out = append(out, v.String())
	}
	return out
}

func TestViewGroupBy(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{Table: "student", GroupBy: "progid"}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 || res.Columns[1] != "count" {
		t.Errorf("columns = %v", res.Columns)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no groups")
	}
	// Ordered by count descending.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].I > res.Rows[i-1][1].I {
			t.Error("groups not sorted by count")
		}
	}
}

func TestViewOrderBy(t *testing.T) {
	e := newThesisEngine(t)
	v := &View{Table: "department", OrderBy: "name", Desc: true, PageSize: 100}
	res, err := v.Run(e)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i][1].S > res.Rows[i-1][1].S {
			t.Error("not sorted descending")
		}
	}
}

func TestViewErrors(t *testing.T) {
	e := newThesisEngine(t)
	cases := []*View{
		{Table: "nosuch"},
		{Table: "student", GroupBy: "bogus"},
		{Table: "student", OrderBy: "bogus"},
		{Table: "student", Filters: []Filter{{Column: "bogus", Op: "=", Value: "1"}}},
		{Table: "student", Joins: []Join{{FKColumn: "name"}}}, // not an FK
	}
	for i, v := range cases {
		if _, err := v.Run(e); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestLinksFor(t *testing.T) {
	e := newThesisEngine(t)
	db := e.DB()
	// Aditya's thesis links out to its student and advisor; the student
	// tuple links back from the thesis relation.
	thesisTbl := db.Table("thesis")
	rid := thesisTbl.LookupPK([]sqldb.Value{sqldb.Text(datagen.ThesisAditya)})
	if rid < 0 {
		t.Fatal("no Aditya thesis")
	}
	links, err := LinksFor(db, "thesis", rid)
	if err != nil {
		t.Fatal(err)
	}
	if len(links.Out) != 2 {
		t.Fatalf("out links = %+v", links.Out)
	}
	targets := map[string]string{}
	for _, l := range links.Out {
		targets[l.RefTable] = l.RefValue
	}
	if targets["student"] != datagen.StudentAditya || targets["faculty"] != datagen.FacSudarshan {
		t.Errorf("out link targets = %v", targets)
	}

	// Backward browsing from the student tuple.
	stuTbl := db.Table("student")
	srid := stuTbl.LookupPK([]sqldb.Value{sqldb.Text(datagen.StudentAditya)})
	slinks, err := LinksFor(db, "student", srid)
	if err != nil {
		t.Fatal(err)
	}
	foundThesis := false
	for _, in := range slinks.In {
		if in.Table == "thesis" && len(in.RIDs) == 1 {
			foundThesis = true
		}
	}
	if !foundThesis {
		t.Errorf("in links = %+v, want thesis back-reference", slinks.In)
	}

	if _, err := LinksFor(db, "nosuch", 0); err == nil {
		t.Error("unknown table should fail")
	}
	if _, err := LinksFor(db, "thesis", 999999); err == nil {
		t.Error("bad rid should fail")
	}
}
