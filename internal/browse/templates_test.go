package browse

import (
	"testing"

	"github.com/banksdb/banks/internal/datagen"
	"github.com/banksdb/banks/internal/sqlexec"
)

func TestTemplateSaveLoadList(t *testing.T) {
	e := newThesisEngine(t)
	tpl := Template{
		Name:  "students-by-program",
		Kind:  KindGroupBy,
		Table: "student",
		Spec:  map[string]string{"attrs": "progid"},
	}
	if err := SaveTemplate(e, tpl); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTemplate(e, "students-by-program")
	if err != nil {
		t.Fatal(err)
	}
	if back.Kind != KindGroupBy || back.Table != "student" || back.Spec["attrs"] != "progid" {
		t.Errorf("loaded = %+v", back)
	}
	names, err := ListTemplates(e)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "students-by-program" {
		t.Errorf("names = %v", names)
	}
	// Replacement keeps the name unique.
	tpl.Spec["attrs"] = "progid,name"
	if err := SaveTemplate(e, tpl); err != nil {
		t.Fatal(err)
	}
	back, _ = LoadTemplate(e, "students-by-program")
	if back.Spec["attrs"] != "progid,name" {
		t.Errorf("replace failed: %+v", back)
	}
	if _, err := LoadTemplate(e, "nope"); err == nil {
		t.Error("missing template should fail")
	}
}

func TestTemplateValidation(t *testing.T) {
	e := newThesisEngine(t)
	if err := SaveTemplate(e, Template{Name: "x", Kind: "nope", Table: "student"}); err == nil {
		t.Error("bad kind should fail")
	}
	if err := SaveTemplate(e, Template{Kind: KindChart, Table: "student"}); err == nil {
		t.Error("missing name should fail")
	}
}

func TestRenderCrossTab(t *testing.T) {
	e := newThesisEngine(t)
	// Students per (progid) × thesis presence is awkward on this schema;
	// cross-tab students by program over departments of their programs is
	// a join the template doesn't do, so use thesis: advisor × rollno
	// would be too sparse. Count students by progid × progid is trivial
	// but exercises the pivot: use program table: deptid × name.
	ct, err := RenderCrossTab(e, Template{
		Name: "t", Kind: KindCrossTab, Table: "program",
		Spec: map[string]string{"row": "deptid", "col": "name"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct.RowVals) == 0 || len(ct.ColVals) != 2 {
		t.Fatalf("crosstab = %+v", ct)
	}
	if ct.Cells[[2]string{ct.RowVals[0], "MTech"}] != "1" {
		t.Errorf("cell = %q", ct.Cells[[2]string{ct.RowVals[0], "MTech"}])
	}
	// Aggregate with measure.
	ct2, err := RenderCrossTab(e, Template{
		Name: "t2", Kind: KindCrossTab, Table: "program",
		Spec: map[string]string{"row": "name", "col": "name", "agg": "MAX", "measure": "deptid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ct2.RowVals) != 2 {
		t.Errorf("ct2 = %+v", ct2)
	}
	// Missing row/col errors.
	if _, err := RenderCrossTab(e, Template{Name: "bad", Table: "program", Spec: map[string]string{}}); err == nil {
		t.Error("missing row/col should fail")
	}
	if _, err := RenderCrossTab(e, Template{
		Name: "bad2", Table: "program",
		Spec: map[string]string{"row": "name", "col": "name", "agg": "SUM"},
	}); err == nil {
		t.Error("SUM without measure should fail")
	}
}

// TestRenderHierarchy walks the §4 drill-down example: grouping students by
// program shows programs; clicking one shows its students.
func TestRenderHierarchy(t *testing.T) {
	e := newThesisEngine(t)
	tpl := Template{
		Name: "h", Kind: KindGroupBy, Table: "student",
		Spec: map[string]string{"attrs": "progid"},
	}
	top, err := RenderHierarchy(e, tpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	if top.Attr != "progid" || len(top.Values) == 0 {
		t.Fatalf("top level = %+v", top)
	}
	var total int64
	for _, v := range top.Values {
		total += v.Count
	}
	stu := e.DB().Table("student")
	if total != int64(stu.Len()) {
		t.Errorf("group counts sum to %d, want %d", total, stu.Len())
	}
	// Drill into the first program: leaves are its student tuples.
	leaf, err := RenderHierarchy(e, tpl, []string{top.Values[0].Value})
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Leaves == nil {
		t.Fatal("expected leaves")
	}
	if int64(len(leaf.Leaves.Rows)) != top.Values[0].Count {
		t.Errorf("leaf rows = %d, want %d", len(leaf.Leaves.Rows), top.Values[0].Count)
	}
	// Too-deep path errors.
	if _, err := RenderHierarchy(e, tpl, []string{"1", "2"}); err == nil {
		t.Error("too-deep drill should fail")
	}
	// No attrs errors.
	if _, err := RenderHierarchy(e, Template{Name: "x", Table: "student", Spec: map[string]string{}}, nil); err == nil {
		t.Error("no attrs should fail")
	}
}

func TestRenderHierarchyTwoLevels(t *testing.T) {
	e := newThesisEngine(t)
	tpl := Template{
		Name: "h2", Kind: KindFolder, Table: "student",
		Spec: map[string]string{"attrs": "progid,name"},
	}
	top, err := RenderHierarchy(e, tpl, nil)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := RenderHierarchy(e, tpl, []string{top.Values[0].Value})
	if err != nil {
		t.Fatal(err)
	}
	if mid.Attr != "name" || len(mid.Values) == 0 {
		t.Fatalf("mid level = %+v", mid)
	}
}

func TestRenderChart(t *testing.T) {
	e := newThesisEngine(t)
	ch, err := RenderChart(e, Template{
		Name: "c", Kind: KindChart, Table: "student",
		Spec: map[string]string{"label": "progid", "chart": "pie"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch.Style != "pie" || len(ch.Labels) != len(ch.Values) || len(ch.Labels) == 0 {
		t.Fatalf("chart = %+v", ch)
	}
	var sum float64
	for _, v := range ch.Values {
		sum += v
	}
	if int(sum) != e.DB().Table("student").Len() {
		t.Errorf("chart counts sum to %v", sum)
	}
	// Value aggregation path.
	ch2, err := RenderChart(e, Template{
		Name: "c2", Kind: KindChart, Table: "program",
		Spec: map[string]string{"label": "name", "value": "deptid", "agg": "MAX"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if ch2.Style != "bar" {
		t.Errorf("default style = %q", ch2.Style)
	}
	// Errors.
	if _, err := RenderChart(e, Template{Name: "x", Table: "student", Spec: map[string]string{}}); err == nil {
		t.Error("missing label should fail")
	}
	if _, err := RenderChart(e, Template{
		Name: "x", Table: "student",
		Spec: map[string]string{"label": "progid", "chart": "sparkline"},
	}); err == nil {
		t.Error("unknown style should fail")
	}
}

func TestTemplateComposition(t *testing.T) {
	e := newThesisEngine(t)
	// A chart that links to a hierarchy template (§4: templates "can be
	// composed together in a hyperlinked, visual manner").
	if err := SaveTemplate(e, Template{
		Name: "dept-chart", Kind: KindChart, Table: "program",
		Spec: map[string]string{"label": "deptid", "link": "dept-drill"},
	}); err != nil {
		t.Fatal(err)
	}
	if err := SaveTemplate(e, Template{
		Name: "dept-drill", Kind: KindGroupBy, Table: "program",
		Spec: map[string]string{"attrs": "deptid,name"},
	}); err != nil {
		t.Fatal(err)
	}
	chart, err := LoadTemplate(e, "dept-chart")
	if err != nil {
		t.Fatal(err)
	}
	next, err := LoadTemplate(e, chart.Spec["link"])
	if err != nil {
		t.Fatal(err)
	}
	if next.Kind != KindGroupBy {
		t.Errorf("composed template = %+v", next)
	}
}

// sanity: the engines used here really are independent per test.
func TestEnginesIndependent(t *testing.T) {
	e1 := newThesisEngine(t)
	e2 := newThesisEngine(t)
	if err := SaveTemplate(e1, Template{
		Name: "only-e1", Kind: KindChart, Table: "student",
		Spec: map[string]string{"label": "progid"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTemplate(e2, "only-e1"); err == nil {
		t.Error("template leaked across engines")
	}
	var _ *sqlexec.Engine = e1
	_ = datagen.SmallThesis
}
