// Package browse implements the browsing subsystem of Section 4 of the
// paper: automatically generated browsable views of relations and query
// results. Every foreign key value becomes a hyperlink, primary keys can
// be browsed backwards to referencing tuples, and each displayed table
// carries controls to project columns away, impose selections, join in
// referenced tables, group by a column, sort, and paginate.
//
// A View is the state of one such browsing session; it compiles to a
// SELECT statement executed by the engine, so browsing exercises exactly
// the SQL path an end user could type.
package browse

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/banksdb/banks/internal/sqldb"
	"github.com/banksdb/banks/internal/sqlexec"
)

// Filter is one selection imposed on a column. Op is one of = <> < <= > >=
// LIKE.
type Filter struct {
	Column string
	Op     string
	Value  string
}

var validOps = map[string]bool{
	"=": true, "<>": true, "<": true, "<=": true, ">": true, ">=": true,
	"LIKE": true,
}

// Join is one foreign-key join-in: the referenced table is joined through
// the FK column and its columns displayed alongside ("clicking on join
// results in the referenced table being joined in").
type Join struct {
	FKColumn string // FK column of the base table
}

// View is one browsing state over a base table.
type View struct {
	Table    string
	Dropped  []string // columns projected away
	Filters  []Filter
	Joins    []Join
	GroupBy  string // when set, show distinct values with counts
	OrderBy  string
	Desc     bool
	Page     int // 0-based
	PageSize int // default 25
}

// DefaultPageSize is the pagination unit of the browsing UI.
const DefaultPageSize = 25

func (v *View) pageSize() int {
	if v.PageSize > 0 {
		return v.PageSize
	}
	return DefaultPageSize
}

func quoteIdent(s string) string { return `"` + strings.ReplaceAll(s, `"`, ``) + `"` }

// SQL compiles the view to a SELECT statement against db's schema. The
// base table is aliased t0; joined tables t1, t2, ... in join order.
func (v *View) SQL(db *sqldb.Database) (string, []sqldb.Value, error) {
	base := db.Table(v.Table)
	if base == nil {
		return "", nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, v.Table)
	}
	dropped := make(map[string]bool, len(v.Dropped))
	for _, d := range v.Dropped {
		dropped[strings.ToLower(d)] = true
	}

	var b strings.Builder
	var params []sqldb.Value

	type joined struct {
		alias string
		t     *sqldb.Table
	}
	tables := []joined{{alias: "t0", t: base}}
	var joinClauses []string
	for i, j := range v.Joins {
		var fk *sqldb.ForeignKey
		for fi := range base.Schema().ForeignKeys {
			f := &base.Schema().ForeignKeys[fi]
			if strings.EqualFold(f.Column, j.FKColumn) {
				fk = f
				break
			}
		}
		if fk == nil {
			return "", nil, fmt.Errorf("browse: %s has no foreign key on column %q", v.Table, j.FKColumn)
		}
		rt := db.Table(fk.RefTable)
		if rt == nil {
			return "", nil, fmt.Errorf("%w: %s", sqldb.ErrNoTable, fk.RefTable)
		}
		alias := fmt.Sprintf("t%d", i+1)
		joinClauses = append(joinClauses, fmt.Sprintf(" LEFT JOIN %s %s ON %s.%s = t0.%s",
			quoteIdent(rt.Name()), alias, alias, quoteIdent(fk.RefColumn), quoteIdent(fk.Column)))
		tables = append(tables, joined{alias: alias, t: rt})
	}

	if v.GroupBy != "" {
		col := v.GroupBy
		if base.ColumnIndex(col) < 0 {
			return "", nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, v.Table, col)
		}
		fmt.Fprintf(&b, "SELECT t0.%s AS %s, COUNT(*) AS %s FROM %s t0",
			quoteIdent(col), quoteIdent(col), quoteIdent("count"), quoteIdent(base.Name()))
	} else {
		var cols []string
		for ti, jt := range tables {
			for _, c := range jt.t.Schema().Columns {
				if ti == 0 && dropped[strings.ToLower(c.Name)] {
					continue
				}
				name := c.Name
				if ti > 0 {
					name = jt.t.Name() + "." + c.Name
				}
				cols = append(cols, fmt.Sprintf("%s.%s AS %s", jt.alias, quoteIdent(c.Name), quoteIdent(name)))
			}
		}
		if len(cols) == 0 {
			return "", nil, fmt.Errorf("browse: all columns of %s projected away", v.Table)
		}
		fmt.Fprintf(&b, "SELECT %s FROM %s t0", strings.Join(cols, ", "), quoteIdent(base.Name()))
	}
	for _, jc := range joinClauses {
		b.WriteString(jc)
	}

	if len(v.Filters) > 0 {
		b.WriteString(" WHERE ")
		for i, f := range v.Filters {
			if i > 0 {
				b.WriteString(" AND ")
			}
			op := strings.ToUpper(f.Op)
			if !validOps[op] {
				return "", nil, fmt.Errorf("browse: invalid filter operator %q", f.Op)
			}
			if base.ColumnIndex(f.Column) < 0 {
				return "", nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, v.Table, f.Column)
			}
			fmt.Fprintf(&b, "t0.%s %s ?", quoteIdent(f.Column), op)
			params = append(params, filterValue(base, f))
		}
	}

	if v.GroupBy != "" {
		fmt.Fprintf(&b, " GROUP BY t0.%s ORDER BY count DESC, t0.%s",
			quoteIdent(v.GroupBy), quoteIdent(v.GroupBy))
	} else if v.OrderBy != "" {
		if base.ColumnIndex(v.OrderBy) < 0 {
			return "", nil, fmt.Errorf("%w: %s.%s", sqldb.ErrNoColumn, v.Table, v.OrderBy)
		}
		fmt.Fprintf(&b, " ORDER BY t0.%s", quoteIdent(v.OrderBy))
		if v.Desc {
			b.WriteString(" DESC")
		}
	}

	ps := v.pageSize()
	fmt.Fprintf(&b, " LIMIT %d OFFSET %d", ps, v.Page*ps)
	return b.String(), params, nil
}

// filterValue coerces the filter's textual value toward the column type so
// numeric comparisons work; unparseable values stay text.
func filterValue(t *sqldb.Table, f Filter) sqldb.Value {
	ci := t.ColumnIndex(f.Column)
	col := t.Schema().Columns[ci]
	switch col.Type {
	case sqldb.TypeInt:
		if i, err := strconv.ParseInt(f.Value, 10, 64); err == nil {
			return sqldb.Int(i)
		}
	case sqldb.TypeFloat:
		if fl, err := strconv.ParseFloat(f.Value, 64); err == nil {
			return sqldb.Float(fl)
		}
	case sqldb.TypeBool:
		if b, err := strconv.ParseBool(f.Value); err == nil {
			return sqldb.Bool(b)
		}
	}
	return sqldb.Text(f.Value)
}

// Run compiles and executes the view.
func (v *View) Run(engine *sqlexec.Engine) (*sqlexec.Result, error) {
	sql, params, err := v.SQL(engine.DB())
	if err != nil {
		return nil, err
	}
	return engine.Execute(sql, params...)
}

// TupleLinks describes the hyperlinks of one displayed tuple: outgoing
// links for every non-NULL foreign key value and incoming reference groups
// for backward browsing.
type TupleLinks struct {
	Out []OutLink
	In  []sqldb.Reference
}

// OutLink is one FK hyperlink.
type OutLink struct {
	Column   string
	RefTable string
	RefValue string
}

// LinksFor computes the hyperlinks of the tuple at (table, rid).
func LinksFor(db *sqldb.Database, table string, rid sqldb.RID) (TupleLinks, error) {
	t := db.Table(table)
	if t == nil {
		return TupleLinks{}, fmt.Errorf("%w: %s", sqldb.ErrNoTable, table)
	}
	row := t.Row(rid)
	if row == nil {
		return TupleLinks{}, fmt.Errorf("%w: %s rid %d", sqldb.ErrNoRow, table, rid)
	}
	var links TupleLinks
	for _, fk := range t.Schema().ForeignKeys {
		v := row[t.ColumnIndex(fk.Column)]
		if v.IsNull() {
			continue
		}
		links.Out = append(links.Out, OutLink{
			Column:   fk.Column,
			RefTable: fk.RefTable,
			RefValue: v.String(),
		})
	}
	links.In = db.Referencing(table, rid)
	return links, nil
}
