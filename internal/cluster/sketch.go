package cluster

// The term-statistics sketch: what the routing broker knows about one
// partition. Following ZBroker's per-backend term statistics, each
// partition records, at save time, the 64-bit hash of every token its
// keyword index can match — data tokens and metadata (table/column name)
// tokens alike — with its document frequency. Membership is exact over
// hashes (every indexed token is present), so pruning can never drop a
// partition that would have matched a query term: a hash collision can
// only route a partition unnecessarily, never skip one. The sketch is
// persisted in the store's term-stats segment (kindTermStats) and is
// opaque to the store itself.

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
)

// Sketch is a partition's term -> document-frequency summary: sorted
// 64-bit token hashes with per-token posting counts.
type Sketch struct {
	hashes []uint64
	dfs    []uint64
}

// TermHash is the hash every sketch membership test uses: FNV-1a over the
// normalized (trimmed, lowercased) term — the same normalization the
// executor's resolution stage applies before an index lookup.
func TermHash(term string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(term); i++ {
		c := term[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// BuildSketch summarizes an index: one entry per indexed data token
// (df = posting count) and per metadata token (df += the number of tables
// it names — a metadata match expands to whole tables, so any non-zero
// df marks the partition routable for that term).
func BuildSketch(ix *index.Index) (*Sketch, error) {
	acc := make(map[uint64]uint64)
	err := ix.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		acc[TermHash(tok)] += uint64(len(ns))
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: building sketch: %w", err)
	}
	for tok, tables := range ix.MetaTables() {
		acc[TermHash(tok)] += uint64(len(tables))
	}
	s := &Sketch{
		hashes: make([]uint64, 0, len(acc)),
		dfs:    make([]uint64, 0, len(acc)),
	}
	for h := range acc {
		s.hashes = append(s.hashes, h)
	}
	sort.Slice(s.hashes, func(i, j int) bool { return s.hashes[i] < s.hashes[j] })
	for _, h := range s.hashes {
		s.dfs = append(s.dfs, acc[h])
	}
	return s, nil
}

// Len returns the number of distinct token hashes in the sketch.
func (s *Sketch) Len() int { return len(s.hashes) }

// Has reports whether the partition indexes term (normalized the same way
// the executor normalizes it). False only when no indexed token hashes to
// the term's hash — so a true partition-term match is never missed.
func (s *Sketch) Has(term string) bool { return s.DF(term) > 0 }

// DF returns the partition's document frequency for term (0: absent).
func (s *Sketch) DF(term string) uint64 {
	h := TermHash(strings.TrimSpace(term))
	i := sort.Search(len(s.hashes), func(i int) bool { return s.hashes[i] >= h })
	if i < len(s.hashes) && s.hashes[i] == h {
		return s.dfs[i]
	}
	return 0
}

// sketchVersion gates the sketch encoding.
const sketchVersion = 1

// maxSketchTerms bounds the entry count trusted from an encoded sketch.
const maxSketchTerms = 1 << 26

// Encode renders the sketch for the store's term-stats segment: version,
// entry count, then delta-encoded sorted hashes each followed by its df,
// all uvarint.
func (s *Sketch) Encode() []byte {
	var buf []byte
	buf = binary.AppendUvarint(buf, sketchVersion)
	buf = binary.AppendUvarint(buf, uint64(len(s.hashes)))
	prev := uint64(0)
	for i, h := range s.hashes {
		buf = binary.AppendUvarint(buf, h-prev)
		buf = binary.AppendUvarint(buf, s.dfs[i])
		prev = h
	}
	return buf
}

// DecodeSketch parses an encoded sketch, validating structure so corrupt
// bytes yield an error rather than a bogus router.
func DecodeSketch(data []byte) (*Sketch, error) {
	d := sketchDecoder{buf: data}
	if v := d.uvarint(); d.err == nil && v != sketchVersion {
		return nil, fmt.Errorf("cluster: sketch version %d not supported", v)
	}
	n := d.uvarint()
	if d.err == nil && n > maxSketchTerms {
		return nil, fmt.Errorf("cluster: sketch claims %d terms", n)
	}
	s := &Sketch{
		hashes: make([]uint64, 0, n),
		dfs:    make([]uint64, 0, n),
	}
	prev := uint64(0)
	for i := uint64(0); i < n && d.err == nil; i++ {
		delta := d.uvarint()
		df := d.uvarint()
		h := prev + delta
		if i > 0 && h <= prev {
			return nil, fmt.Errorf("cluster: sketch hashes out of order at entry %d", i)
		}
		s.hashes = append(s.hashes, h)
		s.dfs = append(s.dfs, df)
		prev = h
	}
	if d.err != nil {
		return nil, fmt.Errorf("cluster: decoding sketch: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("cluster: sketch has %d trailing bytes", len(d.buf))
	}
	return s, nil
}

type sketchDecoder struct {
	buf []byte
	err error
}

func (d *sketchDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("truncated varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}
