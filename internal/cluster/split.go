package cluster

// Splitting one engine into N partition engines. The cut is the same
// (table, row-range) sharding the parallel build uses: each table's node
// range is divided into N contiguous chunks and partition p takes chunk p
// of every table, so every partition holds every table (table ids stay
// identical across partitions) and each table's rows shard evenly.
//
// Each partition keeps the source graph's global score normalizers and
// per-node prestige (graph.Restrict), so any connection tree that lies
// entirely inside one partition scores bit-identically to the
// single-engine search. Arcs crossing the cut are dropped — the
// documented partition-local completeness bound; boundary-arc stitching
// is deferred.

import (
	"fmt"

	"github.com/banksdb/banks/internal/graph"
	"github.com/banksdb/banks/internal/index"
	"github.com/banksdb/banks/internal/store"
)

// Assign computes the (table, row-range) partition assignment: node i of
// a table with count nodes goes to partition i*parts/count. The result
// maps every node of g to its partition.
func Assign(g *graph.Graph, parts int) []int {
	assign := make([]int, g.NumNodes())
	for t := int32(0); t < int32(g.NumTables()); t++ {
		lo, hi := g.NodesOfTable(t)
		count := int(hi - lo)
		for i := 0; i < count; i++ {
			assign[int(lo)+i] = i * parts / count
		}
	}
	return assign
}

// SplitEngine shards src into parts partition engines along the
// (table, row-range) cut. Each output engine carries the restricted
// graph (global normalizers preserved), the restricted keyword index
// (postings filtered through the renumbering, metadata postings copied
// verbatim — every table exists in every partition), the term-statistics
// sketch for the routing broker, and the source's WAL sequence.
func SplitEngine(src store.Engine, parts int) ([]store.Engine, error) {
	if src.Graph == nil || src.Index == nil {
		return nil, fmt.Errorf("cluster: SplitEngine requires a graph and an index")
	}
	if parts <= 0 {
		return nil, fmt.Errorf("cluster: cannot split into %d partitions", parts)
	}
	g := src.Graph
	assign := Assign(g, parts)

	remaps := make([][]graph.NodeID, parts)
	graphs := make([]*graph.Graph, parts)
	for p := 0; p < parts; p++ {
		gp, remap := graph.Restrict(g, func(n graph.NodeID) bool { return assign[n] == p })
		graphs[p] = gp
		remaps[p] = remap
	}

	// One pass over the source postings fans each term's list out to the
	// partitions. The renumbering is monotonic in node-id order, so the
	// remapped lists stay sorted without re-sorting.
	terms := make([]map[string][]graph.NodeID, parts)
	for p := range terms {
		terms[p] = make(map[string][]graph.NodeID)
	}
	err := src.Index.ForEachTermSorted(func(tok string, ns []graph.NodeID) {
		for _, n := range ns {
			p := assign[n]
			if nn := remaps[p][n]; nn != graph.NoNode {
				terms[p][tok] = append(terms[p][tok], nn)
			}
		}
	})
	if err != nil {
		return nil, fmt.Errorf("cluster: splitting index: %w", err)
	}
	meta := src.Index.MetaTables()

	engines := make([]store.Engine, parts)
	for p := 0; p < parts; p++ {
		ix := index.NewFromPostings(graphs[p].NumNodes(), terms[p], meta)
		sk, err := BuildSketch(ix)
		if err != nil {
			return nil, err
		}
		engines[p] = store.Engine{
			Graph:     graphs[p],
			Index:     ix,
			WALSeq:    src.WALSeq,
			TermStats: sk.Encode(),
		}
	}
	return engines, nil
}

// SplitStore opens the store at srcPath, shards it into len(outPaths)
// partition stores, and writes each atomically. It is the library behind
// cmd/banks-shard.
func SplitStore(srcPath string, outPaths []string) error {
	if len(outPaths) == 0 {
		return fmt.Errorf("cluster: no partition output paths")
	}
	st, err := store.Open(srcPath, store.Options{})
	if err != nil {
		return err
	}
	defer st.Close()
	seq, err := st.WALSeq()
	if err != nil {
		return fmt.Errorf("cluster: reading source WAL sequence: %w", err)
	}
	engines, err := SplitEngine(store.Engine{
		Graph:  st.Graph(),
		Index:  st.Index(),
		WALSeq: seq,
	}, len(outPaths))
	if err != nil {
		return err
	}
	if err := st.Err(); err != nil {
		return fmt.Errorf("cluster: reading source store: %w", err)
	}
	for p, eng := range engines {
		if err := store.WriteFile(outPaths[p], eng); err != nil {
			return fmt.Errorf("cluster: writing partition %d: %w", p, err)
		}
	}
	return nil
}

// PartitionPaths derives the conventional partition store paths for a
// base path: base.p0, base.p1, ...
func PartitionPaths(base string, parts int) []string {
	paths := make([]string, parts)
	for p := range paths {
		paths[p] = fmt.Sprintf("%s.p%d", base, p)
	}
	return paths
}
