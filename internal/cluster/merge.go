package cluster

// Deterministic merge of per-partition answer lists. Partitions hold
// disjoint node sets, so no tree can arrive twice and the merge is pure
// selection: take the global top-k under a total order. When only one
// partition contributed, its list passes through verbatim — emission
// order (the engine's approximate-relevance order) preserved — which is
// what makes a 1-partition distributed query byte-identical to the
// single-engine search. With several contributors there is no global
// emission sequence to preserve, so answers sort by (score desc, then
// the canonical (table, rid) answer key), the same tie-break vocabulary
// the engine's emitter uses, making the merged order independent of
// partition count, scatter timing and node numbering.

import (
	"math"
	"sort"
)

// ridMask packs a RID into the low 48 bits of an answer key, mirroring
// the engine's nodeKey packing.
const ridMask = (uint64(1) << 48) - 1

// refKey is the wire-side analogue of the engine's canonical nodeKey:
// (table id << 48) | rid. Unknown tables (never the case for answers
// from a well-formed partition) sort last.
func refKey(tids map[string]int32, r Ref) uint64 {
	tid, ok := tids[lowerASCII(r.Table)]
	if !ok {
		return math.MaxUint64
	}
	return uint64(tid)<<48 | uint64(r.RID)&ridMask
}

func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'A' && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// MergeAnswers folds per-partition answer lists into the global top-k
// with ranks reassigned 1..k.
func MergeAnswers(tids map[string]int32, lists [][]Answer, topK int) []Answer {
	var nonEmpty [][]Answer
	for _, l := range lists {
		if len(l) > 0 {
			nonEmpty = append(nonEmpty, l)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	var merged []Answer
	if len(nonEmpty) == 1 {
		merged = append(merged, nonEmpty[0]...)
	} else {
		for _, l := range nonEmpty {
			merged = append(merged, l...)
		}
		sort.SliceStable(merged, func(i, j int) bool {
			return answerLess(tids, &merged[i], &merged[j])
		})
	}
	if topK > 0 && len(merged) > topK {
		merged = merged[:topK]
	}
	for i := range merged {
		merged[i].Rank = i + 1
	}
	return merged
}

// answerLess is the total order of the multi-partition merge: score
// descending, then canonical root key, then the canonical edge sequence
// (each partition already emits edges in canonical (table, rid) order),
// then the term-node sequence.
func answerLess(tids map[string]int32, a, b *Answer) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	ka, kb := refKey(tids, a.Root), refKey(tids, b.Root)
	if ka != kb {
		return ka < kb
	}
	if len(a.Edges) != len(b.Edges) {
		return len(a.Edges) < len(b.Edges)
	}
	for i := range a.Edges {
		ea, eb := &a.Edges[i], &b.Edges[i]
		if fa, fb := refKey(tids, ea.From), refKey(tids, eb.From); fa != fb {
			return fa < fb
		}
		if ta, tb := refKey(tids, ea.To), refKey(tids, eb.To); ta != tb {
			return ta < tb
		}
		if ea.W != eb.W {
			return ea.W < eb.W
		}
	}
	if len(a.TermNodes) != len(b.TermNodes) {
		return len(a.TermNodes) < len(b.TermNodes)
	}
	for i := range a.TermNodes {
		if ta, tb := refKey(tids, a.TermNodes[i]), refKey(tids, b.TermNodes[i]); ta != tb {
			return ta < tb
		}
	}
	return false
}

// MergeStats folds per-partition statistics into the cluster-level view:
// additive counters sum, flags OR, and — when partitions disagree on
// active terms (possible with dropped terms) — MatchedNodes re-derives
// per term by name. A single contributor passes through verbatim (the
// 1-partition golden-parity path). The routing fields are the caller's.
func MergeStats(results []Stats, cleanTerms []string) Stats {
	if len(results) == 1 {
		return results[0]
	}
	var out Stats
	sameTerms := true
	for _, st := range results {
		out.Pops += st.Pops
		out.Generated += st.Generated
		out.Duplicates += st.Duplicates
		out.SingleChildRoots += st.SingleChildRoots
		out.ExcludedRoots += st.ExcludedRoots
		out.MetadataTruncated = out.MetadataTruncated || st.MetadataTruncated
		out.CombosTruncated = out.CombosTruncated || st.CombosTruncated
		out.TermsDropped += st.TermsDropped
		out.FrontierReused += st.FrontierReused
		out.ArcsScanned += st.ArcsScanned
		out.BytesFaulted += st.BytesFaulted
		if st.BudgetExhausted && !out.BudgetExhausted {
			out.BudgetExhausted = true
			out.BudgetReason = st.BudgetReason
		}
		if len(st.Terms) != len(cleanTerms) {
			sameTerms = false
		} else {
			for i, t := range st.Terms {
				if t != cleanTerms[i] {
					sameTerms = false
					break
				}
			}
		}
	}
	out.Terms = cleanTerms
	if sameTerms && len(results) > 0 {
		out.MatchedNodes = make([]int, len(cleanTerms))
		for _, st := range results {
			for i, n := range st.MatchedNodes {
				if i < len(out.MatchedNodes) {
					out.MatchedNodes[i] += n
				}
			}
		}
	} else {
		// Partitions dropped different terms; re-derive by term name.
		sums := make(map[string]int)
		for _, st := range results {
			for i, t := range st.Terms {
				if i < len(st.MatchedNodes) {
					sums[t] += st.MatchedNodes[i]
				}
			}
		}
		for _, t := range cleanTerms {
			out.MatchedNodes = append(out.MatchedNodes, sums[t])
		}
	}
	return out
}
