package cluster

// Wire types: the JSON-codable request/response vocabulary shared by the
// in-process and HTTP partition adapters. Partitions do not hold the
// database rows, so answers travel as (table, rid) references — exactly
// the identity the engine's canonical tie-breaks are defined over — and
// the cluster front door renders tuples against its own database copy.

import (
	"github.com/banksdb/banks/internal/core"
	"github.com/banksdb/banks/internal/graph"
)

// Request is one scatter-gather query as sent to a partition. It carries
// the fully resolved search options (defaults already applied by the
// front door), so every partition executes under exactly the parameters
// the single-engine search would — the precondition for score parity.
type Request struct {
	Terms     []string `json:"terms"`
	Qualified bool     `json:"qualified,omitempty"`
	Prefix    bool     `json:"prefix,omitempty"`

	TopK               int      `json:"topk"`
	HeapSize           int      `json:"heap_size"`
	Lambda             float64  `json:"lambda"`
	EdgeLog            bool     `json:"edge_log"`
	NodeLog            bool     `json:"node_log,omitempty"`
	Multiplicative     bool     `json:"multiplicative,omitempty"`
	ExcludedRootTables []string `json:"excluded_root_tables,omitempty"`
	MetadataNodeLimit  int      `json:"metadata_node_limit"`
	MaxPops            int      `json:"max_pops"`
	MaxArcsScanned     int      `json:"max_arcs_scanned,omitempty"`
	MaxBytesFaulted    int64    `json:"max_bytes_faulted,omitempty"`
	MaxCombosPerVisit  int      `json:"max_combos_per_visit"`
	RequireAllTerms    bool     `json:"require_all_terms"`
}

// RequestFromOptions freezes resolved core options into a wire request.
func RequestFromOptions(terms []string, qualified, prefix bool, o *core.Options) Request {
	return Request{
		Terms:              terms,
		Qualified:          qualified,
		Prefix:             prefix,
		TopK:               o.TopK,
		HeapSize:           o.HeapSize,
		Lambda:             o.Score.Lambda,
		EdgeLog:            o.Score.EdgeLog,
		NodeLog:            o.Score.NodeLog,
		Multiplicative:     o.Score.Combine == core.Multiplicative,
		ExcludedRootTables: o.ExcludedRootTables,
		MetadataNodeLimit:  o.MetadataNodeLimit,
		MaxPops:            o.MaxPops,
		MaxArcsScanned:     o.Budget.MaxArcsScanned,
		MaxBytesFaulted:    o.Budget.MaxBytesFaulted,
		MaxCombosPerVisit:  o.MaxCombosPerVisit,
		RequireAllTerms:    o.RequireAllTerms,
	}
}

// CoreOptions reconstructs the partition-side core options. Strategy is
// left empty: every partition runs the plain backward expanding search
// over its partition-local engine.
func (r *Request) CoreOptions() *core.Options {
	o := core.DefaultOptions()
	o.TopK = r.TopK
	o.HeapSize = r.HeapSize
	o.Score.Lambda = r.Lambda
	o.Score.EdgeLog = r.EdgeLog
	o.Score.NodeLog = r.NodeLog
	if r.Multiplicative {
		o.Score.Combine = core.Multiplicative
	} else {
		o.Score.Combine = core.Additive
	}
	o.ExcludedRootTables = r.ExcludedRootTables
	o.MetadataNodeLimit = r.MetadataNodeLimit
	o.MaxPops = r.MaxPops
	o.Budget = core.Budget{
		MaxPops:         r.MaxPops,
		MaxArcsScanned:  r.MaxArcsScanned,
		MaxBytesFaulted: r.MaxBytesFaulted,
	}
	o.MaxCombosPerVisit = r.MaxCombosPerVisit
	o.RequireAllTerms = r.RequireAllTerms
	return o
}

// Ref identifies one tuple by its stable (table, rid) identity — the same
// key every canonical tie-break in the engine is defined over, valid
// across partitions and node renumberings.
type Ref struct {
	Table string `json:"t"`
	RID   int64  `json:"r"`
}

// Edge is one parent->child arc of an answer tree, by reference.
type Edge struct {
	From Ref     `json:"from"`
	To   Ref     `json:"to"`
	W    float64 `json:"w"`
}

// Answer is one connection tree in wire form: refs instead of node ids,
// scores verbatim from the partition engine.
type Answer struct {
	Rank      int     `json:"rank"`
	Score     float64 `json:"score"`
	EScore    float64 `json:"escore"`
	NScore    float64 `json:"nscore"`
	Weight    float64 `json:"weight"`
	Root      Ref     `json:"root"`
	Edges     []Edge  `json:"edges,omitempty"`
	TermNodes []Ref   `json:"term_nodes"`
}

// Stats mirrors core.Stats field-by-field in wire form.
type Stats struct {
	Terms             []string `json:"terms,omitempty"`
	MatchedNodes      []int    `json:"matched_nodes,omitempty"`
	Pops              int      `json:"pops"`
	Generated         int      `json:"generated"`
	Duplicates        int      `json:"duplicates"`
	SingleChildRoots  int      `json:"single_child_roots"`
	ExcludedRoots     int      `json:"excluded_roots"`
	MetadataTruncated bool     `json:"metadata_truncated,omitempty"`
	CombosTruncated   bool     `json:"combos_truncated,omitempty"`
	TermsDropped      int      `json:"terms_dropped,omitempty"`
	FrontierReused    int      `json:"frontier_reused,omitempty"`
	ArcsScanned       int      `json:"arcs_scanned"`
	BytesFaulted      int64    `json:"bytes_faulted,omitempty"`
	BudgetExhausted   bool     `json:"budget_exhausted,omitempty"`
	BudgetReason      string   `json:"budget_reason,omitempty"`

	PartitionsTotal     int  `json:"partitions_total,omitempty"`
	PartitionsRouted    int  `json:"partitions_routed,omitempty"`
	PartitionsPruned    int  `json:"partitions_pruned,omitempty"`
	PartitionLocalBound bool `json:"partition_local_bound,omitempty"`
}

// StatsFromCore converts engine statistics to wire form.
func StatsFromCore(st *core.Stats) Stats {
	if st == nil {
		return Stats{}
	}
	return Stats{
		Terms:               st.Terms,
		MatchedNodes:        st.MatchedNodes,
		Pops:                st.Pops,
		Generated:           st.Generated,
		Duplicates:          st.Duplicates,
		SingleChildRoots:    st.SingleChildRoots,
		ExcludedRoots:       st.ExcludedRoots,
		MetadataTruncated:   st.MetadataTruncated,
		CombosTruncated:     st.CombosTruncated,
		TermsDropped:        st.TermsDropped,
		FrontierReused:      st.FrontierReused,
		ArcsScanned:         st.ArcsScanned,
		BytesFaulted:        st.BytesFaulted,
		BudgetExhausted:     st.BudgetExhausted,
		BudgetReason:        st.BudgetReason,
		PartitionsTotal:     st.PartitionsTotal,
		PartitionsRouted:    st.PartitionsRouted,
		PartitionsPruned:    st.PartitionsPruned,
		PartitionLocalBound: st.PartitionLocalBound,
	}
}

// ToCore converts wire statistics back to engine form.
func (st Stats) ToCore() core.Stats {
	return core.Stats{
		Terms:               st.Terms,
		MatchedNodes:        st.MatchedNodes,
		Pops:                st.Pops,
		Generated:           st.Generated,
		Duplicates:          st.Duplicates,
		SingleChildRoots:    st.SingleChildRoots,
		ExcludedRoots:       st.ExcludedRoots,
		MetadataTruncated:   st.MetadataTruncated,
		CombosTruncated:     st.CombosTruncated,
		TermsDropped:        st.TermsDropped,
		FrontierReused:      st.FrontierReused,
		ArcsScanned:         st.ArcsScanned,
		BytesFaulted:        st.BytesFaulted,
		BudgetExhausted:     st.BudgetExhausted,
		BudgetReason:        st.BudgetReason,
		PartitionsTotal:     st.PartitionsTotal,
		PartitionsRouted:    st.PartitionsRouted,
		PartitionsPruned:    st.PartitionsPruned,
		PartitionLocalBound: st.PartitionLocalBound,
	}
}

// Result is one partition's (or the merged cluster's) reply.
type Result struct {
	Answers []Answer `json:"answers,omitempty"`
	Stats   Stats    `json:"stats"`
}

// Meta describes a partition at handshake time: its identity, table set
// (all partitions of one cluster must agree, in order), size, and the
// encoded term-statistics sketch for the routing broker (nil: no sketch,
// the broker always routes to this partition).
type Meta struct {
	Name   string   `json:"name"`
	Tables []string `json:"tables"`
	Nodes  int      `json:"nodes"`
	Arcs   int      `json:"arcs"`
	Sketch []byte   `json:"sketch,omitempty"`
}

// answerToWire renders a core answer as wire refs against the partition's
// graph view.
func answerToWire(g graph.View, a *core.Answer) Answer {
	w := Answer{
		Rank:   a.Rank,
		Score:  a.Score,
		EScore: a.EScore,
		NScore: a.NScore,
		Weight: a.Weight,
		Root:   refOf(g, a.Root),
	}
	for _, e := range a.Edges {
		w.Edges = append(w.Edges, Edge{From: refOf(g, e.From), To: refOf(g, e.To), W: e.W})
	}
	for _, n := range a.TermNodes {
		w.TermNodes = append(w.TermNodes, refOf(g, n))
	}
	return w
}

func refOf(g graph.View, n graph.NodeID) Ref {
	return Ref{Table: g.TableNameOf(n), RID: int64(g.RIDOf(n))}
}
